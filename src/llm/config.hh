/**
 * @file
 * Transformer model configuration.
 *
 * Two presets matter for the reproduction: `tiny()` is a small model
 * that runs functionally in milliseconds for accuracy-proxy and
 * clustering experiments; `llama3_8b()` carries the real geometry of
 * the paper's backbone and parameterizes the analytic timing model.
 */

#ifndef VREX_LLM_CONFIG_HH
#define VREX_LLM_CONFIG_HH

#include <cstdint>
#include <string>

namespace vrex
{

/** Llama-style decoder configuration (GQA + SwiGLU + RoPE). */
struct ModelConfig
{
    std::string name;
    uint32_t nLayers = 0;
    uint32_t dModel = 0;
    uint32_t nHeads = 0;
    uint32_t nKvHeads = 0;
    uint32_t ffnDim = 0;
    uint32_t vocabSize = 0;
    float ropeTheta = 10000.0f;

    uint32_t headDim() const { return dModel / nHeads; }

    /** Queries per KV head under grouped-query attention. */
    uint32_t groupSize() const { return nHeads / nKvHeads; }

    /** KV bytes per token per layer at @p bytesPerElem precision. */
    uint64_t
    kvBytesPerTokenPerLayer(double bytesPerElem = 2.0) const
    {
        double b = 2.0 * nKvHeads * headDim() * bytesPerElem;
        return static_cast<uint64_t>(b);
    }

    /** KV bytes per token across all layers. */
    uint64_t
    kvBytesPerToken(double bytesPerElem = 2.0) const
    {
        return kvBytesPerTokenPerLayer(bytesPerElem) * nLayers;
    }

    /** Parameter count of the decoder stack + embeddings. */
    uint64_t paramCount() const;

    /** Parameter bytes at @p bytesPerElem precision. */
    uint64_t
    paramBytes(double bytesPerElem = 2.0) const
    {
        return static_cast<uint64_t>(paramCount() * bytesPerElem);
    }

    /** FLOPs for one forward pass of @p tokens new tokens, ignoring
     *  attention-vs-cache terms (2 * params * tokens). */
    double denseFlops(uint64_t tokens) const;

    /** FLOPs of attention score+value computation of @p qTokens
     *  queries against @p kvTokens cached tokens (all layers). */
    double attentionFlops(uint64_t qTokens, uint64_t kvTokens) const;

    /** The paper's Llama-3-8B backbone geometry. */
    static ModelConfig llama3_8b();

    /** Small functional model for fast experiments. */
    static ModelConfig tiny();

    /** Mid-size functional model (accuracy-proxy experiments). */
    static ModelConfig smallVideo();
};

} // namespace vrex

#endif // VREX_LLM_CONFIG_HH
