#include "video/vision_tower.hh"

#include <cmath>

#include "common/rng.hh"
#include "tensor/ops.hh"

namespace vrex
{

namespace
{
Matrix
randomWeight(uint32_t out_dim, uint32_t in_dim, Rng &rng)
{
    Matrix w(out_dim, in_dim);
    rng.fillGaussian(w.raw(), w.size(),
                     1.0f / std::sqrt(static_cast<float>(in_dim)));
    return w;
}

void
gelu(float *x, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        float v = x[i];
        x[i] = 0.5f * v *
            (1.0f + std::tanh(0.7978845608f *
                              (v + 0.044715f * v * v * v)));
    }
}
} // namespace

VisionTower::VisionTower(uint32_t latent_dim, uint32_t vision_dim,
                         uint64_t seed)
    : outDim(vision_dim)
{
    Rng rng(seed, "vision-tower");
    const uint32_t hidden = 2 * vision_dim;
    w1 = randomWeight(hidden, latent_dim, rng);
    w2 = randomWeight(vision_dim, hidden, rng);
}

Matrix
VisionTower::encode(const Matrix &latents) const
{
    Matrix h, out;
    matmulTransposed(latents, w1, h);
    for (uint32_t t = 0; t < h.rows(); ++t)
        gelu(h.row(t), h.cols());
    matmulTransposed(h, w2, out);
    return out;
}

MlpProjector::MlpProjector(uint32_t vision_dim, uint32_t d_model,
                           uint64_t seed)
{
    Rng rng(seed, "mlp-projector");
    w = randomWeight(d_model, vision_dim, rng);
}

Matrix
MlpProjector::project(const Matrix &features) const
{
    Matrix out;
    matmulTransposed(features, w, out);
    return out;
}

} // namespace vrex
