#include "kvstore/hierarchical_cache.hh"

#include "common/logging.hh"

namespace vrex
{

HierarchicalKVCache::HierarchicalKVCache(uint64_t bytes_per_token,
                                         const TierConfig &config)
    : bytesPerToken(bytes_per_token), cfg(config)
{
    VREX_ASSERT(bytes_per_token > 0, "token size must be positive");
}

void
HierarchicalKVCache::appendTokens(uint32_t count)
{
    numTokens += count;
    if (cfg.offloadAll) {
        // FlexGen: everything is written straight through.
        xfer.offloadedBytes += uint64_t(count) * bytesPerToken;
        firstResident = numTokens;
        return;
    }
    const uint64_t capacity_tokens =
        bytesPerToken ? cfg.deviceKvCapacityBytes / bytesPerToken : 0;
    if (numTokens - firstResident > capacity_tokens) {
        uint32_t spill = numTokens - firstResident -
            static_cast<uint32_t>(capacity_tokens);
        xfer.offloadedBytes += uint64_t(spill) * bytesPerToken;
        firstResident += spill;
    }
}

uint64_t
HierarchicalKVCache::touch(const std::vector<uint32_t> &tokens,
                           uint64_t bytes_per_token_layer)
{
    uint64_t fetched = 0;
    for (uint32_t t : tokens) {
        VREX_ASSERT(t < numTokens, "touch of unknown token");
        ++xfer.touchedTokens;
        if (t < firstResident) {
            fetched += bytes_per_token_layer;
            ++xfer.fetchedTokens;
        }
    }
    xfer.fetchedBytes += fetched;
    return fetched;
}

Tier
HierarchicalKVCache::residency(uint32_t token) const
{
    VREX_ASSERT(token < numTokens, "residency of unknown token");
    return token >= firstResident ? Tier::Device : cfg.offloadTarget;
}

uint32_t
HierarchicalKVCache::residentTokens() const
{
    return numTokens - firstResident;
}

void
HierarchicalKVCache::clear()
{
    numTokens = 0;
    firstResident = 0;
    xfer = TransferStats{};
}

} // namespace vrex
