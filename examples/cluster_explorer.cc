/**
 * @file
 * Cluster explorer: visualizes what hash-bit key clustering does to a
 * streaming key cache — cluster count growth, size distribution, and
 * the Hamming/cosine correlation that makes 32-bit signatures a
 * sound stand-in for full-precision similarity. Ends with the same
 * clustering observed in situ: a real engine-served session whose
 * ReSV policy exposes its per-layer/head HC tables.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "serve/engine.hh"
#include "tensor/ops.hh"
#include "video/frame_generator.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    VideoConfig video;
    video.tokensPerFrame = 16;
    FrameGenerator gen(video, 42);
    HashEncoder enc(video.latentDim, 32, 7);
    HCTable table(video.latentDim, 32, 7);

    std::printf("streaming 40 frames of %u tokens into one HC table "
                "(N_hp=32, Th_hd=7)\n\n", video.tokensPerFrame);
    std::printf("%6s %8s %10s %14s\n", "frame", "tokens", "clusters",
                "tokens/cluster");

    uint32_t token_idx = 0;
    std::vector<Matrix> frames;
    for (int f = 0; f < 40; ++f) {
        Matrix latents = gen.nextFrameLatents();
        frames.push_back(latents);
        for (uint32_t t = 0; t < latents.rows(); ++t) {
            table.insert(token_idx++, latents.row(t),
                         enc.encode(latents.row(t)));
        }
        if ((f + 1) % 8 == 0) {
            std::printf("%6d %8u %10u %14.1f\n", f + 1,
                        table.tokenCount(), table.clusterCount(),
                        table.avgClusterSize());
        }
    }

    // Cluster size histogram (ASCII).
    std::printf("\ncluster size distribution:\n");
    std::vector<uint32_t> sizes;
    for (const auto &c : table.clusters())
        sizes.push_back(c.tokenCount());
    std::sort(sizes.rbegin(), sizes.rend());
    uint32_t shown = std::min<size_t>(sizes.size(), 12);
    for (uint32_t i = 0; i < shown; ++i) {
        std::printf("  cluster %2u: %4u tokens |", i, sizes[i]);
        for (uint32_t b = 0; b < std::min(sizes[i], 60u); ++b)
            std::printf("#");
        std::printf("\n");
    }

    // Hamming vs cosine correlation over sampled token pairs.
    Rng rng(9);
    std::vector<double> cosines, hammings;
    for (int i = 0; i < 2000; ++i) {
        const Matrix &fa =
            frames[rng.uniformInt(frames.size())];
        const Matrix &fb =
            frames[rng.uniformInt(frames.size())];
        const float *a = fa.row(rng.uniformInt(fa.rows()));
        const float *b = fb.row(rng.uniformInt(fb.rows()));
        cosines.push_back(cosineSimilarity(a, b, video.latentDim));
        hammings.push_back(enc.encode(a).hamming(enc.encode(b)));
    }
    std::printf("\nhash-bit Hamming vs cosine correlation: %.2f "
                "(paper Fig. 7b: ~ -0.8)\n",
                pearson(cosines, hammings));
    std::printf("HC table memory: %.1f KiB for %u tokens\n",
                table.memoryBytes() / 1024.0, table.tokenCount());

    // The same clustering in situ: serve one session through the
    // engine under ReSV and inspect the policy's own HC tables,
    // which cluster post-RoPE *keys* per layer and KV head.
    serve::EngineConfig engine_cfg;
    engine_cfg.model = ModelConfig::tiny();
    engine_cfg.policy = serve::PolicySpec::resv();
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(21));
    engine.wait(id);
    const ResvPolicy *resv = engine.policy(id).resv();
    const ModelConfig &mc = engine.config().model;
    std::printf("\nin-session clustering (engine-served, %u layers "
                "x %u KV heads):\n", mc.nLayers, mc.nKvHeads);
    for (uint32_t l = 0; l < mc.nLayers; ++l) {
        std::printf("  layer %u clusters per head:", l);
        for (uint32_t h = 0; h < mc.nKvHeads; ++h)
            std::printf(" %4u", resv->table(l, h).clusterCount());
        std::printf("\n");
    }
    std::printf("overall: %.1f tokens/cluster, HC tables %.1f KiB\n",
                resv->avgClusterSize(),
                resv->tableMemoryBytes() / 1024.0);
    engine.closeSession(id);
    return 0;
}
