/**
 * @file
 * The hash cluster (HC) table (ReSV step 2, paper Fig. 8 right).
 *
 * Incoming key tokens join the nearest existing cluster when the
 * Hamming distance between hash-bit signatures is below Th_hd,
 * otherwise they found a new cluster. Each cluster keeps: the cluster
 * index, its member token indices, the representative key
 * (Key_cluster, a running mean of member keys), the representative
 * hash-bit signature (per-bit majority of members), and the token
 * count — exactly the columns of the paper's HC table.
 */

#ifndef VREX_CORE_HC_TABLE_HH
#define VREX_CORE_HC_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/serial.hh"

namespace vrex
{

/** One row of the HC table. */
struct HashCluster
{
    BitSig signature;                 //!< Key_cluster hash-bit.
    std::vector<float> centroid;      //!< Key_cluster (mean key).
    std::vector<uint32_t> tokenIdx;   //!< Member token indices.
    std::vector<uint32_t> bitOnes;    //!< Per-bit one-counts (majority).

    uint32_t tokenCount() const
    {
        return static_cast<uint32_t>(tokenIdx.size());
    }
};

/** Incremental Hamming-distance clustering of one head's key cache. */
class HCTable
{
  public:
    /**
     * @param key_dim Key dimensionality (head dim).
     * @param n_bits  Signature width.
     * @param th_hd   Hamming-distance clustering threshold Th_hd.
     */
    HCTable(uint32_t key_dim, uint32_t n_bits, uint32_t th_hd);

    /**
     * Insert one token. Joins the closest cluster with distance
     * <= thHd (ties: lowest cluster index) or creates a new cluster.
     *
     * @return The cluster index the token joined.
     */
    uint32_t insert(uint32_t token_idx, const float *key,
                    const BitSig &sig);

    const std::vector<HashCluster> &clusters() const { return rows; }

    uint32_t clusterCount() const
    {
        return static_cast<uint32_t>(rows.size());
    }

    uint32_t tokenCount() const { return numTokens; }

    /** Mean tokens per cluster (0 when empty). */
    double avgClusterSize() const;

    /**
     * HC-table memory footprint in bytes (centroids + signatures +
     * index lists), for the paper's 1.67%-of-KV overhead claim.
     */
    uint64_t memoryBytes() const;

    /** Number of Hamming comparisons performed so far (HCU work). */
    uint64_t hammingComparisons() const { return comparisons; }

    void clear();

    /**
     * Serialize the clustering state (rows, counters). The geometry
     * (key_dim, n_bits, th_hd) is NOT serialized — restore() runs on
     * a table constructed with the same parameters and validates the
     * blob against them.
     */
    void serialize(serial::ByteWriter &w) const;
    void restore(serial::ByteReader &r);

  private:
    void refreshSignature(HashCluster &cluster);

    uint32_t keyDim;
    uint32_t nBits;
    uint32_t thHd;
    uint32_t numTokens = 0;
    uint64_t comparisons = 0;
    std::vector<HashCluster> rows;
};

} // namespace vrex

#endif // VREX_CORE_HC_TABLE_HH
