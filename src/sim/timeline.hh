/**
 * @file
 * Per-layer execution timeline with bandwidth occupancy (paper
 * Fig. 17): shows QKV-gen / attention / FFN on the LLM track, KV
 * prediction overlapped under attention, and the KV retrieval stream
 * trickling at PCIe rate (~1% of DRAM bandwidth) across the layer.
 */

#ifndef VREX_SIM_TIMELINE_HH
#define VREX_SIM_TIMELINE_HH

#include <string>
#include <vector>

#include "sim/system_model.hh"

namespace vrex
{

/** One segment of activity on one track. */
struct TimelineSegment
{
    std::string track;   //!< "LLM", "KV Prediction", "Retrieval".
    std::string label;   //!< "QKV Gen", "Attention", "FFN", ...
    double startUs = 0.0;
    double endUs = 0.0;
    double bandwidthGBs = 0.0;  //!< DRAM bandwidth consumed.

    double durationUs() const { return endUs - startUs; }
};

/** Build the two-layer timeline of Fig. 17 for a configuration. */
std::vector<TimelineSegment> layerTimeline(const SystemModel &sm,
                                           uint32_t n_layers = 2);

/** Peak aggregate DRAM bandwidth across the timeline (GB/s). */
double timelinePeakBandwidth(const std::vector<TimelineSegment> &segs);

} // namespace vrex

#endif // VREX_SIM_TIMELINE_HH
