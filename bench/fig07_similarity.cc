/**
 * @file
 * Fig. 7 reproduction:
 *  (a) cosine-similarity structure of key tokens between adjacent
 *      frames (measured on the 3rd layer's keys of the functional
 *      model over a COIN-like stream);
 *  (b) correlation between hash-bit Hamming distance and cosine
 *      similarity (paper: |rho| ~ 0.8 at N_hp = 32).
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/hash_encoder.hh"
#include "llm/model.hh"
#include "serve/engine.hh"
#include "tensor/ops.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    // Stream a COIN-like session through the functional model (via
    // the serving engine, full attention) and capture layer-3 keys.
    ModelConfig cfg = ModelConfig::smallVideo();
    serve::EngineConfig engine_cfg;
    engine_cfg.model = cfg;
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(7));
    engine.wait(id);

    const uint32_t layer = 2;  // "3rd layer".
    const Matrix &keys = engine.model(id).cache().layer(layer).keys;
    const KVCache &cache = engine.model(id).cache();
    const uint32_t head_dim = cfg.headDim();

    rep.beginPanel("a", "Fig. 7a: key cosine similarity across frames "
                        "(layer 3, head 0)");
    // Mean similarity vs frame distance (the heatmap's diagonals).
    // "content" removes the RoPE rotation (position-independent
    // redundancy); "raw" is the post-RoPE key the cache stores. With
    // the functional model's small head dimension every RoPE pair
    // rotates quickly, so the raw similarity oscillates with the
    // position delta — on Llama-3's 128-dim heads most pairs are
    // slow and the paper's raw heatmap stays high.
    for (uint32_t dist : {0u, 1u, 2u, 4u, 8u, 16u}) {
        RunningStat content, raw;
        for (int32_t f = 0;
             f + static_cast<int32_t>(dist) <
                 static_cast<int32_t>(cache.frameCount());
             ++f) {
            auto [a0, a1] = cache.frameTokenRange(f);
            auto [b0, b1] = cache.frameTokenRange(f + dist);
            uint32_t n = std::min(a1 - a0, b1 - b0);
            for (uint32_t t = 0; t < n; ++t) {
                raw.add(cosineSimilarity(keys.row(a0 + t),
                                         keys.row(b0 + t),
                                         head_dim));
                std::vector<float> ka(keys.row(a0 + t),
                                      keys.row(a0 + t) + head_dim);
                std::vector<float> kb(keys.row(b0 + t),
                                      keys.row(b0 + t) + head_dim);
                applyRopeInverse(ka.data(), head_dim, a0 + t,
                                 cfg.ropeTheta);
                applyRopeInverse(kb.data(), head_dim, b0 + t,
                                 cfg.ropeTheta);
                content.add(cosineSimilarity(ka.data(), kb.data(),
                                             head_dim));
            }
        }
        std::string row = "dist=" + std::to_string(dist);
        rep.add(row, "content_sim", content.mean(), "", 3);
        rep.add(row, "raw_rope_sim", raw.mean(), "", 3);
    }
    rep.note("adjacent frames (distance 1) should be far more "
             "similar than distant ones");

    rep.beginPanel("b", "Fig. 7b: Hamming distance vs cosine "
                        "similarity");
    HashEncoder enc(head_dim, 32, 7);
    Rng rng(9);
    std::vector<double> cosines, hammings;
    const uint32_t tokens = keys.rows();
    for (int i = 0; i < 4000; ++i) {
        const float *a = keys.row(rng.uniformInt(tokens));
        const float *b = keys.row(rng.uniformInt(tokens));
        cosines.push_back(cosineSimilarity(a, b, head_dim));
        hammings.push_back(enc.encode(a).hamming(enc.encode(b)));
    }
    double rho = pearson(cosines, hammings);
    rep.add("all_pairs", "pearson", rho, "", 3);
    rep.add("all_pairs", "abs_rho", rho < 0 ? -rho : rho, "", 2);
    rep.add("all_pairs", "pairs",
            static_cast<double>(cosines.size()), "", 0);

    // Mean Hamming at similarity extremes.
    RunningStat near_stat, far_stat;
    for (size_t i = 0; i < cosines.size(); ++i) {
        if (cosines[i] > 0.8)
            near_stat.add(hammings[i]);
        else if (cosines[i] < 0.2)
            far_stat.add(hammings[i]);
    }
    rep.add("cos>0.8", "mean_hamming", near_stat.mean(), "bits", 1);
    rep.add("cos<0.2", "mean_hamming", far_stat.mean(), "bits", 1);
    rep.note("paper: |rho| ~ 0.8 at N_hp = 32");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig07", argc, argv, run);
}
