/**
 * @file
 * Edge real-time deployment study: uses the hardware timing model to
 * show the per-frame latency, FPS, and energy of V-Rex8 versus an
 * AGX Orin running FlexGen as a live video session grows — the
 * paper's headline scenario (3.9-8.3 FPS real-time edge inference).
 *
 * Then serves several concurrent edge users through the functional
 * vrex::serve::Engine to show the many-session side of the same
 * deployment: independent per-session state, concurrent execution,
 * reproducible answers.
 */

#include <cstdio>
#include <vector>

#include "serve/engine.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Serve @p users concurrent multi-turn sessions; return answers. */
std::vector<SessionRunResult>
serveConcurrently(uint32_t users)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();
    serve::Engine engine(cfg);

    std::vector<serve::SessionId> ids;
    for (uint32_t u = 0; u < users; ++u) {
        SessionScript script = WorkloadGenerator::multiTurn(
            /*frames=*/12, /*turns=*/2, /*seed=*/100 + u);
        script.name = "edge-user-" + std::to_string(u);
        ids.push_back(engine.submit(script));
    }

    std::vector<SessionRunResult> results;
    for (serve::SessionId id : ids) {
        results.push_back(engine.result(id));
        engine.closeSession(id);
    }
    return results;
}

} // namespace

int
main()
{
    std::printf("edge real-time study: Llama-3-8B, 10 tokens/frame, "
                "batch 1\n\n");
    std::printf("%8s | %12s %8s | %12s %8s | %8s\n", "cache",
                "AGX ms/frame", "AGX FPS", "VRex ms/frame", "VRex FPS",
                "speedup");

    for (uint32_t cache :
         {1000u, 5000u, 10000u, 20000u, 40000u, 80000u}) {
        RunConfig agx;
        agx.hw = AcceleratorConfig::agxOrin();
        agx.method = MethodModel::flexgen();
        agx.cacheTokens = cache;

        RunConfig vrex;
        vrex.hw = AcceleratorConfig::vrex8();
        vrex.method = MethodModel::resvFull();
        vrex.cacheTokens = cache;

        PhaseResult a = SystemModel(agx).framePhase();
        PhaseResult v = SystemModel(vrex).framePhase();
        std::printf("%7uK | %12.0f %8.2f | %12.0f %8.2f | %7.1fx%s\n",
                    cache / 1000, a.totalMs, 1000.0 / a.totalMs,
                    v.totalMs, 1000.0 / v.totalMs,
                    a.totalMs / v.totalMs,
                    1000.0 / v.totalMs >= 2.0 ? "  [real-time]" : "");
    }

    // Energy at the largest point.
    RunConfig agx;
    agx.hw = AcceleratorConfig::agxOrin();
    agx.method = MethodModel::flexgen();
    agx.cacheTokens = 40000;
    RunConfig vrex = agx;
    vrex.hw = AcceleratorConfig::vrex8();
    vrex.method = MethodModel::resvFull();
    PhaseResult a = SystemModel(agx).framePhase();
    PhaseResult v = SystemModel(vrex).framePhase();
    std::printf("\nenergy per frame at 40K: AGX %.2f J, V-Rex8 %.2f J "
                "(%.1fx less)\n",
                a.energy.totalJ(), v.energy.totalJ(),
                a.energy.totalJ() / v.energy.totalJ());

    // Many-user side of the same deployment: N independent sessions
    // served concurrently on the engine's worker pool. Per-session
    // determinism means the concurrent run reproduces exactly.
    const uint32_t users = 6;
    std::printf("\nserving %u concurrent edge sessions "
                "(functional engine, ReSV):\n", users);
    std::vector<SessionRunResult> round1 = serveConcurrently(users);
    std::vector<SessionRunResult> round2 = serveConcurrently(users);
    uint32_t total_tokens = 0;
    bool reproducible = true;
    for (uint32_t u = 0; u < users; ++u) {
        total_tokens += static_cast<uint32_t>(
            round1[u].generated.size());
        reproducible = reproducible &&
            round1[u].generated == round2[u].generated;
        std::printf("  user %u: %u frames, %zu answer tokens, "
                    "frame-stage retrieval %.1f%%\n", u,
                    round1[u].frames, round1[u].generated.size(),
                    100.0 * round1[u].frameRatio);
    }
    std::printf("total answer tokens %u; rerun %s\n", total_tokens,
                reproducible ? "byte-identical (deterministic)"
                             : "DIVERGED (bug!)");
    return reproducible ? 0 : 1;
}
