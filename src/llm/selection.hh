/**
 * @file
 * The retrieval hook: a SelectionPolicy decides, per layer and per KV
 * head, which past tokens attention may read. This is the seam between
 * the LLM runtime and every retrieval algorithm in the paper (FlexGen,
 * InfiniGen, InfiniGenP, ReKV, and V-Rex's ReSV).
 */

#ifndef VREX_LLM_SELECTION_HH
#define VREX_LLM_SELECTION_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "llm/kv_cache.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Token choice for one KV head. */
struct HeadSelection
{
    bool selectAll = true;
    /** Past-token indices (ascending) when !selectAll. */
    std::vector<uint32_t> indices;

    uint32_t
    selectedCount(uint32_t past_len) const
    {
        return selectAll ? past_len
                         : static_cast<uint32_t>(indices.size());
    }
};

/** Token choice for all KV heads of one layer. */
struct LayerSelection
{
    std::vector<HeadSelection> kvHeads;

    /** A selection that attends the full cache. */
    static LayerSelection
    full(uint32_t n_kv_heads)
    {
        LayerSelection s;
        s.kvHeads.resize(n_kv_heads);
        return s;
    }

    /** Average fraction of past tokens attended across heads. */
    double selectedRatio(uint32_t past_len) const;
};

/**
 * Abstract retrieval policy invoked by every decoder layer.
 *
 * Contract: onBlockAppended() fires after the current block's K/V rows
 * for @p layer have been appended to the cache (so clustering sees the
 * new keys); select() then returns which *past* tokens (indices below
 * @p past_len) each KV head may attend. Tokens of the current block
 * are always attended causally regardless of the selection.
 */
class SelectionPolicy
{
  public:
    virtual ~SelectionPolicy() = default;

    virtual void
    onBlockAppended(uint32_t layer, const KVCache &cache,
                    uint32_t block_start, uint32_t block_len,
                    TokenStage stage)
    {
        (void)layer; (void)cache; (void)block_start; (void)block_len;
        (void)stage;
    }

    /**
     * Choose past tokens for one layer.
     *
     * @param layer     Decoder layer index.
     * @param q         Post-RoPE query block, rows=T, cols=nHeads*headDim.
     * @param cache     The KV cache (block already appended).
     * @param past_len  Tokens preceding the current block.
     * @param stage     Pipeline stage of the current block.
     */
    virtual LayerSelection select(uint32_t layer, const Matrix &q,
                                  const KVCache &cache, uint32_t past_len,
                                  TokenStage stage) = 0;

    /** Reset per-session state (clustering tables etc.). */
    virtual void reset() {}

    /**
     * Serialize mutable per-session state (counters, clustering
     * tables) for hibernation. Stateless policies keep the empty
     * default. restoreState() runs on a freshly constructed policy
     * of the same spec and must leave it bit-identical to the
     * serialized one. Implementations must write/read a fixed byte
     * layout so hibernate -> wake -> re-hibernate reproduces the
     * original blob exactly.
     */
    virtual void serializeState(serial::ByteWriter &w) const
    {
        (void)w;
    }

    /** Counterpart of serializeState(); see its contract. */
    virtual void restoreState(serial::ByteReader &r) { (void)r; }
};

/** The no-op policy: attend the full cache (vanilla / FlexGen). */
class FullAttentionPolicy : public SelectionPolicy
{
  public:
    LayerSelection
    select(uint32_t, const Matrix &, const KVCache &cache, uint32_t,
           TokenStage) override
    {
        return LayerSelection::full(cache.config().nKvHeads);
    }
};

} // namespace vrex

#endif // VREX_LLM_SELECTION_HH
