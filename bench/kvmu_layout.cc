/**
 * @file
 * KVMU layout ablation (design-choice study beyond the paper's
 * figures, supporting §V-C): replays real ReSV selections from the
 * functional model through the hierarchical KV store and measures
 * how many contiguous runs each fetch spans under (a) the plain
 * time-ordered layout and (b) the KVMU's cluster-contiguous layout,
 * then prices both with the PCIe transaction model.
 *
 * `--saturate N` additionally drives N sessions through an engine
 * with admission control (live cap N/2) and bounded per-session
 * queues, reporting the scheduler's serve::Stats — admissions,
 * backpressure rejections, and the round-robin fairness bound —
 * plus a second staged scenario mixing Interactive and Bulk
 * scheduling classes under weighted round-robin, reported as a
 * per-class latency panel (logical slice/item/wait counts as
 * metrics, wall-clock p50/p95/p99 percentiles as notes). The panels
 * only exist when the flag is given, so the default report (and the
 * CI drift baseline) is unchanged.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "serve/engine.hh"
#include "sim/pcie_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    ModelConfig cfg = ModelConfig::smallVideo();

    TierConfig tiers;
    // Tiny device window so most selections require fetching.
    tiers.deviceKvCapacityBytes = 48 * cfg.kvBytesPerToken(2.0);
    tiers.offloadTarget = Tier::Storage;

    // ReSV with the memory-hierarchy replay decorator; the factory
    // wires the HC tables as the KVMU cluster-layout source.
    serve::EngineConfig engine_cfg;
    engine_cfg.model = cfg;
    engine_cfg.policy =
        serve::PolicySpec::resv().withMemoryTracking(tiers);
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(13));
    engine.wait(id);

    const MemoryReplayStats &s = *engine.memoryStats(id);
    rep.beginPanel("replay",
                   "KVMU cluster-contiguous layout ablation "
                   "(functional replay)");
    rep.add("totals", "selected_tokens",
            static_cast<double>(s.selectedTokens), "", 0);
    rep.add("totals", "fetched", s.fetchedBytes / 1048576.0, "MiB",
            1);
    rep.add("totals", "offloaded", s.offloadedBytes / 1048576.0,
            "MiB", 1);

    rep.beginPanel("layout", "contiguous runs per layout");
    rep.add("time-ordered", "runs",
            static_cast<double>(s.runsTimeOrder), "", 0);
    rep.add("time-ordered", "tokens_per_run", s.tokensPerRunTimeOrder(),
            "", 2);
    rep.add("clustered", "runs",
            static_cast<double>(s.runsClustered), "", 0);
    rep.add("clustered", "tokens_per_run", s.tokensPerRunClustered(),
            "", 2);

    // Price both with the edge PCIe link.
    rep.beginPanel("pcie", "PCIe transfer estimate for the same "
                           "bytes");
    PcieModel pcie(4.0, 1.5);
    const double granule = cfg.kvBytesPerTokenPerLayer(2.0);
    double bytes = static_cast<double>(s.selectedTokens) * granule;
    double t_time = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsTimeOrder));
    double t_clust = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsClustered));
    rep.add("time-ordered", "transfer", t_time * 1e3, "ms", 2);
    rep.add("time-ordered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsTimeOrder)),
            "%", 0);
    rep.add("clustered", "transfer", t_clust * 1e3, "ms", 2);
    rep.add("clustered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsClustered)),
            "%", 0);
    rep.add("clustered", "txn_reduction",
            static_cast<double>(s.runsTimeOrder) /
                std::max<uint64_t>(1, s.runsClustered),
            "x", 2);
    rep.note("the KVMU stores same-cluster tokens contiguously so "
             "one transaction moves a whole cluster (Fig. 12)");
}

/**
 * Saturation scenario: more sessions than the admission controller
 * allows live, staged bursts against bounded queues. Every reported
 * number is a logical scheduler counter, so the panel is
 * deterministic; wall-clock wait/service means go into a note.
 */
void
runSaturation(bench::Reporter &rep, uint32_t sessions)
{
    const uint32_t cap = std::max(1u, sessions / 2);
    const uint32_t kFrames = 6, kQuestion = 4, kAnswer = 4;
    // Staged burst = frames + 1 question + answer steps, sized to
    // leave the queue one item short of the bound.
    const uint32_t items = kFrames + 1 + kAnswer;

    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();
    cfg.workers = 4;
    cfg.sched.maxLiveSessions = cap;
    cfg.sched.maxQueuedPerSession = items + 1;
    cfg.sched.sliceEvents = 2;
    serve::Engine engine(cfg);

    // Admit in waves; overflow sessions retry after closes. Each
    // wave stages its bursts while paused, so queue depths and the
    // per-session backpressure rejection (one 2-frame overflow try)
    // are exact.
    std::vector<uint32_t> todo;
    for (uint32_t s = 0; s < sessions; ++s)
        todo.push_back(s);
    uint32_t waves = 0;
    while (!todo.empty()) {
        std::vector<uint32_t> deferred;
        std::vector<serve::SessionId> admitted;
        engine.pause();
        for (uint32_t s : todo) {
            SessionScript script = WorkloadGenerator::coinAverage(
                /*seed=*/500 + s);
            script.name = "saturate-" + std::to_string(s);
            serve::Admission a = engine.tryCreateSession(
                serve::SessionOptions::fromScript(script));
            if (!a.admitted()) {
                deferred.push_back(s);
                continue;
            }
            engine.feedFrame(a.id, kFrames);
            engine.ask(a.id, kQuestion, kAnswer);
            // One overflow attempt per session: 2 > 1 free slot.
            engine.tryFeedFrame(a.id, 2);
            admitted.push_back(a.id);
        }
        engine.resume();
        for (serve::SessionId id : admitted) {
            engine.result(id);
            engine.closeSession(id);
        }
        todo = std::move(deferred);
        ++waves;
    }

    const serve::Stats st = engine.stats();
    rep.beginPanel("saturation",
                   "admission control + fair queueing under "
                   "saturation (--saturate)");
    rep.add("admission", "sessions", sessions, "", 0);
    rep.add("admission", "max_live", cap, "", 0);
    rep.add("admission", "admitted",
            static_cast<double>(st.admitted), "", 0);
    rep.add("admission", "rejected",
            static_cast<double>(st.rejectedAdmissions), "", 0);
    rep.add("admission", "waves", waves, "", 0);
    rep.add("queues", "items_executed",
            static_cast<double>(st.itemsExecuted), "", 0);
    rep.add("queues", "items_rejected",
            static_cast<double>(st.itemsRejected), "", 0);
    rep.add("queues", "max_depth", st.maxQueueDepth, "", 0);
    rep.add("fairness", "max_wait_slices",
            static_cast<double>(st.maxWaitSlices), "", 0);
    rep.add("fairness", "round_robin_bound", cap - 1, "", 0);
    char note[160];
    std::snprintf(note, sizeof(note),
                  "wall clock (not in machine output): mean queue "
                  "wait %.2f ms, mean slice service %.2f ms over "
                  "%llu slices",
                  st.meanWaitMs(), st.meanServiceMs(),
                  static_cast<unsigned long long>(st.slices));
    rep.note(note);
    rep.note("round-robin guarantee: max_wait_slices <= live-1 = "
             "round_robin_bound");
}

/**
 * Priority-class latency scenario: ceil(N/2) Interactive QA
 * sessions against floor(N/2) rate-limited Bulk ingest sessions,
 * weighted round-robin {2,1}, one worker and one fully staged burst
 * — so the dispatch order, and with it every logical counter
 * (slices, items, rate-limited slices, max wait), is exact. The
 * wall-clock wait/service percentiles go into notes, mirroring the
 * saturation panel's treatment of non-deterministic numbers.
 */
void
runClassLatency(bench::Reporter &rep, uint32_t sessions)
{
    const uint32_t interactive = (sessions + 1) / 2;
    const uint32_t bulk = sessions / 2;

    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();
    cfg.workers = 1; // serial dispatch: logical counters are exact
    cfg.sched.sliceEvents = 2;
    cfg.sched.classWeights = {2, 1};
    serve::Engine engine(cfg);

    engine.pause();
    std::vector<serve::SessionId> ids;
    for (uint32_t s = 0; s < interactive; ++s) {
        SessionScript script = WorkloadGenerator::coinAverage(
            /*seed=*/700 + s);
        script.name = "latency-i-" + std::to_string(s);
        serve::SessionOptions o =
            serve::SessionOptions::fromScript(script);
        o.schedClass = serve::SchedClass::Interactive;
        serve::SessionId id = engine.createSession(o);
        engine.feedFrame(id, 4);
        engine.ask(id, 2, 2); // 4 + 1 + 2 = 7 unit items
        ids.push_back(id);
    }
    for (uint32_t s = 0; s < bulk; ++s) {
        SessionScript script = WorkloadGenerator::coinAverage(
            /*seed=*/800 + s);
        script.name = "latency-b-" + std::to_string(s);
        serve::SessionOptions o =
            serve::SessionOptions::fromScript(script);
        o.schedClass = serve::SchedClass::Bulk;
        o.maxItemsPerRound = 1; // throttled below the slice size
        serve::SessionId id = engine.createSession(o);
        engine.feedFrame(id, 10);
        ids.push_back(id);
    }
    engine.resume();
    engine.waitAll();

    uint64_t max_wait[serve::kSchedClasses] = {0, 0};
    for (serve::SessionId id : ids) {
        const serve::QueueStats qs = engine.sessionStats(id);
        const auto c = static_cast<size_t>(qs.schedClass);
        max_wait[c] = std::max(max_wait[c], qs.maxWaitSlices);
    }

    const serve::Stats st = engine.stats();
    rep.beginPanel("latency",
                   "per-class latency under weighted round-robin "
                   "{2,1} with a bulk rate limit (--saturate)");
    for (uint32_t c = 0; c < serve::kSchedClasses; ++c) {
        const auto cls = static_cast<serve::SchedClass>(c);
        const serve::ClassStats &cs = st.forClass(cls);
        const char *row = serve::schedClassName(cls);
        rep.add(row, "sessions",
                cls == serve::SchedClass::Interactive ? interactive
                                                      : bulk,
                "", 0);
        rep.add(row, "slices", static_cast<double>(cs.slices), "", 0);
        rep.add(row, "items_executed",
                static_cast<double>(cs.itemsExecuted), "", 0);
        rep.add(row, "rate_limited_slices",
                static_cast<double>(cs.rateLimitedSlices), "", 0);
        rep.add(row, "max_wait_slices",
                static_cast<double>(max_wait[c]), "", 0);
        rep.add(row, "wait_samples",
                static_cast<double>(cs.wait.samples()), "", 0);
        char note[200];
        std::snprintf(note, sizeof(note),
                      "%s wall clock (not in machine output): wait "
                      "p50/p95/p99 %.3f/%.3f/%.3f ms, service "
                      "p50/p95/p99 %.3f/%.3f/%.3f ms",
                      row, cs.wait.p50Ms(), cs.wait.p95Ms(),
                      cs.wait.p99Ms(), cs.service.p50Ms(),
                      cs.service.p95Ms(), cs.service.p99Ms());
        rep.note(note);
    }
    rep.note("interactive keeps 2 slices per bulk slice; the bulk "
             "rate limit (1 item/turn) stretches its queue without "
             "touching interactive wait percentiles");
    for (serve::SessionId id : ids)
        engine.closeSession(id);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-local --saturate N flag before the shared
    // harness parses the common options.
    uint32_t saturate = 0;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i + 1 < argc && std::strcmp(argv[i], "--saturate") == 0) {
            saturate =
                static_cast<uint32_t>(std::atoi(argv[++i]));
            continue;
        }
        args.push_back(argv[i]);
    }
    return bench::runBench(
        "kvmu_layout", static_cast<int>(args.size()), args.data(),
        [saturate](bench::Reporter &rep) {
            run(rep);
            if (saturate > 0) {
                runSaturation(rep, saturate);
                runClassLatency(rep, saturate);
            }
        });
}
