/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: fixed
 * print formats so every bench emits the same kind of row the paper
 * reports, plus the standard sweep points.
 */

#ifndef VREX_BENCH_BENCH_UTIL_HH
#define VREX_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace vrex::bench
{

/** The paper's KV cache sweep: 1K, 5K, 10K, 20K, 40K. */
inline std::vector<uint32_t>
cacheSweep()
{
    return {1000, 5000, 10000, 20000, 40000};
}

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("--- %s\n", text.c_str());
}

/** "1K", "40K" labels for cache lengths. */
inline std::string
kLabel(uint32_t tokens)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%uK", tokens / 1000);
    return buf;
}

} // namespace vrex::bench

#endif // VREX_BENCH_BENCH_UTIL_HH
