/**
 * @file
 * Unit tests for the common module: RNG determinism and
 * distributions, BF16 rounding, bit signatures, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "common/bf16.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "testutil.hh"

using namespace vrex;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, NamedStreamsDiffer)
{
    Rng a(123, "alpha"), b(123, "beta");
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.nextU64() != b.nextU64();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NamedStreamsReproducible)
{
    Rng a(9, "stream"), b(9, "stream");
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // All values hit in 1000 draws.
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(3);
    auto perm = rng.permutation(50);
    std::set<uint32_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(BF16, RoundTripExactForSmallIntegers)
{
    for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 128.0f, -256.0f})
        EXPECT_EQ(BF16(v).toFloat(), v);
}

TEST(BF16, RoundingLosesLowMantissa)
{
    float v = 1.0f + 1.0f / 1024.0f;  // Below BF16 precision at 1.0.
    EXPECT_NE(bf16Round(v), v);
    EXPECT_NEAR(bf16Round(v), v, 1.0f / 128.0f);
}

TEST(BF16, RoundToNearestEven)
{
    // 1.0 + 2^-8 is exactly halfway between two BF16 values.
    float v = 1.0f + 1.0f / 256.0f;
    float r = bf16Round(v);
    EXPECT_TRUE(r == 1.0f || r == 1.0f + 1.0f / 128.0f);
}

TEST(BF16, PreservesInfinityAndNan)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(BF16(inf).toFloat(), inf);
    EXPECT_EQ(BF16(-inf).toFloat(), -inf);
    EXPECT_TRUE(std::isnan(BF16(std::nanf("")).toFloat()));
}

TEST(BF16, BufferRounding)
{
    float data[3] = {1.003f, -2.006f, 65504.0f};
    bf16RoundBuffer(data, 3);
    for (float v : data)
        EXPECT_EQ(v, bf16Round(v));
}

namespace
{

/** Build a float from raw IEEE-754 binary32 bits. */
float
floatFromBits(uint32_t w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

} // namespace

TEST(BF16, NanStaysQuietNanWithSign)
{
    for (uint32_t payload : {0x7f800001u, 0x7fc00000u, 0x7fffffffu}) {
        for (uint32_t sign : {0u, 0x80000000u}) {
            BF16 v(floatFromBits(payload | sign));
            EXPECT_TRUE(std::isnan(v.toFloat()));
            // Quiet bit forced on; exponent all-ones preserved.
            EXPECT_EQ(v.raw() & 0x7f80u, 0x7f80u);
            EXPECT_NE(v.raw() & 0x007fu, 0u);
            EXPECT_EQ(v.raw() & 0x8000u, sign >> 16);
        }
    }
}

TEST(BF16, InfinityRoundTripsExactly)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(BF16(inf).raw(), 0x7f80u);
    EXPECT_EQ(BF16(-inf).raw(), 0xff80u);
    EXPECT_EQ(BF16(inf).toFloat(), inf);
    EXPECT_EQ(BF16(-inf).toFloat(), -inf);
}

TEST(BF16, FloatMaxOverflowsToInfinity)
{
    // FLT_MAX's mantissa is all ones; rounding up carries into the
    // exponent and lands exactly on the infinity encoding.
    const float mx = std::numeric_limits<float>::max();
    EXPECT_EQ(BF16(mx).toFloat(),
              std::numeric_limits<float>::infinity());
    EXPECT_EQ(BF16(-mx).toFloat(),
              -std::numeric_limits<float>::infinity());
}

TEST(BF16, SignedZeroPreserved)
{
    EXPECT_EQ(BF16(0.0f).raw(), 0x0000u);
    EXPECT_EQ(BF16(-0.0f).raw(), 0x8000u);
    EXPECT_FALSE(std::signbit(BF16(0.0f).toFloat()));
    EXPECT_TRUE(std::signbit(BF16(-0.0f).toFloat()));
}

TEST(BF16, RepresentableSubnormalRoundTrips)
{
    // 0x00400000 is a float subnormal whose low 16 bits are zero, so
    // it is exactly representable as the BF16 subnormal 0x0040.
    const float sub = floatFromBits(0x00400000u);
    ASSERT_GT(sub, 0.0f);
    ASSERT_LT(sub, std::numeric_limits<float>::min());
    EXPECT_EQ(BF16(sub).raw(), 0x0040u);
    EXPECT_EQ(BF16(sub).toFloat(), sub);
}

TEST(BF16, TinySubnormalFlushesTowardZero)
{
    // The smallest float subnormal is far below BF16's subnormal
    // range; round-to-nearest collapses it to +0.
    const float tiny = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(BF16(tiny).raw(), 0x0000u);
    EXPECT_EQ(BF16(-tiny).raw(), 0x8000u);
}

TEST(BF16, TieRoundsToEvenBothDirections)
{
    // 0x3f808000 is exactly halfway between 0x3f80 (even) and
    // 0x3f81 (odd): the tie must round DOWN to the even mantissa.
    EXPECT_EQ(BF16(floatFromBits(0x3f808000u)).raw(), 0x3f80u);
    // 0x3f818000 is halfway between 0x3f81 (odd) and 0x3f82 (even):
    // the tie must round UP.
    EXPECT_EQ(BF16(floatFromBits(0x3f818000u)).raw(), 0x3f82u);
    // Just below / above a tie round toward the nearer value.
    EXPECT_EQ(BF16(floatFromBits(0x3f807fffu)).raw(), 0x3f80u);
    EXPECT_EQ(BF16(floatFromBits(0x3f808001u)).raw(), 0x3f81u);
}

using SeededRngTest = vrex::testutil::SeededRngTest;

TEST_F(SeededRngTest, StreamIsNamedAfterTest)
{
    // The fixture derives its stream from the test name, so it must
    // match a hand-built stream of the same name and differ from a
    // sibling test's stream.
    Rng same(0x5eedull, "StreamIsNamedAfterTest");
    Rng other(0x5eedull, "SomeOtherTest");
    uint64_t v = rng.nextU64();
    EXPECT_EQ(v, same.nextU64());
    EXPECT_NE(v, other.nextU64());
}

TEST_F(SeededRngTest, Bf16RoundTripIsIdempotent)
{
    for (int i = 0; i < 1000; ++i) {
        float v = static_cast<float>(rng.gaussian(0.0, 100.0));
        float once = bf16Round(v);
        EXPECT_EQ(bf16Round(once), once);
        EXPECT_TRUE(vrex::testutil::bf16Near(v, once));
    }
}

TEST(Bits, BitWordsBoundaries)
{
    EXPECT_EQ(bitWords(0), 0u);
    EXPECT_EQ(bitWords(1), 1u);
    EXPECT_EQ(bitWords(63), 1u);
    EXPECT_EQ(bitWords(64), 1u);
    EXPECT_EQ(bitWords(65), 2u);
    EXPECT_EQ(bitWords(128), 2u);
    EXPECT_EQ(bitWords(129), 3u);
}

TEST(BitSig, FullWordHammingDistance)
{
    // All 64 bits of one word set: popcount must count the whole word.
    BitSig a(64), b(64);
    for (uint32_t i = 0; i < 64; ++i)
        a.set(i, true);
    EXPECT_EQ(a.hamming(b), 64u);
    EXPECT_EQ(b.hamming(a), 64u);
    EXPECT_EQ(a.hamming(a), 0u);
}

TEST(BitSig, HammingAcrossWordBoundary)
{
    BitSig a(130), b(130);
    a.set(63, true);   // Last bit of word 0.
    a.set(64, true);   // First bit of word 1.
    a.set(129, true);  // Last valid bit (word 2).
    EXPECT_EQ(a.hamming(b), 3u);
    b.set(64, true);
    EXPECT_EQ(a.hamming(b), 2u);
}

TEST(BitSig, SetIsIdempotentAndRawMatches)
{
    BitSig sig(64);
    sig.set(5, true);
    sig.set(5, true);
    EXPECT_EQ(sig.raw()[0], 1ull << 5);
    sig.set(5, false);
    sig.set(5, false);
    EXPECT_EQ(sig.raw()[0], 0ull);
}

TEST(BitSig, SetGetRoundTrip)
{
    BitSig sig(70);
    sig.set(0, true);
    sig.set(63, true);
    sig.set(64, true);
    sig.set(69, true);
    EXPECT_TRUE(sig.get(0));
    EXPECT_TRUE(sig.get(63));
    EXPECT_TRUE(sig.get(64));
    EXPECT_TRUE(sig.get(69));
    EXPECT_FALSE(sig.get(1));
    sig.set(63, false);
    EXPECT_FALSE(sig.get(63));
}

TEST(BitSig, HammingDistance)
{
    BitSig a(32), b(32);
    EXPECT_EQ(a.hamming(b), 0u);
    a.set(3, true);
    EXPECT_EQ(a.hamming(b), 1u);
    b.set(3, true);
    EXPECT_EQ(a.hamming(b), 0u);
    for (uint32_t i = 0; i < 32; ++i)
        a.set(i, true);
    EXPECT_EQ(a.hamming(b), 31u);
}

TEST(BitSig, Equality)
{
    BitSig a(16), b(16), c(17);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    b.set(5, true);
    EXPECT_FALSE(a == b);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    // The documented empty-state contract: every accessor returns
    // exactly 0.0 with no samples (never an uninitialized read), so
    // possibly-empty buckets can be reported without guards.
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSampleDefinesAllAccessors)
{
    RunningStat s;
    s.add(-3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.sum(), -3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0);   // Clamped into bin 0.
    h.add(50.0);   // Clamped into bin 9.
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, RejectsNonFiniteSamples)
{
    // Regression: static_cast<long>(t * size) on a NaN or infinite
    // sample was undefined behavior (UBSan-visible). Non-finite
    // inputs are now rejected and tallied separately.
    Histogram h(0.0, 1.0, 4);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.nonFinite(), 3u);
    for (uint32_t b = 0; b < h.bins(); ++b)
        EXPECT_EQ(h.count(b), 0u);
    h.add(0.3);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.nonFinite(), 3u);
    auto n = h.normalized();
    EXPECT_DOUBLE_EQ(n[1], 1.0);  // NaNs do not dilute the shares.
}

TEST(Histogram, Normalized)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.2);
    h.add(0.2);
    h.add(0.8);
    h.add(0.9);
    auto n = h.normalized();
    EXPECT_DOUBLE_EQ(n[0], 0.5);
    EXPECT_DOUBLE_EQ(n[1], 0.5);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    // Empty-state contract (mirrors RunningStat): no samples ->
    // every percentile is exactly 0.0, never an uninitialized or
    // range-derived value.
    Histogram h(5.0, 15.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileSingleBin)
{
    // A one-bin histogram answers every percentile with its only
    // bin center, whatever the sample values were.
    Histogram h(0.0, 10.0, 1);
    h.add(1.0);
    h.add(9.0);
    for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), 5.0);
}

TEST(Histogram, PercentileAllEqualValues)
{
    // All-equal samples land in one bin: p0 through p100 all report
    // that bin's center (resolution is one bin width by contract).
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(3.1);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.5);
}

TEST(Histogram, PercentileRanksAndClamping)
{
    // 4 samples, one per bin: rank boundaries are exact. q is
    // clamped into [0, 1] and the rank floored at 1, so q = 0 is
    // the first non-empty bin, q = 1 the last.
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    h.add(3.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.5); // rank ceil(1) = 1
    EXPECT_DOUBLE_EQ(h.percentile(0.26), 1.5); // rank 2
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 2.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.5);
    EXPECT_DOUBLE_EQ(h.percentile(-7.0), 0.5); // clamped to q = 0
    EXPECT_DOUBLE_EQ(h.percentile(42.0), 3.5); // clamped to q = 1
}

TEST(Histogram, PercentileIgnoresNonFiniteSamples)
{
    // Non-finite samples are rejected by add() (tallied in
    // nonFinite()) and therefore never shift a percentile rank: the
    // distribution over the finite samples is unchanged.
    Histogram clean(0.0, 10.0, 10);
    Histogram dirty(0.0, 10.0, 10);
    for (double v : {1.0, 2.0, 2.0, 8.0}) {
        clean.add(v);
        dirty.add(v);
    }
    dirty.add(std::numeric_limits<double>::quiet_NaN());
    dirty.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(dirty.nonFinite(), 2u);
    EXPECT_EQ(dirty.total(), clean.total());
    for (double q : {0.0, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(dirty.percentile(q), clean.percentile(q));
}

TEST(Histogram, MergeOfSnapshotsIsConsistent)
{
    // Merging two same-shaped snapshots equals one histogram fed
    // both sample sets: bin counts, totals, nonFinite() and every
    // percentile agree. This is the contract the serve layer's
    // per-class latency aggregation depends on.
    Histogram a(0.0, 10.0, 20);
    Histogram b(0.0, 10.0, 20);
    Histogram whole(0.0, 10.0, 20);
    for (double v : {0.5, 1.5, 1.5, 3.0, 9.9}) {
        a.add(v);
        whole.add(v);
    }
    for (double v : {0.5, 4.2, 7.7}) {
        b.add(v);
        whole.add(v);
    }
    b.add(std::numeric_limits<double>::infinity());
    whole.add(std::numeric_limits<double>::infinity());

    a.merge(b);
    EXPECT_EQ(a.total(), whole.total());
    EXPECT_EQ(a.nonFinite(), whole.nonFinite());
    for (uint32_t bin = 0; bin < a.bins(); ++bin)
        EXPECT_EQ(a.count(bin), whole.count(bin));
    for (double q : {0.0, 0.1, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.percentile(q), whole.percentile(q));

    // Merging an empty snapshot is a no-op.
    Histogram empty(0.0, 10.0, 20);
    const uint64_t before = a.total();
    a.merge(empty);
    EXPECT_EQ(a.total(), before);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    for (auto &v : y)
        v = -v;
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroForConstant)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> y = {5, 5, 5};
    EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Mean, Basics)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}
