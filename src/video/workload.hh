/**
 * @file
 * COIN-like streaming workloads.
 *
 * The paper evaluates on five COIN benchmark tasks. The real dataset
 * is unavailable offline, so we synthesize five task archetypes whose
 * knobs (video drift, scene-cut rate, question timing and length)
 * induce the *score-distribution diversity* across tasks, layers and
 * heads that Table II and Fig. 20 depend on. The paper's "average
 * working scenario" (26 frames, 25 question tokens, 39 answer tokens)
 * is provided as `coinAverage()`.
 */

#ifndef VREX_VIDEO_WORKLOAD_HH
#define VREX_VIDEO_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "video/frame_generator.hh"

namespace vrex
{

/** The five COIN task archetypes used in Table II. */
enum class CoinTask : uint8_t
{
    Step,       //!< Step recognition: short clips, dense cuts.
    Next,       //!< Next-step prediction: strong temporal continuity.
    Proc,       //!< Procedure localization: long steady segments.
    ProcPlus,   //!< Procedure+ (multi-segment): mixed dynamics.
    Task,       //!< Task recognition: global, very stable scenes.
};

/** All five tasks, in Table II column order. */
const std::vector<CoinTask> &allCoinTasks();

/** Human-readable task name. */
std::string coinTaskName(CoinTask task);

/** One event in a streaming session. */
struct SessionEvent
{
    enum class Type : uint8_t { Frame, Question, Generate };
    Type type;
    /** Question: token count. Generate: answer token count. */
    uint32_t tokens = 0;

    /** Unit work items this event expands to — the grain the serve
     *  scheduler time-slices: Generate{n} is n independent
     *  single-token steps, Frame/Question are one item each. */
    uint32_t
    unitCount() const
    {
        return type == Type::Generate ? tokens : 1;
    }
};

/** A full scripted streaming session. */
struct SessionScript
{
    std::string name;
    CoinTask task = CoinTask::Step;
    VideoConfig video;
    std::vector<SessionEvent> events;
    uint64_t seed = 0;

    uint32_t frameCount() const;
    uint32_t questionTokens() const;
    uint32_t answerTokens() const;
};

/** Factory for scripted sessions. */
class WorkloadGenerator
{
  public:
    /**
     * The paper's average COIN scenario: 26 frames, one 25-token
     * question, 39 generated tokens.
     */
    static SessionScript coinAverage(uint64_t seed);

    /** A task-specific session (drives Table II / Fig. 20). */
    static SessionScript coinTask(CoinTask task, uint64_t seed);

    /**
     * A multi-turn session: frames interleaved with several
     * question/answer rounds (the conversational-continuity setting
     * of §II-A).
     */
    static SessionScript multiTurn(uint32_t frames, uint32_t turns,
                                   uint64_t seed);

    /** Random question token ids of length @p n in [0, vocab). */
    static std::vector<uint32_t> questionTokens(uint32_t n,
                                                uint32_t vocab,
                                                uint64_t seed);
};

} // namespace vrex

#endif // VREX_VIDEO_WORKLOAD_HH
