#include "serve/kv_budget.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex::serve
{

void
KvBudget::onAdmit(Key key, SchedClass cls)
{
    LockGuard lock(mu);
    Entry &e = entries[key];
    e.kvBytes = 0;
    e.tick = ++clock;
    e.cls = cls;
    e.hibernated = false;
}

void
KvBudget::onExecuted(Key key, uint64_t kv_bytes)
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    if (it == entries.end())
        return;
    Entry &e = it->second;
    VREX_ASSERT(!e.hibernated,
                "onExecuted for a hibernated session (wake first)");
    resident += kv_bytes - e.kvBytes;
    e.kvBytes = kv_bytes;
    e.tick = ++clock;
}

void
KvBudget::onClose(Key key)
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    if (it == entries.end())
        return;
    if (!it->second.hibernated)
        resident -= it->second.kvBytes;
    entries.erase(it);
}

void
KvBudget::setClass(Key key, SchedClass cls)
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    if (it != entries.end())
        it->second.cls = cls;
}

void
KvBudget::markHibernated(Key key, uint64_t blob_bytes, uint64_t ns)
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    VREX_ASSERT(it != entries.end() && !it->second.hibernated,
                "markHibernated on unknown or hibernated session");
    resident -= it->second.kvBytes;
    it->second.hibernated = true;
    ++hibernates;
    hibernatedBlobBytes += blob_bytes;
    hibernateLatency.add(ns);
}

void
KvBudget::markWoken(Key key, uint64_t kv_bytes, uint64_t blob_bytes,
                    uint64_t ns)
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    VREX_ASSERT(it != entries.end() && it->second.hibernated,
                "markWoken on unknown or resident session");
    Entry &e = it->second;
    e.hibernated = false;
    e.kvBytes = kv_bytes;
    e.tick = ++clock;
    resident += kv_bytes;
    ++wakes;
    wokenBlobBytes += blob_bytes;
    wakeLatency.add(ns);
}

bool
KvBudget::hibernated(Key key) const
{
    LockGuard lock(mu);
    auto it = entries.find(key);
    return it != entries.end() && it->second.hibernated;
}

uint64_t
KvBudget::residentBytes() const
{
    LockGuard lock(mu);
    return resident;
}

bool
KvBudget::overBudget() const
{
    LockGuard lock(mu);
    return cfg.budgetBytes > 0 && resident > cfg.budgetBytes;
}

std::vector<KvBudget::Key>
KvBudget::victims(Key exclude) const
{
    LockGuard lock(mu);
    struct Candidate
    {
        Key key;
        uint64_t tick;
        SchedClass cls;
    };
    std::vector<Candidate> cands;
    cands.reserve(entries.size());
    for (const auto &[key, e] : entries) {
        if (key == exclude || e.hibernated || e.kvBytes == 0)
            continue;
        cands.push_back({key, e.tick, e.cls});
    }
    // Bulk before Interactive; LRU (oldest tick) within a class.
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.cls != b.cls)
                      return a.cls == SchedClass::Bulk;
                  return a.tick < b.tick;
              });
    std::vector<Key> out;
    out.reserve(cands.size());
    for (const Candidate &c : cands)
        out.push_back(c.key);
    return out;
}

KvBudgetStats
KvBudget::snapshot(const ColdStore &store) const
{
    LockGuard lock(mu);
    KvBudgetStats s;
    s.budgetBytes = cfg.budgetBytes;
    s.residentBytes = resident;
    for (const auto &[key, e] : entries) {
        if (e.hibernated)
            ++s.hibernatedSessions;
        else
            ++s.residentSessions;
    }
    s.coldBytes = store.totalBytes();
    s.hibernates = hibernates;
    s.wakes = wakes;
    s.hibernatedBytes = hibernatedBlobBytes;
    s.wokenBytes = wokenBlobBytes;
    s.hibernateLatency = hibernateLatency;
    s.wakeLatency = wakeLatency;
    return s;
}

} // namespace vrex::serve
