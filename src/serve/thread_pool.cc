#include "serve/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex::serve
{

uint32_t
resolveWorkerCount(uint32_t requested)
{
    if (requested > 0)
        return requested;
    uint32_t hw = std::thread::hardware_concurrency();
    return std::clamp(hw, 2u, 8u);
}

ThreadPool::ThreadPool(uint32_t workers)
{
    VREX_ASSERT(workers >= 1, "thread pool needs at least one worker");
    threads.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        LockGuard lock(mu);
        VREX_ASSERT(!stopping, "submit on a stopping thread pool");
        jobs.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            UniqueLock lock(mu);
            // Inline predicate loop: guarded reads stay visible to
            // the thread-safety analysis (a wait-lambda would not).
            while (!stopping && jobs.empty())
                cv.wait(lock);
            if (jobs.empty())
                return; // stopping and fully drained
            job = std::move(jobs.front());
            jobs.pop_front();
        }
        job();
    }
}

} // namespace vrex::serve
