/**
 * @file
 * Fig. 17 reproduction: DRAM bandwidth usage of V-Rex48 across two
 * decoder layers of the frame-processing stage — the overlap
 * argument: KV prediction spikes briefly under attention and is
 * fully hidden; KV retrieval trickles at PCIe rate (~1% of DRAM
 * bandwidth) across the whole layer.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"
#include "sim/timeline.hh"

using namespace vrex;

int
main()
{
    RunConfig rc;
    rc.hw = AcceleratorConfig::vrex48();
    rc.method = MethodModel::resvFull();
    rc.cacheTokens = 40000;
    rc.batch = 1;
    SystemModel sm(rc);

    bench::header("Fig. 17: memory bandwidth usage of V-Rex48 "
                  "(2 layers, frame stage, 40K cache)");
    auto segs = layerTimeline(sm, 2);
    std::printf("%-14s %-10s %10s %10s %12s\n", "track", "label",
                "start us", "end us", "BW GB/s");
    for (const auto &s : segs) {
        std::printf("%-14s %-10s %10.1f %10.1f %12.1f\n",
                    s.track.c_str(), s.label.c_str(), s.startUs,
                    s.endUs, s.bandwidthGBs);
    }

    double peak = timelinePeakBandwidth(segs);
    std::printf("\npeak aggregate bandwidth: %.0f GB/s "
                "(platform %.0f GB/s)\n", peak,
                rc.hw.memBandwidthGBs);
    std::printf("retrieval stream: %.1f GB/s = %.1f%% of DRAM "
                "bandwidth (paper: ~1%%)\n", rc.hw.pcieBandwidthGBs,
                100.0 * rc.hw.pcieBandwidthGBs /
                    rc.hw.memBandwidthGBs);

    PhaseResult r = sm.framePhase();
    std::printf("KV prediction on DRE: %.3f ms per frame = %.2f%% of "
                "wall clock (hidden under attention)\n", r.dreMs,
                100.0 * r.dreMs / r.totalMs);
    return 0;
}
