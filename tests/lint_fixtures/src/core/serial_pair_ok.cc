// Fixture: a mirrored pair passes — including out-of-line qualified
// definitions, `std::` spelling differences in put<T>/get<T> type
// arguments, nested member serialize/restore calls, and error-message
// strings that *mention* restore (strings must not count as ops).
#include "common/serial.hh"

struct Inner
{
    unsigned x = 0;
    void serialize(vrex::serial::ByteWriter &w) const;
    void restore(vrex::serial::ByteReader &r);
};

struct Outer
{
    Inner inner;
    std::uint64_t count = 0;
    std::string tag;
    void serialize(vrex::serial::ByteWriter &w) const;
    void restore(vrex::serial::ByteReader &r);
};

void
Inner::serialize(vrex::serial::ByteWriter &w) const
{
    w.put<std::uint32_t>(x);
}

void
Inner::restore(vrex::serial::ByteReader &r)
{
    x = r.get<uint32_t>();
}

void
Outer::serialize(vrex::serial::ByteWriter &w) const
{
    w.put<uint64_t>(count);
    w.putString(tag);
    inner.serialize(w);
}

void
Outer::restore(vrex::serial::ByteReader &r)
{
    count = r.get<std::uint64_t>();
    tag = r.getString();
    if (tag.empty())
        throw vrex::serial::SerialError(
            "Outer::restore: empty tag in blob");
    inner.restore(r);
}
