/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic input in the reproduction (synthetic weights, video
 * latents, hash hyperplanes, workload scripts) is drawn from a named
 * stream so that all experiments are reproducible bit-for-bit.
 */

#ifndef VREX_COMMON_RNG_HH
#define VREX_COMMON_RNG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vrex
{

/** SplitMix64: used to seed and to derive stream seeds from names. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * Complete Rng state, exposed so session hibernation can serialize a
 * generator mid-stream and resume it bit-exactly (the Box-Muller
 * spare is part of the stream position, not just the xoshiro words).
 */
struct RngState {
    uint64_t s[4];
    double spare;
    bool hasSpare;
};

/**
 * xoshiro256** PRNG with helpers for the distributions the simulator
 * needs. Small, fast, and statistically sound for simulation use.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull);

    /** Construct a named stream: seed derived from (seed, name). */
    Rng(uint64_t seed, const std::string &name);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform in [0, 1). */
    double uniform();

    /** Uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /** Normal with given mean / stddev. */
    double gaussian(double mean, double stddev);

    /** Fill a float buffer with iid N(0, stddev^2). */
    void fillGaussian(float *data, size_t n, float stddev);

    /** Bernoulli draw. */
    bool bernoulli(double p);

    /** Random permutation of [0, n). */
    std::vector<uint32_t> permutation(uint32_t n);

    /** Snapshot the full generator state (for serialization). */
    RngState state() const;

    /** Overwrite the generator state (restore counterpart). */
    void setState(const RngState &st);

  private:
    uint64_t s[4];
    double spare = 0.0;
    bool hasSpare = false;
};

/** Stable 64-bit FNV-1a hash of a string (stream naming). */
uint64_t hashName(const std::string &name);

} // namespace vrex

#endif // VREX_COMMON_RNG_HH
