#include "video/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vrex
{

const std::vector<CoinTask> &
allCoinTasks()
{
    static const std::vector<CoinTask> tasks = {
        CoinTask::Step, CoinTask::Next, CoinTask::Proc,
        CoinTask::ProcPlus, CoinTask::Task,
    };
    return tasks;
}

std::string
coinTaskName(CoinTask task)
{
    switch (task) {
      case CoinTask::Step:     return "Step";
      case CoinTask::Next:     return "Next";
      case CoinTask::Proc:     return "Proc.";
      case CoinTask::ProcPlus: return "Proc.+";
      case CoinTask::Task:     return "Task";
    }
    panic("unknown CoinTask");
}

uint32_t
SessionScript::frameCount() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        n += e.type == SessionEvent::Type::Frame;
    return n;
}

uint32_t
SessionScript::questionTokens() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        if (e.type == SessionEvent::Type::Question)
            n += e.tokens;
    return n;
}

uint32_t
SessionScript::answerTokens() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        if (e.type == SessionEvent::Type::Generate)
            n += e.tokens;
    return n;
}

namespace
{

SessionScript
makeScript(const std::string &name, CoinTask task,
           const VideoConfig &video, uint32_t frames,
           uint32_t q_tokens, uint32_t a_tokens, uint64_t seed)
{
    SessionScript s;
    s.name = name;
    s.task = task;
    s.video = video;
    s.seed = seed;
    for (uint32_t f = 0; f < frames; ++f)
        s.events.push_back({SessionEvent::Type::Frame, 0});
    s.events.push_back({SessionEvent::Type::Question, q_tokens});
    s.events.push_back({SessionEvent::Type::Generate, a_tokens});
    return s;
}

} // namespace

SessionScript
WorkloadGenerator::coinAverage(uint64_t seed)
{
    VideoConfig v;
    return makeScript("coin-average", CoinTask::Next, v, 26, 25, 39,
                      seed);
}

SessionScript
WorkloadGenerator::coinTask(CoinTask task, uint64_t seed)
{
    VideoConfig v;
    uint32_t frames = 26, q = 25, a = 39;
    switch (task) {
      case CoinTask::Step:
        // Step recognition: choppy video, local queries.
        v.driftRate = 0.16;
        v.sceneCutProb = 0.12;
        frames = 24;
        q = 18;
        a = 24;
        break;
      case CoinTask::Next:
        // Next-step prediction: smooth continuation.
        v.driftRate = 0.08;
        v.sceneCutProb = 0.04;
        frames = 26;
        q = 25;
        a = 39;
        break;
      case CoinTask::Proc:
        // Procedure localization: long steady segments.
        v.driftRate = 0.05;
        v.sceneCutProb = 0.02;
        frames = 32;
        q = 28;
        a = 44;
        break;
      case CoinTask::ProcPlus:
        // Multi-segment procedures: mixed dynamics.
        v.driftRate = 0.11;
        v.sceneCutProb = 0.08;
        frames = 30;
        q = 30;
        a = 48;
        break;
      case CoinTask::Task:
        // Task recognition: globally stable scene.
        v.driftRate = 0.03;
        v.sceneCutProb = 0.01;
        frames = 22;
        q = 14;
        a = 16;
        break;
    }
    return makeScript("coin-" + coinTaskName(task), task, v, frames, q,
                      a, seed);
}

SessionScript
WorkloadGenerator::multiTurn(uint32_t frames, uint32_t turns,
                             uint64_t seed)
{
    SessionScript s;
    s.name = "multi-turn";
    s.task = CoinTask::Next;
    s.seed = seed;
    VREX_ASSERT(turns > 0, "multiTurn needs at least one turn");
    VREX_ASSERT(frames > 0, "multiTurn needs at least one frame");
    // Contract: every turn leads with at least one frame (a Question
    // never precedes its video context), so the turn count is clamped
    // to the frame count. Frames spread as evenly as possible: the
    // first `frames % turns` turns carry one extra frame. Callers
    // whose frames divide evenly (every pre-existing user) get the
    // byte-identical script they always did.
    turns = std::min(turns, frames);
    const uint32_t base = frames / turns;
    const uint32_t extra = frames % turns;
    Rng rng(seed, "multi-turn");
    for (uint32_t turn = 0; turn < turns; ++turn) {
        const uint32_t n = base + (turn < extra ? 1 : 0);
        for (uint32_t f = 0; f < n; ++f)
            s.events.push_back({SessionEvent::Type::Frame, 0});
        s.events.push_back(
            {SessionEvent::Type::Question,
             10 + static_cast<uint32_t>(rng.uniformInt(20))});
        s.events.push_back(
            {SessionEvent::Type::Generate,
             12 + static_cast<uint32_t>(rng.uniformInt(30))});
    }
    return s;
}

std::vector<uint32_t>
WorkloadGenerator::questionTokens(uint32_t n, uint32_t vocab,
                                  uint64_t seed)
{
    // Degenerate-input contract: an empty request is fine for any
    // vocab, but n > 0 ids cannot be drawn from an empty vocabulary
    // (uniformInt(0) has no valid range).
    VREX_ASSERT(vocab > 0 || n == 0,
                "questionTokens needs vocab > 0 when n > 0 (n=%u)",
                n);
    Rng rng(seed, "question-tokens");
    std::vector<uint32_t> ids(n);
    for (auto &id : ids)
        id = static_cast<uint32_t>(rng.uniformInt(vocab));
    return ids;
}

// -------------------------------------------------------------------
// Traffic-shape zoo
// -------------------------------------------------------------------

const char *
trafficClassName(TrafficClass c)
{
    return c == TrafficClass::Interactive ? "interactive" : "bulk";
}

const char *
arrivalKindName(ArrivalSpec::Kind kind)
{
    switch (kind) {
      case ArrivalSpec::Kind::Uniform:    return "uniform";
      case ArrivalSpec::Kind::Poisson:    return "poisson";
      case ArrivalSpec::Kind::Diurnal:    return "diurnal";
      case ArrivalSpec::Kind::FlashCrowd: return "flash-crowd";
    }
    panic("unknown ArrivalSpec::Kind");
}

namespace
{

/** Peak instantaneous rate of a spec (thinning envelope). */
double
peakRate(const ArrivalSpec &spec)
{
    switch (spec.kind) {
      case ArrivalSpec::Kind::Uniform:
      case ArrivalSpec::Kind::Poisson:
        return spec.ratePerSec;
      case ArrivalSpec::Kind::Diurnal:
        return spec.ratePerSec * (1.0 + spec.diurnalDepth);
      case ArrivalSpec::Kind::FlashCrowd:
        return spec.ratePerSec * spec.burstMultiplier;
    }
    panic("unknown ArrivalSpec::Kind");
}

void
validateArrivalSpec(const ArrivalSpec &spec)
{
    VREX_ASSERT(spec.ratePerSec > 0.0,
                "arrival rate must be positive (got %g)",
                spec.ratePerSec);
    if (spec.kind == ArrivalSpec::Kind::Diurnal) {
        VREX_ASSERT(spec.diurnalDepth >= 0.0 &&
                        spec.diurnalDepth < 1.0,
                    "diurnal depth must be in [0, 1) (got %g)",
                    spec.diurnalDepth);
        VREX_ASSERT(spec.diurnalPeriodSec > 0.0,
                    "diurnal period must be positive (got %g)",
                    spec.diurnalPeriodSec);
    }
    if (spec.kind == ArrivalSpec::Kind::FlashCrowd) {
        VREX_ASSERT(spec.burstMultiplier >= 1.0,
                    "flash-crowd multiplier must be >= 1 (got %g)",
                    spec.burstMultiplier);
        VREX_ASSERT(spec.burstLenSec >= 0.0,
                    "flash-crowd burst length must be >= 0 (got %g)",
                    spec.burstLenSec);
    }
}

} // namespace

ArrivalProcess::ArrivalProcess(const ArrivalSpec &spec, uint64_t seed)
    : spec_(spec), rng(seed, "arrivals")
{
    validateArrivalSpec(spec_);
}

double
ArrivalProcess::rateAt(uint64_t at_us) const
{
    const double t = static_cast<double>(at_us) / 1e6;
    switch (spec_.kind) {
      case ArrivalSpec::Kind::Uniform:
      case ArrivalSpec::Kind::Poisson:
        return spec_.ratePerSec;
      case ArrivalSpec::Kind::Diurnal:
        return spec_.ratePerSec *
               (1.0 + spec_.diurnalDepth *
                          std::sin(2.0 * 3.14159265358979323846 * t /
                                   spec_.diurnalPeriodSec));
      case ArrivalSpec::Kind::FlashCrowd:
        return t >= spec_.burstStartSec &&
                       t < spec_.burstStartSec + spec_.burstLenSec
                   ? spec_.ratePerSec * spec_.burstMultiplier
                   : spec_.ratePerSec;
    }
    panic("unknown ArrivalSpec::Kind");
}

uint64_t
ArrivalProcess::nextArrivalUs()
{
    if (spec_.kind == ArrivalSpec::Kind::Uniform) {
        // Exact spacing, no cumulative rounding drift: the i-th
        // arrival lands at round(i / rate) independent of history.
        const double period_us = 1e6 / spec_.ratePerSec;
        const auto idx = static_cast<double>(uniformCount++);
        nowUs = static_cast<uint64_t>(std::llround(idx * period_us));
        return nowUs;
    }
    // Thinning: candidate arrivals at the peak rate, accepted with
    // probability rate(t)/peak — an exact inhomogeneous Poisson
    // process, deterministic given (spec, seed).
    const double peak = peakRate(spec_);
    for (;;) {
        const double dt_s = -std::log1p(-rng.uniform()) / peak;
        const auto dt_us = static_cast<uint64_t>(
            std::max<long long>(1, std::llround(dt_s * 1e6)));
        nowUs += dt_us;
        if (rng.uniform() * peak <= rateAt(nowUs))
            return nowUs;
    }
}

uint32_t
paretoLength(Rng &rng, uint32_t lo, uint32_t hi, double alpha)
{
    VREX_ASSERT(lo > 0 && lo <= hi,
                "paretoLength needs 0 < lo <= hi (got [%u, %u])", lo,
                hi);
    VREX_ASSERT(alpha > 0.0,
                "paretoLength needs a positive tail index (got %g)",
                alpha);
    if (lo == hi)
        return lo;
    // Inverse-CDF of the bounded Pareto on [lo, hi].
    const double l = lo, h = hi;
    const double u = rng.uniform();
    const double la = std::pow(l, alpha), ha = std::pow(h, alpha);
    const double x =
        std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
    const auto v = static_cast<uint32_t>(x);
    return std::clamp(v, lo, hi);
}

const char *
sessionProfileName(SessionProfile p)
{
    switch (p) {
      case SessionProfile::QaAverage:         return "qa-average";
      case SessionProfile::ChattyAdversary:   return "chatty-adversary";
      case SessionProfile::LongVideoMarathon: return "marathon";
      case SessionProfile::BulkIngest:        return "bulk-ingest";
    }
    panic("unknown SessionProfile");
}

TrafficClass
profileClass(SessionProfile p)
{
    switch (p) {
      case SessionProfile::QaAverage:
      case SessionProfile::ChattyAdversary:
        return TrafficClass::Interactive;
      case SessionProfile::LongVideoMarathon:
      case SessionProfile::BulkIngest:
        return TrafficClass::Bulk;
    }
    panic("unknown SessionProfile");
}

SessionScript
profileScript(SessionProfile p, uint64_t seed)
{
    switch (p) {
      case SessionProfile::QaAverage:
        return WorkloadGenerator::coinAverage(seed);
      case SessionProfile::ChattyAdversary: {
        // Short clip, a heavy-tailed burst of tiny QA turns: the
        // adversary hammering the interactive path with chatter.
        SessionScript s;
        s.name = "chatty-adversary";
        s.task = CoinTask::Step;
        s.video.driftRate = 0.16;
        s.video.sceneCutProb = 0.12;
        s.seed = seed;
        Rng rng(seed, "chatty-adversary");
        const uint32_t turns = paretoLength(rng, 4, 32, 1.2);
        s.events.push_back({SessionEvent::Type::Frame, 0});
        for (uint32_t t = 0; t < turns; ++t) {
            if (t > 0 && rng.bernoulli(0.25))
                s.events.push_back({SessionEvent::Type::Frame, 0});
            s.events.push_back(
                {SessionEvent::Type::Question,
                 2 + static_cast<uint32_t>(rng.uniformInt(4))});
            s.events.push_back(
                {SessionEvent::Type::Generate,
                 2 + static_cast<uint32_t>(rng.uniformInt(5))});
        }
        return s;
      }
      case SessionProfile::LongVideoMarathon: {
        // Bounded-Pareto video length: most marathons are merely
        // long, a few are enormous — the heavy tail that stresses
        // ingest capacity and KV growth.
        SessionScript s;
        s.name = "marathon";
        s.task = CoinTask::Proc;
        s.video.driftRate = 0.05;
        s.video.sceneCutProb = 0.02;
        s.seed = seed;
        Rng rng(seed, "marathon");
        const uint32_t frames = paretoLength(rng, 48, 320, 1.1);
        for (uint32_t f = 0; f < frames; ++f)
            s.events.push_back({SessionEvent::Type::Frame, 0});
        s.events.push_back(
            {SessionEvent::Type::Question,
             8 + static_cast<uint32_t>(rng.uniformInt(8))});
        s.events.push_back(
            {SessionEvent::Type::Generate,
             12 + static_cast<uint32_t>(rng.uniformInt(12))});
        return s;
      }
      case SessionProfile::BulkIngest: {
        // Background backlog upload: frames only, one token QA round
        // to close the session out.
        SessionScript s;
        s.name = "bulk-ingest";
        s.task = CoinTask::Task;
        s.video.driftRate = 0.03;
        s.video.sceneCutProb = 0.01;
        s.seed = seed;
        Rng rng(seed, "bulk-ingest");
        const uint32_t frames = paretoLength(rng, 12, 96, 1.5);
        for (uint32_t f = 0; f < frames; ++f)
            s.events.push_back({SessionEvent::Type::Frame, 0});
        s.events.push_back({SessionEvent::Type::Question, 2});
        s.events.push_back({SessionEvent::Type::Generate, 2});
        return s;
      }
    }
    panic("unknown SessionProfile");
}

uint32_t
TraceArrival::unitItems() const
{
    uint32_t n = 0;
    for (const auto &e : script.events)
        n += e.unitCount();
    return n;
}

uint64_t
TrafficTrace::horizonUs() const
{
    return arrivals.empty() ? 0 : arrivals.back().atUs;
}

uint64_t
TrafficTrace::totalUnitItems() const
{
    uint64_t n = 0;
    for (const auto &a : arrivals)
        n += a.unitItems();
    return n;
}

uint32_t
TrafficTrace::countClass(TrafficClass c) const
{
    uint32_t n = 0;
    for (const auto &a : arrivals)
        n += a.cls == c;
    return n;
}

TrafficTrace
buildTrace(const TraceSpec &spec)
{
    VREX_ASSERT(spec.sessions > 0,
                "trace '%s' needs at least one session",
                spec.name.c_str());
    double mix_total = 0.0;
    for (double w : spec.profileMix) {
        VREX_ASSERT(w >= 0.0,
                    "trace '%s' has a negative profile weight",
                    spec.name.c_str());
        mix_total += w;
    }
    VREX_ASSERT(mix_total > 0.0,
                "trace '%s' needs a non-empty profile mix",
                spec.name.c_str());

    TrafficTrace trace;
    trace.spec = spec;
    trace.arrivals.reserve(spec.sessions);
    ArrivalProcess arrivals(spec.arrivals, spec.seed);
    Rng mix_rng(spec.seed, "profile-mix");
    Rng seed_rng(spec.seed, "script-seeds");
    for (uint32_t i = 0; i < spec.sessions; ++i) {
        TraceArrival a;
        a.atUs = arrivals.nextArrivalUs();
        double pick = mix_rng.uniform() * mix_total;
        uint32_t p = 0;
        while (p + 1 < kSessionProfiles &&
               pick >= spec.profileMix[p])
            pick -= spec.profileMix[p], ++p;
        a.profile = static_cast<SessionProfile>(p);
        a.cls = profileClass(a.profile);
        a.script = profileScript(a.profile, seed_rng.nextU64());
        a.script.name += "-" + std::to_string(i);
        trace.arrivals.push_back(std::move(a));
    }
    return trace;
}

const std::vector<std::string> &
traceZoo()
{
    static const std::vector<std::string> names = {
        "steady-qa",      "diurnal-mix",   "flash-crowd",
        "chatty-adversary", "marathon-tail", "mixed-classes",
    };
    return names;
}

TraceSpec
traceSpecByName(const std::string &name, uint32_t sessions)
{
    TraceSpec spec;
    spec.name = name;
    if (name == "steady-qa") {
        // Baseline: homogeneous Poisson of average QA sessions.
        spec.seed = 101;
        spec.sessions = 48;
        spec.arrivals.kind = ArrivalSpec::Kind::Poisson;
        spec.arrivals.ratePerSec = 16.0;
        spec.profileMix = {1.0, 0.0, 0.0, 0.0};
    } else if (name == "diurnal-mix") {
        // Day/night swing over a mixed population.
        spec.seed = 202;
        spec.sessions = 48;
        spec.arrivals.kind = ArrivalSpec::Kind::Diurnal;
        spec.arrivals.ratePerSec = 14.0;
        spec.arrivals.diurnalDepth = 0.8;
        spec.arrivals.diurnalPeriodSec = 3.0;
        spec.profileMix = {0.6, 0.15, 0.0, 0.25};
    } else if (name == "flash-crowd") {
        // Viral spike: 8x the base rate for one virtual second.
        spec.seed = 303;
        spec.sessions = 56;
        spec.arrivals.kind = ArrivalSpec::Kind::FlashCrowd;
        spec.arrivals.ratePerSec = 8.0;
        spec.arrivals.burstStartSec = 2.0;
        spec.arrivals.burstLenSec = 1.0;
        spec.arrivals.burstMultiplier = 8.0;
        spec.profileMix = {0.8, 0.2, 0.0, 0.0};
    } else if (name == "chatty-adversary") {
        // Interactive path under chatter pressure.
        spec.seed = 404;
        spec.sessions = 40;
        spec.arrivals.kind = ArrivalSpec::Kind::Poisson;
        spec.arrivals.ratePerSec = 20.0;
        spec.profileMix = {0.3, 0.7, 0.0, 0.0};
    } else if (name == "marathon-tail") {
        // Heavy-tailed video lengths dominating ingest.
        spec.seed = 505;
        spec.sessions = 24;
        spec.arrivals.kind = ArrivalSpec::Kind::Poisson;
        spec.arrivals.ratePerSec = 6.0;
        spec.profileMix = {0.4, 0.0, 0.5, 0.1};
    } else if (name == "mixed-classes") {
        // The full Interactive/Bulk population in one trace.
        spec.seed = 606;
        spec.sessions = 48;
        spec.arrivals.kind = ArrivalSpec::Kind::Poisson;
        spec.arrivals.ratePerSec = 14.0;
        spec.profileMix = {0.4, 0.15, 0.15, 0.3};
    } else {
        std::string zoo;
        for (const auto &n : traceZoo())
            zoo += (zoo.empty() ? "" : ", ") + n;
        panic("unknown trace '%s' (catalog: %s)", name.c_str(),
              zoo.c_str());
    }
    if (sessions > 0)
        spec.sessions = sessions;
    return spec;
}

} // namespace vrex
