/**
 * @file
 * Cross-module integration tests: every retrieval policy driven
 * through full multi-turn streaming sessions, with a validating
 * decorator asserting the SelectionPolicy contract on every call;
 * plus a naive attention reference implementation cross-checking
 * the production kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/resv.hh"
#include "llm/attention.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "tensor/ops.hh"
#include "testutil.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Decorator asserting the SelectionPolicy contract. */
class ValidatingPolicy : public SelectionPolicy
{
  public:
    explicit ValidatingPolicy(SelectionPolicy *inner) : inner(inner) {}

    void
    onBlockAppended(uint32_t layer, const KVCache &cache,
                    uint32_t block_start, uint32_t block_len,
                    TokenStage stage) override
    {
        EXPECT_EQ(cache.layer(layer).keys.rows(),
                  block_start + block_len);
        inner->onBlockAppended(layer, cache, block_start, block_len,
                               stage);
    }

    LayerSelection
    select(uint32_t layer, const Matrix &q, const KVCache &cache,
           uint32_t past_len, TokenStage stage) override
    {
        LayerSelection sel =
            inner->select(layer, q, cache, past_len, stage);
        EXPECT_EQ(sel.kvHeads.size(), cache.config().nKvHeads);
        for (const auto &h : sel.kvHeads) {
            if (h.selectAll)
                continue;
            uint32_t prev = 0;
            bool first = true;
            for (uint32_t idx : h.indices) {
                EXPECT_LT(idx, past_len);
                if (!first) {
                    EXPECT_GT(idx, prev);  // Sorted, unique.
                }
                prev = idx;
                first = false;
            }
        }
        ++calls;
        return sel;
    }

    void reset() override { inner->reset(); }

    uint32_t calls = 0;

  private:
    SelectionPolicy *inner;
};

SessionScript
multiTurnScript(uint64_t seed)
{
    return WorkloadGenerator::multiTurn(15, 3, seed);
}

void
runValidated(SelectionPolicy *policy)
{
    ModelConfig cfg = ModelConfig::tiny();
    ValidatingPolicy validating(policy);
    StreamingSession session(cfg, &validating, 42);
    SessionRunResult r = session.run(multiTurnScript(7));
    EXPECT_GT(validating.calls, 0u);
    EXPECT_GT(r.totalTokens, 0u);
    EXPECT_EQ(r.frames, 15u);
}

} // namespace

TEST(Integration, ResvContractHolds)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    runValidated(&policy);
}

TEST(Integration, InfiniGenContractHolds)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    InfiniGenPolicy policy(cfg, ic);
    runValidated(&policy);
}

TEST(Integration, InfiniGenPContractHolds)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.prefill = true;
    InfiniGenPolicy policy(cfg, ic);
    runValidated(&policy);
}

TEST(Integration, ReKVContractHolds)
{
    ModelConfig cfg = ModelConfig::tiny();
    ReKVConfig rc;
    ReKVPolicy policy(cfg, rc);
    runValidated(&policy);
}

TEST(Integration, FlexGenContractHolds)
{
    FlexGenPolicy policy;
    runValidated(&policy);
}

TEST(Integration, UnclusteredResvContractHolds)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    rc.clustering = false;
    ResvPolicy policy(cfg, rc);
    runValidated(&policy);
}

TEST(Integration, SessionsAreRepeatableAcrossPolicyKinds)
{
    // The video/question stream must be identical regardless of the
    // policy, so comparisons are apples-to-apples.
    ModelConfig cfg = ModelConfig::tiny();
    StreamingSession a(cfg, nullptr, 42);
    SessionRunResult ra = a.run(multiTurnScript(8));

    FlexGenPolicy flex;
    StreamingSession b(cfg, &flex, 42);
    SessionRunResult rb = b.run(multiTurnScript(8));

    // FlexGen == full attention: identical generations.
    EXPECT_EQ(ra.generated, rb.generated);
    EXPECT_EQ(ra.totalTokens, rb.totalTokens);
}

namespace
{

/** Naive O(T*S) single-head attention, written independently. */
void
naiveAttention(const ModelConfig &cfg, const Matrix &q,
               const LayerKV &kv, uint32_t past_len, Matrix &out)
{
    const uint32_t hd = cfg.headDim();
    out = Matrix(q.rows(), cfg.dModel);
    for (uint32_t h = 0; h < cfg.nHeads; ++h) {
        const uint32_t kvh = h / cfg.groupSize();
        for (uint32_t t = 0; t < q.rows(); ++t) {
            const uint32_t limit = past_len + t + 1;
            std::vector<float> w(limit);
            float mx = -1e30f;
            for (uint32_t s = 0; s < limit; ++s) {
                w[s] = dot(q.row(t) + h * hd,
                           kv.keys.row(s) + kvh * hd, hd) /
                    std::sqrt(static_cast<float>(hd));
                mx = std::max(mx, w[s]);
            }
            float z = 0.0f;
            for (uint32_t s = 0; s < limit; ++s) {
                w[s] = std::exp(w[s] - mx);
                z += w[s];
            }
            for (uint32_t s = 0; s < limit; ++s) {
                float p = w[s] / z;
                for (uint32_t d = 0; d < hd; ++d)
                    out.at(t, h * hd + d) +=
                        p * kv.values.row(s)[kvh * hd + d];
            }
        }
    }
}

} // namespace

TEST(Integration, AttentionMatchesNaiveReference)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(11);
    testutil::fillLayer(kv, cfg, 9, rng);

    Matrix q = testutil::randomMatrix(rng, 3, cfg.nHeads * cfg.headDim());

    Matrix fast, slow;
    attentionForward(cfg, q, kv.layer(0), 6, nullptr, fast);
    naiveAttention(cfg, q, kv.layer(0), 6, slow);
    ASSERT_TRUE(fast.sameShape(slow));
    for (uint32_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast.raw()[i], slow.raw()[i], 1e-4f);
}

TEST(Integration, MultiTurnRetrievalKeepsEarlyContextAvailable)
{
    // The motivation for retrieval over pruning (paper SII-A): late
    // queries can still attend tokens from the first frames. Verify
    // ReSV actually selects early tokens in the last turn.
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    rc.thrWics = 0.9f;  // Select generously for this check.
    ResvPolicy policy(cfg, rc);
    StreamingSession session(cfg, &policy, 42);
    session.run(multiTurnScript(9));

    const auto &history = session.model().history();
    const BlockStats &last = history.back();
    EXPECT_GT(last.pastLen, 0u);
    // Early-context availability is structural: nothing was evicted.
    EXPECT_EQ(session.model().cache().tokenCount(),
              last.pastLen + last.blockLen);
}
