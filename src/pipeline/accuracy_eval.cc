#include "pipeline/accuracy_eval.hh"

#include <algorithm>

#include "pipeline/streaming_session.hh"
#include "tensor/ops.hh"

namespace vrex
{

FidelityResult
evaluateFidelity(const ModelConfig &model, const SessionScript &script,
                 SelectionPolicy *policy, uint64_t seed)
{
    // Reference: full attention, free-running generation.
    StreamingSession ref_session(model, nullptr, seed);
    SessionRunResult ref = ref_session.run(script);

    // Policy run: teacher-forced with the reference tokens so every
    // step is compared under the identical context.
    if (policy)
        policy->reset();
    StreamingSession test_session(model, policy, seed);
    SessionRunResult test = test_session.run(script, ref.generated);

    return compareRuns(ref, test);
}

FidelityResult
compareRuns(const SessionRunResult &ref, const SessionRunResult &test)
{
    FidelityResult out;
    const size_t n =
        std::min(ref.generated.size(), test.generated.size());
    uint32_t agree = 0;
    double cos_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        agree += ref.generated[i] == test.generated[i];
        const auto &a = ref.stepLogits[i];
        const auto &b = test.stepLogits[i];
        cos_sum += cosineSimilarity(a.data(), b.data(),
                                    static_cast<uint32_t>(a.size()));
    }
    out.steps = static_cast<uint32_t>(n);
    out.tokenAgreement =
        n ? static_cast<double>(agree) / static_cast<double>(n) : 1.0;
    out.logitCosine = n ? cos_sum / static_cast<double>(n) : 1.0;
    out.frameRatio = test.frameRatio;
    out.textRatio = test.textRatio;
    return out;
}

double
proxyAccuracy(double vanilla_accuracy, const FidelityResult &fidelity)
{
    // Perfect fidelity returns the vanilla accuracy; zero fidelity
    // decays toward the chance-level floor the paper's worst
    // baselines approach. The 0.25/0.75 split keeps small logit
    // distortions in the sub-1% accuracy-drop regime of Table II.
    return vanilla_accuracy * (0.25 + 0.75 * fidelity.combined());
}

} // namespace vrex
