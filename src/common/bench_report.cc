#include "common/bench_report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/json_lite.hh"
#include "common/logging.hh"

namespace vrex::bench
{

std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

namespace
{

/**
 * Identity strings (bench/panel/row/metric/unit) end up as CSV
 * fields, whose reader is line-based: embedded newlines would emit
 * records the reader rejects, so forbid them at registration time.
 */
const std::string &
checkIdent(const std::string &s)
{
    VREX_ASSERT(s.find_first_of("\n\r") == std::string::npos,
                "newline in metric identity '%s'", s.c_str());
    return s;
}

} // namespace

Reporter::Reporter(std::string benchName) : bench_(std::move(benchName))
{
    VREX_ASSERT(!bench_.empty(), "bench name must be non-empty");
    checkIdent(bench_);
}

Reporter::Panel &
Reporter::currentPanel()
{
    if (panels_.empty())
        panels_.push_back({"main", "", {}});
    return panels_.back();
}

void
Reporter::beginPanel(const std::string &id, const std::string &title)
{
    VREX_ASSERT(!id.empty(), "panel id must be non-empty");
    checkIdent(id);
    for (const auto &p : panels_)
        VREX_ASSERT(p.id != id, "duplicate panel id '%s'", id.c_str());
    panels_.push_back({id, title, {}});
}

void
Reporter::add(const std::string &row, const std::string &metric,
              double value, const std::string &unit, int prec)
{
    const std::string &panel = currentPanel().id;
    VREX_ASSERT(!find(panel, row, metric),
                "duplicate metric %s/%s/%s", panel.c_str(), row.c_str(),
                metric.c_str());
    metrics_.push_back({panel, checkIdent(row), checkIdent(metric),
                        value, checkIdent(unit), prec});
}

void
Reporter::addText(const std::string &row, const std::string &metric,
                  const std::string &text)
{
    textCells_.push_back({currentPanel().id, row, metric, text});
}

void
Reporter::note(const std::string &text)
{
    currentPanel().notes.push_back(text);
}

const Metric *
Reporter::find(const std::string &panel, const std::string &row,
               const std::string &metric) const
{
    for (const auto &m : metrics_) {
        if (m.panel == panel && m.row == row && m.metric == metric)
            return &m;
    }
    return nullptr;
}

namespace
{

std::string
humanCell(const Metric &m)
{
    char buf[48];
    if (m.prec >= 0)
        std::snprintf(buf, sizeof(buf), "%.*f", m.prec, m.value);
    else
        std::snprintf(buf, sizeof(buf), "%.4g", m.value);
    return buf + m.unit;
}

void
appendPadded(std::string &out, const std::string &cell, size_t width,
             bool leftAlign)
{
    if (!leftAlign && cell.size() < width)
        out.append(width - cell.size(), ' ');
    out += cell;
    if (leftAlign && cell.size() < width)
        out.append(width - cell.size(), ' ');
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Reporter::renderHuman() const
{
    std::string out;
    for (const auto &panel : panels_) {
        out += "\n=== ";
        out += panel.title.empty() ? bench_ + " · " + panel.id
                                   : panel.title;
        out += " ===\n";

        // Pivot: rows and metric columns in first-appearance order;
        // cells carry their unit so mixed-unit rows stay readable.
        std::vector<std::string> rows, cols;
        auto noteName = [](std::vector<std::string> &v,
                           const std::string &s) {
            if (std::find(v.begin(), v.end(), s) == v.end())
                v.push_back(s);
        };
        for (const auto &m : metrics_) {
            if (m.panel != panel.id)
                continue;
            noteName(rows, m.row);
            noteName(cols, m.metric);
        }
        for (const auto &t : textCells_) {
            if (t.panel != panel.id)
                continue;
            noteName(rows, t.row);
            noteName(cols, t.metric);
        }

        auto cell = [&](const std::string &row,
                        const std::string &col) -> std::string {
            if (const Metric *m = find(panel.id, row, col))
                return humanCell(*m);
            for (const auto &t : textCells_) {
                if (t.panel == panel.id && t.row == row &&
                    t.metric == col)
                    return t.text;
            }
            return "-";
        };

        if (!rows.empty()) {
            std::vector<size_t> widths(cols.size());
            size_t rowWidth = 0;
            for (const auto &r : rows)
                rowWidth = std::max(rowWidth, r.size());
            for (size_t c = 0; c < cols.size(); ++c) {
                widths[c] = cols[c].size();
                for (const auto &r : rows)
                    widths[c] = std::max(widths[c],
                                         cell(r, cols[c]).size());
            }

            appendPadded(out, "", rowWidth, true);
            for (size_t c = 0; c < cols.size(); ++c) {
                out += "  ";
                appendPadded(out, cols[c], widths[c], false);
            }
            out += '\n';
            for (const auto &r : rows) {
                appendPadded(out, r, rowWidth, true);
                for (size_t c = 0; c < cols.size(); ++c) {
                    out += "  ";
                    appendPadded(out, cell(r, cols[c]), widths[c],
                                 false);
                }
                out += '\n';
            }
        }
        for (const auto &n : panel.notes) {
            out += "--- ";
            out += n;
            out += '\n';
        }
    }
    return out;
}

std::string
Reporter::renderJson() const
{
    std::string out = "{\n";
    out += "  \"schema\": \"vrex-bench-1\",\n";
    out += "  \"bench\": " + json::quote(bench_) + ",\n";
    out += "  \"metrics\": [";
    for (size_t i = 0; i < metrics_.size(); ++i) {
        const Metric &m = metrics_[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"bench\": " + json::quote(bench_);
        out += ", \"panel\": " + json::quote(m.panel);
        out += ", \"row\": " + json::quote(m.row);
        out += ", \"metric\": " + json::quote(m.metric);
        out += ", \"value\": ";
        out += std::isfinite(m.value) ? formatValue(m.value) : "null";
        out += ", \"unit\": " + json::quote(m.unit) + "}";
    }
    out += metrics_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
Reporter::renderCsv() const
{
    std::string out = "bench,panel,row,metric,value,unit\n";
    for (const auto &m : metrics_) {
        // JSON collapses every non-finite value to null (read back as
        // NaN); write "nan" here so both formats carry the same
        // record and the --verify cross-check holds.
        out += csvField(bench_) + ',' + csvField(m.panel) + ',' +
               csvField(m.row) + ',' + csvField(m.metric) + ',' +
               (std::isfinite(m.value) ? formatValue(m.value)
                                       : "nan") +
               ',' + csvField(m.unit) + '\n';
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opts, std::string &err)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto pathArg = [&](std::string &dst) {
            if (i + 1 >= argc) {
                err = "missing path after " + arg;
                return false;
            }
            dst = argv[++i];
            return true;
        };
        if (arg == "--json") {
            if (!pathArg(opts.jsonPath))
                return false;
        } else if (arg == "--csv") {
            if (!pathArg(opts.csvPath))
                return false;
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            err = "unknown argument '" + arg + "'";
            return false;
        }
    }
    return true;
}

std::string
usage(const std::string &benchName)
{
    return "usage: " + benchName +
           " [--json PATH] [--csv PATH] [--quiet] [--help]\n"
           "  --json PATH  write metrics as JSON (vrex-bench-1 schema)\n"
           "  --csv PATH   write metrics as CSV "
           "(bench,panel,row,metric,value,unit)\n"
           "  --quiet      suppress the human-readable tables\n";
}

namespace
{

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out.flush());
}

} // namespace

int
runBench(const std::string &benchName, int argc, char **argv,
         const std::function<void(Reporter &)> &body)
{
    Options opts;
    std::string err;
    if (!parseArgs(argc, argv, opts, err)) {
        std::fprintf(stderr, "%s: %s\n%s", benchName.c_str(),
                     err.c_str(), usage(benchName).c_str());
        return 2;
    }
    if (opts.help) {
        std::fputs(usage(benchName).c_str(), stdout);
        return 0;
    }

    Reporter reporter(benchName);
    body(reporter);

    if (!opts.quiet)
        std::fputs(reporter.renderHuman().c_str(), stdout);
    if (!opts.jsonPath.empty() &&
        !writeFile(opts.jsonPath, reporter.renderJson())) {
        std::fprintf(stderr, "%s: cannot write %s\n", benchName.c_str(),
                     opts.jsonPath.c_str());
        return 1;
    }
    if (!opts.csvPath.empty() &&
        !writeFile(opts.csvPath, reporter.renderCsv())) {
        std::fprintf(stderr, "%s: cannot write %s\n", benchName.c_str(),
                     opts.csvPath.c_str());
        return 1;
    }
    return 0;
}

} // namespace vrex::bench
