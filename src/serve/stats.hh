/**
 * @file
 * Scheduler observability: admission, queueing and dispatch counters
 * exported by vrex::serve::Engine / Scheduler as plain value
 * snapshots, so benches and tests can assert saturation and fairness
 * behaviour without peeking into scheduler internals.
 *
 * Two kinds of numbers live here:
 *
 *  - *Logical* counters (items, slices, queue depths, wait measured
 *    in dispatch slices, deadline promotions, rate-limited slices).
 *    Item/slice/rejection totals are exact given the verb arrival
 *    order; the wait/depth high-water marks are schedule-dependent
 *    in live feeding (always within their bounds) and become exact
 *    when bursts are staged under pause()/resume(), which is how the
 *    tests and the kvmu_layout --saturate panel assert on them.
 *  - *Wall-clock* times (queue wait / service nanoseconds, and the
 *    per-class latency-percentile histograms built on them). These
 *    are observability-only: never assert exact values on them —
 *    only sample counts, which are logical.
 */

#ifndef VREX_SERVE_STATS_HH
#define VREX_SERVE_STATS_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "common/stats.hh"

namespace vrex::serve
{

/**
 * Scheduling class of a session. The dispatcher keeps one ready
 * list per class and serves them weighted round-robin
 * (SchedulerConfig::classWeights), so latency-sensitive generation
 * (Interactive) can be preferred over background frame ingest (Bulk)
 * without starving either. Sessions default to Interactive; with the
 * default weights {1, 1} the two lists behave as one plain
 * round-robin queue (the PR-4 contract).
 */
enum class SchedClass : uint8_t
{
    Interactive = 0,
    Bulk = 1,
};

/** Number of scheduling classes (array dimension of the knobs). */
inline constexpr uint32_t kSchedClasses = 2;

inline const char *
schedClassName(SchedClass c)
{
    return c == SchedClass::Interactive ? "interactive" : "bulk";
}

/**
 * Latency histogram with logarithmic bins: samples are stored as
 * log10(nanoseconds) over 1 ns .. 10 s in 0.1-decade bins, so
 * percentiles carry ~±12% relative resolution across seven orders
 * of magnitude. Wall-clock observability only — assert on samples()
 * (a logical count), never on the percentile values.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() : hist(0.0, 10.0, 100) {}

    void
    add(uint64_t ns)
    {
        hist.add(std::log10(static_cast<double>(ns) + 1.0));
    }

    /** Samples recorded (== dispatch slices measured). */
    uint64_t samples() const { return hist.total(); }

    /** Percentile (q in [0, 1]) in milliseconds; 0 when empty. */
    double
    percentileMs(double q) const
    {
        if (samples() == 0)
            return 0.0;
        return std::pow(10.0, hist.percentile(q)) / 1e6;
    }

    double p50Ms() const { return percentileMs(0.50); }
    double p95Ms() const { return percentileMs(0.95); }
    double p99Ms() const { return percentileMs(0.99); }

    /** Merge a same-shaped snapshot (counts and samples add up). */
    void merge(const LatencyHistogram &other)
    {
        hist.merge(other.hist);
    }

  private:
    Histogram hist;
};

/** Admission + dispatch knobs of the engine scheduler. */
struct SchedulerConfig
{
    /** Max concurrently open sessions; 0 = unlimited. */
    uint32_t maxLiveSessions = 0;
    /** Max queued unit work items per session; 0 = unbounded.
     *  A Generate{n} verb counts as n items (see
     *  StreamingSession::unitEvents); Frame and Question count 1. */
    uint32_t maxQueuedPerSession = 0;
    /** Unit work items one dispatch slice executes before the
     *  session rotates to the back of the ready queue; 0 = drain the
     *  whole queue per slice (no time-slicing). */
    uint32_t sliceEvents = 4;
    /** Weighted round-robin: consecutive slices class c may dispatch
     *  before the rotation yields to the next class with ready work
     *  (0 is treated as 1). Defaults {1, 1}: the classes alternate
     *  slice-for-slice, which is byte-identical to the PR-4 single
     *  ready list when only one class is in use. */
    std::array<uint32_t, kSchedClasses> classWeights{1, 1};
    /** Default per-session rate limit: max unit items one dispatch
     *  slice may execute for a session (caps sliceEvents, so per
     *  ready-list rotation the session advances at most this many
     *  items); 0 = no cap. Per-session override:
     *  SessionOptions::maxItemsPerRound. */
    uint32_t maxItemsPerRound = 0;
    /** Deadline-aware slicing: when a session's oldest queued item
     *  has waited more than this many dispatch slices (the logical
     *  clock), the session is promoted to the front of its class's
     *  ready list; 0 = disabled. */
    uint64_t deadlineSlices = 0;
};

/**
 * Cross-session batched-generation knobs (EngineConfig::batching).
 * Default off: the scheduler dispatches exactly as before and the
 * engine never takes the fused path, byte-identical to PR 9. When
 * enabled, per-session results are STILL byte-identical to a
 * sequential run — batching only fuses weight streams across
 * sessions (see serve/README.md, "Cross-session batched
 * generation").
 */
struct BatchConfig
{
    /** Master switch for the fused generation path. */
    bool enabled = false;
    /** Max member sessions one fused step may coalesce (>= 2). */
    uint32_t maxBatch = 16;
    /** Fewer claimable members than this run solo instead (a fused
     *  step of 1 is just overhead); clamped to >= 2. */
    uint32_t minBatch = 2;
};

/**
 * Batched-dispatch counters (Stats::batch). All logical: exact
 * under staged bursts, schedule-dependent (but internally
 * consistent) in live feeding. With batching disabled everything
 * stays zero.
 */
struct BatchStats
{
    /** The knobs the planner was built with. */
    BatchConfig config;
    /** Fused multi-session steps executed. */
    uint64_t coalescedSteps = 0;
    /** Member generation steps inside fused steps (one unit work
     *  item per member session per step). */
    uint64_t coalescedMembers = 0;
    /** Generation unit items that ran down the solo path while
     *  batching was enabled (not enough claimable peers). */
    uint64_t soloSteps = 0;
    /** Largest fused step observed. */
    uint32_t maxBatchObserved = 0;
    /** Distribution of fused-step sizes (members per step). */
    Histogram sizeHist{0.5, 64.5, 64};

    /** Mean members per fused step (0 when none ran). */
    double
    meanBatchSize() const
    {
        return coalescedSteps
                   ? static_cast<double>(coalescedMembers) /
                         static_cast<double>(coalescedSteps)
                   : 0.0;
    }

    /** meanBatchSize() relative to the maxBatch cap. */
    double
    fillRatio() const
    {
        return config.maxBatch > 0 ? meanBatchSize() / config.maxBatch
                                   : 0.0;
    }
};

/** Per-class dispatch counters + latency histograms (in Stats). */
struct ClassStats
{
    /** Dispatch slices this class ran. */
    uint64_t slices = 0;
    /** Unit work items this class executed. */
    uint64_t itemsExecuted = 0;
    /** Times a session of this class was deadline-promoted to the
     *  front of its ready list (logical — deterministic when bursts
     *  are staged). */
    uint64_t deadlinePromotions = 0;
    /** Slices whose item budget was clamped by a per-session rate
     *  limit while more work was queued (logical). */
    uint64_t rateLimitedSlices = 0;
    /** Ready->dispatch wait per slice (wall clock). */
    LatencyHistogram wait;
    /** Slice service time (wall clock). */
    LatencyHistogram service;
};

/** Per-session queue counters (also aggregated into Stats). */
struct QueueStats
{
    /** Scheduling class the session currently dispatches under. */
    SchedClass schedClass = SchedClass::Interactive;
    /** Effective per-session rate limit (0 = none). */
    uint32_t rateLimit = 0;
    /** Unit work items accepted into the queue. */
    uint64_t itemsEnqueued = 0;
    /** Unit work items refused by backpressure (bounded queue). */
    uint64_t itemsRejected = 0;
    /** Unit work items executed. */
    uint64_t itemsExecuted = 0;
    /** Dispatch slices this session ran. */
    uint64_t slices = 0;
    /** Current queue depth (unit work items). */
    uint32_t depth = 0;
    /** High-water queue depth. */
    uint32_t maxDepth = 0;
    /**
     * Fairness: the max number of *other* sessions' slices dispatched
     * between this session becoming ready and being dispatched. With
     * a single class (or default weights and one class in use) the
     * round-robin ready queue guarantees maxWaitSlices <= live - 1;
     * the weighted multi-class bound is documented in
     * serve/README.md.
     */
    uint64_t maxWaitSlices = 0;
    /** Times this session was deadline-promoted to the front of its
     *  class (logical). */
    uint64_t deadlinePromotions = 0;
    /** Slices whose budget was clamped by the rate limit while more
     *  work was queued (logical). */
    uint64_t rateLimitedSlices = 0;
    /** Wall-clock total time spent ready-but-waiting (ns). */
    uint64_t waitNs = 0;
    /** Wall-clock total time spent executing slices (ns). */
    uint64_t serviceNs = 0;
    /** Wall-clock worst single ready->dispatch wait (ns). */
    uint64_t maxWaitNs = 0;
    /** Per-slice ready->dispatch wait distribution (wall clock). */
    LatencyHistogram waitHist;
    /** Per-slice service-time distribution (wall clock). */
    LatencyHistogram serviceHist;
};

/**
 * KV-budget / session-hibernation snapshot (Engine::stats()::kv).
 * All byte values are logical; the latency histograms are wall-clock
 * observability only (assert on samples(), never on values).
 */
struct KvBudgetStats
{
    /** Configured budget (0 = unlimited, hibernation disabled). */
    uint64_t budgetBytes = 0;
    /** KV working-set bytes of resident (non-hibernated) sessions. */
    uint64_t residentBytes = 0;
    uint32_t residentSessions = 0;
    uint32_t hibernatedSessions = 0;
    /** Bytes currently held by the cold store. */
    uint64_t coldBytes = 0;
    /** Cumulative hibernate / wake transitions. */
    uint64_t hibernates = 0;
    uint64_t wakes = 0;
    /** Cumulative serialized blob bytes written on hibernate. */
    uint64_t hibernatedBytes = 0;
    /** Cumulative blob bytes read back on wake. */
    uint64_t wokenBytes = 0;
    /** Serialize + cold-store put time per hibernate (wall clock). */
    LatencyHistogram hibernateLatency;
    /** Cold-store get + rebuild + restore time per wake
     *  (wall clock) — the wake-latency contract surface. */
    LatencyHistogram wakeLatency;
};

/** Engine-wide scheduler snapshot. */
struct Stats
{
    // ---- admission ----------------------------------------------
    /** Sessions admitted since construction. */
    uint64_t admitted = 0;
    /** createSession attempts refused by the live-session cap. */
    uint64_t rejectedAdmissions = 0;
    /** Currently open sessions. */
    uint32_t liveSessions = 0;
    /** High-water open-session count. */
    uint32_t maxLiveObserved = 0;

    // ---- queueing / dispatch (aggregated over all sessions, -----
    // ---- including ones that have since closed) -----------------
    uint64_t itemsEnqueued = 0;
    uint64_t itemsRejected = 0;
    uint64_t itemsExecuted = 0;
    uint64_t slices = 0;
    uint32_t maxQueueDepth = 0;
    uint64_t maxWaitSlices = 0;
    uint64_t waitNs = 0;
    uint64_t serviceNs = 0;
    uint64_t maxWaitNs = 0;

    /** Per-class dispatch counters and wait/service latency
     *  percentiles (includes closed sessions). */
    std::array<ClassStats, kSchedClasses> classes;

    /** Weighted round-robin rotation snapshot: the class holding
     *  the dispatch turn and its remaining slice credit. Loan
     *  slices (dispatched for another class while the turn holder
     *  is busy but not ready) consume no credit. Diagnostic — exact
     *  only when dispatch is quiescent or externally gated. */
    SchedClass wrrTurnClass = SchedClass::Interactive;
    uint32_t wrrTurnCredit = 0;

    /** The knobs the scheduler was built with. */
    SchedulerConfig config;

    /** KV-budget / hibernation state. The Scheduler itself leaves
     *  this default; Engine::stats() fills it in (the budget manager
     *  lives in the engine, not the dispatcher). */
    KvBudgetStats kv;

    /** Cross-session batched-dispatch counters (all zero when
     *  batching is disabled). */
    BatchStats batch;

    const ClassStats &
    forClass(SchedClass c) const
    {
        return classes[static_cast<size_t>(c)];
    }

    /** Mean ready->dispatch wait per slice, milliseconds. */
    double
    meanWaitMs() const
    {
        return slices ? waitNs / 1e6 / static_cast<double>(slices)
                      : 0.0;
    }

    /** Mean slice service time, milliseconds. */
    double
    meanServiceMs() const
    {
        return slices ? serviceNs / 1e6 / static_cast<double>(slices)
                      : 0.0;
    }
};

} // namespace vrex::serve

#endif // VREX_SERVE_STATS_HH
