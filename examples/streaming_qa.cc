/**
 * @file
 * Multi-turn streaming question answering: the conversational
 * continuity scenario of paper §II-A. Frames keep arriving between
 * question/answer rounds; every round's answer depends on the whole
 * preserved KV history, which is why destructive cache pruning is
 * off the table and retrieval is used instead.
 *
 * Compares ReSV against fixed top-k (InfiniGenP-style) on the same
 * session: answer agreement with the full-attention reference and
 * the retrieval ratio each method needed.
 */

#include <cstdio>

#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    ModelConfig cfg = ModelConfig::tiny();
    SessionScript script = WorkloadGenerator::multiTurn(
        /*frames=*/24, /*turns=*/3, /*seed=*/7);

    std::printf("multi-turn session: %u frames, %u question tokens, "
                "%u answer tokens over 3 rounds\n\n",
                script.frameCount(), script.questionTokens(),
                script.answerTokens());

    std::printf("%-22s %10s %12s %12s\n", "policy", "agreement",
                "frame-ratio", "text-ratio");

    {
        ResvConfig rc;
        rc.thrWics = 0.5f;
        ResvPolicy resv(cfg, rc);
        FidelityResult f = evaluateFidelity(cfg, script, &resv, 42);
        std::printf("%-22s %9.1f%% %11.1f%% %11.1f%%\n",
                    "ReSV (dynamic)", 100.0 * f.tokenAgreement,
                    100.0 * f.frameRatio, 100.0 * f.textRatio);
    }
    {
        InfiniGenConfig ic;
        ic.ratio = 0.5f;
        ic.prefill = true;
        InfiniGenPolicy topk(cfg, ic);
        FidelityResult f = evaluateFidelity(cfg, script, &topk, 42);
        std::printf("%-22s %9.1f%% %11.1f%% %11.1f%%\n",
                    "fixed top-k 50%", 100.0 * f.tokenAgreement,
                    100.0 * f.frameRatio, 100.0 * f.textRatio);
    }
    {
        ReKVConfig rc;
        rc.ratio = 0.5f;
        ReKVPolicy rekv(cfg, rc);
        FidelityResult f = evaluateFidelity(cfg, script, &rekv, 42);
        std::printf("%-22s %9.1f%% %11.1f%% %11.1f%%\n",
                    "ReKV (frame top-k)", 100.0 * f.tokenAgreement,
                    100.0 * f.frameRatio, 100.0 * f.textRatio);
    }

    std::printf("\nReSV adapts its budget per layer/head instead of a "
                "fixed k,\nso it typically fetches less for the same "
                "agreement.\n");
    return 0;
}
