#include "video/frame_generator.hh"

namespace vrex
{

FrameGenerator::FrameGenerator(const VideoConfig &config, uint64_t seed,
                               const std::string &stream_name)
    : cfg(config), rng(seed, stream_name)
{
    startScene();
}

void
FrameGenerator::startScene()
{
    sceneLatent.assign(cfg.latentDim, 0.0f);
    for (auto &v : sceneLatent)
        v = static_cast<float>(rng.gaussian());
    tokenOffsets.assign(cfg.tokensPerFrame,
                        std::vector<float>(cfg.latentDim, 0.0f));
    for (auto &offset : tokenOffsets)
        for (auto &v : offset)
            v = static_cast<float>(rng.gaussian(0.0,
                                                cfg.tokenIdentity));
    ++scenes;
}

Matrix
FrameGenerator::nextFrameLatents()
{
    if (frameCount > 0 && rng.bernoulli(cfg.sceneCutProb))
        startScene();

    // Drift the scene latent.
    for (auto &v : sceneLatent)
        v += static_cast<float>(rng.gaussian(0.0, cfg.driftRate));

    Matrix latents(cfg.tokensPerFrame, cfg.latentDim);
    for (uint32_t t = 0; t < cfg.tokensPerFrame; ++t) {
        float *row = latents.row(t);
        for (uint32_t d = 0; d < cfg.latentDim; ++d) {
            row[d] = sceneLatent[d] + tokenOffsets[t][d] +
                static_cast<float>(rng.gaussian(0.0, cfg.tokenNoise));
        }
    }
    ++frameCount;
    return latents;
}

} // namespace vrex
