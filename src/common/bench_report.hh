/**
 * @file
 * Structured metric reporting for the paper-figure benchmarks.
 *
 * Every bench registers named scalar metrics into a Reporter instead
 * of printf-ing rows, and the shared harness renders them three ways:
 *
 *  - a human-readable table per panel on stdout (default),
 *  - `--json PATH`: a machine-readable report with the stable record
 *    schema `{bench, panel, row, metric, value, unit}`,
 *  - `--csv PATH`: the same records as `bench,panel,row,metric,
 *    value,unit` rows.
 *
 * The (bench, panel, row, metric) tuple is the stable identity CI uses
 * to diff runs against `bench/baseline.json`; renaming any component
 * is a schema change and requires a baseline refresh.
 */

#ifndef VREX_COMMON_BENCH_REPORT_HH
#define VREX_COMMON_BENCH_REPORT_HH

#include <functional>
#include <string>
#include <vector>

namespace vrex::bench
{

/** One reported scalar: the unit of machine-readable output. */
struct Metric
{
    std::string panel;
    std::string row;
    std::string metric;
    double value = 0.0;
    std::string unit;
    /** Decimal places for the human table; -1 renders with %.4g. */
    int prec = -1;
};

/**
 * Format a double so that parsing it back yields the same value
 * (shortest of %.15g/%.16g/%.17g that round-trips). Non-finite values
 * format as "nan"/"inf"/"-inf"; the JSON writer emits null for them.
 */
std::string formatValue(double v);

/** Collects metrics for one bench binary and renders every output. */
class Reporter
{
  public:
    explicit Reporter(std::string benchName);

    const std::string &benchName() const { return bench_; }

    /**
     * Start a panel (one figure sub-plot or table). Subsequent add()
     * and note() calls attach to it. Panel ids must be unique within
     * the bench; the title is human-output only.
     */
    void beginPanel(const std::string &id, const std::string &title);

    /** Register a scalar under the current panel. */
    void add(const std::string &row, const std::string &metric,
             double value, const std::string &unit = "", int prec = -1);

    /**
     * Put a non-numeric marker (e.g. "OOM", "-") into a human-table
     * cell. Text cells never appear in JSON/CSV: pair them with a
     * numeric companion metric when CI must see the condition.
     */
    void addText(const std::string &row, const std::string &metric,
                 const std::string &text);

    /** Attach a free-form note to the current panel (human only). */
    void note(const std::string &text);

    /** All registered metrics in insertion order. */
    const std::vector<Metric> &metrics() const { return metrics_; }

    /** Lookup by identity; nullptr when absent. */
    const Metric *find(const std::string &panel, const std::string &row,
                       const std::string &metric) const;

    std::string renderHuman() const;
    std::string renderJson() const;
    std::string renderCsv() const;

  private:
    struct TextCell
    {
        std::string panel;
        std::string row;
        std::string metric;
        std::string text;
    };

    struct Panel
    {
        std::string id;
        std::string title;
        std::vector<std::string> notes;
    };

    Panel &currentPanel();

    std::string bench_;
    std::vector<Panel> panels_;
    std::vector<Metric> metrics_;
    std::vector<TextCell> textCells_;
};

/** Output selection parsed from the shared bench command line. */
struct Options
{
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    bool help = false;
};

/**
 * Parse the shared bench flags (--json PATH, --csv PATH, --quiet,
 * --help/-h). Returns false and sets `err` on an unknown flag or a
 * missing argument.
 */
bool parseArgs(int argc, char **argv, Options &opts, std::string &err);

/** Usage string for one bench binary. */
std::string usage(const std::string &benchName);

/**
 * Shared main() body: parse flags, run `body(reporter)`, then print
 * the human tables (unless --quiet) and write the requested machine
 * outputs. Returns the process exit code.
 */
int runBench(const std::string &benchName, int argc, char **argv,
             const std::function<void(Reporter &)> &body);

} // namespace vrex::bench

#endif // VREX_COMMON_BENCH_REPORT_HH
