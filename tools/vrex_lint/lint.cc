#include "vrex_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vrex::lint
{

namespace
{

// -------------------------------------------------------------------
// Source views
//
// `noComments`: comments replaced by spaces (newlines kept), string
// and character literals intact — for the rules that must read
// literal text (assert-format) or code structure (serial-pairing).
// `codeOnly`: additionally blanks string/char literal *contents* —
// for token scans, so "steady_clock" inside a message string never
// trips a rule.

struct Views
{
    std::string noComments;
    std::string codeOnly;
};

Views
buildViews(const std::string &s)
{
    Views v;
    v.noComments.assign(s.size(), ' ');
    v.codeOnly.assign(s.size(), ' ');
    enum State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State st = Code;
    std::string raw_delim; // )delim" terminator of a raw string
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const char n = i + 1 < s.size() ? s[i + 1] : '\0';
        if (c == '\n') { // newlines survive in every view/state
            v.noComments[i] = '\n';
            v.codeOnly[i] = '\n';
            if (st == LineComment)
                st = Code;
            continue;
        }
        switch (st) {
        case Code:
            if (c == '/' && n == '/') {
                st = LineComment;
            } else if (c == '/' && n == '*') {
                st = BlockComment;
                ++i;
            } else if (c == '"') {
                // R"delim( ... )delim" — the R must directly abut.
                if (i > 0 && s[i - 1] == 'R' &&
                    (i < 2 || !(std::isalnum(
                                    static_cast<unsigned char>(s[i - 2])) ||
                                s[i - 2] == '_'))) {
                    raw_delim = ")";
                    for (size_t j = i + 1;
                         j < s.size() && s[j] != '('; ++j)
                        raw_delim += s[j];
                    raw_delim += '"';
                    st = RawString;
                } else {
                    st = String;
                }
                v.noComments[i] = '"';
                v.codeOnly[i] = '"';
            } else if (c == '\'') {
                st = Char;
                v.noComments[i] = '\'';
                v.codeOnly[i] = '\'';
            } else {
                v.noComments[i] = c;
                v.codeOnly[i] = c;
            }
            break;
        case LineComment:
            break; // blanked
        case BlockComment:
            if (c == '*' && n == '/') {
                st = Code;
                ++i;
            }
            break;
        case String:
            v.noComments[i] = c;
            if (c == '\\' && n != '\0') {
                v.noComments[i + 1] = n;
                ++i;
            } else if (c == '"') {
                v.codeOnly[i] = '"';
                st = Code;
            }
            break;
        case Char:
            v.noComments[i] = c;
            if (c == '\\' && n != '\0') {
                v.noComments[i + 1] = n;
                ++i;
            } else if (c == '\'') {
                v.codeOnly[i] = '\'';
                st = Code;
            }
            break;
        case RawString:
            v.noComments[i] = c;
            if (c == ')' &&
                s.compare(i, raw_delim.size(), raw_delim) == 0) {
                const size_t last = i + raw_delim.size() - 1;
                for (size_t j = i; j <= last && j < s.size(); ++j)
                    v.noComments[j] = s[j];
                v.codeOnly[last] = '"';
                i = last;
                st = Code;
            }
            break;
        }
    }
    return v;
}

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : s) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

int
lineOfOffset(const std::string &s, size_t off)
{
    return 1 + static_cast<int>(
                   std::count(s.begin(), s.begin() +
                              static_cast<long>(std::min(off, s.size())),
                              '\n'));
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isBlank(const std::string &s)
{
    return std::all_of(s.begin(), s.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c));
    });
}

/** Word-bounded occurrences of @p token in @p text (offsets). */
std::vector<size_t>
findToken(const std::string &text, const std::string &token)
{
    std::vector<size_t> hits;
    size_t at = 0;
    while ((at = text.find(token, at)) != std::string::npos) {
        const bool left_ok = at == 0 || !isIdentChar(text[at - 1]);
        const size_t end = at + token.size();
        const bool right_ok =
            end >= text.size() || !isIdentChar(text[end]);
        if (left_ok && right_ok)
            hits.push_back(at);
        at = end;
    }
    return hits;
}

// -------------------------------------------------------------------
// allow() directives

struct Allows
{
    /** rule -> set of 1-based lines where it is suppressed. */
    std::map<std::string, std::set<int>> lines;
    std::vector<Finding> syntaxFindings;
};

Allows
parseAllows(const std::string &rel_path,
            const std::vector<std::string> &raw_lines,
            const std::vector<std::string> &code_lines)
{
    static const std::string kTag = "vrex-lint:";
    Allows out;
    for (size_t li = 0; li < raw_lines.size(); ++li) {
        const std::string &line = raw_lines[li];
        size_t at = line.find(kTag);
        if (at == std::string::npos)
            continue;
        const int lineno = static_cast<int>(li) + 1;
        size_t p = at + kTag.size();
        while (p < line.size() && line[p] == ' ')
            ++p;
        if (line.compare(p, 6, "allow(") != 0) {
            out.syntaxFindings.push_back(
                {rel_path, lineno, "allow-syntax",
                 "unrecognized vrex-lint directive (expected "
                 "`vrex-lint: allow(<rule>) -- <justification>`)"});
            continue;
        }
        p += 6;
        const size_t close = line.find(')', p);
        if (close == std::string::npos) {
            out.syntaxFindings.push_back(
                {rel_path, lineno, "allow-syntax",
                 "unterminated allow( directive"});
            continue;
        }
        const std::string rule = line.substr(p, close - p);
        const auto &known = ruleIds();
        if (std::find(known.begin(), known.end(), rule) ==
            known.end()) {
            out.syntaxFindings.push_back(
                {rel_path, lineno, "allow-syntax",
                 "allow() names unknown rule '" + rule + "'"});
            continue;
        }
        // Mandatory justification: ` -- <non-empty text>` after the
        // closing paren. A suppression without a recorded reason is
        // itself a violation.
        const size_t dashes = line.find("--", close);
        std::string just;
        if (dashes != std::string::npos)
            just = line.substr(dashes + 2);
        if (isBlank(just)) {
            out.syntaxFindings.push_back(
                {rel_path, lineno, "allow-syntax",
                 "allow(" + rule +
                     ") without a justification (append `-- <why "
                     "this use is correct>`)"});
            continue;
        }
        // The allow covers its own line, and — when the directive
        // stands on a pure comment line — the next line that carries
        // code (skipping blank and further comment lines, so a
        // multi-line justification can wrap).
        out.lines[rule].insert(lineno);
        if (isBlank(code_lines[li])) {
            for (size_t j = li + 1; j < code_lines.size(); ++j) {
                if (isBlank(code_lines[j]))
                    continue;
                out.lines[rule].insert(static_cast<int>(j) + 1);
                break;
            }
        }
    }
    return out;
}

// -------------------------------------------------------------------
// Rule: layer-dag

/** The src/ layer DAG (transitive closure), mirroring the component
 *  link edges in the top-level CMakeLists. bench/tests/examples are
 *  exempt by construction: the linter only scans src/. */
const std::map<std::string, std::set<std::string>> &
layerAllowedIncludes()
{
    static const std::map<std::string, std::set<std::string>> dag = {
        {"common", {"common"}},
        {"tensor", {"common", "tensor"}},
        {"llm", {"common", "tensor", "llm"}},
        {"core", {"common", "tensor", "llm", "core"}},
        {"video", {"common", "tensor", "video"}},
        {"retrieval", {"common", "tensor", "llm", "retrieval"}},
        {"kvstore", {"common", "kvstore"}},
        {"sim", {"common", "tensor", "llm", "kvstore", "sim"}},
        {"pipeline",
         {"common", "tensor", "llm", "core", "video", "kvstore",
          "sim", "pipeline"}},
        {"serve",
         {"common", "tensor", "llm", "core", "video", "retrieval",
          "kvstore", "sim", "pipeline", "serve"}},
    };
    return dag;
}

void
checkLayerDag(const std::string &rel_path,
              const std::vector<std::string> &raw_lines,
              std::vector<Finding> &out)
{
    const size_t slash = rel_path.find('/');
    if (slash == std::string::npos)
        return; // file directly under src/: no layer
    const std::string layer = rel_path.substr(0, slash);
    const auto &dag = layerAllowedIncludes();
    const auto it = dag.find(layer);
    if (it == dag.end())
        return; // unknown layer: out of the DAG's scope
    for (size_t li = 0; li < raw_lines.size(); ++li) {
        const std::string &line = raw_lines[li];
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            continue;
        p = line.find_first_not_of(" \t", p + 1);
        if (p == std::string::npos ||
            line.compare(p, 7, "include") != 0)
            continue;
        const size_t q1 = line.find('"', p);
        if (q1 == std::string::npos)
            continue; // <system> includes carry no layer edge
        const size_t q2 = line.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        const std::string inc = line.substr(q1 + 1, q2 - q1 - 1);
        const size_t inc_slash = inc.find('/');
        if (inc_slash == std::string::npos)
            continue; // same-directory include
        const std::string target = inc.substr(0, inc_slash);
        if (dag.find(target) == dag.end())
            continue; // not a src/ layer (e.g. third-party path)
        if (it->second.count(target) == 0)
            out.push_back(
                {rel_path, static_cast<int>(li) + 1, "layer-dag",
                 "layer '" + layer + "' must not include '" + inc +
                     "' (allowed layers: lower in the common < "
                     "tensor < llm < ... < serve DAG; see "
                     "src/README.md)"});
    }
}

// -------------------------------------------------------------------
// Rules: nondet-rand / nondet-clock / unordered-serial (token scans)

void
checkTokens(const std::string &rel_path, const std::string &code,
            const std::vector<std::string> &tokens,
            const std::string &rule, const std::string &why,
            std::vector<Finding> &out)
{
    for (const std::string &tok : tokens)
        for (size_t off : findToken(code, tok))
            out.push_back({rel_path, lineOfOffset(code, off), rule,
                           "'" + tok + "' " + why});
}

void
checkNondetRand(const std::string &rel_path, const std::string &code,
                std::vector<Finding> &out)
{
    static const std::vector<std::string> toks = {
        "rand",          "srand",          "rand_r",
        "drand48",       "lrand48",        "mrand48",
        "random_device", "mt19937",        "mt19937_64",
        "minstd_rand",   "minstd_rand0",   "ranlux24",
        "ranlux48",      "default_random_engine",
    };
    checkTokens(rel_path, code, toks, "nondet-rand",
                "is nondeterministic randomness; use the seeded "
                "common/rng.hh streams so results stay a pure "
                "function of (config, seed)",
                out);
}

void
checkNondetClock(const std::string &rel_path, const std::string &code,
                 std::vector<Finding> &out)
{
    static const std::vector<std::string> toks = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get",
        "localtime",     "gmtime",       "mktime",
        "utc_clock",     "file_clock",   "tai_clock",
    };
    checkTokens(rel_path, code, toks, "nondet-clock",
                "reads wall-clock time; results must not depend on "
                "it — route latency observability through "
                "common/wallclock.hh (the one allowed site)",
                out);
}

void
checkUnorderedSerial(const std::string &rel_path,
                     const std::string &code,
                     std::vector<Finding> &out)
{
    // Scope: files that define (or declare) a serialize() — exactly
    // where unspecified iteration order could leak into the
    // byte-exact blob contract.
    bool defines_serialize = false;
    for (size_t off : findToken(code, "serialize")) {
        size_t p = off + 9;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p])))
            ++p;
        if (p < code.size() && code[p] == '(') {
            defines_serialize = true;
            break;
        }
    }
    if (!defines_serialize)
        return;
    static const std::vector<std::string> toks = {"unordered_map",
                                                  "unordered_set"};
    checkTokens(rel_path, code, toks, "unordered-serial",
                "has unspecified iteration order, in a file that "
                "defines serialize(); use std::map or a sorted "
                "vector so blobs are byte-stable",
                out);
}

// -------------------------------------------------------------------
// Rule: assert-format

/** Top-level comma split of the argument text of a macro call whose
 *  '(' sits at @p open in @p text. Returns the offset one past the
 *  matching ')' (or npos on imbalance). Strings are intact in the
 *  nocomment view, so the walk tracks them. */
size_t
splitArgs(const std::string &text, size_t open,
          std::vector<std::string> &args)
{
    int depth = 0;
    bool in_str = false, in_chr = false;
    std::string cur;
    for (size_t i = open; i < text.size(); ++i) {
        const char c = text[i];
        if (in_str || in_chr) {
            cur += c;
            if (c == '\\' && i + 1 < text.size()) {
                cur += text[i + 1];
                ++i;
            } else if (in_str && c == '"') {
                in_str = false;
            } else if (in_chr && c == '\'') {
                in_chr = false;
            }
            continue;
        }
        switch (c) {
        case '"':
            in_str = true;
            cur += c;
            break;
        case '\'':
            in_chr = true;
            cur += c;
            break;
        case '(':
        case '[':
        case '{':
            ++depth;
            if (depth > 1)
                cur += c;
            break;
        case ')':
        case ']':
        case '}':
            --depth;
            if (depth == 0) {
                args.push_back(cur);
                return i + 1;
            }
            cur += c;
            break;
        case ',':
            if (depth == 1) {
                args.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
            break;
        default:
            cur += c;
        }
    }
    return std::string::npos;
}

/** Concatenate the string-literal segments of @p arg. False when the
 *  argument contains anything that is not a string literal or
 *  whitespace (macro concatenation etc. — unverifiable). */
bool
literalText(const std::string &arg, std::string &text)
{
    text.clear();
    size_t i = 0;
    bool any = false;
    while (i < arg.size()) {
        const char c = arg[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c != '"')
            return false;
        ++i;
        while (i < arg.size() && arg[i] != '"') {
            if (arg[i] == '\\' && i + 1 < arg.size()) {
                text += arg[i];
                text += arg[i + 1];
                i += 2;
            } else {
                text += arg[i];
                ++i;
            }
        }
        if (i >= arg.size())
            return false; // unterminated (split across lines?)
        ++i;              // closing quote
        any = true;
    }
    return any;
}

/** printf conversions consumed by @p fmt (each `*` width/precision
 *  counts as one extra argument). -1 when the format is malformed. */
int
countConversions(const std::string &fmt)
{
    int n = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%')
            continue;
        ++i;
        if (i >= fmt.size())
            return -1;
        if (fmt[i] == '%')
            continue;
        // flags
        while (i < fmt.size() && std::string("-+ #0").find(fmt[i]) !=
                                     std::string::npos)
            ++i;
        // width
        if (i < fmt.size() && fmt[i] == '*') {
            ++n;
            ++i;
        } else {
            while (i < fmt.size() &&
                   std::isdigit(static_cast<unsigned char>(fmt[i])))
                ++i;
        }
        // precision
        if (i < fmt.size() && fmt[i] == '.') {
            ++i;
            if (i < fmt.size() && fmt[i] == '*') {
                ++n;
                ++i;
            } else {
                while (i < fmt.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(fmt[i])))
                    ++i;
            }
        }
        // length modifiers
        while (i < fmt.size() && std::string("hljztL").find(fmt[i]) !=
                                     std::string::npos)
            ++i;
        if (i >= fmt.size() ||
            std::string("diouxXeEfFgGaAcspn").find(fmt[i]) ==
                std::string::npos)
            return -1;
        ++n;
    }
    return n;
}

/** 1-based lines that are preprocessor directives, including `\`
 *  continuation lines — a macro *definition* mentioning VREX_ASSERT
 *  is not a call site. */
std::set<int>
directiveLines(const std::vector<std::string> &raw_lines)
{
    std::set<int> out;
    bool continued = false;
    for (size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string &line = raw_lines[i];
        const size_t first = line.find_first_not_of(" \t");
        const bool directive =
            continued ||
            (first != std::string::npos && line[first] == '#');
        if (directive)
            out.insert(static_cast<int>(i) + 1);
        const size_t last = line.find_last_not_of(" \t\r");
        continued = directive && last != std::string::npos &&
                    line[last] == '\\';
    }
    return out;
}

void
checkAssertFormat(const std::string &rel_path,
                  const std::string &nocomment,
                  const std::vector<std::string> &raw_lines,
                  std::vector<Finding> &out)
{
    const std::set<int> directives = directiveLines(raw_lines);
    for (const char *macro : {"VREX_ASSERT", "VREX_DEBUG_ASSERT"}) {
        for (size_t off : findToken(nocomment, macro)) {
            if (directives.count(lineOfOffset(nocomment, off)))
                continue; // inside a #define, not a call
            size_t p = off + std::string(macro).size();
            while (p < nocomment.size() &&
                   std::isspace(
                       static_cast<unsigned char>(nocomment[p])))
                ++p;
            if (p >= nocomment.size() || nocomment[p] != '(')
                continue; // the macro definition itself, not a call
            std::vector<std::string> args;
            if (splitArgs(nocomment, p, args) == std::string::npos)
                continue;
            const int lineno = lineOfOffset(nocomment, off);
            if (args.size() < 2)
                continue; // condition-only form: nothing to pair
            std::string fmt;
            if (!literalText(args[1], fmt)) {
                out.push_back(
                    {rel_path, lineno, "assert-format",
                     std::string(macro) +
                         " message must be a string literal (got `" +
                         args[1] + "`)"});
                continue;
            }
            const int want = countConversions(fmt);
            const int got = static_cast<int>(args.size()) - 2;
            if (want < 0) {
                out.push_back({rel_path, lineno, "assert-format",
                               std::string(macro) +
                                   " format \"" + fmt +
                                   "\" is malformed"});
            } else if (want != got) {
                out.push_back(
                    {rel_path, lineno, "assert-format",
                     std::string(macro) + " format \"" + fmt +
                         "\" consumes " + std::to_string(want) +
                         " argument(s) but " + std::to_string(got) +
                         " were passed — the PR-2 vararg mispairing "
                         "bug class"});
            }
        }
    }
}

// -------------------------------------------------------------------
// Rule: serial-pairing

/** Typed op counts of one serialize()/restore() body. */
struct SerialOps
{
    std::map<std::string, int> typed; //!< put<T>/get<T>, by type T
    int boolOps = 0;
    int stringOps = 0;
    int bytesOps = 0;
    int vecOps = 0;
    int nestedOps = 0; //!< member.serialize(w) / member.restore(r)
    bool operator==(const SerialOps &) const = default;
};

struct SerialFn
{
    std::string scope; //!< "HCTable" for HCTable::serialize; "" inline
    int line = 0;
    SerialOps ops;
};

std::string
normalizeType(std::string t)
{
    std::string out;
    for (char c : t)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out += c;
    static const std::string kStd = "std::";
    size_t at;
    while ((at = out.find(kStd)) != std::string::npos)
        out.erase(at, kStd.size());
    return out;
}

/** Matching '>' for the '<' at @p open (nested template args). */
size_t
closeAngle(const std::string &s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '<')
            ++depth;
        else if (s[i] == '>' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

SerialOps
countOps(const std::string &body, bool write_side)
{
    SerialOps ops;
    const std::string typed_tok = write_side ? "put" : "get";
    for (size_t off : findToken(body, typed_tok)) {
        const size_t p = off + typed_tok.size();
        if (p < body.size() && body[p] == '<') {
            const size_t close = closeAngle(body, p);
            if (close != std::string::npos)
                ++ops.typed[normalizeType(
                    body.substr(p + 1, close - p - 1))];
        }
    }
    auto count = [&body](const std::string &tok) {
        return static_cast<int>(findToken(body, tok).size());
    };
    ops.boolOps = count(write_side ? "putBool" : "getBool");
    ops.stringOps = count(write_side ? "putString" : "getString");
    ops.bytesOps = count(write_side ? "putBytes" : "getBytes");
    ops.vecOps = count(write_side ? "putVec" : "getVec");
    ops.nestedOps = count(write_side ? "serialize" : "restore");
    return ops;
}

/** Definitions of `...serialize(ByteWriter...) {` (write side) or
 *  `...restore(ByteReader...) {` (read side) in the nocomment view,
 *  with per-body op counts. */
std::vector<SerialFn>
findSerialFns(const std::string &text, bool write_side)
{
    const std::string fn_name = write_side ? "serialize" : "restore";
    const std::string param_type =
        write_side ? "ByteWriter" : "ByteReader";
    std::vector<SerialFn> fns;
    for (size_t off : findToken(text, fn_name)) {
        size_t p = off + fn_name.size();
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p])))
            ++p;
        if (p >= text.size() || text[p] != '(')
            continue;
        std::vector<std::string> params;
        const size_t after = splitArgs(text, p, params);
        if (after == std::string::npos)
            continue;
        const std::string sig = params.empty() ? "" : params[0];
        if (sig.find(param_type) == std::string::npos)
            continue;
        // Definition? Skip cv-qualifiers etc. up to '{' or ';'.
        size_t q = after;
        while (q < text.size() && text[q] != '{' && text[q] != ';' &&
               text[q] != '(')
            ++q;
        if (q >= text.size() || text[q] != '{')
            continue;
        // Qualified scope: identifiers + "::" directly before the
        // name, e.g. "HCTable::" -> "HCTable".
        size_t s = off;
        while (s > 0 && (isIdentChar(text[s - 1]) ||
                         text[s - 1] == ':'))
            --s;
        std::string qual = text.substr(s, off - s);
        if (qual.size() >= 2 &&
            qual.compare(qual.size() - 2, 2, "::") == 0)
            qual.erase(qual.size() - 2);
        // Body extent: match braces (strings already intact — use a
        // splitArgs walk starting at the '{').
        int depth = 0;
        bool in_str = false, in_chr = false;
        size_t end = q;
        for (size_t i = q; i < text.size(); ++i) {
            const char c = text[i];
            if (in_str || in_chr) {
                if (c == '\\')
                    ++i;
                else if (in_str && c == '"')
                    in_str = false;
                else if (in_chr && c == '\'')
                    in_chr = false;
                continue;
            }
            if (c == '"')
                in_str = true;
            else if (c == '\'')
                in_chr = true;
            else if (c == '{')
                ++depth;
            else if (c == '}' && --depth == 0) {
                end = i;
                break;
            }
        }
        SerialFn fn;
        fn.scope = qual;
        fn.line = lineOfOffset(text, off);
        fn.ops = countOps(text.substr(q, end - q), write_side);
        fns.push_back(std::move(fn));
    }
    return fns;
}

std::string
describeImbalance(const SerialOps &w, const SerialOps &r)
{
    std::ostringstream os;
    std::set<std::string> types;
    for (const auto &[t, n] : w.typed)
        types.insert(t);
    for (const auto &[t, n] : r.typed)
        types.insert(t);
    for (const std::string &t : types) {
        const int pw = w.typed.count(t) ? w.typed.at(t) : 0;
        const int pr = r.typed.count(t) ? r.typed.at(t) : 0;
        if (pw != pr)
            os << " put<" << t << ">x" << pw << " vs get<" << t
               << ">x" << pr << ";";
    }
    auto pair = [&os](const char *name, int pw, int pr) {
        if (pw != pr)
            os << " " << name << " " << pw << " vs " << pr << ";";
    };
    pair("Bool", w.boolOps, r.boolOps);
    pair("String", w.stringOps, r.stringOps);
    pair("Bytes", w.bytesOps, r.bytesOps);
    pair("Vec", w.vecOps, r.vecOps);
    pair("nested serialize/restore", w.nestedOps, r.nestedOps);
    return os.str();
}

void
checkSerialPairing(const std::string &rel_path,
                   const std::string &nocomment,
                   std::vector<Finding> &out)
{
    std::vector<SerialFn> writers = findSerialFns(nocomment, true);
    std::vector<SerialFn> readers = findSerialFns(nocomment, false);
    if (writers.empty() || readers.empty())
        return;
    // Qualified definitions pair by scope name; inline (unqualified)
    // definitions pair by order of appearance — the codebase defines
    // each struct's serialize and restore adjacently.
    auto unqualified = [](const std::vector<SerialFn> &fns) {
        std::vector<const SerialFn *> out_fns;
        for (const SerialFn &f : fns)
            if (f.scope.empty())
                out_fns.push_back(&f);
        return out_fns;
    };
    std::vector<std::pair<const SerialFn *, const SerialFn *>> pairs;
    for (const SerialFn &w : writers) {
        if (w.scope.empty())
            continue;
        for (const SerialFn &r : readers)
            if (r.scope == w.scope)
                pairs.emplace_back(&w, &r);
    }
    const auto uw = unqualified(writers);
    const auto ur = unqualified(readers);
    if (uw.size() == ur.size())
        for (size_t i = 0; i < uw.size(); ++i)
            pairs.emplace_back(uw[i], ur[i]);
    for (const auto &[w, r] : pairs) {
        if (w->ops == r->ops)
            continue;
        const std::string scope =
            w->scope.empty() ? "<inline>" : w->scope;
        out.push_back(
            {rel_path, r->line, "serial-pairing",
             scope + "::restore() reads do not mirror " + scope +
                 "::serialize() writes:" +
                 describeImbalance(w->ops, r->ops) +
                 " a skewed blob layout breaks the byte-exact "
                 "restore contract"});
    }
}

} // namespace

// -------------------------------------------------------------------
// Public API

const std::vector<std::string> &
ruleIds()
{
    static const std::vector<std::string> ids = {
        "nondet-rand",   "nondet-clock",   "unordered-serial",
        "layer-dag",     "assert-format",  "serial-pairing",
        "allow-syntax",
    };
    return ids;
}

std::vector<Finding>
lintSource(const std::string &rel_path, const std::string &content)
{
    const Views views = buildViews(content);
    const std::vector<std::string> raw_lines = splitLines(content);
    const std::vector<std::string> code_lines =
        splitLines(views.codeOnly);
    const Allows allows =
        parseAllows(rel_path, raw_lines, code_lines);

    std::vector<Finding> found;
    checkNondetRand(rel_path, views.codeOnly, found);
    checkNondetClock(rel_path, views.codeOnly, found);
    checkUnorderedSerial(rel_path, views.codeOnly, found);
    checkLayerDag(rel_path, raw_lines, found);
    checkAssertFormat(rel_path, views.noComments, raw_lines, found);
    // The string-blanked view: "HCTable::restore: bad blob" in an
    // error message must not count as a nested restore() op.
    checkSerialPairing(rel_path, views.codeOnly, found);

    std::vector<Finding> out;
    for (Finding &f : found) {
        const auto it = allows.lines.find(f.rule);
        if (it != allows.lines.end() && it->second.count(f.line))
            continue; // suppressed, with justification on record
        out.push_back(std::move(f));
    }
    // allow-syntax findings are not themselves suppressible.
    for (const Finding &f : allows.syntaxFindings)
        out.push_back(f);
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return out;
}

std::vector<Finding>
lintTree(const std::string &src_root)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(src_root))
        throw std::runtime_error("vrex_lint: not a directory: " +
                                 src_root);
    std::vector<std::string> rels;
    for (const auto &entry :
         fs::recursive_directory_iterator(src_root)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        rels.push_back(
            fs::relative(entry.path(), src_root).generic_string());
    }
    std::sort(rels.begin(), rels.end());
    std::vector<Finding> out;
    for (const std::string &rel : rels) {
        std::ifstream in(src_root + "/" + rel, std::ios::binary);
        if (!in)
            throw std::runtime_error("vrex_lint: cannot read " +
                                     src_root + "/" + rel);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<Finding> fs_found = lintSource(rel, buf.str());
        out.insert(out.end(), fs_found.begin(), fs_found.end());
    }
    return out;
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
           "] " + f.message;
}

} // namespace vrex::lint
