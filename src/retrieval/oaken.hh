/**
 * @file
 * Oaken-style online 4-bit KV cache quantization (the SOTA LLM
 * accelerator the paper compares against in Fig. 15).
 *
 * Oaken does not retrieve: it shrinks the resident cache 4x with
 * group-wise affine int4 quantization, postponing — but not removing —
 * the out-of-memory wall. The functional quantizer here measures the
 * precision loss; the capacity/timing effect is modeled in
 * sim/system_model.
 */

#ifndef VREX_RETRIEVAL_OAKEN_HH
#define VREX_RETRIEVAL_OAKEN_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace vrex
{

/** Group-wise int4 quantization parameters. */
struct OakenConfig
{
    uint32_t groupSize = 32;   //!< Elements per scale/zero-point.

    /** Effective bytes per element including scale overhead. */
    double
    bytesPerElem() const
    {
        return 0.5 + 4.0 / groupSize;  // int4 + fp16 scale+zp pair.
    }
};

/** One quantized row group. */
struct QuantGroup
{
    float scale;
    float zero;
    std::vector<uint8_t> packed;  //!< Two int4 values per byte.
};

/** Quantize a vector group-wise to int4. */
std::vector<QuantGroup> oakenQuantize(const float *data, uint32_t n,
                                      const OakenConfig &cfg);

/** Reconstruct floats from quantized groups. */
std::vector<float> oakenDequantize(const std::vector<QuantGroup> &groups,
                                   uint32_t n, const OakenConfig &cfg);

/** Round a matrix through int4 precision in place; returns RMS error. */
double oakenRoundTrip(Matrix &m, const OakenConfig &cfg);

} // namespace vrex

#endif // VREX_RETRIEVAL_OAKEN_HH
