/**
 * @file
 * NEON kernel table for aarch64, where NEON (Advanced SIMD) is an
 * architectural baseline — no runtime probe needed beyond compiling
 * for the target. Everywhere else this TU is an empty probe.
 *
 * Numeric contract (see kernels.hh): hashEncode assigns one signature
 * bit per float lane and walks the key dimension sequentially with
 * *unfused* vmul+vadd — never vfma — and the whole project builds
 * with -ffp-contract=off, so each lane reproduces the scalar dot()
 * rounding exactly. The remaining kernels are integer or
 * exact-predicate operations.
 */

#include "core/kernels.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <bit>

#include "common/bits.hh"

namespace vrex::kernels
{

namespace
{

uint32_t
hammingWordsNeon(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64_t dist = 0;
    size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        const uint8x16_t va = vreinterpretq_u8_u64(vld1q_u64(a + w));
        const uint8x16_t vb = vreinterpretq_u8_u64(vld1q_u64(b + w));
        const uint8x16_t x = veorq_u8(va, vb);
        // Per-byte popcount, then a horizontal add across the vector.
        dist += vaddlvq_u8(vcntq_u8(x));
    }
    for (; w < n; ++w)
        dist += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
    return static_cast<uint32_t>(dist);
}

void
hashEncodeNeon(const HashPlanes &p, const float *key, uint64_t *words)
{
    const uint32_t nwords = bitWords(p.nbits);
    std::fill(words, words + nwords, 0ull);

    // Two 4-lane accumulators cover one kEncodeBlock (8 bits).
    static_assert(kEncodeBlock == 8,
                  "NEON encode assumes 8 lanes per block");
    const uint32_t blockEnd = p.nbits & ~(kEncodeBlock - 1);
    for (uint32_t b0 = 0; b0 < blockEnd; b0 += kEncodeBlock) {
        float32x4_t acc0 = vdupq_n_f32(0.0f);
        float32x4_t acc1 = vdupq_n_f32(0.0f);
        const float *col = p.cols + b0;
        for (uint32_t j = 0; j < p.dim; ++j) {
            const float32x4_t kj = vdupq_n_f32(key[j]);
            const float *pj =
                col + static_cast<size_t>(j) * p.colStride;
            // vmul + vadd kept separate: vfma would fuse the rounding
            // step and break bit-identity with the scalar dot().
            acc0 = vaddq_f32(acc0, vmulq_f32(kj, vld1q_f32(pj)));
            acc1 = vaddq_f32(acc1, vmulq_f32(kj, vld1q_f32(pj + 4)));
        }
        const uint32x4_t gt0 = vcgtq_f32(acc0, vdupq_n_f32(0.0f));
        const uint32x4_t gt1 = vcgtq_f32(acc1, vdupq_n_f32(0.0f));
        uint64_t mask = 0;
        alignas(16) uint32_t lanes[4];
        vst1q_u32(lanes, gt0);
        for (int k = 0; k < 4; ++k)
            mask |= static_cast<uint64_t>(lanes[k] & 1u) << k;
        vst1q_u32(lanes, gt1);
        for (int k = 0; k < 4; ++k)
            mask |= static_cast<uint64_t>(lanes[k] & 1u) << (4 + k);
        words[b0 >> 6] |= mask << (b0 & 63u);
    }

    for (uint32_t b = blockEnd; b < p.nbits; ++b) {
        const float *row = p.rows + static_cast<size_t>(b) * p.dim;
        float s = 0.0f;
        for (uint32_t j = 0; j < p.dim; ++j)
            s += key[j] * row[j];
        if (s > 0.0f)
            words[b >> 6] |= 1ull << (b & 63u);
    }
}

void
minMaxF32Neon(const float *s, size_t n, float *lo, float *hi)
{
    size_t i = 0;
    float mn = s[0], mx = s[0];
    if (n >= 4) {
        float32x4_t vmn = vld1q_f32(s);
        float32x4_t vmx = vmn;
        for (i = 4; i + 4 <= n; i += 4) {
            const float32x4_t v = vld1q_f32(s + i);
            vmn = vminq_f32(vmn, v);
            vmx = vmaxq_f32(vmx, v);
        }
        mn = vminvq_f32(vmn);
        mx = vmaxvq_f32(vmx);
    }
    for (; i < n; ++i) {
        mn = std::min(mn, s[i]);
        mx = std::max(mx, s[i]);
    }
    *lo = mn;
    *hi = mx;
}

void
rangeBitmapNeon(const float *s, size_t n, double lower, double upper,
                bool closedTop, uint64_t *bitmap)
{
    const size_t nwords = bitWords(static_cast<uint32_t>(n));
    std::fill(bitmap, bitmap + nwords, 0ull);

    const float64x2_t vlo = vdupq_n_f64(lower);
    const float64x2_t vhi = vdupq_n_f64(upper);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Widen to double before comparing, matching the scalar
        // sweep's double(s[i]) promotion (exact conversion).
        const float32x4_t f = vld1q_f32(s + i);
        const float64x2_t d0 = vcvt_f64_f32(vget_low_f32(f));
        const float64x2_t d1 = vcvt_f64_f32(vget_high_f32(f));
        uint64x2_t in0 = vcgeq_f64(d0, vlo);
        uint64x2_t in1 = vcgeq_f64(d1, vlo);
        if (!closedTop) {
            in0 = vandq_u64(in0, vcltq_f64(d0, vhi));
            in1 = vandq_u64(in1, vcltq_f64(d1, vhi));
        }
        uint64_t mask = 0;
        mask |= (vgetq_lane_u64(in0, 0) & 1u) << 0;
        mask |= (vgetq_lane_u64(in0, 1) & 1u) << 1;
        mask |= (vgetq_lane_u64(in1, 0) & 1u) << 2;
        mask |= (vgetq_lane_u64(in1, 1) & 1u) << 3;
        bitmap[i >> 6] |= mask << (i & 63u);
    }
    for (; i < n; ++i) {
        const double v = s[i];
        const bool in =
            closedTop ? (v >= lower) : (v >= lower && v < upper);
        if (in)
            bitmap[i >> 6] |= 1ull << (i & 63u);
    }
}

const Ops kNeonOps = {
    "neon",
    &hammingWordsNeon,
    &hashEncodeNeon,
    &minMaxF32Neon,
    &rangeBitmapNeon,
};

} // namespace

const Ops *
neonOpsOrNull()
{
    return &kNeonOps;
}

} // namespace vrex::kernels

#else // !aarch64 NEON

namespace vrex::kernels
{

const Ops *
neonOpsOrNull()
{
    return nullptr;
}

} // namespace vrex::kernels

#endif // aarch64 NEON
