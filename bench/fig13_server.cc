/**
 * @file
 * Fig. 13b reproduction: the server-level comparison (A100 vs.
 * V-Rex48) — per-frame latency, TPOT, and energy efficiency across
 * 1K-40K at batch 1 and batch 8.
 *
 * Paper anchors: V-Rex48 20-48 ms/frame (2.6-7.3x at b1, 3.4-19.7x
 * at b8), TPOT 14-15 ms (2.8-16.8x), energy 9.0-29.7x (b1 frame),
 * 5.9-52.2x (b8), 13.2-70.6x (text), 1.1-1.4 TOPS/W at b8.
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

struct Entry
{
    std::string label;
    AcceleratorConfig hw;
    MethodModel method;
};

std::vector<Entry>
serverEntries()
{
    return {
        {"A100+FlexGen", AcceleratorConfig::a100(),
         MethodModel::flexgen()},
        {"A100+InfiniGen", AcceleratorConfig::a100(),
         MethodModel::infinigen()},
        {"A100+InfiniGenP", AcceleratorConfig::a100(),
         MethodModel::infinigenP()},
        {"A100+ReKV", AcceleratorConfig::a100(),
         MethodModel::rekv()},
        {"V-Rex48", AcceleratorConfig::vrex48(),
         MethodModel::resvFull()},
    };
}

void
sweep(bench::Reporter &rep, const std::string &panel,
      const std::string &title, uint32_t batch, bool decode,
      bool energy)
{
    rep.beginPanel(panel, title);
    auto entries = serverEntries();
    std::vector<std::vector<double>> vals(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
        for (uint32_t cache : bench::cacheSweep()) {
            RunConfig rc;
            rc.hw = entries[e].hw;
            rc.method = entries[e].method;
            rc.cacheTokens = cache;
            rc.batch = batch;
            SystemModel sm(rc);
            PhaseResult r =
                decode ? sm.decodePhase() : sm.framePhase();
            double v = energy ? r.gopsPerW() : r.totalMs;
            vals[e].push_back(v);
            rep.add(entries[e].label, bench::kLabel(cache), v,
                    energy ? "GOPS/W" : "ms", 1);
        }
    }
    auto sweepPoints = bench::cacheSweep();
    for (size_t i = 0; i < sweepPoints.size(); ++i) {
        double gain = energy ? vals.back()[i] / vals[0][i]
                             : vals[0][i] / vals.back()[i];
        rep.add(energy ? "V-Rex gain" : "V-Rex speedup",
                bench::kLabel(sweepPoints[i]), gain, "x", 1);
    }
}

void
run(bench::Reporter &rep)
{
    sweep(rep, "frame_b1",
          "Fig. 13b: per-frame latency, batch 1 (server)", 1, false,
          false);
    sweep(rep, "tpot_b1", "Fig. 13b: TPOT latency, batch 1 (server)",
          1, true, false);
    sweep(rep, "frame_b8",
          "Fig. 13b: per-frame latency, batch 8 (server)", 8, false,
          false);
    sweep(rep, "energy_frame_b1",
          "Fig. 13b: energy efficiency, frame batch 1", 1, false,
          true);
    sweep(rep, "energy_text_b1",
          "Fig. 13b: energy efficiency, text batch 1", 1, true, true);
    sweep(rep, "energy_frame_b8",
          "Fig. 13b: energy efficiency, frame batch 8", 8, false,
          true);
    rep.note("paper anchors: V-Rex48 20-48 ms/frame, TPOT 14-15 ms; "
             "speedups 2.6-7.3x (b1) to 3.4-19.7x (b8); energy "
             "9.0-29.7x (b1) / 5.9-52.2x (b8) / 13.2-70.6x (text)");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig13_server", argc, argv, run);
}
