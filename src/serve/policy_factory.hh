/**
 * @file
 * Declarative retrieval-policy construction for the serving layer.
 *
 * A PolicySpec names a policy kind plus its parameters; PolicyFactory
 * turns the spec into an *owned* SelectionPolicy (replacing the raw
 * pointer wiring of the low-level API), optionally decorated with the
 * memory-hierarchy replay driver (MemoryTrackingPolicy) whose cluster
 * layout is wired to the ReSV hash-cluster tables automatically.
 */

#ifndef VREX_SERVE_POLICY_FACTORY_HH
#define VREX_SERVE_POLICY_FACTORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/resv.hh"
#include "kvstore/hierarchical_cache.hh"
#include "llm/selection.hh"
#include "pipeline/memory_driver.hh"
#include "retrieval/policies.hh"

namespace vrex::serve
{

/** The retrieval methods the paper evaluates (§VI-B). */
enum class PolicyKind : uint8_t
{
    Full,       //!< Vanilla full attention (VideoLLM-Online).
    FlexGen,    //!< Offload everything, fetch everything back.
    InfiniGen,  //!< Fixed top-k, generation stage only.
    InfiniGenP, //!< InfiniGen extended to iterative prefill.
    ReKV,       //!< Frame-granular fixed top-k.
    ReSV,       //!< V-Rex's dynamic clustering + WiCSum policy.
};

/** All kinds, in Table II column order. */
const std::vector<PolicyKind> &allPolicyKinds();

/** Canonical lowercase name ("full", "flexgen", ..., "resv"). */
const std::string &policyKindName(PolicyKind kind);

/** Inverse of policyKindName(); nullopt for unknown names. */
std::optional<PolicyKind> parsePolicyKind(const std::string &name);

/**
 * Declarative policy description: a kind plus the parameters that
 * kind consumes. Unused fields are ignored (e.g. `ratio` for ReSV).
 */
struct PolicySpec
{
    PolicyKind kind = PolicyKind::Full;

    /** Fixed top-k budget of the InfiniGen* / ReKV baselines. */
    float ratio = 0.5f;
    /** InfiniGen partial-projection dimensionality. */
    uint32_t projDim = 8;
    /** Seed of the InfiniGen projection sketch. */
    uint64_t seed = 11;
    /** ReSV hyper-parameters (paper defaults). */
    ResvConfig resvCfg;

    /** Decorate with the memory-hierarchy replay driver. */
    bool trackMemory = false;
    /** Device window / offload target of the replay hierarchy. */
    TierConfig tiers;

    static PolicySpec full();
    static PolicySpec flexgen();
    static PolicySpec infinigen(float ratio = 0.5f);
    static PolicySpec infinigenP(float ratio = 0.5f);
    static PolicySpec rekv(float ratio = 0.5f);
    static PolicySpec resv(const ResvConfig &config = {});

    /** Copy of this spec with memory replay over @p tier_config. */
    PolicySpec withMemoryTracking(const TierConfig &tier_config) const;
};

/**
 * An owned, fully wired policy stack: the base retrieval policy and,
 * when the spec asked for it, the memory-replay decorator on top.
 * Movable, not copyable; install `active()` into a Model/session.
 */
class PolicyInstance
{
  public:
    PolicyInstance() = default;

    PolicyKind kind() const { return kindValue; }

    /** The policy to install (decorator when present, else base). */
    SelectionPolicy *active() const
    {
        return tracker ? static_cast<SelectionPolicy *>(tracker.get())
                       : base.get();
    }

    /** The undecorated retrieval policy. */
    SelectionPolicy *basePolicy() const { return base.get(); }

    /** The ReSV policy, or nullptr for other kinds. */
    ResvPolicy *resv() const { return resvView; }

    /** The replay decorator, or nullptr when not requested. */
    MemoryTrackingPolicy *memory() const { return tracker.get(); }

  private:
    friend class PolicyFactory;

    PolicyKind kindValue = PolicyKind::Full;
    std::unique_ptr<SelectionPolicy> base;
    std::unique_ptr<MemoryTrackingPolicy> tracker;
    ResvPolicy *resvView = nullptr;
};

/**
 * Registry of policy constructors, keyed by kind. The five paper
 * policies (plus Full) are built in; registerMaker() can override a
 * kind (e.g. to inject an instrumented variant in tests).
 */
class PolicyFactory
{
  public:
    using Maker = std::function<std::unique_ptr<SelectionPolicy>(
        const ModelConfig &, const PolicySpec &)>;

    /** A factory with the built-in kinds registered. */
    PolicyFactory();

    /** The process-wide default registry. */
    static PolicyFactory &global();

    /** Replace the constructor of @p kind. */
    void registerMaker(PolicyKind kind, Maker maker);

    /**
     * Construct the policy stack for @p spec. The ReSV hash-cluster
     * tables are wired as the replay decorator's layout source when
     * both are present.
     */
    PolicyInstance make(const ModelConfig &model,
                        const PolicySpec &spec) const;

  private:
    std::vector<Maker> makers; //!< Indexed by PolicyKind.
};

/** Shorthand: PolicyFactory::global().make(model, spec). */
PolicyInstance makePolicy(const ModelConfig &model,
                          const PolicySpec &spec);

} // namespace vrex::serve

#endif // VREX_SERVE_POLICY_FACTORY_HH
