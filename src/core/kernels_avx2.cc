/**
 * @file
 * AVX2 kernel table. This translation unit is compiled with
 * `-mavx2 -mno-fma` on x86-64 (see the top-level CMakeLists) and as an
 * empty probe elsewhere; the dispatcher only calls into it after a
 * CPUID check, so the library stays runnable on non-AVX2 x86 parts.
 *
 * Numeric contract (see kernels.hh): hashEncode assigns one signature
 * bit per float lane and walks the key dimension sequentially with
 * unfused mul+add, so each lane reproduces the scalar dot() rounding
 * exactly. -mno-fma plus the global -ffp-contract=off guarantee the
 * compiler cannot fuse the mul/add intrinsics into an FMA. All other
 * kernels are integer or exact-predicate operations.
 */

#include "core/kernels.hh"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

#include "common/bits.hh"

namespace vrex::kernels
{

namespace
{

/**
 * Mula's nibble-LUT popcount: per-byte popcounts via two PSHUFB table
 * lookups, horizontally summed into the four 64-bit lanes with SAD.
 */
inline __m256i
popcount256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

uint32_t
hammingWordsAvx2(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + w));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + w));
        acc = _mm256_add_epi64(acc,
                               popcount256(_mm256_xor_si256(va, vb)));
    }
    uint64_t dist = 0;
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    dist = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; w < n; ++w)
        dist += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
    return static_cast<uint32_t>(dist);
}

void
hashEncodeAvx2(const HashPlanes &p, const float *key, uint64_t *words)
{
    static_assert(kEncodeBlock == 8,
                  "AVX2 encode assumes 8 float lanes per block");
    const uint32_t nwords = bitWords(p.nbits);
    std::fill(words, words + nwords, 0ull);

    const uint32_t blockEnd = p.nbits & ~(kEncodeBlock - 1);
    for (uint32_t b0 = 0; b0 < blockEnd; b0 += kEncodeBlock) {
        // Lane k accumulates dot(key, plane_{b0+k}) in key-dimension
        // order: the same mul-then-add sequence per lane as the
        // scalar dot(), hence the same rounding and the same sign.
        __m256 acc = _mm256_setzero_ps();
        const float *col = p.cols + b0;
        for (uint32_t j = 0; j < p.dim; ++j) {
            const __m256 kj = _mm256_set1_ps(key[j]);
            const __m256 pj = _mm256_loadu_ps(
                col + static_cast<size_t>(j) * p.colStride);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(kj, pj));
        }
        const __m256 gt = _mm256_cmp_ps(acc, _mm256_setzero_ps(),
                                        _CMP_GT_OQ);
        const uint64_t mask =
            static_cast<uint64_t>(
                static_cast<uint32_t>(_mm256_movemask_ps(gt))) &
            0xffull;
        // b0 is a multiple of 8, so a block never straddles a word.
        words[b0 >> 6] |= mask << (b0 & 63u);
    }

    // Ragged tail: per-bit scalar dot over the row-major planes.
    for (uint32_t b = blockEnd; b < p.nbits; ++b) {
        const float *row = p.rows + static_cast<size_t>(b) * p.dim;
        float s = 0.0f;
        for (uint32_t j = 0; j < p.dim; ++j)
            s += key[j] * row[j];
        if (s > 0.0f)
            words[b >> 6] |= 1ull << (b & 63u);
    }
}

void
minMaxF32Avx2(const float *s, size_t n, float *lo, float *hi)
{
    size_t i = 0;
    float mn = s[0], mx = s[0];
    if (n >= 8) {
        __m256 vmn = _mm256_loadu_ps(s);
        __m256 vmx = vmn;
        for (i = 8; i + 8 <= n; i += 8) {
            const __m256 v = _mm256_loadu_ps(s + i);
            vmn = _mm256_min_ps(vmn, v);
            vmx = _mm256_max_ps(vmx, v);
        }
        alignas(32) float lanes[8];
        _mm256_store_ps(lanes, vmn);
        mn = lanes[0];
        for (int k = 1; k < 8; ++k)
            mn = std::min(mn, lanes[k]);
        _mm256_store_ps(lanes, vmx);
        mx = lanes[0];
        for (int k = 1; k < 8; ++k)
            mx = std::max(mx, lanes[k]);
    }
    for (; i < n; ++i) {
        mn = std::min(mn, s[i]);
        mx = std::max(mx, s[i]);
    }
    *lo = mn;
    *hi = mx;
}

void
rangeBitmapAvx2(const float *s, size_t n, double lower, double upper,
                bool closedTop, uint64_t *bitmap)
{
    const size_t nwords = bitWords(static_cast<uint32_t>(n));
    std::fill(bitmap, bitmap + nwords, 0ull);

    const __m256d vlo = _mm256_set1_pd(lower);
    const __m256d vhi = _mm256_set1_pd(upper);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // The scalar sweep compares double(s[i]) against double
        // bounds; float->double conversion is exact, so widening the
        // lanes preserves the predicate bit-for-bit.
        const __m128 f0 = _mm_loadu_ps(s + i);
        const __m128 f1 = _mm_loadu_ps(s + i + 4);
        const __m256d d0 = _mm256_cvtps_pd(f0);
        const __m256d d1 = _mm256_cvtps_pd(f1);
        __m256d in0 = _mm256_cmp_pd(d0, vlo, _CMP_GE_OQ);
        __m256d in1 = _mm256_cmp_pd(d1, vlo, _CMP_GE_OQ);
        if (!closedTop) {
            in0 = _mm256_and_pd(in0,
                                _mm256_cmp_pd(d0, vhi, _CMP_LT_OQ));
            in1 = _mm256_and_pd(in1,
                                _mm256_cmp_pd(d1, vhi, _CMP_LT_OQ));
        }
        const uint64_t mask =
            (static_cast<uint64_t>(
                 static_cast<uint32_t>(_mm256_movemask_pd(in0))) &
             0xfull) |
            ((static_cast<uint64_t>(
                  static_cast<uint32_t>(_mm256_movemask_pd(in1))) &
              0xfull)
             << 4);
        bitmap[i >> 6] |= mask << (i & 63u);
    }
    for (; i < n; ++i) {
        const double v = s[i];
        const bool in =
            closedTop ? (v >= lower) : (v >= lower && v < upper);
        if (in)
            bitmap[i >> 6] |= 1ull << (i & 63u);
    }
}

const Ops kAvx2Ops = {
    "avx2",
    &hammingWordsAvx2,
    &hashEncodeAvx2,
    &minMaxF32Avx2,
    &rangeBitmapAvx2,
};

} // namespace

const Ops *
avx2OpsOrNull()
{
    return &kAvx2Ops;
}

} // namespace vrex::kernels

#else // !defined(__AVX2__)

namespace vrex::kernels
{

const Ops *
avx2OpsOrNull()
{
    return nullptr;
}

} // namespace vrex::kernels

#endif // defined(__AVX2__)
