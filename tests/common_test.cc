/**
 * @file
 * Unit tests for the common module: RNG determinism and
 * distributions, BF16 rounding, bit signatures, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bf16.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace vrex;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, NamedStreamsDiffer)
{
    Rng a(123, "alpha"), b(123, "beta");
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.nextU64() != b.nextU64();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NamedStreamsReproducible)
{
    Rng a(9, "stream"), b(9, "stream");
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // All values hit in 1000 draws.
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(3);
    auto perm = rng.permutation(50);
    std::set<uint32_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(BF16, RoundTripExactForSmallIntegers)
{
    for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 128.0f, -256.0f})
        EXPECT_EQ(BF16(v).toFloat(), v);
}

TEST(BF16, RoundingLosesLowMantissa)
{
    float v = 1.0f + 1.0f / 1024.0f;  // Below BF16 precision at 1.0.
    EXPECT_NE(bf16Round(v), v);
    EXPECT_NEAR(bf16Round(v), v, 1.0f / 128.0f);
}

TEST(BF16, RoundToNearestEven)
{
    // 1.0 + 2^-8 is exactly halfway between two BF16 values.
    float v = 1.0f + 1.0f / 256.0f;
    float r = bf16Round(v);
    EXPECT_TRUE(r == 1.0f || r == 1.0f + 1.0f / 128.0f);
}

TEST(BF16, PreservesInfinityAndNan)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(BF16(inf).toFloat(), inf);
    EXPECT_EQ(BF16(-inf).toFloat(), -inf);
    EXPECT_TRUE(std::isnan(BF16(std::nanf("")).toFloat()));
}

TEST(BF16, BufferRounding)
{
    float data[3] = {1.003f, -2.006f, 65504.0f};
    bf16RoundBuffer(data, 3);
    for (float v : data)
        EXPECT_EQ(v, bf16Round(v));
}

TEST(BitSig, SetGetRoundTrip)
{
    BitSig sig(70);
    sig.set(0, true);
    sig.set(63, true);
    sig.set(64, true);
    sig.set(69, true);
    EXPECT_TRUE(sig.get(0));
    EXPECT_TRUE(sig.get(63));
    EXPECT_TRUE(sig.get(64));
    EXPECT_TRUE(sig.get(69));
    EXPECT_FALSE(sig.get(1));
    sig.set(63, false);
    EXPECT_FALSE(sig.get(63));
}

TEST(BitSig, HammingDistance)
{
    BitSig a(32), b(32);
    EXPECT_EQ(a.hamming(b), 0u);
    a.set(3, true);
    EXPECT_EQ(a.hamming(b), 1u);
    b.set(3, true);
    EXPECT_EQ(a.hamming(b), 0u);
    for (uint32_t i = 0; i < 32; ++i)
        a.set(i, true);
    EXPECT_EQ(a.hamming(b), 31u);
}

TEST(BitSig, Equality)
{
    BitSig a(16), b(16), c(17);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    b.set(5, true);
    EXPECT_FALSE(a == b);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0);   // Clamped into bin 0.
    h.add(50.0);   // Clamped into bin 9.
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, Normalized)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.2);
    h.add(0.2);
    h.add(0.8);
    h.add(0.9);
    auto n = h.normalized();
    EXPECT_DOUBLE_EQ(n[0], 0.5);
    EXPECT_DOUBLE_EQ(n[1], 0.5);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    for (auto &v : y)
        v = -v;
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroForConstant)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> y = {5, 5, 5};
    EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Mean, Basics)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}
