/**
 * @file
 * KVMU layout ablation (design-choice study beyond the paper's
 * figures, supporting §V-C): replays real ReSV selections from the
 * functional model through the hierarchical KV store and measures
 * how many contiguous runs each fetch spans under (a) the plain
 * time-ordered layout and (b) the KVMU's cluster-contiguous layout,
 * then prices both with the PCIe transaction model.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/resv.hh"
#include "pipeline/memory_driver.hh"
#include "pipeline/streaming_session.hh"
#include "sim/pcie_model.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    ModelConfig cfg = ModelConfig::smallVideo();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);

    TierConfig tiers;
    // Tiny device window so most selections require fetching.
    tiers.deviceKvCapacityBytes = 48 * cfg.kvBytesPerToken(2.0);
    tiers.offloadTarget = Tier::Storage;

    MemoryTrackingPolicy tracked(&resv, cfg, tiers);
    tracked.setClusterSource(&resv);

    StreamingSession session(cfg, &tracked, 42);
    SessionScript script = WorkloadGenerator::coinAverage(13);
    session.run(script);

    const MemoryReplayStats &s = tracked.stats();
    bench::header("KVMU cluster-contiguous layout ablation "
                  "(functional replay)");
    std::printf("selected past tokens (sum over layers): %llu\n",
                static_cast<unsigned long long>(s.selectedTokens));
    std::printf("fetched bytes: %.1f MiB, offloaded: %.1f MiB\n",
                s.fetchedBytes / 1048576.0,
                s.offloadedBytes / 1048576.0);
    std::printf("\n%-28s %14s %14s\n", "layout", "runs",
                "tokens/run");
    std::printf("%-28s %14llu %14.2f\n", "time-ordered (no KVMU)",
                static_cast<unsigned long long>(s.runsTimeOrder),
                s.tokensPerRunTimeOrder());
    std::printf("%-28s %14llu %14.2f\n", "cluster-contiguous (KVMU)",
                static_cast<unsigned long long>(s.runsClustered),
                s.tokensPerRunClustered());

    // Price both with the edge PCIe link.
    PcieModel pcie(4.0, 1.5);
    const double granule = cfg.kvBytesPerTokenPerLayer(2.0);
    double bytes = static_cast<double>(s.selectedTokens) * granule;
    double t_time = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsTimeOrder));
    double t_clust = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsClustered));
    std::printf("\nPCIe transfer estimate for the same bytes:\n");
    std::printf("  time-ordered: %8.2f ms (eff %.0f%%)\n",
                t_time * 1e3,
                100.0 * pcie.efficiency(
                    bytes / std::max<uint64_t>(1, s.runsTimeOrder)));
    std::printf("  clustered:    %8.2f ms (eff %.0f%%)  -> %.2fx "
                "fewer transactions\n", t_clust * 1e3,
                100.0 * pcie.efficiency(
                    bytes / std::max<uint64_t>(1, s.runsClustered)),
                static_cast<double>(s.runsTimeOrder) /
                    std::max<uint64_t>(1, s.runsClustered));
    bench::note("the KVMU stores same-cluster tokens contiguously so "
                "one transaction moves a whole cluster (Fig. 12)");
    return 0;
}
