/**
 * @file
 * Minimal row-major float matrix used by the functional LLM runtime.
 *
 * The runtime only needs dense 2-D storage with cheap row views; this
 * type deliberately avoids the complexity of a general tensor library.
 */

#ifndef VREX_TENSOR_MATRIX_HH
#define VREX_TENSOR_MATRIX_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/serial.hh"

namespace vrex
{

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(uint32_t rows, uint32_t cols)
        : numRows(rows), numCols(cols),
          data(static_cast<size_t>(rows) * cols, 0.0f)
    {
    }

    uint32_t rows() const { return numRows; }
    uint32_t cols() const { return numCols; }
    size_t size() const { return data.size(); }

    float &
    at(uint32_t r, uint32_t c)
    {
        return data[static_cast<size_t>(r) * numCols + c];
    }

    float
    at(uint32_t r, uint32_t c) const
    {
        return data[static_cast<size_t>(r) * numCols + c];
    }

    float *row(uint32_t r) { return data.data() + size_t(r) * numCols; }
    const float *
    row(uint32_t r) const
    {
        return data.data() + size_t(r) * numCols;
    }

    float *raw() { return data.data(); }
    const float *raw() const { return data.data(); }

    void
    fill(float value)
    {
        std::fill(data.begin(), data.end(), value);
    }

    /** Append a row copied from @p src (length must equal cols()). */
    void
    appendRow(const float *src)
    {
        VREX_ASSERT(numCols > 0, "appendRow on an unshaped matrix");
        data.insert(data.end(), src, src + numCols);
        ++numRows;
    }

    bool
    sameShape(const Matrix &other) const
    {
        return numRows == other.numRows && numCols == other.numCols;
    }

  private:
    uint32_t numRows = 0;
    uint32_t numCols = 0;
    std::vector<float> data;
};

/** Shape + raw float payload, bit-preserving. */
inline void
serializeMatrix(serial::ByteWriter &w, const Matrix &m)
{
    w.put<uint32_t>(m.rows());
    w.put<uint32_t>(m.cols());
    w.putBytes(m.raw(), m.size() * sizeof(float));
}

/** Counterpart of serializeMatrix. */
inline Matrix
restoreMatrix(serial::ByteReader &r)
{
    const uint32_t rows = r.get<uint32_t>();
    const uint32_t cols = r.get<uint32_t>();
    // Check before allocating: a corrupted shape must fail as a
    // truncation error, not as a giant allocation.
    if (size_t(rows) * cols * sizeof(float) > r.remaining())
        throw serial::SerialError(
            "vrex::serial: truncated blob (matrix shape exceeds "
            "remaining payload)");
    Matrix m(rows, cols);
    r.getBytes(m.raw(), m.size() * sizeof(float));
    return m;
}

} // namespace vrex

#endif // VREX_TENSOR_MATRIX_HH
