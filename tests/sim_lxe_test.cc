/**
 * @file
 * Tests for the LXE cycle model: geometry-derived peak throughput
 * (Table I cross-check) and GEMM utilization behaviour.
 */

#include <gtest/gtest.h>

#include "sim/lxe_model.hh"

using namespace vrex;

TEST(LxeModel, PeakMatchesTableOne)
{
    // 64x64 MACs @ 0.8 GHz, 8 cores = 52.4 TFLOPS ~ Table I's 53.3.
    LxeModel lxe8(LxeConfig{}, 8);
    EXPECT_NEAR(lxe8.peakFlops() / 1e12, 52.4, 0.1);
    LxeModel lxe48(LxeConfig{}, 48);
    EXPECT_NEAR(lxe48.peakFlops() / 1e12, 314.6, 0.5);
}

TEST(LxeModel, AlignedGemmFullUtilization)
{
    LxeModel lxe(LxeConfig{}, 8);
    // n = 64 trees * 8 cores, k multiple of 64: no underfill.
    double util = lxe.gemmUtilization(128, 4096, 64 * 8);
    EXPECT_NEAR(util, 1.0, 1e-9);
}

TEST(LxeModel, SmallKUnderfillsTrees)
{
    LxeModel lxe(LxeConfig{}, 8);
    // k = 16 of 64 lanes: at best 25% of peak.
    EXPECT_LE(lxe.gemmUtilization(128, 16, 512), 0.26);
    EXPECT_GT(lxe.gemmUtilization(128, 16, 512), 0.2);
}

TEST(LxeModel, SmallNUnderfillsCores)
{
    LxeModel lxe(LxeConfig{}, 8);
    // n = 8: only one output column per core, 63/64 trees idle.
    EXPECT_LT(lxe.gemmUtilization(128, 4096, 8), 0.05);
}

TEST(LxeModel, CyclesScaleWithM)
{
    LxeModel lxe(LxeConfig{}, 8);
    EXPECT_DOUBLE_EQ(lxe.gemmCycles(20, 4096, 512),
                     2.0 * lxe.gemmCycles(10, 4096, 512));
}

TEST(LxeModel, MoreCoresFaster)
{
    LxeModel one(LxeConfig{}, 1), eight(LxeConfig{}, 8);
    EXPECT_GT(one.gemmSeconds(64, 4096, 4096),
              eight.gemmSeconds(64, 4096, 4096));
}

TEST(LxeModel, LlamaShapesDecentUtilization)
{
    // The 8B model's GEMM shapes on V-Rex8.
    LxeModel lxe(LxeConfig{}, 8);
    // QKV projection: d=4096 -> 4096+1024+1024.
    EXPECT_GT(lxe.gemmUtilization(10, 4096, 4096), 0.9);
    // FFN up: 4096 -> 14336.
    EXPECT_GT(lxe.gemmUtilization(10, 4096, 14336), 0.9);
}

TEST(LxeModel, VpeThroughput)
{
    LxeModel lxe(LxeConfig{}, 8);
    // 64 lanes * 8 cores = 512 elements/cycle at 0.8 GHz.
    double t = lxe.vpeSeconds(512 * 800);
    EXPECT_NEAR(t, 1e-6, 1e-9);
}
