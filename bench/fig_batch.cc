/**
 * @file
 * Cross-session batched-generation throughput panel (PR 10; beyond
 * the paper's figures, supporting the serving story of §VI): N
 * same-geometry sessions each enqueue one long Generate script, the
 * burst is staged behind pause()/resume(), and a single worker
 * replays it with `EngineConfig::batching` off (sequential
 * round-robin, one session per step) and on (fused forward passes,
 * one shared weight stream per step). The headline metric is the
 * dimensionless batched/sequential throughput multiplier.
 *
 * Throughput is host wall-clock, so this bench is excluded from the
 * figure drift gate (`bench/baseline.json`). It carries its own
 * committed baseline instead, `bench/batch_baseline.json`, following
 * the micro_core perf-baseline idiom: multipliers on the rows the
 * batching contract promises (>= 8 same-geometry sessions measuring
 * >= 1.5x on the refresh machine) get a *floor* at the measured
 * value with 25% relative headroom, raw steps/s stay informational,
 * and the fused-step shape counters (coalesced steps/members, fill
 * ratio — exact logical counts under a staged single-worker burst)
 * band-gate at the default tolerance.
 *
 *   fig_batch [--json PATH] [--csv PATH] [--quiet]
 *             [--write-batch-baseline PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_compare.hh"
#include "common/bench_report.hh"
#include "serve/engine.hh"

using namespace vrex;

namespace
{

/**
 * The benchmark geometry. ModelConfig::tiny() streams ~2 MB of
 * weights per step — cache-resident on any modern host, so the
 * fused path's weight-stream reuse has nothing to amortize and the
 * multiplier saturates near 1x. This preset pushes the per-step
 * weight stream to ~16 MB (past typical L2, rivalling L3), which is
 * the regime batched serving actually lives in: sequential replay
 * re-streams the stack once per session per token, the fused pass
 * streams it once per token.
 */
ModelConfig
benchModel()
{
    ModelConfig c;
    c.name = "bench-batch";
    c.nLayers = 4;
    c.dModel = 256;
    c.nHeads = 8;
    c.nKvHeads = 4;
    c.ffnDim = 1024;
    c.vocabSize = 8192;
    return c;
}

/** Generation steps per session; every sweep point replays the same
 *  per-session script so throughputs are comparable across rows. */
constexpr uint32_t kSteps = 24;

/** The concurrency sweep; 8+ is where the acceptance floor lives. */
constexpr uint32_t kSessionSweep[] = {1, 2, 4, 8, 16};

struct RunOutcome
{
    double stepsPerSec = 0.0;
    serve::BatchStats batch;
};

/**
 * One staged burst: @p sessions equal-geometry sessions, each with a
 * single Generate{kSteps} script, drained on one worker. Only the
 * resume()..waitAll() window is timed — session/model construction
 * stays outside. With @p shared_seed every session uses the engine
 * default master seed (identical weights, so fused steps run the
 * grouped weight-row-outer matmuls); otherwise seeds are distinct
 * and every fused member is its own weight group.
 */
RunOutcome
runOnce(uint32_t sessions, bool batching, bool shared_seed)
{
    serve::EngineConfig cfg;
    cfg.model = benchModel();
    cfg.policy = serve::PolicySpec::resv();
    cfg.workers = 1;
    cfg.batching.enabled = batching;
    cfg.batching.maxBatch = 16;

    serve::Engine engine(cfg);
    engine.pause();
    for (uint32_t i = 0; i < sessions; ++i) {
        serve::SessionOptions o;
        o.name = "b" + std::to_string(i);
        if (!shared_seed)
            o.sessionSeed = 1000 + i;
        const serve::SessionId id = engine.createSession(o);
        engine.enqueue(id, {{SessionEvent::Type::Generate, kSteps}});
    }

    const auto t0 = std::chrono::steady_clock::now();
    engine.resume();
    engine.waitAll();
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    RunOutcome out;
    out.stepsPerSec =
        static_cast<double>(sessions) * kSteps / sec;
    out.batch = engine.stats().batch;
    return out;
}

/** Best-of-@p reps throughput (the usual defense against scheduler
 *  noise); the fused-step counters are identical across reps. */
RunOutcome
bestOf(int reps, uint32_t sessions, bool batching, bool shared_seed)
{
    RunOutcome best = runOnce(sessions, batching, shared_seed);
    for (int r = 1; r < reps; ++r) {
        RunOutcome next = runOnce(sessions, batching, shared_seed);
        if (next.stepsPerSec > best.stepsPerSec)
            best = next;
    }
    return best;
}

struct SweepPoint
{
    uint32_t sessions = 0;
    double seqSps = 0.0;
    double batSps = 0.0;
    double multiplier = 0.0;
    serve::BatchStats batch;
};

void
runSweep(std::vector<SweepPoint> &points, double &distinctMultiplier)
{
    constexpr int kReps = 2;
    for (uint32_t n : kSessionSweep) {
        SweepPoint p;
        p.sessions = n;
        const RunOutcome seq = bestOf(kReps, n, false, true);
        const RunOutcome bat = bestOf(kReps, n, true, true);
        p.seqSps = seq.stepsPerSec;
        p.batSps = bat.stepsPerSec;
        p.multiplier = bat.stepsPerSec / seq.stepsPerSec;
        p.batch = bat.batch;
        points.push_back(p);
    }
    // Distinct-seed control: fused steps still coalesce (geometry
    // always matches) but every member is its own weight group, so
    // there is no shared weight stream to amortize.
    const RunOutcome seq = bestOf(kReps, 8, false, false);
    const RunOutcome bat = bestOf(kReps, 8, true, false);
    distinctMultiplier = bat.stepsPerSec / seq.stepsPerSec;
}

std::string
rowLabel(uint32_t sessions)
{
    return "sessions=" + std::to_string(sessions);
}

void
report(bench::Reporter &rep, const std::vector<SweepPoint> &points,
       double distinctMultiplier)
{
    rep.beginPanel("shared",
                   "equal-seed sessions: fused vs sequential "
                   "generation throughput (workers=1)");
    rep.note("steps/s are host wall-clock (info only); the "
             "dimensionless multiplier is what "
             "bench/batch_baseline.json floor-gates.");
    for (const SweepPoint &p : points) {
        const std::string row = rowLabel(p.sessions);
        rep.add(row, "seq_steps_per_sec", p.seqSps, "steps/s", 0);
        rep.add(row, "batched_steps_per_sec", p.batSps, "steps/s", 0);
        rep.add(row, "multiplier", p.multiplier, "x", 2);
    }

    rep.beginPanel("fusion",
                   "fused-step shape of the batched runs (exact "
                   "logical counters)");
    rep.note("staged burst on one worker: every counter is a pure "
             "function of (sessions, steps, maxBatch=16).");
    for (const SweepPoint &p : points) {
        const std::string row = rowLabel(p.sessions);
        rep.add(row, "coalesced_steps",
                static_cast<double>(p.batch.coalescedSteps), "", 0);
        rep.add(row, "coalesced_members",
                static_cast<double>(p.batch.coalescedMembers), "", 0);
        rep.add(row, "solo_units",
                static_cast<double>(p.batch.soloSteps), "", 0);
        rep.add(row, "mean_batch", p.batch.meanBatchSize(), "", 2);
        rep.add(row, "fill_ratio", 100.0 * p.batch.fillRatio(), "%",
                1);
    }

    rep.beginPanel("distinct",
                   "distinct-seed control at 8 sessions (no shared "
                   "weight stream)");
    rep.note("fusion still happens, but with per-member weight "
             "groups the multiplier should sit near 1x — a large "
             "value here would mean the sequential path regressed.");
    rep.add("sessions=8", "multiplier", distinctMultiplier, "x", 2);
}

/**
 * Derive the committed baseline from this run (micro_core idiom,
 * adapted): steps/s and the distinct-seed control are informational;
 * a shared multiplier becomes a *floor* on the rows the batching
 * contract actually promises — >= 8 same-geometry sessions measuring
 * >= 1.5x — recorded at the measured value so the 25% relative
 * tolerance is the headroom (a multiplier collapsing to ~1x, i.e.
 * fusion no longer paying for itself, trips the gate; runner noise
 * does not). The fused-step counters band-gate — they are exact
 * logical counts, not timings.
 */
bool
writeBatchBaseline(const std::string &path,
                   const std::vector<SweepPoint> &points,
                   double distinctMultiplier)
{
    bench::Baseline base;
    base.defaultRelTol = 0.25;
    base.defaultAbsTol = 1e-6;
    auto push = [&](const std::string &panel, const std::string &row,
                    const std::string &metric, double value,
                    const std::string &unit, bench::Gate gate) {
        bench::Record r;
        r.bench = "batch";
        r.panel = panel;
        r.row = row;
        r.metric = metric;
        r.value = value;
        r.unit = unit;
        r.gate = gate;
        base.records.push_back(std::move(r));
    };
    for (const SweepPoint &p : points) {
        const std::string row = rowLabel(p.sessions);
        push("shared", row, "seq_steps_per_sec", p.seqSps, "steps/s",
             bench::Gate::Info);
        push("shared", row, "batched_steps_per_sec", p.batSps,
             "steps/s", bench::Gate::Info);
        const bool gate = p.sessions >= 8 && p.multiplier >= 1.5;
        push("shared", row, "multiplier", p.multiplier, "x",
             gate ? bench::Gate::Floor : bench::Gate::Info);
        push("fusion", row, "coalesced_steps",
             static_cast<double>(p.batch.coalescedSteps), "",
             bench::Gate::Band);
        push("fusion", row, "coalesced_members",
             static_cast<double>(p.batch.coalescedMembers), "",
             bench::Gate::Band);
        push("fusion", row, "solo_units",
             static_cast<double>(p.batch.soloSteps), "",
             bench::Gate::Band);
        push("fusion", row, "mean_batch", p.batch.meanBatchSize(), "",
             bench::Gate::Band);
        push("fusion", row, "fill_ratio",
             100.0 * p.batch.fillRatio(), "%", bench::Gate::Band);
    }
    push("distinct", "sessions=8", "multiplier", distinctMultiplier,
         "x", bench::Gate::Info);

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << bench::renderBaseline(base)).flush()) {
        std::fprintf(stderr, "fig_batch: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::printf("wrote %s: %zu batch metrics\n", path.c_str(),
                base.records.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-local --write-batch-baseline flag before the
    // shared flag parser sees the command line.
    std::string baselinePath;
    std::vector<char *> passThrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (i + 1 < argc &&
            std::strcmp(argv[i], "--write-batch-baseline") == 0) {
            baselinePath = argv[++i];
            continue;
        }
        passThrough.push_back(argv[i]);
    }

    std::vector<SweepPoint> points;
    double distinctMultiplier = 0.0;
    const int rc = bench::runBench(
        "batch", static_cast<int>(passThrough.size()),
        passThrough.data(),
        [&points, &distinctMultiplier](bench::Reporter &rep) {
            runSweep(points, distinctMultiplier);
            report(rep, points, distinctMultiplier);
        });
    if (rc != 0)
        return rc;
    if (!baselinePath.empty() &&
        !writeBatchBaseline(baselinePath, points, distinctMultiplier))
        return 1;
    return 0;
}
