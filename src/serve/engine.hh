/**
 * @file
 * vrex::serve::Engine — the session-oriented serving facade.
 *
 * An Engine owns a pool of worker threads and any number of
 * independent streaming-QA sessions. Each session bundles its own
 * Model, an *owned* retrieval policy built from a declarative
 * PolicySpec, and its own RNG streams, so sessions share no mutable
 * state: an N-way concurrent run is byte-identical to N sequential
 * StreamingSession runs (locked by tests/serve_test.cc).
 *
 * Lifecycle:
 *
 *     Engine engine({.model = ModelConfig::tiny(),
 *                    .policy = PolicySpec::resv()});
 *     SessionId id = engine.createSession(opts);
 *     engine.feedFrame(id, 12);       // async: queued per session
 *     engine.ask(id, 10, 12);         // question + answer round
 *     SessionRunResult r = engine.result(id);  // drains, snapshots
 *     engine.closeSession(id);
 *
 * The verbs enqueue work and return immediately; a session's events
 * execute in order on one worker at a time (actor style), while
 * different sessions run concurrently. result()/model()/policy()
 * block until the session is drained.
 */

#ifndef VREX_SERVE_ENGINE_HH
#define VREX_SERVE_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/accuracy_eval.hh"
#include "pipeline/streaming_session.hh"
#include "serve/policy_factory.hh"
#include "serve/thread_pool.hh"
#include "video/workload.hh"

namespace vrex::serve
{

/** Opaque handle of one open session. */
using SessionId = uint64_t;

/** Engine-wide configuration: geometry, default policy, pool size. */
struct EngineConfig
{
    /** Backbone geometry shared by all sessions. */
    ModelConfig model = ModelConfig::tiny();
    /** Default retrieval policy of new sessions. */
    PolicySpec policy;
    /** Worker threads; 0 picks from hardware concurrency. */
    uint32_t workers = 0;
    /** Default per-session master seed (weights + streams). */
    uint64_t sessionSeed = 42;
};

/** Per-session creation parameters. */
struct SessionOptions
{
    std::string name = "session";
    VideoConfig video;
    /** Per-stream seed (mixed into video + question randomness),
     *  mirroring SessionScript::seed. */
    uint64_t scriptSeed = 0;
    /** Master seed override; engine default when unset. */
    std::optional<uint64_t> sessionSeed;
    /** Policy override; engine default when unset. */
    std::optional<PolicySpec> policy;
    /** Teacher forcing: generation consumes these token ids. */
    std::vector<uint32_t> forcedTokens;

    /** Options matching a scripted session's stream parameters. */
    static SessionOptions fromScript(const SessionScript &script);
};

/** One fidelity evaluation: a script run under a policy spec. */
struct FidelityJob
{
    SessionScript script;
    PolicySpec policy;
};

class Engine
{
  public:
    explicit Engine(EngineConfig config);

    /** Drains every open session, then stops the pool. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineConfig &config() const { return cfg; }
    uint32_t workerCount() const { return pool.workerCount(); }

    // ---- session lifecycle -------------------------------------

    /** Open a session; its model/policy are built immediately. */
    SessionId createSession(const SessionOptions &options = {});

    /** createSession(fromScript(script)) + enqueue all its events. */
    SessionId submit(const SessionScript &script);

    /**
     * submit() with policy/sessionSeed/forcedTokens overrides. The
     * script remains the source of truth for stream identity:
     * options.name/video/scriptSeed are taken from it.
     */
    SessionId submit(const SessionScript &script,
                     SessionOptions options);

    /** Stream @p frames video frames into the session (async). */
    void feedFrame(SessionId id, uint32_t frames = 1);

    /** One QA round: @p question_tokens prefilled, then
     *  @p answer_tokens generated (async). */
    void ask(SessionId id, uint32_t question_tokens,
             uint32_t answer_tokens);

    /** Enqueue scripted events verbatim (async). */
    void enqueue(SessionId id, const std::vector<SessionEvent> &events);

    /** Block until the session's queue is drained. */
    void wait(SessionId id);

    /** Block until every open session is drained. */
    void waitAll();

    /** Drain the session and aggregate its results so far. The
     *  session stays open and can keep receiving events. */
    SessionRunResult result(SessionId id);

    /** Drain and destroy the session (model, policy, cache). */
    void closeSession(SessionId id);

    size_t openSessions() const;

    // ---- drained-session accessors -----------------------------
    // Each drains the session first. The returned reference/pointer
    // stays valid until further events are fed or the session closes.

    /** The session's model (KV cache inspection etc.). */
    const Model &model(SessionId id);

    /** The session's owned policy stack. */
    const PolicyInstance &policy(SessionId id);

    /** Replay stats when the spec enabled memory tracking. */
    const MemoryReplayStats *memoryStats(SessionId id);

    // ---- fidelity evaluation -----------------------------------

    /**
     * Accuracy-proxy evaluation of @p spec on @p script against the
     * full-attention reference (pipeline/accuracy_eval semantics,
     * executed through engine sessions).
     */
    FidelityResult evaluateFidelity(const SessionScript &script,
                                    const PolicySpec &spec);

    /**
     * Evaluate many (script, policy) pairs, running the reference
     * pass and the teacher-forced pass of all jobs concurrently on
     * the pool. Results are returned in job order and are identical
     * to calling evaluateFidelity() sequentially.
     */
    std::vector<FidelityResult>
    evaluateFidelityBatch(const std::vector<FidelityJob> &jobs);

  private:
    struct Session
    {
        SessionOptions options;
        PolicyInstance policy;
        std::unique_ptr<StreamingSession> exec;
        std::deque<SessionEvent> pending;
        /** True while a worker owns exec (drain in flight). */
        bool running = false;
    };

    Session *findSession(SessionId id);
    Session &sessionRef(SessionId id);
    void scheduleLocked(SessionId id, Session &s);
    void waitIdleLocked(std::unique_lock<std::mutex> &lock,
                        SessionId id);
    void drain(Session *s);

    EngineConfig cfg;
    ThreadPool pool;

    mutable std::mutex mu;
    std::condition_variable idleCv;
    std::map<SessionId, std::unique_ptr<Session>> sessions;
    SessionId nextId = 1;
};

} // namespace vrex::serve

#endif // VREX_SERVE_ENGINE_HH
