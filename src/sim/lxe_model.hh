/**
 * @file
 * Cycle model of the LLM execution engine (LXE, paper §V-A).
 *
 * The LXE follows the LPU core architecture: a dot-product engine
 * (DPE) of N_DPE_h MAC trees, each consuming N_DPE_w operands per
 * cycle, plus a vector processing engine (VPE) of N_VPE_h units of
 * N_VPE_w lanes — all BF16. With the paper's per-core configuration
 * (64x64 DPE at 0.8 GHz) eight cores give 52.4 TFLOPS, matching
 * Table I's 53.3 TFLOPS within rounding; this model derives peak
 * throughput from geometry and prices GEMMs with tree-underfill
 * effects, rather than assuming a flat efficiency.
 */

#ifndef VREX_SIM_LXE_MODEL_HH
#define VREX_SIM_LXE_MODEL_HH

#include <cstdint>

namespace vrex
{

/** Geometry of one LXE core (paper §VI-A). */
struct LxeConfig
{
    uint32_t nDpeH = 64;   //!< MAC trees per core.
    uint32_t nDpeW = 64;   //!< Inputs per MAC tree per cycle.
    uint32_t nVpeH = 1;    //!< Vector units per core.
    uint32_t nVpeW = 64;   //!< Lanes per vector unit.
    double clockGhz = 0.8;
};

/** DPE/VPE timing for one or more LXE cores. */
class LxeModel
{
  public:
    LxeModel(const LxeConfig &config, uint32_t n_cores)
        : cfg(config), cores(n_cores)
    {
    }

    /** Peak MAC throughput in FLOP/s (2 FLOPs per MAC). */
    double peakFlops() const;

    /**
     * Cycles for a GEMM of shape (m x k) * (k x n), with the n
     * dimension partitioned across cores. Partial tree fills (k not
     * a multiple of nDpeW, n smaller than the tree count) waste
     * lanes, exactly as in the real datapath.
     */
    double gemmCycles(uint64_t m, uint64_t k, uint64_t n) const;

    /** Seconds for the same GEMM. */
    double gemmSeconds(uint64_t m, uint64_t k, uint64_t n) const;

    /** Achieved fraction of peak for a GEMM shape. */
    double gemmUtilization(uint64_t m, uint64_t k, uint64_t n) const;

    /** Seconds for an elementwise pass over @p elements values. */
    double vpeSeconds(uint64_t elements) const;

    const LxeConfig &config() const { return cfg; }
    uint32_t coreCount() const { return cores; }

  private:
    LxeConfig cfg;
    uint32_t cores;
};

} // namespace vrex

#endif // VREX_SIM_LXE_MODEL_HH
