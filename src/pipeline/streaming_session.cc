#include "pipeline/streaming_session.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex
{

StreamingSession::StreamingSession(const ModelConfig &model_config,
                                   SelectionPolicy *policy,
                                   uint64_t seed_value)
    : seed(seed_value), llm(model_config, seed_value)
{
    llm.setPolicy(policy);
}

void
StreamingSession::accumulate(const BlockStats &stats,
                             SessionRunResult &out,
                             std::vector<std::vector<double>> &sums,
                             uint32_t &ratio_blocks, double &frame_sum,
                             uint32_t &frame_n, double &text_sum,
                             uint32_t &text_n) const
{
    (void)out;
    if (stats.pastLen == 0)
        return;
    const double ratio = stats.meanRatio();
    if (stats.stage == TokenStage::VideoFrame) {
        frame_sum += ratio;
        ++frame_n;
    } else {
        text_sum += ratio;
        ++text_n;
    }
    // Per-layer / per-head accumulation (all stages).
    if (sums.empty()) {
        sums.assign(stats.selectedPerHead.size(),
                    std::vector<double>(
                        stats.selectedPerHead.empty()
                            ? 0
                            : stats.selectedPerHead[0].size(),
                        0.0));
    }
    for (size_t l = 0; l < stats.selectedPerHead.size(); ++l)
        for (size_t h = 0; h < stats.selectedPerHead[l].size(); ++h)
            sums[l][h] +=
                static_cast<double>(stats.selectedPerHead[l][h]) /
                stats.pastLen;
    ++ratio_blocks;
}

SessionRunResult
StreamingSession::run(const SessionScript &script)
{
    return run(script, {});
}

SessionRunResult
StreamingSession::run(const SessionScript &script,
                      const std::vector<uint32_t> &forced_tokens)
{
    llm.resetSession();
    const ModelConfig &cfg = llm.config();

    FrameGenerator gen(script.video, seed ^ script.seed, script.name);
    const uint32_t vision_dim = std::max(32u, cfg.dModel / 4);
    VisionTower tower(script.video.latentDim, vision_dim, seed);
    MlpProjector projector(vision_dim, cfg.dModel, seed);

    SessionRunResult out;
    std::vector<std::vector<double>> sums;
    uint32_t ratio_blocks = 0, frame_n = 0, text_n = 0;
    double frame_sum = 0.0, text_sum = 0.0;

    int32_t frame_id = 0;
    uint32_t question_no = 0;
    uint32_t forced_pos = 0;

    for (const auto &event : script.events) {
        switch (event.type) {
          case SessionEvent::Type::Frame: {
            Matrix latents = gen.nextFrameLatents();
            Matrix embeds =
                projector.project(tower.encode(latents));
            BlockStats stats = llm.prefillFrame(embeds, frame_id++);
            accumulate(stats, out, sums, ratio_blocks, frame_sum,
                       frame_n, text_sum, text_n);
            ++out.frames;
            break;
          }
          case SessionEvent::Type::Question: {
            auto ids = WorkloadGenerator::questionTokens(
                event.tokens, cfg.vocabSize,
                seed ^ script.seed ^ (0x9e37u + question_no++));
            BlockStats stats = llm.prefillText(ids);
            accumulate(stats, out, sums, ratio_blocks, frame_sum,
                       frame_n, text_sum, text_n);
            break;
          }
          case SessionEvent::Type::Generate: {
            for (uint32_t i = 0; i < event.tokens; ++i) {
                // Argmax of the current state.
                std::vector<float> logits = llm.lastLogits();
                uint32_t best = static_cast<uint32_t>(
                    std::max_element(logits.begin(), logits.end()) -
                    logits.begin());
                out.generated.push_back(best);
                out.stepLogits.push_back(std::move(logits));
                // Advance with the forced token when provided.
                uint32_t next = best;
                if (forced_pos < forced_tokens.size())
                    next = forced_tokens[forced_pos++];
                BlockStats stats = llm.forwardBlock(
                    llm.embedTokens({next}), -1,
                    TokenStage::GeneratedText);
                accumulate(stats, out, sums, ratio_blocks, frame_sum,
                           frame_n, text_sum, text_n);
            }
            break;
          }
        }
    }

    out.frameRatio = frame_n ? frame_sum / frame_n : 1.0;
    out.textRatio = text_n ? text_sum / text_n : 1.0;
    if (ratio_blocks > 0) {
        out.layerHeadRatio = sums;
        for (auto &layer : out.layerHeadRatio)
            for (auto &v : layer)
                v /= ratio_blocks;
    }
    out.totalTokens = llm.cache().tokenCount();
    return out;
}

} // namespace vrex
