/**
 * @file
 * vrex-lint: a repo-owned static checker for project contracts that
 * no off-the-shelf tool knows about. Rules (see tools/README.md for
 * the full catalog and rationale):
 *
 *   nondet-rand     banned nondeterministic randomness APIs in src/
 *   nondet-clock    wall-clock reads outside common/wallclock.hh
 *   unordered-serial  unordered containers in serialize-defining files
 *   layer-dag       #include edges must respect the src/ layer DAG
 *   assert-format   VREX_ASSERT printf format / vararg arity pairing
 *   serial-pairing  serialize()/restore() typed write/read symmetry
 *   allow-syntax    malformed `vrex-lint: allow(...)` directives
 *
 * Suppression: `// vrex-lint: allow(<rule>) -- <justification>` on
 * the offending line, or on a standalone comment line directly above
 * it. The justification text is mandatory; a bare allow() is itself
 * reported (rule `allow-syntax`), as is an allow() naming an unknown
 * rule.
 *
 * The checker is deliberately line- and token-based (with comments
 * and string literals stripped where that matters): it trades
 * precision for zero build-time dependencies and total portability.
 * False positives are expected to be rare and are silenced with an
 * allow() + justification, which doubles as documentation.
 */

#ifndef VREX_TOOLS_VREX_LINT_LINT_HH
#define VREX_TOOLS_VREX_LINT_LINT_HH

#include <string>
#include <vector>

namespace vrex::lint
{

/** One rule violation. */
struct Finding
{
    std::string file; //!< Path as given to the linter.
    int line = 0;     //!< 1-based.
    std::string rule;
    std::string message;
};

/** Every rule id the linter knows (allow() targets). */
const std::vector<std::string> &ruleIds();

/**
 * Lint one source file.
 *
 * @param rel_path  Path relative to the src root, e.g.
 *                  "serve/engine.cc". The first directory component
 *                  names the layer for the layer-DAG rule; a file
 *                  with no directory (or an unknown layer) skips
 *                  that rule. Used verbatim in Finding::file.
 * @param content   The file's full text.
 */
std::vector<Finding> lintSource(const std::string &rel_path,
                                const std::string &content);

/** lintSource over every *.cc / *.hh under @p src_root (recursive),
 *  findings sorted by (file, line). Paths in the findings are
 *  relative to @p src_root. Throws std::runtime_error when the root
 *  is missing or unreadable. */
std::vector<Finding> lintTree(const std::string &src_root);

/** "file:line: [rule] message" (one line, no trailing newline). */
std::string formatFinding(const Finding &f);

} // namespace vrex::lint

#endif // VREX_TOOLS_VREX_LINT_LINT_HH
