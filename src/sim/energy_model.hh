/**
 * @file
 * Area/power constants (paper Table III, Synopsys DC @ 14 nm,
 * 0.8 V / 800 MHz) and activity-based energy accounting.
 */

#ifndef VREX_SIM_ENERGY_MODEL_HH
#define VREX_SIM_ENERGY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/hw_config.hh"

namespace vrex
{

/** Area/power of one hardware component (Table III row). */
struct ComponentSpec
{
    std::string name;
    double areaMm2;
    double powerMw;
};

/** Table III: one V-Rex core's breakdown. */
struct VRexCoreSpec
{
    ComponentSpec dpe{"LXE - DPE", 1.37, 2311.39};
    ComponentSpec vpe{"LXE - VPE", 0.14, 122.06};
    ComponentSpec onChipMem{"On-chip Memory", 0.34, 118.94};
    ComponentSpec wtu{"DRE - KVPU WTU", 0.02, 39.04};
    ComponentSpec hcu{"DRE - KVPU HCU", 0.01, 2.99};
    ComponentSpec kvmu{"DRE - KVMU", 0.01, 15.01};

    std::vector<ComponentSpec> all() const;
    double totalAreaMm2() const;
    double totalPowerMw() const;
    /** DRE share of core power / area (paper: 2.2% / 2.0%). */
    double dreAreaFraction() const;
    double drePowerFraction() const;
};

/** Energy of one measured phase. */
struct EnergyBreakdown
{
    double computeJ = 0.0;
    double dramJ = 0.0;
    double pcieJ = 0.0;
    double idleJ = 0.0;

    double
    totalJ() const
    {
        return computeJ + dramJ + pcieJ + idleJ;
    }
};

/** Activity-based energy integrator. */
class EnergyModel
{
  public:
    explicit EnergyModel(const AcceleratorConfig &hw) : cfg(hw) {}

    /**
     * @param compute_busy_sec Engine-busy time.
     * @param total_sec        Wall-clock of the phase.
     * @param dram_bytes       Bytes moved through device DRAM.
     * @param pcie_active_sec  Time the PCIe link is driving data.
     */
    EnergyBreakdown energy(double compute_busy_sec, double total_sec,
                           double dram_bytes,
                           double pcie_active_sec) const;

    /** Average power of a phase (W). */
    double averagePowerW(const EnergyBreakdown &e,
                         double total_sec) const;

  private:
    AcceleratorConfig cfg;
};

} // namespace vrex

#endif // VREX_SIM_ENERGY_MODEL_HH
