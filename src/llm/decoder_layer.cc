#include "llm/decoder_layer.hh"

#include <cmath>
#include <string>

#include "tensor/ops.hh"

namespace vrex
{

namespace
{

Matrix
randomWeight(uint32_t out_dim, uint32_t in_dim, Rng &rng)
{
    Matrix w(out_dim, in_dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
    rng.fillGaussian(w.raw(), w.size(), scale);
    return w;
}

} // namespace

DecoderLayer::DecoderLayer(const ModelConfig &config, uint32_t index,
                           uint64_t seed)
    : cfg(config), layerIndex(index)
{
    Rng rng(seed, cfg.name + "/layer" + std::to_string(index));
    const uint32_t d = cfg.dModel;
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    wq = randomWeight(d, d, rng);
    wk = randomWeight(kv_dim, d, rng);
    wv = randomWeight(kv_dim, d, rng);
    wo = randomWeight(d, d, rng);
    w1 = randomWeight(cfg.ffnDim, d, rng);
    w3 = randomWeight(cfg.ffnDim, d, rng);
    w2 = randomWeight(d, cfg.ffnDim, rng);
    attnNorm.assign(d, 1.0f);
    ffnNorm.assign(d, 1.0f);
    // Mildly varied norm gains so layers are not identical maps.
    for (uint32_t i = 0; i < d; ++i) {
        attnNorm[i] += 0.05f * static_cast<float>(rng.gaussian());
        ffnNorm[i] += 0.05f * static_cast<float>(rng.gaussian());
    }
}

LayerSelection
DecoderLayer::forward(Matrix &x, KVCache &cache, SelectionPolicy *policy,
                      TokenStage stage, uint32_t base_pos) const
{
    const uint32_t block_len = x.rows();
    const uint32_t d = cfg.dModel;
    const uint32_t head_dim = cfg.headDim();
    const uint32_t past_len = base_pos;

    // Attention sub-block.
    Matrix h = x;
    for (uint32_t t = 0; t < block_len; ++t)
        rmsNorm(h.row(t), attnNorm.data(), d);

    Matrix q, k, v;
    matmulTransposed(h, wq, q);
    matmulTransposed(h, wk, k);
    matmulTransposed(h, wv, v);

    for (uint32_t t = 0; t < block_len; ++t) {
        const uint32_t pos = base_pos + t;
        for (uint32_t hh = 0; hh < cfg.nHeads; ++hh)
            applyRope(q.row(t) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
        for (uint32_t hh = 0; hh < cfg.nKvHeads; ++hh)
            applyRope(k.row(t) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
    }

    cache.appendLayer(layerIndex, k, v);
    LayerSelection sel = LayerSelection::full(cfg.nKvHeads);
    if (policy) {
        policy->onBlockAppended(layerIndex, cache, past_len, block_len,
                                stage);
        sel = policy->select(layerIndex, q, cache, past_len, stage);
    }

    Matrix attn_out;
    attentionForward(cfg, q, cache.layer(layerIndex), past_len, &sel,
                     attn_out);

    Matrix proj;
    matmulTransposed(attn_out, wo, proj);
    for (uint32_t t = 0; t < block_len; ++t)
        addInPlace(x.row(t), proj.row(t), d);

    // FFN sub-block.
    Matrix h2 = x;
    for (uint32_t t = 0; t < block_len; ++t)
        rmsNorm(h2.row(t), ffnNorm.data(), d);
    Matrix gate, up, down;
    matmulTransposed(h2, w1, gate);
    matmulTransposed(h2, w3, up);
    for (uint32_t t = 0; t < block_len; ++t) {
        silu(gate.row(t), cfg.ffnDim);
        hadamard(gate.row(t), up.row(t), cfg.ffnDim);
    }
    matmulTransposed(gate, w2, down);
    for (uint32_t t = 0; t < block_len; ++t)
        addInPlace(x.row(t), down.row(t), d);

    return sel;
}

} // namespace vrex
