/**
 * @file
 * Fig. 18 reproduction: roofline analysis of the frame-processing
 * stage at 40K cache, batch 4 on the edge platforms.
 *
 * Paper anchors: operational intensity ~15.2 Op/B; AGX+FlexGen
 * achieves only 6.6% of peak (PCIe bottleneck), AGX+ReKV ~15%, and
 * V-Rex8 reaches 71.5% — a 10.8x throughput improvement.
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/roofline.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    struct Entry
    {
        std::string label;
        AcceleratorConfig hw;
        MethodModel method;
    };
    std::vector<Entry> entries = {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+ReKV", AcceleratorConfig::agxOrin(),
         MethodModel::rekv()},
        {"V-Rex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };

    rep.beginPanel("roofline",
                   "Fig. 18: roofline at 40K cache, batch 4 (edge)");
    double flexgen_tf = 0.0, vrex_tf = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
        RunConfig rc;
        rc.hw = entries[i].hw;
        rc.method = entries[i].method;
        rc.cacheTokens = 40000;
        rc.batch = 4;
        PhaseResult r = SystemModel(rc).framePhase();
        RooflinePoint p = rooflineFor(r, rc.hw);
        if (i == 0)
            flexgen_tf = p.achievedTflops;
        if (i + 1 == entries.size())
            vrex_tf = p.achievedTflops;
        const std::string &row = entries[i].label;
        rep.add(row, "oi", p.opIntensity, "Op/B", 1);
        rep.add(row, "achieved", p.achievedTflops, "TF", 2);
        rep.add(row, "roof", p.roofTflops, "TF", 2);
        rep.add(row, "of_roof", 100.0 * p.fractionOfRoof(), "%", 1);
    }

    rep.beginPanel("summary", "Fig. 18: V-Rex8 over AGX+FlexGen");
    rep.add("V-Rex8 vs FlexGen", "throughput_gain",
            vrex_tf / flexgen_tf, "x", 1);
    rep.note("paper: OI 15.2; FlexGen 6.6%, ReKV ~15%, V-Rex 71.5% "
             "of theoretical peak; 10.8x throughput");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig18", argc, argv, run);
}
