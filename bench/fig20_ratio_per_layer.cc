/**
 * @file
 * Fig. 20 reproduction: retrieval ratio per transformer layer and
 * per attention head under ReSV vs. the uniform ratio of the fixed
 * top-k baselines (InfiniGenP 50%, ReKV ~58%).
 *
 * Paper anchors: ReSV's per-layer ratios range from ~4.2% on
 * low-need layers to ~44% on critical ones, averaging 3.0x fewer
 * retrieved tokens than ReKV.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "common/stats.hh"
#include "serve/engine.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    serve::EngineConfig engine_cfg;
    engine_cfg.model = ModelConfig::smallVideo();
    engine_cfg.policy = serve::PolicySpec::resv();
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(11));
    SessionRunResult r = engine.result(id);
    engine.closeSession(id);

    const double rekv_ratio = 0.584;       // Table II average.
    const double infinigenp_ratio = 0.508;

    rep.beginPanel("per_layer",
                   "Fig. 20: retrieval ratio per layer (ReSV, mean "
                   "over heads)");
    RunningStat overall;
    double lo = 1.0, hi = 0.0;
    for (size_t l = 0; l < r.layerHeadRatio.size(); ++l) {
        double mean_ratio = mean(std::vector<double>(
            r.layerHeadRatio[l].begin(), r.layerHeadRatio[l].end()));
        overall.add(mean_ratio);
        lo = std::min(lo, mean_ratio);
        hi = std::max(hi, mean_ratio);
        std::string row = "layer" + std::to_string(l);
        rep.add(row, "resv", 100.0 * mean_ratio, "%", 1);
        rep.add(row, "infinigenp", 100.0 * infinigenp_ratio, "%", 1);
        rep.add(row, "rekv", 100.0 * rekv_ratio, "%", 1);
    }

    rep.beginPanel("spread", "Fig. 20: layer-ratio spread vs ReKV");
    rep.add("resv", "min_ratio", 100.0 * lo, "%", 1);
    rep.add("resv", "max_ratio", 100.0 * hi, "%", 1);
    rep.add("resv", "avg_ratio", 100.0 * overall.mean(), "%", 1);
    rep.add("resv", "vs_rekv", rekv_ratio / overall.mean(), "x", 1);
    rep.note("paper: span 4.2% .. 44.0%, 3.0x fewer tokens than "
             "ReKV");

    rep.beginPanel("per_head_l3",
                   "Fig. 20: retrieval ratio per head (layer 3)");
    if (r.layerHeadRatio.size() > 3) {
        for (size_t h = 0; h < r.layerHeadRatio[3].size(); ++h)
            rep.add("head" + std::to_string(h), "resv",
                    100.0 * r.layerHeadRatio[3][h], "%", 1);
    }
    rep.note("the spread across layers/heads is exactly what "
             "fixed top-k cannot adapt to (paper SIII-C)");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig20", argc, argv, run);
}
