#include "llm/config.hh"

namespace vrex
{

uint64_t
ModelConfig::paramCount() const
{
    uint64_t d = dModel;
    uint64_t kvDim = uint64_t(nKvHeads) * headDim();
    uint64_t perLayer =
        d * d +            // wq
        d * kvDim * 2 +    // wk, wv
        d * d +            // wo
        3 * d * ffnDim +   // w1 (gate), w3 (up), w2 (down)
        2 * d;             // two RMSNorm gains
    return perLayer * nLayers + uint64_t(vocabSize) * d + d;
}

double
ModelConfig::denseFlops(uint64_t tokens) const
{
    return 2.0 * static_cast<double>(paramCount()) *
        static_cast<double>(tokens);
}

double
ModelConfig::attentionFlops(uint64_t qTokens, uint64_t kvTokens) const
{
    // Q*K^T and P*V per head, per layer: 2 * 2 * headDim MACs.
    double perLayer = 2.0 * 2.0 * static_cast<double>(qTokens) *
        static_cast<double>(kvTokens) * nHeads * headDim();
    return perLayer * nLayers;
}

ModelConfig
ModelConfig::llama3_8b()
{
    ModelConfig c;
    c.name = "llama3-8b";
    c.nLayers = 32;
    c.dModel = 4096;
    c.nHeads = 32;
    c.nKvHeads = 8;
    c.ffnDim = 14336;
    c.vocabSize = 128256;
    c.ropeTheta = 500000.0f;
    return c;
}

ModelConfig
ModelConfig::tiny()
{
    ModelConfig c;
    c.name = "tiny";
    c.nLayers = 4;
    c.dModel = 128;
    c.nHeads = 8;
    c.nKvHeads = 4;
    c.ffnDim = 256;
    c.vocabSize = 256;
    return c;
}

ModelConfig
ModelConfig::smallVideo()
{
    ModelConfig c;
    c.name = "small-video";
    c.nLayers = 8;
    c.dModel = 256;
    c.nHeads = 8;
    c.nKvHeads = 4;
    c.ffnDim = 512;
    c.vocabSize = 512;
    return c;
}

} // namespace vrex
