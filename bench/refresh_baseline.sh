#!/usr/bin/env bash
# Refresh bench/baseline.json from a full bench run.
#
# Run this after an intentional change to the models or to the bench
# metric schema, review the resulting diff (every number that moved is
# a figure that moved), and commit the new baseline together with the
# change that moved it.
#
# usage: bench/refresh_baseline.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build}

# Every figure/table harness. micro_core is excluded: its numbers are
# host wall-clock timings, gated separately by bench/perf_baseline.json
# (see bench/refresh_perf_baseline.sh).
BENCHES="fig04_motivation fig07_similarity fig13_edge fig13_server
         fig14_e2e_breakdown fig15_oaken fig16_ablation_hw
         fig17_bandwidth fig18_roofline fig19_resv_ablation
         fig20_ratio_per_layer kvmu_layout table1_hw_specs
         table2_accuracy table3_area_power"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for b in $BENCHES; do
    echo "== $b"
    "$BUILD/bench/$b" --quiet --json "$TMP/BENCH_$b.json"
done

# Analytic timing-model benches hold 5%; the functional-model benches
# (clustering / fidelity proxies) can shift a few percent across
# compilers when FP rounding flips a threshold decision, so they get
# a looser band — tightened from 20% to 10% as the pipeline
# stabilized (PR 5) and from 10% to 8% with the workload zoo (PR 9);
# keep shrinking it as figures settle.
"$BUILD/bench/drift_check" --write-baseline bench/baseline.json \
    --rel-tol 0.05 --abs-tol 1e-6 \
    --tol fig07=0.08 --tol fig19=0.08 --tol fig20=0.08 \
    --tol kvmu_layout=0.08 --tol table2=0.08 \
    "$TMP"/BENCH_*.json

# The open-loop workload zoo gates against its own baseline: every
# metric is a logical counter or virtual-clock derivative, so the
# whole bench holds the tight functional band.
echo "== fig_loadzoo"
"$BUILD/bench/fig_loadzoo" --quiet --json "$TMP/BENCH_fig_loadzoo.json"
"$BUILD/bench/drift_check" --write-baseline bench/loadzoo_baseline.json \
    --rel-tol 0.08 --abs-tol 1e-6 \
    "$TMP/BENCH_fig_loadzoo.json"
