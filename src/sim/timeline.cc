#include "sim/timeline.hh"

#include <algorithm>

namespace vrex
{

std::vector<TimelineSegment>
layerTimeline(const SystemModel &sm, uint32_t n_layers)
{
    const RunConfig &cfg = sm.config();
    PhaseResult frame = sm.framePhase();
    const uint32_t layers = cfg.model.nLayers;

    // Per-layer component durations in us.
    const double dense_us = frame.denseMs * 1e3 / layers;
    const double qkv_us = dense_us * 0.30;   // QKV gen share.
    const double ffn_us = dense_us * 0.70;   // Proj + FFN share.
    const double attn_us =
        std::max(frame.attentionMs * 1e3 / layers, 1.0);
    const double layer_us = frame.totalMs * 1e3 / layers;
    const double dre_us = frame.dreMs * 1e3 / layers;

    const double weight_bw = cfg.hw.memBandwidthGBs * cfg.hw.memEff;
    const double attn_bw = weight_bw * 0.45;
    const double pred_bw =
        std::min(600.0, cfg.hw.memBandwidthGBs * 0.3);
    const double pcie_bw = cfg.hw.pcieBandwidthGBs;

    std::vector<TimelineSegment> segs;
    double t = 0.0;
    for (uint32_t l = 0; l < n_layers; ++l) {
        const double base = t;
        segs.push_back({"LLM", "QKV Gen", base, base + qkv_us,
                        weight_bw});
        segs.push_back({"LLM", "Attention", base + qkv_us,
                        base + qkv_us + attn_us, attn_bw});
        // KV prediction for the next layer overlaps attention.
        if (dre_us > 0.0) {
            segs.push_back({"KV Prediction", "HCU+WTU",
                            base + qkv_us,
                            base + qkv_us + std::max(dre_us, 0.5),
                            pred_bw});
        }
        segs.push_back({"LLM", "FFN", base + qkv_us + attn_us,
                        base + qkv_us + attn_us + ffn_us, weight_bw});
        // Retrieval runs across (nearly) the whole layer at PCIe rate.
        if (frame.fetchMs > 0.0) {
            segs.push_back({"Retrieval", "KV Fetch", base,
                            base + layer_us, pcie_bw});
        }
        t = base + std::max(layer_us, qkv_us + attn_us + ffn_us);
    }
    return segs;
}

double
timelinePeakBandwidth(const std::vector<TimelineSegment> &segs)
{
    // Sample at segment boundaries.
    double peak = 0.0;
    for (const auto &probe : segs) {
        for (double at : {probe.startUs + 1e-6,
                          (probe.startUs + probe.endUs) * 0.5}) {
            double bw = 0.0;
            for (const auto &s : segs)
                if (s.startUs <= at && at < s.endUs)
                    bw += s.bandwidthGBs;
            peak = std::max(peak, bw);
        }
    }
    return peak;
}

} // namespace vrex
