#include "serve/scheduler.hh"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace vrex::serve
{

Scheduler::Scheduler(ThreadPool &pool_ref, SchedulerConfig config,
                     Executor executor_fn)
    : pool(pool_ref), cfg(config), executor(std::move(executor_fn))
{
    VREX_ASSERT(executor != nullptr, "scheduler needs an executor");
    agg.config = cfg;
}

Scheduler::Queue *
Scheduler::find(Key key)
{
    auto it = queues.find(key);
    return it == queues.end() ? nullptr : &it->second;
}

const Scheduler::Queue *
Scheduler::find(Key key) const
{
    auto it = queues.find(key);
    return it == queues.end() ? nullptr : &it->second;
}

bool
Scheduler::idleLocked(const Queue &q) const
{
    return !q.running && !q.pinned && q.pending.empty();
}

bool
Scheduler::tryAdmit(Key key)
{
    std::lock_guard<std::mutex> lock(mu);
    if (cfg.maxLiveSessions > 0 &&
        queues.size() >= cfg.maxLiveSessions) {
        ++agg.rejectedAdmissions;
        return false;
    }
    VREX_ASSERT(queues.find(key) == queues.end(),
                "scheduler key admitted twice");
    queues.emplace(key, Queue{});
    ++agg.admitted;
    agg.maxLiveObserved = std::max(
        agg.maxLiveObserved, static_cast<uint32_t>(queues.size()));
    return true;
}

Scheduler::Queue *
Scheduler::waitIdleLocked(std::unique_lock<std::mutex> &lock, Key key)
{
    cv.wait(lock, [this, key] {
        Queue *q = find(key);
        return !q || idleLocked(*q);
    });
    return find(key);
}

bool
Scheduler::remove(Key key)
{
    std::unique_lock<std::mutex> lock(mu);
    if (!waitIdleLocked(lock, key))
        return false;
    queues.erase(key);
    // Wake peers blocked on this key so they observe the removal.
    cv.notify_all();
    return true;
}

EnqueueResult
Scheduler::tryEnqueue(Key key,
                      const std::vector<SessionEvent> &events)
{
    // Events are *counted* in unit work items but stored compressed
    // (one entry per event): a Generate{1e6} costs one queue slot of
    // memory yet weighs 1e6 against the bound, so backpressure kicks
    // in before any expansion-sized allocation could happen.
    EnqueueResult r;
    uint64_t units = 0;
    for (const SessionEvent &event : events)
        units += event.unitCount();
    r.items = static_cast<uint32_t>(units);

    std::lock_guard<std::mutex> lock(mu);
    Queue *q = find(key);
    if (!q)
        throw std::out_of_range(
            "vrex::serve::Scheduler: unknown or closed session id " +
            std::to_string(key));
    if (units == 0) {
        r.depth = q->stats.depth;
        return r; // Nothing to do (empty or all Generate{0}).
    }

    const uint32_t depth = q->stats.depth;
    if (cfg.maxQueuedPerSession > 0 &&
        depth + units > cfg.maxQueuedPerSession) {
        q->stats.itemsRejected += units;
        agg.itemsRejected += units;
        r.status = EnqueueResult::Status::RejectedQueueFull;
        r.depth = depth;
        return r;
    }

    for (const SessionEvent &event : events)
        if (event.unitCount() > 0)
            q->pending.push_back(event);
    r.depth = static_cast<uint32_t>(depth + units);
    q->stats.itemsEnqueued += units;
    agg.itemsEnqueued += units;
    q->stats.depth = r.depth;
    q->stats.maxDepth = std::max(q->stats.maxDepth, r.depth);
    agg.maxQueueDepth = std::max(agg.maxQueueDepth, r.depth);

    if (!q->running && !q->pinned && !q->ready)
        makeReadyLocked(key, *q);
    return r;
}

void
Scheduler::makeReadyLocked(Key key, Queue &q)
{
    q.ready = true;
    q.readyMark = dispatches;
    q.readyAt = Clock::now();
    readyKeys.push_back(key);
    if (paused)
        ++unsubmitted;
    else
        submitSliceJob();
}

void
Scheduler::submitSliceJob()
{
    pool.submit([this] { runSlice(); });
}

void
Scheduler::runSlice()
{
    std::vector<SessionEvent> batch;
    Key key;
    Queue *q;
    {
        std::lock_guard<std::mutex> lock(mu);
        // One job per ready entry: the front key is always valid.
        VREX_ASSERT(!readyKeys.empty(), "slice job without ready key");
        key = readyKeys.front();
        readyKeys.pop_front();
        q = find(key);
        VREX_ASSERT(q && q->ready && !q->running && !q->pinned,
                    "ready key in inconsistent state");
        q->ready = false;
        q->running = true;

        const uint64_t waited = dispatches - q->readyMark;
        ++dispatches;
        q->stats.maxWaitSlices =
            std::max(q->stats.maxWaitSlices, waited);
        agg.maxWaitSlices = std::max(agg.maxWaitSlices, waited);
        const auto wait_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - q->readyAt)
                .count());
        q->stats.waitNs += wait_ns;
        agg.waitNs += wait_ns;
        q->stats.maxWaitNs = std::max(q->stats.maxWaitNs, wait_ns);
        agg.maxWaitNs = std::max(agg.maxWaitNs, wait_ns);

        // Take up to sliceEvents *units*, splitting a Generate run
        // at the slice boundary (Generate{n} == n single steps, so
        // the split is byte-identical).
        uint64_t budget = cfg.sliceEvents > 0 ? cfg.sliceEvents
                                              : q->stats.depth;
        while (budget > 0 && !q->pending.empty()) {
            SessionEvent &front = q->pending.front();
            const uint32_t units = front.unitCount();
            if (units > budget) {
                const auto take = static_cast<uint32_t>(budget);
                batch.push_back(
                    {SessionEvent::Type::Generate, take});
                front.tokens -= take;
                budget = 0;
            } else {
                batch.push_back(front);
                q->pending.pop_front();
                budget -= units;
            }
        }
        uint64_t batch_units = 0;
        for (const SessionEvent &event : batch)
            batch_units += event.unitCount();
        q->stats.depth -= static_cast<uint32_t>(batch_units);
        q->sliceUnits = batch_units;
    }

    // Exclusive access: `running` stays true until the locked block
    // below, so no other worker (or pin holder) touches the session.
    const Clock::time_point t0 = Clock::now();
    executor(key, batch);
    const auto service_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());

    {
        std::lock_guard<std::mutex> lock(mu);
        // `q` stays valid: remove() cannot erase a running queue.
        q->running = false;
        ++q->stats.slices;
        ++agg.slices;
        q->stats.itemsExecuted += q->sliceUnits;
        agg.itemsExecuted += q->sliceUnits;
        q->stats.serviceNs += service_ns;
        agg.serviceNs += service_ns;
        if (!q->pending.empty())
            makeReadyLocked(key, *q); // Rotate to the back: fairness.
        cv.notify_all();
    }
}

bool
Scheduler::wait(Key key)
{
    std::unique_lock<std::mutex> lock(mu);
    return waitIdleLocked(lock, key) != nullptr;
}

void
Scheduler::waitAll()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] {
        for (const auto &[key, q] : queues)
            if (!idleLocked(q))
                return false;
        return true;
    });
}

bool
Scheduler::pinWhenIdle(Key key)
{
    std::unique_lock<std::mutex> lock(mu);
    Queue *q = waitIdleLocked(lock, key);
    if (!q)
        return false;
    q->pinned = true;
    return true;
}

void
Scheduler::unpin(Key key)
{
    std::lock_guard<std::mutex> lock(mu);
    Queue *q = find(key);
    VREX_ASSERT(q && q->pinned, "unpin without a matching pin");
    q->pinned = false;
    // Events enqueued while pinned were not scheduled; catch up.
    if (!q->pending.empty() && !q->ready)
        makeReadyLocked(key, *q);
    cv.notify_all();
}

void
Scheduler::pause()
{
    std::lock_guard<std::mutex> lock(mu);
    paused = true;
}

void
Scheduler::resume()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!paused)
        return;
    paused = false;
    for (; unsubmitted > 0; --unsubmitted)
        submitSliceJob();
}

Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats out = agg;
    out.liveSessions = static_cast<uint32_t>(queues.size());
    return out;
}

QueueStats
Scheduler::queueStats(Key key) const
{
    std::lock_guard<std::mutex> lock(mu);
    const Queue *q = find(key);
    if (!q)
        throw std::out_of_range(
            "vrex::serve::Scheduler: unknown or closed session id " +
            std::to_string(key));
    return q->stats;
}

} // namespace vrex::serve
