/**
 * @file
 * Functional end-to-end streaming video LLM session: video latents ->
 * vision tower -> projector -> iterative prefill -> question prefill
 * -> generation, under any retrieval policy. Collects the selection
 * ratios that Table II and Fig. 20 report.
 *
 * The session is an *incremental* executor: begin() opens a stream,
 * the feedFrame()/feedQuestion()/generate() verbs advance it event by
 * event, and snapshot() aggregates the results so far. The one-shot
 * run() entry points are implemented on top of the verbs, so a run
 * driven incrementally (e.g. by vrex::serve::Engine) is byte-identical
 * to a scripted run. One StreamingSession executes one session at a
 * time and is not thread-safe; concurrency across sessions is the
 * serve layer's job.
 */

#ifndef VREX_PIPELINE_STREAMING_SESSION_HH
#define VREX_PIPELINE_STREAMING_SESSION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "llm/model.hh"
#include "video/vision_tower.hh"
#include "video/workload.hh"

namespace vrex
{

/** Aggregated results of one scripted session. */
struct SessionRunResult
{
    std::vector<uint32_t> generated;
    /** Full logits at every generation step (fidelity scoring). */
    std::vector<std::vector<float>> stepLogits;
    /** Mean selected-token ratio during frame processing. */
    double frameRatio = 1.0;
    /** Mean selected-token ratio during question/generation. */
    double textRatio = 1.0;
    /** Mean ratio per [layer][kvHead] (blocks with a past only). */
    std::vector<std::vector<double>> layerHeadRatio;
    uint32_t totalTokens = 0;
    uint32_t frames = 0;
};

/** Drives a Model + vision stack through a SessionScript. */
class StreamingSession
{
  public:
    /**
     * @param model_config The backbone geometry (functional sizes).
     * @param policy       Retrieval policy; nullptr = full attention.
     * @param seed         Master seed (weights + video + questions).
     */
    StreamingSession(const ModelConfig &model_config,
                     SelectionPolicy *policy, uint64_t seed);

    /**
     * Open a fresh stream: reset the model and the policy, build the
     * vision stack for @p video, and clear all accumulators. Must be
     * called before the incremental verbs.
     *
     * @param name          Stream name (FrameGenerator substream).
     * @param video         Video statistics of the stream.
     * @param script_seed   Per-script seed (mixed into video and
     *                      question randomness, as SessionScript::seed).
     * @param forced_tokens When non-empty, generation steps consume
     *                      these instead of the model's own argmax
     *                      (teacher forcing), across generate() calls.
     */
    void begin(const std::string &name, const VideoConfig &video,
               uint64_t script_seed,
               std::vector<uint32_t> forced_tokens = {});

    /** Stream one video frame through vision -> projector -> prefill. */
    void feedFrame();

    /** Prefill one question of @p tokens synthetic text tokens. */
    void feedQuestion(uint32_t tokens);

    /** Run @p tokens greedy generation steps (teacher-forced when
     *  begin() received forced tokens). */
    void generate(uint32_t tokens);

    /**
     * Run ONE fused generation step across N independent sessions
     * sharing one model geometry (the serve layer's cross-session
     * batched dispatch). Logits and the block forward are computed
     * in one fused pass (weight streams shared between sessions with
     * equal seeds); argmax, token/logits recording, teacher forcing
     * and accumulators advance per session.
     *
     * Contract: each session's state and results after this call are
     * byte-identical to that session running generate(1) alone — all
     * fused arithmetic is row-independent, so members cannot affect
     * each other's bytes. Sessions must be distinct, begun, and of
     * one geometry.
     */
    static void
    generateStepBatched(const std::vector<StreamingSession *> &sessions);

    /** Apply one scripted event via the verbs above. */
    void apply(const SessionEvent &event);

    /**
     * Split a scripted event into *unit work items* — the grain the
     * serve-layer scheduler interleaves across sessions:
     * Generate{n} becomes n Generate{1} steps (each generation step
     * only reads state the previous step committed, and teacher
     * forcing advances one forced token per step, so applying the
     * units in order is byte-identical to applying the original
     * event); Frame and Question are already unit-granular and pass
     * through; Generate{0} expands to nothing.
     */
    static std::vector<SessionEvent>
    unitEvents(const SessionEvent &event);

    /** Aggregate everything since begin() (the stream stays open). */
    SessionRunResult snapshot() const;

    /** Run a scripted session from an empty cache. */
    SessionRunResult run(const SessionScript &script);

    /**
     * Run with teacher forcing: generation steps consume
     * @p forced_tokens instead of the model's own argmax; the i-th
     * argmax is recorded in the result for agreement scoring.
     */
    SessionRunResult run(const SessionScript &script,
                         const std::vector<uint32_t> &forced_tokens);

    Model &model() { return llm; }
    const Model &model() const { return llm; }

    /** Version of the serialize() blob layout. */
    static constexpr uint32_t kBlobVersion = 1;

    /**
     * Serialize the complete session state into a versioned,
     * checksummed blob: stream position (video RNG, scene state),
     * KV cache + token metadata, executor position (forced tokens,
     * frame/question counters), retrieval-policy state, and the
     * snapshot accumulators.
     *
     * Weights are not serialized — they are deterministic from the
     * construction pair (model config, seed), which restore()
     * validates. The installed policy's *state* is included (via
     * SelectionPolicy::serializeState); the policy object itself is
     * identity the owner must recreate before restoring.
     *
     * Contract: restoring onto a freshly constructed equivalent
     * session yields a bit-identical continuation — every subsequent
     * verb and snapshot() matches a session that never serialized.
     * Re-serializing a restored session reproduces the original blob
     * byte for byte.
     */
    std::vector<uint8_t> serialize() const;

    /**
     * Counterpart of serialize(). Must be called on a session
     * constructed with the same (model config, policy spec, seed);
     * begin() is not required first. Throws serial::SerialError on
     * corrupted/truncated blobs, version mismatch, or identity
     * mismatch (seed, model geometry, policy presence).
     */
    void restore(const std::vector<uint8_t> &blob);

    /** Current KV working-set bytes (the hibernation currency). */
    uint64_t
    kvBytes(double bytes_per_elem = 2.0) const
    {
        return llm.cache().totalBytes(bytes_per_elem);
    }

  private:
    void accumulate(const BlockStats &stats);

    /** The per-stream vision stack, rebuilt by begin(). */
    struct Stream
    {
        FrameGenerator gen;
        VisionTower tower;
        MlpProjector projector;

        Stream(const VideoConfig &video, uint32_t vision_dim,
               uint32_t d_model, uint64_t stream_seed,
               uint64_t weight_seed, const std::string &name)
            : gen(video, stream_seed, name),
              tower(video.latentDim, vision_dim, weight_seed),
              projector(vision_dim, d_model, weight_seed)
        {
        }
    };

    uint64_t seed;
    Model llm;
    std::unique_ptr<Stream> stream;

    // Incremental run state (reset by begin()).
    std::string streamName;   //!< Stream identity, for serialize().
    VideoConfig streamVideo;  //!< Stream identity, for serialize().
    uint64_t scriptSeed = 0;
    std::vector<uint32_t> forced;
    uint32_t forcedPos = 0;
    int32_t frameId = 0;
    uint32_t questionNo = 0;

    // Accumulators feeding snapshot().
    std::vector<uint32_t> generatedTokens;
    std::vector<std::vector<float>> logitsPerStep;
    std::vector<std::vector<double>> ratioSums;
    uint32_t ratioBlocks = 0;
    uint32_t framesFed = 0;
    double frameSum = 0.0, textSum = 0.0;
    uint32_t frameN = 0, textN = 0;
};

} // namespace vrex

#endif // VREX_PIPELINE_STREAMING_SESSION_HH
