/**
 * @file
 * Parameterized sweeps of the LLM runtime across attention
 * geometries (MHA / GQA / MQA) and block sizes: the runtime must be
 * correct for any head grouping, and sparse selection must converge
 * to full attention as the selection approaches the full set.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "llm/attention.hh"
#include "llm/model.hh"
#include "retrieval/oaken.hh"
#include "testutil.hh"

using namespace vrex;

namespace
{

ModelConfig
makeConfig(uint32_t n_heads, uint32_t n_kv_heads, uint32_t head_dim)
{
    ModelConfig c;
    c.name = "sweep";
    c.nLayers = 2;
    c.nHeads = n_heads;
    c.nKvHeads = n_kv_heads;
    c.dModel = n_heads * head_dim;
    c.ffnDim = 2 * c.dModel;
    c.vocabSize = 64;
    return c;
}

} // namespace

class GqaGeometry
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint32_t>>
{
};

TEST_P(GqaGeometry, ModelRunsAndSelectsAll)
{
    auto [heads, kv_heads, head_dim] = GetParam();
    ModelConfig cfg = makeConfig(heads, kv_heads, head_dim);
    Model model(cfg, 42);
    Rng rng(1);
    Matrix frame(3, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    model.prefillFrame(frame, 0);
    model.prefillFrame(frame, 1);
    EXPECT_EQ(model.cache().tokenCount(), 6u);
    auto ids = model.generate(2);
    EXPECT_EQ(ids.size(), 2u);
    const BlockStats &stats = model.history()[1];
    EXPECT_EQ(stats.selectedPerHead[0].size(), kv_heads);
}

TEST_P(GqaGeometry, SparseFullSelectionMatchesDense)
{
    auto [heads, kv_heads, head_dim] = GetParam();
    ModelConfig cfg = makeConfig(heads, kv_heads, head_dim);
    KVCache kv(cfg);
    Rng rng(2);
    testutil::fillLayer(kv, cfg, 5, rng);

    Matrix q = testutil::randomMatrix(rng, 2, heads * head_dim);

    LayerSelection all_explicit;
    all_explicit.kvHeads.resize(kv_heads);
    for (auto &h : all_explicit.kvHeads) {
        h.selectAll = false;
        for (uint32_t t = 0; t < 3; ++t)
            h.indices.push_back(t);
    }
    Matrix dense, sparse;
    attentionForward(cfg, q, kv.layer(0), 3, nullptr, dense);
    attentionForward(cfg, q, kv.layer(0), 3, &all_explicit, sparse);
    for (uint32_t i = 0; i < dense.size(); ++i)
        EXPECT_NEAR(dense.raw()[i], sparse.raw()[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GqaGeometry,
    ::testing::Values(std::make_tuple(4u, 4u, 8u),    // MHA.
                      std::make_tuple(8u, 4u, 8u),    // GQA 2:1.
                      std::make_tuple(8u, 2u, 16u),   // GQA 4:1.
                      std::make_tuple(8u, 1u, 8u),    // MQA.
                      std::make_tuple(16u, 4u, 4u))); // GQA 4:1 wide.

class BlockSizes : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BlockSizes, SplitPrefillMatchesJointPrefill)
{
    // Iterative prefill invariant: feeding one block of 2N tokens or
    // two blocks of N tokens yields the same cache and final state.
    const uint32_t n = GetParam();
    ModelConfig cfg = ModelConfig::tiny();
    Rng rng(3);
    Matrix big(2 * n, cfg.dModel);
    rng.fillGaussian(big.raw(), big.size(), 1.0f);
    Matrix first(n, cfg.dModel), second(n, cfg.dModel);
    for (uint32_t t = 0; t < n; ++t) {
        std::copy_n(big.row(t), cfg.dModel, first.row(t));
        std::copy_n(big.row(n + t), cfg.dModel, second.row(t));
    }

    Model joint(cfg, 42), split(cfg, 42);
    joint.forwardBlock(big, 0, TokenStage::VideoFrame);
    split.forwardBlock(first, 0, TokenStage::VideoFrame);
    split.forwardBlock(second, 0, TokenStage::VideoFrame);

    ASSERT_EQ(joint.cache().tokenCount(), split.cache().tokenCount());
    const Matrix &jk = joint.cache().layer(cfg.nLayers - 1).keys;
    const Matrix &sk = split.cache().layer(cfg.nLayers - 1).keys;
    for (uint32_t i = 0; i < jk.size(); ++i)
        EXPECT_NEAR(jk.raw()[i], sk.raw()[i], 1e-3f);
    for (uint32_t d = 0; d < cfg.dModel; ++d)
        EXPECT_NEAR(joint.lastHidden()[d], split.lastHidden()[d],
                    1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizes,
                         ::testing::Values(1u, 2u, 4u, 8u));

class OakenGroups : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(OakenGroups, ErrorShrinksWithSmallerGroups)
{
    OakenConfig small_cfg, big_cfg;
    small_cfg.groupSize = GetParam();
    big_cfg.groupSize = GetParam() * 4;
    Rng rng(4);
    Matrix a(16, 128), b(16, 128);
    rng.fillGaussian(a.raw(), a.size(), 1.0f);
    std::copy_n(a.raw(), a.size(), b.raw());
    double err_small = oakenRoundTrip(a, small_cfg);
    double err_big = oakenRoundTrip(b, big_cfg);
    EXPECT_LE(err_small, err_big * 1.05);
    // And smaller groups cost more metadata.
    EXPECT_GT(small_cfg.bytesPerElem(), big_cfg.bytesPerElem());
}

INSTANTIATE_TEST_SUITE_P(Groups, OakenGroups,
                         ::testing::Values(8u, 16u, 32u));
