#include "sim/method_model.hh"

#include <algorithm>

namespace vrex
{

double
MethodModel::avgTxTokens(double tokens_per_frame) const
{
    switch (granularity) {
      case PredGranularity::None:
        // Whole-cache streaming: large sequential chunks.
        return 4096.0;
      case PredGranularity::Token:
        return 1.0;
      case PredGranularity::Frame:
        return tokens_per_frame;
      case PredGranularity::Cluster:
        // With the KVMU layout a cluster is contiguous; without it,
        // cluster members only have incidental adjacency.
        return clusterContiguous ? tokensPerCluster : 2.0;
    }
    return 1.0;
}

double
MethodModel::predElementsPerLayer(double s, uint32_t kv_heads,
                                  double tokens_per_frame) const
{
    switch (granularity) {
      case PredGranularity::None:
        return 0.0;
      case PredGranularity::Token:
        return s * kv_heads;
      case PredGranularity::Frame:
        return std::max(1.0, s / tokens_per_frame) * kv_heads;
      case PredGranularity::Cluster:
        return std::max(1.0, s / tokensPerCluster) * kv_heads;
    }
    return 0.0;
}

MethodModel
MethodModel::flexgen()
{
    MethodModel m;
    m.name = "FlexGen";
    m.offloads = true;
    m.selectsInPrefill = false;
    m.selectsInGeneration = false;
    m.granularity = PredGranularity::None;
    return m;
}

MethodModel
MethodModel::infinigen()
{
    MethodModel m;
    m.name = "InfiniGen";
    m.offloads = true;
    m.selectsInPrefill = false;       // Generation-stage only.
    m.selectsInGeneration = true;
    m.frameSelRatio = 1.0;            // Table II: 100% at prefill.
    m.genSelRatio = 0.068;            // Table II average.
    m.granularity = PredGranularity::Token;
    return m;
}

MethodModel
MethodModel::infinigenP()
{
    MethodModel m = infinigen();
    m.name = "InfiniGenP";
    m.selectsInPrefill = true;
    m.frameSelRatio = 0.508;          // Table II average.
    return m;
}

MethodModel
MethodModel::rekv()
{
    MethodModel m;
    m.name = "ReKV";
    m.offloads = true;
    m.selectsInPrefill = true;
    m.selectsInGeneration = true;
    m.frameSelRatio = 0.584;          // Table II average.
    m.genSelRatio = 0.312;
    m.granularity = PredGranularity::Frame;
    return m;
}

MethodModel
MethodModel::resvSoftware()
{
    MethodModel m;
    m.name = "AGX+ReSV";
    m.offloads = true;
    m.keepsRecentWindow = true;
    m.selectsInPrefill = true;
    m.selectsInGeneration = true;
    m.frameSelRatio = 0.327;          // Table II average.
    m.genSelRatio = 0.025;
    m.granularity = PredGranularity::Cluster;
    m.dreOffloadPred = false;         // Prediction on the GPU.
    m.clusterContiguous = false;      // No KVMU either.
    m.reuseFraction = 0.3;            // Retrieved-KV region reuse.
    return m;
}

MethodModel
MethodModel::resvKvpu()
{
    MethodModel m = resvSoftware();
    m.name = "V-Rex KVPU";
    m.dreOffloadPred = true;
    return m;
}

MethodModel
MethodModel::resvFull()
{
    MethodModel m = resvKvpu();
    m.name = "V-Rex";
    m.clusterContiguous = true;
    return m;
}

MethodModel
MethodModel::gpuNoOffload()
{
    MethodModel m;
    m.name = "GPU (resident KV)";
    m.offloads = false;
    m.granularity = PredGranularity::None;
    return m;
}

MethodModel
MethodModel::oaken()
{
    MethodModel m;
    m.name = "Oaken";
    m.offloads = false;
    m.granularity = PredGranularity::None;
    m.kvBytesPerElem = 0.5625;        // int4 + group scales.
    return m;
}

MethodModel
MethodModel::resvOaken()
{
    MethodModel m = resvFull();
    m.name = "V-Rex+int4";
    m.kvBytesPerElem = 0.5625;
    return m;
}

} // namespace vrex
