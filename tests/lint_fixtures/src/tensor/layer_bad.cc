// Fixture: tensor is below serve in the layer DAG; this include is
// an upward edge and must be flagged.
#include "serve/engine.hh"
#include "tensor/matrix.hh"

int fx = 0;
