#include "video/frame_generator.hh"

namespace vrex
{

FrameGenerator::FrameGenerator(const VideoConfig &config, uint64_t seed,
                               const std::string &stream_name)
    : cfg(config), rng(seed, stream_name)
{
    startScene();
}

void
FrameGenerator::startScene()
{
    sceneLatent.assign(cfg.latentDim, 0.0f);
    for (auto &v : sceneLatent)
        v = static_cast<float>(rng.gaussian());
    tokenOffsets.assign(cfg.tokensPerFrame,
                        std::vector<float>(cfg.latentDim, 0.0f));
    for (auto &offset : tokenOffsets)
        for (auto &v : offset)
            v = static_cast<float>(rng.gaussian(0.0,
                                                cfg.tokenIdentity));
    ++scenes;
}

Matrix
FrameGenerator::nextFrameLatents()
{
    if (frameCount > 0 && rng.bernoulli(cfg.sceneCutProb))
        startScene();

    // Drift the scene latent.
    for (auto &v : sceneLatent)
        v += static_cast<float>(rng.gaussian(0.0, cfg.driftRate));

    Matrix latents(cfg.tokensPerFrame, cfg.latentDim);
    for (uint32_t t = 0; t < cfg.tokensPerFrame; ++t) {
        float *row = latents.row(t);
        for (uint32_t d = 0; d < cfg.latentDim; ++d) {
            row[d] = sceneLatent[d] + tokenOffsets[t][d] +
                static_cast<float>(rng.gaussian(0.0, cfg.tokenNoise));
        }
    }
    ++frameCount;
    return latents;
}

void
FrameGenerator::serialize(serial::ByteWriter &w) const
{
    const RngState st = rng.state();
    for (int i = 0; i < 4; ++i)
        w.put<uint64_t>(st.s[i]);
    w.put<double>(st.spare);
    w.putBool(st.hasSpare);
    w.putVec(sceneLatent);
    w.put<uint64_t>(tokenOffsets.size());
    for (const auto &offset : tokenOffsets)
        w.putVec(offset);
    w.put<uint32_t>(frameCount);
    w.put<uint32_t>(scenes);
}

void
FrameGenerator::restore(serial::ByteReader &r)
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = r.get<uint64_t>();
    st.spare = r.get<double>();
    st.hasSpare = r.getBool();
    rng.setState(st);
    sceneLatent = r.getVec<float>();
    const uint64_t n = r.get<uint64_t>();
    tokenOffsets.clear();
    tokenOffsets.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        tokenOffsets.push_back(r.getVec<float>());
    frameCount = r.get<uint32_t>();
    scenes = r.get<uint32_t>();
}

} // namespace vrex
