/**
 * @file
 * Tests for the hardware timing/energy simulator: platform configs,
 * component models (PCIe, DRAM, SSD, DRE, energy), the system model's
 * overlap schedule, and the qualitative orderings the paper's
 * evaluation depends on.
 */

#include <gtest/gtest.h>

#include "sim/compute_model.hh"
#include "sim/dram_model.hh"
#include "sim/dre_model.hh"
#include "sim/energy_model.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/pcie_model.hh"
#include "sim/roofline.hh"
#include "sim/ssd_model.hh"
#include "sim/system_model.hh"
#include "sim/timeline.hh"

using namespace vrex;

TEST(HwConfig, TableOneValues)
{
    auto agx = AcceleratorConfig::agxOrin();
    auto a100 = AcceleratorConfig::a100();
    auto v8 = AcceleratorConfig::vrex8();
    auto v48 = AcceleratorConfig::vrex48();
    EXPECT_NEAR(agx.peakTflops, 54.0, 1e-9);
    EXPECT_NEAR(a100.peakTflops, 312.0, 1e-9);
    EXPECT_NEAR(v8.peakTflops, 53.3, 1e-9);
    EXPECT_NEAR(v48.peakTflops, 319.5, 1e-9);
    EXPECT_EQ(v8.nCores, 8u);
    EXPECT_EQ(v48.nCores, 48u);
    EXPECT_TRUE(v8.hasDre);
    EXPECT_FALSE(agx.hasDre);
    EXPECT_EQ(agx.offloadTarget, Tier::Storage);
    EXPECT_EQ(a100.offloadTarget, Tier::CpuMem);
    EXPECT_LT(v8.systemPowerW, agx.systemPowerW);
    EXPECT_LT(v48.systemPowerW, a100.systemPowerW);
}

TEST(Pcie, LargerTransactionsMoreEfficient)
{
    PcieModel pcie(4.0, 8.0);
    EXPECT_LT(pcie.efficiency(512.0), pcie.efficiency(128.0 * 1024));
    EXPECT_GT(pcie.efficiency(1 << 20), 0.9);
}

TEST(Pcie, TransferTimeComposition)
{
    PcieModel pcie(4.0, 8.0);
    // Pure wire time for one huge transaction.
    double t = pcie.transferSeconds(4e9, 1.0);
    EXPECT_NEAR(t, 1.0, 0.01);
    // Many small transactions pay overhead.
    double scattered = pcie.transferSeconds(4e6, 1e6);
    EXPECT_GT(scattered, pcie.transferSeconds(4e6, 10.0));
}

TEST(Dram, SequentialBeatsScattered)
{
    DramModel dram(DramConfig::lpddr5());
    EXPECT_GT(dram.efficiency(1 << 20), 0.8);
    EXPECT_LT(dram.efficiency(64), 0.5);
    EXPECT_LT(dram.streamSeconds(1e9, 1 << 20),
              dram.streamSeconds(1e9, 256));
}

TEST(Dram, ConfigPresets)
{
    EXPECT_GT(DramConfig::hbm2e().peakGBs,
              DramConfig::lpddr5().peakGBs);
    EXPECT_GT(DramConfig::lpddr5().peakGBs, DramConfig::ddr4().peakGBs);
}

TEST(Ssd, ThroughputAndRequestCost)
{
    SsdModel ssd(SsdConfig::bg6());
    EXPECT_EQ(ssd.readSeconds(0.0, 0.0), 0.0);
    // Sequential GB-scale read approaches aggregate bandwidth.
    double t = ssd.readSeconds(1e9, 256.0);
    EXPECT_GT(t, 1e9 / ssd.peakBandwidth() * 0.5);
    // More requests for the same bytes is slower.
    EXPECT_GT(ssd.readSeconds(1e8, 1e5), ssd.readSeconds(1e8, 10.0));
}

TEST(Dre, HiddenUnderCompute)
{
    auto hw = AcceleratorConfig::vrex8();
    DreModel dre(hw);
    // COIN-like point: 10 new tokens, 40K/32 clusters, 8 KV heads.
    DreTiming t = dre.layerTiming(10, 1250, 8, 1, 32);
    // Must be far below a per-layer compute time of ~3 ms.
    EXPECT_LT(t.total(), 1e-3);
    EXPECT_GT(t.total(), 0.0);
}

TEST(Dre, ZeroOnNonDreHardware)
{
    auto hw = AcceleratorConfig::agxOrin();
    DreModel dre(hw);
    EXPECT_EQ(dre.layerTiming(10, 1000, 8, 1, 32).total(), 0.0);
}

TEST(Dre, ScalesWithClusters)
{
    auto hw = AcceleratorConfig::vrex8();
    DreModel dre(hw);
    EXPECT_GT(dre.hcuSeconds(10, 2000, 8, 1, 32),
              dre.hcuSeconds(10, 500, 8, 1, 32));
    EXPECT_GT(dre.wtuSeconds(2000, 0.16, 8, 1),
              dre.wtuSeconds(500, 0.16, 8, 1));
}

TEST(EnergyModel, TableThreeBreakdown)
{
    VRexCoreSpec spec;
    EXPECT_NEAR(spec.totalAreaMm2(), 1.89, 0.02);
    EXPECT_NEAR(spec.totalPowerMw(), 2609.43, 1.0);
    // DRE is ~2% of area and ~2.2% of power.
    EXPECT_NEAR(spec.dreAreaFraction(), 0.02, 0.005);
    EXPECT_NEAR(spec.drePowerFraction(), 0.022, 0.005);
}

TEST(EnergyModel, ActivityIntegration)
{
    auto hw = AcceleratorConfig::vrex8();
    EnergyModel em(hw);
    auto e = em.energy(0.1, 0.2, 1e9, 0.05);
    EXPECT_GT(e.computeJ, 0.0);
    EXPECT_GT(e.dramJ, 0.0);
    EXPECT_GT(e.pcieJ, 0.0);
    EXPECT_GT(e.idleJ, 0.0);
    EXPECT_NEAR(e.totalJ(),
                e.computeJ + e.dramJ + e.pcieJ + e.idleJ, 1e-12);
    // Average power below the board budget.
    EXPECT_LT(em.averagePowerW(e, 0.2), hw.systemPowerW * 1.5);
}

TEST(MethodModel, PresetFlags)
{
    EXPECT_FALSE(MethodModel::flexgen().selectsInPrefill);
    EXPECT_FALSE(MethodModel::infinigen().selectsInPrefill);
    EXPECT_TRUE(MethodModel::infinigen().selectsInGeneration);
    EXPECT_TRUE(MethodModel::infinigenP().selectsInPrefill);
    EXPECT_TRUE(MethodModel::rekv().selectsInPrefill);
    EXPECT_TRUE(MethodModel::resvFull().clusterContiguous);
    EXPECT_TRUE(MethodModel::resvFull().dreOffloadPred);
    EXPECT_FALSE(MethodModel::resvSoftware().dreOffloadPred);
    EXPECT_FALSE(MethodModel::gpuNoOffload().offloads);
    EXPECT_LT(MethodModel::oaken().kvBytesPerElem, 1.0);
}

TEST(MethodModel, TxGranularity)
{
    EXPECT_GT(MethodModel::resvFull().avgTxTokens(10),
              MethodModel::resvKvpu().avgTxTokens(10));
    EXPECT_EQ(MethodModel::infinigenP().avgTxTokens(10), 1.0);
    EXPECT_EQ(MethodModel::rekv().avgTxTokens(10), 10.0);
}

TEST(MethodModel, PredictionElements)
{
    auto resv = MethodModel::resvFull();
    auto inf = MethodModel::infinigenP();
    // Clustering reduces prediction elements by ~tokensPerCluster.
    EXPECT_LT(resv.predElementsPerLayer(40000, 8, 10),
              inf.predElementsPerLayer(40000, 8, 10) / 16.0);
}

namespace
{

RunConfig
edgeRun(const MethodModel &m, uint32_t cache, uint32_t batch = 1)
{
    RunConfig rc;
    rc.hw = m.dreOffloadPred ? AcceleratorConfig::vrex8()
                             : AcceleratorConfig::agxOrin();
    rc.method = m;
    rc.cacheTokens = cache;
    rc.batch = batch;
    return rc;
}

} // namespace

TEST(SystemModel, LatencyGrowsWithCache)
{
    SystemModel s1(edgeRun(MethodModel::flexgen(), 1000));
    SystemModel s2(edgeRun(MethodModel::flexgen(), 40000));
    EXPECT_GT(s2.framePhase().totalMs, s1.framePhase().totalMs);
}

TEST(SystemModel, VRexBeatsFlexGenAtScale)
{
    SystemModel flex(edgeRun(MethodModel::flexgen(), 40000));
    SystemModel vrex(edgeRun(MethodModel::resvFull(), 40000));
    double speedup =
        flex.framePhase().totalMs / vrex.framePhase().totalMs;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 30.0);
}

TEST(SystemModel, VRexEdgeRealTime)
{
    // Paper: 3.9-8.3 FPS at batch 1 across 1K-40K.
    for (uint32_t cache : {1000u, 5000u, 10000u, 20000u, 40000u}) {
        SystemModel sm(edgeRun(MethodModel::resvFull(), cache));
        double fps = sm.frameFps();
        EXPECT_GT(fps, 2.0) << "cache " << cache;
        EXPECT_LT(fps, 20.0) << "cache " << cache;
    }
}

TEST(SystemModel, AblationOrdering)
{
    // Fig. 16: AGX+ReSV > V-Rex KVPU > V-Rex All in latency.
    const uint32_t cache = 40000;
    SystemModel sw(edgeRun(MethodModel::resvSoftware(), cache));
    SystemModel kvpu(edgeRun(MethodModel::resvKvpu(), cache));
    SystemModel all(edgeRun(MethodModel::resvFull(), cache));
    double t_sw = sw.framePhase().totalMs;
    double t_kvpu = kvpu.framePhase().totalMs;
    double t_all = all.framePhase().totalMs;
    EXPECT_GT(t_sw, t_kvpu);
    EXPECT_GT(t_kvpu, t_all);
}

TEST(SystemModel, PredictionHiddenOnDre)
{
    SystemModel vrex(edgeRun(MethodModel::resvFull(), 40000));
    PhaseResult r = vrex.framePhase();
    EXPECT_EQ(r.predictionMs, 0.0);
    EXPECT_GT(r.dreMs, 0.0);
    // DRE work is a tiny fraction of the total.
    EXPECT_LT(r.dreMs, 0.05 * r.totalMs);
}

TEST(SystemModel, OomForResidentKv)
{
    // Fig. 15: AGX (no offload) OOMs as the cache grows at batch 16.
    MethodModel gpu = MethodModel::gpuNoOffload();
    MethodModel oaken = MethodModel::oaken();
    EXPECT_FALSE(SystemModel(edgeRun(gpu, 1000, 16)).wouldOom());
    EXPECT_TRUE(SystemModel(edgeRun(gpu, 40000, 16)).wouldOom());
    // Oaken's 4-bit cache survives longer but eventually OOMs too.
    EXPECT_FALSE(SystemModel(edgeRun(oaken, 10000, 16)).wouldOom());
    EXPECT_TRUE(SystemModel(edgeRun(oaken, 160000, 16)).wouldOom());
    // V-Rex (offloading) never OOMs.
    EXPECT_FALSE(
        SystemModel(edgeRun(MethodModel::resvFull(), 160000, 16))
            .wouldOom());
}

TEST(SystemModel, ResvOakenStackingHelps)
{
    // Paper SVII: retrieval composes with quantization — the stacked
    // method is never slower (smaller fetched bytes) and still never
    // OOMs (it offloads).
    for (uint32_t cache : {10000u, 40000u, 80000u}) {
        SystemModel plain(edgeRun(MethodModel::resvFull(), cache, 8));
        SystemModel stacked(
            edgeRun(MethodModel::resvOaken(), cache, 8));
        EXPECT_FALSE(stacked.wouldOom());
        EXPECT_LE(stacked.framePhase().totalMs,
                  plain.framePhase().totalMs * 1.001)
            << "cache " << cache;
    }
}

TEST(SystemModel, DecodeFasterThanFrame)
{
    SystemModel sm(edgeRun(MethodModel::resvFull(), 20000));
    EXPECT_LT(sm.decodePhase().totalMs, sm.framePhase().totalMs);
}

TEST(SystemModel, SessionAccumulates)
{
    SystemModel sm(edgeRun(MethodModel::resvFull(), 10000));
    SessionResult s = sm.session(5, 25, 10);
    EXPECT_GT(s.visionMs, 0.0);
    EXPECT_GT(s.prefillMs, 0.0);
    EXPECT_GT(s.generationMs, 0.0);
    EXPECT_NEAR(s.totalMs(),
                s.visionMs + s.prefillMs + s.generationMs, 1e-9);
}

TEST(SystemModel, EnergyEfficiencyFavorsVRex)
{
    SystemModel flex(edgeRun(MethodModel::flexgen(), 40000));
    SystemModel vrex(edgeRun(MethodModel::resvFull(), 40000));
    EXPECT_GT(vrex.framePhase().gopsPerW(),
              flex.framePhase().gopsPerW());
}

TEST(Roofline, VRexClosestToPeak)
{
    // Fig. 18 ordering: FlexGen < ReKV < V-Rex fraction-of-peak.
    RunConfig flex = edgeRun(MethodModel::flexgen(), 40000, 4);
    RunConfig rekv = edgeRun(MethodModel::rekv(), 40000, 4);
    RunConfig vrex = edgeRun(MethodModel::resvFull(), 40000, 4);
    auto p_flex = rooflineFor(SystemModel(flex).framePhase(), flex.hw);
    auto p_rekv = rooflineFor(SystemModel(rekv).framePhase(), rekv.hw);
    auto p_vrex = rooflineFor(SystemModel(vrex).framePhase(), vrex.hw);
    EXPECT_LT(p_flex.fractionOfRoof(), p_rekv.fractionOfRoof());
    EXPECT_LT(p_rekv.fractionOfRoof(), p_vrex.fractionOfRoof());
    // Our byte accounting yields a higher OI (and thus roof) than the
    // paper's 15.2 Op/B, so the absolute fraction is lower than the
    // published 71.5%; the ordering and the >2x achieved-throughput
    // gap over FlexGen are the reproduced claims (see EXPERIMENTS.md).
    EXPECT_GT(p_vrex.fractionOfRoof(), 0.10);
    EXPECT_GT(p_vrex.achievedTflops, 2.0 * p_flex.achievedTflops);
    EXPECT_GT(p_flex.opIntensity, 1.0);
}

TEST(Timeline, SegmentsWellFormed)
{
    RunConfig rc;
    rc.hw = AcceleratorConfig::vrex48();
    rc.method = MethodModel::resvFull();
    rc.cacheTokens = 40000;
    SystemModel sm(rc);
    auto segs = layerTimeline(sm, 2);
    EXPECT_GT(segs.size(), 4u);
    for (const auto &s : segs) {
        EXPECT_LT(s.startUs, s.endUs);
        EXPECT_GE(s.bandwidthGBs, 0.0);
    }
    // Peak bandwidth below the platform maximum.
    EXPECT_LE(timelinePeakBandwidth(segs),
              rc.hw.memBandwidthGBs + rc.hw.pcieBandwidthGBs + 1.0);
}
