/**
 * @file
 * Fig. 13a reproduction: per-frame latency, TPOT, and energy
 * efficiency on the edge platform (AGX Orin vs. V-Rex8) across KV
 * cache lengths 1K-40K for all five methods, at batch 1 and batch 4.
 *
 * Paper anchors: V-Rex8 per-frame 121/123/198/200/254 ms (batch 1),
 * 3.9-8.3 FPS, 2.2-7.3x over AGX+FlexGen; TPOT 89-97 ms with
 * 1.9-15.1x speedups; energy efficiency 5.5-10.2x (frame, batch 1).
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

struct Entry
{
    std::string label;
    AcceleratorConfig hw;
    MethodModel method;
};

std::vector<Entry>
edgeEntries()
{
    return {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+InfiniGen", AcceleratorConfig::agxOrin(),
         MethodModel::infinigen()},
        {"AGX+InfiniGenP", AcceleratorConfig::agxOrin(),
         MethodModel::infinigenP()},
        {"AGX+ReKV", AcceleratorConfig::agxOrin(),
         MethodModel::rekv()},
        {"V-Rex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };
}

void
sweep(bench::Reporter &rep, const std::string &panel,
      const std::string &title, uint32_t batch, bool decode)
{
    rep.beginPanel(panel, title);
    auto entries = edgeEntries();
    std::vector<std::vector<double>> lat(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
        for (uint32_t cache : bench::cacheSweep()) {
            RunConfig rc;
            rc.hw = entries[e].hw;
            rc.method = entries[e].method;
            rc.cacheTokens = cache;
            rc.batch = batch;
            SystemModel sm(rc);
            PhaseResult r =
                decode ? sm.decodePhase() : sm.framePhase();
            lat[e].push_back(r.totalMs);
            rep.add(entries[e].label, bench::kLabel(cache), r.totalMs,
                    "ms", 0);
        }
    }
    auto sweepPoints = bench::cacheSweep();
    for (size_t i = 0; i < sweepPoints.size(); ++i) {
        rep.add("V-Rex speedup", bench::kLabel(sweepPoints[i]),
                lat[0][i] / lat.back()[i], "x", 1);
        if (!decode)
            rep.add("V-Rex FPS", bench::kLabel(sweepPoints[i]),
                    batch * 1000.0 / lat.back()[i], "fps", 1);
    }
}

void
energySweep(bench::Reporter &rep, const std::string &panel,
            const std::string &title, uint32_t batch, bool decode)
{
    rep.beginPanel(panel, title);
    auto entries = edgeEntries();
    std::vector<std::vector<double>> eff(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
        for (uint32_t cache : bench::cacheSweep()) {
            RunConfig rc;
            rc.hw = entries[e].hw;
            rc.method = entries[e].method;
            rc.cacheTokens = cache;
            rc.batch = batch;
            SystemModel sm(rc);
            PhaseResult r =
                decode ? sm.decodePhase() : sm.framePhase();
            eff[e].push_back(r.gopsPerW());
            rep.add(entries[e].label, bench::kLabel(cache),
                    r.gopsPerW(), "GOPS/W", 1);
        }
    }
    auto sweepPoints = bench::cacheSweep();
    for (size_t i = 0; i < sweepPoints.size(); ++i)
        rep.add("V-Rex gain", bench::kLabel(sweepPoints[i]),
                eff.back()[i] / eff[0][i], "x", 1);
}

void
run(bench::Reporter &rep)
{
    sweep(rep, "frame_b1",
          "Fig. 13a: per-frame latency, batch 1 (edge)", 1, false);
    sweep(rep, "tpot_b1", "Fig. 13a: TPOT latency, batch 1 (edge)", 1,
          true);
    sweep(rep, "frame_b4",
          "Fig. 13a: per-frame latency, batch 4 (edge)", 4, false);
    energySweep(rep, "energy_frame_b1",
                "Fig. 13a: energy efficiency GOPS/W, frame batch 1", 1,
                false);
    energySweep(rep, "energy_text_b1",
                "Fig. 13a: energy efficiency GOPS/W, text batch 1", 1,
                true);
    energySweep(rep, "energy_frame_b4",
                "Fig. 13a: energy efficiency GOPS/W, frame batch 4", 4,
                false);
    rep.note("paper anchors: V-Rex8 frame 121-254 ms (3.9-8.3 FPS), "
             "speedup 2.2-7.3x (b1) / 2.1-13.8x (b4); TPOT 89-97 ms "
             "1.9-15.1x; energy 5.5-10.2x (b1), 3.1-12.8x (b4), "
             "4.3-18.5x (text)");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig13_edge", argc, argv, run);
}
