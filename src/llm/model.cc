#include "llm/model.hh"

#include <algorithm>

#include "common/rng.hh"
#include "tensor/ops.hh"

namespace vrex
{

double
BlockStats::meanRatio() const
{
    if (layerRatios.empty())
        return 1.0;
    double s = 0.0;
    for (double r : layerRatios)
        s += r;
    return s / static_cast<double>(layerRatios.size());
}

Model::Model(const ModelConfig &config, uint64_t seed)
    : cfg(config), weightSeed(seed), kv(config)
{
    layers.reserve(cfg.nLayers);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        layers.emplace_back(cfg, l, seed);
    Rng rng(seed, cfg.name + "/embedding");
    embedding = Matrix(cfg.vocabSize, cfg.dModel);
    rng.fillGaussian(embedding.raw(), embedding.size(), 1.0f);
    finalNorm.assign(cfg.dModel, 1.0f);
    lastHid.assign(cfg.dModel, 0.0f);
}

Matrix
Model::embedTokens(const std::vector<uint32_t> &ids) const
{
    Matrix x(static_cast<uint32_t>(ids.size()), cfg.dModel);
    for (uint32_t t = 0; t < ids.size(); ++t) {
        VREX_ASSERT(ids[t] < cfg.vocabSize, "token id out of range");
        std::copy_n(embedding.row(ids[t]), cfg.dModel, x.row(t));
    }
    return x;
}

BlockStats
Model::forwardBlock(Matrix x, int32_t frame_id, TokenStage stage)
{
    VREX_ASSERT(x.cols() == cfg.dModel, "bad block width");
    const uint32_t base = kv.tokenCount();
    const uint32_t block_len = x.rows();
    kv.beginTokens(block_len, frame_id, stage);

    BlockStats stats;
    stats.stage = stage;
    stats.blockLen = block_len;
    stats.pastLen = base;
    stats.layerRatios.reserve(cfg.nLayers);
    stats.selectedPerHead.reserve(cfg.nLayers);

    for (const auto &layer : layers) {
        LayerSelection sel =
            layer.forward(x, kv, selPolicy, stage, base);
        stats.layerRatios.push_back(sel.selectedRatio(base));
        std::vector<uint32_t> per_head;
        per_head.reserve(sel.kvHeads.size());
        for (const auto &h : sel.kvHeads)
            per_head.push_back(h.selectedCount(base));
        stats.selectedPerHead.push_back(std::move(per_head));
    }

    // Final norm of the last row becomes the decoding state.
    lastHid.assign(x.row(block_len - 1),
                   x.row(block_len - 1) + cfg.dModel);
    rmsNorm(lastHid.data(), finalNorm.data(), cfg.dModel);

    blockHistory.push_back(stats);
    return blockHistory.back();
}

std::vector<BlockStats>
Model::forwardBlockBatched(const std::vector<Model *> &models,
                          Matrix x, int32_t frame_id, TokenStage stage)
{
    const uint32_t n = static_cast<uint32_t>(models.size());
    VREX_ASSERT(n > 0, "batched forward needs models");
    const ModelConfig &cfg = models[0]->cfg;
    VREX_ASSERT(x.rows() == n && x.cols() == cfg.dModel,
                "batched forward row/model mismatch");
    for (const Model *m : models)
        VREX_ASSERT(m->cfg.nLayers == cfg.nLayers &&
                        m->cfg.dModel == cfg.dModel &&
                        m->cfg.nHeads == cfg.nHeads &&
                        m->cfg.nKvHeads == cfg.nKvHeads &&
                        m->cfg.ffnDim == cfg.ffnDim &&
                        m->cfg.vocabSize == cfg.vocabSize,
                    "batched forward needs one geometry");

    std::vector<BlockStats> stats(n);
    std::vector<DecoderLayer::BatchItem> items(n);
    for (uint32_t i = 0; i < n; ++i) {
        Model &m = *models[i];
        const uint32_t base = m.kv.tokenCount();
        m.kv.beginTokens(1, frame_id, stage);
        items[i].cache = &m.kv;
        items[i].policy = m.selPolicy;
        items[i].basePos = base;
        stats[i].stage = stage;
        stats[i].blockLen = 1;
        stats[i].pastLen = base;
        stats[i].layerRatios.reserve(cfg.nLayers);
        stats[i].selectedPerHead.reserve(cfg.nLayers);
    }

    std::vector<const DecoderLayer *> layer_ptrs(n);
    for (uint32_t l = 0; l < cfg.nLayers; ++l) {
        for (uint32_t i = 0; i < n; ++i)
            layer_ptrs[i] = &models[i]->layers[l];
        std::vector<LayerSelection> sels =
            DecoderLayer::forwardBatched(layer_ptrs, x, items, stage);
        for (uint32_t i = 0; i < n; ++i) {
            const LayerSelection &sel = sels[i];
            const uint32_t base = items[i].basePos;
            stats[i].layerRatios.push_back(sel.selectedRatio(base));
            std::vector<uint32_t> per_head;
            per_head.reserve(sel.kvHeads.size());
            for (const auto &h : sel.kvHeads)
                per_head.push_back(h.selectedCount(base));
            stats[i].selectedPerHead.push_back(std::move(per_head));
        }
    }

    // Final norm of each model's row becomes its decoding state.
    for (uint32_t i = 0; i < n; ++i) {
        Model &m = *models[i];
        m.lastHid.assign(x.row(i), x.row(i) + cfg.dModel);
        rmsNorm(m.lastHid.data(), m.finalNorm.data(), cfg.dModel);
        m.blockHistory.push_back(stats[i]);
    }
    return stats;
}

Matrix
Model::lastLogitsBatched(const std::vector<Model *> &models)
{
    const uint32_t n = static_cast<uint32_t>(models.size());
    VREX_ASSERT(n > 0, "batched logits need models");
    const ModelConfig &cfg = models[0]->cfg;

    Matrix hid(n, cfg.dModel);
    std::vector<RowGroup> groups;
    for (uint32_t i = 0; i < n; ++i) {
        const Model &m = *models[i];
        VREX_ASSERT(m.cfg.dModel == cfg.dModel &&
                        m.cfg.vocabSize == cfg.vocabSize,
                    "batched logits need one geometry");
        std::copy_n(m.lastHid.data(), cfg.dModel, hid.row(i));
        if (groups.empty() ||
            models[groups.back().rowBegin]->weightSeed != m.weightSeed)
            groups.push_back({i, i + 1, &m.embedding});
        else
            groups.back().rowEnd = i + 1;
    }

    // logits = lastHid · embedding^T, fused so one streamed
    // embedding row serves every model of a seed group. Each element
    // is the dot() lastLogits() computes.
    Matrix logits;
    matmulTransposedGrouped(hid, groups, logits);
    return logits;
}

BlockStats
Model::prefillFrame(const Matrix &frame_embeds, int32_t frame_id)
{
    return forwardBlock(frame_embeds, frame_id, TokenStage::VideoFrame);
}

BlockStats
Model::prefillText(const std::vector<uint32_t> &ids)
{
    return forwardBlock(embedTokens(ids), -1, TokenStage::QuestionText);
}

std::vector<float>
Model::lastLogits() const
{
    std::vector<float> logits(cfg.vocabSize, 0.0f);
    for (uint32_t v = 0; v < cfg.vocabSize; ++v)
        logits[v] = dot(lastHid.data(), embedding.row(v), cfg.dModel);
    return logits;
}

std::vector<uint32_t>
Model::generate(uint32_t max_tokens)
{
    std::vector<uint32_t> out;
    out.reserve(max_tokens);
    for (uint32_t i = 0; i < max_tokens; ++i) {
        std::vector<float> logits = lastLogits();
        uint32_t best = static_cast<uint32_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        out.push_back(best);
        forwardBlock(embedTokens({best}), -1, TokenStage::GeneratedText);
    }
    return out;
}

void
Model::resetSession()
{
    kv.clear();
    if (selPolicy)
        selPolicy->reset();
    blockHistory.clear();
    lastHid.assign(cfg.dModel, 0.0f);
}

void
Model::serializeState(serial::ByteWriter &w) const
{
    kv.serialize(w);
    w.putVec(lastHid);
    w.put<uint64_t>(blockHistory.size());
    for (const auto &b : blockHistory) {
        w.put<uint8_t>(static_cast<uint8_t>(b.stage));
        w.put<uint32_t>(b.blockLen);
        w.put<uint32_t>(b.pastLen);
        w.putVec(b.layerRatios);
        w.put<uint64_t>(b.selectedPerHead.size());
        for (const auto &heads : b.selectedPerHead)
            w.putVec(heads);
    }
}

void
Model::restoreState(serial::ByteReader &r)
{
    kv.restore(r);
    lastHid = r.getVec<float>();
    if (lastHid.size() != cfg.dModel)
        throw serial::SerialError(
            "Model::restoreState: lastHidden size mismatch");
    const uint64_t n_blocks = r.get<uint64_t>();
    blockHistory.clear();
    for (uint64_t i = 0; i < n_blocks; ++i) {
        BlockStats b;
        b.stage = static_cast<TokenStage>(r.get<uint8_t>());
        b.blockLen = r.get<uint32_t>();
        b.pastLen = r.get<uint32_t>();
        b.layerRatios = r.getVec<double>();
        const uint64_t n_layers = r.get<uint64_t>();
        b.selectedPerHead.clear();
        for (uint64_t l = 0; l < n_layers; ++l)
            b.selectedPerHead.push_back(r.getVec<uint32_t>());
        blockHistory.push_back(std::move(b));
    }
}

} // namespace vrex
