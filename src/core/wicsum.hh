/**
 * @file
 * Weighted cumulative sum (WiCSum) thresholding (paper §IV-C, Fig. 9)
 * and its early-exit bucket-sorted variant (paper Fig. 11), the
 * dataflow the WTU implements in hardware.
 *
 * Given per-cluster relevance scores and token counts, WiCSum selects
 * the smallest prefix of clusters (in descending score order) whose
 * weighted score mass exceeds Th_r-wics of the total weighted mass:
 *
 *   Sum   = sum_j score_j * TC_j                     (Eq. 1)
 *   Th    = Sum * Th_r-wics                          (Eq. 2)
 *   pick descending until Acc(t) > Th                (Eq. 3)
 *
 * Scores must be non-negative; ReSV feeds exp-normalized attention
 * scores (a monotone transform of Q.K_cluster, approximating each
 * cluster's softmax attention mass).
 */

#ifndef VREX_CORE_WICSUM_HH
#define VREX_CORE_WICSUM_HH

#include <cstdint>
#include <vector>

namespace vrex
{

/** Outcome of one WiCSum selection. */
struct WicsumResult
{
    /** Selected cluster indices (descending score order). */
    std::vector<uint32_t> selected;
    /** Elements examined before the threshold was crossed. */
    uint32_t scanned = 0;
    /** Buckets visited (early-exit variant only). */
    uint32_t bucketsVisited = 0;
};

/** Exact reference: full descending sort, then cumulate (Eq. 1-3). */
WicsumResult wicsumSelectReference(const std::vector<float> &scores,
                                   const std::vector<uint32_t> &counts,
                                   float thr_ratio);

/**
 * Early-exit bucket variant: scores are bucketed over [min, max];
 * buckets are swept from the highest range and the sweep terminates
 * as soon as the accumulated weighted sum crosses the threshold,
 * skipping the sort of everything below (paper reports an average of
 * 16% of each row carrying the bulk of the mass).
 *
 * Within a bucket, elements are visited in index order — the same
 * bucket-granular ordering the WTU hardware produces.
 */
WicsumResult wicsumSelectEarlyExit(const std::vector<float> &scores,
                                   const std::vector<uint32_t> &counts,
                                   float thr_ratio,
                                   uint32_t n_buckets = 16);

/**
 * Convert raw max-query attention logits into the non-negative
 * relevance scores WiCSum consumes: exp(s - max(s)). Monotone, so the
 * selection order matches the raw scores, and the weighted mass
 * approximates cluster softmax attention mass.
 */
std::vector<float> expNormalize(const std::vector<float> &raw_scores);

} // namespace vrex

#endif // VREX_CORE_WICSUM_HH
