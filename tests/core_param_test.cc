/**
 * @file
 * Parameterized property tests for the ReSV core: hash-width vs.
 * correlation quality, clustering-threshold compression behaviour,
 * early-exit/WiCSum equivalences across bucket counts, and the
 * policy's hyper-parameter monotonicities on the functional model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "core/resv.hh"
#include "core/wicsum.hh"
#include "llm/model.hh"
#include "tensor/ops.hh"
#include "testutil.hh"

using namespace vrex;

namespace
{

/** Correlation of Hamming distance vs cosine at a hash width. */
double
hammingCorrelation(uint32_t bits)
{
    const uint32_t dim = 64;
    HashEncoder enc(dim, bits, 7);
    Rng rng(99);
    std::vector<float> base(dim);
    rng.fillGaussian(base.data(), dim, 1.0f);
    std::vector<double> cosines, distances;
    for (int i = 0; i < 600; ++i) {
        std::vector<float> other(dim);
        double alpha = rng.uniform();
        for (uint32_t d = 0; d < dim; ++d)
            other[d] = static_cast<float>(
                alpha * base[d] + (1.0 - alpha) * rng.gaussian());
        cosines.push_back(
            cosineSimilarity(base.data(), other.data(), dim));
        distances.push_back(
            static_cast<double>(enc.encode(base.data())
                                    .hamming(enc.encode(other.data())))
            / bits);
    }
    return pearson(cosines, distances);
}

} // namespace

class HashBits : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(HashBits, NegativeCorrelationAtAnyWidth)
{
    EXPECT_LT(hammingCorrelation(GetParam()), -0.55);
}

INSTANTIATE_TEST_SUITE_P(Widths, HashBits,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

TEST(HashBits, MoreBitsTightenCorrelation)
{
    // SimHash concentration: wider signatures track cosine better.
    EXPECT_LT(hammingCorrelation(128), hammingCorrelation(8));
}

class HammingThreshold : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(HammingThreshold, ClusterCountDecreasesWithThreshold)
{
    const uint32_t dim = 32, bits = 32;
    HashEncoder enc(dim, bits, 7);
    Rng rng(5);
    // A drifting stream of keys.
    std::vector<std::vector<float>> keys;
    std::vector<float> base(dim);
    rng.fillGaussian(base.data(), dim, 1.0f);
    for (int t = 0; t < 150; ++t) {
        std::vector<float> key(dim);
        for (uint32_t d = 0; d < dim; ++d)
            key[d] = base[d] +
                static_cast<float>(rng.gaussian(0.0, 0.2));
        keys.push_back(key);
        for (auto &v : base)
            v += static_cast<float>(rng.gaussian(0.0, 0.02));
    }

    auto clusters_at = [&](uint32_t th) {
        HCTable tab(dim, bits, th);
        for (uint32_t t = 0; t < keys.size(); ++t)
            tab.insert(t, keys[t].data(),
                       enc.encode(keys[t].data()));
        return tab.clusterCount();
    };
    const uint32_t th = GetParam();
    EXPECT_GE(clusters_at(th), clusters_at(th + 4));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HammingThreshold,
                         ::testing::Values(0u, 2u, 4u, 7u, 10u));

class WicsumRatio : public ::testing::TestWithParam<float>
{
};

TEST_P(WicsumRatio, ReferenceAndEarlyExitSimilarMass)
{
    const float ratio = GetParam();
    Rng rng(31);
    std::vector<float> scores(200);
    std::vector<uint32_t> counts(200);
    double total = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
        scores[i] = static_cast<float>(rng.uniform());
        counts[i] = 1 + static_cast<uint32_t>(rng.uniformInt(16));
        total += double(scores[i]) * counts[i];
    }
    auto mass = [&](const WicsumResult &r) {
        double acc = 0.0;
        for (uint32_t i : r.selected)
            acc += double(scores[i]) * counts[i];
        return acc;
    };
    auto ref = wicsumSelectReference(scores, counts, ratio);
    auto ee = wicsumSelectEarlyExit(scores, counts, ratio, 32);
    EXPECT_GT(mass(ref), total * ratio);
    EXPECT_GT(mass(ee), total * ratio);
    // Bucket-granular ordering never selects more than ~a bucket
    // beyond the exact prefix, mass-wise.
    EXPECT_LT(mass(ee), mass(ref) + total * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Ratios, WicsumRatio,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.7f,
                                           0.9f));

namespace
{

void
streamFrames(Model &model, uint32_t frames, uint32_t tokens_per_frame,
             uint64_t seed)
{
    testutil::streamCorrelatedFrames(model, frames, tokens_per_frame,
                                     seed, 0.1);
}

} // namespace

class ResvBuckets : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ResvBuckets, RatioStableAcrossBucketCounts)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    rc.nBuckets = GetParam();
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 8, 4, 21);
    double ratio = policy.frameCounters().selectedRatio();
    EXPECT_GT(ratio, 0.05);
    EXPECT_LT(ratio, 0.98);
}

INSTANTIATE_TEST_SUITE_P(Buckets, ResvBuckets,
                         ::testing::Values(2u, 8u, 16u, 64u));

class ResvHammingParam : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ResvHammingParam, LooserThresholdBiggerClusters)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig tight, loose;
    tight.thHd = GetParam();
    loose.thHd = GetParam() + 6;
    double sizes[2];
    int i = 0;
    for (const ResvConfig *rc : {&tight, &loose}) {
        ResvPolicy policy(cfg, *rc);
        Model model(cfg, 42);
        model.setPolicy(&policy);
        streamFrames(model, 8, 4, 22);
        sizes[i++] = policy.avgClusterSize();
    }
    EXPECT_LE(sizes[0], sizes[1] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Th, ResvHammingParam,
                         ::testing::Values(1u, 4u, 7u));

TEST(ResvScaling, PredictionWorkSublinearInTokensWhenClustered)
{
    // The whole point of hash-bit clustering: Q x Key_cluster^T work
    // grows with clusters, far slower than with tokens.
    ModelConfig cfg = ModelConfig::tiny();
    uint64_t scanned[2];
    int i = 0;
    for (uint32_t frames : {6u, 18u}) {
        ResvConfig rc;
        ResvPolicy policy(cfg, rc);
        Model model(cfg, 42);
        model.setPolicy(&policy);
        streamFrames(model, frames, 4, 23);
        // Per-call average cluster count scanned.
        scanned[i++] = policy.frameCounters().clustersScanned /
            policy.frameCounters().selectCalls;
    }
    // 3x tokens should be well under 3x clusters scanned.
    EXPECT_LT(static_cast<double>(scanned[1]),
              2.5 * static_cast<double>(scanned[0]));
}
