/**
 * @file
 * Baseline KV cache retrieval policies the paper compares against
 * (§VI-B): FlexGen (full cache, no selection), InfiniGen
 * (partial-projection top-k, generation stage only), InfiniGenP (the
 * same extended to the iterative prefill stage), and ReKV
 * (frame-granular top-k). All are fixed-top-k methods — the
 * inflexibility ReSV's WiCSum replaces (§III-C).
 */

#ifndef VREX_RETRIEVAL_POLICIES_HH
#define VREX_RETRIEVAL_POLICIES_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "llm/selection.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Work counters shared by the baseline policies. */
struct BaselineCounters
{
    uint64_t predictionMacs = 0;
    uint64_t tokensSelected = 0;
    uint64_t pastTokens = 0;
    uint64_t selectCalls = 0;

    double
    selectedRatio() const
    {
        return pastTokens
            ? static_cast<double>(tokensSelected) / pastTokens
            : 1.0;
    }

    void
    serialize(serial::ByteWriter &w) const
    {
        w.put<uint64_t>(predictionMacs);
        w.put<uint64_t>(tokensSelected);
        w.put<uint64_t>(pastTokens);
        w.put<uint64_t>(selectCalls);
    }

    void
    restore(serial::ByteReader &r)
    {
        predictionMacs = r.get<uint64_t>();
        tokensSelected = r.get<uint64_t>();
        pastTokens = r.get<uint64_t>();
        selectCalls = r.get<uint64_t>();
    }
};

/** FlexGen: offloads everything and fetches everything back. */
class FlexGenPolicy : public SelectionPolicy
{
  public:
    LayerSelection
    select(uint32_t, const Matrix &, const KVCache &cache,
           uint32_t past_len, TokenStage stage) override
    {
        BaselineCounters &ctr = stage == TokenStage::VideoFrame
            ? frameCtr : textCtr;
        ++ctr.selectCalls;
        uint32_t heads = cache.config().nKvHeads;
        ctr.pastTokens += uint64_t(past_len) * heads;
        ctr.tokensSelected += uint64_t(past_len) * heads;
        return LayerSelection::full(heads);
    }

    const BaselineCounters &frameCounters() const { return frameCtr; }
    const BaselineCounters &textCounters() const { return textCtr; }

    void reset() override { frameCtr = {}; textCtr = {}; }

    void
    serializeState(serial::ByteWriter &w) const override
    {
        frameCtr.serialize(w);
        textCtr.serialize(w);
    }

    void
    restoreState(serial::ByteReader &r) override
    {
        frameCtr.restore(r);
        textCtr.restore(r);
    }

  private:
    BaselineCounters frameCtr, textCtr;
};

/** Configuration of the InfiniGen-style policies. */
struct InfiniGenConfig
{
    float ratio = 0.5f;      //!< Fixed top-k selection ratio.
    uint32_t projDim = 8;    //!< Partial-projection dimensionality.
    bool prefill = false;    //!< true = InfiniGenP.
    uint64_t seed = 11;
};

/**
 * InfiniGen: predicts token importance with low-dimensional projected
 * query/key products and keeps a fixed top-k fraction. The original
 * only operates during the generation stage; `prefill = true` gives
 * the InfiniGenP variant the paper constructs.
 */
class InfiniGenPolicy : public SelectionPolicy
{
  public:
    InfiniGenPolicy(const ModelConfig &model,
                    const InfiniGenConfig &config);

    LayerSelection select(uint32_t layer, const Matrix &q,
                          const KVCache &cache, uint32_t past_len,
                          TokenStage stage) override;

    void reset() override { frameCtr = {}; textCtr = {}; }

    const BaselineCounters &frameCounters() const { return frameCtr; }
    const BaselineCounters &textCounters() const { return textCtr; }
    const InfiniGenConfig &config() const { return cfg; }

    // The projection matrix is deterministic from cfg.seed; only the
    // counters are mutable session state.
    void
    serializeState(serial::ByteWriter &w) const override
    {
        frameCtr.serialize(w);
        textCtr.serialize(w);
    }

    void
    restoreState(serial::ByteReader &r) override
    {
        frameCtr.restore(r);
        textCtr.restore(r);
    }

  private:
    ModelConfig model;
    InfiniGenConfig cfg;
    Matrix projection;  //!< projDim x headDim, shared across heads.
    BaselineCounters frameCtr, textCtr;
};

/** Configuration of the ReKV-style frame-granular policy. */
struct ReKVConfig
{
    float ratio = 0.5f;   //!< Token budget as a fraction of the past.
};

/**
 * ReKV: scores whole frames (mean key vs. mean query) and selects
 * entire frames until the token budget is reached. Past text tokens
 * are always kept (they are few and anchor the dialogue).
 */
class ReKVPolicy : public SelectionPolicy
{
  public:
    ReKVPolicy(const ModelConfig &model, const ReKVConfig &config);

    LayerSelection select(uint32_t layer, const Matrix &q,
                          const KVCache &cache, uint32_t past_len,
                          TokenStage stage) override;

    void reset() override { frameCtr = {}; textCtr = {}; }

    const BaselineCounters &frameCounters() const { return frameCtr; }
    const BaselineCounters &textCounters() const { return textCtr; }

    void
    serializeState(serial::ByteWriter &w) const override
    {
        frameCtr.serialize(w);
        textCtr.serialize(w);
    }

    void
    restoreState(serial::ByteReader &r) override
    {
        frameCtr.restore(r);
        textCtr.restore(r);
    }

  private:
    ModelConfig model;
    ReKVConfig cfg;
    BaselineCounters frameCtr, textCtr;
};

} // namespace vrex

#endif // VREX_RETRIEVAL_POLICIES_HH
