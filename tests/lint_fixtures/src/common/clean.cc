// Fixture: a file that violates nothing. Exercises every rule's
// negative path at once: deterministic RNG, no wall clock, a matched
// assert format, and a mirrored serialize/restore pair.
#include "common/logging.hh"
#include "common/serial.hh"

namespace fx
{

struct Blob
{
    unsigned a = 0;
    unsigned long b = 0;
    bool flag = false;

    void
    serialize(vrex::serial::ByteWriter &w) const
    {
        w.put<uint32_t>(a);
        w.put<uint64_t>(b);
        w.putBool(flag);
    }

    void
    restore(vrex::serial::ByteReader &r)
    {
        a = r.get<uint32_t>();
        b = r.get<uint64_t>();
        flag = r.getBool();
    }
};

unsigned
check(unsigned x)
{
    VREX_ASSERT(x < 100, "x out of range: %u (limit %d)", x, 100);
    VREX_ASSERT(x != 7); // condition-only form: nothing to pair
    return x + 1;
}

} // namespace fx
