/**
 * @file
 * Tests for the synthetic video substrate: temporal similarity of the
 * frame generator, vision tower shapes, and workload scripts.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "tensor/ops.hh"
#include "video/frame_generator.hh"
#include "video/vision_tower.hh"
#include "video/workload.hh"

using namespace vrex;

TEST(FrameGenerator, ShapeAndDeterminism)
{
    VideoConfig cfg;
    FrameGenerator g1(cfg, 42), g2(cfg, 42);
    Matrix f1 = g1.nextFrameLatents();
    Matrix f2 = g2.nextFrameLatents();
    EXPECT_EQ(f1.rows(), cfg.tokensPerFrame);
    EXPECT_EQ(f1.cols(), cfg.latentDim);
    for (uint32_t i = 0; i < f1.size(); ++i)
        EXPECT_EQ(f1.raw()[i], f2.raw()[i]);
}

TEST(FrameGenerator, AdjacentFramesHighlySimilar)
{
    VideoConfig cfg;
    cfg.sceneCutProb = 0.0;  // No cuts for this property.
    FrameGenerator gen(cfg, 7);
    Matrix prev = gen.nextFrameLatents();
    RunningStat sim;
    for (int f = 0; f < 10; ++f) {
        Matrix cur = gen.nextFrameLatents();
        for (uint32_t t = 0; t < cfg.tokensPerFrame; ++t)
            sim.add(cosineSimilarity(prev.row(t), cur.row(t),
                                     cfg.latentDim));
        prev = cur;
    }
    // The property ReSV exploits (paper Fig. 7a).
    EXPECT_GT(sim.mean(), 0.8);
}

TEST(FrameGenerator, SceneCutsBreakSimilarity)
{
    VideoConfig smooth, cuts;
    smooth.sceneCutProb = 0.0;
    cuts.sceneCutProb = 0.9;
    RunningStat sim_smooth, sim_cuts;
    for (auto [cfg, stat] :
         {std::pair{&smooth, &sim_smooth}, {&cuts, &sim_cuts}}) {
        FrameGenerator gen(*cfg, 3);
        Matrix prev = gen.nextFrameLatents();
        for (int f = 0; f < 20; ++f) {
            Matrix cur = gen.nextFrameLatents();
            for (uint32_t t = 0; t < cfg->tokensPerFrame; ++t)
                stat->add(cosineSimilarity(prev.row(t), cur.row(t),
                                           cfg->latentDim));
            prev = cur;
        }
    }
    EXPECT_GT(sim_smooth.mean(), sim_cuts.mean());
}

TEST(FrameGenerator, DriftLowersSimilarity)
{
    VideoConfig slow, fast;
    slow.driftRate = 0.02;
    slow.sceneCutProb = 0.0;
    fast.driftRate = 0.6;
    fast.sceneCutProb = 0.0;
    double means[2];
    int i = 0;
    for (const VideoConfig *cfg : {&slow, &fast}) {
        FrameGenerator gen(*cfg, 5);
        Matrix prev = gen.nextFrameLatents();
        RunningStat sim;
        for (int f = 0; f < 15; ++f) {
            Matrix cur = gen.nextFrameLatents();
            for (uint32_t t = 0; t < cfg->tokensPerFrame; ++t)
                sim.add(cosineSimilarity(prev.row(t), cur.row(t),
                                         cfg->latentDim));
            prev = cur;
        }
        means[i++] = sim.mean();
    }
    EXPECT_GT(means[0], means[1]);
}

TEST(VisionTower, ShapesAndDeterminism)
{
    VisionTower tower(32, 64, 42);
    MlpProjector proj(64, 128, 42);
    Matrix latents(5, 32);
    Rng rng(1);
    rng.fillGaussian(latents.raw(), latents.size(), 1.0f);
    Matrix feats = tower.encode(latents);
    EXPECT_EQ(feats.rows(), 5u);
    EXPECT_EQ(feats.cols(), 64u);
    Matrix emb = proj.project(feats);
    EXPECT_EQ(emb.cols(), 128u);

    VisionTower tower2(32, 64, 42);
    Matrix feats2 = tower2.encode(latents);
    for (uint32_t i = 0; i < feats.size(); ++i)
        EXPECT_EQ(feats.raw()[i], feats2.raw()[i]);
}

TEST(Workload, CoinAverageScenario)
{
    SessionScript s = WorkloadGenerator::coinAverage(1);
    EXPECT_EQ(s.frameCount(), 26u);
    EXPECT_EQ(s.questionTokens(), 25u);
    EXPECT_EQ(s.answerTokens(), 39u);
}

TEST(Workload, FiveTasksDistinct)
{
    auto &tasks = allCoinTasks();
    EXPECT_EQ(tasks.size(), 5u);
    std::set<std::string> names;
    for (CoinTask t : tasks) {
        names.insert(coinTaskName(t));
        SessionScript s = WorkloadGenerator::coinTask(t, 1);
        EXPECT_GT(s.frameCount(), 0u);
        EXPECT_GT(s.questionTokens(), 0u);
        EXPECT_GT(s.answerTokens(), 0u);
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(Workload, TaskKnobsDiffer)
{
    SessionScript step =
        WorkloadGenerator::coinTask(CoinTask::Step, 1);
    SessionScript task =
        WorkloadGenerator::coinTask(CoinTask::Task, 1);
    EXPECT_GT(step.video.driftRate, task.video.driftRate);
    EXPECT_GT(step.video.sceneCutProb, task.video.sceneCutProb);
}

TEST(Workload, MultiTurnStructure)
{
    SessionScript s = WorkloadGenerator::multiTurn(20, 4, 1);
    EXPECT_EQ(s.frameCount(), 20u);
    uint32_t questions = 0;
    for (const auto &e : s.events)
        questions += e.type == SessionEvent::Type::Question;
    EXPECT_EQ(questions, 4u);
}

TEST(Workload, QuestionTokensInVocab)
{
    auto ids = WorkloadGenerator::questionTokens(50, 100, 3);
    EXPECT_EQ(ids.size(), 50u);
    for (uint32_t id : ids)
        EXPECT_LT(id, 100u);
    auto ids2 = WorkloadGenerator::questionTokens(50, 100, 3);
    EXPECT_EQ(ids, ids2);
}

// Regression: turns > frames used to emit `turns` frame-less QA
// rounds (integer division gave 0 frames per turn) and pile every
// frame into nothing — a Question preceded its video context. The
// contract now clamps the turn count to the frame count.
TEST(Workload, MultiTurnMoreTurnsThanFramesClamps)
{
    SessionScript s = WorkloadGenerator::multiTurn(3, 5, 1);
    EXPECT_EQ(s.frameCount(), 3u);
    uint32_t questions = 0;
    for (const auto &e : s.events)
        questions += e.type == SessionEvent::Type::Question;
    EXPECT_EQ(questions, 3u); // clamped: pre-fix this was 5
    // Every turn leads with at least one frame.
    bool frame_seen = false;
    for (const auto &e : s.events) {
        if (e.type == SessionEvent::Type::Frame)
            frame_seen = true;
        else if (e.type == SessionEvent::Type::Question) {
            EXPECT_TRUE(frame_seen);
            frame_seen = false;
        }
    }
}

// Uneven splits spread the remainder over the leading turns; frame
// and question counts are both exact.
TEST(Workload, MultiTurnUnevenSplit)
{
    SessionScript s = WorkloadGenerator::multiTurn(7, 3, 1);
    EXPECT_EQ(s.frameCount(), 7u);
    std::vector<uint32_t> per_turn;
    uint32_t run = 0;
    for (const auto &e : s.events) {
        if (e.type == SessionEvent::Type::Frame)
            ++run;
        else if (e.type == SessionEvent::Type::Question) {
            per_turn.push_back(run);
            run = 0;
        }
    }
    EXPECT_EQ(per_turn, (std::vector<uint32_t>{3, 2, 2}));
}

TEST(Workload, MultiTurnDegenerateInputsDie)
{
    EXPECT_DEATH((void)WorkloadGenerator::multiTurn(0, 2, 1),
                 "at least one frame");
    EXPECT_DEATH((void)WorkloadGenerator::multiTurn(10, 0, 1),
                 "at least one turn");
}

// Regression: questionTokens(n > 0, vocab == 0) used to call
// rng.uniformInt(0) — an empty range. The contract: n == 0 is fine
// for any vocab, n > 0 requires a non-empty vocabulary.
TEST(Workload, QuestionTokensEmptyVocab)
{
    EXPECT_TRUE(WorkloadGenerator::questionTokens(0, 0, 3).empty());
    EXPECT_TRUE(WorkloadGenerator::questionTokens(0, 100, 3).empty());
    EXPECT_DEATH((void)WorkloadGenerator::questionTokens(5, 0, 3),
                 "vocab > 0");
}

// Degenerate-input sweep across the rest of the script surface: the
// contracts the serve layer leans on.
TEST(Workload, EmptyScriptAccessorsAreZero)
{
    SessionScript s;
    EXPECT_EQ(s.frameCount(), 0u);
    EXPECT_EQ(s.questionTokens(), 0u);
    EXPECT_EQ(s.answerTokens(), 0u);
}

TEST(Workload, ZeroTokenGenerateIsZeroUnits)
{
    SessionEvent gen{SessionEvent::Type::Generate, 0};
    EXPECT_EQ(gen.unitCount(), 0u);
    SessionEvent frame{SessionEvent::Type::Frame, 0};
    EXPECT_EQ(frame.unitCount(), 1u);
    SessionEvent q{SessionEvent::Type::Question, 0};
    EXPECT_EQ(q.unitCount(), 1u);
}
