/**
 * @file
 * Shared test utilities: seeded RNG fixtures, float/BF16 tolerance
 * comparators, the synthetic video-frame / KV generators that
 * several suites previously copy-pasted, and the deterministic
 * serve-layer stress harness (seeded-random verb scripts, sequential
 * ground-truth replays, instrumented policies) shared by the
 * scheduler suites.
 */

#ifndef VREX_TESTS_TESTUTIL_HH
#define VREX_TESTS_TESTUTIL_HH

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bf16.hh"
#include "common/rng.hh"
#include "core/resv.hh"
#include "llm/kv_cache.hh"
#include "llm/model.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "serve/policy_factory.hh"
#include "tensor/matrix.hh"
#include "video/workload.hh"

namespace vrex::testutil
{

/**
 * Fixture with a deterministic per-test RNG. The stream is named
 * after the test so adding a test never perturbs its neighbours.
 */
class SeededRngTest : public ::testing::Test
{
  protected:
    SeededRngTest()
        : rng(0x5eedull,
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())
    {
    }

    Rng rng;
};

/** Relative tolerance matching BF16's 8-bit mantissa (2^-8). */
inline constexpr float kBf16RelTol = 1.0f / 256.0f;

/** |a - b| <= tol * max(1, |a|, |b|): absolute near zero, relative
 * away from it. */
inline ::testing::AssertionResult
nearRel(float a, float b, float tol)
{
    const float scale =
        std::max(1.0f, std::max(std::fabs(a), std::fabs(b)));
    if (std::fabs(a - b) <= tol * scale)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << a << " vs " << b << " differ by " << std::fabs(a - b)
        << " (tol " << tol * scale << ")";
}

/** Comparator for values that passed through BF16 rounding. */
inline ::testing::AssertionResult
bf16Near(float a, float b)
{
    return nearRel(a, b, kBf16RelTol);
}

/** Elementwise comparison of two same-shaped matrices. */
inline ::testing::AssertionResult
matricesNear(const Matrix &a, const Matrix &b, float tol)
{
    if (!a.sameShape(b))
        return ::testing::AssertionFailure() << "shape mismatch";
    for (uint32_t i = 0; i < a.size(); ++i) {
        auto r = nearRel(a.raw()[i], b.raw()[i], tol);
        if (!r)
            return r << " at flat index " << i;
    }
    return ::testing::AssertionSuccess();
}

/** A gaussian random (rows x cols) matrix. */
inline Matrix
randomMatrix(Rng &rng, uint32_t rows, uint32_t cols,
             float stddev = 1.0f)
{
    Matrix m(rows, cols);
    rng.fillGaussian(m.raw(), m.size(), stddev);
    return m;
}

/**
 * Prefill @p frames iid-random synthetic frames through the model
 * (no temporal correlation — each token is fresh gaussian noise).
 */
inline void
streamRandomFrames(Model &model, uint32_t frames,
                   uint32_t tokens_per_frame, uint64_t seed)
{
    Rng rng(seed);
    const uint32_t d = model.config().dModel;
    for (uint32_t f = 0; f < frames; ++f) {
        Matrix frame = randomMatrix(rng, tokens_per_frame, d);
        model.prefillFrame(frame, static_cast<int32_t>(f));
    }
}

/**
 * Prefill @p frames temporally-correlated synthetic frames: tokens
 * cluster around a shared base latent that drifts slowly between
 * frames, mimicking real video redundancy (high inter-frame
 * similarity, gradual scene drift).
 */
inline void
streamCorrelatedFrames(Model &model, uint32_t frames,
                       uint32_t tokens_per_frame, uint64_t seed,
                       double token_noise = 0.15,
                       double drift = 0.05)
{
    Rng rng(seed);
    const uint32_t d = model.config().dModel;
    std::vector<float> base(d);
    rng.fillGaussian(base.data(), d, 1.0f);
    for (uint32_t f = 0; f < frames; ++f) {
        Matrix frame(tokens_per_frame, d);
        for (uint32_t t = 0; t < tokens_per_frame; ++t)
            for (uint32_t i = 0; i < d; ++i)
                frame.at(t, i) = base[i] +
                    static_cast<float>(rng.gaussian(0.0, token_noise));
        model.prefillFrame(frame, static_cast<int32_t>(f));
        // Slow drift between frames.
        for (auto &v : base)
            v += static_cast<float>(rng.gaussian(0.0, drift));
    }
}

/** Append one block of @p tokens random K/V to every layer. */
inline void
fillLayer(KVCache &kv, const ModelConfig &cfg, uint32_t tokens,
          Rng &rng, int32_t frame_id = 0,
          TokenStage stage = TokenStage::VideoFrame)
{
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    Matrix k = randomMatrix(rng, tokens, kv_dim);
    Matrix v = randomMatrix(rng, tokens, kv_dim);
    kv.beginTokens(tokens, frame_id, stage);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        kv.appendLayer(l, k, v);
}

// ----------------------------------------------------------------
// Deterministic serve-layer stress harness (serve_sched_test /
// serve_prio_test). Everything below is seeded: the same inputs
// always produce the same scripts, replays and counts.
// ----------------------------------------------------------------

/**
 * Verb mix of randomVerbScript(): per-event verb weights, event- and
 * token-count spans, and the trailing QA round. The defaults
 * reproduce the original serve_sched_test generator byte-for-byte
 * (same RNG stream, same draw order), so refactored suites keep
 * their exact event sequences.
 */
struct VerbMix
{
    /** Per-event verb weights (one draw out of the weight sum). */
    uint32_t questionWeight = 2;
    uint32_t generateWeight = 2;
    uint32_t frameWeight = 4;
    /** Events drawn in [minEvents, minEvents + eventSpan). */
    uint32_t minEvents = 8;
    uint32_t eventSpan = 6;
    /** Question tokens drawn in [1, 1 + questionTokenSpan).
     *  0 behaves as 1 (fixed single-token questions). */
    uint32_t questionTokenSpan = 5;
    /** Generate tokens drawn in [0, generateTokenSpan).
     *  0 behaves as 1 (always Generate{0}, dropped at enqueue). */
    uint32_t generateTokenSpan = 5;
    /** Append Question{4} + Generate{3} so every script generates. */
    bool endWithQa = true;
    /** Session name prefix (feeds the FrameGenerator substream). */
    const char *namePrefix = "sched-stress-";
    /** Rng stream name of the verb draws. */
    const char *rngStream = "sched-stress-script";

    /** Frame-ingest-heavy mix for Bulk-class sessions. */
    static VerbMix
    bulkIngest()
    {
        VerbMix m;
        m.questionWeight = 1;
        m.generateWeight = 1;
        m.frameWeight = 6;
        m.namePrefix = "sched-bulk-";
        return m;
    }
};

/** A seeded-random verb sequence over a task-specific stream. */
inline SessionScript
randomVerbScript(uint64_t seed, size_t index, const VerbMix &mix = {})
{
    Rng rng(seed, mix.rngStream);
    const auto &tasks = allCoinTasks();
    SessionScript s =
        WorkloadGenerator::coinTask(tasks[index % tasks.size()], seed);
    s.name = mix.namePrefix + std::to_string(index);
    s.events.clear();
    // All-zero weights degrade to all-frames instead of a %0 trap.
    const uint32_t total = std::max(
        1u, mix.questionWeight + mix.generateWeight + mix.frameWeight);
    const uint32_t n =
        mix.minEvents +
        (mix.eventSpan
             ? static_cast<uint32_t>(rng.nextU64() % mix.eventSpan)
             : 0);
    for (uint32_t i = 0; i < n; ++i) {
        const uint64_t draw = rng.nextU64() % total;
        if (draw < mix.questionWeight) {
            s.events.push_back(
                {SessionEvent::Type::Question,
                 1 + static_cast<uint32_t>(
                         rng.nextU64() %
                         std::max(1u, mix.questionTokenSpan))});
        } else if (draw < mix.questionWeight + mix.generateWeight) {
            s.events.push_back(
                {SessionEvent::Type::Generate,
                 static_cast<uint32_t>(
                     rng.nextU64() %
                     std::max(1u, mix.generateTokenSpan))});
        } else {
            s.events.push_back({SessionEvent::Type::Frame, 0});
        }
    }
    if (mix.endWithQa) {
        s.events.push_back({SessionEvent::Type::Question, 4});
        s.events.push_back({SessionEvent::Type::Generate, 3});
    }
    return s;
}

/** @p count scripts with consecutive seeds (baseSeed + i). */
inline std::vector<SessionScript>
randomVerbScripts(size_t count, uint64_t base_seed,
                  const VerbMix &mix = {})
{
    std::vector<SessionScript> scripts;
    scripts.reserve(count);
    for (size_t i = 0; i < count; ++i)
        scripts.push_back(randomVerbScript(base_seed + i, i, mix));
    return scripts;
}

/** One (workers, sliceEvents) scheduler shape of a stress pass. */
struct SchedShape
{
    uint32_t workers;
    uint32_t sliceEvents;
};

/** The canonical shape sweep: max interleaving (one item per
 *  slice), a default-ish slice, and drain-all (no time-slicing). */
inline std::vector<SchedShape>
schedShapeZoo()
{
    return {{4u, 1u}, {2u, 4u}, {3u, 0u}};
}

/** Exact structural equality of two run results. */
inline void
expectIdenticalRuns(const SessionRunResult &a,
                    const SessionRunResult &b)
{
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.stepLogits, b.stepLogits);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.totalTokens, b.totalTokens);
    EXPECT_DOUBLE_EQ(a.frameRatio, b.frameRatio);
    EXPECT_DOUBLE_EQ(a.textRatio, b.textRatio);
    EXPECT_EQ(a.layerHeadRatio, b.layerHeadRatio);
}

/** The sequential ground truth for (script, spec, master seed). */
inline SessionRunResult
sequentialReplay(const ModelConfig &model, const SessionScript &script,
                 const serve::PolicySpec &spec, uint64_t session_seed)
{
    serve::PolicyInstance inst = serve::makePolicy(model, spec);
    StreamingSession seq(model, inst.active(), session_seed);
    return seq.run(script);
}

/** Every non-Full spec kind, with distinguishable parameters. */
inline std::vector<serve::PolicySpec>
policySpecZoo()
{
    ResvConfig rc;
    rc.thrWics = 0.4f;
    return {
        serve::PolicySpec::full(),
        serve::PolicySpec::flexgen(),
        serve::PolicySpec::infinigen(0.4f),
        serve::PolicySpec::infinigenP(0.6f),
        serve::PolicySpec::rekv(0.3f),
        serve::PolicySpec::resv(rc),
    };
}

/** Forwarding decorator that counts model blocks (= executed unit
 *  work items: one block per frame, question, or generate step).
 *  Register it via PolicyFactory::registerMaker to audit the
 *  scheduler's work-item accounting without perturbing results. */
class CountingPolicy final : public SelectionPolicy
{
  public:
    CountingPolicy(std::unique_ptr<SelectionPolicy> inner_policy,
                   std::atomic<uint64_t> *block_counter)
        : inner(std::move(inner_policy)), blocks(block_counter)
    {
    }

    void
    onBlockAppended(uint32_t layer, const KVCache &cache,
                    uint32_t block_start, uint32_t block_len,
                    TokenStage stage) override
    {
        if (layer == 0)
            blocks->fetch_add(1, std::memory_order_relaxed);
        inner->onBlockAppended(layer, cache, block_start, block_len,
                               stage);
    }

    LayerSelection
    select(uint32_t layer, const Matrix &q, const KVCache &cache,
           uint32_t past_len, TokenStage stage) override
    {
        return inner->select(layer, q, cache, past_len, stage);
    }

    void reset() override { inner->reset(); }

  private:
    std::unique_ptr<SelectionPolicy> inner;
    std::atomic<uint64_t> *blocks;
};

} // namespace vrex::testutil

#endif // VREX_TESTS_TESTUTIL_HH
