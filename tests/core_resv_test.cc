/**
 * @file
 * Integration tests of the ReSV policy against the tiny functional
 * model: selection validity, clustering behaviour, counters, and the
 * dynamic (per-layer / per-head) selection the paper contrasts with
 * fixed top-k.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/resv.hh"
#include "llm/model.hh"
#include "testutil.hh"

using namespace vrex;

namespace
{

/** Prefill a few synthetic similar frames through the model. */
void
streamFrames(Model &model, uint32_t frames, uint32_t tokens_per_frame,
             uint64_t seed)
{
    testutil::streamCorrelatedFrames(model, frames, tokens_per_frame,
                                     seed);
}

} // namespace

TEST(ResvPolicy, SelectionIndicesAreValidAndSorted)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 5, 4, 1);

    // Inspect the last block's recorded stats.
    const BlockStats &stats = model.history().back();
    EXPECT_EQ(stats.pastLen, 16u);
    for (const auto &per_head : stats.selectedPerHead)
        for (uint32_t count : per_head)
            EXPECT_LE(count, stats.pastLen);
}

TEST(ResvPolicy, FullSelectionOnEmptyPast)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 1, 4, 2);
    EXPECT_DOUBLE_EQ(model.history()[0].layerRatios[0], 1.0);
}

TEST(ResvPolicy, ClustersFormAcrossSimilarFrames)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 8, 4, 3);

    // 32 tokens inserted per (layer, head) table; similarity should
    // compress them into clearly fewer clusters.
    const HCTable &tab = policy.table(0, 0);
    EXPECT_EQ(tab.tokenCount(), 32u);
    EXPECT_LT(tab.clusterCount(), 32u);
    EXPECT_GT(policy.avgClusterSize(), 1.0);
}

TEST(ResvPolicy, CountersAccumulateByStage)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 4, 4, 4);
    EXPECT_GT(policy.frameCounters().selectCalls, 0u);
    EXPECT_EQ(policy.textCounters().selectCalls, 0u);

    model.prefillText({1, 2, 3});
    model.generate(2);
    EXPECT_GT(policy.textCounters().selectCalls, 0u);
    EXPECT_GT(policy.textCounters().tokensSelected, 0u);
}

TEST(ResvPolicy, ResetClearsState)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 3, 4, 5);
    EXPECT_GT(policy.table(0, 0).tokenCount(), 0u);
    model.resetSession();  // Calls policy.reset().
    EXPECT_EQ(policy.table(0, 0).tokenCount(), 0u);
    EXPECT_EQ(policy.frameCounters().selectCalls, 0u);
}

TEST(ResvPolicy, HigherThresholdSelectsMore)
{
    ModelConfig cfg = ModelConfig::tiny();
    double ratios[2];
    int i = 0;
    for (float thr : {0.2f, 0.9f}) {
        ResvConfig rc;
        rc.thrWics = thr;
        ResvPolicy policy(cfg, rc);
        Model model(cfg, 42);
        model.setPolicy(&policy);
        streamFrames(model, 8, 4, 6);
        ratios[i++] = policy.frameCounters().selectedRatio();
    }
    EXPECT_LT(ratios[0], ratios[1]);
}

TEST(ResvPolicy, SelectionVariesAcrossLayersAndHeads)
{
    // The core claim behind WiCSum (paper Fig. 20): selection ratio
    // is NOT uniform across layers/heads.
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    rc.thrWics = 0.5f;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 10, 4, 7);
    model.prefillText({5, 6, 7});

    const BlockStats &stats = model.history().back();
    std::set<uint32_t> distinct;
    for (const auto &per_head : stats.selectedPerHead)
        for (uint32_t c : per_head)
            distinct.insert(c);
    EXPECT_GT(distinct.size(), 2u);
}

TEST(ResvPolicy, EarlyExitAndReferenceAgreeOnRatioScale)
{
    ModelConfig cfg = ModelConfig::tiny();
    double ratios[2];
    int i = 0;
    for (bool ee : {false, true}) {
        ResvConfig rc;
        rc.earlyExit = ee;
        ResvPolicy policy(cfg, rc);
        Model model(cfg, 42);
        model.setPolicy(&policy);
        streamFrames(model, 8, 4, 8);
        ratios[i++] = policy.frameCounters().selectedRatio();
    }
    EXPECT_NEAR(ratios[0], ratios[1], 0.15);
}

TEST(ResvPolicy, UnclusteredModeSelects)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    rc.clustering = false;  // Fig. 19 "ReSV w/o clustering".
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 6, 4, 9);
    EXPECT_GT(policy.frameCounters().tokensSelected, 0u);
    // No clustering tables populated.
    EXPECT_EQ(policy.table(0, 0).tokenCount(), 0u);
    // Prediction scans every token, not clusters.
    EXPECT_GT(policy.frameCounters().clustersScanned, 0u);
}

TEST(ResvPolicy, ClusteringReducesPredictionWork)
{
    ModelConfig cfg = ModelConfig::tiny();
    uint64_t macs[2];
    int i = 0;
    for (bool clustering : {false, true}) {
        ResvConfig rc;
        rc.clustering = clustering;
        ResvPolicy policy(cfg, rc);
        Model model(cfg, 42);
        model.setPolicy(&policy);
        streamFrames(model, 10, 4, 10);
        macs[i++] = policy.frameCounters().predictionMacs;
    }
    EXPECT_LT(macs[1], macs[0]);  // Clustered scans fewer elements.
}

TEST(ResvPolicy, TableMemorySmallFractionOfKv)
{
    ModelConfig cfg = ModelConfig::smallVideo();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 12, 8, 11);

    uint64_t kv_bytes = model.cache().totalBytes(2.0);
    uint64_t table_bytes = policy.tableMemoryBytes();
    // Paper: HC table ~1.67% of the KV cache. Our functional setup
    // is smaller-dimensional; assert it stays a modest fraction.
    EXPECT_LT(table_bytes, kv_bytes / 2);
    EXPECT_GT(table_bytes, 0u);
}

TEST(ResvPolicy, GenerationSelectsFewerThanPrefill)
{
    // Single-token generation queries demand fewer clusters than
    // multi-token frame queries (paper: 32.7% vs 2.5% average).
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 10, 4, 12);
    model.prefillText({1, 2, 3, 4, 5});
    model.generate(5);
    EXPECT_LT(policy.textCounters().selectedRatio(),
              policy.frameCounters().selectedRatio() + 0.1);
}
