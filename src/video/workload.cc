#include "video/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace vrex
{

const std::vector<CoinTask> &
allCoinTasks()
{
    static const std::vector<CoinTask> tasks = {
        CoinTask::Step, CoinTask::Next, CoinTask::Proc,
        CoinTask::ProcPlus, CoinTask::Task,
    };
    return tasks;
}

std::string
coinTaskName(CoinTask task)
{
    switch (task) {
      case CoinTask::Step:     return "Step";
      case CoinTask::Next:     return "Next";
      case CoinTask::Proc:     return "Proc.";
      case CoinTask::ProcPlus: return "Proc.+";
      case CoinTask::Task:     return "Task";
    }
    panic("unknown CoinTask");
}

uint32_t
SessionScript::frameCount() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        n += e.type == SessionEvent::Type::Frame;
    return n;
}

uint32_t
SessionScript::questionTokens() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        if (e.type == SessionEvent::Type::Question)
            n += e.tokens;
    return n;
}

uint32_t
SessionScript::answerTokens() const
{
    uint32_t n = 0;
    for (const auto &e : events)
        if (e.type == SessionEvent::Type::Generate)
            n += e.tokens;
    return n;
}

namespace
{

SessionScript
makeScript(const std::string &name, CoinTask task,
           const VideoConfig &video, uint32_t frames,
           uint32_t q_tokens, uint32_t a_tokens, uint64_t seed)
{
    SessionScript s;
    s.name = name;
    s.task = task;
    s.video = video;
    s.seed = seed;
    for (uint32_t f = 0; f < frames; ++f)
        s.events.push_back({SessionEvent::Type::Frame, 0});
    s.events.push_back({SessionEvent::Type::Question, q_tokens});
    s.events.push_back({SessionEvent::Type::Generate, a_tokens});
    return s;
}

} // namespace

SessionScript
WorkloadGenerator::coinAverage(uint64_t seed)
{
    VideoConfig v;
    return makeScript("coin-average", CoinTask::Next, v, 26, 25, 39,
                      seed);
}

SessionScript
WorkloadGenerator::coinTask(CoinTask task, uint64_t seed)
{
    VideoConfig v;
    uint32_t frames = 26, q = 25, a = 39;
    switch (task) {
      case CoinTask::Step:
        // Step recognition: choppy video, local queries.
        v.driftRate = 0.16;
        v.sceneCutProb = 0.12;
        frames = 24;
        q = 18;
        a = 24;
        break;
      case CoinTask::Next:
        // Next-step prediction: smooth continuation.
        v.driftRate = 0.08;
        v.sceneCutProb = 0.04;
        frames = 26;
        q = 25;
        a = 39;
        break;
      case CoinTask::Proc:
        // Procedure localization: long steady segments.
        v.driftRate = 0.05;
        v.sceneCutProb = 0.02;
        frames = 32;
        q = 28;
        a = 44;
        break;
      case CoinTask::ProcPlus:
        // Multi-segment procedures: mixed dynamics.
        v.driftRate = 0.11;
        v.sceneCutProb = 0.08;
        frames = 30;
        q = 30;
        a = 48;
        break;
      case CoinTask::Task:
        // Task recognition: globally stable scene.
        v.driftRate = 0.03;
        v.sceneCutProb = 0.01;
        frames = 22;
        q = 14;
        a = 16;
        break;
    }
    return makeScript("coin-" + coinTaskName(task), task, v, frames, q,
                      a, seed);
}

SessionScript
WorkloadGenerator::multiTurn(uint32_t frames, uint32_t turns,
                             uint64_t seed)
{
    SessionScript s;
    s.name = "multi-turn";
    s.task = CoinTask::Next;
    s.seed = seed;
    VREX_ASSERT(turns > 0, "multiTurn needs at least one turn");
    uint32_t frames_per_turn = frames / turns;
    Rng rng(seed, "multi-turn");
    for (uint32_t turn = 0; turn < turns; ++turn) {
        uint32_t n = turn + 1 == turns
            ? frames - frames_per_turn * (turns - 1)
            : frames_per_turn;
        for (uint32_t f = 0; f < n; ++f)
            s.events.push_back({SessionEvent::Type::Frame, 0});
        s.events.push_back(
            {SessionEvent::Type::Question,
             10 + static_cast<uint32_t>(rng.uniformInt(20))});
        s.events.push_back(
            {SessionEvent::Type::Generate,
             12 + static_cast<uint32_t>(rng.uniformInt(30))});
    }
    return s;
}

std::vector<uint32_t>
WorkloadGenerator::questionTokens(uint32_t n, uint32_t vocab,
                                  uint64_t seed)
{
    Rng rng(seed, "question-tokens");
    std::vector<uint32_t> ids(n);
    for (auto &id : ids)
        id = static_cast<uint32_t>(rng.uniformInt(vocab));
    return ids;
}

} // namespace vrex
