/**
 * @file
 * Contracts of the traffic-shape zoo (video/workload.hh) and the
 * open-loop load generator (serve/loadgen.hh), under the `workload`
 * ctest label:
 *
 *  - arrival processes are seed-deterministic and non-decreasing,
 *    and their shapes do what the names say (uniform spacing is
 *    exact, flash crowds are denser inside the burst window),
 *  - bounded-Pareto sampling respects its bounds and tail ordering,
 *  - traces are replayable: equal TraceSpecs materialize
 *    byte-identical arrival streams,
 *  - the open-loop driver's report is a pure function of
 *    (trace, config) — a concurrent run (4 workers) reports logical
 *    stats identical to a sequential one, and overload produces the
 *    same rejections every time.
 */

#include <gtest/gtest.h>

#include "serve/loadgen.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Draw the first @p n arrival timestamps of a process. */
std::vector<uint64_t>
drawArrivals(const ArrivalSpec &spec, uint64_t seed, uint32_t n)
{
    ArrivalProcess p(spec, seed);
    std::vector<uint64_t> at(n);
    for (auto &t : at)
        t = p.nextArrivalUs();
    return at;
}

/** A small spec that keeps functional engine work cheap in tests. */
TraceSpec
smallSpec()
{
    TraceSpec spec;
    spec.name = "test-trace";
    spec.seed = 77;
    spec.sessions = 10;
    spec.arrivals.kind = ArrivalSpec::Kind::Poisson;
    spec.arrivals.ratePerSec = 40.0;
    spec.profileMix = {0.7, 0.3, 0.0, 0.0};
    return spec;
}

} // namespace

// ---- arrival processes --------------------------------------------

TEST(ArrivalProcess, SameSeedSameTimestamps)
{
    ArrivalSpec spec;
    for (auto kind :
         {ArrivalSpec::Kind::Uniform, ArrivalSpec::Kind::Poisson,
          ArrivalSpec::Kind::Diurnal,
          ArrivalSpec::Kind::FlashCrowd}) {
        spec.kind = kind;
        EXPECT_EQ(drawArrivals(spec, 5, 64), drawArrivals(spec, 5, 64))
            << arrivalKindName(kind);
        // Uniform is seed-free by construction; the stochastic
        // shapes must actually consume their seed.
        if (kind != ArrivalSpec::Kind::Uniform)
            EXPECT_NE(drawArrivals(spec, 5, 64),
                      drawArrivals(spec, 6, 64))
                << arrivalKindName(kind);
    }
}

TEST(ArrivalProcess, TimestampsNonDecreasing)
{
    ArrivalSpec spec;
    for (auto kind :
         {ArrivalSpec::Kind::Uniform, ArrivalSpec::Kind::Poisson,
          ArrivalSpec::Kind::Diurnal,
          ArrivalSpec::Kind::FlashCrowd}) {
        spec.kind = kind;
        auto at = drawArrivals(spec, 11, 200);
        for (size_t i = 1; i < at.size(); ++i)
            EXPECT_GE(at[i], at[i - 1]) << arrivalKindName(kind);
    }
}

TEST(ArrivalProcess, UniformSpacingIsExact)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Uniform;
    spec.ratePerSec = 8.0; // 125 ms apart
    auto at = drawArrivals(spec, 1, 9);
    for (size_t i = 0; i < at.size(); ++i)
        EXPECT_EQ(at[i], i * 125'000u);
}

TEST(ArrivalProcess, PoissonMeanRateClose)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 50.0;
    const uint32_t n = 2000;
    auto at = drawArrivals(spec, 21, n);
    const double rate = n / (at.back() / 1e6);
    EXPECT_NEAR(rate, spec.ratePerSec, 0.1 * spec.ratePerSec);
}

TEST(ArrivalProcess, FlashCrowdDenserInsideBurst)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::FlashCrowd;
    spec.ratePerSec = 10.0;
    spec.burstStartSec = 1.0;
    spec.burstLenSec = 1.0;
    spec.burstMultiplier = 10.0;
    auto at = drawArrivals(spec, 33, 400);
    uint32_t before = 0, inside = 0;
    for (uint64_t t : at) {
        before += t < 1'000'000;
        inside += t >= 1'000'000 && t < 2'000'000;
    }
    // Equal-length windows; the burst one should be several times
    // denser (expected 10x, leave slack for sampling noise).
    EXPECT_GT(inside, 3 * before);
}

TEST(ArrivalProcess, DegenerateSpecsDie)
{
    ArrivalSpec bad_rate;
    bad_rate.ratePerSec = 0.0;
    EXPECT_DEATH(ArrivalProcess(bad_rate, 1), "rate must be positive");

    ArrivalSpec bad_depth;
    bad_depth.kind = ArrivalSpec::Kind::Diurnal;
    bad_depth.diurnalDepth = 1.0; // peak rate 2x, trough 0: excluded
    EXPECT_DEATH(ArrivalProcess(bad_depth, 1), "depth must be in");

    ArrivalSpec bad_burst;
    bad_burst.kind = ArrivalSpec::Kind::FlashCrowd;
    bad_burst.burstMultiplier = 0.5;
    EXPECT_DEATH(ArrivalProcess(bad_burst, 1), "multiplier");
}

// ---- heavy tails ---------------------------------------------------

TEST(ParetoLength, BoundsAndPointMass)
{
    Rng rng(9, "pareto-test");
    for (int i = 0; i < 500; ++i) {
        const uint32_t v = paretoLength(rng, 10, 200, 1.3);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 200u);
    }
    EXPECT_EQ(paretoLength(rng, 42, 42, 1.0), 42u);
}

TEST(ParetoLength, LowerAlphaHeavierTail)
{
    Rng r1(4, "tail-a"), r2(4, "tail-a");
    double heavy = 0, light = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        heavy += paretoLength(r1, 10, 1000, 0.8);
        light += paretoLength(r2, 10, 1000, 2.5);
    }
    EXPECT_GT(heavy / n, light / n);
}

TEST(ParetoLength, DegenerateInputsDie)
{
    Rng rng(1, "pareto-death");
    EXPECT_DEATH((void)paretoLength(rng, 0, 10, 1.0), "0 < lo <= hi");
    EXPECT_DEATH((void)paretoLength(rng, 20, 10, 1.0), "0 < lo <= hi");
    EXPECT_DEATH((void)paretoLength(rng, 1, 10, 0.0), "tail index");
}

// ---- profiles and traces ------------------------------------------

TEST(Profiles, ClassMappingAndDeterminism)
{
    EXPECT_EQ(profileClass(SessionProfile::QaAverage),
              TrafficClass::Interactive);
    EXPECT_EQ(profileClass(SessionProfile::ChattyAdversary),
              TrafficClass::Interactive);
    EXPECT_EQ(profileClass(SessionProfile::LongVideoMarathon),
              TrafficClass::Bulk);
    EXPECT_EQ(profileClass(SessionProfile::BulkIngest),
              TrafficClass::Bulk);

    for (uint32_t p = 0; p < kSessionProfiles; ++p) {
        const auto profile = static_cast<SessionProfile>(p);
        SessionScript a = profileScript(profile, 123);
        SessionScript b = profileScript(profile, 123);
        ASSERT_EQ(a.events.size(), b.events.size())
            << sessionProfileName(profile);
        for (size_t i = 0; i < a.events.size(); ++i) {
            EXPECT_EQ(a.events[i].type, b.events[i].type);
            EXPECT_EQ(a.events[i].tokens, b.events[i].tokens);
        }
        EXPECT_FALSE(a.events.empty());
    }
}

TEST(Trace, ReplayIsByteIdentical)
{
    const TraceSpec spec = smallSpec();
    TrafficTrace a = buildTrace(spec);
    TrafficTrace b = buildTrace(spec);
    ASSERT_EQ(a.arrivals.size(), spec.sessions);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    for (size_t i = 0; i < a.arrivals.size(); ++i) {
        const TraceArrival &x = a.arrivals[i];
        const TraceArrival &y = b.arrivals[i];
        EXPECT_EQ(x.atUs, y.atUs);
        EXPECT_EQ(x.profile, y.profile);
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.script.name, y.script.name);
        EXPECT_EQ(x.script.seed, y.script.seed);
        ASSERT_EQ(x.script.events.size(), y.script.events.size());
        for (size_t e = 0; e < x.script.events.size(); ++e) {
            EXPECT_EQ(x.script.events[e].type,
                      y.script.events[e].type);
            EXPECT_EQ(x.script.events[e].tokens,
                      y.script.events[e].tokens);
        }
    }
    EXPECT_EQ(a.horizonUs(), b.horizonUs());
    EXPECT_EQ(a.totalUnitItems(), b.totalUnitItems());
}

TEST(Trace, ClassesFollowProfiles)
{
    TrafficTrace t = buildTrace(smallSpec());
    EXPECT_EQ(t.countClass(TrafficClass::Interactive),
              t.spec.sessions);
    EXPECT_EQ(t.countClass(TrafficClass::Bulk), 0u);
    for (const TraceArrival &a : t.arrivals)
        EXPECT_EQ(a.cls, profileClass(a.profile));

    TraceSpec bulk = smallSpec();
    bulk.profileMix = {0.0, 0.0, 0.0, 1.0};
    TrafficTrace tb = buildTrace(bulk);
    EXPECT_EQ(tb.countClass(TrafficClass::Bulk), tb.spec.sessions);
}

TEST(Trace, ZooCatalogResolves)
{
    for (const std::string &name : traceZoo()) {
        TraceSpec spec = traceSpecByName(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_GT(spec.sessions, 0u);
        TraceSpec scaled = traceSpecByName(name, 5);
        EXPECT_EQ(scaled.sessions, 5u);
    }
    EXPECT_DEATH((void)traceSpecByName("no-such-trace"),
                 "unknown trace");
}

TEST(Trace, DegenerateSpecsDie)
{
    TraceSpec zero = smallSpec();
    zero.sessions = 0;
    EXPECT_DEATH((void)buildTrace(zero), "at least one session");

    TraceSpec no_mix = smallSpec();
    no_mix.profileMix = {0.0, 0.0, 0.0, 0.0};
    EXPECT_DEATH((void)buildTrace(no_mix), "profile mix");

    TraceSpec neg_mix = smallSpec();
    neg_mix.profileMix = {1.0, -0.5, 0.0, 0.0};
    EXPECT_DEATH((void)buildTrace(neg_mix), "profile weight");
}

// ---- the open-loop driver -----------------------------------------

namespace
{

serve::LoadGenConfig
testLoadConfig(uint32_t workers)
{
    serve::LoadGenConfig cfg;
    cfg.workers = workers;
    cfg.sched.maxLiveSessions = 3;
    cfg.virtualServers = 2;
    // Slow virtual service keeps sessions live across arrivals, so
    // the admission cap actually bites at this scale.
    cfg.virtualUsPerItem = 20'000;
    return cfg;
}

void
expectSameReport(const serve::LoadReport &a,
                 const serve::LoadReport &b)
{
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.horizonUs, b.horizonUs);
    EXPECT_EQ(a.endUs, b.endUs);
    for (uint32_t c = 0; c < kTrafficClasses; ++c) {
        const serve::LoadClassReport &x = a.classes[c];
        const serve::LoadClassReport &y = b.classes[c];
        EXPECT_EQ(x.offered, y.offered);
        EXPECT_EQ(x.admitted, y.admitted);
        EXPECT_EQ(x.rejectedSessions, y.rejectedSessions);
        EXPECT_EQ(x.sloMet, y.sloMet);
        EXPECT_EQ(x.itemsOffered, y.itemsOffered);
        EXPECT_EQ(x.itemsEnqueued, y.itemsEnqueued);
        EXPECT_EQ(x.itemsRejected, y.itemsRejected);
        EXPECT_EQ(x.flowP50Us, y.flowP50Us);
        EXPECT_EQ(x.flowP95Us, y.flowP95Us);
        EXPECT_EQ(x.flowP99Us, y.flowP99Us);
        EXPECT_EQ(x.flowMaxUs, y.flowMaxUs);
    }
    // Engine logical counters (wall-clock fields excluded).
    EXPECT_EQ(a.engine.admitted, b.engine.admitted);
    EXPECT_EQ(a.engine.rejectedAdmissions,
              b.engine.rejectedAdmissions);
    EXPECT_EQ(a.engine.itemsExecuted, b.engine.itemsExecuted);
}

} // namespace

TEST(LoadGen, ConcurrentMatchesSequential)
{
    const TrafficTrace trace = buildTrace(smallSpec());
    serve::LoadGen seq(testLoadConfig(1));
    serve::LoadGen conc(testLoadConfig(4));
    expectSameReport(seq.run(trace), conc.run(trace));
}

TEST(LoadGen, OverloadRejectsRepeatably)
{
    const TrafficTrace trace = buildTrace(smallSpec());
    serve::LoadGen gen(testLoadConfig(2));
    const serve::LoadReport a = gen.run(trace);
    // The load point is deliberately overloaded: rejections are
    // measured, not avoided, and bookkeeping stays consistent.
    EXPECT_GT(a.rejectedSessions(), 0u);
    EXPECT_EQ(a.offered(), trace.spec.sessions);
    EXPECT_EQ(a.admitted() + a.rejectedSessions(), a.offered());
    EXPECT_EQ(a.engine.itemsExecuted, a.itemsEnqueued());
    EXPECT_GE(a.endUs, a.horizonUs);
    // Same generator, same trace: byte-identical verdicts.
    expectSameReport(a, gen.run(trace));
}

TEST(LoadGen, UnderloadAdmitsEverything)
{
    TraceSpec spec = smallSpec();
    spec.sessions = 4;
    spec.arrivals.ratePerSec = 1.0; // far apart
    serve::LoadGenConfig cfg = testLoadConfig(2);
    cfg.virtualUsPerItem = 100; // fast virtual service
    serve::LoadGen gen(cfg);
    const serve::LoadReport r = gen.run(buildTrace(spec));
    EXPECT_EQ(r.admitted(), 4u);
    EXPECT_EQ(r.rejectedSessions(), 0u);
    EXPECT_EQ(r.itemsRejected(), 0u);
    EXPECT_EQ(r.sloMet(), 4u);
    EXPECT_GT(r.goodputPerSec(), 0.0);
}

TEST(LoadGen, DegenerateConfigsDie)
{
    serve::LoadGenConfig no_servers = testLoadConfig(1);
    no_servers.virtualServers = 0;
    EXPECT_DEATH(serve::LoadGen{no_servers}, "virtual server");

    serve::LoadGenConfig no_service = testLoadConfig(1);
    no_service.virtualUsPerItem = 0;
    EXPECT_DEATH(serve::LoadGen{no_service}, "service time");
}

TEST(LoadGen, ClassMappingIsOneToOne)
{
    EXPECT_EQ(serve::schedClassFor(TrafficClass::Interactive),
              serve::SchedClass::Interactive);
    EXPECT_EQ(serve::schedClassFor(TrafficClass::Bulk),
              serve::SchedClass::Bulk);
}
