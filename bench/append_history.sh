#!/usr/bin/env bash
# Append bench reports to the longitudinal history log.
#
# Each BENCH_<name>.json report (vrex-bench-1 schema) becomes one line
# in bench/history.jsonl keyed by (commit, bench), carrying the full
# metric map so figure trends across commits can be plotted without
# re-running old binaries. Re-running on the same commit is idempotent:
# a (commit, bench) pair already present in the log is skipped, so the
# log never accumulates duplicates from repeated CI runs or local use.
#
# usage: bench/append_history.sh BENCH_foo.json [BENCH_bar.json ...]
#
# The CI bench-drift job runs this warn-only and uploads the result as
# an artifact; committing the refreshed bench/history.jsonl alongside a
# baseline refresh is what persists a new row for posterity.
set -euo pipefail
cd "$(dirname "$0")/.."

[ "$#" -ge 1 ] || { echo "usage: $0 BENCH_*.json..." >&2; exit 2; }

COMMIT=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
DATE=$(git show -s --format=%cs HEAD 2>/dev/null || date -u +%F)
HISTORY=bench/history.jsonl
touch "$HISTORY"

python3 - "$COMMIT" "$DATE" "$HISTORY" "$@" <<'PY'
import json, sys

commit, date, history_path = sys.argv[1:4]
reports = sys.argv[4:]

seen = set()
with open(history_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        seen.add((row.get("commit"), row.get("bench")))

appended = 0
with open(history_path, "a") as out:
    for path in reports:
        with open(path) as f:
            report = json.load(f)
        if report.get("schema") != "vrex-bench-1":
            print(f"skip {path}: not a vrex-bench-1 report", file=sys.stderr)
            continue
        bench = report["bench"]
        if (commit, bench) in seen:
            print(f"skip {bench}: already logged for {commit}")
            continue
        # Flatten the metric records into one map; the panel/row/metric
        # triple is the stable identity drift_check keys on.
        metrics = {}
        for m in report.get("metrics", []):
            key = f'{m["panel"]}/{m["row"]}/{m["metric"]}'
            metrics[key] = m["value"]
        row = {"commit": commit, "date": date, "bench": bench,
               "metrics": metrics}
        out.write(json.dumps(row, sort_keys=True) + "\n")
        seen.add((commit, bench))
        appended += 1

print(f"appended {appended} row(s) to {history_path}")
PY
