/**
 * @file
 * DRAMSim3-style bank/row-buffer DRAM timing model (simplified).
 *
 * The paper integrates DRAMSim3 for DRAM behaviour. This model keeps
 * the part that matters for the evaluation: the effective bandwidth a
 * request stream achieves depends on how contiguous it is, because
 * every chunk that misses the open row pays tRP + tRCD before data
 * can burst. Sequential weight streaming approaches peak; scattered
 * per-token KV gathers do not.
 */

#ifndef VREX_SIM_DRAM_MODEL_HH
#define VREX_SIM_DRAM_MODEL_HH

#include <cstdint>

namespace vrex
{

/** Timing and geometry of one DRAM device configuration. */
struct DramConfig
{
    double peakGBs = 204.8;
    uint32_t channels = 16;
    uint32_t rowBytes = 2048;   //!< Row-buffer bytes per channel.
    double tRpNs = 15.0;        //!< Precharge.
    double tRcdNs = 15.0;       //!< Activate to column.
    double tCasNs = 15.0;       //!< Column access.

    static DramConfig lpddr5();
    static DramConfig hbm2e();
    static DramConfig ddr4();
};

/** Analytic bank-conflict DRAM model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config) : cfg(config) {}

    /**
     * Seconds to service @p bytes issued as contiguous chunks of
     * @p chunk_bytes each (chunks randomly scattered, so each chunk
     * opens its own row(s)).
     */
    double streamSeconds(double bytes, double chunk_bytes) const;

    /** Achieved bandwidth fraction for a chunked stream. */
    double efficiency(double chunk_bytes) const;

    const DramConfig &config() const { return cfg; }

  private:
    DramConfig cfg;
};

} // namespace vrex

#endif // VREX_SIM_DRAM_MODEL_HH
