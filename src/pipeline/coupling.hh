/**
 * @file
 * Functional-to-timing coupling: the selection ratios measured by the
 * functional pipeline parameterize the timing simulator's
 * MethodModel, so both halves of the reproduction describe the same
 * algorithm operating point.
 */

#ifndef VREX_PIPELINE_COUPLING_HH
#define VREX_PIPELINE_COUPLING_HH

#include "pipeline/streaming_session.hh"
#include "sim/method_model.hh"

namespace vrex
{

/** Override a method's stage ratios with measured ones. */
MethodModel coupleRatios(MethodModel base,
                         const SessionRunResult &measured);

/** Also couple the measured mean cluster size (ReSV variants). */
MethodModel coupleResv(MethodModel base,
                       const SessionRunResult &measured,
                       double avg_cluster_size);

} // namespace vrex

#endif // VREX_PIPELINE_COUPLING_HH
