#include "core/hash_encoder.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/ops.hh"

namespace vrex
{

HashEncoder::HashEncoder(uint32_t key_dim, uint32_t n_bits,
                         uint64_t seed)
    : dim(key_dim), nBits(n_bits), planes(n_bits, key_dim)
{
    VREX_ASSERT(key_dim > 0 && n_bits > 0, "bad hash encoder shape");
    Rng rng(seed, "hash-hyperplanes");
    rng.fillGaussian(planes.raw(), planes.size(), 1.0f);
}

BitSig
HashEncoder::encode(const float *key) const
{
    BitSig sig(nBits);
    for (uint32_t b = 0; b < nBits; ++b)
        sig.set(b, dot(key, planes.row(b), dim) > 0.0f);
    return sig;
}

std::vector<BitSig>
HashEncoder::encodeRows(const Matrix &keys) const
{
    VREX_ASSERT(keys.cols() == dim, "key width mismatch");
    std::vector<BitSig> sigs;
    sigs.reserve(keys.rows());
    for (uint32_t r = 0; r < keys.rows(); ++r)
        sigs.push_back(encode(keys.row(r)));
    return sigs;
}

} // namespace vrex
