/**
 * @file
 * MQSim-style multi-queue SSD read model (simplified).
 *
 * Edge V-Rex offloads KV to an M.2 NVMe device (Kioxia BG6 class).
 * The model prices a read burst by flash-channel parallelism, per-page
 * read latency amortized over the queue depth, and the channel/link
 * bandwidth cap.
 */

#ifndef VREX_SIM_SSD_MODEL_HH
#define VREX_SIM_SSD_MODEL_HH

#include <cstdint>

namespace vrex
{

/** NVMe device parameters. */
struct SsdConfig
{
    uint32_t channels = 4;
    uint32_t diesPerChannel = 16; //!< Flash dies sharing a channel.
    uint32_t queueDepth = 32;
    uint32_t pageBytes = 4096;
    double pageReadUs = 55.0;     //!< tR of one flash page.
    double channelGBs = 1.2;      //!< Per-channel transfer rate.

    static SsdConfig bg6();
};

/** Read-path timing of the SSD. */
class SsdModel
{
  public:
    explicit SsdModel(const SsdConfig &config) : cfg(config) {}

    /** Seconds to read @p bytes issued as @p requests commands. */
    double readSeconds(double bytes, double requests) const;

    /** Aggregate sequential read bandwidth (bytes/s). */
    double
    peakBandwidth() const
    {
        return cfg.channels * cfg.channelGBs * 1e9;
    }

    const SsdConfig &config() const { return cfg; }

  private:
    SsdConfig cfg;
};

} // namespace vrex

#endif // VREX_SIM_SSD_MODEL_HH
