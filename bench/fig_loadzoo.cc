/**
 * @file
 * Open-loop workload-zoo bench (beyond the paper's figures,
 * supporting the serving story of §VI): every scenario in the
 * traffic-trace catalog (video/workload.hh) is replayed through the
 * open-loop load generator (serve/loadgen.hh) against one fixed
 * engine + virtual-capacity configuration, and the resulting
 * overload behaviour — admission rejections, item backpressure,
 * per-class SLO attainment and goodput — is reported as one panel
 * per scenario.
 *
 * Every metric is either a logical counter or derived from the
 * deterministic virtual clock, so the panels sit under the drift
 * gate with their own committed baseline
 * (`bench/loadzoo_baseline.json`, functional tolerance band): the
 * arrival processes draw from seeded streams and the driver's
 * admission/retirement decisions are a pure function of
 * (trace, config). Wall-clock latency never appears as a metric.
 *
 * The load point is chosen so overload is *real*: the virtual
 * capacity (servers / us-per-item) sits near the offered rate of the
 * calmer scenarios, the admission cap bites under the bursty ones,
 * and the bounded per-session queue clips the heavy-tailed marathon
 * scripts — rejection rates and SLO attainment move per scenario
 * instead of saturating at 0 or 1.
 */

#include <string>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "serve/loadgen.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** The fixed load point every scenario is measured at. */
serve::LoadGenConfig
loadPoint()
{
    serve::LoadGenConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();
    cfg.sched.maxLiveSessions = 10;
    cfg.sched.maxQueuedPerSession = 256;
    cfg.sched.classWeights = {2, 1};
    cfg.virtualServers = 4;
    cfg.virtualUsPerItem = 3000;
    cfg.sloUs = {400'000, 4'000'000};
    return cfg;
}

void
run(bench::Reporter &rep)
{
    const serve::LoadGenConfig cfg = loadPoint();
    for (const std::string &name : traceZoo()) {
        // Half the catalog's session count: the arrival *rates* (and
        // with them the overload behaviour) are unchanged, only the
        // sample size shrinks — enough for stable deterministic
        // metrics at roughly half the functional-execution cost.
        TraceSpec spec = traceSpecByName(name);
        spec.sessions = (spec.sessions + 1) / 2;
        const TrafficTrace trace = buildTrace(spec);
        serve::LoadGen gen(cfg);
        const serve::LoadReport r = gen.run(trace);

        rep.beginPanel(name,
                       "open-loop scenario '" + name + "' (" +
                           arrivalKindName(
                               trace.spec.arrivals.kind) +
                           " arrivals)");
        rep.add("offered", "sessions", r.offered(), "", 0);
        rep.add("offered", "unit_items",
                static_cast<double>(trace.totalUnitItems()), "", 0);
        rep.add("offered", "horizon", r.horizonUs / 1e6, "s", 3);

        for (uint32_t c = 0; c < kTrafficClasses; ++c) {
            const auto cls = static_cast<TrafficClass>(c);
            const serve::LoadClassReport &cr = r.forClass(cls);
            const char *row = trafficClassName(cls);
            if (cr.offered == 0)
                continue; // class absent from this scenario
            rep.add(row, "offered", cr.offered, "", 0);
            rep.add(row, "admitted", cr.admitted, "", 0);
            rep.add(row, "rejected", cr.rejectedSessions, "", 0);
            rep.add(row, "rejection_rate",
                    100.0 * cr.rejectionRate(), "%", 1);
            rep.add(row, "items_enqueued",
                    static_cast<double>(cr.itemsEnqueued), "", 0);
            rep.add(row, "items_rejected",
                    static_cast<double>(cr.itemsRejected), "", 0);
            rep.add(row, "slo_attainment",
                    100.0 * cr.attainment(), "%", 1);
            rep.add(row, "flow_p50", cr.flowP50Us / 1e3, "ms", 1);
            rep.add(row, "flow_p95", cr.flowP95Us / 1e3, "ms", 1);
        }

        rep.add("total", "goodput", r.goodputPerSec(),
                "sessions/s", 2);
        rep.add("total", "item_throughput",
                r.itemThroughputPerSec(), "items/s", 1);
        rep.add("total", "items_executed",
                static_cast<double>(r.engine.itemsExecuted), "", 0);
        rep.add("total", "rejection_rate",
                100.0 * r.rejectionRate(), "%", 1);
        rep.note("admission cap 10, queue bound 256 items, virtual "
                 "capacity 4 servers x 3 ms/item, SLO 0.4 s "
                 "interactive / 4 s bulk (virtual clock)");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("loadzoo", argc, argv, run);
}
