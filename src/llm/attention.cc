#include "llm/attention.hh"

#include <cmath>
#include <vector>

#include "tensor/ops.hh"

namespace vrex
{

double
LayerSelection::selectedRatio(uint32_t past_len) const
{
    if (past_len == 0 || kvHeads.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &h : kvHeads)
        sum += static_cast<double>(h.selectedCount(past_len)) / past_len;
    return sum / static_cast<double>(kvHeads.size());
}

void
attentionForward(const ModelConfig &cfg, const Matrix &q,
                 const LayerKV &kv, uint32_t past_len,
                 const LayerSelection *sel, Matrix &out)
{
    const uint32_t head_dim = cfg.headDim();
    const uint32_t n_heads = cfg.nHeads;
    const uint32_t group = cfg.groupSize();
    const uint32_t block_len = q.rows();
    VREX_ASSERT(kv.keys.rows() == past_len + block_len,
                "attention expects the block appended to the cache");
    VREX_ASSERT(sel == nullptr ||
                sel->kvHeads.size() == cfg.nKvHeads,
                "selection has wrong head count");

    out = Matrix(block_len, cfg.dModel);
    std::vector<float> scores;
    std::vector<uint32_t> attended;

    for (uint32_t h = 0; h < n_heads; ++h) {
        const uint32_t kv_head = h / group;
        const uint32_t q_off = h * head_dim;
        const uint32_t kv_off = kv_head * head_dim;
        const HeadSelection *hsel =
            sel ? &sel->kvHeads[kv_head] : nullptr;

        for (uint32_t t = 0; t < block_len; ++t) {
            // Tokens this query may attend: selected past tokens plus
            // the causal prefix of the current block.
            attended.clear();
            if (!hsel || hsel->selectAll) {
                for (uint32_t i = 0; i < past_len; ++i)
                    attended.push_back(i);
            } else {
                attended.assign(hsel->indices.begin(),
                                hsel->indices.end());
            }
            for (uint32_t i = 0; i <= t; ++i)
                attended.push_back(past_len + i);

            scores.resize(attended.size());
            const float *qv = q.row(t) + q_off;
            const float scale = 1.0f / std::sqrt((float)head_dim);
            for (size_t i = 0; i < attended.size(); ++i) {
                const float *kvec = kv.keys.row(attended[i]) + kv_off;
                scores[i] = dot(qv, kvec, head_dim) * scale;
            }
            softmax(scores.data(),
                    static_cast<uint32_t>(scores.size()));

            float *ov = out.row(t) + q_off;
            for (size_t i = 0; i < attended.size(); ++i) {
                const float p = scores[i];
                if (p == 0.0f)
                    continue;
                const float *vvec = kv.values.row(attended[i]) + kv_off;
                for (uint32_t d = 0; d < head_dim; ++d)
                    ov[d] += p * vvec[d];
            }
        }
    }
}

} // namespace vrex
