#include "common/bench_compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/bench_report.hh"
#include "common/json_lite.hh"

namespace vrex::bench
{

namespace
{

const char kReportSchema[] = "vrex-bench-1";
const char kBaselineSchema[] = "vrex-bench-baseline-1";

bool
parseGate(const std::string &text, Gate &out)
{
    if (text == "band")
        out = Gate::Band;
    else if (text == "floor")
        out = Gate::Floor;
    else if (text == "ceiling")
        out = Gate::Ceiling;
    else if (text == "info")
        out = Gate::Info;
    else
        return false;
    return true;
}

/**
 * Convert one JSON record object into a Record. `reportBench` is the
 * enclosing report's bench name ("" for baselines, which mix benches).
 */
bool
recordFromJson(const json::Value &v, const std::string &reportBench,
               Record &out, std::string &err)
{
    if (!v.isObject()) {
        err = "metric record is not an object";
        return false;
    }
    for (const char *field : {"bench", "panel", "row", "metric"}) {
        const json::Value *f = v.find(field);
        if (!f || !f->isString()) {
            err = std::string("record field '") + field +
                  "' missing or not a string";
            return false;
        }
    }
    const json::Value *value = v.find("value");
    if (!value || !(value->isNumber() || value->isNull())) {
        err = "record field 'value' missing or not a number/null";
        return false;
    }
    const json::Value *unit = v.find("unit");
    if (!unit || !unit->isString()) {
        err = "record field 'unit' missing or not a string";
        return false;
    }
    out.bench = v.find("bench")->str();
    out.panel = v.find("panel")->str();
    out.row = v.find("row")->str();
    out.metric = v.find("metric")->str();
    out.value = value->isNull()
        ? std::numeric_limits<double>::quiet_NaN() : value->number();
    out.unit = unit->str();
    out.gate = Gate::Band;
    if (const json::Value *gate = v.find("gate")) {
        if (!gate->isString() ||
            !parseGate(gate->str(), out.gate)) {
            err = "record field 'gate' must be one of "
                  "band/floor/ceiling/info";
            return false;
        }
    }
    if (!reportBench.empty() && out.bench != reportBench) {
        err = "record bench '" + out.bench +
              "' does not match report bench '" + reportBench + "'";
        return false;
    }
    return true;
}

bool
hasDuplicateKeys(const std::vector<Record> &records, std::string &dup)
{
    std::unordered_set<std::string> seen;
    for (const auto &r : records) {
        if (!seen.insert(r.key()).second) {
            dup = r.pretty();
            return true;
        }
    }
    return false;
}

} // namespace

const char *
gateName(Gate gate)
{
    switch (gate) {
      case Gate::Band:
        return "band";
      case Gate::Floor:
        return "floor";
      case Gate::Ceiling:
        return "ceiling";
      case Gate::Info:
        return "info";
    }
    return "unknown";
}

std::string
Record::key() const
{
    return bench + '\x1f' + panel + '\x1f' + row + '\x1f' + metric;
}

std::string
Record::pretty() const
{
    return bench + "/" + panel + "/" + row + "/" + metric;
}

bool
loadReport(const std::string &jsonText, LoadedReport &out,
           std::string &err)
{
    json::Value doc = json::parse(jsonText, &err);
    if (!doc.isObject()) {
        if (err.empty())
            err = "report is not a JSON object";
        return false;
    }
    if (doc.strOr("schema", "") != kReportSchema) {
        err = "missing or unsupported schema tag (want vrex-bench-1)";
        return false;
    }
    out.bench = doc.strOr("bench", "");
    if (out.bench.empty()) {
        err = "missing 'bench' name";
        return false;
    }
    const json::Value *metrics = doc.find("metrics");
    if (!metrics || !metrics->isArray()) {
        err = "missing 'metrics' array";
        return false;
    }
    out.records.clear();
    for (const auto &m : metrics->array()) {
        Record r;
        if (!recordFromJson(m, out.bench, r, err))
            return false;
        out.records.push_back(std::move(r));
    }
    std::string dup;
    if (hasDuplicateKeys(out.records, dup)) {
        err = "duplicate record " + dup;
        return false;
    }
    return true;
}

namespace
{

/** Split one CSV line; handles quoted fields with doubled quotes. */
bool
splitCsvLine(const std::string &line, std::vector<std::string> &fields,
             std::string &err)
{
    fields.clear();
    std::string cur;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"' && cur.empty()) {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (quoted) {
        err = "unterminated quoted CSV field";
        return false;
    }
    fields.push_back(cur);
    return true;
}

} // namespace

bool
loadCsv(const std::string &csvText, std::vector<Record> &out,
        std::string &err)
{
    out.clear();
    size_t pos = 0;
    size_t lineNo = 0;
    bool sawHeader = false;
    while (pos < csvText.size()) {
        size_t end = csvText.find('\n', pos);
        if (end == std::string::npos)
            end = csvText.size();
        std::string line = csvText.substr(pos, end - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        pos = end + 1;
        ++lineNo;
        if (line.empty())
            continue;
        std::vector<std::string> f;
        if (!splitCsvLine(line, f, err)) {
            err += " on line " + std::to_string(lineNo);
            return false;
        }
        if (!sawHeader) {
            if (line != "bench,panel,row,metric,value,unit") {
                err = "bad CSV header '" + line + "'";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (f.size() != 6) {
            err = "expected 6 CSV fields on line " +
                  std::to_string(lineNo);
            return false;
        }
        Record r;
        r.bench = f[0];
        r.panel = f[1];
        r.row = f[2];
        r.metric = f[3];
        r.unit = f[5];
        char *endp = nullptr;
        r.value = std::strtod(f[4].c_str(), &endp);
        if (f[4].empty() || endp != f[4].c_str() + f[4].size()) {
            err = "bad CSV value '" + f[4] + "' on line " +
                  std::to_string(lineNo);
            return false;
        }
        out.push_back(std::move(r));
    }
    if (!sawHeader) {
        err = "empty CSV document";
        return false;
    }
    std::string dup;
    if (hasDuplicateKeys(out, dup)) {
        err = "duplicate record " + dup;
        return false;
    }
    return true;
}

bool
sameRecords(const LoadedReport &jsonReport,
            const std::vector<Record> &csv, std::string &err)
{
    if (jsonReport.records.size() != csv.size()) {
        err = "JSON has " + std::to_string(jsonReport.records.size()) +
              " records, CSV has " + std::to_string(csv.size());
        return false;
    }
    for (size_t i = 0; i < csv.size(); ++i) {
        const Record &a = jsonReport.records[i];
        const Record &b = csv[i];
        if (a.key() != b.key() || a.unit != b.unit) {
            err = "record " + std::to_string(i) + " differs: " +
                  a.pretty() + " vs " + b.pretty();
            return false;
        }
        bool equal = a.value == b.value ||
                     (std::isnan(a.value) && std::isnan(b.value));
        if (!equal) {
            err = "record " + a.pretty() + " value differs: " +
                  formatValue(a.value) + " vs " + formatValue(b.value);
            return false;
        }
    }
    return true;
}

double
Baseline::relTolFor(const std::string &bench) const
{
    for (const auto &[name, tol] : benchRelTol) {
        if (name == bench)
            return tol;
    }
    return defaultRelTol;
}

bool
loadBaseline(const std::string &jsonText, Baseline &out,
             std::string &err)
{
    json::Value doc = json::parse(jsonText, &err);
    if (!doc.isObject()) {
        if (err.empty())
            err = "baseline is not a JSON object";
        return false;
    }
    if (doc.strOr("schema", "") != kBaselineSchema) {
        err = "missing or unsupported baseline schema tag "
              "(want vrex-bench-baseline-1)";
        return false;
    }
    out.defaultRelTol = doc.numberOr("default_rel_tol", 0.05);
    out.defaultAbsTol = doc.numberOr("default_abs_tol", 1e-6);
    out.benchRelTol.clear();
    if (const json::Value *tols = doc.find("bench_rel_tol")) {
        if (!tols->isObject()) {
            err = "'bench_rel_tol' is not an object";
            return false;
        }
        for (const auto &[name, tol] : tols->members()) {
            if (!tol.isNumber()) {
                err = "bench_rel_tol." + name + " is not a number";
                return false;
            }
            out.benchRelTol.emplace_back(name, tol.number());
        }
    }
    const json::Value *metrics = doc.find("metrics");
    if (!metrics || !metrics->isArray()) {
        err = "missing 'metrics' array";
        return false;
    }
    out.records.clear();
    for (const auto &m : metrics->array()) {
        Record r;
        if (!recordFromJson(m, "", r, err))
            return false;
        out.records.push_back(std::move(r));
    }
    std::string dup;
    if (hasDuplicateKeys(out.records, dup)) {
        err = "duplicate record " + dup;
        return false;
    }
    return true;
}

std::string
renderBaseline(const Baseline &b)
{
    std::string out = "{\n";
    out += "  \"schema\": \"vrex-bench-baseline-1\",\n";
    out += "  \"default_rel_tol\": " + formatValue(b.defaultRelTol) +
           ",\n";
    out += "  \"default_abs_tol\": " + formatValue(b.defaultAbsTol) +
           ",\n";
    out += "  \"bench_rel_tol\": {";
    for (size_t i = 0; i < b.benchRelTol.size(); ++i) {
        out += i ? ", " : "";
        out += json::quote(b.benchRelTol[i].first) + ": " +
               formatValue(b.benchRelTol[i].second);
    }
    out += "},\n";
    out += "  \"metrics\": [";
    for (size_t i = 0; i < b.records.size(); ++i) {
        const Record &r = b.records[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"bench\": " + json::quote(r.bench);
        out += ", \"panel\": " + json::quote(r.panel);
        out += ", \"row\": " + json::quote(r.row);
        out += ", \"metric\": " + json::quote(r.metric);
        out += ", \"value\": ";
        out += std::isfinite(r.value) ? formatValue(r.value) : "null";
        out += ", \"unit\": " + json::quote(r.unit);
        if (r.gate != Gate::Band)
            out += std::string(", \"gate\": \"") + gateName(r.gate) +
                   "\"";
        out += "}";
    }
    out += b.records.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
DriftIssue::describe() const
{
    switch (kind) {
      case Kind::MissingMetric:
        return "missing metric " + base.pretty() + " (baseline " +
               formatValue(base.value) + base.unit + ")";
      case Kind::UnitMismatch:
        return "unit mismatch for " + base.pretty() + ": baseline '" +
               base.unit + "'";
      case Kind::OutOfTolerance:
        switch (base.gate) {
          case Gate::Floor:
            return "below floor for " + base.pretty() + ": floor " +
                   formatValue(base.value) + base.unit + ", got " +
                   formatValue(got) + base.unit;
          case Gate::Ceiling:
            return "above ceiling for " + base.pretty() +
                   ": ceiling " + formatValue(base.value) + base.unit +
                   ", got " + formatValue(got) + base.unit;
          default:
            break;
        }
        return "drift in " + base.pretty() + ": baseline " +
               formatValue(base.value) + base.unit + ", got " +
               formatValue(got) + base.unit;
    }
    return "unknown issue";
}

DriftReport
compareToBaseline(const Baseline &baseline,
                  const std::vector<LoadedReport> &runs)
{
    DriftReport report;

    std::unordered_map<std::string, const Record *> candidates;
    std::unordered_set<std::string> runBenches;
    for (const auto &run : runs) {
        runBenches.insert(run.bench);
        for (const auto &r : run.records)
            candidates.emplace(r.key(), &r);
    }

    std::unordered_set<std::string> baselineKeys;
    std::unordered_set<std::string> baselineBenches;
    for (const Record &base : baseline.records) {
        baselineKeys.insert(base.key());
        baselineBenches.insert(base.bench);
        if (!runBenches.count(base.bench))
            continue;  // That bench was not part of this run.
        ++report.compared;
        auto it = candidates.find(base.key());
        if (it == candidates.end()) {
            report.issues.push_back(
                {DriftIssue::Kind::MissingMetric, base, 0.0});
            continue;
        }
        const Record &got = *it->second;
        if (got.unit != base.unit) {
            report.issues.push_back(
                {DriftIssue::Kind::UnitMismatch, base, got.value});
            continue;
        }
        if (base.gate == Gate::Info)
            continue;  // Recorded for humans; never compared.
        if (std::isnan(base.value) && std::isnan(got.value))
            continue;
        double tol = std::max(
            baseline.defaultAbsTol,
            baseline.relTolFor(base.bench) * std::fabs(base.value));
        bool out_of_gate = false;
        switch (base.gate) {
          case Gate::Band:
            out_of_gate = !(std::fabs(got.value - base.value) <= tol);
            break;
          case Gate::Floor:
            out_of_gate = !(got.value >= base.value - tol);
            break;
          case Gate::Ceiling:
            out_of_gate = !(got.value <= base.value + tol);
            break;
          case Gate::Info:
            break;
        }
        if (out_of_gate) {
            report.issues.push_back(
                {DriftIssue::Kind::OutOfTolerance, base, got.value});
        }
    }

    for (const auto &run : runs) {
        if (!baselineBenches.count(run.bench))
            report.benchesWithoutBaseline.push_back(run.bench);
        for (const auto &r : run.records) {
            if (!baselineKeys.count(r.key()))
                ++report.newMetrics;
        }
    }
    return report;
}

} // namespace vrex::bench
