/**
 * @file
 * Table III reproduction: area and power breakdown of one V-Rex core
 * (14 nm, 0.8 V, 800 MHz) and the derived system-level comparisons
 * (§VI-F): DRE is ~2.0% of area / ~2.2% of power; V-Rex8 is far
 * smaller than AGX Orin, V-Rex48 far smaller than A100.
 */

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/energy_model.hh"
#include "sim/hw_config.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    VRexCoreSpec spec;
    rep.beginPanel("core", "Table III: breakdown of area and power "
                           "(1 core)");
    for (const auto &c : spec.all()) {
        rep.add(c.name, "area", c.areaMm2, "mm2", 2);
        rep.add(c.name, "area_share",
                100.0 * c.areaMm2 / spec.totalAreaMm2(), "%", 2);
        rep.add(c.name, "power", c.powerMw, "mW", 2);
        rep.add(c.name, "power_share",
                100.0 * c.powerMw / spec.totalPowerMw(), "%", 2);
    }
    rep.add("Total", "area", spec.totalAreaMm2(), "mm2", 2);
    rep.add("Total", "power", spec.totalPowerMw(), "mW", 2);
    rep.add("DRE share", "area_share",
            100.0 * spec.dreAreaFraction(), "%", 1);
    rep.add("DRE share", "power_share",
            100.0 * spec.drePowerFraction(), "%", 1);
    rep.note("paper: DRE 2.0% of area, 2.2% of power");

    rep.beginPanel("system", "Scaled configurations vs GPUs");
    auto v8 = AcceleratorConfig::vrex8();
    auto v48 = AcceleratorConfig::vrex48();
    auto agx = AcceleratorConfig::agxOrin();
    auto a100 = AcceleratorConfig::a100();
    rep.add("V-Rex8", "area", 8 * spec.totalAreaMm2(), "mm2", 2);
    rep.add("V-Rex8", "gpu_area", 200.0, "mm2", 0);
    rep.add("V-Rex8", "power", v8.systemPowerW, "W", 0);
    rep.add("V-Rex8", "gpu_power", agx.systemPowerW, "W", 0);
    rep.add("V-Rex8", "power_saving",
            100.0 * (1.0 - v8.systemPowerW / agx.systemPowerW), "%",
            1);
    rep.add("V-Rex48", "area", 48 * spec.totalAreaMm2(), "mm2", 2);
    rep.add("V-Rex48", "gpu_area", 826.0, "mm2", 0);
    rep.add("V-Rex48", "power", v48.systemPowerW, "W", 2);
    rep.add("V-Rex48", "gpu_power", a100.systemPowerW, "W", 0);
    rep.add("V-Rex48", "power_saving",
            100.0 * (1.0 - v48.systemPowerW / a100.systemPowerW), "%",
            1);
    rep.note("gpu_area/gpu_power columns are the compared GPU "
             "(AGX Orin for V-Rex8, A100 for V-Rex48)");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("table3", argc, argv, run);
}
