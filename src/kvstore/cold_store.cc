#include "kvstore/cold_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace vrex
{

// ---------------------------------------------------------------------
// MemoryColdStore

void
MemoryColdStore::put(uint64_t key, const std::vector<uint8_t> &blob)
{
    LockGuard lock(mu);
    xfer.offloadedBytes += blob.size();
    ++xfer.touchedTokens;
    blobs[key] = blob;
}

std::vector<uint8_t>
MemoryColdStore::get(uint64_t key) const
{
    LockGuard lock(mu);
    const auto it = blobs.find(key);
    if (it == blobs.end())
        throw std::out_of_range("MemoryColdStore: no blob for key " +
                                std::to_string(key));
    xfer.fetchedBytes += it->second.size();
    ++xfer.fetchedTokens;
    return it->second;
}

bool
MemoryColdStore::contains(uint64_t key) const
{
    LockGuard lock(mu);
    return blobs.count(key) > 0;
}

void
MemoryColdStore::erase(uint64_t key)
{
    LockGuard lock(mu);
    blobs.erase(key);
}

uint64_t
MemoryColdStore::totalBytes() const
{
    LockGuard lock(mu);
    uint64_t bytes = 0;
    for (const auto &[key, blob] : blobs)
        bytes += blob.size();
    return bytes;
}

uint64_t
MemoryColdStore::count() const
{
    LockGuard lock(mu);
    return blobs.size();
}

TransferStats
MemoryColdStore::stats() const
{
    LockGuard lock(mu);
    return xfer;
}

// ---------------------------------------------------------------------
// FileColdStore

FileColdStore::FileColdStore(std::string directory,
                             std::string file_prefix)
    : dir(std::move(directory)), prefix(std::move(file_prefix))
{
    VREX_ASSERT(!dir.empty(), "FileColdStore needs a directory");
}

std::string
FileColdStore::pathFor(uint64_t key) const
{
    return dir + "/" + prefix + std::to_string(key) + ".blob";
}

void
FileColdStore::put(uint64_t key, const std::vector<uint8_t> &blob)
{
    LockGuard lock(mu);
    fs::create_directories(dir);
    const std::string path = pathFor(key);
    // Write-then-rename so a concurrent crash never leaves a torn
    // blob under the final name (the checksum would catch it, but a
    // clean store beats a detected-corrupt one).
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("FileColdStore: cannot write " +
                                     tmp);
        out.write(reinterpret_cast<const char *>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        if (!out)
            throw std::runtime_error("FileColdStore: short write to " +
                                     tmp);
    }
    fs::rename(tmp, path);
    xfer.offloadedBytes += blob.size();
    ++xfer.touchedTokens;
}

std::vector<uint8_t>
FileColdStore::get(uint64_t key) const
{
    LockGuard lock(mu);
    const std::string path = pathFor(key);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw std::out_of_range("FileColdStore: no blob for key " +
                                std::to_string(key));
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> blob(static_cast<size_t>(size));
    in.read(reinterpret_cast<char *>(blob.data()), size);
    if (!in)
        throw std::runtime_error("FileColdStore: short read from " +
                                 path);
    xfer.fetchedBytes += blob.size();
    ++xfer.fetchedTokens;
    return blob;
}

bool
FileColdStore::contains(uint64_t key) const
{
    LockGuard lock(mu);
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

void
FileColdStore::erase(uint64_t key)
{
    LockGuard lock(mu);
    std::error_code ec;
    fs::remove(pathFor(key), ec);
}

uint64_t
FileColdStore::totalBytes() const
{
    LockGuard lock(mu);
    std::error_code ec;
    uint64_t bytes = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".blob")
            bytes += entry.file_size(ec);
    }
    return bytes;
}

uint64_t
FileColdStore::count() const
{
    LockGuard lock(mu);
    std::error_code ec;
    uint64_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".blob")
            ++n;
    }
    return n;
}

TransferStats
FileColdStore::stats() const
{
    LockGuard lock(mu);
    return xfer;
}

} // namespace vrex
