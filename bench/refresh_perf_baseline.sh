#!/usr/bin/env bash
# Refresh bench/perf_baseline.json from a micro_core run on THIS
# machine.
#
# The perf baseline floor-gates the scalar-vs-SIMD speedup ratios of
# the dispatched DRE kernels (see src/core/README.md): a row whose
# measured speedup is >= 2x gets a floor at half the measured value,
# everything else (and every raw ns/op timing) is recorded as "info"
# and never compared. Regenerate it when the kernels change shape, a
# new ISA variant lands, or the gating machine class changes — and
# run it on a machine representative of CI, since floors written on a
# fast desktop may be unreachable on shared runners.
#
# usage: bench/refresh_perf_baseline.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/micro_core" --quiet --json "$TMP/BENCH_micro_core.json" \
    --write-perf-baseline bench/perf_baseline.json

# Sanity: the run that produced the baseline must pass its own gate.
"$BUILD/bench/drift_check" --baseline bench/perf_baseline.json \
    "$TMP/BENCH_micro_core.json"
