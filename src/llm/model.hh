/**
 * @file
 * The streaming video LLM backbone: a stack of decoder layers driven
 * in the paper's two stages — the *iterative prefill* stage (frames
 * and question tokens arrive block by block and accumulate KV) and
 * the *generation* stage (greedy decoding against the accumulated
 * cache).
 */

#ifndef VREX_LLM_MODEL_HH
#define VREX_LLM_MODEL_HH

#include <memory>
#include <vector>

#include "llm/decoder_layer.hh"
#include "llm/kv_cache.hh"
#include "llm/selection.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Selection accounting for one forwarded block. */
struct BlockStats
{
    TokenStage stage;
    uint32_t blockLen = 0;
    uint32_t pastLen = 0;
    /** Mean selected-token ratio per layer. */
    std::vector<double> layerRatios;
    /** Selected token count per [layer][kvHead]. */
    std::vector<std::vector<uint32_t>> selectedPerHead;

    double meanRatio() const;
};

/** The decoder-only backbone with synthetic deterministic weights. */
class Model
{
  public:
    Model(const ModelConfig &config, uint64_t seed = 42);

    const ModelConfig &config() const { return cfg; }
    KVCache &cache() { return kv; }
    const KVCache &cache() const { return kv; }

    /** Install the retrieval policy (not owned); nullptr = full. */
    void setPolicy(SelectionPolicy *policy) { selPolicy = policy; }

    /** Embed token ids into model space. */
    Matrix embedTokens(const std::vector<uint32_t> &ids) const;

    /**
     * Run one block through all layers (iterative prefill step or a
     * generation step). @p x rows become KV entries; returns selection
     * accounting and records it in history().
     */
    BlockStats forwardBlock(Matrix x, int32_t frame_id, TokenStage stage);

    /**
     * Fused single-token forwardBlock() over N independent models
     * sharing one geometry: row i of @p x is model i's token
     * embedding. Projections are fused across models (rows with
     * equal weight seeds share one weight stream via the row-grouped
     * matmul); caches, policies, history and hidden state advance
     * per model exactly as a solo forwardBlock() would, so every
     * model's bytes are identical to N sequential calls.
     */
    static std::vector<BlockStats>
    forwardBlockBatched(const std::vector<Model *> &models, Matrix x,
                        int32_t frame_id, TokenStage stage);

    /** Fused lastLogits() over N models: row i of the result equals
     *  models[i]->lastLogits() bit for bit (same per-element dot
     *  against that model's tied embedding). */
    static Matrix lastLogitsBatched(const std::vector<Model *> &models);

    /** Prefill one video frame's projected embeddings. */
    BlockStats prefillFrame(const Matrix &frame_embeds, int32_t frame_id);

    /** Prefill question text tokens. */
    BlockStats prefillText(const std::vector<uint32_t> &ids);

    /** Greedy-decode @p max_tokens; returns generated token ids. */
    std::vector<uint32_t> generate(uint32_t max_tokens);

    /** Hidden state of the most recent token (post final norm). */
    const std::vector<float> &lastHidden() const { return lastHid; }

    /** Logits of the most recent token (tied embedding). */
    std::vector<float> lastLogits() const;

    /** All block stats since the last clearHistory(). */
    const std::vector<BlockStats> &history() const { return blockHistory; }
    void clearHistory() { blockHistory.clear(); }

    /** Reset the cache, the policy state, and history. */
    void resetSession();

    /** The installed retrieval policy (nullptr = full attention). */
    SelectionPolicy *policy() const { return selPolicy; }

    /** The weight seed this model was constructed with: equal
     *  (config, seed) pairs have byte-identical weights, the
     *  grouping key of the batched execution path. */
    uint64_t seed() const { return weightSeed; }

    /**
     * Serialize the mutable model state: KV cache, last hidden
     * state, and block history. Weights are NOT serialized — they
     * are deterministic from (config, seed) and the restoring model
     * must be constructed with the same pair. Policy state is
     * serialized separately by the owner (the policy object lives
     * outside the model).
     */
    void serializeState(serial::ByteWriter &w) const;
    void restoreState(serial::ByteReader &r);

  private:
    ModelConfig cfg;
    uint64_t weightSeed;
    KVCache kv;
    std::vector<DecoderLayer> layers;
    Matrix embedding;             //!< vocab x dModel (tied output).
    std::vector<float> finalNorm;
    SelectionPolicy *selPolicy = nullptr;
    std::vector<float> lastHid;
    std::vector<BlockStats> blockHistory;
};

} // namespace vrex

#endif // VREX_LLM_MODEL_HH
