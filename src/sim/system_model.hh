/**
 * @file
 * The end-to-end system timing/energy model: composes the compute,
 * PCIe, DRAM, SSD, and DRE models with the per-layer overlap schedule
 * of Fig. 5 to produce per-frame latency, TPOT, FPS, energy, and the
 * session-level breakdowns behind Figs. 4, 13, 14, 15, 16 and 18.
 */

#ifndef VREX_SIM_SYSTEM_MODEL_HH
#define VREX_SIM_SYSTEM_MODEL_HH

#include <cstdint>

#include "llm/config.hh"
#include "sim/compute_model.hh"
#include "sim/dre_model.hh"
#include "sim/energy_model.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/pcie_model.hh"
#include "sim/ssd_model.hh"

namespace vrex
{

/** One simulated configuration point. */
struct RunConfig
{
    ModelConfig model = ModelConfig::llama3_8b();
    AcceleratorConfig hw;
    MethodModel method;
    uint32_t cacheTokens = 0;    //!< Pre-existing KV length S.
    uint32_t batch = 1;
    double tokensPerFrame = 10.0;  //!< VideoLLM-Online style.
    VisionConfig vision;
    uint32_t hashBits = 32;        //!< ReSV N_hp for the DRE model.
};

/** Timing/energy of one phase (one frame or one decode step). */
struct PhaseResult
{
    bool oom = false;
    // Component times in ms (before overlap).
    double visionMs = 0.0;
    double denseMs = 0.0;
    double attentionMs = 0.0;
    double predictionMs = 0.0;   //!< Serialized prediction (GPU).
    double dreMs = 0.0;          //!< DRE-side prediction (hidden).
    double fetchMs = 0.0;
    // Overlapped wall-clock.
    double totalMs = 0.0;
    // Activity accounting.
    double dramBytes = 0.0;
    double pcieBytes = 0.0;
    double pcieActiveSec = 0.0;
    double computeBusySec = 0.0;
    EnergyBreakdown energy;
    /** Nominal workload FLOPs (identical across methods; used for
     *  goodput-style GOPS/W comparisons). */
    double nominalFlops = 0.0;
    /** FLOPs this method actually executed (light attention counts
     *  only the selected tokens; used for the roofline). */
    double actualFlops = 0.0;

    double
    gopsPerW() const
    {
        double j = energy.totalJ();
        return j > 0.0 ? nominalFlops / j / 1e9 : 0.0;
    }
};

/** Session-level accumulation (Fig. 4b / Fig. 14). */
struct SessionResult
{
    double visionMs = 0.0;
    double prefillMs = 0.0;
    double generationMs = 0.0;

    double
    totalMs() const
    {
        return visionMs + prefillMs + generationMs;
    }
};

/** The composed system simulator. */
class SystemModel
{
  public:
    explicit SystemModel(const RunConfig &config);

    const RunConfig &config() const { return cfg; }

    /** Process one video frame with cache length cfg.cacheTokens. */
    PhaseResult framePhase() const;

    /** Prefill a text block of @p tokens (question). */
    PhaseResult textPrefillPhase(uint32_t tokens) const;

    /** Decode one output token (TPOT). */
    PhaseResult decodePhase() const;

    /** Frames per second at the configured batch (throughput). */
    double frameFps() const;

    /** True when a non-offloading method exceeds device memory. */
    bool wouldOom() const;

    /** COIN-style session starting from cfg.cacheTokens. */
    SessionResult session(uint32_t frames, uint32_t q_tokens,
                          uint32_t a_tokens) const;

  private:
    PhaseResult
    runPhase(double new_tokens, bool frame_stage, bool with_vision)
        const;

    RunConfig cfg;
    ComputeModel compute;
    PcieModel pcie;
    SsdModel ssd;
    DreModel dre;
    EnergyModel energyModel;
};

} // namespace vrex

#endif // VREX_SIM_SYSTEM_MODEL_HH
