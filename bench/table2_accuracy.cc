/**
 * @file
 * Table II reproduction: accuracy and retrieval ratio of each
 * retrieval method across the five COIN task archetypes.
 *
 * Substitution (see DESIGN.md): COIN Top-1 accuracy is replaced by
 * the attention-fidelity proxy mapped onto the paper's published
 * vanilla (VideoLLM-Online) accuracies; retrieval ratios are measured
 * directly from the functional pipeline. The orderings to check
 * against the paper: ReSV achieves the lowest ratios with the
 * smallest accuracy drop; InfiniGen holds accuracy but retrieves
 * 100% during frame processing; InfiniGenP/ReKV lose more accuracy.
 *
 * Driven through vrex::serve::Engine: policies are owned (built from
 * declarative PolicySpecs by the PolicyFactory instead of raw `new`),
 * and all 25 (method, task) fidelity evaluations run concurrently on
 * the engine's worker pool. Per-session determinism keeps the
 * reported numbers identical to the sequential wiring.
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "serve/engine.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Paper Table II vanilla (VideoLLM-Online) Top-1 per task. */
const std::map<CoinTask, double> vanillaAcc = {
    {CoinTask::Step, 49.0},  {CoinTask::Next, 62.1},
    {CoinTask::Proc, 51.6},  {CoinTask::ProcPlus, 92.5},
    {CoinTask::Task, 49.5},
};

struct MethodEntry
{
    std::string name;
    serve::PolicySpec spec;
};

void
run(bench::Reporter &rep)
{
    serve::EngineConfig engine_cfg;
    engine_cfg.model = ModelConfig::tiny();
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);

    const std::vector<MethodEntry> methods = {
        {"VideoLLM-Online", serve::PolicySpec::full()},
        {"InfiniGen", serve::PolicySpec::infinigen(0.5f)},
        {"InfiniGenP", serve::PolicySpec::infinigenP(0.5f)},
        {"ReKV", serve::PolicySpec::rekv(0.5f)},
        // N_hp=32, Th_hd=7 (paper defaults).
        {"V-Rex's ReSV", serve::PolicySpec::resv()},
    };

    // One fidelity job per (method, task); the engine runs the whole
    // batch concurrently and returns results in job order.
    std::vector<serve::FidelityJob> jobs;
    for (const auto &m : methods)
        for (CoinTask t : allCoinTasks())
            jobs.push_back({WorkloadGenerator::coinTask(t, 3), m.spec});
    const std::vector<FidelityResult> fidelity =
        engine.evaluateFidelityBatch(jobs);

    rep.beginPanel("accuracy",
                   "Table II: COIN accuracy proxy (Top-1) per method");

    struct Ratios { double frame, text; };
    std::map<std::string, std::vector<Ratios>> ratio_table;

    size_t job = 0;
    for (const auto &m : methods) {
        double acc_sum = 0.0;
        for (CoinTask t : allCoinTasks()) {
            const FidelityResult &f = fidelity[job++];
            double acc = proxyAccuracy(vanillaAcc.at(t), f);
            acc_sum += acc;
            rep.add(m.name, coinTaskName(t), acc, "", 1);
            ratio_table[m.name].push_back(
                {f.frameRatio, f.textRatio});
        }
        rep.add(m.name, "Avg", acc_sum / 5.0, "", 1);
    }

    const char *stages[2] = {"frame_ratio", "text_ratio"};
    for (int stage = 0; stage < 2; ++stage) {
        rep.beginPanel(stages[stage],
                       std::string("Table II: ") + stages[stage] +
                           " per method [%]");
        for (const auto &m : methods) {
            if (m.name == "VideoLLM-Online")
                continue;  // No retrieval.
            double sum = 0.0;
            auto tasks = allCoinTasks();
            for (size_t i = 0; i < tasks.size(); ++i) {
                const Ratios &r = ratio_table[m.name][i];
                double v = stage == 0 ? r.frame : r.text;
                sum += v;
                rep.add(m.name, coinTaskName(tasks[i]), 100.0 * v,
                        "%", 1);
            }
            rep.add(m.name, "Avg", 100.0 * sum / 5.0, "%", 1);
        }
    }
    rep.note("paper averages: InfiniGen 100/6.8, InfiniGenP "
             "50.8/6.8, ReKV 58.4/31.2, ReSV 32.7/2.5; ReSV drops "
             "only 0.8% accuracy vs vanilla");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("table2", argc, argv, run);
}
