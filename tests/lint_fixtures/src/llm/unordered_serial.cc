// Fixture: an unordered container in a file that defines serialize()
// — iteration order could leak into the blob, breaking byte-exact
// restore. Must fire.
#include <unordered_map>

#include "common/serial.hh"

struct Table
{
    std::unordered_map<int, int> rows;

    void
    serialize(vrex::serial::ByteWriter &w) const
    {
        w.put<uint64_t>(rows.size());
    }

    void
    restore(vrex::serial::ByteReader &r)
    {
        rows.reserve(r.get<uint64_t>());
    }
};
