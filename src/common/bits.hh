/**
 * @file
 * Bit-level utilities used by the hash-bit clustering path.
 *
 * Hash signatures are stored as packed 64-bit words; the Hamming
 * distance between two signatures is a XOR + popcount over the words,
 * mirroring the HCU's XOR-accumulator datapath.
 */

#ifndef VREX_COMMON_BITS_HH
#define VREX_COMMON_BITS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vrex
{

/** Number of 64-bit words needed to hold @p nbits bits. */
inline uint32_t
bitWords(uint32_t nbits)
{
    return (nbits + 63u) / 64u;
}

/** A packed bit signature of fixed width. */
class BitSig
{
  public:
    BitSig() = default;

    explicit BitSig(uint32_t nbits)
        : numBits(nbits), words(bitWords(nbits), 0)
    {
    }

    uint32_t size() const { return numBits; }

    void
    set(uint32_t i, bool value)
    {
        uint64_t mask = 1ull << (i & 63u);
        if (value)
            words[i >> 6] |= mask;
        else
            words[i >> 6] &= ~mask;
    }

    bool
    get(uint32_t i) const
    {
        return (words[i >> 6] >> (i & 63u)) & 1u;
    }

    const std::vector<uint64_t> &raw() const { return words; }

    /** Hamming distance to another signature of the same width. */
    uint32_t
    hamming(const BitSig &other) const
    {
        uint32_t dist = 0;
        for (size_t w = 0; w < words.size(); ++w)
            dist += std::popcount(words[w] ^ other.words[w]);
        return dist;
    }

    bool
    operator==(const BitSig &other) const
    {
        return numBits == other.numBits && words == other.words;
    }

  private:
    uint32_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace vrex

#endif // VREX_COMMON_BITS_HH
