/**
 * @file
 * A minimal fixed-size worker pool for the serving engine. Jobs are
 * plain closures executed FIFO; the destructor drains every queued
 * job before joining, so submitted work is never silently dropped.
 */

#ifndef VREX_SERVE_THREAD_POOL_HH
#define VREX_SERVE_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vrex::serve
{

/** Sensible worker count: @p requested, or a hardware-derived pick
 *  (clamped to [2, 8]) when @p requested is 0. */
uint32_t resolveWorkerCount(uint32_t requested);

class ThreadPool
{
  public:
    /** Spawn @p workers threads (must be >= 1). */
    explicit ThreadPool(uint32_t workers);

    /** Drains all queued jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; runs on some worker in submission order. */
    void submit(std::function<void()> job);

    uint32_t workerCount() const
    {
        return static_cast<uint32_t>(threads.size());
    }

  private:
    void workerLoop();

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> jobs;
    bool stopping = false;
    std::vector<std::thread> threads;
};

} // namespace vrex::serve

#endif // VREX_SERVE_THREAD_POOL_HH
