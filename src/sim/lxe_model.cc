#include "sim/lxe_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vrex
{

double
LxeModel::peakFlops() const
{
    return 2.0 * cfg.nDpeH * cfg.nDpeW * cores * cfg.clockGhz * 1e9;
}

double
LxeModel::gemmCycles(uint64_t m, uint64_t k, uint64_t n) const
{
    VREX_ASSERT(m > 0 && k > 0 && n > 0, "degenerate GEMM shape");
    // The n dimension splits across cores; each core's MAC trees
    // produce nDpeH outputs per pass, each output needing
    // ceil(k / nDpeW) cycles of tree accumulation.
    const uint64_t n_per_core =
        (n + cores - 1) / std::max(1u, cores);
    const double tree_passes = std::ceil(
        static_cast<double>(n_per_core) / cfg.nDpeH);
    const double k_cycles = std::ceil(
        static_cast<double>(k) / cfg.nDpeW);
    return static_cast<double>(m) * tree_passes * k_cycles;
}

double
LxeModel::gemmSeconds(uint64_t m, uint64_t k, uint64_t n) const
{
    return gemmCycles(m, k, n) / (cfg.clockGhz * 1e9);
}

double
LxeModel::gemmUtilization(uint64_t m, uint64_t k, uint64_t n) const
{
    const double flops = 2.0 * static_cast<double>(m) * k * n;
    const double t = gemmSeconds(m, k, n);
    if (t <= 0.0)
        return 0.0;
    return std::min(1.0, flops / t / peakFlops());
}

double
LxeModel::vpeSeconds(uint64_t elements) const
{
    const double lanes =
        static_cast<double>(cfg.nVpeH) * cfg.nVpeW * cores;
    const double cycles = static_cast<double>(elements) / lanes;
    return cycles / (cfg.clockGhz * 1e9);
}

} // namespace vrex
