/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: fatal() is for conditions caused by the
 * user (bad configuration, invalid arguments) and performs a normal
 * error exit; panic() is for internal invariant violations (a bug in
 * this library) and aborts so a debugger or core dump can capture the
 * state. warn()/inform() report conditions that do not stop execution.
 */

#ifndef VREX_COMMON_LOGGING_HH
#define VREX_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vrex
{

/** Print an error caused by the user and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an internal-bug error and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() for VREX_ASSERT: prefixes the condition and location. */
[[noreturn]] void panicAt(const char *cond, const char *file, int line,
                          const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Print a warning that execution continues past. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace vrex

/**
 * Assert an internal invariant; compiled in all build types because the
 * simulator's correctness claims depend on these checks. The message
 * may be a printf format with arguments. (The previous expansion
 * spliced __VA_ARGS__ *before* the condition/file/line arguments, so
 * any formatted message paired specifiers with the wrong varargs —
 * undefined behavior the moment such an assert fired.)
 */
#define VREX_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            /* "" concatenates with the message literal, and keeps */   \
            /* VREX_ASSERT(cond) with no message compiling. */          \
            ::vrex::panicAt(#cond, __FILE__, __LINE__, "" __VA_ARGS__); \
        }                                                               \
    } while (0)

/**
 * Debug-build-only invariant check for per-element hot paths (bit
 * accessors, inner loops) where an always-on branch would be a
 * measurable tax. Compiles to nothing under NDEBUG; the condition is
 * not evaluated, so it must be side-effect free.
 */
#ifdef NDEBUG
#define VREX_DEBUG_ASSERT(cond, ...) \
    do {                             \
    } while (0)
#else
#define VREX_DEBUG_ASSERT(cond, ...) \
    VREX_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)
#endif

#endif // VREX_COMMON_LOGGING_HH
