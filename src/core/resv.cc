#include "core/resv.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.hh"

namespace vrex
{

ResvPolicy::ResvPolicy(const ModelConfig &model_config,
                       const ResvConfig &config)
    : model(model_config), cfg(config),
      encoder(model_config.headDim(), config.nHp, config.seed)
{
    const uint32_t n = model.nLayers * model.nKvHeads;
    tables.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        tables.emplace_back(model.headDim(), cfg.nHp, cfg.thHd);
}

const HCTable &
ResvPolicy::table(uint32_t layer, uint32_t kv_head) const
{
    return tables[layer * model.nKvHeads + kv_head];
}

ResvCounters &
ResvPolicy::countersFor(TokenStage stage)
{
    return stage == TokenStage::VideoFrame ? frameCtr : textCtr;
}

void
ResvPolicy::onBlockAppended(uint32_t layer, const KVCache &cache,
                            uint32_t block_start, uint32_t block_len,
                            TokenStage stage)
{
    (void)stage;
    if (!cfg.clustering)
        return;
    const uint32_t head_dim = model.headDim();
    const Matrix &keys = cache.layer(layer).keys;
    for (uint32_t kv_head = 0; kv_head < model.nKvHeads; ++kv_head) {
        HCTable &tab = tables[layer * model.nKvHeads + kv_head];
        const uint32_t off = kv_head * head_dim;
        for (uint32_t t = 0; t < block_len; ++t) {
            const uint32_t token = block_start + t;
            const float *key = keys.row(token) + off;
            tab.insert(token, key, encoder.encode(key));
        }
    }
}

LayerSelection
ResvPolicy::select(uint32_t layer, const Matrix &q, const KVCache &cache,
                   uint32_t past_len, TokenStage stage)
{
    ResvCounters &ctr = countersFor(stage);
    ++ctr.selectCalls;
    if (past_len == 0)
        return LayerSelection::full(model.nKvHeads);
    ctr.pastTokens += static_cast<uint64_t>(past_len) * model.nKvHeads;

    return cfg.clustering
        ? selectClustered(layer, q, past_len, ctr)
        : selectUnclustered(layer, q, cache, past_len, ctr);
}

LayerSelection
ResvPolicy::selectClustered(uint32_t layer, const Matrix &q,
                            uint32_t past_len, ResvCounters &ctr)
{
    const uint32_t head_dim = model.headDim();
    const uint32_t group = model.groupSize();
    const float scale = 1.0f / std::sqrt((float)head_dim);
    LayerSelection sel;
    sel.kvHeads.resize(model.nKvHeads);

    for (uint32_t kv_head = 0; kv_head < model.nKvHeads; ++kv_head) {
        const HCTable &tab = tables[layer * model.nKvHeads + kv_head];
        const auto &clusters = tab.clusters();
        HeadSelection &hsel = sel.kvHeads[kv_head];
        hsel.selectAll = false;
        if (clusters.empty())
            continue;

        // Score_cluster: max over the head group's queries and the
        // block's query tokens (each query token needs its own
        // entries; max pooling unions their demands).
        std::vector<float> raw(clusters.size(),
                               -std::numeric_limits<float>::infinity());
        std::vector<uint32_t> counts(clusters.size(), 0);
        for (uint32_t c = 0; c < clusters.size(); ++c) {
            const float *centroid = clusters[c].centroid.data();
            for (uint32_t g = 0; g < group; ++g) {
                const uint32_t q_off =
                    (kv_head * group + g) * head_dim;
                for (uint32_t t = 0; t < q.rows(); ++t) {
                    float s = dot(q.row(t) + q_off, centroid,
                                  head_dim) * scale;
                    raw[c] = std::max(raw[c], s);
                }
            }
            counts[c] = clusters[c].tokenCount();
        }
        ctr.predictionMacs += static_cast<uint64_t>(clusters.size()) *
            head_dim * group * q.rows();
        ctr.clustersScanned += clusters.size();

        std::vector<float> scores = expNormalize(raw);
        WicsumResult picked = cfg.earlyExit
            ? wicsumSelectEarlyExit(scores, counts, cfg.thrWics,
                                    cfg.nBuckets)
            : wicsumSelectReference(scores, counts, cfg.thrWics);
        ctr.wicsumScanned += picked.scanned;
        ctr.clustersSelected += picked.selected.size();

        for (uint32_t c : picked.selected) {
            for (uint32_t token : clusters[c].tokenIdx) {
                if (token < past_len)
                    hsel.indices.push_back(token);
            }
        }
        std::sort(hsel.indices.begin(), hsel.indices.end());
        ctr.tokensSelected += hsel.indices.size();
    }
    return sel;
}

LayerSelection
ResvPolicy::selectUnclustered(uint32_t layer, const Matrix &q,
                              const KVCache &cache, uint32_t past_len,
                              ResvCounters &ctr)
{
    const uint32_t head_dim = model.headDim();
    const uint32_t group = model.groupSize();
    const float scale = 1.0f / std::sqrt((float)head_dim);
    const Matrix &keys = cache.layer(layer).keys;
    LayerSelection sel;
    sel.kvHeads.resize(model.nKvHeads);

    for (uint32_t kv_head = 0; kv_head < model.nKvHeads; ++kv_head) {
        HeadSelection &hsel = sel.kvHeads[kv_head];
        hsel.selectAll = false;
        const uint32_t off = kv_head * head_dim;

        std::vector<float> raw(past_len,
                               -std::numeric_limits<float>::infinity());
        std::vector<uint32_t> counts(past_len, 1);
        for (uint32_t token = 0; token < past_len; ++token) {
            const float *key = keys.row(token) + off;
            for (uint32_t g = 0; g < group; ++g) {
                const uint32_t q_off =
                    (kv_head * group + g) * head_dim;
                for (uint32_t t = 0; t < q.rows(); ++t) {
                    float s = dot(q.row(t) + q_off, key, head_dim) *
                        scale;
                    raw[token] = std::max(raw[token], s);
                }
            }
        }
        ctr.predictionMacs += static_cast<uint64_t>(past_len) *
            head_dim * group * q.rows();
        ctr.clustersScanned += past_len;

        std::vector<float> scores = expNormalize(raw);
        WicsumResult picked = cfg.earlyExit
            ? wicsumSelectEarlyExit(scores, counts, cfg.thrWics,
                                    cfg.nBuckets)
            : wicsumSelectReference(scores, counts, cfg.thrWics);
        ctr.wicsumScanned += picked.scanned;
        ctr.clustersSelected += picked.selected.size();

        hsel.indices = picked.selected;
        std::sort(hsel.indices.begin(), hsel.indices.end());
        ctr.tokensSelected += hsel.indices.size();
    }
    (void)layer;
    return sel;
}

void
ResvPolicy::reset()
{
    for (auto &tab : tables)
        tab.clear();
    frameCtr = ResvCounters{};
    textCtr = ResvCounters{};
}

uint64_t
ResvPolicy::tableMemoryBytes() const
{
    uint64_t bytes = 0;
    for (const auto &tab : tables)
        bytes += tab.memoryBytes();
    return bytes;
}

double
ResvPolicy::avgClusterSize() const
{
    uint64_t tokens = 0, clusters = 0;
    for (const auto &tab : tables) {
        tokens += tab.tokenCount();
        clusters += tab.clusterCount();
    }
    return clusters ? static_cast<double>(tokens) / clusters : 0.0;
}

uint64_t
ResvPolicy::totalHammingComparisons() const
{
    uint64_t n = 0;
    for (const auto &tab : tables)
        n += tab.hammingComparisons();
    return n;
}

namespace
{

void
serializeResvCounters(serial::ByteWriter &w, const ResvCounters &c)
{
    w.put<uint64_t>(c.predictionMacs);
    w.put<uint64_t>(c.clustersScanned);
    w.put<uint64_t>(c.clustersSelected);
    w.put<uint64_t>(c.tokensSelected);
    w.put<uint64_t>(c.pastTokens);
    w.put<uint64_t>(c.wicsumScanned);
    w.put<uint64_t>(c.selectCalls);
}

void
restoreResvCounters(serial::ByteReader &r, ResvCounters &c)
{
    c.predictionMacs = r.get<uint64_t>();
    c.clustersScanned = r.get<uint64_t>();
    c.clustersSelected = r.get<uint64_t>();
    c.tokensSelected = r.get<uint64_t>();
    c.pastTokens = r.get<uint64_t>();
    c.wicsumScanned = r.get<uint64_t>();
    c.selectCalls = r.get<uint64_t>();
}

} // namespace

void
ResvPolicy::serializeState(serial::ByteWriter &w) const
{
    w.put<uint64_t>(tables.size());
    for (const auto &tab : tables)
        tab.serialize(w);
    serializeResvCounters(w, frameCtr);
    serializeResvCounters(w, textCtr);
}

void
ResvPolicy::restoreState(serial::ByteReader &r)
{
    const uint64_t n = r.get<uint64_t>();
    if (n != tables.size())
        throw serial::SerialError(
            "ResvPolicy::restoreState: table count mismatch");
    for (auto &tab : tables)
        tab.restore(r);
    restoreResvCounters(r, frameCtr);
    restoreResvCounters(r, textCtr);
}

} // namespace vrex
