/**
 * @file
 * KVMU layout ablation (design-choice study beyond the paper's
 * figures, supporting §V-C): replays real ReSV selections from the
 * functional model through the hierarchical KV store and measures
 * how many contiguous runs each fetch spans under (a) the plain
 * time-ordered layout and (b) the KVMU's cluster-contiguous layout,
 * then prices both with the PCIe transaction model.
 *
 * `--saturate N` additionally drives N sessions through an engine
 * with admission control (live cap N/2) and bounded per-session
 * queues, reporting the scheduler's serve::Stats — admissions,
 * backpressure rejections, and the round-robin fairness bound. The
 * panel only exists when the flag is given, so the default report
 * (and the CI drift baseline) is unchanged.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "serve/engine.hh"
#include "sim/pcie_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    ModelConfig cfg = ModelConfig::smallVideo();

    TierConfig tiers;
    // Tiny device window so most selections require fetching.
    tiers.deviceKvCapacityBytes = 48 * cfg.kvBytesPerToken(2.0);
    tiers.offloadTarget = Tier::Storage;

    // ReSV with the memory-hierarchy replay decorator; the factory
    // wires the HC tables as the KVMU cluster-layout source.
    serve::EngineConfig engine_cfg;
    engine_cfg.model = cfg;
    engine_cfg.policy =
        serve::PolicySpec::resv().withMemoryTracking(tiers);
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);
    serve::SessionId id =
        engine.submit(WorkloadGenerator::coinAverage(13));
    engine.wait(id);

    const MemoryReplayStats &s = *engine.memoryStats(id);
    rep.beginPanel("replay",
                   "KVMU cluster-contiguous layout ablation "
                   "(functional replay)");
    rep.add("totals", "selected_tokens",
            static_cast<double>(s.selectedTokens), "", 0);
    rep.add("totals", "fetched", s.fetchedBytes / 1048576.0, "MiB",
            1);
    rep.add("totals", "offloaded", s.offloadedBytes / 1048576.0,
            "MiB", 1);

    rep.beginPanel("layout", "contiguous runs per layout");
    rep.add("time-ordered", "runs",
            static_cast<double>(s.runsTimeOrder), "", 0);
    rep.add("time-ordered", "tokens_per_run", s.tokensPerRunTimeOrder(),
            "", 2);
    rep.add("clustered", "runs",
            static_cast<double>(s.runsClustered), "", 0);
    rep.add("clustered", "tokens_per_run", s.tokensPerRunClustered(),
            "", 2);

    // Price both with the edge PCIe link.
    rep.beginPanel("pcie", "PCIe transfer estimate for the same "
                           "bytes");
    PcieModel pcie(4.0, 1.5);
    const double granule = cfg.kvBytesPerTokenPerLayer(2.0);
    double bytes = static_cast<double>(s.selectedTokens) * granule;
    double t_time = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsTimeOrder));
    double t_clust = pcie.transferSeconds(
        bytes, static_cast<double>(s.runsClustered));
    rep.add("time-ordered", "transfer", t_time * 1e3, "ms", 2);
    rep.add("time-ordered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsTimeOrder)),
            "%", 0);
    rep.add("clustered", "transfer", t_clust * 1e3, "ms", 2);
    rep.add("clustered", "efficiency",
            100.0 * pcie.efficiency(
                bytes / std::max<uint64_t>(1, s.runsClustered)),
            "%", 0);
    rep.add("clustered", "txn_reduction",
            static_cast<double>(s.runsTimeOrder) /
                std::max<uint64_t>(1, s.runsClustered),
            "x", 2);
    rep.note("the KVMU stores same-cluster tokens contiguously so "
             "one transaction moves a whole cluster (Fig. 12)");
}

/**
 * Saturation scenario: more sessions than the admission controller
 * allows live, staged bursts against bounded queues. Every reported
 * number is a logical scheduler counter, so the panel is
 * deterministic; wall-clock wait/service means go into a note.
 */
void
runSaturation(bench::Reporter &rep, uint32_t sessions)
{
    const uint32_t cap = std::max(1u, sessions / 2);
    const uint32_t kFrames = 6, kQuestion = 4, kAnswer = 4;
    // Staged burst = frames + 1 question + answer steps, sized to
    // leave the queue one item short of the bound.
    const uint32_t items = kFrames + 1 + kAnswer;

    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();
    cfg.workers = 4;
    cfg.sched.maxLiveSessions = cap;
    cfg.sched.maxQueuedPerSession = items + 1;
    cfg.sched.sliceEvents = 2;
    serve::Engine engine(cfg);

    // Admit in waves; overflow sessions retry after closes. Each
    // wave stages its bursts while paused, so queue depths and the
    // per-session backpressure rejection (one 2-frame overflow try)
    // are exact.
    std::vector<uint32_t> todo;
    for (uint32_t s = 0; s < sessions; ++s)
        todo.push_back(s);
    uint32_t waves = 0;
    while (!todo.empty()) {
        std::vector<uint32_t> deferred;
        std::vector<serve::SessionId> admitted;
        engine.pause();
        for (uint32_t s : todo) {
            SessionScript script = WorkloadGenerator::coinAverage(
                /*seed=*/500 + s);
            script.name = "saturate-" + std::to_string(s);
            serve::Admission a = engine.tryCreateSession(
                serve::SessionOptions::fromScript(script));
            if (!a.admitted()) {
                deferred.push_back(s);
                continue;
            }
            engine.feedFrame(a.id, kFrames);
            engine.ask(a.id, kQuestion, kAnswer);
            // One overflow attempt per session: 2 > 1 free slot.
            engine.tryFeedFrame(a.id, 2);
            admitted.push_back(a.id);
        }
        engine.resume();
        for (serve::SessionId id : admitted) {
            engine.result(id);
            engine.closeSession(id);
        }
        todo = std::move(deferred);
        ++waves;
    }

    const serve::Stats st = engine.stats();
    rep.beginPanel("saturation",
                   "admission control + fair queueing under "
                   "saturation (--saturate)");
    rep.add("admission", "sessions", sessions, "", 0);
    rep.add("admission", "max_live", cap, "", 0);
    rep.add("admission", "admitted",
            static_cast<double>(st.admitted), "", 0);
    rep.add("admission", "rejected",
            static_cast<double>(st.rejectedAdmissions), "", 0);
    rep.add("admission", "waves", waves, "", 0);
    rep.add("queues", "items_executed",
            static_cast<double>(st.itemsExecuted), "", 0);
    rep.add("queues", "items_rejected",
            static_cast<double>(st.itemsRejected), "", 0);
    rep.add("queues", "max_depth", st.maxQueueDepth, "", 0);
    rep.add("fairness", "max_wait_slices",
            static_cast<double>(st.maxWaitSlices), "", 0);
    rep.add("fairness", "round_robin_bound", cap - 1, "", 0);
    char note[160];
    std::snprintf(note, sizeof(note),
                  "wall clock (not in machine output): mean queue "
                  "wait %.2f ms, mean slice service %.2f ms over "
                  "%llu slices",
                  st.meanWaitMs(), st.meanServiceMs(),
                  static_cast<unsigned long long>(st.slices));
    rep.note(note);
    rep.note("round-robin guarantee: max_wait_slices <= live-1 = "
             "round_robin_bound");
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-local --saturate N flag before the shared
    // harness parses the common options.
    uint32_t saturate = 0;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i + 1 < argc && std::strcmp(argv[i], "--saturate") == 0) {
            saturate =
                static_cast<uint32_t>(std::atoi(argv[++i]));
            continue;
        }
        args.push_back(argv[i]);
    }
    return bench::runBench(
        "kvmu_layout", static_cast<int>(args.size()), args.data(),
        [saturate](bench::Reporter &rep) {
            run(rep);
            if (saturate > 0)
                runSaturation(rep, saturate);
        });
}
