#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vrex
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStat::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, uint32_t bins)
    : lo(lo), hi(hi), counts(bins, 0)
{
    VREX_ASSERT(hi > lo && bins > 0, "bad histogram parameters");
}

void
Histogram::add(double x)
{
    // A NaN or infinite sample would make the float-to-integer cast
    // below undefined behavior; count it separately instead.
    if (!std::isfinite(x)) {
        ++nonfinite;
        return;
    }
    double t = (x - lo) / (hi - lo);
    long bin = static_cast<long>(t * static_cast<double>(counts.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<size_t>(bin)];
    ++n;
}

double
Histogram::binCenter(uint32_t bin) const
{
    double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(bin) + 0.5) * width;
}

double
Histogram::percentile(double q) const
{
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(n))));
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= rank)
            return binCenter(static_cast<uint32_t>(i));
    }
    // Unreachable: the cumulative count reaches n >= rank.
    return binCenter(bins() - 1);
}

void
Histogram::merge(const Histogram &other)
{
    VREX_ASSERT(lo == other.lo && hi == other.hi &&
                    counts.size() == other.counts.size(),
                "histogram merge shape mismatch");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    n += other.n;
    nonfinite += other.nonfinite;
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> out(counts.size(), 0.0);
    if (n == 0)
        return out;
    for (size_t i = 0; i < counts.size(); ++i)
        out[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
    return out;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    VREX_ASSERT(x.size() == y.size(), "pearson needs equal-length samples");
    size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = mean(x), my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double dx = x[i] - mx, dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean(const std::vector<double> &x)
{
    if (x.empty())
        return 0.0;
    double s = 0.0;
    for (double v : x)
        s += v;
    return s / static_cast<double>(x.size());
}

} // namespace vrex
