/**
 * @file
 * Hash-bit generation (ReSV step 1, paper Fig. 8 left).
 *
 * A fixed set of N_hp random hyperplanes reduces each key vector to an
 * N_hp-bit sign signature. Hamming distance between signatures tracks
 * cosine distance (the classic SimHash property; the paper measures a
 * 0.8 correlation, reproduced by bench/fig07_similarity). N_hp is
 * <= 0.5% of the original key dimension for Llama-3-8B heads.
 */

#ifndef VREX_CORE_HASH_ENCODER_HH
#define VREX_CORE_HASH_ENCODER_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "core/kernels.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/**
 * Random-hyperplane sign hasher for key vectors.
 *
 * encode() runs on the runtime-dispatched kernel layer
 * (core/kernels): the hyperplanes are kept both row-major (scalar
 * walks one contiguous row per bit) and as a zero-padded transpose
 * (SIMD loads one coefficient of kernels::kEncodeBlock adjacent bits
 * per vector load). Every ISA produces bit-identical signatures; see
 * the contract in kernels.hh.
 */
class HashEncoder
{
  public:
    /**
     * @param key_dim Dimensionality of the hashed keys (head dim).
     * @param n_bits  Number of hyperplanes N_hp (signature width).
     * @param seed    RNG seed for the hyperplane directions.
     */
    HashEncoder(uint32_t key_dim, uint32_t n_bits, uint64_t seed);

    /** Signature of one key vector of length keyDim(). */
    BitSig encode(const float *key) const;

    /** Signatures for each row of @p keys (cols == keyDim()). */
    std::vector<BitSig> encodeRows(const Matrix &keys) const;

    uint32_t keyDim() const { return dim; }
    uint32_t bits() const { return nBits; }

    /** The hyperplane matrix (nBits x keyDim), for tests. */
    const Matrix &hyperplanes() const { return planes; }

  private:
    /** Kernel-facing views of both hyperplane layouts. */
    kernels::HashPlanes planesView() const;

    uint32_t dim;
    uint32_t nBits;
    Matrix planes;
    /** keyDim x colStride transpose of planes, zero-padded to
     * kernels::kEncodeBlock columns. */
    Matrix planesT;
};

} // namespace vrex

#endif // VREX_CORE_HASH_ENCODER_HH
