/**
 * @file
 * Runtime-dispatched SIMD kernels for the DRE hot loops (paper §V:
 * the HCU XOR/popcount datapath, hash-bit generation, and the WTU
 * WiCSum sweep). One `Ops` table per instruction set — scalar always,
 * AVX2 on x86-64, NEON on aarch64 — selected once at startup from
 * CPUID (x86) / compile target (arm), overridable for testing via the
 * `VREX_KERNELS=scalar|avx2|neon|auto` environment variable or
 * `setActive()`.
 *
 * ## Bit-identical contract
 *
 * Every variant of every kernel produces output *bit-identical* to the
 * scalar reference, so switching ISAs can never move a figure metric:
 *
 *  - `hammingWords`, `rangeBitmap`: exact integer / exact-predicate
 *    kernels — equality is unconditional.
 *  - `minMaxF32`: min/max are value-exact regardless of evaluation
 *    order (inputs must be NaN-free, which the score pipeline
 *    guarantees).
 *  - `hashEncode`: each signature bit is the sign of a float dot
 *    product. The SIMD variants assign one *bit* per lane and walk the
 *    key dimension sequentially, so every lane performs the same
 *    mul-then-add sequence, in the same order, at the same precision
 *    as the scalar `dot()` — identical rounding, identical sign. This
 *    requires unfused mul+add everywhere: the build compiles with
 *    `-ffp-contract=off` and the AVX2 translation unit additionally
 *    with `-mno-fma` (see the top-level CMakeLists).
 *
 * The contract is locked by the scalar-vs-SIMD property suite in
 * tests/core_kernels_test.cc, which forces every compiled ISA over
 * widths 1..512 and adversarial bit patterns.
 *
 * ## Adding an ISA variant
 *
 * See src/core/README.md for the step-by-step recipe (new TU, Ops
 * table, probe hook, property-suite coverage).
 */

#ifndef VREX_CORE_KERNELS_HH
#define VREX_CORE_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vrex::kernels
{

/** Instruction sets a kernel table can target. */
enum class Isa : uint8_t
{
    Scalar = 0,
    Avx2,
    Neon,
};

/** Lanes per hash-encode block; colStride pads to a multiple of this. */
inline constexpr uint32_t kEncodeBlock = 8;

/**
 * Hyperplane views consumed by the hash-encode kernels. `rows` is the
 * natural nbits x dim row-major matrix (scalar walks one contiguous
 * row per bit); `cols` is its dim x colStride transpose, zero-padded
 * to kEncodeBlock, so a SIMD block loads the j-th coefficient of
 * kEncodeBlock adjacent bits with one contiguous load.
 */
struct HashPlanes
{
    const float *rows;
    const float *cols;
    uint32_t dim;
    uint32_t nbits;
    uint32_t colStride;
};

/** One dispatch table: every kernel the DRE hot path consumes. */
struct Ops
{
    const char *name;

    /** Popcount of the XOR of two n-word packed bit vectors. */
    uint32_t (*hammingWords)(const uint64_t *a, const uint64_t *b,
                             size_t n);

    /**
     * Sign-hash one key vector: words[b>>6] bit (b&63) = one iff
     * dot(key, plane_b) > 0, for b in [0, nbits). Writes the full
     * bitWords(nbits) words; padding bits are zeroed.
     */
    void (*hashEncode)(const HashPlanes &planes, const float *key,
                       uint64_t *words);

    /**
     * Min and max of n floats (n >= 1, NaN-free input). Matches the
     * scalar std::min/std::max fold by value.
     */
    void (*minMaxF32)(const float *s, size_t n, float *lo, float *hi);

    /**
     * Bucket-membership bitmap for the WiCSum sweep: bit i of the
     * output = one iff double(s[i]) >= lower and (closedTop or
     * double(s[i]) < upper). bitmap must hold bitWords(n) words;
     * fully rewritten, padding zeroed.
     */
    void (*rangeBitmap)(const float *s, size_t n, double lower,
                        double upper, bool closedTop, uint64_t *bitmap);
};

/** The scalar reference table (always compiled). */
const Ops &scalarOps();

/**
 * The active table. First use resolves `VREX_KERNELS` (default: auto,
 * the widest compiled + runtime-supported ISA) and installs the
 * BitSig Hamming hook; afterwards this is one atomic load.
 */
const Ops &active();

/** ISA of the active table. */
Isa activeIsa();

/**
 * Force an ISA (tests, micro benches). Returns false — leaving the
 * current selection untouched — when the ISA is not compiled in or
 * not supported by this CPU. Not thread-safe: call before spawning
 * workers, as the serve layer reads the table concurrently.
 */
bool setActive(Isa isa);

/** Re-run the VREX_KERNELS / auto selection (test teardown). */
void resetToAuto();

/** True when the ISA is compiled in and runtime-supported here. */
bool isaAvailable(Isa isa);

/** Every ISA compiled into this binary (Scalar always included). */
std::vector<Isa> compiledIsas();

/** Lower-case ISA name ("scalar", "avx2", "neon"). */
const char *isaName(Isa isa);

/**
 * Parse a VREX_KERNELS value. Returns false on an unknown token;
 * "auto" sets @p isAuto and leaves @p out untouched.
 */
bool parseIsa(const std::string &text, Isa &out, bool &isAuto);

/** Dispatched Hamming distance over packed words. */
inline uint32_t
hammingDistance(const uint64_t *a, const uint64_t *b, size_t nwords)
{
    return active().hammingWords(a, b, nwords);
}

} // namespace vrex::kernels

#endif // VREX_CORE_KERNELS_HH
