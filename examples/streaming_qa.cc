/**
 * @file
 * Multi-turn streaming question answering: the conversational
 * continuity scenario of paper §II-A. Frames keep arriving between
 * question/answer rounds; every round's answer depends on the whole
 * preserved KV history, which is why destructive cache pruning is
 * off the table and retrieval is used instead.
 *
 * Compares ReSV against fixed top-k (InfiniGenP-style) and ReKV on
 * the same session: answer agreement with the full-attention
 * reference and the retrieval ratio each method needed. All three
 * evaluations run concurrently on a vrex::serve::Engine batch.
 */

#include <cstdio>
#include <vector>

#include "serve/engine.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    SessionScript script = WorkloadGenerator::multiTurn(
        /*frames=*/24, /*turns=*/3, /*seed=*/7);

    std::printf("multi-turn session: %u frames, %u question tokens, "
                "%u answer tokens over 3 rounds\n\n",
                script.frameCount(), script.questionTokens(),
                script.answerTokens());

    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.sessionSeed = 42;
    serve::Engine engine(cfg);

    serve::PolicySpec resv_spec = serve::PolicySpec::resv();
    resv_spec.resvCfg.thrWics = 0.5f;
    const struct
    {
        const char *label;
        serve::PolicySpec spec;
    } methods[3] = {
        {"ReSV (dynamic)", resv_spec},
        {"fixed top-k 50%", serve::PolicySpec::infinigenP(0.5f)},
        {"ReKV (frame top-k)", serve::PolicySpec::rekv(0.5f)},
    };

    std::vector<serve::FidelityJob> jobs;
    for (const auto &m : methods)
        jobs.push_back({script, m.spec});
    std::vector<FidelityResult> fidelity =
        engine.evaluateFidelityBatch(jobs);

    std::printf("%-22s %10s %12s %12s\n", "policy", "agreement",
                "frame-ratio", "text-ratio");
    for (size_t i = 0; i < jobs.size(); ++i) {
        const FidelityResult &f = fidelity[i];
        std::printf("%-22s %9.1f%% %11.1f%% %11.1f%%\n",
                    methods[i].label, 100.0 * f.tokenAgreement,
                    100.0 * f.frameRatio, 100.0 * f.textRatio);
    }

    std::printf("\nReSV adapts its budget per layer/head instead of a "
                "fixed k,\nso it typically fetches less for the same "
                "agreement.\n");
    return 0;
}
