/**
 * @file
 * Statistics helpers used across experiments: running moments,
 * histograms, and Pearson correlation (Fig. 7b reports the correlation
 * between Hamming distance and cosine similarity).
 */

#ifndef VREX_COMMON_STATS_HH
#define VREX_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vrex
{

/**
 * Online mean/variance/min/max accumulator (Welford).
 *
 * Empty-state contract: with no samples, mean()/min()/max()/sum()
 * and variance()/stddev() all return exactly 0.0 (never an
 * uninitialized read) so accumulators over possibly-empty buckets can
 * be reported without guards. Callers that must distinguish "no data"
 * from "all zeros" check count() first.
 */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Fixed-range histogram with uniform bins. Out-of-range finite
 * samples clamp into the edge bins; non-finite samples (NaN, ±inf)
 * are rejected and tallied in nonFinite() so they can neither corrupt
 * a bin index nor silently vanish.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, uint32_t bins);

    void add(double x);

    uint32_t bins() const { return static_cast<uint32_t>(counts.size()); }
    uint64_t count(uint32_t bin) const { return counts[bin]; }
    uint64_t total() const { return n; }
    /** Samples rejected by add() because they were NaN or infinite. */
    uint64_t nonFinite() const { return nonfinite; }
    double binCenter(uint32_t bin) const;
    double rangeLo() const { return lo; }
    double rangeHi() const { return hi; }

    /**
     * Distribution percentile estimated at bin-center resolution:
     * the center of the first bin whose cumulative count reaches
     * rank ceil(q * total()), with q clamped into [0, 1] and the
     * rank floored at 1 (so percentile(0) is the first non-empty
     * bin's center). Only finite samples participate — non-finite
     * ones were rejected by add() and live in nonFinite(). An empty
     * histogram returns exactly 0.0, mirroring the RunningStat
     * empty-state contract.
     */
    double percentile(double q) const;

    /**
     * Merge another snapshot of the same shape (identical range and
     * bin count — asserted) into this one: bin counts, total() and
     * nonFinite() add up, so percentile() over the merge equals
     * percentile() over one histogram fed both sample sets.
     */
    void merge(const Histogram &other);

    /** Render a single-line ASCII sparkline of the distribution. */
    std::vector<double> normalized() const;

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t n = 0;
    uint64_t nonfinite = 0;
};

/** Pearson correlation coefficient of two equal-length samples. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Arithmetic mean of a sample (0 for empty). */
double mean(const std::vector<double> &x);

} // namespace vrex

#endif // VREX_COMMON_STATS_HH
