/**
 * @file
 * Command-line driver for the hardware timing simulator: pick a
 * platform, a retrieval method, a cache length and a batch size and
 * get the full per-frame / TPOT breakdown. Useful for exploring
 * configurations beyond the paper's sweep points.
 *
 * Usage:
 *   sim_cli [--hw agx|a100|vrex8|vrex48] [--method flexgen|infinigen|
 *            infinigenp|rekv|resv|resv-kvpu|resv-sw|gpu|oaken]
 *           [--cache N] [--batch N] [--frame-tokens N] [--serve N]
 *           [--max-live M] [--class-mix N]
 *           [--sessions N] [--kv-budget BYTES]
 *           [--workload NAME]
 *
 * With --serve N the CLI additionally runs N concurrent *functional*
 * sessions through vrex::serve::Engine under the same retrieval
 * method and prints the measured selection ratios next to the
 * analytic model's assumptions. --max-live M caps concurrently
 * admitted sessions: overflow sessions are *rejected* by admission
 * control and retried in waves as live sessions close, demonstrating
 * the scheduler's backpressure path; the run ends with the engine's
 * serve::Stats snapshot (admissions, queue depths, wait/service
 * times).
 *
 * With --class-mix N the CLI drives a mixed workload of N
 * latency-sensitive Interactive QA sessions against N Bulk
 * frame-ingest sessions under weighted round-robin {3,1}, a Bulk
 * rate limit, and deadline-aware slicing, then prints the per-class
 * scheduler panel: slices, work items, rate-limited slices, deadline
 * promotions, and the p50/p95/p99 wait and service latency
 * percentiles from serve::Stats.
 *
 * With --sessions N --kv-budget BYTES the CLI over-subscribes the
 * engine's KV budget: N sessions (e.g. 10000) each ingest a short
 * clip and one QA round while the budget only fits a small fraction
 * of them resident, so the engine hibernates idle sessions to the
 * cold store as it goes. A sample of sessions is then asked a
 * trailing question — waking them transparently — and the run ends
 * with the hibernation panel from serve::Stats::kv: resident vs.
 * hibernated sessions, cold-store bytes, hibernate/wake counts and
 * latency percentiles.
 *
 * With --workload NAME the CLI replays a named scenario from the
 * traffic-shape zoo (src/video/workload.hh) through the *open-loop*
 * load generator: arrivals fire on the deterministic virtual clock
 * regardless of completions, so overload produces measured
 * rejections instead of retry waves. Prints the per-class
 * offered/admitted/rejected counts, SLO attainment, virtual
 * flow-time percentiles and goodput. --max-live M overrides the
 * admission cap (default 10). Unknown names panic with the catalog.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "serve/engine.hh"
#include "serve/loadgen.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/roofline.hh"
#include "sim/system_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

AcceleratorConfig
parseHw(const std::string &name)
{
    if (name == "agx")
        return AcceleratorConfig::agxOrin();
    if (name == "a100")
        return AcceleratorConfig::a100();
    if (name == "vrex8")
        return AcceleratorConfig::vrex8();
    if (name == "vrex48")
        return AcceleratorConfig::vrex48();
    fatal("unknown hardware '%s' (agx|a100|vrex8|vrex48)",
          name.c_str());
}

MethodModel
parseMethod(const std::string &name)
{
    if (name == "flexgen")
        return MethodModel::flexgen();
    if (name == "infinigen")
        return MethodModel::infinigen();
    if (name == "infinigenp")
        return MethodModel::infinigenP();
    if (name == "rekv")
        return MethodModel::rekv();
    if (name == "resv")
        return MethodModel::resvFull();
    if (name == "resv-kvpu")
        return MethodModel::resvKvpu();
    if (name == "resv-sw")
        return MethodModel::resvSoftware();
    if (name == "gpu")
        return MethodModel::gpuNoOffload();
    if (name == "oaken")
        return MethodModel::oaken();
    if (name == "resv-oaken")
        return MethodModel::resvOaken();
    fatal("unknown method '%s'", name.c_str());
}

/** The functional PolicySpec closest to a timing-model method. */
serve::PolicySpec
specForMethod(const std::string &name)
{
    if (name == "flexgen")
        return serve::PolicySpec::flexgen();
    if (name == "infinigen")
        return serve::PolicySpec::infinigen(0.5f);
    if (name == "infinigenp")
        return serve::PolicySpec::infinigenP(0.5f);
    if (name == "rekv")
        return serve::PolicySpec::rekv(0.5f);
    if (name == "resv" || name == "resv-kvpu" || name == "resv-sw" ||
        name == "resv-oaken")
        return serve::PolicySpec::resv();
    // gpu / oaken keep the whole cache resident: full attention.
    return serve::PolicySpec::full();
}

void
serveFunctional(const std::string &method, uint32_t sessions,
                uint32_t max_live)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = specForMethod(method);
    cfg.sched.maxLiveSessions = max_live; // 0 = unlimited
    serve::Engine engine(cfg);

    std::printf("\n[functional serve] %u sessions, policy '%s', "
                "%u workers, max live %u\n", sessions,
                serve::policyKindName(cfg.policy.kind).c_str(),
                engine.workerCount(), max_live);

    // Admit in waves: sessions the admission controller rejects are
    // retried after the current wave's sessions close.
    std::vector<uint32_t> todo;
    for (uint32_t s = 0; s < sessions; ++s)
        todo.push_back(s);
    double frame_sum = 0.0, text_sum = 0.0;
    uint32_t wave = 0;
    while (!todo.empty()) {
        std::vector<uint32_t> deferred;
        std::vector<std::pair<uint32_t, serve::SessionId>> admitted;
        for (uint32_t s : todo) {
            SessionScript script =
                WorkloadGenerator::coinAverage(/*seed=*/200 + s);
            script.name = "cli-session-" + std::to_string(s);
            serve::Admission a = engine.tryCreateSession(
                serve::SessionOptions::fromScript(script));
            if (!a.admitted()) {
                deferred.push_back(s);
                continue;
            }
            engine.enqueue(a.id, script.events);
            admitted.emplace_back(s, a.id);
        }
        if (wave > 0 || !deferred.empty())
            std::printf("  wave %u: %zu admitted, %zu deferred by "
                        "admission control\n", wave, admitted.size(),
                        deferred.size());
        for (const auto &[s, id] : admitted) {
            SessionRunResult r = engine.result(id);
            engine.closeSession(id);
            frame_sum += r.frameRatio;
            text_sum += r.textRatio;
            std::printf("  session %u: %u frames, %zu answer tokens, "
                        "ratio frame %.1f%% / text %.1f%%\n", s,
                        r.frames, r.generated.size(),
                        100.0 * r.frameRatio, 100.0 * r.textRatio);
        }
        todo = std::move(deferred);
        ++wave;
    }
    std::printf("  measured mean ratio: frame %.1f%%, text %.1f%% "
                "(the analytic model's selection-ratio inputs)\n",
                100.0 * frame_sum / sessions,
                100.0 * text_sum / sessions);

    serve::Stats st = engine.stats();
    std::printf("  [scheduler] admitted %llu, rejected %llu, "
                "max live %u, work items %llu in %llu slices, "
                "max queue depth %u, max wait %llu slices, "
                "mean wait %.2f ms, mean service %.2f ms\n",
                static_cast<unsigned long long>(st.admitted),
                static_cast<unsigned long long>(st.rejectedAdmissions),
                st.maxLiveObserved,
                static_cast<unsigned long long>(st.itemsExecuted),
                static_cast<unsigned long long>(st.slices),
                st.maxQueueDepth,
                static_cast<unsigned long long>(st.maxWaitSlices),
                st.meanWaitMs(), st.meanServiceMs());
}

void
serveClassMix(const std::string &method, uint32_t pairs)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = specForMethod(method);
    cfg.sched.sliceEvents = 4;
    cfg.sched.classWeights = {3, 1}; // 3 Interactive slices per Bulk
    cfg.sched.deadlineSlices = 8;    // promote items older than 8
    serve::Engine engine(cfg);

    std::printf("\n[class mix] %u interactive QA + %u bulk ingest "
                "sessions, policy '%s', %u workers, weights {3,1}, "
                "bulk rate limit 2, deadline 8 slices\n", pairs,
                pairs, serve::policyKindName(cfg.policy.kind).c_str(),
                engine.workerCount());

    std::vector<serve::SessionId> ids;
    for (uint32_t s = 0; s < pairs; ++s) {
        // Interactive: short clip, chatty QA rounds.
        SessionScript qa = WorkloadGenerator::coinAverage(300 + s);
        qa.name = "mix-interactive-" + std::to_string(s);
        qa.events.assign(3, {SessionEvent::Type::Frame, 0});
        for (int round = 0; round < 3; ++round) {
            qa.events.push_back({SessionEvent::Type::Question, 3});
            qa.events.push_back({SessionEvent::Type::Generate, 3});
        }
        serve::SessionOptions oi =
            serve::SessionOptions::fromScript(qa);
        oi.schedClass = serve::SchedClass::Interactive;
        serve::SessionId qa_id = engine.createSession(oi);
        engine.enqueue(qa_id, qa.events);
        ids.push_back(qa_id);

        // Bulk: long frame backlog, one trailing QA round, rate
        // limited to 2 items per dispatch turn.
        SessionScript ingest = WorkloadGenerator::coinAverage(400 + s);
        ingest.name = "mix-bulk-" + std::to_string(s);
        ingest.events.assign(24, {SessionEvent::Type::Frame, 0});
        ingest.events.push_back({SessionEvent::Type::Question, 2});
        ingest.events.push_back({SessionEvent::Type::Generate, 2});
        serve::SessionOptions ob =
            serve::SessionOptions::fromScript(ingest);
        ob.schedClass = serve::SchedClass::Bulk;
        ob.maxItemsPerRound = 2;
        serve::SessionId ingest_id = engine.createSession(ob);
        engine.enqueue(ingest_id, ingest.events);
        ids.push_back(ingest_id);
    }
    engine.waitAll();

    const serve::Stats st = engine.stats();
    std::printf("  %-12s %8s %8s %10s %10s | %24s | %s\n", "class",
                "slices", "items", "rate-ltd", "promoted",
                "wait p50/p95/p99 ms", "service p50/p95/p99 ms");
    for (uint32_t c = 0; c < serve::kSchedClasses; ++c) {
        const auto cls = static_cast<serve::SchedClass>(c);
        const serve::ClassStats &cs = st.forClass(cls);
        std::printf("  %-12s %8llu %8llu %10llu %10llu | "
                    "%7.3f %7.3f %7.3f  | %7.3f %7.3f %7.3f\n",
                    serve::schedClassName(cls),
                    static_cast<unsigned long long>(cs.slices),
                    static_cast<unsigned long long>(cs.itemsExecuted),
                    static_cast<unsigned long long>(
                        cs.rateLimitedSlices),
                    static_cast<unsigned long long>(
                        cs.deadlinePromotions),
                    cs.wait.p50Ms(), cs.wait.p95Ms(),
                    cs.wait.p99Ms(), cs.service.p50Ms(),
                    cs.service.p95Ms(), cs.service.p99Ms());
    }
    std::printf("  interactive answers stay responsive while bulk "
                "ingest drains in the background: compare the two "
                "wait-percentile rows\n");
    for (serve::SessionId id : ids)
        engine.closeSession(id);
}

void
serveHibernation(const std::string &method, uint32_t sessions,
                 uint64_t budget_bytes)
{
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = specForMethod(method);
    cfg.kvBudget.budgetBytes = budget_bytes;
    serve::Engine engine(cfg);

    std::printf("\n[hibernation] %u sessions vs a %.2f MiB KV "
                "budget, policy '%s', %u workers\n", sessions,
                budget_bytes / 1048576.0,
                serve::policyKindName(cfg.policy.kind).c_str(),
                engine.workerCount());

    // Small frames keep per-session work cheap; the KV still grows
    // enough that a few sessions overflow a small budget.
    VideoConfig video;
    video.tokensPerFrame = 8;

    std::vector<serve::SessionId> ids;
    ids.reserve(sessions);
    for (uint32_t s = 0; s < sessions; ++s) {
        serve::SessionOptions o;
        o.name = "hib-" + std::to_string(s);
        o.video = video;
        o.scriptSeed = 500 + s;
        serve::SessionId id = engine.createSession(o);
        engine.enqueue(id, {{SessionEvent::Type::Frame, 0},
                            {SessionEvent::Type::Frame, 0},
                            {SessionEvent::Type::Question, 2},
                            {SessionEvent::Type::Generate, 2}});
        ids.push_back(id);
        // Drain in waves so the resident set (sessions awaiting
        // their first slice hold a model) stays bounded while the
        // budget hibernates the finished ones behind us.
        if ((s + 1) % 64 == 0)
            engine.waitAll();
    }
    engine.waitAll();

    auto panel = [&](const char *tag) {
        const serve::KvBudgetStats kv = engine.stats().kv;
        const uint32_t open = kv.residentSessions + kv.hibernatedSessions;
        std::printf("  [%s] resident %u/%u sessions (%.1f%%), "
                    "%.2f MiB KV resident, %.2f MiB cold in %llu "
                    "blobs\n", tag, kv.residentSessions, open,
                    open ? 100.0 * kv.residentSessions / open : 0.0,
                    kv.residentBytes / 1048576.0,
                    kv.coldBytes / 1048576.0,
                    static_cast<unsigned long long>(
                        kv.hibernatedSessions));
        std::printf("        hibernates %llu (p50/p95 %.3f/%.3f ms), "
                    "wakes %llu (p50/p95 %.3f/%.3f ms)\n",
                    static_cast<unsigned long long>(kv.hibernates),
                    kv.hibernateLatency.p50Ms(),
                    kv.hibernateLatency.p95Ms(),
                    static_cast<unsigned long long>(kv.wakes),
                    kv.wakeLatency.p50Ms(), kv.wakeLatency.p95Ms());
    };
    panel("after ingest");

    // Wake a sample with a trailing question: restore is transparent
    // (byte-identical state), only the wake latency is observable.
    const uint32_t step = sessions > 16 ? sessions / 16 : 1;
    uint32_t asked = 0;
    for (uint32_t s = 0; s < sessions; s += step) {
        engine.ask(ids[s], 2, 2);
        ++asked;
    }
    engine.waitAll();
    std::printf("  asked %u sampled sessions a trailing question\n",
                asked);
    panel("after wake ");

    for (serve::SessionId id : ids)
        engine.closeSession(id);
}

void
serveWorkload(const std::string &method, const std::string &name,
              uint32_t max_live)
{
    serve::LoadGenConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = specForMethod(method);
    cfg.sched.maxLiveSessions = max_live > 0 ? max_live : 10;
    cfg.sched.classWeights = {2, 1};

    const TrafficTrace trace = buildTrace(traceSpecByName(name));
    serve::LoadGen gen(cfg);
    const serve::LoadReport r = gen.run(trace);

    std::printf("\n[open-loop workload '%s'] %s arrivals, %u "
                "sessions over %.2f virtual s, policy '%s', "
                "admission cap %u\n", name.c_str(),
                arrivalKindName(trace.spec.arrivals.kind),
                r.offered(), r.horizonUs / 1e6,
                serve::policyKindName(cfg.policy.kind).c_str(),
                cfg.sched.maxLiveSessions);
    std::printf("  %-12s %8s %9s %9s %11s %11s | %9s | %s\n",
                "class", "offered", "admitted", "rejected",
                "items-enq", "items-rej", "slo-met",
                "virtual flow p50/p95/p99 ms");
    for (uint32_t c = 0; c < kTrafficClasses; ++c) {
        const auto cls = static_cast<TrafficClass>(c);
        const serve::LoadClassReport &cr = r.forClass(cls);
        if (cr.offered == 0)
            continue;
        std::printf("  %-12s %8u %9u %9u %11llu %11llu | %8.1f%% | "
                    "%.1f / %.1f / %.1f\n", trafficClassName(cls),
                    cr.offered, cr.admitted, cr.rejectedSessions,
                    static_cast<unsigned long long>(cr.itemsEnqueued),
                    static_cast<unsigned long long>(cr.itemsRejected),
                    100.0 * cr.attainment(), cr.flowP50Us / 1e3,
                    cr.flowP95Us / 1e3, cr.flowP99Us / 1e3);
    }
    std::printf("  total: rejection rate %.1f%%, goodput %.2f "
                "sessions/s, %.1f items/s, %llu items executed\n",
                100.0 * r.rejectionRate(), r.goodputPerSec(),
                r.itemThroughputPerSec(),
                static_cast<unsigned long long>(
                    r.engine.itemsExecuted));
}

void
printPhase(const char *title, const PhaseResult &r)
{
    std::printf("\n[%s]\n", title);
    if (r.oom) {
        std::printf("  OUT OF MEMORY\n");
        return;
    }
    std::printf("  wall clock   : %9.2f ms\n", r.totalMs);
    std::printf("  vision+MLP   : %9.2f ms\n", r.visionMs);
    std::printf("  dense (QKV/FFN): %7.2f ms\n", r.denseMs);
    std::printf("  attention    : %9.2f ms\n", r.attentionMs);
    std::printf("  prediction   : %9.2f ms (GPU-serialized)\n",
                r.predictionMs);
    std::printf("  DRE          : %9.3f ms (overlapped)\n", r.dreMs);
    std::printf("  KV fetch     : %9.2f ms (overlapped)\n",
                r.fetchMs);
    std::printf("  PCIe bytes   : %9.1f MiB\n",
                r.pcieBytes / 1048576.0);
    std::printf("  energy       : %9.3f J (avg %.1f W)\n",
                r.energy.totalJ(),
                r.energy.totalJ() / (r.totalMs / 1e3));
    std::printf("  efficiency   : %9.1f GOPS/W\n", r.gopsPerW());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string hw = "vrex8", method = "resv";
    uint32_t cache = 40000, batch = 1, frame_tokens = 10;
    uint32_t serve_sessions = 0, max_live = 0, class_mix = 0;
    uint32_t hib_sessions = 0;
    uint64_t kv_budget = 0;
    std::string workload;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--hw")
            hw = next();
        else if (arg == "--method")
            method = next();
        else if (arg == "--cache")
            cache = static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--batch")
            batch = static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--frame-tokens")
            frame_tokens =
                static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--serve")
            serve_sessions =
                static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--max-live")
            max_live =
                static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--class-mix")
            class_mix =
                static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--sessions")
            hib_sessions =
                static_cast<uint32_t>(std::atoi(next().c_str()));
        else if (arg == "--kv-budget")
            kv_budget =
                static_cast<uint64_t>(std::atoll(next().c_str()));
        else if (arg == "--workload")
            workload = next();
        else
            fatal("unknown argument '%s'", arg.c_str());
    }

    RunConfig rc;
    rc.hw = parseHw(hw);
    rc.method = parseMethod(method);
    rc.cacheTokens = cache;
    rc.batch = batch;
    rc.tokensPerFrame = frame_tokens;

    std::printf("platform %s | method %s | cache %u tokens | "
                "batch %u | %u tokens/frame\n", rc.hw.name.c_str(),
                rc.method.name.c_str(), cache, batch, frame_tokens);

    SystemModel sm(rc);
    PhaseResult frame = sm.framePhase();
    printPhase("frame processing", frame);
    if (!frame.oom)
        std::printf("  throughput   : %9.2f FPS\n", sm.frameFps());
    printPhase("text generation (TPOT)", sm.decodePhase());

    RooflinePoint p = rooflineFor(frame, rc.hw);
    std::printf("\n[roofline] OI %.1f Op/B, achieved %.2f TFLOPS "
                "(%.1f%% of roof)\n", p.opIntensity,
                p.achievedTflops, 100.0 * p.fractionOfRoof());

    if (serve_sessions > 0)
        serveFunctional(method, serve_sessions, max_live);
    if (class_mix > 0)
        serveClassMix(method, class_mix);
    if (hib_sessions > 0) {
        if (kv_budget == 0)
            fatal("--sessions needs --kv-budget BYTES (a budget of 0 "
                  "disables hibernation)");
        serveHibernation(method, hib_sessions, kv_budget);
    }
    if (!workload.empty())
        serveWorkload(method, workload, max_live);
    return 0;
}
