/**
 * @file
 * PCIe transfer-time model.
 *
 * KV fetches over PCIe pay a per-transaction overhead on top of the
 * wire time, so scattered token-granular transfers achieve a small
 * fraction of link bandwidth while the KVMU's cluster-contiguous
 * transfers approach it (paper §V-C).
 */

#ifndef VREX_SIM_PCIE_MODEL_HH
#define VREX_SIM_PCIE_MODEL_HH

#include <cstdint>

namespace vrex
{

/** Simple transaction-cost PCIe link model. */
class PcieModel
{
  public:
    PcieModel(double bandwidth_gbs, double tx_overhead_us)
        : bwBytesPerSec(bandwidth_gbs * 1e9),
          txOverheadSec(tx_overhead_us * 1e-6)
    {
    }

    /** Seconds to move @p bytes split into @p transactions, assuming
     *  pipelined transactions (overhead overlaps at depth 4). */
    double
    transferSeconds(double bytes, double transactions) const
    {
        const double pipelined_overhead =
            transactions * txOverheadSec / pipelineDepth;
        return pipelined_overhead + bytes / bwBytesPerSec;
    }

    /** Achieved fraction of link bandwidth at @p bytes_per_tx. */
    double
    efficiency(double bytes_per_tx) const
    {
        const double wire = bytes_per_tx / bwBytesPerSec;
        const double overhead = txOverheadSec / pipelineDepth;
        return wire / (wire + overhead);
    }

    double bandwidthBytesPerSec() const { return bwBytesPerSec; }

  private:
    static constexpr double pipelineDepth = 4.0;
    double bwBytesPerSec;
    double txOverheadSec;
};

} // namespace vrex

#endif // VREX_SIM_PCIE_MODEL_HH
