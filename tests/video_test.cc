/**
 * @file
 * Tests for the synthetic video substrate: temporal similarity of the
 * frame generator, vision tower shapes, and workload scripts.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "tensor/ops.hh"
#include "video/frame_generator.hh"
#include "video/vision_tower.hh"
#include "video/workload.hh"

using namespace vrex;

TEST(FrameGenerator, ShapeAndDeterminism)
{
    VideoConfig cfg;
    FrameGenerator g1(cfg, 42), g2(cfg, 42);
    Matrix f1 = g1.nextFrameLatents();
    Matrix f2 = g2.nextFrameLatents();
    EXPECT_EQ(f1.rows(), cfg.tokensPerFrame);
    EXPECT_EQ(f1.cols(), cfg.latentDim);
    for (uint32_t i = 0; i < f1.size(); ++i)
        EXPECT_EQ(f1.raw()[i], f2.raw()[i]);
}

TEST(FrameGenerator, AdjacentFramesHighlySimilar)
{
    VideoConfig cfg;
    cfg.sceneCutProb = 0.0;  // No cuts for this property.
    FrameGenerator gen(cfg, 7);
    Matrix prev = gen.nextFrameLatents();
    RunningStat sim;
    for (int f = 0; f < 10; ++f) {
        Matrix cur = gen.nextFrameLatents();
        for (uint32_t t = 0; t < cfg.tokensPerFrame; ++t)
            sim.add(cosineSimilarity(prev.row(t), cur.row(t),
                                     cfg.latentDim));
        prev = cur;
    }
    // The property ReSV exploits (paper Fig. 7a).
    EXPECT_GT(sim.mean(), 0.8);
}

TEST(FrameGenerator, SceneCutsBreakSimilarity)
{
    VideoConfig smooth, cuts;
    smooth.sceneCutProb = 0.0;
    cuts.sceneCutProb = 0.9;
    RunningStat sim_smooth, sim_cuts;
    for (auto [cfg, stat] :
         {std::pair{&smooth, &sim_smooth}, {&cuts, &sim_cuts}}) {
        FrameGenerator gen(*cfg, 3);
        Matrix prev = gen.nextFrameLatents();
        for (int f = 0; f < 20; ++f) {
            Matrix cur = gen.nextFrameLatents();
            for (uint32_t t = 0; t < cfg->tokensPerFrame; ++t)
                stat->add(cosineSimilarity(prev.row(t), cur.row(t),
                                           cfg->latentDim));
            prev = cur;
        }
    }
    EXPECT_GT(sim_smooth.mean(), sim_cuts.mean());
}

TEST(FrameGenerator, DriftLowersSimilarity)
{
    VideoConfig slow, fast;
    slow.driftRate = 0.02;
    slow.sceneCutProb = 0.0;
    fast.driftRate = 0.6;
    fast.sceneCutProb = 0.0;
    double means[2];
    int i = 0;
    for (const VideoConfig *cfg : {&slow, &fast}) {
        FrameGenerator gen(*cfg, 5);
        Matrix prev = gen.nextFrameLatents();
        RunningStat sim;
        for (int f = 0; f < 15; ++f) {
            Matrix cur = gen.nextFrameLatents();
            for (uint32_t t = 0; t < cfg->tokensPerFrame; ++t)
                sim.add(cosineSimilarity(prev.row(t), cur.row(t),
                                         cfg->latentDim));
            prev = cur;
        }
        means[i++] = sim.mean();
    }
    EXPECT_GT(means[0], means[1]);
}

TEST(VisionTower, ShapesAndDeterminism)
{
    VisionTower tower(32, 64, 42);
    MlpProjector proj(64, 128, 42);
    Matrix latents(5, 32);
    Rng rng(1);
    rng.fillGaussian(latents.raw(), latents.size(), 1.0f);
    Matrix feats = tower.encode(latents);
    EXPECT_EQ(feats.rows(), 5u);
    EXPECT_EQ(feats.cols(), 64u);
    Matrix emb = proj.project(feats);
    EXPECT_EQ(emb.cols(), 128u);

    VisionTower tower2(32, 64, 42);
    Matrix feats2 = tower2.encode(latents);
    for (uint32_t i = 0; i < feats.size(); ++i)
        EXPECT_EQ(feats.raw()[i], feats2.raw()[i]);
}

TEST(Workload, CoinAverageScenario)
{
    SessionScript s = WorkloadGenerator::coinAverage(1);
    EXPECT_EQ(s.frameCount(), 26u);
    EXPECT_EQ(s.questionTokens(), 25u);
    EXPECT_EQ(s.answerTokens(), 39u);
}

TEST(Workload, FiveTasksDistinct)
{
    auto &tasks = allCoinTasks();
    EXPECT_EQ(tasks.size(), 5u);
    std::set<std::string> names;
    for (CoinTask t : tasks) {
        names.insert(coinTaskName(t));
        SessionScript s = WorkloadGenerator::coinTask(t, 1);
        EXPECT_GT(s.frameCount(), 0u);
        EXPECT_GT(s.questionTokens(), 0u);
        EXPECT_GT(s.answerTokens(), 0u);
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(Workload, TaskKnobsDiffer)
{
    SessionScript step =
        WorkloadGenerator::coinTask(CoinTask::Step, 1);
    SessionScript task =
        WorkloadGenerator::coinTask(CoinTask::Task, 1);
    EXPECT_GT(step.video.driftRate, task.video.driftRate);
    EXPECT_GT(step.video.sceneCutProb, task.video.sceneCutProb);
}

TEST(Workload, MultiTurnStructure)
{
    SessionScript s = WorkloadGenerator::multiTurn(20, 4, 1);
    EXPECT_EQ(s.frameCount(), 20u);
    uint32_t questions = 0;
    for (const auto &e : s.events)
        questions += e.type == SessionEvent::Type::Question;
    EXPECT_EQ(questions, 4u);
}

TEST(Workload, QuestionTokensInVocab)
{
    auto ids = WorkloadGenerator::questionTokens(50, 100, 3);
    EXPECT_EQ(ids.size(), 50u);
    for (uint32_t id : ids)
        EXPECT_LT(id, 100u);
    auto ids2 = WorkloadGenerator::questionTokens(50, 100, 3);
    EXPECT_EQ(ids, ids2);
}
