/**
 * @file
 * Fig. 15 reproduction: throughput (FPS) at batch 16 versus the
 * Oaken quantizing accelerator and the plain AGX Orin with resident
 * KV. The GPU OOMs first as the cache grows; Oaken's int4 cache
 * survives longer but also hits the wall; V-Rex's retrieval keeps
 * running beyond 20K (paper: ~7 FPS sustained).
 *
 * OOM points appear as "<platform>_oom" = 1 with no fps metric, so
 * the drift gate notices if a platform starts/stops fitting.
 *
 * Note: this bench is purely analytic (sim/system_model sweeps) and
 * drives no functional sessions, so unlike fig07/fig19/fig20/
 * kvmu_layout/table2 it has nothing to migrate onto the
 * vrex::serve::Engine API.
 */

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    rep.beginPanel("oaken",
                   "Fig. 15: throughput vs Oaken, batch 16 @ frame");
    struct Point
    {
        std::string name;
        AcceleratorConfig hw;
        MethodModel method;
    };
    const Point points[3] = {
        {"agx_orin", AcceleratorConfig::agxOrin(),
         MethodModel::gpuNoOffload()},
        {"oaken", AcceleratorConfig::agxOrin(), MethodModel::oaken()},
        {"vrex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };
    for (uint32_t cache : bench::cacheSweep()) {
        std::string row = bench::kLabel(cache);
        for (const auto &p : points) {
            RunConfig rc;
            rc.hw = p.hw;
            rc.method = p.method;
            rc.cacheTokens = cache;
            rc.batch = 16;
            SystemModel sm(rc);
            if (sm.wouldOom()) {
                rep.addText(row, p.name, "OOM");
                rep.add(row, p.name + "_oom", 1.0, "", 0);
            } else {
                rep.add(row, p.name, sm.frameFps(), "fps", 1);
            }
        }
    }
    rep.note("paper: AGX OOMs from 10K, Oaken beyond 20K; V-Rex "
             "sustains ~7 FPS at large lengths; at 1K V-Rex is "
             "1.5x/1.1x over AGX/Oaken");

    rep.beginPanel("int4",
                   "Extension (paper SVII): ReSV stacked on int4 KV");
    for (uint32_t cache : bench::cacheSweep()) {
        std::string row = bench::kLabel(cache);
        const std::pair<std::string, MethodModel> variants[2] = {
            {"vrex8", MethodModel::resvFull()},
            {"vrex8_int4", MethodModel::resvOaken()},
        };
        for (const auto &[name, m] : variants) {
            RunConfig rc;
            rc.hw = AcceleratorConfig::vrex8();
            rc.method = m;
            rc.cacheTokens = cache;
            rc.batch = 16;
            rep.add(row, name, SystemModel(rc).frameFps(), "fps", 1);
        }
    }
    rep.note("quantization shrinks every fetched byte ~3.6x, so "
             "the combination extends real-time range further — "
             "the composability the paper's discussion claims");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig15", argc, argv, run);
}
