/**
 * @file
 * Fig. 14 reproduction: normalized end-to-end latency breakdown
 * (vision+MLP / prefill / generation) of AGX Orin systems vs. V-Rex8
 * across 1K-40K, using the COIN average scenario (26 frames, 25
 * question tokens, 39 answer tokens).
 *
 * Paper anchors: V-Rex8 end-to-end gain grows 2x -> 5.4x with cache
 * length; InfiniGenP and ReKV run *slower* than FlexGen from 1K to
 * 20K because of KV prediction overhead.
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

struct Entry
{
    std::string label;
    AcceleratorConfig hw;
    MethodModel method;
};

void
run(bench::Reporter &rep)
{
    std::vector<Entry> entries = {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+InfiniGenP", AcceleratorConfig::agxOrin(),
         MethodModel::infinigenP()},
        {"AGX+ReKV", AcceleratorConfig::agxOrin(),
         MethodModel::rekv()},
        {"V-Rex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };

    rep.beginPanel("breakdown",
                   "Fig. 14: E2E latency breakdown (COIN average "
                   "scenario), normalized to V-Rex8");
    for (uint32_t cache : bench::cacheSweep()) {
        std::vector<SessionResult> results;
        for (const auto &e : entries) {
            RunConfig rc;
            rc.hw = e.hw;
            rc.method = e.method;
            rc.cacheTokens = cache;
            results.push_back(SystemModel(rc).session(26, 25, 39));
        }
        double vrex_total = results.back().totalMs();
        for (size_t i = 0; i < entries.size(); ++i) {
            const SessionResult &s = results[i];
            double total = s.totalMs();
            std::string row =
                bench::kLabel(cache) + "/" + entries[i].label;
            rep.add(row, "total", total / 1e3, "s", 2);
            rep.add(row, "vision", 100.0 * s.visionMs / total, "%", 1);
            rep.add(row, "prefill", 100.0 * s.prefillMs / total, "%",
                    1);
            rep.add(row, "generation",
                    100.0 * s.generationMs / total, "%", 1);
            rep.add(row, "vs_vrex", total / vrex_total, "x", 2);
        }
    }
    rep.note("paper: V-Rex8 gain 2x at 1K growing to 5.4x at 40K; "
             "InfiniGenP/ReKV slower than FlexGen at 1K-20K");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig14", argc, argv, run);
}
