/**
 * @file
 * The engine scheduler: admission control, bounded per-session work
 * queues with backpressure results, and a fair round-robin dispatcher
 * that time-slices session work onto the ThreadPool.
 *
 * The scheduler knows nothing about models or policies — it manages
 * FIFO queues of unit SessionEvents keyed by session id and calls an
 * executor callback to run them. The Engine supplies a callback that
 * drives the session's StreamingSession; because a queue is never
 * dispatched on two workers at once (and pin/remove wait for
 * idleness), the callback always has exclusive access to the session.
 *
 * Dispatch discipline: when a queue gains work it is appended to its
 * scheduling class's ready list and one pool job is submitted. A job
 * picks the next class by weighted round-robin (classWeights slices
 * per class turn), pops that class's *front* ready queue — unless a
 * deadline-overdue queue is promoted past it — executes at most
 * `sliceEvents` unit items (clamped by the session's rate limit),
 * and — if the queue still has work — re-appends it at the back of
 * its class. With one class in use and default weights this is the
 * PR-4 single FIFO: between becoming ready and being dispatched, at
 * most live-1 other slices are dispatched (QueueStats::maxWaitSlices),
 * regardless of worker count. The weighted multi-class bound is
 * derived in serve/README.md.
 */

#ifndef VREX_SERVE_SCHEDULER_HH
#define VREX_SERVE_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/wallclock.hh"
#include "serve/batch_planner.hh"
#include "serve/stats.hh"
#include "serve/thread_pool.hh"
#include "video/workload.hh"

namespace vrex::serve
{

/** Outcome of one (batched) enqueue attempt. */
struct EnqueueResult
{
    enum class Status : uint8_t
    {
        Accepted,          //!< All items queued.
        RejectedQueueFull, //!< Bounded queue: none queued.
    };

    Status status = Status::Accepted;
    /** Unit work items in the request. */
    uint32_t items = 0;
    /** Queue depth after the call. */
    uint32_t depth = 0;

    bool accepted() const { return status == Status::Accepted; }
    explicit operator bool() const { return accepted(); }
};

class Scheduler
{
  public:
    using Key = uint64_t;
    /** Executes a slice of unit events for one key. Called outside
     *  the scheduler lock, never concurrently for the same key. */
    using Executor =
        std::function<void(Key, const std::vector<SessionEvent> &)>;
    /** Executes one fused generation step: each listed key advances
     *  by exactly one Generate unit. Called outside the scheduler
     *  lock; every member key is owned (running) by this call, so the
     *  callee has exclusive access to all member sessions at once. */
    using BatchExecutor = std::function<void(const std::vector<Key> &)>;

    /** @p batch / @p batch_executor arm the fused dispatch path; the
     *  defaults (batching disabled) keep dispatch byte-identical to a
     *  scheduler built without them. */
    Scheduler(ThreadPool &pool, SchedulerConfig config,
              Executor executor, BatchConfig batch = {},
              BatchExecutor batch_executor = nullptr);

    /** Requires all queues drained (Engine calls waitAll first). */
    ~Scheduler() = default;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    const SchedulerConfig &config() const { return cfg; }

    // ---- admission ---------------------------------------------

    /** Open a queue for @p key, dispatched under @p cls with an
     *  optional per-session rate limit (@p rate_limit items per
     *  slice; 0 = none). False when the live-session cap is reached
     *  (counted in Stats::rejectedAdmissions). */
    bool tryAdmit(Key key, SchedClass cls = SchedClass::Interactive,
                  uint32_t rate_limit = 0) VREX_EXCLUDES(mu);

    /** Move @p key to scheduling class @p cls mid-stream. When the
     *  session is in its old class's ready list it is re-queued at
     *  the *back* of the new class's list (its readyMark — the wait
     *  measurement origin — is preserved). Per-session results are
     *  unaffected; only dispatch order changes. False when the key
     *  is unknown. */
    bool setClass(Key key, SchedClass cls) VREX_EXCLUDES(mu);

    /** Drain @p key's queue, then forget it (its counters stay in
     *  the aggregate). False when the key is unknown — e.g. a lost
     *  race against a concurrent remove(). */
    bool remove(Key key) VREX_EXCLUDES(mu);

    // ---- work --------------------------------------------------

    /**
     * Append @p events to @p key's queue. Events are weighed in
     * *unit work items* (SessionEvent::unitCount: Generate{n} = n)
     * against the queue bound, but stored compressed — a huge
     * Generate costs one queue slot of memory and is split lazily at
     * slice boundaries. All-or-nothing: when the bounded queue
     * cannot take the whole batch, nothing is queued and the result
     * says RejectedQueueFull. Zero-unit batches validate the key,
     * then accept as a no-op.
     *
     * @throws std::out_of_range on an unknown key.
     */
    EnqueueResult tryEnqueue(Key key,
                             const std::vector<SessionEvent> &events)
        VREX_EXCLUDES(mu);

    /** Block until @p key's queue is drained and idle. False when
     *  the key is unknown or removed while waiting. */
    bool wait(Key key) VREX_EXCLUDES(mu);

    /** Block until every queue is drained and idle. Deadlocks if the
     *  scheduler is left paused with queued work — resume() first. */
    void waitAll() VREX_EXCLUDES(mu);

    // ---- exclusive access --------------------------------------

    /** Wait until @p key is drained, then pin it: the dispatcher
     *  skips it until unpin(), giving the caller exclusive access to
     *  the session state. False when the key vanished. */
    bool pinWhenIdle(Key key) VREX_EXCLUDES(mu);

    /** Non-blocking pinWhenIdle(): pin @p key only if it is idle
     *  *right now* (drained, not running, not pinned). False when
     *  the key is unknown or busy — never waits. The hibernation
     *  sweep uses this to pass over busy sessions instead of
     *  stalling the dispatch path behind them. */
    bool tryPinIdle(Key key) VREX_EXCLUDES(mu);

    /** Release a pinWhenIdle() pin and reschedule queued work. */
    void unpin(Key key) VREX_EXCLUDES(mu);

    // ---- staging -----------------------------------------------

    /** Stop dispatching new slices (in-flight slices finish; verbs
     *  still enqueue). Lets callers stage a deterministic burst.
     *  Caution: wait()/waitAll()/pinWhenIdle()/remove() block until
     *  queues drain, which cannot happen while paused — resume()
     *  first (or from another thread). */
    void pause() VREX_EXCLUDES(mu);

    /** Undo pause() and dispatch everything that became ready. */
    void resume() VREX_EXCLUDES(mu);

    // ---- observability -----------------------------------------

    /** Aggregate snapshot (includes closed sessions' counters). */
    Stats stats() const VREX_EXCLUDES(mu);

    /** Snapshot of one live queue's counters.
     *  @throws std::out_of_range on an unknown key. */
    QueueStats queueStats(Key key) const VREX_EXCLUDES(mu);

  private:
    /** Wall time feeds latency histograms only (common/wallclock.hh
     *  carries the lint suppression and the rationale). */
    using Clock = WallClock;

    /** One queued (possibly compressed) event plus the dispatch-clock
     *  value when it was enqueued — the age base for deadline-aware
     *  slicing. A Generate split at a slice boundary keeps its mark:
     *  the remainder is still the original, aging item. */
    struct Pending
    {
        SessionEvent event;
        uint64_t mark;
    };

    struct Queue
    {
        std::deque<Pending> pending;
        SchedClass cls = SchedClass::Interactive;
        /** Per-session rate limit (0 = none). */
        uint32_t rateLimit = 0;
        bool running = false; //!< A worker owns this key's slice.
        bool pinned = false;  //!< pinWhenIdle() holder owns the key.
        bool ready = false;   //!< Present in the ready list.
        /** Global dispatch count when this queue became ready. */
        uint64_t readyMark = 0;
        Clock::time_point readyAt{};
        /** Unit items of the slice currently executing. */
        uint64_t sliceUnits = 0;
        QueueStats stats;
    };

    /** One ready-list entry. The Queue pointer stays valid while
     *  the entry is listed: map nodes are address-stable and
     *  remove() cannot erase a ready (= non-idle) queue. Carrying
     *  it avoids a map lookup per entry in the dispatch path. */
    struct ReadyEntry
    {
        Key key;
        Queue *queue;
    };

    Queue *find(Key key) VREX_REQUIRES(mu);
    const Queue *find(Key key) const VREX_REQUIRES(mu);
    /** Block until @p key's queue is idle or gone; returns the
     *  still-registered queue, or nullptr when removed/unknown. */
    Queue *waitIdleLocked(UniqueLock &lock, Key key) VREX_REQUIRES(mu);
    /** Append to the class ready list (and submit a job unless
     *  paused). */
    void makeReadyLocked(Key key, Queue &q) VREX_REQUIRES(mu);
    /** Called with `mu` held by design: the job must be queued in
     *  the same critical section that made the key ready, or a
     *  concurrent slice could observe a job/ready-entry mismatch. */
    void submitSliceJob() VREX_REQUIRES(mu);
    void runSlice() VREX_EXCLUDES(mu);
    /** Pick + pop the next ready entry: weighted round-robin over
     *  the class lists (with work-conserving loan slices when the
     *  turn class is busy but not ready), deadline promotion within
     *  the chosen class. */
    ReadyEntry popReadyLocked() VREX_REQUIRES(mu);
    uint32_t weightOf(uint32_t cls_index) const;
    bool idleLocked(const Queue &q) const VREX_REQUIRES(mu);
    /** Primary-dispatch bookkeeping shared by the solo and fused
     *  paths: wait-latency accounting against the dispatch clock,
     *  then advance the clock. */
    void accountDispatchLocked(Queue &q) VREX_REQUIRES(mu);
    /** Take exactly one Generate unit off @p q's front for a fused
     *  step. A split Generate keeps its enqueue mark — the remainder
     *  is still the original, aging item. */
    void takeGenerateUnitLocked(Queue &q) VREX_REQUIRES(mu);
    /** Claim up to maxBatch-1 eligible ready peers for a fused step
     *  led by a queue of class @p primary_cls: scan the primary's
     *  class list first, then the other classes in index order,
     *  front-to-back. Claimed peers leave their ready lists with full
     *  per-member accounting; their already-submitted pool jobs are
     *  absorbed. Appends (key, queue, class) to the member arrays. */
    void claimBatchPeersLocked(SchedClass primary_cls,
                               std::vector<Key> &member_keys,
                               std::vector<Queue *> &member_queues,
                               std::vector<SchedClass> &member_cls)
        VREX_REQUIRES(mu);
    /** Post-execution bookkeeping for one slice (or one fused-step
     *  member): drop running, merge service time, re-ready when work
     *  remains. */
    void finalizeSliceLocked(Key key, Queue &q, SchedClass cls,
                             uint64_t service_ns) VREX_REQUIRES(mu);

    ThreadPool &pool;
    SchedulerConfig cfg;
    Executor executor;
    BatchExecutor batchExecutor;

    mutable Mutex mu;
    CondVar cv;
    std::map<Key, Queue> queues VREX_GUARDED_BY(mu);
    /** One ready list per scheduling class. */
    std::array<std::deque<ReadyEntry>, kSchedClasses> readyKeys
        VREX_GUARDED_BY(mu);
    /** Weighted round-robin rotation state: the class currently
     *  holding the dispatch turn and its remaining slice credit. */
    uint32_t classCursor VREX_GUARDED_BY(mu) = 0;
    uint32_t classCredit VREX_GUARDED_BY(mu) = 0;
    /** Slices currently executing, per class: a class with in-flight
     *  work keeps its turn (other classes run loan slices that
     *  consume no credit) instead of forfeiting it. */
    std::array<uint32_t, kSchedClasses> inFlight VREX_GUARDED_BY(mu){};
    bool paused VREX_GUARDED_BY(mu) = false;
    /** Ready entries accumulated while paused (jobs not submitted). */
    uint32_t unsubmitted VREX_GUARDED_BY(mu) = 0;
    /** Total slices dispatched (the logical clock for fairness).
     *  Every fused-step member advances it by one: a member's turn
     *  was dispatched, just coalesced with its peers'. */
    uint64_t dispatches VREX_GUARDED_BY(mu) = 0;
    /** Pool jobs whose ready entry was claimed into a fused step:
     *  each such job returns immediately instead of popping. The
     *  standing invariant is
     *      jobs-in-pool + unsubmitted - absorbed == ready entries. */
    uint32_t absorbed VREX_GUARDED_BY(mu) = 0;
    /** Fused-dispatch policy + counters (Stats::batch). */
    BatchPlanner planner VREX_GUARDED_BY(mu);
    /** Aggregate counters, merged incrementally (survives remove). */
    Stats agg VREX_GUARDED_BY(mu);
};

} // namespace vrex::serve

#endif // VREX_SERVE_SCHEDULER_HH
