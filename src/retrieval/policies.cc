#include "retrieval/policies.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tensor/ops.hh"

namespace vrex
{

InfiniGenPolicy::InfiniGenPolicy(const ModelConfig &model_config,
                                 const InfiniGenConfig &config)
    : model(model_config), cfg(config),
      projection(config.projDim, model_config.headDim())
{
    Rng rng(cfg.seed, "infinigen-projection");
    rng.fillGaussian(projection.raw(), projection.size(),
                     1.0f / std::sqrt((float)model.headDim()));
}

LayerSelection
InfiniGenPolicy::select(uint32_t layer, const Matrix &q,
                        const KVCache &cache, uint32_t past_len,
                        TokenStage stage)
{
    (void)layer;
    const bool frame_stage = stage == TokenStage::VideoFrame;
    BaselineCounters &ctr = frame_stage ? frameCtr : textCtr;
    ++ctr.selectCalls;
    const uint32_t heads = model.nKvHeads;
    if (past_len == 0)
        return LayerSelection::full(heads);
    ctr.pastTokens += uint64_t(past_len) * heads;

    if (frame_stage && !cfg.prefill) {
        // Vanilla InfiniGen does not retrieve during prefill: the
        // full cache is fetched (ratio 100%).
        ctr.tokensSelected += uint64_t(past_len) * heads;
        return LayerSelection::full(heads);
    }

    const uint32_t head_dim = model.headDim();
    const uint32_t group = model.groupSize();
    const Matrix &keys = cache.layer(layer).keys;
    const uint32_t budget = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(cfg.ratio * past_len)));

    LayerSelection sel;
    sel.kvHeads.resize(heads);
    std::vector<float> pq(cfg.projDim), pk(cfg.projDim);
    for (uint32_t kv_head = 0; kv_head < heads; ++kv_head) {
        HeadSelection &hsel = sel.kvHeads[kv_head];
        hsel.selectAll = false;
        const uint32_t koff = kv_head * head_dim;

        // Project the head-group queries and pool them (max).
        std::vector<float> qproj(cfg.projDim,
                                 -std::numeric_limits<float>::max());
        for (uint32_t g = 0; g < group; ++g) {
            const uint32_t qoff = (kv_head * group + g) * head_dim;
            for (uint32_t t = 0; t < q.rows(); ++t) {
                for (uint32_t r = 0; r < cfg.projDim; ++r) {
                    float v = dot(q.row(t) + qoff, projection.row(r),
                                  head_dim);
                    qproj[r] = std::max(qproj[r], v);
                }
            }
        }

        std::vector<float> scores(past_len);
        for (uint32_t token = 0; token < past_len; ++token) {
            for (uint32_t r = 0; r < cfg.projDim; ++r)
                pk[r] = dot(keys.row(token) + koff,
                            projection.row(r), head_dim);
            scores[token] = dot(qproj.data(), pk.data(), cfg.projDim);
        }
        ctr.predictionMacs += uint64_t(past_len) *
            (head_dim * cfg.projDim + cfg.projDim);

        hsel.indices = topkIndices(scores, budget);
        std::sort(hsel.indices.begin(), hsel.indices.end());
        ctr.tokensSelected += hsel.indices.size();
    }
    return sel;
}

ReKVPolicy::ReKVPolicy(const ModelConfig &model_config,
                       const ReKVConfig &config)
    : model(model_config), cfg(config)
{
}

LayerSelection
ReKVPolicy::select(uint32_t layer, const Matrix &q, const KVCache &cache,
                   uint32_t past_len, TokenStage stage)
{
    BaselineCounters &ctr = stage == TokenStage::VideoFrame
        ? frameCtr : textCtr;
    ++ctr.selectCalls;
    const uint32_t heads = model.nKvHeads;
    if (past_len == 0)
        return LayerSelection::full(heads);
    ctr.pastTokens += uint64_t(past_len) * heads;

    const uint32_t head_dim = model.headDim();
    const uint32_t group = model.groupSize();
    const Matrix &keys = cache.layer(layer).keys;

    // Group past tokens by frame; text tokens are always kept.
    struct FrameGroup
    {
        int32_t frameId;
        std::vector<uint32_t> tokens;
    };
    std::vector<FrameGroup> frames;
    std::vector<uint32_t> text_tokens;
    for (uint32_t t = 0; t < past_len; ++t) {
        const TokenMeta &meta = cache.tokenMeta(t);
        if (meta.frameId < 0) {
            text_tokens.push_back(t);
        } else if (!frames.empty() &&
                   frames.back().frameId == meta.frameId) {
            frames.back().tokens.push_back(t);
        } else {
            frames.push_back({meta.frameId, {t}});
        }
    }

    const uint32_t budget = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(cfg.ratio * past_len)));

    LayerSelection sel;
    sel.kvHeads.resize(heads);
    for (uint32_t kv_head = 0; kv_head < heads; ++kv_head) {
        HeadSelection &hsel = sel.kvHeads[kv_head];
        hsel.selectAll = false;
        const uint32_t koff = kv_head * head_dim;

        // Mean query of the head group (all block tokens).
        std::vector<float> qmean(head_dim, 0.0f);
        uint32_t qn = 0;
        for (uint32_t g = 0; g < group; ++g) {
            const uint32_t qoff = (kv_head * group + g) * head_dim;
            for (uint32_t t = 0; t < q.rows(); ++t) {
                addInPlace(qmean.data(), q.row(t) + qoff, head_dim);
                ++qn;
            }
        }
        for (auto &v : qmean)
            v /= static_cast<float>(qn);

        // Frame score: mean key dot mean query.
        std::vector<float> scores(frames.size());
        for (size_t f = 0; f < frames.size(); ++f) {
            std::vector<float> kmean(head_dim, 0.0f);
            for (uint32_t token : frames[f].tokens)
                addInPlace(kmean.data(), keys.row(token) + koff,
                           head_dim);
            for (auto &v : kmean)
                v /= static_cast<float>(frames[f].tokens.size());
            scores[f] = dot(qmean.data(), kmean.data(), head_dim);
        }
        ctr.predictionMacs += uint64_t(past_len) * head_dim +
            uint64_t(frames.size()) * head_dim;

        // Select whole frames (best first) until the budget fills.
        std::vector<uint32_t> order(frames.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      return scores[a] > scores[b];
                  });

        hsel.indices = text_tokens;
        for (uint32_t f : order) {
            if (hsel.indices.size() >= budget)
                break;
            hsel.indices.insert(hsel.indices.end(),
                                frames[f].tokens.begin(),
                                frames[f].tokens.end());
        }
        std::sort(hsel.indices.begin(), hsel.indices.end());
        ctr.tokensSelected += hsel.indices.size();
    }
    return sel;
}

} // namespace vrex
