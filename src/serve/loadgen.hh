/**
 * @file
 * Open-loop load generator: arrivals fire on a deterministic virtual
 * clock regardless of completions, so overload is *real* — the
 * closed-loop drivers (examples/sim_cli --serve, kvmu_layout
 * --saturate) retry rejected sessions in waves and therefore never
 * observe sustained overload; this harness measures it instead.
 *
 * A `TrafficTrace` (video/workload.hh) provides session arrivals in
 * virtual microseconds. The driver walks them in time order and, at
 * each arrival, offers the session to the Engine through the
 * admission verbs: `tryCreateSession` for the session itself, then
 * `tryFeedFrame`/`tryAsk`/`tryEnqueue` in verb-sized chunks for its
 * script — rejections are *counted*, never retried. Live sessions
 * retire on the same virtual clock through a small analytic service
 * model (`virtualServers` FCFS servers, `virtualUsPerItem` per unit
 * item), so the live set — and with it every admission decision — is
 * a pure function of (trace, config): the whole run is replayable and
 * a concurrent run reports byte-identical logical stats to a
 * sequential one (locked by tests/workload_test.cc). The Engine still
 * executes every admitted session's *functional* work for real on its
 * worker pool; only admission and retirement follow the virtual
 * clock.
 *
 * Reported per class (Interactive/Bulk): offered/admitted/rejected
 * sessions, offered/enqueued/rejected unit items, virtual flow-time
 * percentiles, and SLO attainment — the fraction of admitted sessions
 * that were fully served (no item rejected) within the class's
 * virtual deadline. Goodput counts only those sessions. All of it is
 * logical or virtual-time derived, so the loadzoo bench panels sit
 * under the drift gate at a tight tolerance.
 */

#ifndef VREX_SERVE_LOADGEN_HH
#define VREX_SERVE_LOADGEN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/engine.hh"
#include "video/workload.hh"

namespace vrex::serve
{

static_assert(kTrafficClasses == kSchedClasses,
              "TrafficClass mirrors SchedClass one-to-one");

/** TrafficClass (video layer) -> SchedClass (serve layer). */
inline SchedClass
schedClassFor(TrafficClass c)
{
    return static_cast<SchedClass>(c);
}

/** Knobs of one open-loop run. */
struct LoadGenConfig
{
    /** Backbone geometry of every session. */
    ModelConfig model = ModelConfig::tiny();
    /** Retrieval policy of every session. */
    PolicySpec policy;
    /** Engine worker threads; 0 picks from hardware concurrency.
     *  Logical results are identical for any value (the concurrent ==
     *  sequential contract). */
    uint32_t workers = 0;
    /** Per-session master seed (mirrors EngineConfig). */
    uint64_t sessionSeed = 42;
    /** Admission + dispatch knobs. maxLiveSessions is the overload
     *  surface: arrivals beyond it are rejected, not queued. */
    SchedulerConfig sched;

    // ---- virtual service model ---------------------------------
    /** FCFS virtual servers retiring admitted sessions. > 0. */
    uint32_t virtualServers = 4;
    /** Virtual service time per unit work item (us). > 0. */
    uint64_t virtualUsPerItem = 2000;
    /** Per-class flow-time deadline (us): a session meets its SLO
     *  when fully enqueued and virtually completed within this many
     *  us of its arrival. */
    std::array<uint64_t, kSchedClasses> sloUs{400'000, 4'000'000};
};

/** Per-class outcome counters of one run (all logical/virtual). */
struct LoadClassReport
{
    /** Sessions the trace offered to this class. */
    uint32_t offered = 0;
    /** Sessions past admission control. */
    uint32_t admitted = 0;
    /** Sessions rejected at the live-session cap. */
    uint32_t rejectedSessions = 0;
    /** Admitted sessions fully served within the class SLO. */
    uint32_t sloMet = 0;
    /** Unit work items across all offered scripts. */
    uint64_t itemsOffered = 0;
    /** Items accepted into session queues. */
    uint64_t itemsEnqueued = 0;
    /** Items refused by backpressure (bounded queues) or lost with
     *  a rejected admission. */
    uint64_t itemsRejected = 0;
    /** Virtual flow-time (arrival -> virtual completion) percentiles
     *  over admitted sessions, microseconds. rank = ceil(q*n), the
     *  Histogram convention; 0 when no session was admitted. */
    uint64_t flowP50Us = 0;
    uint64_t flowP95Us = 0;
    uint64_t flowP99Us = 0;
    uint64_t flowMaxUs = 0;

    /** Fraction of offered sessions rejected at admission. */
    double
    rejectionRate() const
    {
        return offered == 0
                   ? 0.0
                   : static_cast<double>(rejectedSessions) / offered;
    }

    /** SLO attainment: fully-served-in-deadline / admitted. */
    double
    attainment() const
    {
        return admitted == 0
                   ? 0.0
                   : static_cast<double>(sloMet) / admitted;
    }
};

/** Outcome of one open-loop run over a trace. */
struct LoadReport
{
    std::string trace;
    /** Last arrival timestamp (virtual us). */
    uint64_t horizonUs = 0;
    /** Last virtual completion (>= horizonUs; the denominator of the
     *  rate metrics). */
    uint64_t endUs = 0;
    std::array<LoadClassReport, kSchedClasses> classes;
    /** Engine scheduler snapshot at the end of the run. Logical
     *  counters are deterministic; the wall-clock latency fields are
     *  observability only. */
    Stats engine;

    const LoadClassReport &
    forClass(TrafficClass c) const
    {
        return classes[static_cast<size_t>(c)];
    }

    uint32_t offered() const;
    uint32_t admitted() const;
    uint32_t rejectedSessions() const;
    uint32_t sloMet() const;
    uint64_t itemsEnqueued() const;
    uint64_t itemsRejected() const;

    /** Sessions rejected / sessions offered. */
    double rejectionRate() const;
    /** SLO-met sessions per virtual second. */
    double goodputPerSec() const;
    /** Enqueued (= executed, once drained) items per virtual sec. */
    double itemThroughputPerSec() const;
};

/**
 * The open-loop driver. Each run() builds a fresh Engine from the
 * config (sessions must not leak across scenarios), walks the trace
 * on the virtual clock, and returns the report. Degenerate configs
 * (0 virtual servers, 0 us per item) assert.
 */
class LoadGen
{
  public:
    explicit LoadGen(LoadGenConfig config);

    LoadReport run(const TrafficTrace &trace);

    const LoadGenConfig &config() const { return cfg; }

  private:
    LoadGenConfig cfg;
};

} // namespace vrex::serve

#endif // VREX_SERVE_LOADGEN_HH
