/**
 * @file
 * Attention-fidelity accuracy proxy (Table II substitution).
 *
 * The COIN dataset and real model weights are unavailable offline, so
 * Top-1 accuracy is replaced by a mechanistic proxy: run the same
 * scripted session once with full attention (reference) and once with
 * the retrieval policy under teacher forcing, and measure how often
 * the policy run's greedy decisions agree with the reference. The
 * proxy accuracy maps agreement onto the paper's published vanilla
 * baselines, preserving the method ordering that Table II reports.
 */

#ifndef VREX_PIPELINE_ACCURACY_EVAL_HH
#define VREX_PIPELINE_ACCURACY_EVAL_HH

#include <cstdint>

#include "llm/selection.hh"
#include "pipeline/streaming_session.hh"
#include "video/workload.hh"

namespace vrex
{

/** Fidelity of a retrieval policy vs. full attention. */
struct FidelityResult
{
    /** Fraction of generation steps whose argmax matches the
     *  full-attention reference (teacher-forced). */
    double tokenAgreement = 1.0;
    /** Mean cosine similarity of the per-step logit vectors vs. the
     *  reference — a continuous distortion signal that keeps
     *  discriminating after argmax agreement saturates. */
    double logitCosine = 1.0;
    /** Selection ratios measured during the run. */
    double frameRatio = 1.0;
    double textRatio = 1.0;
    uint32_t steps = 0;

    /** Combined fidelity in [0, 1] (argmax + distortion). */
    double
    combined() const
    {
        return 0.3 * tokenAgreement + 0.7 * logitCosine;
    }
};

/** Evaluate @p policy against full attention on @p script. */
FidelityResult evaluateFidelity(const ModelConfig &model,
                                const SessionScript &script,
                                SelectionPolicy *policy,
                                uint64_t seed);

/**
 * Score a teacher-forced policy run against its full-attention
 * reference (agreement + logit cosine + measured ratios). The test
 * run must have been forced with @p ref's generated tokens.
 */
FidelityResult compareRuns(const SessionRunResult &ref,
                           const SessionRunResult &test);

/**
 * Map fidelity onto a COIN-style Top-1 proxy: perfect agreement
 * returns the vanilla accuracy; disagreement decays it toward the
 * 50%-agreement floor the paper's worst baselines approach.
 */
double proxyAccuracy(double vanilla_accuracy,
                     const FidelityResult &fidelity);

} // namespace vrex

#endif // VREX_PIPELINE_ACCURACY_EVAL_HH
