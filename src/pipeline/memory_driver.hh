/**
 * @file
 * Functional memory-hierarchy replay: a decorator SelectionPolicy
 * that forwards to any retrieval policy while accounting every
 * selection against a HierarchicalKVCache (residency, offload and
 * fetch bytes) and a ClusterLayout (transfer contiguity) — the
 * functional counterpart of the KVMU (paper §V-C, Fig. 12). It lets
 * us *measure*, with real selections from the functional model, how
 * many contiguous PCIe transactions a fetch decomposes into under
 * the time-ordered vs. the cluster-contiguous layout.
 */

#ifndef VREX_PIPELINE_MEMORY_DRIVER_HH
#define VREX_PIPELINE_MEMORY_DRIVER_HH

#include <cstdint>
#include <vector>

#include "core/resv.hh"
#include "kvstore/cluster_layout.hh"
#include "kvstore/hierarchical_cache.hh"
#include "llm/selection.hh"

namespace vrex
{

/** Measured transfer behaviour of one session. */
struct MemoryReplayStats
{
    uint64_t fetchedBytes = 0;
    uint64_t offloadedBytes = 0;
    uint64_t fetchEvents = 0;
    /** Contiguous runs the fetched sets span, per layout. */
    uint64_t runsTimeOrder = 0;
    uint64_t runsClustered = 0;
    uint64_t selectedTokens = 0;

    /** Mean selected tokens per contiguous run (higher = fewer,
     *  larger PCIe transactions). */
    double tokensPerRunTimeOrder() const;
    double tokensPerRunClustered() const;
};

/** Decorator policy wiring a real policy to the memory hierarchy. */
class MemoryTrackingPolicy : public SelectionPolicy
{
  public:
    /**
     * @param inner  The real retrieval policy (not owned). May be a
     *               ResvPolicy, in which case its HC tables drive
     *               the cluster-contiguous layout.
     * @param model  Model geometry (token sizes).
     * @param tiers  Device-window configuration.
     */
    MemoryTrackingPolicy(SelectionPolicy *inner,
                         const ModelConfig &model,
                         const TierConfig &tiers);

    /** Use @p resv's HC tables as the KVMU layout source. */
    void setClusterSource(const ResvPolicy *resv) { resvSource = resv; }

    void onBlockAppended(uint32_t layer, const KVCache &cache,
                         uint32_t block_start, uint32_t block_len,
                         TokenStage stage) override;

    LayerSelection select(uint32_t layer, const Matrix &q,
                          const KVCache &cache, uint32_t past_len,
                          TokenStage stage) override;

    void reset() override;

    /** Serializes the replay/tier accounting AND forwards to the
     *  inner policy, so one call covers the whole decorator stack. */
    void serializeState(serial::ByteWriter &w) const override;
    void restoreState(serial::ByteReader &r) override;

    const MemoryReplayStats &stats() const { return replay; }
    const HierarchicalKVCache &hierarchy() const { return tiersState; }

  private:
    SelectionPolicy *inner;
    ModelConfig model;
    const ResvPolicy *resvSource = nullptr;
    HierarchicalKVCache tiersState;
    MemoryReplayStats replay;
};

} // namespace vrex

#endif // VREX_PIPELINE_MEMORY_DRIVER_HH
