/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: fatal() is for conditions caused by the
 * user (bad configuration, invalid arguments) and performs a normal
 * error exit; panic() is for internal invariant violations (a bug in
 * this library) and aborts so a debugger or core dump can capture the
 * state. warn()/inform() report conditions that do not stop execution.
 */

#ifndef VREX_COMMON_LOGGING_HH
#define VREX_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vrex
{

/** Print an error caused by the user and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an internal-bug error and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning that execution continues past. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace vrex

/**
 * Assert an internal invariant; compiled in all build types because the
 * simulator's correctness claims depend on these checks.
 */
#define VREX_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::vrex::panic("assertion '%s' failed at %s:%d: " __VA_ARGS__,\
                          #cond, __FILE__, __LINE__);                   \
        }                                                               \
    } while (0)

#endif // VREX_COMMON_LOGGING_HH
