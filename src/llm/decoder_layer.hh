/**
 * @file
 * One llama-style decoder layer: RMSNorm -> GQA attention (with the
 * retrieval hook) -> residual -> RMSNorm -> SwiGLU FFN -> residual.
 */

#ifndef VREX_LLM_DECODER_LAYER_HH
#define VREX_LLM_DECODER_LAYER_HH

#include <vector>

#include "common/rng.hh"
#include "llm/attention.hh"
#include "llm/config.hh"
#include "llm/kv_cache.hh"
#include "llm/selection.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Decoder layer with synthetic (deterministic random) weights. */
class DecoderLayer
{
  public:
    /** Build layer @p index with weights from a named RNG stream. */
    DecoderLayer(const ModelConfig &config, uint32_t index,
                 uint64_t seed);

    /**
     * Forward one block of hidden states in place.
     *
     * Appends this layer's K/V to @p cache, consults @p policy for
     * past-token selection, and records the selection ratio.
     *
     * @param x         Hidden states, block_len x dModel (updated).
     * @param cache     The KV cache (beginTokens already called).
     * @param policy    Retrieval policy; nullptr = full attention.
     * @param stage     Pipeline stage of this block.
     * @param base_pos  Absolute position of the block's first token.
     * @return The selection used (for ratio accounting).
     */
    LayerSelection forward(Matrix &x, KVCache &cache,
                           SelectionPolicy *policy, TokenStage stage,
                           uint32_t base_pos) const;

    /** One session's slot in a batched single-token forward. */
    struct BatchItem
    {
        KVCache *cache = nullptr;
        SelectionPolicy *policy = nullptr; //!< nullptr = full.
        uint32_t basePos = 0;              //!< Past length / position.
    };

    /**
     * Fused single-token forward over N independent sessions:
     * layers[i] is session i's copy of the *same* layer index, row i
     * of @p x is session i's hidden state (updated in place), and
     * items[i] carries session i's cache/policy/position.
     *
     * The projections run through the row-grouped matmul (sessions
     * with equal weight seeds share one weight stream); every
     * per-row op (norms, RoPE, activations, residuals), the cache
     * append, the policy calls and the attention kernel are the
     * per-session operations forward() performs, in the same
     * per-session order — so each session's bytes are identical to
     * a solo forward() with a 1-row block.
     */
    static std::vector<LayerSelection>
    forwardBatched(const std::vector<const DecoderLayer *> &layers,
                   Matrix &x, const std::vector<BatchItem> &items,
                   TokenStage stage);

    uint32_t index() const { return layerIndex; }

    /** The weight-stream seed this layer was built from: layers with
     *  equal (config, seed) have byte-identical weights, which is
     *  what lets batched rows share one weight matrix. */
    uint64_t seed() const { return weightSeed; }

  private:
    ModelConfig cfg;
    uint32_t layerIndex;
    uint64_t weightSeed;

    // Weights stored as [out_features x in_features] for matmulT.
    Matrix wq, wk, wv, wo;
    Matrix w1, w2, w3;
    std::vector<float> attnNorm, ffnNorm;
};

} // namespace vrex

#endif // VREX_LLM_DECODER_LAYER_HH
