/**
 * @file
 * Software bfloat16, the numeric format of the V-Rex LXE datapath.
 *
 * The paper's DPE/VPE operate in BF16; the Oaken baseline additionally
 * quantizes the KV cache to 4 bits. This header provides a bit-exact
 * BF16 value type (round-to-nearest-even) so functional experiments can
 * measure the precision the hardware would actually see.
 */

#ifndef VREX_COMMON_BF16_HH
#define VREX_COMMON_BF16_HH

#include <cstdint>
#include <cstring>

namespace vrex
{

/** A bfloat16 value: the top 16 bits of an IEEE-754 binary32. */
class BF16
{
  public:
    BF16() : bits(0) {}

    explicit BF16(float value) : bits(fromFloatBits(value)) {}

    /** Reconstruct the float this BF16 encodes. */
    float
    toFloat() const
    {
        uint32_t w = static_cast<uint32_t>(bits) << 16;
        float f;
        std::memcpy(&f, &w, sizeof(f));
        return f;
    }

    /** Raw 16-bit payload (sign, 8 exponent, 7 mantissa bits). */
    uint16_t raw() const { return bits; }

    static BF16
    fromRaw(uint16_t raw)
    {
        BF16 v;
        v.bits = raw;
        return v;
    }

    bool operator==(const BF16 &other) const { return bits == other.bits; }

  private:
    static uint16_t
    fromFloatBits(float value)
    {
        uint32_t w;
        std::memcpy(&w, &value, sizeof(w));
        // NaN: keep a quiet NaN payload.
        if ((w & 0x7fffffffu) > 0x7f800000u)
            return static_cast<uint16_t>((w >> 16) | 0x0040u);
        // Round to nearest even on the truncated 16 bits.
        uint32_t rounding = 0x7fffu + ((w >> 16) & 1u);
        return static_cast<uint16_t>((w + rounding) >> 16);
    }

    uint16_t bits;
};

/** Round a float through BF16 precision. */
inline float
bf16Round(float value)
{
    return BF16(value).toFloat();
}

/** Round a buffer in place through BF16 precision. */
inline void
bf16RoundBuffer(float *data, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        data[i] = bf16Round(data[i]);
}

} // namespace vrex

#endif // VREX_COMMON_BF16_HH
