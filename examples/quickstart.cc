/**
 * @file
 * Quickstart: build a streaming video LLM with the ReSV retrieval
 * policy, stream a few frames, ask a question, and generate an
 * answer — the minimal end-to-end use of the public API.
 */

#include <cstdio>

#include "core/resv.hh"
#include "llm/model.hh"
#include "pipeline/streaming_session.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    // 1. Pick a model geometry. `tiny` runs in milliseconds; swap in
    //    ModelConfig::llama3_8b() to parameterize the timing model.
    ModelConfig model_cfg = ModelConfig::tiny();

    // 2. Configure ReSV (paper defaults: N_hp=32, Th_hd=7).
    ResvConfig resv_cfg;
    resv_cfg.thrWics = 0.5f;
    ResvPolicy resv(model_cfg, resv_cfg);

    // 3. Drive a scripted streaming session: 12 frames, then a
    //    10-token question, then a 12-token answer.
    SessionScript script;
    script.name = "quickstart";
    script.video = VideoConfig{};
    for (int f = 0; f < 12; ++f)
        script.events.push_back({SessionEvent::Type::Frame, 0});
    script.events.push_back({SessionEvent::Type::Question, 10});
    script.events.push_back({SessionEvent::Type::Generate, 12});

    StreamingSession session(model_cfg, &resv, /*seed=*/42);
    SessionRunResult result = session.run(script);

    // 4. Inspect what happened.
    std::printf("quickstart: streamed %u frames, %u cached tokens\n",
                result.frames, result.totalTokens);
    std::printf("generated tokens:");
    for (uint32_t id : result.generated)
        std::printf(" %u", id);
    std::printf("\n");
    std::printf("retrieval ratio: frame stage %.1f%%, "
                "text stage %.1f%%\n",
                100.0 * result.frameRatio, 100.0 * result.textRatio);
    std::printf("hash clusters: %.1f tokens/cluster on average, "
                "HC tables use %.1f KiB\n",
                resv.avgClusterSize(),
                resv.tableMemoryBytes() / 1024.0);
    return 0;
}
