#include "common/json_lite.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vrex::json
{

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

std::string
Value::strOr(const std::string &key, const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->str() : fallback;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.flag_ = b;
    return v;
}

Value
Value::makeNumber(double x)
{
    Value v;
    v.type_ = Type::Number;
    v.num_ = x;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.type_ = Type::Array;
    v.arr_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> members)
{
    Value v;
    v.type_ = Type::Object;
    v.obj_ = std::move(members);
    return v;
}

namespace
{

/** Recursive-descent parser over a byte string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text(text), err(err) {}

    Value
    document()
    {
        Value v = value();
        if (failed)
            return Value();
        skipWs();
        if (pos != text.size()) {
            fail("trailing characters after document");
            return Value();
        }
        return v;
    }

    bool ok() const { return !failed; }

  private:
    void
    fail(const std::string &what)
    {
        if (!failed && err)
            *err = what + " at byte " + std::to_string(pos);
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return Value();
        }
        switch (text[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return Value::makeString(string());
          case 't':
            if (literal("true"))
                return Value::makeBool(true);
            fail("bad literal");
            return Value();
          case 'f':
            if (literal("false"))
                return Value::makeBool(false);
            fail("bad literal");
            return Value();
          case 'n':
            if (literal("null"))
                return Value::makeNull();
            fail("bad literal");
            return Value();
          default: return number();
        }
    }

    Value
    object()
    {
        ++pos;  // '{'
        std::vector<std::pair<std::string, Value>> members;
        skipWs();
        if (consume('}'))
            return Value::makeObject(std::move(members));
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"') {
                fail("expected object key");
                return Value();
            }
            std::string key = string();
            if (failed)
                return Value();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after key");
                return Value();
            }
            Value v = value();
            if (failed)
                return Value();
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Value::makeObject(std::move(members));
            fail("expected ',' or '}' in object");
            return Value();
        }
    }

    Value
    array()
    {
        ++pos;  // '['
        std::vector<Value> items;
        skipWs();
        if (consume(']'))
            return Value::makeArray(std::move(items));
        while (true) {
            Value v = value();
            if (failed)
                return Value();
            items.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Value::makeArray(std::move(items));
            fail("expected ',' or ']' in array");
            return Value();
        }
    }

    std::string
    string()
    {
        ++pos;  // opening quote
        std::string out;
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (c == '\\') {
                if (pos + 1 >= text.size())
                    break;
                char esc = text[pos + 1];
                pos += 2;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size()) {
                        fail("truncated \\u escape");
                        return "";
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else {
                            fail("bad \\u escape");
                            return "";
                        }
                    }
                    pos += 4;
                    // Encode as UTF-8 (no surrogate-pair handling:
                    // the writers only escape control characters).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return "";
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return "";
            }
            out += c;
            ++pos;
        }
        fail("unterminated string");
        return "";
    }

    Value
    number()
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start) {
            fail("expected value");
            return Value();
        }
        std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
            fail("malformed number '" + tok + "'");
            return Value();
        }
        return Value::makeNumber(v);
    }

    const std::string &text;
    std::string *err;
    size_t pos = 0;
    bool failed = false;
};

} // namespace

Value
parse(const std::string &text, std::string *err)
{
    Parser p(text, err);
    Value v = p.document();
    return p.ok() ? v : Value();
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace vrex::json
