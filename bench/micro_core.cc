/**
 * @file
 * Micro-benchmarks of the DRE kernels behind the runtime dispatch
 * layer (core/kernels): XOR+popcount Hamming, hash-bit encoding,
 * WiCSum min/max + bucket-membership scan — the software-side
 * counterparts of the HCU and WTU — plus a continuity panel for the
 * surrounding operations (cosine similarity, HC-table insert, the
 * reference WiCSum sort).
 *
 * Unlike the figure/table harnesses, the ns/op numbers here are host
 * wall-clock timings, so they are excluded from the figure drift gate
 * (`bench/baseline.json`). Instead every kernel row reports the
 * scalar-vs-dispatched `speedup` ratio — machine-relative and far
 * more stable — and `bench/perf_baseline.json` floor-gates those
 * ratios via `drift_check --baseline` (see bench/README.md: rows with
 * a measured speedup >= 2x get a floor at half the measured value;
 * everything else is recorded as `info`).
 *
 *   micro_core [--json PATH] [--csv PATH] [--quiet]
 *              [--write-perf-baseline PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_compare.hh"
#include "common/bench_report.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "core/kernels.hh"
#include "core/wicsum.hh"
#include "tensor/ops.hh"

using namespace vrex;

namespace
{

/** Optimization sinks: every measured op feeds one of these. */
volatile uint64_t sinkU64 = 0;
volatile float sinkF32 = 0.0f;

/**
 * Best-of-3 ns per call of @p fn: batch size is calibrated until one
 * batch takes >= 1 ms, then the fastest of three batches wins (the
 * usual min-of-reps defense against scheduler noise).
 */
template <typename Fn>
double
nsPerOp(Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    auto batchNs = [&](uint64_t iters) {
        const auto t0 = Clock::now();
        for (uint64_t i = 0; i < iters; ++i)
            fn();
        return std::chrono::duration<double, std::nano>(
                   Clock::now() - t0)
            .count();
    };
    fn();  // Warm caches and the dispatch table.
    uint64_t iters = 1;
    while (batchNs(iters) < 1e6 && iters < (1ull << 28))
        iters *= 2;
    double best = batchNs(iters);
    for (int rep = 0; rep < 2; ++rep)
        best = std::min(best, batchNs(iters));
    return best / static_cast<double>(iters);
}

/** Non-scalar ISAs usable on this build + CPU. */
std::vector<kernels::Isa>
simdIsas()
{
    std::vector<kernels::Isa> out;
    for (kernels::Isa isa : kernels::compiledIsas()) {
        if (isa != kernels::Isa::Scalar && kernels::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

/** One kernel row: scalar + per-ISA ns/op and the speedup ratio. */
struct RowResult
{
    std::string panel;
    std::string row;
    double scalarNs = 0.0;
    std::vector<std::pair<kernels::Isa, double>> simdNs;
    double speedup = 1.0;  // scalar / best simd (1.0 without SIMD).
};

/**
 * Measure @p fn under the scalar table and under every available SIMD
 * table. @p fn must route through kernels::active() (directly or via
 * the rewired BitSig/HashEncoder/WiCSum paths).
 */
template <typename Fn>
RowResult
measureRow(const std::string &panel, const std::string &row, Fn &&fn)
{
    RowResult out;
    out.panel = panel;
    out.row = row;
    kernels::setActive(kernels::Isa::Scalar);
    out.scalarNs = nsPerOp(fn);
    double bestNs = out.scalarNs;
    for (kernels::Isa isa : simdIsas()) {
        kernels::setActive(isa);
        const double ns = nsPerOp(fn);
        out.simdNs.emplace_back(isa, ns);
        bestNs = std::min(bestNs, ns);
    }
    kernels::resetToAuto();
    out.speedup = out.scalarNs / bestNs;
    return out;
}

std::vector<uint64_t>
randomWords(Rng &rng, size_t n)
{
    std::vector<uint64_t> w(n);
    for (auto &v : w)
        v = rng.nextU64();
    return w;
}

std::vector<float>
randomKeys(uint32_t n, uint32_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> keys(static_cast<size_t>(n) * dim);
    rng.fillGaussian(keys.data(), keys.size(), 1.0f);
    return keys;
}

void
runKernelRows(std::vector<RowResult> &rows)
{
    // --- Hamming: XOR + popcount over packed signature words. ------
    Rng rng(0x11);
    for (uint32_t nbits : {64u, 256u, 512u, 4096u}) {
        const size_t nwords = bitWords(nbits);
        const auto a = randomWords(rng, nwords);
        const auto b = randomWords(rng, nwords);
        rows.push_back(measureRow(
            "hamming", "nbits=" + std::to_string(nbits), [&] {
                sinkU64 = sinkU64 +
                          kernels::hammingDistance(a.data(), b.data(),
                                                   nwords);
            }));
    }

    // --- Hash-bit encode (end-to-end HashEncoder::encode). ---------
    for (uint32_t nbits : {32u, 512u}) {
        const uint32_t dim = 128;
        HashEncoder enc(dim, nbits, 7);
        const auto keys = randomKeys(256, dim, 1);
        uint32_t i = 0;
        rows.push_back(measureRow(
            "encode",
            "dim=128,nbits=" + std::to_string(nbits), [&] {
                const BitSig sig =
                    enc.encode(keys.data() + (i++ % 256) * dim);
                sinkU64 = sinkU64 + sig.raw()[0];
            }));
    }

    // --- WiCSum: min/max scan and the early-exit selection. --------
    {
        const uint32_t n = 4096;
        Rng wrng(5);
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (uint32_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(wrng.uniform());
            counts[i] =
                1 + static_cast<uint32_t>(wrng.uniformInt(32));
        }
        rows.push_back(measureRow("wicsum", "minmax n=4096", [&] {
            float lo, hi;
            kernels::active().minMaxF32(scores.data(), scores.size(),
                                        &lo, &hi);
            sinkF32 = sinkF32 + lo + hi;
        }));
        rows.push_back(measureRow("wicsum", "select n=4096", [&] {
            const WicsumResult r =
                wicsumSelectEarlyExit(scores, counts, 0.3f, 16);
            sinkU64 = sinkU64 + r.scanned + r.bucketsVisited;
        }));
    }
}

/** Info-gated baseline record for a context metric. */
bench::Record
infoRecord(const std::string &row, const std::string &metric,
           double value, const std::string &unit)
{
    bench::Record r;
    r.bench = "micro_core";
    r.panel = "context";
    r.row = row;
    r.metric = metric;
    r.value = value;
    r.unit = unit;
    r.gate = bench::Gate::Info;
    return r;
}

/** Non-dispatched neighbours, for longitudinal context (info only). */
void
runContextRows(bench::Reporter &rep, std::vector<bench::Record> &info)
{
    rep.beginPanel("context",
                   "Non-dispatched neighbours (host ns, info only)");
    rep.note("Wall-clock of the operations the kernels replace or "
             "feed; no dispatch, no gating.");

    const auto keys = randomKeys(2, 128, 3);
    const double nsCosine = nsPerOp([&] {
        sinkF32 = sinkF32 + cosineSimilarity(keys.data(),
                                             keys.data() + 128, 128);
    });
    rep.add("cosine dim=128", "ns", nsCosine, "ns", 1);
    info.push_back(infoRecord("cosine dim=128", "ns", nsCosine, "ns"));

    {
        const uint32_t n = 256, dim = 128;
        HashEncoder enc(dim, 32, 7);
        const auto tkeys = randomKeys(n, dim, 4);
        std::vector<BitSig> sigs;
        for (uint32_t t = 0; t < n; ++t)
            sigs.push_back(
                enc.encode(tkeys.data() + static_cast<size_t>(t) * dim));
        const double nsInsert = nsPerOp([&] {
            HCTable tab(dim, 32, 7);
            for (uint32_t t = 0; t < n; ++t)
                tab.insert(t,
                           tkeys.data() + static_cast<size_t>(t) * dim,
                           sigs[t]);
            sinkU64 = sinkU64 + tab.clusterCount();
        });
        rep.add("hc_insert n=256", "ns_per_token", nsInsert / n, "ns",
                1);
        info.push_back(infoRecord("hc_insert n=256", "ns_per_token",
                                  nsInsert / n, "ns"));
    }

    {
        const uint32_t n = 4096;
        Rng wrng(5);
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (uint32_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(wrng.uniform());
            counts[i] =
                1 + static_cast<uint32_t>(wrng.uniformInt(32));
        }
        const double nsRef = nsPerOp([&] {
            const WicsumResult r =
                wicsumSelectReference(scores, counts, 0.3f);
            sinkU64 = sinkU64 + r.scanned;
        });
        rep.add("wicsum_ref n=4096", "ns", nsRef, "ns", 1);
        info.push_back(
            infoRecord("wicsum_ref n=4096", "ns", nsRef, "ns"));
    }
}

void
reportRows(bench::Reporter &rep, const std::vector<RowResult> &rows)
{
    std::string curPanel;
    for (const auto &r : rows) {
        if (r.panel != curPanel) {
            curPanel = r.panel;
            rep.beginPanel(
                r.panel,
                "DRE kernel: " + r.panel +
                    " (ns/op per ISA + scalar/simd speedup)");
            rep.note("ns values are host wall-clock (info only); the "
                     "dimensionless speedup ratios are what "
                     "bench/perf_baseline.json floor-gates.");
        }
        rep.add(r.row, "scalar_ns", r.scalarNs, "ns", 1);
        for (const auto &[isa, ns] : r.simdNs)
            rep.add(r.row, std::string(kernels::isaName(isa)) + "_ns",
                    ns, "ns", 1);
        rep.add(r.row, "speedup", r.speedup, "x", 2);
    }
}

/**
 * Derive the floor-gated perf baseline from this run: ns metrics are
 * informational; a speedup only becomes a floor when this machine
 * measured at least 2x (floor = half the measured ratio, so shared
 * runners have headroom), otherwise it is informational too.
 */
bool
writePerfBaseline(const std::string &path,
                  const std::vector<RowResult> &rows,
                  const std::vector<bench::Record> &info)
{
    bench::Baseline base;
    base.defaultRelTol = 0.25;
    base.defaultAbsTol = 1e-6;
    auto push = [&](const std::string &panel, const std::string &row,
                    const std::string &metric, double value,
                    const std::string &unit, bench::Gate gate) {
        bench::Record r;
        r.bench = "micro_core";
        r.panel = panel;
        r.row = row;
        r.metric = metric;
        r.value = value;
        r.unit = unit;
        r.gate = gate;
        base.records.push_back(std::move(r));
    };
    for (const auto &r : rows) {
        push(r.panel, r.row, "scalar_ns", r.scalarNs, "ns",
             bench::Gate::Info);
        for (const auto &[isa, ns] : r.simdNs)
            push(r.panel, r.row,
                 std::string(kernels::isaName(isa)) + "_ns", ns, "ns",
                 bench::Gate::Info);
        const bool gate = r.speedup >= 2.0;
        push(r.panel, r.row, "speedup",
             gate ? r.speedup / 2.0 : r.speedup, "x",
             gate ? bench::Gate::Floor : bench::Gate::Info);
    }
    for (const auto &r : info)
        base.records.push_back(r);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << bench::renderBaseline(base)).flush()) {
        std::fprintf(stderr, "micro_core: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::printf("wrote %s: %zu perf metrics\n", path.c_str(),
                base.records.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the bench-local --write-perf-baseline flag before the
    // shared flag parser sees the command line.
    std::string perfBaselinePath;
    std::vector<char *> passThrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (i + 1 < argc &&
            std::strcmp(argv[i], "--write-perf-baseline") == 0) {
            perfBaselinePath = argv[++i];
            continue;
        }
        passThrough.push_back(argv[i]);
    }

    std::vector<RowResult> rows;
    std::vector<bench::Record> contextInfo;
    const int rc = bench::runBench(
        "micro_core", static_cast<int>(passThrough.size()),
        passThrough.data(),
        [&rows, &contextInfo](bench::Reporter &rep) {
            runKernelRows(rows);
            reportRows(rep, rows);
            runContextRows(rep, contextInfo);
        });
    if (rc != 0)
        return rc;
    if (!perfBaselinePath.empty() &&
        !writePerfBaseline(perfBaselinePath, rows, contextInfo))
        return 1;
    return 0;
}
