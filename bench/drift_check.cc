/**
 * @file
 * CLI for the bench drift gate (thin wrapper over
 * common/bench_compare.hh). Three modes:
 *
 *   drift_check --verify REPORT.json [--csv REPORT.csv]
 *               [--expect-bench NAME]
 *     Schema-validate one `--json` report; optionally check that the
 *     matching `--csv` output carries exactly the same records.
 *
 *   drift_check --baseline bench/baseline.json BENCH_*.json...
 *     Diff a run against the checked-in baseline with its tolerance
 *     bands. Exits 1 on any missing metric, unit mismatch, or
 *     out-of-tolerance value; new metrics only warn (refresh the
 *     baseline to start gating them).
 *
 *   drift_check --write-baseline OUT.json [--rel-tol V] [--abs-tol V]
 *               [--tol BENCH=V]... BENCH_*.json...
 *     Merge reports into a fresh baseline document (the refresh
 *     workflow; see bench/refresh_baseline.sh).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_compare.hh"

using namespace vrex::bench;

namespace
{

const char kUsage[] =
    "usage:\n"
    "  drift_check --verify REPORT.json [--csv REPORT.csv]"
    " [--expect-bench NAME]\n"
    "  drift_check --baseline BASELINE.json REPORT.json...\n"
    "  drift_check --write-baseline OUT.json [--rel-tol V]"
    " [--abs-tol V] [--tol BENCH=V]... REPORT.json...\n";

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "drift_check: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
loadReportFile(const std::string &path, LoadedReport &report)
{
    std::string text, err;
    if (!readFile(path, text))
        return false;
    if (!loadReport(text, report, err)) {
        std::fprintf(stderr, "drift_check: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

int
verifyMode(const std::vector<std::string> &args)
{
    std::string jsonPath, csvPath, expectBench;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--csv" && i + 1 < args.size())
            csvPath = args[++i];
        else if (args[i] == "--expect-bench" && i + 1 < args.size())
            expectBench = args[++i];
        else if (jsonPath.empty() && args[i][0] != '-')
            jsonPath = args[i];
        else {
            std::fputs(kUsage, stderr);
            return 2;
        }
    }
    if (jsonPath.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    LoadedReport report;
    if (!loadReportFile(jsonPath, report))
        return 1;
    if (!expectBench.empty() && report.bench != expectBench) {
        std::fprintf(stderr,
                     "drift_check: %s reports bench '%s', expected "
                     "'%s'\n", jsonPath.c_str(), report.bench.c_str(),
                     expectBench.c_str());
        return 1;
    }
    if (!csvPath.empty()) {
        std::string text, err;
        std::vector<Record> csv;
        if (!readFile(csvPath, text))
            return 1;
        if (!loadCsv(text, csv, err)) {
            std::fprintf(stderr, "drift_check: %s: %s\n",
                         csvPath.c_str(), err.c_str());
            return 1;
        }
        if (!sameRecords(report, csv, err)) {
            std::fprintf(stderr,
                         "drift_check: JSON/CSV mismatch: %s\n",
                         err.c_str());
            return 1;
        }
    }
    std::printf("%s: valid vrex-bench-1 report, bench '%s', %zu "
                "metrics%s\n", jsonPath.c_str(), report.bench.c_str(),
                report.records.size(),
                csvPath.empty() ? "" : ", CSV matches");
    return 0;
}

int
baselineMode(const std::vector<std::string> &args)
{
    if (args.size() < 2) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string text, err;
    Baseline baseline;
    if (!readFile(args[0], text))
        return 1;
    if (!loadBaseline(text, baseline, err)) {
        std::fprintf(stderr, "drift_check: %s: %s\n", args[0].c_str(),
                     err.c_str());
        return 1;
    }

    std::vector<LoadedReport> runs;
    for (size_t i = 1; i < args.size(); ++i) {
        LoadedReport report;
        if (!loadReportFile(args[i], report))
            return 1;
        runs.push_back(std::move(report));
    }

    DriftReport drift = compareToBaseline(baseline, runs);
    for (const auto &issue : drift.issues)
        std::fprintf(stderr, "DRIFT: %s\n", issue.describe().c_str());
    for (const auto &bench : drift.benchesWithoutBaseline)
        std::fprintf(stderr,
                     "warning: bench '%s' has no baseline records\n",
                     bench.c_str());
    if (drift.newMetrics)
        std::fprintf(stderr,
                     "warning: %zu metric(s) not in the baseline "
                     "(refresh to gate them)\n", drift.newMetrics);
    std::printf("drift_check: %zu metric(s) compared, %zu issue(s)\n",
                drift.compared, drift.issues.size());
    return drift.ok() ? 0 : 1;
}

int
writeBaselineMode(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string outPath = args[0];
    Baseline baseline;
    std::vector<std::string> inputs;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--rel-tol" && i + 1 < args.size()) {
            baseline.defaultRelTol = std::atof(args[++i].c_str());
        } else if (args[i] == "--abs-tol" && i + 1 < args.size()) {
            baseline.defaultAbsTol = std::atof(args[++i].c_str());
        } else if (args[i] == "--tol" && i + 1 < args.size()) {
            std::string spec = args[++i];
            size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "drift_check: bad --tol '%s' (want "
                             "BENCH=VALUE)\n", spec.c_str());
                return 2;
            }
            baseline.benchRelTol.emplace_back(
                spec.substr(0, eq),
                std::atof(spec.c_str() + eq + 1));
        } else {
            inputs.push_back(args[i]);
        }
    }
    if (inputs.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    for (const auto &path : inputs) {
        LoadedReport report;
        if (!loadReportFile(path, report))
            return 1;
        for (auto &r : report.records)
            baseline.records.push_back(std::move(r));
    }

    std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
    if (!out || !(out << renderBaseline(baseline)).flush()) {
        std::fprintf(stderr, "drift_check: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("wrote %s: %zu metrics from %zu report(s)\n",
                outPath.c_str(), baseline.records.size(),
                inputs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }
    std::string mode = args[0];
    args.erase(args.begin());
    if (mode == "--verify")
        return verifyMode(args);
    if (mode == "--baseline")
        return baselineMode(args);
    if (mode == "--write-baseline")
        return writeBaselineMode(args);
    std::fputs(kUsage, stderr);
    return 2;
}
