/**
 * @file
 * Quickstart: serve a streaming video QA session through
 * vrex::serve::Engine with the ReSV retrieval policy — stream a few
 * frames, ask a question, read the answer. The engine owns the model
 * and the policy (built from a declarative PolicySpec); the session
 * verbs queue work that executes on the engine's worker pool.
 */

#include <cstdio>

#include "serve/engine.hh"

using namespace vrex;

int
main()
{
    // 1. Describe the deployment: model geometry + retrieval policy.
    //    `tiny` runs in milliseconds; swap in ModelConfig::llama3_8b()
    //    to parameterize the timing model.
    serve::EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.policy = serve::PolicySpec::resv();  // N_hp=32, Th_hd=7.
    cfg.policy.resvCfg.thrWics = 0.5f;
    cfg.sessionSeed = 42;
    serve::Engine engine(cfg);

    // 2. Open a session and drive it with the lifecycle verbs:
    //    12 frames, then a 10-token question answered with 12 tokens.
    serve::SessionOptions opts;
    opts.name = "quickstart";
    serve::SessionId id = engine.createSession(opts);
    engine.feedFrame(id, 12);
    engine.ask(id, /*question_tokens=*/10, /*answer_tokens=*/12);

    // 3. result() drains the session and aggregates what happened.
    SessionRunResult result = engine.result(id);
    std::printf("quickstart: streamed %u frames, %u cached tokens\n",
                result.frames, result.totalTokens);
    std::printf("generated tokens:");
    for (uint32_t token : result.generated)
        std::printf(" %u", token);
    std::printf("\n");
    std::printf("retrieval ratio: frame stage %.1f%%, "
                "text stage %.1f%%\n",
                100.0 * result.frameRatio, 100.0 * result.textRatio);

    // 4. The owned policy stays inspectable while the session is open.
    const ResvPolicy *resv = engine.policy(id).resv();
    std::printf("hash clusters: %.1f tokens/cluster on average, "
                "HC tables use %.1f KiB\n",
                resv->avgClusterSize(),
                resv->tableMemoryBytes() / 1024.0);

    engine.closeSession(id);
    return 0;
}
