#include "llm/kv_cache.hh"

namespace vrex
{

KVCache::KVCache(const ModelConfig &config)
    : cfg(config), layers(config.nLayers)
{
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    for (auto &l : layers) {
        l.keys = Matrix(0, kv_dim);
        l.values = Matrix(0, kv_dim);
    }
}

void
KVCache::beginTokens(uint32_t count, int32_t frame_id, TokenStage stage)
{
    VREX_ASSERT(pendingTokens == 0 ||
                layers[cfg.nLayers - 1].keys.rows() == meta.size(),
                "beginTokens before previous block finished all layers");
    uint32_t base = static_cast<uint32_t>(meta.size());
    for (uint32_t i = 0; i < count; ++i)
        meta.push_back({frame_id, stage, base + i});
    pendingTokens = count;
    if (frame_id >= 0 && static_cast<uint32_t>(frame_id) >= numFrames)
        numFrames = static_cast<uint32_t>(frame_id) + 1;
}

void
KVCache::appendLayer(uint32_t layer, const Matrix &k, const Matrix &v)
{
    VREX_ASSERT(layer < cfg.nLayers, "layer out of range");
    VREX_ASSERT(k.rows() == pendingTokens && v.rows() == pendingTokens,
                "KV block size does not match beginTokens");
    LayerKV &l = layers[layer];
    for (uint32_t r = 0; r < k.rows(); ++r) {
        l.keys.appendRow(k.row(r));
        l.values.appendRow(v.row(r));
    }
}

std::pair<uint32_t, uint32_t>
KVCache::frameTokenRange(int32_t frame_id) const
{
    uint32_t first = 0, last = 0;
    bool found = false;
    for (uint32_t t = 0; t < meta.size(); ++t) {
        if (meta[t].frameId == frame_id) {
            if (!found) {
                first = t;
                found = true;
            }
            last = t + 1;
        }
    }
    if (!found)
        return {0, 0};
    return {first, last};
}

uint64_t
KVCache::totalBytes(double bytesPerElem) const
{
    return static_cast<uint64_t>(meta.size()) *
        cfg.kvBytesPerToken(bytesPerElem);
}

void
KVCache::clear()
{
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    for (auto &l : layers) {
        l.keys = Matrix(0, kv_dim);
        l.values = Matrix(0, kv_dim);
    }
    meta.clear();
    pendingTokens = 0;
    numFrames = 0;
}

void
KVCache::serialize(serial::ByteWriter &w) const
{
    w.put<uint32_t>(static_cast<uint32_t>(layers.size()));
    for (const auto &l : layers) {
        serializeMatrix(w, l.keys);
        serializeMatrix(w, l.values);
    }
    // TokenMeta is written field-by-field: memcpy'ing the struct
    // would embed uninitialized padding bytes, breaking the
    // re-serialize == original-blob byte-equality contract.
    w.put<uint64_t>(meta.size());
    for (const auto &m : meta) {
        w.put<int32_t>(m.frameId);
        w.put<uint8_t>(static_cast<uint8_t>(m.stage));
        w.put<uint32_t>(m.position);
    }
    w.put<uint32_t>(pendingTokens);
    w.put<uint32_t>(numFrames);
}

void
KVCache::restore(serial::ByteReader &r)
{
    const uint32_t n_layers = r.get<uint32_t>();
    if (n_layers != layers.size())
        throw serial::SerialError(
            "KVCache::restore: blob has " + std::to_string(n_layers) +
            " layers, cache is configured for " +
            std::to_string(layers.size()));
    for (auto &l : layers) {
        l.keys = restoreMatrix(r);
        l.values = restoreMatrix(r);
    }
    const uint64_t n_meta = r.get<uint64_t>();
    // Each meta record is 9 payload bytes; reject a corrupted count
    // before reserving.
    if (n_meta > r.remaining() / 9)
        throw serial::SerialError(
            "KVCache::restore: truncated blob (meta count)");
    meta.clear();
    meta.reserve(static_cast<size_t>(n_meta));
    for (uint64_t i = 0; i < n_meta; ++i) {
        TokenMeta m;
        m.frameId = r.get<int32_t>();
        m.stage = static_cast<TokenStage>(r.get<uint8_t>());
        m.position = r.get<uint32_t>();
        meta.push_back(m);
    }
    pendingTokens = r.get<uint32_t>();
    numFrames = r.get<uint32_t>();
}

} // namespace vrex
