#include "pipeline/streaming_session.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex
{

StreamingSession::StreamingSession(const ModelConfig &model_config,
                                   SelectionPolicy *policy,
                                   uint64_t seed_value)
    : seed(seed_value), llm(model_config, seed_value)
{
    llm.setPolicy(policy);
}

void
StreamingSession::begin(const std::string &name,
                        const VideoConfig &video, uint64_t script_seed,
                        std::vector<uint32_t> forced_tokens)
{
    llm.resetSession();
    const ModelConfig &cfg = llm.config();
    const uint32_t vision_dim = std::max(32u, cfg.dModel / 4);
    stream = std::make_unique<Stream>(video, vision_dim, cfg.dModel,
                                      seed ^ script_seed, seed, name);

    streamName = name;
    streamVideo = video;
    scriptSeed = script_seed;
    forced = std::move(forced_tokens);
    forcedPos = 0;
    frameId = 0;
    questionNo = 0;

    generatedTokens.clear();
    logitsPerStep.clear();
    ratioSums.clear();
    ratioBlocks = 0;
    framesFed = 0;
    frameSum = textSum = 0.0;
    frameN = textN = 0;
}

void
StreamingSession::accumulate(const BlockStats &stats)
{
    if (stats.pastLen == 0)
        return;
    const double ratio = stats.meanRatio();
    if (stats.stage == TokenStage::VideoFrame) {
        frameSum += ratio;
        ++frameN;
    } else {
        textSum += ratio;
        ++textN;
    }
    // Per-layer / per-head accumulation (all stages).
    if (ratioSums.empty()) {
        ratioSums.assign(stats.selectedPerHead.size(),
                         std::vector<double>(
                             stats.selectedPerHead.empty()
                                 ? 0
                                 : stats.selectedPerHead[0].size(),
                             0.0));
    }
    for (size_t l = 0; l < stats.selectedPerHead.size(); ++l)
        for (size_t h = 0; h < stats.selectedPerHead[l].size(); ++h)
            ratioSums[l][h] +=
                static_cast<double>(stats.selectedPerHead[l][h]) /
                stats.pastLen;
    ++ratioBlocks;
}

void
StreamingSession::feedFrame()
{
    VREX_ASSERT(stream != nullptr, "feedFrame before begin()");
    Matrix latents = stream->gen.nextFrameLatents();
    Matrix embeds =
        stream->projector.project(stream->tower.encode(latents));
    accumulate(llm.prefillFrame(embeds, frameId++));
    ++framesFed;
}

void
StreamingSession::feedQuestion(uint32_t tokens)
{
    VREX_ASSERT(stream != nullptr, "feedQuestion before begin()");
    auto ids = WorkloadGenerator::questionTokens(
        tokens, llm.config().vocabSize,
        seed ^ scriptSeed ^ (0x9e37u + questionNo++));
    accumulate(llm.prefillText(ids));
}

void
StreamingSession::generate(uint32_t tokens)
{
    VREX_ASSERT(stream != nullptr, "generate before begin()");
    for (uint32_t i = 0; i < tokens; ++i) {
        // Argmax of the current state.
        std::vector<float> logits = llm.lastLogits();
        uint32_t best = static_cast<uint32_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        generatedTokens.push_back(best);
        logitsPerStep.push_back(std::move(logits));
        // Advance with the forced token when provided.
        uint32_t next = best;
        if (forcedPos < forced.size())
            next = forced[forcedPos++];
        accumulate(llm.forwardBlock(llm.embedTokens({next}), -1,
                                    TokenStage::GeneratedText));
    }
}

void
StreamingSession::generateStepBatched(
    const std::vector<StreamingSession *> &sessions)
{
    VREX_ASSERT(!sessions.empty(), "batched step needs sessions");
    if (sessions.size() == 1) {
        sessions[0]->generate(1);
        return;
    }

    // Stable-sort by weight seed so equal-seed sessions form
    // contiguous runs for the grouped matmuls. Order cannot change
    // results: every fused op is row-independent.
    std::vector<StreamingSession *> ordered = sessions;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const StreamingSession *a,
                        const StreamingSession *b) {
                         return a->seed < b->seed;
                     });

    const uint32_t n = static_cast<uint32_t>(ordered.size());
    std::vector<Model *> models(n);
    for (uint32_t i = 0; i < n; ++i) {
        VREX_ASSERT(ordered[i]->stream != nullptr,
                    "generate before begin()");
        models[i] = &ordered[i]->llm;
    }

    // Fused logits, then the per-session argmax / recording /
    // forcing steps of generate(), in session order.
    Matrix logits = Model::lastLogitsBatched(models);
    const uint32_t vocab = models[0]->config().vocabSize;
    const uint32_t d = models[0]->config().dModel;
    Matrix x(n, d);
    for (uint32_t i = 0; i < n; ++i) {
        StreamingSession &s = *ordered[i];
        const float *row = logits.row(i);
        const uint32_t best = static_cast<uint32_t>(
            std::max_element(row, row + vocab) - row);
        s.generatedTokens.push_back(best);
        s.logitsPerStep.emplace_back(row, row + vocab);
        uint32_t next = best;
        if (s.forcedPos < s.forced.size())
            next = s.forced[s.forcedPos++];
        const Matrix embed = s.llm.embedTokens({next});
        std::copy_n(embed.row(0), d, x.row(i));
    }

    std::vector<BlockStats> stats = Model::forwardBlockBatched(
        models, std::move(x), -1, TokenStage::GeneratedText);
    for (uint32_t i = 0; i < n; ++i)
        ordered[i]->accumulate(stats[i]);
}

void
StreamingSession::apply(const SessionEvent &event)
{
    switch (event.type) {
      case SessionEvent::Type::Frame:
        feedFrame();
        break;
      case SessionEvent::Type::Question:
        feedQuestion(event.tokens);
        break;
      case SessionEvent::Type::Generate:
        generate(event.tokens);
        break;
    }
}

std::vector<SessionEvent>
StreamingSession::unitEvents(const SessionEvent &event)
{
    if (event.type != SessionEvent::Type::Generate)
        return {event};
    return std::vector<SessionEvent>(
        event.tokens, SessionEvent{SessionEvent::Type::Generate, 1});
}

SessionRunResult
StreamingSession::snapshot() const
{
    SessionRunResult out;
    out.generated = generatedTokens;
    out.stepLogits = logitsPerStep;
    out.frames = framesFed;
    out.frameRatio = frameN ? frameSum / frameN : 1.0;
    out.textRatio = textN ? textSum / textN : 1.0;
    if (ratioBlocks > 0) {
        out.layerHeadRatio = ratioSums;
        for (auto &layer : out.layerHeadRatio)
            for (auto &v : layer)
                v /= ratioBlocks;
    }
    out.totalTokens = llm.cache().tokenCount();
    return out;
}

SessionRunResult
StreamingSession::run(const SessionScript &script)
{
    return run(script, {});
}

SessionRunResult
StreamingSession::run(const SessionScript &script,
                      const std::vector<uint32_t> &forced_tokens)
{
    begin(script.name, script.video, script.seed, forced_tokens);
    for (const auto &event : script.events)
        apply(event);
    return snapshot();
}

std::vector<uint8_t>
StreamingSession::serialize() const
{
    serial::ByteWriter w(kBlobVersion);

    // Identity block: validated (not applied) by restore().
    w.put<uint64_t>(seed);
    const ModelConfig &cfg = llm.config();
    w.putString(cfg.name);
    w.put<uint32_t>(cfg.nLayers);
    w.put<uint32_t>(cfg.dModel);
    w.put<uint32_t>(cfg.nHeads);
    w.put<uint32_t>(cfg.nKvHeads);
    w.put<uint32_t>(cfg.ffnDim);
    w.put<uint32_t>(cfg.vocabSize);
    w.put<float>(cfg.ropeTheta);
    w.putBool(llm.policy() != nullptr);

    // Stream block (absent before begin()).
    w.putBool(stream != nullptr);
    if (stream) {
        w.putString(streamName);
        w.put<uint32_t>(streamVideo.tokensPerFrame);
        w.put<uint32_t>(streamVideo.latentDim);
        w.put<double>(streamVideo.driftRate);
        w.put<double>(streamVideo.sceneCutProb);
        w.put<double>(streamVideo.tokenNoise);
        w.put<double>(streamVideo.tokenIdentity);
        w.put<uint64_t>(scriptSeed);
        stream->gen.serialize(w);
    }

    // Executor position.
    w.putVec(forced);
    w.put<uint32_t>(forcedPos);
    w.put<int32_t>(frameId);
    w.put<uint32_t>(questionNo);

    // Model mutable state (KV cache, last hidden, history).
    llm.serializeState(w);

    // Retrieval-policy state (the full decorator stack forwards).
    if (llm.policy())
        llm.policy()->serializeState(w);

    // Snapshot accumulators.
    w.putVec(generatedTokens);
    w.put<uint64_t>(logitsPerStep.size());
    for (const auto &step : logitsPerStep)
        w.putVec(step);
    w.put<uint64_t>(ratioSums.size());
    for (const auto &layer : ratioSums)
        w.putVec(layer);
    w.put<uint32_t>(ratioBlocks);
    w.put<uint32_t>(framesFed);
    w.put<double>(frameSum);
    w.put<double>(textSum);
    w.put<uint32_t>(frameN);
    w.put<uint32_t>(textN);

    return w.finish();
}

void
StreamingSession::restore(const std::vector<uint8_t> &blob)
{
    serial::ByteReader r(blob, kBlobVersion);

    // Identity block.
    const uint64_t blob_seed = r.get<uint64_t>();
    if (blob_seed != seed)
        throw serial::SerialError(
            "StreamingSession::restore: seed mismatch (blob " +
            std::to_string(blob_seed) + ", session " +
            std::to_string(seed) + ")");
    const ModelConfig &cfg = llm.config();
    const std::string blob_model = r.getString();
    const bool geom_ok = blob_model == cfg.name &&
        r.get<uint32_t>() == cfg.nLayers &&
        r.get<uint32_t>() == cfg.dModel &&
        r.get<uint32_t>() == cfg.nHeads &&
        r.get<uint32_t>() == cfg.nKvHeads &&
        r.get<uint32_t>() == cfg.ffnDim &&
        r.get<uint32_t>() == cfg.vocabSize &&
        r.get<float>() == cfg.ropeTheta;
    if (!geom_ok)
        throw serial::SerialError(
            "StreamingSession::restore: model geometry mismatch "
            "(blob was serialized from model '" + blob_model + "')");
    const bool blob_has_policy = r.getBool();
    if (blob_has_policy != (llm.policy() != nullptr))
        throw serial::SerialError(
            "StreamingSession::restore: policy presence mismatch "
            "(blob and session must carry the same policy spec)");

    // Stream block: rebuild exactly as begin() does, then overlay
    // the serialized generator position.
    if (r.getBool()) {
        streamName = r.getString();
        streamVideo.tokensPerFrame = r.get<uint32_t>();
        streamVideo.latentDim = r.get<uint32_t>();
        streamVideo.driftRate = r.get<double>();
        streamVideo.sceneCutProb = r.get<double>();
        streamVideo.tokenNoise = r.get<double>();
        streamVideo.tokenIdentity = r.get<double>();
        scriptSeed = r.get<uint64_t>();
        const uint32_t vision_dim = std::max(32u, cfg.dModel / 4);
        stream = std::make_unique<Stream>(streamVideo, vision_dim,
                                          cfg.dModel,
                                          seed ^ scriptSeed, seed,
                                          streamName);
        stream->gen.restore(r);
    } else {
        stream.reset();
        streamName.clear();
        streamVideo = VideoConfig{};
        scriptSeed = 0;
    }

    // Executor position.
    forced = r.getVec<uint32_t>();
    forcedPos = r.get<uint32_t>();
    frameId = r.get<int32_t>();
    questionNo = r.get<uint32_t>();

    // Model mutable state.
    llm.restoreState(r);

    // Policy state.
    if (llm.policy())
        llm.policy()->restoreState(r);

    // Snapshot accumulators.
    generatedTokens = r.getVec<uint32_t>();
    const uint64_t n_steps = r.get<uint64_t>();
    logitsPerStep.clear();
    for (uint64_t i = 0; i < n_steps; ++i)
        logitsPerStep.push_back(r.getVec<float>());
    const uint64_t n_layers = r.get<uint64_t>();
    ratioSums.clear();
    for (uint64_t i = 0; i < n_layers; ++i)
        ratioSums.push_back(r.getVec<double>());
    ratioBlocks = r.get<uint32_t>();
    framesFed = r.get<uint32_t>();
    frameSum = r.get<double>();
    textSum = r.get<double>();
    frameN = r.get<uint32_t>();
    textN = r.get<uint32_t>();

    r.expectEnd();
}

} // namespace vrex
