#include "sim/pcie_model.hh"

// PcieModel is header-only; this anchors the translation unit.
