/**
 * @file
 * Property suite locking the bit-identical contract of the runtime-
 * dispatched DRE kernels (core/kernels): every compiled ISA variant
 * must produce output exactly equal to the scalar reference — for the
 * raw kernels, and end-to-end through BitSig / HashEncoder / HCTable /
 * WiCSum. Also covers the dispatch plumbing itself (selection,
 * overrides, unavailable ISAs) and the hardening added alongside it
 * (width-mismatch assert, debug bounds asserts, bitWords overflow).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/rng.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "core/kernels.hh"
#include "core/wicsum.hh"
#include "tensor/matrix.hh"
#include "testutil.hh"

using namespace vrex;

namespace
{

/** Force one ISA for a scope; teardown re-runs the auto selection. */
class ForcedIsa
{
  public:
    explicit ForcedIsa(kernels::Isa isa)
        : ok_(kernels::setActive(isa))
    {
    }
    ~ForcedIsa() { kernels::resetToAuto(); }
    bool ok() const { return ok_; }

  private:
    bool ok_;
};

/** Every ISA this binary can actually run, Scalar first. */
std::vector<kernels::Isa>
runnableIsas()
{
    std::vector<kernels::Isa> out;
    for (kernels::Isa isa : kernels::compiledIsas()) {
        if (kernels::isaAvailable(isa))
            out.push_back(isa);
    }
    return out;
}

/** The Ops table of each runnable ISA (selection restored after). */
std::vector<std::pair<kernels::Isa, const kernels::Ops *>>
runnableOps()
{
    std::vector<std::pair<kernels::Isa, const kernels::Ops *>> out;
    for (kernels::Isa isa : runnableIsas()) {
        EXPECT_TRUE(kernels::setActive(isa));
        out.emplace_back(isa, &kernels::active());
    }
    kernels::resetToAuto();
    return out;
}

/** Bit-by-bit Hamming reference, independent of the word kernels. */
uint32_t
naiveHamming(const std::vector<uint64_t> &a,
             const std::vector<uint64_t> &b, uint32_t nbits)
{
    uint32_t d = 0;
    for (uint32_t i = 0; i < nbits; ++i) {
        const uint64_t abit = (a[i >> 6] >> (i & 63u)) & 1u;
        const uint64_t bbit = (b[i >> 6] >> (i & 63u)) & 1u;
        d += static_cast<uint32_t>(abit ^ bbit);
    }
    return d;
}

class CoreKernelsTest : public testutil::SeededRngTest
{
};

// ---------------------------------------------------------------------
// Hamming: every ISA == scalar == naive, across widths and patterns.
// ---------------------------------------------------------------------

TEST_F(CoreKernelsTest, HammingEquivalenceAllWidths)
{
    const auto ops = runnableOps();
    ASSERT_FALSE(ops.empty());
    for (uint32_t nbits = 1; nbits <= 512; ++nbits) {
        const size_t nwords = bitWords(nbits);
        std::vector<uint64_t> a(nwords), b(nwords);
        for (size_t w = 0; w < nwords; ++w) {
            a[w] = rng.nextU64();
            b[w] = rng.nextU64();
        }
        // Mask padding so the naive reference sees the same universe.
        if (nbits & 63u) {
            const uint64_t mask = (1ull << (nbits & 63u)) - 1;
            a.back() &= mask;
            b.back() &= mask;
        }
        const uint32_t want = naiveHamming(a, b, nbits);
        for (const auto &[isa, table] : ops) {
            EXPECT_EQ(table->hammingWords(a.data(), b.data(), nwords),
                      want)
                << "isa=" << kernels::isaName(isa)
                << " nbits=" << nbits;
        }
    }
}

TEST_F(CoreKernelsTest, HammingAdversarialPatterns)
{
    const auto ops = runnableOps();
    const std::vector<uint64_t> fills = {
        0x0ull, ~0x0ull, 0xAAAAAAAAAAAAAAAAull,
        0x5555555555555555ull, 0x8000000000000001ull};
    for (uint32_t nbits :
         {1u, 63u, 64u, 65u, 127u, 128u, 255u, 256u, 511u, 512u}) {
        const size_t nwords = bitWords(nbits);
        for (uint64_t fa : fills) {
            for (uint64_t fb : fills) {
                std::vector<uint64_t> a(nwords, fa), b(nwords, fb);
                if (nbits & 63u) {
                    const uint64_t mask =
                        (1ull << (nbits & 63u)) - 1;
                    a.back() &= mask;
                    b.back() &= mask;
                }
                const uint32_t want = naiveHamming(a, b, nbits);
                for (const auto &[isa, table] : ops) {
                    EXPECT_EQ(table->hammingWords(a.data(), b.data(),
                                                  nwords),
                              want)
                        << "isa=" << kernels::isaName(isa)
                        << " nbits=" << nbits;
                }
            }
        }
    }
}

TEST_F(CoreKernelsTest, BitSigHammingUsesDispatchedKernel)
{
    for (kernels::Isa isa : runnableIsas()) {
        ForcedIsa guard(isa);
        ASSERT_TRUE(guard.ok());
        BitSig a(130), b(130);
        for (uint32_t i = 0; i < 130; i += 3)
            a.set(i, true);
        for (uint32_t i = 0; i < 130; i += 5)
            b.set(i, true);
        EXPECT_EQ(a.hamming(b),
                  naiveHamming(a.raw(), b.raw(), 130))
            << "isa=" << kernels::isaName(isa);
        EXPECT_EQ(a.hamming(a), 0u);
    }
}

// ---------------------------------------------------------------------
// Hash encode: raw kernel and HashEncoder path, all ISAs vs scalar.
// ---------------------------------------------------------------------

TEST_F(CoreKernelsTest, HashEncodeKernelEquivalence)
{
    const auto ops = runnableOps();
    for (uint32_t dim : {3u, 8u, 16u, 128u}) {
        for (uint32_t nbits : {1u, 7u, 8u, 31u, 32u, 33u, 64u, 512u}) {
            // Build the two plane views by hand: random row-major
            // planes plus the zero-padded transpose the SIMD side
            // consumes.
            const uint32_t stride =
                (nbits + kernels::kEncodeBlock - 1) /
                kernels::kEncodeBlock * kernels::kEncodeBlock;
            Matrix rows(nbits, dim);
            Matrix cols(dim, stride);
            for (uint32_t b = 0; b < nbits; ++b) {
                for (uint32_t j = 0; j < dim; ++j) {
                    const float v = static_cast<float>(
                        rng.uniform(-1.0, 1.0));
                    rows.at(b, j) = v;
                    cols.at(j, b) = v;
                }
            }
            const kernels::HashPlanes view{rows.row(0), cols.row(0),
                                           dim, nbits, stride};
            std::vector<float> key(dim);
            rng.fillGaussian(key.data(), dim, 1.0f);

            const size_t nwords = bitWords(nbits);
            // Poisoned output buffers: the kernels must overwrite
            // every word, including zeroing the padding bits.
            std::vector<uint64_t> want(nwords, ~0ull);
            kernels::scalarOps().hashEncode(view, key.data(),
                                            want.data());
            if (nbits & 63u) {
                EXPECT_EQ(want.back() >> (nbits & 63u), 0u);
            }
            for (const auto &[isa, table] : ops) {
                std::vector<uint64_t> got(nwords, ~0ull);
                table->hashEncode(view, key.data(), got.data());
                EXPECT_EQ(got, want)
                    << "isa=" << kernels::isaName(isa)
                    << " dim=" << dim << " nbits=" << nbits;
            }
        }
    }
}

TEST_F(CoreKernelsTest, HashEncoderCrossIsaEquivalence)
{
    for (uint32_t dim : {3u, 16u, 128u}) {
        for (uint32_t nbits : {1u, 31u, 32u, 33u, 512u}) {
            const HashEncoder enc(dim, nbits, /*seed=*/42);
            std::vector<float> key(dim);
            rng.fillGaussian(key.data(), dim, 1.0f);
            const std::vector<float> zero(dim, 0.0f);

            BitSig want, wantZero;
            {
                ForcedIsa guard(kernels::Isa::Scalar);
                ASSERT_TRUE(guard.ok());
                want = enc.encode(key.data());
                wantZero = enc.encode(zero.data());
            }
            EXPECT_EQ(want.size(), nbits);
            for (kernels::Isa isa : runnableIsas()) {
                ForcedIsa guard(isa);
                ASSERT_TRUE(guard.ok());
                // operator== compares widths AND all words, so this
                // also locks the padding-stays-zero contract.
                EXPECT_TRUE(enc.encode(key.data()) == want)
                    << "isa=" << kernels::isaName(isa)
                    << " dim=" << dim << " nbits=" << nbits;
                EXPECT_TRUE(enc.encode(zero.data()) == wantZero)
                    << "zero key, isa=" << kernels::isaName(isa);
            }
        }
    }
}

TEST_F(CoreKernelsTest, EncodeRowsCrossIsaEquivalence)
{
    const uint32_t dim = 24, nbits = 48, n = 17;
    const HashEncoder enc(dim, nbits, 7);
    Matrix keys(n, dim);
    rng.fillGaussian(keys.row(0), keys.size(), 1.0f);

    std::vector<BitSig> want;
    {
        ForcedIsa guard(kernels::Isa::Scalar);
        ASSERT_TRUE(guard.ok());
        want = enc.encodeRows(keys);
    }
    ASSERT_EQ(want.size(), n);
    for (kernels::Isa isa : runnableIsas()) {
        ForcedIsa guard(isa);
        ASSERT_TRUE(guard.ok());
        const auto got = enc.encodeRows(keys);
        ASSERT_EQ(got.size(), n);
        for (uint32_t i = 0; i < n; ++i)
            EXPECT_TRUE(got[i] == want[i])
                << "row " << i << " isa=" << kernels::isaName(isa);
    }
}

// ---------------------------------------------------------------------
// minMaxF32 / rangeBitmap: exact equality across ISAs.
// ---------------------------------------------------------------------

TEST_F(CoreKernelsTest, MinMaxEquivalence)
{
    const auto ops = runnableOps();
    for (size_t n : {1u, 2u, 7u, 8u, 9u, 31u, 64u, 1000u}) {
        std::vector<float> s(n);
        for (auto &v : s)
            v = static_cast<float>(rng.uniform(-100.0, 100.0));
        float wantLo, wantHi;
        kernels::scalarOps().minMaxF32(s.data(), n, &wantLo, &wantHi);
        for (const auto &[isa, table] : ops) {
            float lo = 0, hi = 0;
            table->minMaxF32(s.data(), n, &lo, &hi);
            EXPECT_EQ(lo, wantLo)
                << "isa=" << kernels::isaName(isa) << " n=" << n;
            EXPECT_EQ(hi, wantHi)
                << "isa=" << kernels::isaName(isa) << " n=" << n;
        }
        // All-equal input: lo == hi exactly.
        std::fill(s.begin(), s.end(), 3.25f);
        for (const auto &[isa, table] : ops) {
            float lo = 0, hi = 0;
            table->minMaxF32(s.data(), n, &lo, &hi);
            EXPECT_EQ(lo, 3.25f) << kernels::isaName(isa);
            EXPECT_EQ(hi, 3.25f) << kernels::isaName(isa);
        }
    }
}

TEST_F(CoreKernelsTest, RangeBitmapEquivalence)
{
    const auto ops = runnableOps();
    for (size_t n : {1u, 5u, 8u, 64u, 65u, 333u}) {
        std::vector<float> s(n);
        for (auto &v : s)
            v = static_cast<float>(rng.uniform());
        // Boundary landmines: values exactly at the bucket edges.
        s[0] = 0.25f;
        if (n > 2)
            s[n / 2] = 0.75f;
        const size_t nwords = bitWords(static_cast<uint32_t>(n));
        for (bool closedTop : {false, true}) {
            std::vector<uint64_t> want(nwords, ~0ull);
            kernels::scalarOps().rangeBitmap(s.data(), n, 0.25, 0.75,
                                             closedTop, want.data());
            if (n & 63u) {
                EXPECT_EQ(want.back() >> (n & 63u), 0u);
            }
            for (const auto &[isa, table] : ops) {
                std::vector<uint64_t> got(nwords, ~0ull);
                table->rangeBitmap(s.data(), n, 0.25, 0.75, closedTop,
                                   got.data());
                EXPECT_EQ(got, want)
                    << "isa=" << kernels::isaName(isa) << " n=" << n
                    << " closedTop=" << closedTop;
            }
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end: WiCSum selection and HCTable clustering are invariant
// under the active ISA.
// ---------------------------------------------------------------------

TEST_F(CoreKernelsTest, WicsumCrossIsaEquivalence)
{
    for (size_t n : {1u, 17u, 256u, 4096u}) {
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (size_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.uniform());
            counts[i] =
                1 + static_cast<uint32_t>(rng.uniformInt(32));
        }
        WicsumResult want;
        {
            ForcedIsa guard(kernels::Isa::Scalar);
            ASSERT_TRUE(guard.ok());
            want = wicsumSelectEarlyExit(scores, counts, 0.3f, 16);
        }
        for (kernels::Isa isa : runnableIsas()) {
            ForcedIsa guard(isa);
            ASSERT_TRUE(guard.ok());
            const WicsumResult got =
                wicsumSelectEarlyExit(scores, counts, 0.3f, 16);
            EXPECT_EQ(got.selected, want.selected)
                << "isa=" << kernels::isaName(isa) << " n=" << n;
            EXPECT_EQ(got.scanned, want.scanned);
            EXPECT_EQ(got.bucketsVisited, want.bucketsVisited);
        }
    }
    // Degenerate row: all scores equal (hi <= lo fallback path).
    const std::vector<float> flat(64, 0.5f);
    const std::vector<uint32_t> ones(64, 1);
    WicsumResult want;
    {
        ForcedIsa guard(kernels::Isa::Scalar);
        ASSERT_TRUE(guard.ok());
        want = wicsumSelectEarlyExit(flat, ones, 0.3f, 16);
    }
    for (kernels::Isa isa : runnableIsas()) {
        ForcedIsa guard(isa);
        ASSERT_TRUE(guard.ok());
        const WicsumResult got =
            wicsumSelectEarlyExit(flat, ones, 0.3f, 16);
        EXPECT_EQ(got.selected, want.selected);
        EXPECT_EQ(got.bucketsVisited, want.bucketsVisited);
    }
}

TEST_F(CoreKernelsTest, HCTableCrossIsaEquivalence)
{
    const uint32_t dim = 16, nbits = 32, n = 200;
    std::vector<float> keys(static_cast<size_t>(n) * dim);
    rng.fillGaussian(keys.data(), keys.size(), 1.0f);

    auto run = [&](kernels::Isa isa, std::vector<uint32_t> &assign) {
        ForcedIsa guard(isa);
        ASSERT_TRUE(guard.ok());
        const HashEncoder enc(dim, nbits, 9);
        HCTable tab(dim, nbits, 7);
        for (uint32_t t = 0; t < n; ++t) {
            const float *key = keys.data() +
                               static_cast<size_t>(t) * dim;
            assign.push_back(tab.insert(t, key, enc.encode(key)));
        }
    };
    std::vector<uint32_t> want;
    run(kernels::Isa::Scalar, want);
    ASSERT_EQ(want.size(), n);
    for (kernels::Isa isa : runnableIsas()) {
        std::vector<uint32_t> got;
        run(isa, got);
        EXPECT_EQ(got, want) << "isa=" << kernels::isaName(isa);
    }
}

// ---------------------------------------------------------------------
// Dispatch plumbing: selection, parsing, unavailable ISAs.
// ---------------------------------------------------------------------

TEST(CoreKernelsDispatchTest, ScalarAlwaysCompiledAndSelectable)
{
    const auto compiled = kernels::compiledIsas();
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.front(), kernels::Isa::Scalar);
    EXPECT_TRUE(kernels::isaAvailable(kernels::Isa::Scalar));
    {
        ForcedIsa guard(kernels::Isa::Scalar);
        EXPECT_TRUE(guard.ok());
        EXPECT_EQ(kernels::activeIsa(), kernels::Isa::Scalar);
        EXPECT_STREQ(kernels::active().name, "scalar");
    }
    // resetToAuto restored a runnable selection.
    EXPECT_TRUE(kernels::isaAvailable(kernels::activeIsa()));
}

TEST(CoreKernelsDispatchTest, SetActiveUnavailableIsRefused)
{
    for (kernels::Isa isa :
         {kernels::Isa::Scalar, kernels::Isa::Avx2,
          kernels::Isa::Neon}) {
        if (kernels::isaAvailable(isa))
            continue;
        const kernels::Isa before = kernels::activeIsa();
        EXPECT_FALSE(kernels::setActive(isa))
            << kernels::isaName(isa);
        EXPECT_EQ(kernels::activeIsa(), before)
            << "refused setActive must not change the selection";
    }
}

TEST(CoreKernelsDispatchTest, ParseIsa)
{
    kernels::Isa isa = kernels::Isa::Scalar;
    bool isAuto = false;
    EXPECT_TRUE(kernels::parseIsa("avx2", isa, isAuto));
    EXPECT_EQ(isa, kernels::Isa::Avx2);
    EXPECT_FALSE(isAuto);
    EXPECT_TRUE(kernels::parseIsa("neon", isa, isAuto));
    EXPECT_EQ(isa, kernels::Isa::Neon);
    EXPECT_TRUE(kernels::parseIsa("scalar", isa, isAuto));
    EXPECT_EQ(isa, kernels::Isa::Scalar);
    isa = kernels::Isa::Neon;
    EXPECT_TRUE(kernels::parseIsa("auto", isa, isAuto));
    EXPECT_TRUE(isAuto);
    EXPECT_EQ(isa, kernels::Isa::Neon) << "auto must not touch out";
    EXPECT_FALSE(kernels::parseIsa("sse9", isa, isAuto));
    EXPECT_FALSE(kernels::parseIsa("", isa, isAuto));
}

TEST(CoreKernelsDispatchTest, IsaNames)
{
    EXPECT_STREQ(kernels::isaName(kernels::Isa::Scalar), "scalar");
    EXPECT_STREQ(kernels::isaName(kernels::Isa::Avx2), "avx2");
    EXPECT_STREQ(kernels::isaName(kernels::Isa::Neon), "neon");
}

// ---------------------------------------------------------------------
// Hardening: width-mismatch assert, debug bounds asserts, bitWords
// overflow.
// ---------------------------------------------------------------------

TEST(BitSigDeathTest, HammingWidthMismatchAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BitSig a(64), b(128);
    EXPECT_DEATH({ (void)a.hamming(b); }, "width mismatch");
}

#ifndef NDEBUG
TEST(BitSigDeathTest, OutOfRangeAccessAbortsInDebug)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BitSig sig(64);
    EXPECT_DEATH(sig.set(64, true), "out of range");
    EXPECT_DEATH((void)sig.get(1000), "out of range");
}
#endif

TEST(BitsTest, BitWordsNoOverflow)
{
    EXPECT_EQ(bitWords(0), 0u);
    EXPECT_EQ(bitWords(1), 1u);
    EXPECT_EQ(bitWords(64), 1u);
    EXPECT_EQ(bitWords(65), 2u);
    // (UINT32_MAX + 63) wraps in 32-bit arithmetic and used to yield
    // 0 words; the widened computation returns the true count.
    EXPECT_EQ(bitWords(UINT32_MAX), 67108864u);
    EXPECT_EQ(bitWords(UINT32_MAX - 62), 67108864u);
}

} // namespace
