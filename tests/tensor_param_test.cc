/**
 * @file
 * Parameterized property tests for the tensor kernels: matmul shape
 * sweeps against a naive reference, RoPE round-trip/relative-position
 * properties across dimensions and positions, and softmax invariants.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "tensor/matrix.hh"
#include "tensor/ops.hh"

using namespace vrex;

namespace
{

Matrix
randomMatrix(uint32_t r, uint32_t c, uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    rng.fillGaussian(m.raw(), m.size(), 1.0f);
    return m;
}

/** Naive triple-loop reference matmul. */
Matrix
naiveMatmul(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows(), b.cols());
    for (uint32_t i = 0; i < a.rows(); ++i)
        for (uint32_t j = 0; j < b.cols(); ++j) {
            double s = 0.0;
            for (uint32_t k = 0; k < a.cols(); ++k)
                s += double(a.at(i, k)) * b.at(k, j);
            out.at(i, j) = static_cast<float>(s);
        }
    return out;
}

} // namespace

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulShapes, MatchesNaiveReference)
{
    auto [m, k, n] = GetParam();
    Matrix a = randomMatrix(m, k, 1000 + m);
    Matrix b = randomMatrix(k, n, 2000 + n);
    Matrix fast;
    matmul(a, b, fast);
    Matrix slow = naiveMatmul(a, b);
    ASSERT_TRUE(fast.sameShape(slow));
    for (uint32_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast.raw()[i], slow.raw()[i],
                    1e-3f * (1.0f + std::abs(slow.raw()[i])));
}

TEST_P(MatmulShapes, TransposedVariantAgrees)
{
    auto [m, k, n] = GetParam();
    Matrix a = randomMatrix(m, k, 3000 + m);
    Matrix bT = randomMatrix(n, k, 4000 + n);
    Matrix b(k, n);
    for (uint32_t r = 0; r < bT.rows(); ++r)
        for (uint32_t c = 0; c < bT.cols(); ++c)
            b.at(c, r) = bT.at(r, c);
    Matrix viaT, direct;
    matmulTransposed(a, bT, viaT);
    matmul(a, b, direct);
    for (uint32_t i = 0; i < viaT.size(); ++i)
        EXPECT_NEAR(viaT.raw()[i], direct.raw()[i],
                    1e-3f * (1.0f + std::abs(direct.raw()[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(1, 17, 3),
                      std::make_tuple(5, 8, 13),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(7, 33, 2),
                      std::make_tuple(32, 5, 40),
                      std::make_tuple(3, 64, 64)));

class RopeDims : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RopeDims, InverseRoundTrip)
{
    const uint32_t dim = GetParam();
    Rng rng(7);
    std::vector<float> head(dim), orig(dim);
    rng.fillGaussian(head.data(), dim, 1.0f);
    orig = head;
    for (uint32_t pos : {0u, 1u, 17u, 900u}) {
        std::vector<float> work = orig;
        applyRope(work.data(), dim, pos);
        applyRopeInverse(work.data(), dim, pos);
        for (uint32_t d = 0; d < dim; ++d)
            EXPECT_NEAR(work[d], orig[d], 2e-4f)
                << "dim=" << dim << " pos=" << pos;
    }
}

TEST_P(RopeDims, NormPreservedAtAnyPosition)
{
    const uint32_t dim = GetParam();
    Rng rng(8);
    std::vector<float> head(dim);
    rng.fillGaussian(head.data(), dim, 1.0f);
    const float before = norm2(head.data(), dim);
    for (uint32_t pos : {3u, 111u, 4096u}) {
        std::vector<float> work = head;
        applyRope(work.data(), dim, pos);
        EXPECT_NEAR(norm2(work.data(), dim), before, 2e-3f);
    }
}

TEST_P(RopeDims, RelativePositionProperty)
{
    const uint32_t dim = GetParam();
    Rng rng(9);
    std::vector<float> q(dim), k(dim);
    rng.fillGaussian(q.data(), dim, 1.0f);
    rng.fillGaussian(k.data(), dim, 1.0f);
    auto dot_at = [&](uint32_t pq, uint32_t pk) {
        std::vector<float> qq = q, kk = k;
        applyRope(qq.data(), dim, pq);
        applyRope(kk.data(), dim, pk);
        return dot(qq.data(), kk.data(), dim);
    };
    EXPECT_NEAR(dot_at(12, 4), dot_at(112, 104), 5e-3f);
    EXPECT_NEAR(dot_at(40, 40), dot_at(7, 7), 5e-3f);
}

INSTANTIATE_TEST_SUITE_P(Dims, RopeDims,
                         ::testing::Values(2u, 8u, 16u, 32u, 64u,
                                           128u));

class SoftmaxSizes : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SoftmaxSizes, SumsToOneAndOrderPreserving)
{
    const uint32_t n = GetParam();
    Rng rng(10 + n);
    std::vector<float> row(n);
    rng.fillGaussian(row.data(), n, 3.0f);
    std::vector<float> before = row;
    softmax(row.data(), n);
    float sum = 0.0f;
    for (float v : row)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    for (uint32_t i = 1; i < n; ++i) {
        if (before[i] > before[i - 1])
            EXPECT_GE(row[i], row[i - 1]);
        else
            EXPECT_LE(row[i], row[i - 1] + 1e-7f);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxSizes,
                         ::testing::Values(1u, 2u, 5u, 64u, 511u));

// Regression: a fully masked row (every score -inf, as a selection
// policy that drops all past tokens would produce) used to become
// all-NaN — exp(-inf - -inf) — and the NaN slipped past the
// `sum <= 0` renormalization guard. The contract is now uniform.
TEST_P(SoftmaxSizes, FullyMaskedRowIsUniformNotNaN)
{
    const uint32_t n = GetParam();
    const float ninf = -std::numeric_limits<float>::infinity();
    std::vector<float> row(n, ninf);
    softmax(row.data(), n);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(row[i], 1.0f / static_cast<float>(n)) << i;
}

TEST(SoftmaxMasked, PartiallyMaskedRowIgnoresMaskedEntries)
{
    const float ninf = -std::numeric_limits<float>::infinity();
    std::vector<float> row = {ninf, 0.0f, ninf, 0.0f};
    softmax(row.data(), 4);
    EXPECT_FLOAT_EQ(row[0], 0.0f);
    EXPECT_FLOAT_EQ(row[2], 0.0f);
    EXPECT_FLOAT_EQ(row[1], 0.5f);
    EXPECT_FLOAT_EQ(row[3], 0.5f);
}

TEST(SoftmaxMasked, SoftmaxRowsHandlesMixedMaskedRows)
{
    const float ninf = -std::numeric_limits<float>::infinity();
    Matrix m(2, 3);
    m.at(0, 0) = ninf;
    m.at(0, 1) = ninf;
    m.at(0, 2) = ninf;
    m.at(1, 0) = 1.0f;
    m.at(1, 1) = 1.0f;
    m.at(1, 2) = ninf;
    softmaxRows(m);
    for (uint32_t j = 0; j < 3; ++j)
        EXPECT_FLOAT_EQ(m.at(0, j), 1.0f / 3.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 0.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 0.5f);
    EXPECT_FLOAT_EQ(m.at(1, 2), 0.0f);
}

// The fused batched-generation kernel: per output row, grouped
// matmul must be BIT-identical to a per-group matmulTransposed —
// same dot() per element, only the loop order differs.
TEST(MatmulGrouped, BitIdenticalToPerGroupTransposed)
{
    const uint32_t k = 24, n = 10;
    Matrix a = randomMatrix(7, k, 501);
    Matrix w0 = randomMatrix(n, k, 502);
    Matrix w1 = randomMatrix(n, k, 503);
    // Three groups over two distinct weight matrices (a shared one
    // reappearing, as equal-seed sessions produce).
    std::vector<RowGroup> groups = {
        {0, 3, &w0}, {3, 4, &w1}, {4, 7, &w0}};
    Matrix fused;
    matmulTransposedGrouped(a, groups, fused);
    ASSERT_EQ(fused.rows(), 7u);
    ASSERT_EQ(fused.cols(), n);
    for (const RowGroup &g : groups) {
        Matrix part(g.rowEnd - g.rowBegin, k);
        for (uint32_t r = g.rowBegin; r < g.rowEnd; ++r)
            for (uint32_t c = 0; c < k; ++c)
                part.at(r - g.rowBegin, c) = a.at(r, c);
        Matrix solo;
        matmulTransposed(part, *g.bT, solo);
        for (uint32_t r = 0; r < part.rows(); ++r)
            for (uint32_t c = 0; c < n; ++c)
                EXPECT_EQ(fused.at(g.rowBegin + r, c), solo.at(r, c))
                    << "row " << g.rowBegin + r << " col " << c;
    }
}

TEST(MatmulGrouped, SingleGroupMatchesMatmulTransposedExactly)
{
    Matrix a = randomMatrix(5, 16, 601);
    Matrix w = randomMatrix(9, 16, 602);
    Matrix fused, solo;
    matmulTransposedGrouped(a, {{0, 5, &w}}, fused);
    matmulTransposed(a, w, solo);
    ASSERT_TRUE(fused.sameShape(solo));
    for (uint32_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused.raw()[i], solo.raw()[i]) << i;
}

TEST(MatmulGroupedDeathTest, RejectsGappyOrShortTiling)
{
    Matrix a = randomMatrix(4, 8, 701);
    Matrix w = randomMatrix(3, 8, 702);
    Matrix out;
    EXPECT_DEATH(
        matmulTransposedGrouped(a, {{0, 2, &w}, {3, 4, &w}}, out),
        "tile");
    EXPECT_DEATH(matmulTransposedGrouped(a, {{0, 3, &w}}, out),
                 "cover every row");
    Matrix bad = randomMatrix(3, 9, 703); // Wrong inner dim.
    EXPECT_DEATH(
        matmulTransposedGrouped(a, {{0, 4, &bad}}, out), "");
}
