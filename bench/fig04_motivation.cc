/**
 * @file
 * Fig. 4 reproduction (motivation):
 *  (a) KV cache memory footprint vs. video duration at 10 FPS,
 *      batch 4 — exceeds edge GPU memory within minutes;
 *  (b) end-to-end latency breakdown of InfiniGen on A100 vs. cache
 *      length — prefill dominates as the cache grows (83% at 80K);
 *  (c) retrieval overhead split at 40K with prefill retrieval
 *      (InfiniGenP): KV prediction ~40%, KV fetch ~39% of latency.
 */

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "llm/config.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    ModelConfig model = ModelConfig::llama3_8b();

    rep.beginPanel("a", "Fig. 4a: memory footprint @10FPS, batch 4");
    const double tokens_per_frame = 10.0;
    const double weights_gb = model.paramBytes(2.0) / 1e9;
    for (int minutes : {1, 2, 4, 6, 8, 10}) {
        std::string row = std::to_string(minutes) + "min";
        double tokens = minutes * 60.0 * 10.0 * tokens_per_frame;
        double kv_gb =
            tokens * model.kvBytesPerToken(2.0) * 4 /* batch */ / 1e9;
        rep.add(row, "kv_cache", kv_gb, "GB", 1);
        rep.add(row, "weights", weights_gb, "GB", 1);
        rep.add(row, "total", kv_gb + weights_gb, "GB", 1);
        rep.add(row, "exceeds_32gb_edge",
                kv_gb + weights_gb > 32.0 ? 1.0 : 0.0, "", 0);
    }
    rep.note("exceeds_32gb_edge=1 marks footprints past a 32 GB "
             "edge GPU");

    rep.beginPanel("b",
                   "Fig. 4b: E2E latency breakdown, InfiniGen on A100");
    for (uint32_t cache : {0u, 1000u, 10000u, 20000u, 40000u, 80000u}) {
        RunConfig rc;
        rc.hw = AcceleratorConfig::a100();
        rc.method = MethodModel::infinigen();
        rc.cacheTokens = cache;
        SessionResult s = SystemModel(rc).session(26, 25, 39);
        double total = s.totalMs();
        std::string row = bench::kLabel(cache);
        rep.add(row, "vision", 100.0 * s.visionMs / total, "%", 1);
        rep.add(row, "prefill", 100.0 * s.prefillMs / total, "%", 1);
        rep.add(row, "generation", 100.0 * s.generationMs / total, "%",
                1);
        rep.add(row, "total", total / 1e3, "s", 2);
    }
    rep.note("paper: prefill reaches 83% of latency at 80K");

    rep.beginPanel("c", "Fig. 4c: retrieval overhead at 40K "
                        "(InfiniGenP)");
    {
        RunConfig rc;
        rc.hw = AcceleratorConfig::a100();
        rc.method = MethodModel::infinigenP();
        rc.cacheTokens = 40000;
        PhaseResult r = SystemModel(rc).framePhase();
        double total = r.totalMs;
        double llm = r.denseMs + r.attentionMs + r.visionMs;
        rep.add("infinigenp@40K", "kv_prediction",
                100.0 * r.predictionMs / total, "%", 1);
        rep.add("infinigenp@40K", "kv_fetch",
                100.0 * r.fetchMs / total, "%", 1);
        rep.add("infinigenp@40K", "llm_compute", 100.0 * llm / total,
                "%", 1);
        rep.note("overlap-normalized shares; paper: prediction 40%, "
                 "fetch 39%, LLM 21%");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig04", argc, argv, run);
}
