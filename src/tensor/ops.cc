#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace vrex
{

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    VREX_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
    out = Matrix(a.rows(), b.cols());
    const uint32_t m = a.rows(), k = a.cols(), n = b.cols();
    for (uint32_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *orow = out.row(i);
        for (uint32_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.row(p);
            for (uint32_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
matmulTransposed(const Matrix &a, const Matrix &bT, Matrix &out)
{
    VREX_ASSERT(a.cols() == bT.cols(), "matmulT shape mismatch");
    out = Matrix(a.rows(), bT.rows());
    for (uint32_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *orow = out.row(i);
        for (uint32_t j = 0; j < bT.rows(); ++j)
            orow[j] = dot(arow, bT.row(j), a.cols());
    }
}

void
matmulTransposedGrouped(const Matrix &a,
                        const std::vector<RowGroup> &groups,
                        Matrix &out)
{
    VREX_ASSERT(!groups.empty(), "grouped matmulT needs groups");
    const Matrix *first = groups.front().bT;
    VREX_ASSERT(first != nullptr, "grouped matmulT null weights");
    out = Matrix(a.rows(), first->rows());
    uint32_t next_row = 0;
    for (const RowGroup &g : groups) {
        VREX_ASSERT(g.bT != nullptr, "grouped matmulT null weights");
        VREX_ASSERT(g.bT->rows() == first->rows() &&
                        g.bT->cols() == a.cols(),
                    "grouped matmulT shape mismatch");
        VREX_ASSERT(g.rowBegin == next_row && g.rowEnd >= g.rowBegin &&
                        g.rowEnd <= a.rows(),
                    "grouped matmulT groups must tile the rows");
        next_row = g.rowEnd;
        // Weight row outer / batch row inner: one streamed weight row
        // serves the whole group. Each element is still one dot(), so
        // every output row is bit-identical to matmulTransposed().
        for (uint32_t j = 0; j < g.bT->rows(); ++j) {
            const float *brow = g.bT->row(j);
            for (uint32_t i = g.rowBegin; i < g.rowEnd; ++i)
                out.row(i)[j] = dot(a.row(i), brow, a.cols());
        }
    }
    VREX_ASSERT(next_row == a.rows(),
                "grouped matmulT groups must cover every row");
}

void
softmax(float *row, uint32_t n)
{
    if (n == 0)
        return;
    float mx = row[0];
    for (uint32_t i = 1; i < n; ++i)
        mx = std::max(mx, row[i]);
    if (mx == -std::numeric_limits<float>::infinity()) {
        // Fully masked row (all -inf): exp(-inf - -inf) would turn
        // every entry into NaN and the sum<=0 guard below cannot
        // catch NaN. Contract: a fully masked row is uniform.
        const float u = 1.0f / static_cast<float>(n);
        for (uint32_t i = 0; i < n; ++i)
            row[i] = u;
        return;
    }
    float sum = 0.0f;
    for (uint32_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }
    if (sum <= 0.0f)
        return;
    float inv = 1.0f / sum;
    for (uint32_t i = 0; i < n; ++i)
        row[i] *= inv;
}

void
softmaxRows(Matrix &m)
{
    for (uint32_t r = 0; r < m.rows(); ++r)
        softmax(m.row(r), m.cols());
}

void
rmsNorm(float *x, const float *weight, uint32_t n, float eps)
{
    double ss = 0.0;
    for (uint32_t i = 0; i < n; ++i)
        ss += double(x[i]) * x[i];
    float scale = 1.0f /
        std::sqrt(static_cast<float>(ss / n) + eps);
    for (uint32_t i = 0; i < n; ++i)
        x[i] = x[i] * scale * weight[i];
}

void
silu(float *x, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] = x[i] / (1.0f + std::exp(-x[i]));
}

void
hadamard(float *x, const float *y, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] *= y[i];
}

void
addInPlace(float *x, const float *y, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] += y[i];
}

void
applyRope(float *head, uint32_t dim, uint32_t pos, float thetaBase)
{
    VREX_ASSERT(dim % 2 == 0, "RoPE needs an even head dimension");
    const uint32_t half = dim / 2;
    for (uint32_t i = 0; i < half; ++i) {
        float freq = std::pow(thetaBase,
                              -2.0f * static_cast<float>(i) / dim);
        float angle = static_cast<float>(pos) * freq;
        float c = std::cos(angle), s = std::sin(angle);
        float x0 = head[i];
        float x1 = head[i + half];
        head[i] = x0 * c - x1 * s;
        head[i + half] = x0 * s + x1 * c;
    }
}

void
applyRopeInverse(float *head, uint32_t dim, uint32_t pos,
                 float thetaBase)
{
    VREX_ASSERT(dim % 2 == 0, "RoPE needs an even head dimension");
    const uint32_t half = dim / 2;
    for (uint32_t i = 0; i < half; ++i) {
        float freq = std::pow(thetaBase,
                              -2.0f * static_cast<float>(i) / dim);
        float angle = -static_cast<float>(pos) * freq;
        float c = std::cos(angle), s = std::sin(angle);
        float x0 = head[i];
        float x1 = head[i + half];
        head[i] = x0 * c - x1 * s;
        head[i + half] = x0 * s + x1 * c;
    }
}

float
dot(const float *a, const float *b, uint32_t n)
{
    float s = 0.0f;
    for (uint32_t i = 0; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

float
norm2(const float *a, uint32_t n)
{
    return std::sqrt(dot(a, a, n));
}

float
cosineSimilarity(const float *a, const float *b, uint32_t n)
{
    float na = norm2(a, n), nb = norm2(b, n);
    if (na <= 0.0f || nb <= 0.0f)
        return 0.0f;
    return dot(a, b, n) / (na * nb);
}

std::vector<uint32_t>
topkIndices(const std::vector<float> &scores, uint32_t k)
{
    std::vector<uint32_t> idx(scores.size());
    std::iota(idx.begin(), idx.end(), 0u);
    k = std::min<uint32_t>(k, static_cast<uint32_t>(scores.size()));
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](uint32_t a, uint32_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

} // namespace vrex
