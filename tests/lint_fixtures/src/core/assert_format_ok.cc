// Fixture: well-paired asserts must pass — including %% escapes,
// `*` width (consumes an extra vararg), adjacent-literal
// concatenation, commas nested in call arguments, and the
// condition-only form.
#include "common/logging.hh"

int
sum(int a, int b)
{
    return a + b;
}

void
fx(unsigned x, double load)
{
    VREX_ASSERT(x < 4, "x=%u at 100%% load %.2f", x, load);
    VREX_ASSERT(x != 9, "sum=%d width=%*d", sum(1, 2), 8, 3);
    VREX_DEBUG_ASSERT(x != 11, "two-part "
                               "literal: %u",
                      x);
    VREX_ASSERT(x != 12);
}
