/**
 * @file
 * Fig. 18 reproduction: roofline analysis of the frame-processing
 * stage at 40K cache, batch 4 on the edge platforms.
 *
 * Paper anchors: operational intensity ~15.2 Op/B; AGX+FlexGen
 * achieves only 6.6% of peak (PCIe bottleneck), AGX+ReKV ~15%, and
 * V-Rex8 reaches 71.5% — a 10.8x throughput improvement.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/roofline.hh"
#include "sim/system_model.hh"

using namespace vrex;

int
main()
{
    struct Entry
    {
        std::string label;
        AcceleratorConfig hw;
        MethodModel method;
    };
    std::vector<Entry> entries = {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+ReKV", AcceleratorConfig::agxOrin(),
         MethodModel::rekv()},
        {"V-Rex8", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };

    bench::header("Fig. 18: roofline at 40K cache, batch 4 (edge)");
    std::printf("%-14s %10s %12s %12s %10s\n", "system", "OI Op/B",
                "achieved TF", "roof TF", "% of roof");
    double flexgen_tf = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
        RunConfig rc;
        rc.hw = entries[i].hw;
        rc.method = entries[i].method;
        rc.cacheTokens = 40000;
        rc.batch = 4;
        PhaseResult r = SystemModel(rc).framePhase();
        RooflinePoint p = rooflineFor(r, rc.hw);
        if (i == 0)
            flexgen_tf = p.achievedTflops;
        std::printf("%-14s %10.1f %12.2f %12.2f %9.1f%%\n",
                    entries[i].label.c_str(), p.opIntensity,
                    p.achievedTflops, p.roofTflops,
                    100.0 * p.fractionOfRoof());
    }
    {
        RunConfig rc;
        rc.hw = AcceleratorConfig::vrex8();
        rc.method = MethodModel::resvFull();
        rc.cacheTokens = 40000;
        rc.batch = 4;
        RooflinePoint p =
            rooflineFor(SystemModel(rc).framePhase(), rc.hw);
        std::printf("\nV-Rex8 over AGX+FlexGen: %.1fx achieved "
                    "throughput (paper: 10.8x)\n",
                    p.achievedTflops / flexgen_tf);
    }
    bench::note("paper: OI 15.2; FlexGen 6.6%, ReKV ~15%, V-Rex 71.5% "
                "of theoretical peak");
    return 0;
}
