// Fixture: allow() naming a rule the linter does not know is an
// allow-syntax finding (catches typos that would silently suppress
// nothing).
// vrex-lint: allow(nondet-clocks) -- justified, but the rule id has a typo
int fx = 0;
