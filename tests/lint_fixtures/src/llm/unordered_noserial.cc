// Fixture: the same unordered container in a file with no
// serialize() is fine — the rule scopes to the blob contract only.
#include <unordered_map>

std::unordered_map<int, int> fxCache;
