/**
 * @file
 * The batching stage between the scheduler and the model: at each
 * dispatch round the BatchPlanner decides whether the round's
 * primary session and the currently *ready* peers form a fused
 * cross-session generation step, and accounts for what the
 * dispatcher actually did.
 *
 * Division of labour: the planner owns the batching *policy*
 * (eligibility of a queued event, min/max fused-step size, the
 * coalesced/solo counters surfaced as Stats::batch); the Scheduler
 * owns the *mechanism* (ready-list surgery, per-member wait/slice
 * accounting, the executor handoff). The planner holds no lock of
 * its own — the Scheduler mutates it under its dispatch mutex, which
 * is also why the planner keeps no back-references into scheduler
 * state.
 *
 * Determinism: the planner never inspects clocks, RNGs or session
 * contents — eligibility is a pure function of the queued event, so
 * whether steps coalesce depends only on what is ready at dispatch
 * time, and per-session results never depend on it at all (the fused
 * execution path is bit-identical per session; see
 * pipeline/streaming_session.hh).
 */

#ifndef VREX_SERVE_BATCH_PLANNER_HH
#define VREX_SERVE_BATCH_PLANNER_HH

#include <cstdint>

#include "serve/stats.hh"
#include "video/workload.hh"

namespace vrex::serve
{

class BatchPlanner
{
  public:
    explicit BatchPlanner(BatchConfig config);

    const BatchConfig &config() const { return cfg; }

    /** Whether the fused path is available at all. */
    bool enabled() const { return cfg.enabled && cfg.maxBatch >= 2; }

    /**
     * Whether a queue whose *front* pending event is @p front may
     * join a fused generation step: only single-token-steppable
     * Generate work qualifies (a Generate{n} contributes its next
     * unit step; Frame and Question never batch — their execution is
     * not a generation step).
     */
    static bool eligible(const SessionEvent &front);

    /**
     * Size of the fused step to run this round, given the primary
     * plus @p claimable_peers eligible ready peers: 0 means run the
     * normal solo slice, otherwise the member count (primary
     * included), capped at maxBatch and only >= minBatch.
     */
    uint32_t planStepSize(uint32_t claimable_peers) const;

    /** Record a fused step of @p members sessions. */
    void recordCoalesced(uint32_t members);

    /** Record @p generate_units Generate items that ran solo. */
    void recordSolo(uint64_t generate_units);

    /** Counter snapshot (Stats::batch). */
    const BatchStats &stats() const { return st; }

  private:
    BatchConfig cfg;
    BatchStats st;
};

} // namespace vrex::serve

#endif // VREX_SERVE_BATCH_PLANNER_HH
