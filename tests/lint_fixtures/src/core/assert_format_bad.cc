// Fixture: assert-format must catch every mispairing class — too few
// varargs, too many, and a non-literal format expression.
#include "common/logging.hh"

void
fx(unsigned x, const char *name)
{
    VREX_ASSERT(x < 4, "x=%u name=%s", x);            // 2 vs 1
    VREX_DEBUG_ASSERT(x != 9, "x ok", x);             // 0 vs 1
    VREX_ASSERT(name != nullptr, name);               // non-literal
}
