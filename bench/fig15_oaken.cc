/**
 * @file
 * Fig. 15 reproduction: throughput (FPS) at batch 16 versus the
 * Oaken quantizing accelerator and the plain AGX Orin with resident
 * KV. The GPU OOMs first as the cache grows; Oaken's int4 cache
 * survives longer but also hits the wall; V-Rex's retrieval keeps
 * running beyond 20K (paper: ~7 FPS sustained).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

int
main()
{
    bench::header("Fig. 15: throughput vs Oaken, batch 16 @ frame");
    std::printf("%8s %14s %14s %14s\n", "cache", "AGX Orin", "Oaken",
                "V-Rex8");
    for (uint32_t cache : bench::cacheSweep()) {
        std::printf("%7uK", cache / 1000);

        struct Point
        {
            AcceleratorConfig hw;
            MethodModel method;
        } points[3] = {
            {AcceleratorConfig::agxOrin(),
             MethodModel::gpuNoOffload()},
            {AcceleratorConfig::agxOrin(), MethodModel::oaken()},
            {AcceleratorConfig::vrex8(), MethodModel::resvFull()},
        };
        for (const auto &p : points) {
            RunConfig rc;
            rc.hw = p.hw;
            rc.method = p.method;
            rc.cacheTokens = cache;
            rc.batch = 16;
            SystemModel sm(rc);
            if (sm.wouldOom())
                std::printf(" %14s", "OOM");
            else
                std::printf(" %10.1fFPS", sm.frameFps());
        }
        std::printf("\n");
    }
    bench::note("paper: AGX OOMs from 10K, Oaken beyond 20K; V-Rex "
                "sustains ~7 FPS at large lengths; at 1K V-Rex is "
                "1.5x/1.1x over AGX/Oaken");

    bench::header("Extension (paper SVII): ReSV stacked on int4 KV");
    std::printf("%8s %14s %14s\n", "cache", "V-Rex8", "V-Rex8+int4");
    for (uint32_t cache : bench::cacheSweep()) {
        std::printf("%7uK", cache / 1000);
        for (MethodModel m :
             {MethodModel::resvFull(), MethodModel::resvOaken()}) {
            RunConfig rc;
            rc.hw = AcceleratorConfig::vrex8();
            rc.method = m;
            rc.cacheTokens = cache;
            rc.batch = 16;
            std::printf(" %10.1fFPS", SystemModel(rc).frameFps());
        }
        std::printf("\n");
    }
    bench::note("quantization shrinks every fetched byte ~3.6x, so "
                "the combination extends real-time range further — "
                "the composability the paper's discussion claims");
    return 0;
}
