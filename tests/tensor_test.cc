/**
 * @file
 * Unit tests for the tensor kernels: matmul, softmax, RMSNorm, SiLU,
 * RoPE, similarity and top-k.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hh"
#include "tensor/ops.hh"

using namespace vrex;

TEST(Matrix, ShapeAndAccess)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.at(1, 2), 5.0f);
    EXPECT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, AppendRow)
{
    Matrix m(0, 3);
    float row[3] = {1, 2, 3};
    m.appendRow(row);
    m.appendRow(row);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.at(1, 0), 1.0f);
}

TEST(Matrix, Fill)
{
    Matrix m(2, 2);
    m.fill(7.0f);
    for (uint32_t r = 0; r < 2; ++r)
        for (uint32_t c = 0; c < 2; ++c)
            EXPECT_EQ(m.at(r, c), 7.0f);
}

TEST(Ops, MatmulIdentity)
{
    Matrix a(2, 2), eye(2, 2), out;
    a.at(0, 0) = 1; a.at(0, 1) = 2;
    a.at(1, 0) = 3; a.at(1, 1) = 4;
    eye.at(0, 0) = 1; eye.at(1, 1) = 1;
    matmul(a, eye, out);
    EXPECT_TRUE(out.sameShape(a));
    EXPECT_EQ(out.at(0, 1), 2.0f);
    EXPECT_EQ(out.at(1, 0), 3.0f);
}

TEST(Ops, MatmulKnownValues)
{
    Matrix a(1, 3), b(3, 2), out;
    for (uint32_t i = 0; i < 3; ++i)
        a.at(0, i) = static_cast<float>(i + 1);
    // b = [[1,2],[3,4],[5,6]]
    float vals[6] = {1, 2, 3, 4, 5, 6};
    std::copy(vals, vals + 6, b.raw());
    matmul(a, b, out);
    EXPECT_EQ(out.at(0, 0), 22.0f);  // 1*1+2*3+3*5.
    EXPECT_EQ(out.at(0, 1), 28.0f);
}

TEST(Ops, MatmulTransposedMatchesMatmul)
{
    Matrix a(3, 4), b(4, 5), bT(5, 4), out1, out2;
    for (uint32_t i = 0; i < a.size(); ++i)
        a.raw()[i] = static_cast<float>(i) * 0.25f - 1.0f;
    for (uint32_t r = 0; r < 4; ++r)
        for (uint32_t c = 0; c < 5; ++c) {
            b.at(r, c) = static_cast<float>(r * 5 + c) * 0.1f;
            bT.at(c, r) = b.at(r, c);
        }
    matmul(a, b, out1);
    matmulTransposed(a, bT, out2);
    ASSERT_TRUE(out1.sameShape(out2));
    for (uint32_t i = 0; i < out1.size(); ++i)
        EXPECT_NEAR(out1.raw()[i], out2.raw()[i], 1e-4f);
}

TEST(Ops, SoftmaxSumsToOne)
{
    float row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    softmax(row, 4);
    float sum = 0.0f;
    for (float v : row)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(row[3], row[0]);
}

TEST(Ops, SoftmaxStableForLargeInputs)
{
    float row[2] = {1000.0f, 1001.0f};
    softmax(row, 2);
    EXPECT_NEAR(row[0] + row[1], 1.0f, 1e-6f);
    EXPECT_FALSE(std::isnan(row[0]));
}

TEST(Ops, SoftmaxUniform)
{
    float row[5] = {2, 2, 2, 2, 2};
    softmax(row, 5);
    for (float v : row)
        EXPECT_NEAR(v, 0.2f, 1e-6f);
}

TEST(Ops, RmsNormUnitOutput)
{
    float x[4] = {3.0f, -3.0f, 3.0f, -3.0f};
    float w[4] = {1.0f, 1.0f, 1.0f, 1.0f};
    rmsNorm(x, w, 4);
    // RMS of the output should be ~1.
    float ss = 0.0f;
    for (float v : x)
        ss += v * v;
    EXPECT_NEAR(std::sqrt(ss / 4.0f), 1.0f, 1e-3f);
}

TEST(Ops, RmsNormAppliesGain)
{
    float x[2] = {1.0f, 1.0f};
    float w[2] = {2.0f, 0.5f};
    rmsNorm(x, w, 2);
    EXPECT_NEAR(x[0] / x[1], 4.0f, 1e-4f);
}

TEST(Ops, Silu)
{
    float x[3] = {0.0f, 10.0f, -10.0f};
    silu(x, 3);
    EXPECT_EQ(x[0], 0.0f);
    EXPECT_NEAR(x[1], 10.0f, 1e-3f);
    EXPECT_NEAR(x[2], 0.0f, 1e-3f);
}

TEST(Ops, HadamardAndAdd)
{
    float x[3] = {1, 2, 3}, y[3] = {2, 3, 4};
    hadamard(x, y, 3);
    EXPECT_EQ(x[1], 6.0f);
    addInPlace(x, y, 3);
    EXPECT_EQ(x[1], 9.0f);
}

TEST(Ops, RopePreservesNorm)
{
    float head[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    float before = norm2(head, 8);
    applyRope(head, 8, 17);
    EXPECT_NEAR(norm2(head, 8), before, 1e-4f);
}

TEST(Ops, RopeIdentityAtPositionZero)
{
    float head[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    float copy[8];
    std::copy(head, head + 8, copy);
    applyRope(head, 8, 0);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(head[i], copy[i], 1e-6f);
}

TEST(Ops, RopeRelativePropertyDotDependsOnDistance)
{
    // q at position p and k at position p+d: dot depends only on d.
    float q[8] = {1, 0.5f, -1, 2, 0.3f, -0.7f, 1.1f, 0.9f};
    float k[8] = {0.2f, 1, 0.7f, -0.5f, 1.3f, 0.1f, -0.2f, 0.8f};

    auto dot_at = [&](uint32_t pq, uint32_t pk) {
        float qq[8], kk[8];
        std::copy(q, q + 8, qq);
        std::copy(k, k + 8, kk);
        applyRope(qq, 8, pq);
        applyRope(kk, 8, pk);
        return dot(qq, kk, 8);
    };
    EXPECT_NEAR(dot_at(5, 2), dot_at(25, 22), 1e-3f);
    EXPECT_NEAR(dot_at(10, 10), dot_at(3, 3), 1e-3f);
}

TEST(Ops, CosineSimilarity)
{
    float a[3] = {1, 0, 0}, b[3] = {0, 1, 0}, c[3] = {2, 0, 0};
    EXPECT_NEAR(cosineSimilarity(a, b, 3), 0.0f, 1e-6f);
    EXPECT_NEAR(cosineSimilarity(a, c, 3), 1.0f, 1e-6f);
    float z[3] = {0, 0, 0};
    EXPECT_EQ(cosineSimilarity(a, z, 3), 0.0f);
}

TEST(Ops, TopkIndices)
{
    std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
    auto top2 = topkIndices(scores, 2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0], 1u);
    EXPECT_EQ(top2[1], 3u);
}

TEST(Ops, TopkClampsK)
{
    std::vector<float> scores = {0.3f, 0.1f};
    auto top = topkIndices(scores, 10);
    EXPECT_EQ(top.size(), 2u);
}

TEST(Ops, TopkTiesStable)
{
    std::vector<float> scores = {0.5f, 0.5f, 0.5f};
    auto top = topkIndices(scores, 2);
    EXPECT_EQ(top[0], 0u);
    EXPECT_EQ(top[1], 1u);
}
