/**
 * @file
 * Table I reproduction: hardware specifications of the compared
 * platforms, as configured in the simulator.
 */

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"

using namespace vrex;

namespace
{

void
row(bench::Reporter &rep, const AcceleratorConfig &hw)
{
    rep.add(hw.name, "peak", hw.peakTflops, "TFLOPS", 1);
    rep.add(hw.name, "mem_bw", hw.memBandwidthGBs, "GB/s", 1);
    rep.add(hw.name, "mem", hw.memCapacityGB, "GB", 0);
    rep.add(hw.name, "pcie_bw", hw.pcieBandwidthGBs, "GB/s", 1);
    rep.add(hw.name, "power", hw.systemPowerW, "W", 1);
    rep.add(hw.name, "cores", hw.nCores, "", 0);
}

void
run(bench::Reporter &rep)
{
    rep.beginPanel("specs", "Table I: Hardware Specifications of GPUs "
                            "and V-Rex");
    row(rep, AcceleratorConfig::agxOrin());
    row(rep, AcceleratorConfig::a100());
    row(rep, AcceleratorConfig::vrex8());
    row(rep, AcceleratorConfig::vrex48());
    rep.note("paper: AGX 54/204.8/32/4/40; A100 312/1935/80/32/300; "
             "V-Rex8 53.3/204.8/-/4/35; V-Rex48 "
             "319.5/1935/-/32/203.68");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("table1", argc, argv, run);
}
