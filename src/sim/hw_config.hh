/**
 * @file
 * Hardware platform descriptions (paper Table I).
 *
 * Four platforms are modeled: the two GPU baselines (Jetson AGX Orin,
 * NVIDIA A100) and the two V-Rex instantiations (V-Rex8 edge,
 * V-Rex48 server). Efficiency factors capture how much of the peak
 * each engine achieves on dense GEMM, streaming memory, and the
 * irregular data-dependent kernels that ReSV introduces (which GPUs
 * execute poorly — the motivation for the DRE).
 */

#ifndef VREX_SIM_HW_CONFIG_HH
#define VREX_SIM_HW_CONFIG_HH

#include <cstdint>
#include <string>

#include "kvstore/hierarchical_cache.hh"

namespace vrex
{

/** DRE geometry of one V-Rex core (paper §VI-A). */
struct DreConfig
{
    uint32_t nHcuH = 1;    //!< Parallel XOR-accumulator rows.
    uint32_t nHcuW = 16;   //!< Inputs per XOR accumulator.
    uint32_t nWtuH = 1;    //!< WTU cores per V-Rex core.
    uint32_t nWtuW = 16;   //!< Elements per WTU core per cycle.
};

/** One hardware platform. */
struct AcceleratorConfig
{
    std::string name;
    double peakTflops = 0.0;        //!< BF16/FP16 peak.
    double memBandwidthGBs = 0.0;   //!< DRAM peak bandwidth.
    double memCapacityGB = 0.0;
    double pcieBandwidthGBs = 0.0;
    double pcieTxOverheadUs = 0.0;  //!< Per-transaction latency.
    Tier offloadTarget = Tier::CpuMem;
    double systemPowerW = 0.0;      //!< Board power budget (Table I).

    // Achievable efficiency factors.
    double computeEff = 0.5;        //!< Dense GEMM fraction of peak.
    double memEff = 0.6;            //!< Streaming fraction of DRAM BW.

    // Cost of prediction kernels on this engine. Regular kernels
    // (partial matmul + top-k) parallelize acceptably on a GPU;
    // irregular ones (data-dependent clustering, threshold sorting
    // with early exit) serialize badly — the motivation for the DRE.
    double predFixedUsPerLayer = 0.0;      //!< Launch/sync overhead.
    double predNsPerElement = 0.0;         //!< Regular kernels.
    double irregularNsPerElement = 0.0;    //!< Irregular kernels.

    bool hasDre = false;            //!< Has the V-Rex DRE.
    uint32_t nCores = 0;            //!< V-Rex cores (0 = GPU).
    double clockGhz = 0.8;
    DreConfig dre;

    /** Device DRAM bytes available to hold resident KV entries
     *  (capacity minus weights and activations). */
    uint64_t deviceKvWindowBytes = 0;

    /** DRAM energy per byte moved (J/B). */
    double dramEnergyPerByte = 40e-12;
    /** PCIe link power while active (W). */
    double pciePowerW = 12.0;
    /** Compute-engine power while busy (W). */
    double computePowerW = 0.0;
    /** Always-on baseline power (W). */
    double idlePowerW = 0.0;

    /** Paper Table I platforms. */
    static AcceleratorConfig agxOrin();
    static AcceleratorConfig a100();
    static AcceleratorConfig vrex8();
    static AcceleratorConfig vrex48();
};

} // namespace vrex

#endif // VREX_SIM_HW_CONFIG_HH
