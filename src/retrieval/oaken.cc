#include "retrieval/oaken.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vrex
{

std::vector<QuantGroup>
oakenQuantize(const float *data, uint32_t n, const OakenConfig &cfg)
{
    VREX_ASSERT(cfg.groupSize > 0, "quantization group must be > 0");
    std::vector<QuantGroup> groups;
    for (uint32_t base = 0; base < n; base += cfg.groupSize) {
        const uint32_t len = std::min(cfg.groupSize, n - base);
        float lo = data[base], hi = data[base];
        for (uint32_t i = 0; i < len; ++i) {
            lo = std::min(lo, data[base + i]);
            hi = std::max(hi, data[base + i]);
        }
        QuantGroup g;
        g.zero = lo;
        g.scale = (hi > lo) ? (hi - lo) / 15.0f : 1.0f;
        g.packed.assign((len + 1) / 2, 0);
        for (uint32_t i = 0; i < len; ++i) {
            float q = (data[base + i] - g.zero) / g.scale;
            int code = std::clamp(
                static_cast<int>(std::lround(q)), 0, 15);
            if (i % 2 == 0)
                g.packed[i / 2] |= static_cast<uint8_t>(code);
            else
                g.packed[i / 2] |= static_cast<uint8_t>(code << 4);
        }
        groups.push_back(std::move(g));
    }
    return groups;
}

std::vector<float>
oakenDequantize(const std::vector<QuantGroup> &groups, uint32_t n,
                const OakenConfig &cfg)
{
    std::vector<float> out(n, 0.0f);
    uint32_t base = 0;
    for (const auto &g : groups) {
        const uint32_t len = std::min(cfg.groupSize, n - base);
        for (uint32_t i = 0; i < len; ++i) {
            uint8_t byte = g.packed[i / 2];
            int code = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
            out[base + i] = g.zero + g.scale * static_cast<float>(code);
        }
        base += len;
    }
    return out;
}

double
oakenRoundTrip(Matrix &m, const OakenConfig &cfg)
{
    double se = 0.0;
    const size_t n = m.size();
    for (uint32_t r = 0; r < m.rows(); ++r) {
        auto groups = oakenQuantize(m.row(r), m.cols(), cfg);
        auto rec = oakenDequantize(groups, m.cols(), cfg);
        for (uint32_t c = 0; c < m.cols(); ++c) {
            double err = m.at(r, c) - rec[c];
            se += err * err;
            m.at(r, c) = rec[c];
        }
    }
    return n ? std::sqrt(se / static_cast<double>(n)) : 0.0;
}

} // namespace vrex
