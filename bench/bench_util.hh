/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard sweep points and stable row labels. All printing goes
 * through `vrex::bench::Reporter` (common/bench_report.hh).
 */

#ifndef VREX_BENCH_BENCH_UTIL_HH
#define VREX_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace vrex::bench
{

/** The paper's KV cache sweep: 1K, 5K, 10K, 20K, 40K. */
inline std::vector<uint32_t>
cacheSweep()
{
    return {1000, 5000, 10000, 20000, 40000};
}

/**
 * "1K", "40K" labels for cache lengths. Values below 1000 print
 * exactly ("0", "500") — integer division used to truncate them all
 * to "0K" — and larger values round to the nearest multiple of 1000.
 */
inline std::string
kLabel(uint32_t tokens)
{
    char buf[16];
    if (tokens < 1000)
        std::snprintf(buf, sizeof(buf), "%u", tokens);
    else
        std::snprintf(buf, sizeof(buf), "%uK", (tokens + 500) / 1000);
    return buf;
}

} // namespace vrex::bench

#endif // VREX_BENCH_BENCH_UTIL_HH
