/**
 * @file
 * Tests for the baseline retrieval policies (FlexGen, InfiniGen,
 * InfiniGenP, ReKV) and the Oaken int4 quantizer.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "llm/model.hh"
#include "retrieval/oaken.hh"
#include "retrieval/policies.hh"
#include "testutil.hh"

using namespace vrex;

namespace
{

void
streamFrames(Model &model, uint32_t frames, uint32_t tokens_per_frame,
             uint64_t seed)
{
    testutil::streamRandomFrames(model, frames, tokens_per_frame,
                                 seed);
}

} // namespace

TEST(FlexGen, AlwaysSelectsAll)
{
    ModelConfig cfg = ModelConfig::tiny();
    FlexGenPolicy policy;
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 3, 4, 1);
    for (const auto &stats : model.history())
        for (double r : stats.layerRatios)
            EXPECT_DOUBLE_EQ(r, 1.0);
    EXPECT_DOUBLE_EQ(policy.frameCounters().selectedRatio(), 1.0);
}

TEST(InfiniGen, NoSelectionDuringPrefill)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.ratio = 0.25f;
    InfiniGenPolicy policy(cfg, ic);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 4, 4, 2);
    // Prefill stage: full attention (ratio 1).
    for (const auto &stats : model.history()) {
        if (stats.pastLen > 0) {
            EXPECT_DOUBLE_EQ(stats.meanRatio(), 1.0);
        }
    }
}

TEST(InfiniGen, SelectsDuringGeneration)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.ratio = 0.25f;
    InfiniGenPolicy policy(cfg, ic);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 6, 4, 3);
    model.prefillText({1, 2});
    model.generate(3);
    double gen_ratio = policy.textCounters().selectedRatio();
    EXPECT_LT(gen_ratio, 0.5);
    EXPECT_GT(gen_ratio, 0.0);
}

TEST(InfiniGenP, FixedRatioDuringPrefill)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.ratio = 0.5f;
    ic.prefill = true;
    InfiniGenPolicy policy(cfg, ic);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 6, 4, 4);
    // Fixed top-k: every layer/head selects exactly ratio * past.
    const BlockStats &stats = model.history().back();
    EXPECT_NEAR(stats.meanRatio(), 0.5, 0.05);
    // And it is UNIFORM across layers (the inflexibility ReSV fixes).
    for (double r : stats.layerRatios)
        EXPECT_NEAR(r, stats.layerRatios[0], 1e-9);
}

TEST(InfiniGenP, PredictionCountsWork)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.prefill = true;
    InfiniGenPolicy policy(cfg, ic);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 4, 4, 5);
    EXPECT_GT(policy.frameCounters().predictionMacs, 0u);
}

TEST(ReKV, SelectsWholeFrames)
{
    ModelConfig cfg = ModelConfig::tiny();
    ReKVConfig rc;
    rc.ratio = 0.5f;
    ReKVPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 6, 4, 6);

    // Frame-granular: per-head selected counts are multiples of the
    // frame size (4), since no text tokens exist yet.
    const BlockStats &stats = model.history().back();
    for (const auto &per_head : stats.selectedPerHead)
        for (uint32_t count : per_head)
            EXPECT_EQ(count % 4, 0u);
}

TEST(ReKV, KeepsTextTokens)
{
    ModelConfig cfg = ModelConfig::tiny();
    ReKVConfig rc;
    rc.ratio = 0.3f;
    ReKVPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 5, 4, 7);
    model.prefillText({1, 2, 3});
    model.generate(1);
    // Generation over cache containing text: ratio > 0.
    EXPECT_GT(policy.textCounters().selectedRatio(), 0.0);
}

TEST(ReKV, RespectsBudgetApproximately)
{
    ModelConfig cfg = ModelConfig::tiny();
    ReKVConfig rc;
    rc.ratio = 0.5f;
    ReKVPolicy policy(cfg, rc);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 10, 4, 8);
    double ratio = policy.frameCounters().selectedRatio();
    // Whole-frame rounding can overshoot by up to one frame.
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 0.75);
}

TEST(Policies, ResetClearsCounters)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.prefill = true;
    InfiniGenPolicy policy(cfg, ic);
    Model model(cfg, 42);
    model.setPolicy(&policy);
    streamFrames(model, 3, 4, 9);
    policy.reset();
    EXPECT_EQ(policy.frameCounters().selectCalls, 0u);
}

TEST(Oaken, QuantizeDequantizeBounds)
{
    OakenConfig cfg;
    Rng rng(10);
    std::vector<float> data(128);
    rng.fillGaussian(data.data(), data.size(), 2.0f);
    auto groups = oakenQuantize(data.data(), 128, cfg);
    auto rec = oakenDequantize(groups, 128, cfg);
    ASSERT_EQ(rec.size(), 128u);
    // Max error bounded by half a quantization step per group.
    for (size_t g = 0; g < groups.size(); ++g) {
        for (uint32_t i = 0; i < cfg.groupSize; ++i) {
            size_t idx = g * cfg.groupSize + i;
            EXPECT_NEAR(rec[idx], data[idx],
                        groups[g].scale * 0.51f);
        }
    }
}

TEST(Oaken, ConstantVectorExact)
{
    OakenConfig cfg;
    std::vector<float> data(64, 3.25f);
    auto groups = oakenQuantize(data.data(), 64, cfg);
    auto rec = oakenDequantize(groups, 64, cfg);
    for (float v : rec)
        EXPECT_FLOAT_EQ(v, 3.25f);
}

TEST(Oaken, PartialGroupHandled)
{
    OakenConfig cfg;
    cfg.groupSize = 32;
    std::vector<float> data(40);
    Rng rng(11);
    rng.fillGaussian(data.data(), data.size(), 1.0f);
    auto groups = oakenQuantize(data.data(), 40, cfg);
    EXPECT_EQ(groups.size(), 2u);
    auto rec = oakenDequantize(groups, 40, cfg);
    EXPECT_EQ(rec.size(), 40u);
}

TEST(Oaken, RoundTripReportsRmsError)
{
    OakenConfig cfg;
    Matrix m(8, 64);
    Rng rng(12);
    rng.fillGaussian(m.raw(), m.size(), 1.0f);
    Matrix orig = m;
    double rms = oakenRoundTrip(m, cfg);
    EXPECT_GT(rms, 0.0);
    EXPECT_LT(rms, 0.2);  // int4 with group scales is decent.
    // Matrix actually changed to quantized values.
    bool changed = false;
    for (uint32_t i = 0; i < m.size(); ++i)
        changed |= m.raw()[i] != orig.raw()[i];
    EXPECT_TRUE(changed);
}

TEST(Oaken, BytesPerElem)
{
    OakenConfig cfg;
    cfg.groupSize = 32;
    EXPECT_NEAR(cfg.bytesPerElem(), 0.625, 1e-9);
    cfg.groupSize = 128;
    EXPECT_LT(cfg.bytesPerElem(), 0.6);
}
