/**
 * @file
 * A minimal fixed-size worker pool for the serving engine. Jobs are
 * plain closures executed FIFO; the destructor drains every queued
 * job before joining, so submitted work is never silently dropped.
 *
 * Thread-safety contract (statically checked under clang, see
 * common/thread_annotations.hh): `jobs` and `stopping` are only
 * touched with `mu` held; `threads` is written by the constructor
 * alone and immutable afterwards, so workerCount() reads it lock-free.
 */

#ifndef VREX_SERVE_THREAD_POOL_HH
#define VREX_SERVE_THREAD_POOL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace vrex::serve
{

/** Sensible worker count: @p requested, or a hardware-derived pick
 *  (clamped to [2, 8]) when @p requested is 0. */
uint32_t resolveWorkerCount(uint32_t requested);

class ThreadPool
{
  public:
    /** Spawn @p workers threads (must be >= 1). */
    explicit ThreadPool(uint32_t workers);

    /** Drains all queued jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; runs on some worker in submission order. */
    void submit(std::function<void()> job) VREX_EXCLUDES(mu);

    uint32_t workerCount() const
    {
        return static_cast<uint32_t>(threads.size());
    }

  private:
    void workerLoop() VREX_EXCLUDES(mu);

    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> jobs VREX_GUARDED_BY(mu);
    bool stopping VREX_GUARDED_BY(mu) = false;
    /** Written only by the constructor; const thereafter. */
    std::vector<std::thread> threads;
};

} // namespace vrex::serve

#endif // VREX_SERVE_THREAD_POOL_HH
