// Fixture: nondet-rand must fire on every banned randomness API,
// and must NOT fire on the same tokens inside strings or comments
// (std::rand in this comment is invisible to the scan).
#include <cstdlib>

int
roll()
{
    const char *msg = "rand in a string does not count";
    (void)msg;
    return std::rand() % 6; // line 11: the violation
}
