#include "sim/system_model.hh"

#include <algorithm>
#include <cmath>

namespace vrex
{

SystemModel::SystemModel(const RunConfig &config)
    : cfg(config), compute(config.hw, config.model, config.vision),
      pcie(config.hw.pcieBandwidthGBs, config.hw.pcieTxOverheadUs),
      ssd(SsdConfig::bg6()), dre(config.hw), energyModel(config.hw)
{
}

bool
SystemModel::wouldOom() const
{
    if (cfg.method.offloads)
        return false;
    const double weights =
        static_cast<double>(cfg.model.paramBytes(2.0)) +
        cfg.vision.weightBytes();
    const double activations = 0.2e9 * cfg.batch;
    const double kv = static_cast<double>(cfg.cacheTokens) *
        cfg.model.kvBytesPerToken(cfg.method.kvBytesPerElem) *
        cfg.batch;
    return weights + activations + kv > cfg.hw.memCapacityGB * 1e9;
}

PhaseResult
SystemModel::runPhase(double new_tokens, bool frame_stage,
                      bool with_vision) const
{
    const MethodModel &m = cfg.method;
    const ModelConfig &model = cfg.model;
    const uint32_t B = cfg.batch;
    const double S = cfg.cacheTokens;
    const uint32_t layers = model.nLayers;

    PhaseResult r;
    if (wouldOom()) {
        r.oom = true;
        return r;
    }

    // --- Component times -------------------------------------------------
    const double vision_sec =
        with_vision ? compute.visionSeconds(B) : 0.0;
    const double dense_sec = compute.denseSeconds(new_tokens, B);
    const double ratio = m.selRatio(frame_stage);
    const double attended = ratio * S + new_tokens;
    const double attn_sec = compute.attentionSeconds(
        new_tokens, attended, B, m.kvBytesPerElem);

    // --- Prediction ------------------------------------------------------
    double pred_sec = 0.0;      // Serialized on the main engine.
    double dre_sec = 0.0;       // Overlapped on the DRE.
    double pred_bytes = 0.0;
    if (m.granularity != PredGranularity::None && S > 0.0) {
        const double elems_layer =
            m.predElementsPerLayer(S, model.nKvHeads,
                                   cfg.tokensPerFrame) * B;
        // Scoring reads one key vector (or centroid) per element.
        pred_bytes = elems_layer * model.headDim() * 2.0 * layers;
        if (m.dreOffloadPred) {
            const double clusters =
                std::max(1.0, S / m.tokensPerCluster);
            DreTiming t = dre.layerTiming(new_tokens, clusters,
                                          model.nKvHeads, B,
                                          cfg.hashBits);
            dre_sec = t.total() * layers;
        } else {
            // Clustering + threshold sorting are data-dependent and
            // serialize on a GPU; top-k style kernels are regular.
            const double ns_per_elem =
                m.granularity == PredGranularity::Cluster
                    ? cfg.hw.irregularNsPerElement
                    : cfg.hw.predNsPerElement;
            const double per_layer =
                cfg.hw.predFixedUsPerLayer * 1e-6 +
                elems_layer * ns_per_elem * 1e-9 +
                pred_bytes / layers /
                    (cfg.hw.memBandwidthGBs * 1e9 * cfg.hw.memEff);
            pred_sec = per_layer * layers;
        }
    }

    // --- KV fetch over PCIe / SSD ----------------------------------------
    double fetch_sec = 0.0;
    double fetch_bytes = 0.0;
    if (m.offloads && S > 0.0) {
        const double token_bytes =
            model.kvBytesPerToken(m.kvBytesPerElem);
        // Only V-Rex's KVMU maintains a device-resident recent-KV
        // window; the GPU baselines stream the full offloaded cache.
        const double window_tokens = m.keepsRecentWindow
            ? static_cast<double>(cfg.hw.deviceKvWindowBytes) /
                token_bytes / B
            : 0.0;
        const double non_resident =
            std::max(0.0, S - window_tokens);
        double fetch_tokens = ratio * non_resident *
            (1.0 - m.reuseFraction) * B;
        fetch_bytes = fetch_tokens * token_bytes;
        if (fetch_bytes > 0.0) {
            // Transfer granule: one token's per-layer KV chunk.
            const double granule_bytes =
                model.kvBytesPerTokenPerLayer(m.kvBytesPerElem);
            const double tx_bytes =
                m.avgTxTokens(cfg.tokensPerFrame) * granule_bytes;
            const double n_tx = fetch_bytes / tx_bytes;
            fetch_sec = pcie.transferSeconds(fetch_bytes, n_tx);
            if (cfg.hw.offloadTarget == Tier::Storage) {
                fetch_sec = std::max(
                    fetch_sec, ssd.readSeconds(fetch_bytes, n_tx));
            }
        }
    }

    // --- Per-layer overlap (Fig. 5) ---------------------------------------
    const double compute_layer = (dense_sec + attn_sec) / layers;
    const double fetch_layer = fetch_sec / layers;
    const double pred_layer = pred_sec / layers;
    const double dre_layer = dre_sec / layers;
    double layer_sec;
    if (cfg.hw.hasDre) {
        layer_sec = std::max({compute_layer, fetch_layer, dre_layer});
    } else {
        // Prediction serializes with compute on the GPU; the prefetch
        // of the next layer overlaps with execution.
        layer_sec = pred_layer + std::max(compute_layer, fetch_layer);
    }
    const double total_sec = vision_sec + layer_sec * layers;

    // --- Accounting -------------------------------------------------------
    r.visionMs = vision_sec * 1e3;
    r.denseMs = dense_sec * 1e3;
    r.attentionMs = attn_sec * 1e3;
    r.predictionMs = pred_sec * 1e3;
    r.dreMs = dre_sec * 1e3;
    r.fetchMs = fetch_sec * 1e3;
    r.totalMs = total_sec * 1e3;
    r.dramBytes = compute.denseBytes() +
        compute.attentionBytes(attended, B, m.kvBytesPerElem) +
        (with_vision ? compute.visionBytes() : 0.0) + pred_bytes +
        fetch_bytes;
    r.pcieBytes = fetch_bytes;
    r.pcieActiveSec =
        fetch_bytes / (cfg.hw.pcieBandwidthGBs * 1e9);
    r.computeBusySec = vision_sec + dense_sec + attn_sec + pred_sec;
    r.energy = energyModel.energy(r.computeBusySec, total_sec,
                                  r.dramBytes, r.pcieActiveSec);
    // Nominal workload ops: what the vanilla model would execute.
    r.nominalFlops = compute.denseFlops(new_tokens, B) +
        compute.attentionFlops(new_tokens, S + new_tokens, B) +
        (with_vision ? compute.visionFlops(B) : 0.0);
    r.actualFlops = compute.denseFlops(new_tokens, B) +
        compute.attentionFlops(new_tokens, attended, B) +
        (with_vision ? compute.visionFlops(B) : 0.0);
    return r;
}

PhaseResult
SystemModel::framePhase() const
{
    return runPhase(cfg.tokensPerFrame, true, true);
}

PhaseResult
SystemModel::textPrefillPhase(uint32_t tokens) const
{
    return runPhase(tokens, true, false);
}

PhaseResult
SystemModel::decodePhase() const
{
    return runPhase(1.0, false, false);
}

double
SystemModel::frameFps() const
{
    PhaseResult r = framePhase();
    if (r.oom || r.totalMs <= 0.0)
        return 0.0;
    return static_cast<double>(cfg.batch) / (r.totalMs / 1e3);
}

SessionResult
SystemModel::session(uint32_t frames, uint32_t q_tokens,
                     uint32_t a_tokens) const
{
    SessionResult out;
    RunConfig step = cfg;
    for (uint32_t f = 0; f < frames; ++f) {
        SystemModel sm(step);
        PhaseResult r = sm.framePhase();
        out.visionMs += r.visionMs;
        out.prefillMs += r.totalMs - r.visionMs;
        step.cacheTokens += static_cast<uint32_t>(
            std::lround(step.tokensPerFrame));
    }
    if (q_tokens > 0) {
        SystemModel sm(step);
        out.prefillMs += sm.textPrefillPhase(q_tokens).totalMs;
        step.cacheTokens += q_tokens;
    }
    for (uint32_t t = 0; t < a_tokens; ++t) {
        SystemModel sm(step);
        out.generationMs += sm.decodePhase().totalMs;
        step.cacheTokens += 1;
    }
    return out;
}

} // namespace vrex
