#include "sim/roofline.hh"

#include <algorithm>

namespace vrex
{

RooflinePoint
rooflineFor(const PhaseResult &phase, const AcceleratorConfig &hw)
{
    RooflinePoint p;
    p.peakTflops = hw.peakTflops;
    if (phase.totalMs <= 0.0 || phase.dramBytes <= 0.0)
        return p;
    p.opIntensity = phase.actualFlops / phase.dramBytes;
    p.achievedTflops =
        phase.actualFlops / (phase.totalMs / 1e3) / 1e12;
    p.roofTflops = std::min(
        hw.peakTflops,
        p.opIntensity * hw.memBandwidthGBs * 1e9 / 1e12);
    return p;
}

} // namespace vrex
