#include "serve/batch_planner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex::serve
{

BatchPlanner::BatchPlanner(BatchConfig config) : cfg(config)
{
    // A fused step below two members is just a slower solo step;
    // clamp rather than assert so a zero-initialized config stays
    // usable.
    cfg.minBatch = std::max(2u, cfg.minBatch);
    st.config = cfg;
}

bool
BatchPlanner::eligible(const SessionEvent &front)
{
    return front.type == SessionEvent::Type::Generate &&
           front.tokens >= 1;
}

uint32_t
BatchPlanner::planStepSize(uint32_t claimable_peers) const
{
    if (!enabled())
        return 0;
    const uint32_t members =
        std::min(cfg.maxBatch, claimable_peers + 1);
    return members >= cfg.minBatch ? members : 0;
}

void
BatchPlanner::recordCoalesced(uint32_t members)
{
    VREX_ASSERT(members >= 2, "fused step below two members");
    ++st.coalescedSteps;
    st.coalescedMembers += members;
    st.maxBatchObserved = std::max(st.maxBatchObserved, members);
    st.sizeHist.add(static_cast<double>(members));
}

void
BatchPlanner::recordSolo(uint64_t generate_units)
{
    st.soloSteps += generate_units;
}

} // namespace vrex::serve
