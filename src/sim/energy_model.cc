#include "sim/energy_model.hh"

namespace vrex
{

std::vector<ComponentSpec>
VRexCoreSpec::all() const
{
    return {dpe, vpe, onChipMem, wtu, hcu, kvmu};
}

double
VRexCoreSpec::totalAreaMm2() const
{
    double a = 0.0;
    for (const auto &c : all())
        a += c.areaMm2;
    return a;
}

double
VRexCoreSpec::totalPowerMw() const
{
    double p = 0.0;
    for (const auto &c : all())
        p += c.powerMw;
    return p;
}

double
VRexCoreSpec::dreAreaFraction() const
{
    return (wtu.areaMm2 + hcu.areaMm2 + kvmu.areaMm2) / totalAreaMm2();
}

double
VRexCoreSpec::drePowerFraction() const
{
    return (wtu.powerMw + hcu.powerMw + kvmu.powerMw) /
        totalPowerMw();
}

EnergyBreakdown
EnergyModel::energy(double compute_busy_sec, double total_sec,
                    double dram_bytes, double pcie_active_sec) const
{
    EnergyBreakdown e;
    e.computeJ = cfg.computePowerW * compute_busy_sec;
    e.dramJ = cfg.dramEnergyPerByte * dram_bytes;
    e.pcieJ = cfg.pciePowerW * pcie_active_sec;
    e.idleJ = cfg.idlePowerW * total_sec;
    return e;
}

double
EnergyModel::averagePowerW(const EnergyBreakdown &e,
                           double total_sec) const
{
    return total_sec > 0.0 ? e.totalJ() / total_sec : 0.0;
}

} // namespace vrex
