#include "llm/decoder_layer.hh"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "tensor/ops.hh"

namespace vrex
{

namespace
{

Matrix
randomWeight(uint32_t out_dim, uint32_t in_dim, Rng &rng)
{
    Matrix w(out_dim, in_dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
    rng.fillGaussian(w.raw(), w.size(), scale);
    return w;
}

} // namespace

DecoderLayer::DecoderLayer(const ModelConfig &config, uint32_t index,
                           uint64_t seed)
    : cfg(config), layerIndex(index), weightSeed(seed)
{
    Rng rng(seed, cfg.name + "/layer" + std::to_string(index));
    const uint32_t d = cfg.dModel;
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    wq = randomWeight(d, d, rng);
    wk = randomWeight(kv_dim, d, rng);
    wv = randomWeight(kv_dim, d, rng);
    wo = randomWeight(d, d, rng);
    w1 = randomWeight(cfg.ffnDim, d, rng);
    w3 = randomWeight(cfg.ffnDim, d, rng);
    w2 = randomWeight(d, cfg.ffnDim, rng);
    attnNorm.assign(d, 1.0f);
    ffnNorm.assign(d, 1.0f);
    // Mildly varied norm gains so layers are not identical maps.
    for (uint32_t i = 0; i < d; ++i) {
        attnNorm[i] += 0.05f * static_cast<float>(rng.gaussian());
        ffnNorm[i] += 0.05f * static_cast<float>(rng.gaussian());
    }
}

std::vector<LayerSelection>
DecoderLayer::forwardBatched(
    const std::vector<const DecoderLayer *> &layers, Matrix &x,
    const std::vector<BatchItem> &items, TokenStage stage)
{
    const uint32_t n = static_cast<uint32_t>(layers.size());
    VREX_ASSERT(n > 0, "batched layer forward needs sessions");
    VREX_ASSERT(items.size() == n && x.rows() == n,
                "batched layer forward row/item mismatch");
    const ModelConfig &cfg = layers[0]->cfg;
    const uint32_t d = cfg.dModel;
    const uint32_t head_dim = cfg.headDim();
    const uint32_t kv_dim = cfg.nKvHeads * head_dim;
    const uint32_t layer_index = layers[0]->layerIndex;
    for (const DecoderLayer *l : layers)
        VREX_ASSERT(l->layerIndex == layer_index &&
                        l->cfg.dModel == d &&
                        l->cfg.nHeads == cfg.nHeads &&
                        l->cfg.nKvHeads == cfg.nKvHeads &&
                        l->cfg.ffnDim == cfg.ffnDim,
                    "batched layer forward needs one geometry");

    // Contiguous equal-seed runs share one weight stream: equal
    // (config, seed) means byte-identical weights, so any member of
    // the run can lend its matrices to the whole group.
    std::vector<std::pair<uint32_t, uint32_t>> runs;
    uint32_t begin = 0;
    for (uint32_t i = 1; i <= n; ++i) {
        if (i == n ||
            layers[i]->weightSeed != layers[begin]->weightSeed) {
            runs.emplace_back(begin, i);
            begin = i;
        }
    }
    auto groupsFor = [&](const Matrix DecoderLayer::*w) {
        std::vector<RowGroup> gs;
        gs.reserve(runs.size());
        for (const auto &[b, e] : runs)
            gs.push_back({b, e, &(layers[b]->*w)});
        return gs;
    };

    // Attention sub-block: forward()'s exact steps, one row per
    // session, with the projections fused across the batch.
    Matrix h = x;
    for (uint32_t i = 0; i < n; ++i)
        rmsNorm(h.row(i), layers[i]->attnNorm.data(), d);

    Matrix q, k, v;
    matmulTransposedGrouped(h, groupsFor(&DecoderLayer::wq), q);
    matmulTransposedGrouped(h, groupsFor(&DecoderLayer::wk), k);
    matmulTransposedGrouped(h, groupsFor(&DecoderLayer::wv), v);

    for (uint32_t i = 0; i < n; ++i) {
        const uint32_t pos = items[i].basePos;
        for (uint32_t hh = 0; hh < cfg.nHeads; ++hh)
            applyRope(q.row(i) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
        for (uint32_t hh = 0; hh < cfg.nKvHeads; ++hh)
            applyRope(k.row(i) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
    }

    // Cache append + policy consultation touch session-private
    // state: per session, in the order forward() performs them.
    std::vector<LayerSelection> sels;
    sels.reserve(n);
    Matrix k1(1, kv_dim), v1(1, kv_dim), q1(1, d);
    for (uint32_t i = 0; i < n; ++i) {
        KVCache &cache = *items[i].cache;
        std::copy_n(k.row(i), kv_dim, k1.row(0));
        std::copy_n(v.row(i), kv_dim, v1.row(0));
        cache.appendLayer(layer_index, k1, v1);
        LayerSelection sel = LayerSelection::full(cfg.nKvHeads);
        if (items[i].policy) {
            items[i].policy->onBlockAppended(
                layer_index, cache, items[i].basePos, 1, stage);
            std::copy_n(q.row(i), d, q1.row(0));
            sel = items[i].policy->select(layer_index, q1, cache,
                                          items[i].basePos, stage);
        }
        sels.push_back(std::move(sel));
    }

    Matrix attn_out;
    std::vector<AttentionBatchItem> attn_items(n);
    for (uint32_t i = 0; i < n; ++i) {
        attn_items[i].kv = &items[i].cache->layer(layer_index);
        attn_items[i].pastLen = items[i].basePos;
        attn_items[i].sel = &sels[i];
    }
    attentionForwardBatched(cfg, q, attn_items, attn_out);

    Matrix proj;
    matmulTransposedGrouped(attn_out, groupsFor(&DecoderLayer::wo),
                            proj);
    for (uint32_t i = 0; i < n; ++i)
        addInPlace(x.row(i), proj.row(i), d);

    // FFN sub-block.
    Matrix h2 = x;
    for (uint32_t i = 0; i < n; ++i)
        rmsNorm(h2.row(i), layers[i]->ffnNorm.data(), d);
    Matrix gate, up, down;
    matmulTransposedGrouped(h2, groupsFor(&DecoderLayer::w1), gate);
    matmulTransposedGrouped(h2, groupsFor(&DecoderLayer::w3), up);
    for (uint32_t i = 0; i < n; ++i) {
        silu(gate.row(i), cfg.ffnDim);
        hadamard(gate.row(i), up.row(i), cfg.ffnDim);
    }
    matmulTransposedGrouped(gate, groupsFor(&DecoderLayer::w2), down);
    for (uint32_t i = 0; i < n; ++i)
        addInPlace(x.row(i), down.row(i), d);

    return sels;
}

LayerSelection
DecoderLayer::forward(Matrix &x, KVCache &cache, SelectionPolicy *policy,
                      TokenStage stage, uint32_t base_pos) const
{
    const uint32_t block_len = x.rows();
    const uint32_t d = cfg.dModel;
    const uint32_t head_dim = cfg.headDim();
    const uint32_t past_len = base_pos;

    // Attention sub-block.
    Matrix h = x;
    for (uint32_t t = 0; t < block_len; ++t)
        rmsNorm(h.row(t), attnNorm.data(), d);

    Matrix q, k, v;
    matmulTransposed(h, wq, q);
    matmulTransposed(h, wk, k);
    matmulTransposed(h, wv, v);

    for (uint32_t t = 0; t < block_len; ++t) {
        const uint32_t pos = base_pos + t;
        for (uint32_t hh = 0; hh < cfg.nHeads; ++hh)
            applyRope(q.row(t) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
        for (uint32_t hh = 0; hh < cfg.nKvHeads; ++hh)
            applyRope(k.row(t) + hh * head_dim, head_dim, pos,
                      cfg.ropeTheta);
    }

    cache.appendLayer(layerIndex, k, v);
    LayerSelection sel = LayerSelection::full(cfg.nKvHeads);
    if (policy) {
        policy->onBlockAppended(layerIndex, cache, past_len, block_len,
                                stage);
        sel = policy->select(layerIndex, q, cache, past_len, stage);
    }

    Matrix attn_out;
    attentionForward(cfg, q, cache.layer(layerIndex), past_len, &sel,
                     attn_out);

    Matrix proj;
    matmulTransposed(attn_out, wo, proj);
    for (uint32_t t = 0; t < block_len; ++t)
        addInPlace(x.row(t), proj.row(t), d);

    // FFN sub-block.
    Matrix h2 = x;
    for (uint32_t t = 0; t < block_len; ++t)
        rmsNorm(h2.row(t), ffnNorm.data(), d);
    Matrix gate, up, down;
    matmulTransposed(h2, w1, gate);
    matmulTransposed(h2, w3, up);
    for (uint32_t t = 0; t < block_len; ++t) {
        silu(gate.row(t), cfg.ffnDim);
        hadamard(gate.row(t), up.row(t), cfg.ffnDim);
    }
    matmulTransposed(gate, w2, down);
    for (uint32_t t = 0; t < block_len; ++t)
        addInPlace(x.row(t), down.row(t), d);

    return sel;
}

} // namespace vrex
