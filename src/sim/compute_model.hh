/**
 * @file
 * Roofline-style compute timing for the LLM stages: every operation
 * is priced as max(FLOPs / achievable compute, bytes / achievable
 * bandwidth). Small-batch transformer inference is memory-bound on
 * weight streaming, which this captures directly.
 */

#ifndef VREX_SIM_COMPUTE_MODEL_HH
#define VREX_SIM_COMPUTE_MODEL_HH

#include <optional>

#include "llm/config.hh"
#include "sim/hw_config.hh"
#include "sim/lxe_model.hh"

namespace vrex
{

/** Vision tower cost parameters (SigLIP-ViT-L-384 class). */
struct VisionConfig
{
    double params = 0.3e9;     //!< Parameter count.
    uint32_t tokens = 576;     //!< Patches per frame.

    double
    flopsPerFrame() const
    {
        return 2.0 * params * tokens;
    }

    double weightBytes() const { return params * 2.0; }
};

/** Per-stage compute/memory timing on one platform. */
class ComputeModel
{
  public:
    ComputeModel(const AcceleratorConfig &hw, const ModelConfig &model,
                 const VisionConfig &vision = {});

    /** Dense (QKV/proj/FFN) time of a block of @p new_tokens. */
    double denseSeconds(double new_tokens, uint32_t batch) const;

    /** Attention score+value time over @p attended tokens. */
    double attentionSeconds(double new_tokens, double attended,
                            uint32_t batch,
                            double kv_bytes_per_elem) const;

    /** Vision tower + projector time for one frame per batch item. */
    double visionSeconds(uint32_t batch) const;

    // Byte accounting (for DRAM energy / roofline).
    double denseBytes() const;
    double attentionBytes(double attended, uint32_t batch,
                          double kv_bytes_per_elem) const;
    double visionBytes() const;

    // FLOP accounting.
    double denseFlops(double new_tokens, uint32_t batch) const;
    double attentionFlops(double new_tokens, double attended,
                          uint32_t batch) const;
    double visionFlops(uint32_t batch) const;

    const VisionConfig &vision() const { return visionCfg; }

  private:
    double computeSec(double flops) const;
    double memorySec(double bytes) const;

    /** Sum of one decoder layer's GEMM times on the LXE datapath. */
    double lxeLayerSeconds(double new_tokens, uint32_t batch) const;

    AcceleratorConfig hw;
    ModelConfig model;
    VisionConfig visionCfg;
    /** Present on V-Rex platforms: cycle-accurate DPE pricing. */
    std::optional<LxeModel> lxe;
};

} // namespace vrex

#endif // VREX_SIM_COMPUTE_MODEL_HH
