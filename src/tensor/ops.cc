#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vrex
{

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    VREX_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
    out = Matrix(a.rows(), b.cols());
    const uint32_t m = a.rows(), k = a.cols(), n = b.cols();
    for (uint32_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *orow = out.row(i);
        for (uint32_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.row(p);
            for (uint32_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
matmulTransposed(const Matrix &a, const Matrix &bT, Matrix &out)
{
    VREX_ASSERT(a.cols() == bT.cols(), "matmulT shape mismatch");
    out = Matrix(a.rows(), bT.rows());
    for (uint32_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *orow = out.row(i);
        for (uint32_t j = 0; j < bT.rows(); ++j)
            orow[j] = dot(arow, bT.row(j), a.cols());
    }
}

void
softmax(float *row, uint32_t n)
{
    if (n == 0)
        return;
    float mx = row[0];
    for (uint32_t i = 1; i < n; ++i)
        mx = std::max(mx, row[i]);
    float sum = 0.0f;
    for (uint32_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
    }
    if (sum <= 0.0f)
        return;
    float inv = 1.0f / sum;
    for (uint32_t i = 0; i < n; ++i)
        row[i] *= inv;
}

void
softmaxRows(Matrix &m)
{
    for (uint32_t r = 0; r < m.rows(); ++r)
        softmax(m.row(r), m.cols());
}

void
rmsNorm(float *x, const float *weight, uint32_t n, float eps)
{
    double ss = 0.0;
    for (uint32_t i = 0; i < n; ++i)
        ss += double(x[i]) * x[i];
    float scale = 1.0f /
        std::sqrt(static_cast<float>(ss / n) + eps);
    for (uint32_t i = 0; i < n; ++i)
        x[i] = x[i] * scale * weight[i];
}

void
silu(float *x, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] = x[i] / (1.0f + std::exp(-x[i]));
}

void
hadamard(float *x, const float *y, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] *= y[i];
}

void
addInPlace(float *x, const float *y, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        x[i] += y[i];
}

void
applyRope(float *head, uint32_t dim, uint32_t pos, float thetaBase)
{
    VREX_ASSERT(dim % 2 == 0, "RoPE needs an even head dimension");
    const uint32_t half = dim / 2;
    for (uint32_t i = 0; i < half; ++i) {
        float freq = std::pow(thetaBase,
                              -2.0f * static_cast<float>(i) / dim);
        float angle = static_cast<float>(pos) * freq;
        float c = std::cos(angle), s = std::sin(angle);
        float x0 = head[i];
        float x1 = head[i + half];
        head[i] = x0 * c - x1 * s;
        head[i + half] = x0 * s + x1 * c;
    }
}

void
applyRopeInverse(float *head, uint32_t dim, uint32_t pos,
                 float thetaBase)
{
    VREX_ASSERT(dim % 2 == 0, "RoPE needs an even head dimension");
    const uint32_t half = dim / 2;
    for (uint32_t i = 0; i < half; ++i) {
        float freq = std::pow(thetaBase,
                              -2.0f * static_cast<float>(i) / dim);
        float angle = -static_cast<float>(pos) * freq;
        float c = std::cos(angle), s = std::sin(angle);
        float x0 = head[i];
        float x1 = head[i + half];
        head[i] = x0 * c - x1 * s;
        head[i + half] = x0 * s + x1 * c;
    }
}

float
dot(const float *a, const float *b, uint32_t n)
{
    float s = 0.0f;
    for (uint32_t i = 0; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

float
norm2(const float *a, uint32_t n)
{
    return std::sqrt(dot(a, a, n));
}

float
cosineSimilarity(const float *a, const float *b, uint32_t n)
{
    float na = norm2(a, n), nb = norm2(b, n);
    if (na <= 0.0f || nb <= 0.0f)
        return 0.0f;
    return dot(a, b, n) / (na * nb);
}

std::vector<uint32_t>
topkIndices(const std::vector<float> &scores, uint32_t k)
{
    std::vector<uint32_t> idx(scores.size());
    std::iota(idx.begin(), idx.end(), 0u);
    k = std::min<uint32_t>(k, static_cast<uint32_t>(scores.size()));
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](uint32_t a, uint32_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

} // namespace vrex
