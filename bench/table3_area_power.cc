/**
 * @file
 * Table III reproduction: area and power breakdown of one V-Rex core
 * (14 nm, 0.8 V, 800 MHz) and the derived system-level comparisons
 * (§VI-F): DRE is ~2.0% of area / ~2.2% of power; V-Rex8 is far
 * smaller than AGX Orin, V-Rex48 far smaller than A100.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/energy_model.hh"
#include "sim/hw_config.hh"

using namespace vrex;

int
main()
{
    VRexCoreSpec spec;
    bench::header("Table III: breakdown of area and power (1 core)");
    std::printf("%-18s %10s %8s %12s %8s\n", "Component",
                "Area[mm2]", "Area%", "Power[mW]", "Power%");
    for (const auto &c : spec.all()) {
        std::printf("%-18s %10.2f %7.2f%% %12.2f %7.2f%%\n",
                    c.name.c_str(), c.areaMm2,
                    100.0 * c.areaMm2 / spec.totalAreaMm2(),
                    c.powerMw,
                    100.0 * c.powerMw / spec.totalPowerMw());
    }
    std::printf("%-18s %10.2f %8s %12.2f %8s\n", "Total",
                spec.totalAreaMm2(), "100%", spec.totalPowerMw(),
                "100%");

    std::printf("\nDRE share: %.1f%% area, %.1f%% power "
                "(paper: 2.0%% / 2.2%%)\n",
                100.0 * spec.dreAreaFraction(),
                100.0 * spec.drePowerFraction());

    std::printf("\nScaled configurations:\n");
    std::printf("  V-Rex8 : %6.2f mm2 vs AGX Orin ~200 mm2\n",
                8 * spec.totalAreaMm2());
    std::printf("  V-Rex48: %6.2f mm2 vs A100 ~826 mm2\n",
                48 * spec.totalAreaMm2());
    auto v8 = AcceleratorConfig::vrex8();
    auto v48 = AcceleratorConfig::vrex48();
    auto agx = AcceleratorConfig::agxOrin();
    auto a100 = AcceleratorConfig::a100();
    std::printf("  system power: V-Rex8 %.0f W vs AGX %.0f W "
                "(%.1f%% lower)\n", v8.systemPowerW, agx.systemPowerW,
                100.0 * (1.0 - v8.systemPowerW / agx.systemPowerW));
    std::printf("  system power: V-Rex48 %.2f W vs A100 %.0f W "
                "(%.1f%% lower)\n", v48.systemPowerW,
                a100.systemPowerW,
                100.0 * (1.0 - v48.systemPowerW / a100.systemPowerW));
    return 0;
}
