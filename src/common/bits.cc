#include "common/bits.hh"

namespace vrex::detail
{

uint32_t
hammingWordsScalar(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint32_t dist = 0;
    for (size_t w = 0; w < n; ++w)
        dist += static_cast<uint32_t>(std::popcount(a[w] ^ b[w]));
    return dist;
}

std::atomic<HammingWordsFn> bitsigHammingHook{&hammingWordsScalar};

} // namespace vrex::detail
