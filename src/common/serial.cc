#include "common/serial.hh"

namespace vrex::serial
{

uint64_t
fnv1a64(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

ByteWriter::ByteWriter(uint32_t version)
{
    put<uint32_t>(kBlobMagic);
    put<uint32_t>(version);
}

void
ByteWriter::putString(const std::string &s)
{
    put<uint64_t>(s.size());
    const size_t at = buf.size();
    buf.resize(at + s.size());
    if (!s.empty())
        std::memcpy(buf.data() + at, s.data(), s.size());
}

std::vector<uint8_t>
ByteWriter::finish()
{
    const uint64_t sum = fnv1a64(buf.data(), buf.size());
    put<uint64_t>(sum);
    return std::move(buf);
}

ByteReader::ByteReader(const std::vector<uint8_t> &blob,
                       uint32_t expect_version)
    : data(blob.data()), pos(0), end(0)
{
    // Smallest possible blob: magic + version + checksum.
    constexpr size_t kHeader = sizeof(uint32_t) * 2;
    constexpr size_t kFooter = sizeof(uint64_t);
    if (blob.size() < kHeader + kFooter)
        throw SerialError("vrex::serial: blob too short (" +
                          std::to_string(blob.size()) + " bytes)");

    const size_t body = blob.size() - kFooter;
    uint64_t stored;
    std::memcpy(&stored, data + body, sizeof(stored));
    if (stored != fnv1a64(data, body))
        throw SerialError("vrex::serial: checksum mismatch "
                          "(corrupted or truncated blob)");

    end = body;
    const uint32_t magic = get<uint32_t>();
    if (magic != kBlobMagic)
        throw SerialError("vrex::serial: bad magic (not a vrex "
                          "session blob)");
    const uint32_t version = get<uint32_t>();
    if (version != expect_version)
        throw SerialError(
            "vrex::serial: unsupported blob version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(expect_version) + ")");
}

std::string
ByteReader::getString()
{
    const uint64_t n = get<uint64_t>();
    if (n > remaining())
        throw SerialError(
            "vrex::serial: truncated blob (string length " +
            std::to_string(n) + " exceeds remaining payload)");
    std::string s(reinterpret_cast<const char *>(data + pos),
                  static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    return s;
}

void
ByteReader::expectEnd() const
{
    if (pos != end)
        throw SerialError("vrex::serial: " +
                          std::to_string(end - pos) +
                          " trailing payload bytes after restore");
}

void
ByteReader::need(size_t n) const
{
    if (n > end - pos)
        throw SerialError("vrex::serial: truncated blob (need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(end - pos) + ")");
}

} // namespace vrex::serial
