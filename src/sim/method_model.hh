/**
 * @file
 * Timing-level description of each KV retrieval method.
 *
 * Captures what the system simulator needs to price a method: how
 * much of the cache it fetches per stage, at what granularity its
 * prediction pass scans the cache, how contiguous its transfers are,
 * and whether prediction runs on the GPU (serialized with compute) or
 * on the DRE (overlapped). Default ratios come from the paper's
 * Table II measurements and can be overridden with ratios measured by
 * the functional pipeline (pipeline/coupling).
 */

#ifndef VREX_SIM_METHOD_MODEL_HH
#define VREX_SIM_METHOD_MODEL_HH

#include <cstdint>
#include <string>

namespace vrex
{

/** Granularity of the importance-prediction scan. */
enum class PredGranularity : uint8_t
{
    None,     //!< No prediction (FlexGen fetches everything).
    Token,    //!< Per-token scores (InfiniGen/InfiniGenP).
    Frame,    //!< Per-frame scores (ReKV).
    Cluster,  //!< Per-hash-cluster scores (ReSV).
};

/** One retrieval method as the timing simulator sees it. */
struct MethodModel
{
    std::string name;

    bool offloads = true;            //!< KV lives behind PCIe.
    /** V-Rex's KVMU keeps the recent-KV window device-resident
     *  (Fig. 12); the GPU-oriented baselines offload the full cache
     *  (their published designs stream it back each pass). */
    bool keepsRecentWindow = false;
    bool selectsInPrefill = false;
    bool selectsInGeneration = false;
    double frameSelRatio = 1.0;      //!< Fetched fraction, prefill.
    double genSelRatio = 1.0;        //!< Fetched fraction, decode.

    PredGranularity granularity = PredGranularity::None;
    double tokensPerCluster = 32.0;  //!< Paper's measured average.
    bool dreOffloadPred = false;     //!< Prediction runs on the DRE.

    bool clusterContiguous = false;  //!< KVMU cluster-wise layout.
    /** Fraction of the selected non-resident set already present in
     *  the retrieved-KV region from the previous frame (temporal
     *  selection locality; only V-Rex's KVMU retains it). */
    double reuseFraction = 0.0;

    double kvBytesPerElem = 2.0;     //!< 0.5 for Oaken int4.

    /** Average contiguous tokens per PCIe transaction. */
    double avgTxTokens(double tokens_per_frame) const;

    /** Prediction elements scanned per layer for cache length @p s
     *  (per batch item, across all KV heads). */
    double predElementsPerLayer(double s, uint32_t kv_heads,
                                double tokens_per_frame) const;

    /** Effective fetched fraction of the past for a stage. */
    double
    selRatio(bool frame_stage) const
    {
        if (frame_stage)
            return selectsInPrefill ? frameSelRatio : 1.0;
        return selectsInGeneration ? genSelRatio : 1.0;
    }

    // The paper's methods (§VI-B and Fig. 16 ablation points).
    static MethodModel flexgen();
    static MethodModel infinigen();
    static MethodModel infinigenP();
    static MethodModel rekv();
    /** ReSV on the GPU (Fig. 16 "AGX+ReSV"). */
    static MethodModel resvSoftware();
    /** ReSV + DRE prediction, no KVMU (Fig. 16 "V-Rex8 KVPU"). */
    static MethodModel resvKvpu();
    /** Full V-Rex: ReSV + DRE + KVMU (Fig. 16 "V-Rex8 All"). */
    static MethodModel resvFull();
    /** GPU with KV resident (no offload; OOMs, Fig. 15). */
    static MethodModel gpuNoOffload();
    /** Oaken: int4 KV, resident (no offload; OOMs later, Fig. 15). */
    static MethodModel oaken();
    /** Extension (paper §VII): ReSV retrieval stacked on int4 KV
     *  quantization — retrieval bounds the working set while
     *  quantization shrinks every byte moved. */
    static MethodModel resvOaken();
};

} // namespace vrex

#endif // VREX_SIM_METHOD_MODEL_HH
