/**
 * @file
 * Hierarchical KV cache memory management (paper §V-C, Fig. 12).
 *
 * Recent KV entries live in the accelerator's DRAM; when the resident
 * set exceeds the configured capacity, the oldest entries are
 * offloaded to CPU memory (server) or NVMe storage (edge). Retrieval
 * fetches selected non-resident entries back on demand. This module
 * tracks residency and byte/transaction traffic; the timing of the
 * resulting transfers is priced by sim/pcie_model and sim/ssd_model.
 */

#ifndef VREX_KVSTORE_HIERARCHICAL_CACHE_HH
#define VREX_KVSTORE_HIERARCHICAL_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"

namespace vrex
{

/** Memory tiers of the hierarchy. */
enum class Tier : uint8_t
{
    Device,   //!< Accelerator / GPU DRAM.
    CpuMem,   //!< Host DRAM behind PCIe.
    Storage,  //!< NVMe SSD behind PCIe.
};

/** Capacity and offload-target configuration. */
struct TierConfig
{
    /** Budget for resident KV. Zero (the default) means a zero-token
     *  device window: every appended token spills straight to the
     *  offload target, equivalent traffic to offloadAll. */
    uint64_t deviceKvCapacityBytes = 0;
    Tier offloadTarget = Tier::CpuMem;
    /** If true (FlexGen), every entry is offloaded regardless of
     *  capacity and the device holds no persistent window. */
    bool offloadAll = false;
};

/** Cumulative transfer accounting. */
struct TransferStats
{
    uint64_t offloadedBytes = 0;   //!< Device -> lower tier.
    uint64_t fetchedBytes = 0;     //!< Lower tier -> device.
    uint64_t fetchedTokens = 0;
    uint64_t touchedTokens = 0;
};

/** Residency tracker for one session's token stream. */
class HierarchicalKVCache
{
  public:
    /**
     * @param bytes_per_token KV bytes of one token across all layers.
     * @param config          Tier capacities and offload target.
     */
    HierarchicalKVCache(uint64_t bytes_per_token,
                        const TierConfig &config);

    /** Append @p count new tokens; they enter the device tier and the
     *  oldest tokens spill once capacity is exceeded. */
    void appendTokens(uint32_t count);

    /**
     * Account one layer's attention access to @p tokens.
     *
     * An empty @p tokens list is a no-op (legal on an empty cache);
     * touching a token index >= totalTokens() is a caller bug and
     * panics.
     *
     * @param tokens                Global token indices accessed.
     * @param bytes_per_token_layer KV bytes per token for one layer.
     * @return Bytes fetched from the lower tier for this access.
     */
    uint64_t touch(const std::vector<uint32_t> &tokens,
                   uint64_t bytes_per_token_layer);

    Tier residency(uint32_t token) const;

    uint32_t totalTokens() const { return numTokens; }
    uint32_t residentTokens() const;
    uint32_t windowStart() const { return firstResident; }

    const TransferStats &stats() const { return xfer; }
    const TierConfig &config() const { return cfg; }

    void clear();

    /**
     * Serialize the residency window and transfer counters. The
     * geometry (bytes-per-token, tier config) is NOT serialized;
     * restore() validates the blob against this tracker's own.
     */
    void serialize(serial::ByteWriter &w) const;
    void restore(serial::ByteReader &r);

  private:
    uint64_t bytesPerToken;
    TierConfig cfg;
    uint32_t numTokens = 0;
    /** Tokens with index >= firstResident are device-resident. */
    uint32_t firstResident = 0;
    TransferStats xfer;
};

} // namespace vrex

#endif // VREX_KVSTORE_HIERARCHICAL_CACHE_HH
