/**
 * @file
 * Table II reproduction: accuracy and retrieval ratio of each
 * retrieval method across the five COIN task archetypes.
 *
 * Substitution (see DESIGN.md): COIN Top-1 accuracy is replaced by
 * the attention-fidelity proxy mapped onto the paper's published
 * vanilla (VideoLLM-Online) accuracies; retrieval ratios are measured
 * directly from the functional pipeline. The orderings to check
 * against the paper: ReSV achieves the lowest ratios with the
 * smallest accuracy drop; InfiniGen holds accuracy but retrieves
 * 100% during frame processing; InfiniGenP/ReKV lose more accuracy.
 */

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "retrieval/policies.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

/** Paper Table II vanilla (VideoLLM-Online) Top-1 per task. */
const std::map<CoinTask, double> vanillaAcc = {
    {CoinTask::Step, 49.0},  {CoinTask::Next, 62.1},
    {CoinTask::Proc, 51.6},  {CoinTask::ProcPlus, 92.5},
    {CoinTask::Task, 49.5},
};

struct MethodEntry
{
    std::string name;
    std::function<std::unique_ptr<SelectionPolicy>(
        const ModelConfig &)> make;
};

void
run(bench::Reporter &rep)
{
    const ModelConfig cfg = ModelConfig::tiny();
    const uint64_t seed = 42;

    std::vector<MethodEntry> methods;
    methods.push_back({"VideoLLM-Online", [](const ModelConfig &) {
        return std::unique_ptr<SelectionPolicy>();
    }});
    methods.push_back({"InfiniGen", [](const ModelConfig &m) {
        InfiniGenConfig c;
        c.ratio = 0.5f;
        return std::unique_ptr<SelectionPolicy>(
            new InfiniGenPolicy(m, c));
    }});
    methods.push_back({"InfiniGenP", [](const ModelConfig &m) {
        InfiniGenConfig c;
        c.ratio = 0.5f;
        c.prefill = true;
        return std::unique_ptr<SelectionPolicy>(
            new InfiniGenPolicy(m, c));
    }});
    methods.push_back({"ReKV", [](const ModelConfig &m) {
        ReKVConfig c;
        c.ratio = 0.5f;
        return std::unique_ptr<SelectionPolicy>(
            new ReKVPolicy(m, c));
    }});
    methods.push_back({"V-Rex's ReSV", [](const ModelConfig &m) {
        ResvConfig c;  // N_hp=32, Th_hd=7, Th_r-wics=0.3.
        return std::unique_ptr<SelectionPolicy>(
            new ResvPolicy(m, c));
    }});

    rep.beginPanel("accuracy",
                   "Table II: COIN accuracy proxy (Top-1) per method");

    struct Ratios { double frame, text; };
    std::map<std::string, std::vector<Ratios>> ratio_table;

    for (const auto &m : methods) {
        double acc_sum = 0.0;
        for (CoinTask t : allCoinTasks()) {
            SessionScript script = WorkloadGenerator::coinTask(t, 3);
            auto policy = m.make(cfg);
            FidelityResult f = evaluateFidelity(cfg, script,
                                                policy.get(), seed);
            double acc = proxyAccuracy(vanillaAcc.at(t), f);
            acc_sum += acc;
            rep.add(m.name, coinTaskName(t), acc, "", 1);
            ratio_table[m.name].push_back(
                {f.frameRatio, f.textRatio});
        }
        rep.add(m.name, "Avg", acc_sum / 5.0, "", 1);
    }

    const char *stages[2] = {"frame_ratio", "text_ratio"};
    for (int stage = 0; stage < 2; ++stage) {
        rep.beginPanel(stages[stage],
                       std::string("Table II: ") + stages[stage] +
                           " per method [%]");
        for (const auto &m : methods) {
            if (m.name == "VideoLLM-Online")
                continue;  // No retrieval.
            double sum = 0.0;
            auto tasks = allCoinTasks();
            for (size_t i = 0; i < tasks.size(); ++i) {
                const Ratios &r = ratio_table[m.name][i];
                double v = stage == 0 ? r.frame : r.text;
                sum += v;
                rep.add(m.name, coinTaskName(tasks[i]), 100.0 * v,
                        "%", 1);
            }
            rep.add(m.name, "Avg", 100.0 * sum / 5.0, "%", 1);
        }
    }
    rep.note("paper averages: InfiniGen 100/6.8, InfiniGenP "
             "50.8/6.8, ReKV 58.4/31.2, ReSV 32.7/2.5; ReSV drops "
             "only 0.8% accuracy vs vanilla");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("table2", argc, argv, run);
}
