/**
 * @file
 * Fig. 19 reproduction: the ReSV algorithm ablation — baseline
 * (VideoLLM-Online, no retrieval), ReSV without clustering (WiCSum
 * light attention over raw tokens), and full ReSV with hash-bit
 * clustering. Reports the functional accuracy proxy and the frame
 * latency speedup at 40K from the timing model, plus the N_hp /
 * Th_hd operating-point sweep that motivates the paper's defaults.
 *
 * Paper anchors: w/o clustering 1.6x (-0.3% accuracy); full ReSV
 * 9.4x (-0.8% accuracy).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "pipeline/coupling.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

double
frameLatencyMs(const AcceleratorConfig &hw, const MethodModel &m)
{
    RunConfig rc;
    rc.hw = hw;
    rc.method = m;
    rc.cacheTokens = 40000;
    return SystemModel(rc).framePhase().totalMs;
}

} // namespace

int
main()
{
    const ModelConfig cfg = ModelConfig::tiny();
    const double vanilla_acc = 49.5;  // COIN average, Fig. 19.
    SessionScript script = WorkloadGenerator::coinAverage(5);

    // Functional accuracy of the two ReSV variants.
    ResvConfig without_clustering;
    without_clustering.clustering = false;
    ResvPolicy p_noclust(cfg, without_clustering);
    FidelityResult f_noclust =
        evaluateFidelity(cfg, script, &p_noclust, 42);

    ResvConfig full;
    ResvPolicy p_full(cfg, full);
    FidelityResult f_full = evaluateFidelity(cfg, script, &p_full, 42);

    // Timing at 40K: baseline = full fetch on AGX; w/o clustering =
    // token-granular prediction; full = V-Rex8 with DRE + KVMU.
    double base_ms =
        frameLatencyMs(AcceleratorConfig::agxOrin(),
                       MethodModel::flexgen());
    MethodModel m_noclust = MethodModel::resvSoftware();
    m_noclust.granularity = PredGranularity::Token;
    m_noclust.frameSelRatio = f_noclust.frameRatio;
    double noclust_ms =
        frameLatencyMs(AcceleratorConfig::agxOrin(), m_noclust);
    MethodModel m_full = coupleResv(MethodModel::resvFull(),
                                    SessionRunResult{}, 0.0);
    m_full.frameSelRatio = f_full.frameRatio;
    double full_ms =
        frameLatencyMs(AcceleratorConfig::vrex8(), m_full);

    bench::header("Fig. 19: ReSV ablation (accuracy proxy + 40K "
                  "frame latency)");
    std::printf("%-22s %10s %10s %12s\n", "variant", "speedup",
                "accuracy", "frame-ratio");
    std::printf("%-22s %9.1fx %9.1f%% %11s\n", "VideoLLM-Online", 1.0,
                vanilla_acc, "-");
    std::printf("%-22s %9.1fx %9.1f%% %10.1f%%\n",
                "ReSV w/o clustering", base_ms / noclust_ms,
                proxyAccuracy(vanilla_acc, f_noclust),
                100.0 * f_noclust.frameRatio);
    std::printf("%-22s %9.1fx %9.1f%% %10.1f%%\n", "ReSV (full)",
                base_ms / full_ms,
                proxyAccuracy(vanilla_acc, f_full),
                100.0 * f_full.frameRatio);
    bench::note("paper: 1.6x / -0.3% without clustering, 9.4x / "
                "-0.8% with clustering");

    // Operating-point sweep: N_hp and Th_hd trade correlation
    // quality against cluster compression.
    bench::header("ReSV operating-point sweep (extension ablation)");
    std::printf("%6s %6s %12s %12s %12s\n", "N_hp", "Th_hd",
                "agreement", "frame-ratio", "tok/cluster");
    for (uint32_t n_hp : {16u, 32u, 64u}) {
        for (uint32_t th_hd : {3u, 7u, 12u}) {
            ResvConfig c;
            c.nHp = n_hp;
            c.thHd = th_hd;
            ResvPolicy policy(cfg, c);
            FidelityResult f =
                evaluateFidelity(cfg, script, &policy, 42);
            std::printf("%6u %6u %11.1f%% %11.1f%% %12.1f\n", n_hp,
                        th_hd, 100.0 * f.tokenAgreement,
                        100.0 * f.frameRatio,
                        policy.avgClusterSize());
        }
    }
    bench::note("the paper's N_hp=32, Th_hd=7 sits at the knee: "
                "strong compression with high agreement");
    return 0;
}
