#include "sim/compute_model.hh"

#include <algorithm>

namespace vrex
{

ComputeModel::ComputeModel(const AcceleratorConfig &hw_config,
                           const ModelConfig &model_config,
                           const VisionConfig &vision)
    : hw(hw_config), model(model_config), visionCfg(vision)
{
    if (hw.hasDre && hw.nCores > 0) {
        LxeConfig lc;
        lc.clockGhz = hw.clockGhz;
        lxe.emplace(lc, hw.nCores);
    }
}

double
ComputeModel::lxeLayerSeconds(double new_tokens, uint32_t batch) const
{
    const uint64_t m = static_cast<uint64_t>(new_tokens) * batch;
    const uint64_t d = model.dModel;
    const uint64_t kv_dim =
        uint64_t(model.nKvHeads) * model.headDim();
    const uint64_t ffn = model.ffnDim;
    double t = 0.0;
    t += lxe->gemmSeconds(m, d, d + 2 * kv_dim);  // Fused QKV.
    t += lxe->gemmSeconds(m, d, d);               // Output proj.
    t += lxe->gemmSeconds(m, d, ffn) * 2;         // Gate + up.
    t += lxe->gemmSeconds(m, ffn, d);             // Down.
    t += lxe->vpeSeconds(m * (2 * d + 3 * ffn));  // Norms + SwiGLU.
    return t;
}

double
ComputeModel::computeSec(double flops) const
{
    return flops / (hw.peakTflops * 1e12 * hw.computeEff);
}

double
ComputeModel::memorySec(double bytes) const
{
    return bytes / (hw.memBandwidthGBs * 1e9 * hw.memEff);
}

double
ComputeModel::denseFlops(double new_tokens, uint32_t batch) const
{
    return model.denseFlops(1) * new_tokens * batch;
}

double
ComputeModel::denseBytes() const
{
    // Weights stream through once per block regardless of batch.
    return static_cast<double>(model.paramBytes(2.0));
}

double
ComputeModel::denseSeconds(double new_tokens, uint32_t batch) const
{
    const double compute = lxe
        ? lxeLayerSeconds(new_tokens, batch) * model.nLayers
        : computeSec(denseFlops(new_tokens, batch));
    return std::max(compute, memorySec(denseBytes()));
}

double
ComputeModel::attentionFlops(double new_tokens, double attended,
                             uint32_t batch) const
{
    return model.attentionFlops(1, 1) * new_tokens * attended * batch;
}

double
ComputeModel::attentionBytes(double attended, uint32_t batch,
                             double kv_bytes_per_elem) const
{
    return attended * model.kvBytesPerToken(kv_bytes_per_elem) * batch;
}

double
ComputeModel::attentionSeconds(double new_tokens, double attended,
                               uint32_t batch,
                               double kv_bytes_per_elem) const
{
    return std::max(
        computeSec(attentionFlops(new_tokens, attended, batch)),
        memorySec(attentionBytes(attended, batch, kv_bytes_per_elem)));
}

double
ComputeModel::visionFlops(uint32_t batch) const
{
    return visionCfg.flopsPerFrame() * batch;
}

double
ComputeModel::visionBytes() const
{
    return visionCfg.weightBytes();
}

double
ComputeModel::visionSeconds(uint32_t batch) const
{
    return std::max(computeSec(visionFlops(batch)),
                    memorySec(visionBytes()));
}

} // namespace vrex
