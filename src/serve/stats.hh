/**
 * @file
 * Scheduler observability: admission, queueing and dispatch counters
 * exported by vrex::serve::Engine / Scheduler as plain value
 * snapshots, so benches and tests can assert saturation and fairness
 * behaviour without peeking into scheduler internals.
 *
 * Two kinds of numbers live here:
 *
 *  - *Logical* counters (items, slices, queue depths, wait measured
 *    in dispatch slices). Item/slice/rejection totals are exact
 *    given the verb arrival order; the wait/depth high-water marks
 *    are schedule-dependent in live feeding (always within their
 *    bounds — maxWaitSlices <= live-1) and become exact when bursts
 *    are staged under pause()/resume(), which is how the tests and
 *    the kvmu_layout --saturate panel assert on them.
 *  - *Wall-clock* times (queue wait / service nanoseconds). These are
 *    observability-only: never assert exact values on them.
 */

#ifndef VREX_SERVE_STATS_HH
#define VREX_SERVE_STATS_HH

#include <cstdint>

namespace vrex::serve
{

/** Admission + dispatch knobs of the engine scheduler. */
struct SchedulerConfig
{
    /** Max concurrently open sessions; 0 = unlimited. */
    uint32_t maxLiveSessions = 0;
    /** Max queued unit work items per session; 0 = unbounded.
     *  A Generate{n} verb counts as n items (see
     *  StreamingSession::unitEvents); Frame and Question count 1. */
    uint32_t maxQueuedPerSession = 0;
    /** Unit work items one dispatch slice executes before the
     *  session rotates to the back of the ready queue; 0 = drain the
     *  whole queue per slice (no time-slicing). */
    uint32_t sliceEvents = 4;
};

/** Per-session queue counters (also aggregated into Stats). */
struct QueueStats
{
    /** Unit work items accepted into the queue. */
    uint64_t itemsEnqueued = 0;
    /** Unit work items refused by backpressure (bounded queue). */
    uint64_t itemsRejected = 0;
    /** Unit work items executed. */
    uint64_t itemsExecuted = 0;
    /** Dispatch slices this session ran. */
    uint64_t slices = 0;
    /** Current queue depth (unit work items). */
    uint32_t depth = 0;
    /** High-water queue depth. */
    uint32_t maxDepth = 0;
    /**
     * Fairness: the max number of *other* sessions' slices dispatched
     * between this session becoming ready and being dispatched. The
     * round-robin ready queue guarantees maxWaitSlices <= live - 1.
     */
    uint64_t maxWaitSlices = 0;
    /** Wall-clock total time spent ready-but-waiting (ns). */
    uint64_t waitNs = 0;
    /** Wall-clock total time spent executing slices (ns). */
    uint64_t serviceNs = 0;
    /** Wall-clock worst single ready->dispatch wait (ns). */
    uint64_t maxWaitNs = 0;
};

/** Engine-wide scheduler snapshot. */
struct Stats
{
    // ---- admission ----------------------------------------------
    /** Sessions admitted since construction. */
    uint64_t admitted = 0;
    /** createSession attempts refused by the live-session cap. */
    uint64_t rejectedAdmissions = 0;
    /** Currently open sessions. */
    uint32_t liveSessions = 0;
    /** High-water open-session count. */
    uint32_t maxLiveObserved = 0;

    // ---- queueing / dispatch (aggregated over all sessions, -----
    // ---- including ones that have since closed) -----------------
    uint64_t itemsEnqueued = 0;
    uint64_t itemsRejected = 0;
    uint64_t itemsExecuted = 0;
    uint64_t slices = 0;
    uint32_t maxQueueDepth = 0;
    uint64_t maxWaitSlices = 0;
    uint64_t waitNs = 0;
    uint64_t serviceNs = 0;
    uint64_t maxWaitNs = 0;

    /** The knobs the scheduler was built with. */
    SchedulerConfig config;

    /** Mean ready->dispatch wait per slice, milliseconds. */
    double
    meanWaitMs() const
    {
        return slices ? waitNs / 1e6 / static_cast<double>(slices)
                      : 0.0;
    }

    /** Mean slice service time, milliseconds. */
    double
    meanServiceMs() const
    {
        return slices ? serviceNs / 1e6 / static_cast<double>(slices)
                      : 0.0;
    }
};

} // namespace vrex::serve

#endif // VREX_SERVE_STATS_HH
