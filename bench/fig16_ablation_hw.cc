/**
 * @file
 * Fig. 16 reproduction: the hardware ablation at 40K cache, batch 1
 * (edge). Cumulative optimizations: AGX+FlexGen baseline ->
 * AGX+ReSV (software only) -> V-Rex8 KVPU (DRE prediction) ->
 * V-Rex8 All (+KVMU). Reports speedup, energy reduction, and the
 * latency breakdown showing where each optimization bites.
 *
 * Paper anchors: AGX+ReSV 2.8x, V-Rex8 KVPU 6.0x (9.2x energy),
 * V-Rex8 All 8.1x (10.2x energy); KV prediction is 48% of the
 * AGX+ReSV latency but 0.5% with the KVPU; the HC table costs only
 * ~1.67% of KV memory at ~32 tokens/cluster.
 */

#include <vector>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    const uint32_t cache = 40000;

    struct Entry
    {
        std::string label;
        AcceleratorConfig hw;
        MethodModel method;
    };
    std::vector<Entry> entries = {
        {"AGX+FlexGen", AcceleratorConfig::agxOrin(),
         MethodModel::flexgen()},
        {"AGX+ReSV", AcceleratorConfig::agxOrin(),
         MethodModel::resvSoftware()},
        {"V-Rex8 KVPU", AcceleratorConfig::vrex8(),
         MethodModel::resvKvpu()},
        {"V-Rex8 All", AcceleratorConfig::vrex8(),
         MethodModel::resvFull()},
    };

    rep.beginPanel("ablation", "Fig. 16: ablation at 40K cache, "
                               "batch 1");
    double base_lat = 0.0, base_j = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
        RunConfig rc;
        rc.hw = entries[i].hw;
        rc.method = entries[i].method;
        rc.cacheTokens = cache;
        PhaseResult r = SystemModel(rc).framePhase();
        if (i == 0) {
            base_lat = r.totalMs;
            base_j = r.energy.totalJ();
        }
        double pred_share = r.predictionMs > 0.0
            ? 100.0 * r.predictionMs / r.totalMs
            : 100.0 * r.dreMs / r.totalMs;
        const std::string &row = entries[i].label;
        rep.add(row, "latency", r.totalMs, "ms", 0);
        rep.add(row, "speedup", base_lat / r.totalMs, "x", 1);
        rep.add(row, "energy", r.energy.totalJ(), "J", 2);
        rep.add(row, "energy_gain", base_j / r.energy.totalJ(), "x",
                1);
        rep.add(row, "pred_share", pred_share, "%", 1);
    }

    rep.beginPanel("breakdown", "Fig. 16: latency breakdown per "
                                "config (ms)");
    for (const auto &e : entries) {
        RunConfig rc;
        rc.hw = e.hw;
        rc.method = e.method;
        rc.cacheTokens = cache;
        PhaseResult r = SystemModel(rc).framePhase();
        rep.add(e.label, "vision_mlp", r.visionMs, "ms", 0);
        rep.add(e.label, "llm", r.denseMs + r.attentionMs, "ms", 0);
        rep.add(e.label, "prediction", r.predictionMs + r.dreMs, "ms",
                1);
        rep.add(e.label, "fetch", r.fetchMs, "ms", 0);
        rep.add(e.label, "wall_clock", r.totalMs, "ms", 0);
    }
    rep.note("paper: 2.8x / 6.0x / 8.1x speedups; 9.2x / 10.2x "
             "energy; prediction 48% of AGX+ReSV latency -> 0.5% "
             "with KVPU");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig16", argc, argv, run);
}
