#include "serve/engine.hh"

#include <stdexcept>
#include <utility>

namespace vrex::serve
{

SessionOptions
SessionOptions::fromScript(const SessionScript &script)
{
    SessionOptions o;
    o.name = script.name;
    o.video = script.video;
    o.scriptSeed = script.seed;
    return o;
}

Engine::Engine(EngineConfig config)
    : cfg(std::move(config)),
      pool(resolveWorkerCount(cfg.workers))
{
}

Engine::~Engine()
{
    waitAll();
    // Members destroy in reverse declaration order: the session map
    // dies first, then the pool. That is safe because waitAll()
    // guarantees every queued job has finished, so no worker still
    // references a session when the map goes away.
}

Engine::Session *
Engine::findSession(SessionId id)
{
    auto it = sessions.find(id);
    return it == sessions.end() ? nullptr : it->second.get();
}

Engine::Session &
Engine::sessionRef(SessionId id)
{
    Session *s = findSession(id);
    if (!s)
        throw std::out_of_range(
            "vrex::serve::Engine: unknown or closed session id " +
            std::to_string(id));
    return *s;
}

SessionId
Engine::createSession(const SessionOptions &options)
{
    auto s = std::make_unique<Session>();
    s->options = options;
    const PolicySpec &spec =
        options.policy ? *options.policy : cfg.policy;
    const uint64_t seed =
        options.sessionSeed ? *options.sessionSeed : cfg.sessionSeed;
    s->policy = makePolicy(cfg.model, spec);
    s->exec = std::make_unique<StreamingSession>(
        cfg.model, s->policy.active(), seed);
    s->exec->begin(options.name, options.video, options.scriptSeed,
                   options.forcedTokens);

    std::lock_guard<std::mutex> lock(mu);
    SessionId id = nextId++;
    sessions.emplace(id, std::move(s));
    return id;
}

SessionId
Engine::submit(const SessionScript &script)
{
    return submit(script, SessionOptions{});
}

SessionId
Engine::submit(const SessionScript &script, SessionOptions options)
{
    // The script is the source of truth for stream identity (these
    // three fields feed the per-session RNG streams); only the
    // policy/seed/forcing overrides of @p options are honoured.
    options.name = script.name;
    options.video = script.video;
    options.scriptSeed = script.seed;
    SessionId id = createSession(options);
    enqueue(id, script.events);
    return id;
}

void
Engine::scheduleLocked(SessionId, Session &s)
{
    if (s.running || s.pending.empty())
        return;
    s.running = true;
    Session *sp = &s;
    pool.submit([this, sp] { drain(sp); });
}

void
Engine::drain(Session *s)
{
    for (;;) {
        std::deque<SessionEvent> batch;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (s->pending.empty()) {
                s->running = false;
                idleCv.notify_all();
                return;
            }
            batch.swap(s->pending);
        }
        // Exclusive access: `running` stays true until the locked
        // branch above, so no other thread touches `exec`.
        for (const SessionEvent &event : batch)
            s->exec->apply(event);
    }
}

void
Engine::enqueue(SessionId id, const std::vector<SessionEvent> &events)
{
    if (events.empty())
        return;
    std::lock_guard<std::mutex> lock(mu);
    Session &s = sessionRef(id);
    s.pending.insert(s.pending.end(), events.begin(), events.end());
    scheduleLocked(id, s);
}

void
Engine::feedFrame(SessionId id, uint32_t frames)
{
    std::vector<SessionEvent> events(
        frames, SessionEvent{SessionEvent::Type::Frame, 0});
    enqueue(id, events);
}

void
Engine::ask(SessionId id, uint32_t question_tokens,
            uint32_t answer_tokens)
{
    enqueue(id, {{SessionEvent::Type::Question, question_tokens},
                 {SessionEvent::Type::Generate, answer_tokens}});
}

void
Engine::waitIdleLocked(std::unique_lock<std::mutex> &lock,
                       SessionId id)
{
    // Re-resolve the session on every wake: a concurrent
    // closeSession() may erase it while we sleep, and holding a
    // reference across the wait would dangle.
    idleCv.wait(lock, [this, id] {
        Session *s = findSession(id);
        return !s || (!s->running && s->pending.empty());
    });
    sessionRef(id); // Throws when the session was closed meanwhile.
}

void
Engine::wait(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
}

void
Engine::waitAll()
{
    std::unique_lock<std::mutex> lock(mu);
    idleCv.wait(lock, [this] {
        for (const auto &[id, s] : sessions)
            if (s->running || !s->pending.empty())
                return false;
        return true;
    });
}

SessionRunResult
Engine::result(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
    Session &s = sessionRef(id);
    // Pin the session with the drain convention (`running` = someone
    // owns exec) and snapshot outside the lock, so the potentially
    // large copy doesn't stall every other session's scheduling.
    s.running = true;
    lock.unlock();
    SessionRunResult out = s.exec->snapshot();
    lock.lock();
    s.running = false;
    idleCv.notify_all();
    // Events enqueued while pinned were not scheduled; catch up.
    scheduleLocked(id, s);
    return out;
}

void
Engine::closeSession(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
    sessions.erase(id);
    // Wake peers blocked on this id so they observe the closure.
    idleCv.notify_all();
}

size_t
Engine::openSessions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sessions.size();
}

const Model &
Engine::model(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
    return sessionRef(id).exec->model();
}

const PolicyInstance &
Engine::policy(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
    return sessionRef(id).policy;
}

const MemoryReplayStats *
Engine::memoryStats(SessionId id)
{
    std::unique_lock<std::mutex> lock(mu);
    waitIdleLocked(lock, id);
    Session &s = sessionRef(id);
    return s.policy.memory() ? &s.policy.memory()->stats() : nullptr;
}

FidelityResult
Engine::evaluateFidelity(const SessionScript &script,
                         const PolicySpec &spec)
{
    return evaluateFidelityBatch({{script, spec}})[0];
}

std::vector<FidelityResult>
Engine::evaluateFidelityBatch(const std::vector<FidelityJob> &jobs)
{
    // Phase 1: full-attention reference runs, all concurrent.
    std::vector<SessionId> refs;
    refs.reserve(jobs.size());
    for (const FidelityJob &job : jobs) {
        SessionOptions o; // Stream identity comes from the script.
        o.policy = PolicySpec::full();
        refs.push_back(submit(job.script, o));
    }
    std::vector<SessionRunResult> ref_runs;
    ref_runs.reserve(jobs.size());
    for (SessionId id : refs) {
        ref_runs.push_back(result(id));
        closeSession(id);
    }

    // Phase 2: teacher-forced policy runs, all concurrent.
    std::vector<SessionId> tests;
    tests.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        SessionOptions o;
        o.policy = jobs[i].policy;
        o.forcedTokens = ref_runs[i].generated;
        tests.push_back(submit(jobs[i].script, o));
    }
    std::vector<FidelityResult> out;
    out.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        SessionRunResult test = result(tests[i]);
        closeSession(tests[i]);
        out.push_back(compareRuns(ref_runs[i], test));
    }
    return out;
}

} // namespace vrex::serve
