#include "core/wicsum.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "common/bits.hh"
#include "common/logging.hh"
#include "core/kernels.hh"

namespace vrex
{

namespace
{

/**
 * Eq. 1 accumulation. Deliberately scalar on every ISA: the result
 * feeds the Eq. 2/3 threshold comparisons, and a reassociated
 * (vectorized) double sum can differ in the last ulp — enough to flip
 * a selection at the boundary and move a figure. The sequential
 * accumulation order *is* the contract.
 */
double
weightedSum(const std::vector<float> &scores,
            const std::vector<uint32_t> &counts)
{
    double sum = 0.0;
    for (size_t i = 0; i < scores.size(); ++i)
        sum += static_cast<double>(scores[i]) * counts[i];
    return sum;
}

} // namespace

WicsumResult
wicsumSelectReference(const std::vector<float> &scores,
                      const std::vector<uint32_t> &counts,
                      float thr_ratio)
{
    VREX_ASSERT(scores.size() == counts.size(),
                "scores/counts size mismatch");
    WicsumResult result;
    if (scores.empty())
        return result;

    const double threshold = weightedSum(scores, counts) * thr_ratio;

    std::vector<uint32_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return scores[a] > scores[b];
                     });

    double acc = 0.0;
    for (uint32_t idx : order) {
        result.selected.push_back(idx);
        ++result.scanned;
        acc += static_cast<double>(scores[idx]) * counts[idx];
        if (acc > threshold)
            break;
    }
    return result;
}

WicsumResult
wicsumSelectEarlyExit(const std::vector<float> &scores,
                      const std::vector<uint32_t> &counts,
                      float thr_ratio, uint32_t n_buckets)
{
    VREX_ASSERT(scores.size() == counts.size(),
                "scores/counts size mismatch");
    VREX_ASSERT(n_buckets > 0, "need at least one bucket");
    WicsumResult result;
    if (scores.empty())
        return result;

    // Preprocess step: weighted sum, threshold, min/max (Fig. 11).
    // min/max runs on the dispatched SIMD kernel — value-exact in any
    // evaluation order, so the bucket boundaries below are unchanged.
    const double threshold = weightedSum(scores, counts) * thr_ratio;
    float lo, hi;
    kernels::active().minMaxF32(scores.data(), scores.size(), &lo, &hi);
    if (hi <= lo) {
        // Degenerate row: all scores equal; accumulate in index order.
        double acc = 0.0;
        for (uint32_t i = 0; i < scores.size(); ++i) {
            result.selected.push_back(i);
            ++result.scanned;
            acc += static_cast<double>(scores[i]) * counts[i];
            if (acc > threshold)
                break;
        }
        result.bucketsVisited = 1;
        return result;
    }

    // Token selection step: sweep buckets from the highest range. The
    // membership scan (compare all scores against the bucket bounds)
    // is the hot loop and runs on the dispatched rangeBitmap kernel;
    // the bitmap is then walked in ascending index order, so the
    // visit order and the sequential threshold accumulation are
    // exactly the scalar sweep's.
    const double width =
        (static_cast<double>(hi) - lo) / n_buckets;
    const auto rangeBitmap = kernels::active().rangeBitmap;
    std::vector<uint64_t> bitmap(
        bitWords(static_cast<uint32_t>(scores.size())));
    double acc = 0.0;
    for (uint32_t b = n_buckets; b-- > 0;) {
        ++result.bucketsVisited;
        const double lower = lo + width * b;
        const double upper = lo + width * (b + 1);
        rangeBitmap(scores.data(), scores.size(), lower, upper,
                    b + 1 == n_buckets, bitmap.data());
        for (size_t w = 0; w < bitmap.size(); ++w) {
            uint64_t bits = bitmap[w];
            while (bits != 0) {
                const uint32_t i = static_cast<uint32_t>(
                    w * 64 + static_cast<uint32_t>(
                                 std::countr_zero(bits)));
                bits &= bits - 1;
                result.selected.push_back(i);
                ++result.scanned;
                acc += static_cast<double>(scores[i]) * counts[i];
                if (acc > threshold)
                    return result;  // Early exit.
            }
        }
    }
    return result;
}

std::vector<float>
expNormalize(const std::vector<float> &raw_scores)
{
    std::vector<float> out(raw_scores.size());
    if (raw_scores.empty())
        return out;
    float mx = raw_scores[0];
    for (float s : raw_scores)
        mx = std::max(mx, s);
    for (size_t i = 0; i < raw_scores.size(); ++i)
        out[i] = std::exp(raw_scores[i] - mx);
    return out;
}

} // namespace vrex
