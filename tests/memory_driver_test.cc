/**
 * @file
 * Tests for the functional memory-hierarchy replay: residency
 * accounting under real sessions and the KVMU layout-contiguity
 * benefit (paper §V-C) measured with real ReSV selections.
 */

#include <gtest/gtest.h>

#include "core/resv.hh"
#include "pipeline/memory_driver.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

SessionScript
mediumScript(uint64_t seed)
{
    SessionScript s = WorkloadGenerator::coinAverage(seed);
    s.events.clear();
    for (int f = 0; f < 12; ++f)
        s.events.push_back({SessionEvent::Type::Frame, 0});
    s.events.push_back({SessionEvent::Type::Question, 8});
    s.events.push_back({SessionEvent::Type::Generate, 4});
    return s;
}

TierConfig
smallWindow(const ModelConfig &cfg, uint32_t tokens)
{
    TierConfig t;
    t.deviceKvCapacityBytes = tokens * cfg.kvBytesPerToken(2.0);
    t.offloadTarget = Tier::Storage;
    return t;
}

} // namespace

TEST(MemoryDriver, TracksFetchesForResv)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    MemoryTrackingPolicy tracked(&resv, cfg, smallWindow(cfg, 32));
    tracked.setClusterSource(&resv);

    StreamingSession session(cfg, &tracked, 42);
    session.run(mediumScript(1));

    const MemoryReplayStats &s = tracked.stats();
    EXPECT_GT(s.selectedTokens, 0u);
    EXPECT_GT(s.fetchedBytes, 0u);     // Window smaller than cache.
    EXPECT_GT(s.offloadedBytes, 0u);
    EXPECT_GT(s.fetchEvents, 0u);
}

TEST(MemoryDriver, ClusteredLayoutFewerRuns)
{
    // The KVMU claim: cluster-contiguous layout turns scattered
    // token selections into fewer, larger transactions.
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    MemoryTrackingPolicy tracked(&resv, cfg, smallWindow(cfg, 16));
    tracked.setClusterSource(&resv);

    StreamingSession session(cfg, &tracked, 42);
    session.run(mediumScript(2));

    const MemoryReplayStats &s = tracked.stats();
    ASSERT_GT(s.runsTimeOrder, 0u);
    ASSERT_GT(s.runsClustered, 0u);
    EXPECT_LT(s.runsClustered, s.runsTimeOrder);
    EXPECT_GT(s.tokensPerRunClustered(),
              s.tokensPerRunTimeOrder());
}

TEST(MemoryDriver, NoFetchWhenEverythingResident)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    // Window big enough for the whole session.
    MemoryTrackingPolicy tracked(&resv, cfg,
                                 smallWindow(cfg, 100000));
    StreamingSession session(cfg, &tracked, 42);
    session.run(mediumScript(3));
    EXPECT_EQ(tracked.stats().fetchedBytes, 0u);
    EXPECT_EQ(tracked.stats().offloadedBytes, 0u);
}

TEST(MemoryDriver, WorksWithBaselinePolicies)
{
    ModelConfig cfg = ModelConfig::tiny();
    InfiniGenConfig ic;
    ic.prefill = true;
    InfiniGenPolicy topk(cfg, ic);
    MemoryTrackingPolicy tracked(&topk, cfg, smallWindow(cfg, 16));
    StreamingSession session(cfg, &tracked, 42);
    SessionRunResult r = session.run(mediumScript(4));
    EXPECT_LT(r.frameRatio, 1.0);  // Inner selection still applied.
    EXPECT_GT(tracked.stats().fetchedBytes, 0u);
    // Without a cluster source, the "clustered" layout is identity:
    // run counts match the time order.
    EXPECT_EQ(tracked.stats().runsClustered,
              tracked.stats().runsTimeOrder);
}

TEST(MemoryDriver, ResetClearsEverything)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    MemoryTrackingPolicy tracked(&resv, cfg, smallWindow(cfg, 16));
    StreamingSession session(cfg, &tracked, 42);
    session.run(mediumScript(5));
    tracked.reset();
    EXPECT_EQ(tracked.stats().fetchedBytes, 0u);
    EXPECT_EQ(tracked.stats().selectedTokens, 0u);
    EXPECT_EQ(tracked.hierarchy().totalTokens(), 0u);
    EXPECT_EQ(resv.table(0, 0).tokenCount(), 0u);
}

TEST(MemoryDriver, FullAttentionFetchesEverythingOffDevice)
{
    ModelConfig cfg = ModelConfig::tiny();
    FlexGenPolicy flex;
    MemoryTrackingPolicy tracked(&flex, cfg, smallWindow(cfg, 8));
    StreamingSession session(cfg, &tracked, 42);
    session.run(mediumScript(6));
    const MemoryReplayStats &s = tracked.stats();
    // FlexGen selects everything: fetch bytes dominate.
    EXPECT_GT(s.fetchedBytes, s.offloadedBytes);
}
