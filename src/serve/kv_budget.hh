/**
 * @file
 * Engine-level KV working-set budget and hibernation bookkeeping.
 *
 * KvBudget tracks every open session's KV bytes against a configured
 * budget and decides, when the resident set overflows, which idle
 * sessions to hibernate: least-recently-executed first, Bulk-class
 * sessions before Interactive ones (background ingest pays the wake
 * penalty before latency-sensitive chat does). The Engine performs
 * the actual serialize/cold-store/restore transitions — this class
 * is pure accounting plus victim selection, so it can be tested
 * deterministically without an engine.
 *
 * Recency is a logical tick (incremented per recorded execution),
 * not wall clock, so victim order is deterministic for a given
 * execution order.
 *
 * With budgetBytes = 0 (the default) the budget is unlimited: no
 * session ever hibernates and the engine behaves exactly as before
 * the budget existed.
 */

#ifndef VREX_SERVE_KV_BUDGET_HH
#define VREX_SERVE_KV_BUDGET_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/thread_annotations.hh"
#include "kvstore/cold_store.hh"
#include "serve/stats.hh"

namespace vrex::serve
{

/** KV-budget / hibernation knobs (EngineConfig::kvBudget). */
struct KvBudgetConfig
{
    /** Max KV bytes resident across all sessions; 0 = unlimited
     *  (hibernation disabled — the pre-budget engine behavior). */
    uint64_t budgetBytes = 0;
    /** KV element precision used to price a session's working set
     *  (matches KVCache::totalBytes). */
    double bytesPerElem = 2.0;
    /** Cold store for hibernated session blobs. When null the
     *  engine owns a MemoryColdStore (host-DRAM tier). Shared so
     *  callers can keep a handle for inspection or persistence. */
    std::shared_ptr<ColdStore> store;
};

/** Accounting + victim selection for session hibernation. */
class KvBudget
{
  public:
    using Key = uint64_t;

    explicit KvBudget(const KvBudgetConfig &config) : cfg(config) {}

    bool enabled() const { return cfg.budgetBytes > 0; }
    const KvBudgetConfig &config() const { return cfg; }

    /** Register a new resident session. */
    void onAdmit(Key key, SchedClass cls) VREX_EXCLUDES(mu);

    /** Record a dispatch slice: update the session's KV bytes and
     *  bump its recency tick. (The class is tracked separately via
     *  onAdmit/setClass — slices do not change it.) */
    void onExecuted(Key key, uint64_t kv_bytes) VREX_EXCLUDES(mu);

    /** Forget the session entirely (closeSession). */
    void onClose(Key key) VREX_EXCLUDES(mu);

    /** Track a mid-stream scheduling-class change (affects victim
     *  ordering only). No-op on unknown keys. */
    void setClass(Key key, SchedClass cls) VREX_EXCLUDES(mu);

    /** Transition @p key to hibernated: its KV bytes leave the
     *  resident set; @p blob_bytes and @p ns feed the counters. */
    void markHibernated(Key key, uint64_t blob_bytes, uint64_t ns)
        VREX_EXCLUDES(mu);

    /** Transition @p key back to resident with @p kv_bytes of KV
     *  (also bumps recency — the waking verb is an execution). */
    void markWoken(Key key, uint64_t kv_bytes, uint64_t blob_bytes,
                   uint64_t ns) VREX_EXCLUDES(mu);

    /** True when @p key is currently hibernated. */
    bool hibernated(Key key) const VREX_EXCLUDES(mu);

    /** Resident KV bytes across all non-hibernated sessions. */
    uint64_t residentBytes() const VREX_EXCLUDES(mu);

    /** True when the budget is enabled and the resident set
     *  (excluding nothing) exceeds it. */
    bool overBudget() const VREX_EXCLUDES(mu);

    /**
     * Hibernation candidates, in eviction order: Bulk sessions
     * least-recently-executed first, then Interactive likewise.
     * Excludes @p exclude (the caller's own session — it is running
     * and could never be pinned anyway) and already-hibernated
     * sessions. The caller must still tryPinIdle() each candidate:
     * busy sessions are skipped, not waited for.
     */
    std::vector<Key> victims(Key exclude) const VREX_EXCLUDES(mu);

    /** Snapshot (cold-store numbers come from @p store). */
    KvBudgetStats snapshot(const ColdStore &store) const
        VREX_EXCLUDES(mu);

  private:
    struct Entry
    {
        uint64_t kvBytes = 0;
        uint64_t tick = 0;
        SchedClass cls = SchedClass::Interactive;
        bool hibernated = false;
    };

    KvBudgetConfig cfg;
    mutable Mutex mu;
    std::map<Key, Entry> entries VREX_GUARDED_BY(mu);
    /** Logical recency tick. */
    uint64_t clock VREX_GUARDED_BY(mu) = 0;
    /** Sum of non-hibernated kvBytes. */
    uint64_t resident VREX_GUARDED_BY(mu) = 0;
    uint64_t hibernates VREX_GUARDED_BY(mu) = 0;
    uint64_t wakes VREX_GUARDED_BY(mu) = 0;
    uint64_t hibernatedBlobBytes VREX_GUARDED_BY(mu) = 0;
    uint64_t wokenBlobBytes VREX_GUARDED_BY(mu) = 0;
    LatencyHistogram hibernateLatency VREX_GUARDED_BY(mu);
    LatencyHistogram wakeLatency VREX_GUARDED_BY(mu);
};

} // namespace vrex::serve

#endif // VREX_SERVE_KV_BUDGET_HH
