// Fixture: nondet-clock fires on a bare steady_clock read.
#include <chrono>

long
now()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
