#include "core/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "tensor/ops.hh"

namespace vrex::kernels
{

// Probe hooks defined by the per-ISA translation units
// (kernels_avx2.cc / kernels_neon.cc). Each returns its Ops table, or
// nullptr when that ISA is not compiled for this target — so the
// dispatcher needs no compile-time knowledge of what got built.
const Ops *avx2OpsOrNull();
const Ops *neonOpsOrNull();

namespace
{

// ---------------------------------------------------------------------
// Scalar reference kernels. These define the semantics every SIMD
// variant must reproduce bit-for-bit; hashEncodeScalar in particular
// delegates to the same tensor dot() the pre-dispatch HashEncoder
// called, so the dispatch layer introduced no numeric change.
// ---------------------------------------------------------------------

void
hashEncodeScalar(const HashPlanes &p, const float *key, uint64_t *words)
{
    const uint32_t nwords = bitWords(p.nbits);
    std::fill(words, words + nwords, 0ull);
    for (uint32_t b = 0; b < p.nbits; ++b) {
        if (dot(key, p.rows + static_cast<size_t>(b) * p.dim, p.dim) >
            0.0f) {
            words[b >> 6] |= 1ull << (b & 63u);
        }
    }
}

void
minMaxF32Scalar(const float *s, size_t n, float *lo, float *hi)
{
    float mn = s[0], mx = s[0];
    for (size_t i = 1; i < n; ++i) {
        mn = std::min(mn, s[i]);
        mx = std::max(mx, s[i]);
    }
    *lo = mn;
    *hi = mx;
}

void
rangeBitmapScalar(const float *s, size_t n, double lower, double upper,
                  bool closedTop, uint64_t *bitmap)
{
    const size_t nwords =
        bitWords(static_cast<uint32_t>(n));
    std::fill(bitmap, bitmap + nwords, 0ull);
    for (size_t i = 0; i < n; ++i) {
        const double v = s[i];
        const bool in =
            closedTop ? (v >= lower) : (v >= lower && v < upper);
        if (in)
            bitmap[i >> 6] |= 1ull << (i & 63u);
    }
}

const Ops kScalarOps = {
    "scalar",
    &vrex::detail::hammingWordsScalar,
    &hashEncodeScalar,
    &minMaxF32Scalar,
    &rangeBitmapScalar,
};

// ---------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------

std::atomic<const Ops *> gActive{&kScalarOps};
std::atomic<Isa> gActiveIsa{Isa::Scalar};

void
install(const Ops *ops, Isa isa)
{
    gActive.store(ops, std::memory_order_release);
    gActiveIsa.store(isa, std::memory_order_release);
    // Route BitSig::hamming (common layer, cannot depend on core)
    // through the same selection.
    vrex::detail::bitsigHammingHook.store(ops->hammingWords,
                                          std::memory_order_release);
}

const Ops *
opsForCompiled(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return &kScalarOps;
      case Isa::Avx2:
        return avx2OpsOrNull();
      case Isa::Neon:
        return neonOpsOrNull();
    }
    return nullptr;
}

bool
runtimeSupports(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return true;
      case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Isa::Neon:
        // NEON is architecturally guaranteed on aarch64, the only
        // target the NEON TU compiles for.
        return true;
    }
    return false;
}

Isa
resolveAuto()
{
    for (Isa isa : {Isa::Avx2, Isa::Neon}) {
        if (opsForCompiled(isa) && runtimeSupports(isa))
            return isa;
    }
    return Isa::Scalar;
}

void
applySelection()
{
    Isa pick = resolveAuto();
    if (const char *env = std::getenv("VREX_KERNELS")) {
        Isa forced = Isa::Scalar;
        bool isAuto = false;
        if (!parseIsa(env, forced, isAuto)) {
            warn("VREX_KERNELS=%s not recognized "
                 "(want scalar|avx2|neon|auto); using auto", env);
        } else if (!isAuto) {
            if (opsForCompiled(forced) && runtimeSupports(forced)) {
                pick = forced;
            } else {
                warn("VREX_KERNELS=%s unavailable on this "
                     "build/CPU; using auto (%s)",
                     env, isaName(pick));
            }
        }
    }
    install(opsForCompiled(pick), pick);
}

bool
ensureInit()
{
    static const bool once = [] {
        applySelection();
        return true;
    }();
    return once;
}

/**
 * Eager init: any binary that links a core object referencing the
 * dispatch layer gets the SIMD Hamming hook installed before main(),
 * so BitSig::hamming is dispatched even on paths that never call
 * active() themselves.
 */
[[maybe_unused]] const bool gKernelsEagerInit = ensureInit();

} // namespace

const Ops &
scalarOps()
{
    return kScalarOps;
}

const Ops &
active()
{
    ensureInit();
    return *gActive.load(std::memory_order_acquire);
}

Isa
activeIsa()
{
    ensureInit();
    return gActiveIsa.load(std::memory_order_acquire);
}

bool
setActive(Isa isa)
{
    ensureInit();
    const Ops *ops = opsForCompiled(isa);
    if (!ops || !runtimeSupports(isa))
        return false;
    install(ops, isa);
    return true;
}

void
resetToAuto()
{
    ensureInit();
    applySelection();
}

bool
isaAvailable(Isa isa)
{
    return opsForCompiled(isa) != nullptr && runtimeSupports(isa);
}

std::vector<Isa>
compiledIsas()
{
    std::vector<Isa> out{Isa::Scalar};
    if (avx2OpsOrNull())
        out.push_back(Isa::Avx2);
    if (neonOpsOrNull())
        out.push_back(Isa::Neon);
    return out;
}

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return "scalar";
      case Isa::Avx2:
        return "avx2";
      case Isa::Neon:
        return "neon";
    }
    return "unknown";
}

bool
parseIsa(const std::string &text, Isa &out, bool &isAuto)
{
    std::string low;
    low.reserve(text.size());
    for (char c : text)
        low.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    isAuto = false;
    if (low == "auto") {
        isAuto = true;
        return true;
    }
    if (low == "scalar") {
        out = Isa::Scalar;
        return true;
    }
    if (low == "avx2") {
        out = Isa::Avx2;
        return true;
    }
    if (low == "neon") {
        out = Isa::Neon;
        return true;
    }
    return false;
}

} // namespace vrex::kernels
