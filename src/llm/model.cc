#include "llm/model.hh"

#include <algorithm>

#include "common/rng.hh"
#include "tensor/ops.hh"

namespace vrex
{

double
BlockStats::meanRatio() const
{
    if (layerRatios.empty())
        return 1.0;
    double s = 0.0;
    for (double r : layerRatios)
        s += r;
    return s / static_cast<double>(layerRatios.size());
}

Model::Model(const ModelConfig &config, uint64_t seed)
    : cfg(config), kv(config)
{
    layers.reserve(cfg.nLayers);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        layers.emplace_back(cfg, l, seed);
    Rng rng(seed, cfg.name + "/embedding");
    embedding = Matrix(cfg.vocabSize, cfg.dModel);
    rng.fillGaussian(embedding.raw(), embedding.size(), 1.0f);
    finalNorm.assign(cfg.dModel, 1.0f);
    lastHid.assign(cfg.dModel, 0.0f);
}

Matrix
Model::embedTokens(const std::vector<uint32_t> &ids) const
{
    Matrix x(static_cast<uint32_t>(ids.size()), cfg.dModel);
    for (uint32_t t = 0; t < ids.size(); ++t) {
        VREX_ASSERT(ids[t] < cfg.vocabSize, "token id out of range");
        std::copy_n(embedding.row(ids[t]), cfg.dModel, x.row(t));
    }
    return x;
}

BlockStats
Model::forwardBlock(Matrix x, int32_t frame_id, TokenStage stage)
{
    VREX_ASSERT(x.cols() == cfg.dModel, "bad block width");
    const uint32_t base = kv.tokenCount();
    const uint32_t block_len = x.rows();
    kv.beginTokens(block_len, frame_id, stage);

    BlockStats stats;
    stats.stage = stage;
    stats.blockLen = block_len;
    stats.pastLen = base;
    stats.layerRatios.reserve(cfg.nLayers);
    stats.selectedPerHead.reserve(cfg.nLayers);

    for (const auto &layer : layers) {
        LayerSelection sel =
            layer.forward(x, kv, selPolicy, stage, base);
        stats.layerRatios.push_back(sel.selectedRatio(base));
        std::vector<uint32_t> per_head;
        per_head.reserve(sel.kvHeads.size());
        for (const auto &h : sel.kvHeads)
            per_head.push_back(h.selectedCount(base));
        stats.selectedPerHead.push_back(std::move(per_head));
    }

    // Final norm of the last row becomes the decoding state.
    lastHid.assign(x.row(block_len - 1),
                   x.row(block_len - 1) + cfg.dModel);
    rmsNorm(lastHid.data(), finalNorm.data(), cfg.dModel);

    blockHistory.push_back(stats);
    return blockHistory.back();
}

BlockStats
Model::prefillFrame(const Matrix &frame_embeds, int32_t frame_id)
{
    return forwardBlock(frame_embeds, frame_id, TokenStage::VideoFrame);
}

BlockStats
Model::prefillText(const std::vector<uint32_t> &ids)
{
    return forwardBlock(embedTokens(ids), -1, TokenStage::QuestionText);
}

std::vector<float>
Model::lastLogits() const
{
    std::vector<float> logits(cfg.vocabSize, 0.0f);
    for (uint32_t v = 0; v < cfg.vocabSize; ++v)
        logits[v] = dot(lastHid.data(), embedding.row(v), cfg.dModel);
    return logits;
}

std::vector<uint32_t>
Model::generate(uint32_t max_tokens)
{
    std::vector<uint32_t> out;
    out.reserve(max_tokens);
    for (uint32_t i = 0; i < max_tokens; ++i) {
        std::vector<float> logits = lastLogits();
        uint32_t best = static_cast<uint32_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        out.push_back(best);
        forwardBlock(embedTokens({best}), -1, TokenStage::GeneratedText);
    }
    return out;
}

void
Model::resetSession()
{
    kv.clear();
    if (selPolicy)
        selPolicy->reset();
    blockHistory.clear();
    lastHid.assign(cfg.dModel, 0.0f);
}

void
Model::serializeState(serial::ByteWriter &w) const
{
    kv.serialize(w);
    w.putVec(lastHid);
    w.put<uint64_t>(blockHistory.size());
    for (const auto &b : blockHistory) {
        w.put<uint8_t>(static_cast<uint8_t>(b.stage));
        w.put<uint32_t>(b.blockLen);
        w.put<uint32_t>(b.pastLen);
        w.putVec(b.layerRatios);
        w.put<uint64_t>(b.selectedPerHead.size());
        for (const auto &heads : b.selectedPerHead)
            w.putVec(heads);
    }
}

void
Model::restoreState(serial::ByteReader &r)
{
    kv.restore(r);
    lastHid = r.getVec<float>();
    if (lastHid.size() != cfg.dModel)
        throw serial::SerialError(
            "Model::restoreState: lastHidden size mismatch");
    const uint64_t n_blocks = r.get<uint64_t>();
    blockHistory.clear();
    for (uint64_t i = 0; i < n_blocks; ++i) {
        BlockStats b;
        b.stage = static_cast<TokenStage>(r.get<uint8_t>());
        b.blockLen = r.get<uint32_t>();
        b.pastLen = r.get<uint32_t>();
        b.layerRatios = r.getVec<double>();
        const uint64_t n_layers = r.get<uint64_t>();
        b.selectedPerHead.clear();
        for (uint64_t l = 0; l < n_layers; ++l)
            b.selectedPerHead.push_back(r.getVec<uint32_t>());
        blockHistory.push_back(std::move(b));
    }
}

} // namespace vrex
