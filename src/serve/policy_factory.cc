#include "serve/policy_factory.hh"

#include "common/logging.hh"

namespace vrex::serve
{

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Full,       PolicyKind::FlexGen,
        PolicyKind::InfiniGen,  PolicyKind::InfiniGenP,
        PolicyKind::ReKV,       PolicyKind::ReSV,
    };
    return kinds;
}

const std::string &
policyKindName(PolicyKind kind)
{
    static const std::string names[] = {
        "full", "flexgen", "infinigen", "infinigenp", "rekv", "resv",
    };
    const auto idx = static_cast<size_t>(kind);
    VREX_ASSERT(idx < std::size(names), "bad PolicyKind");
    return names[idx];
}

std::optional<PolicyKind>
parsePolicyKind(const std::string &name)
{
    for (PolicyKind kind : allPolicyKinds())
        if (policyKindName(kind) == name)
            return kind;
    return std::nullopt;
}

PolicySpec
PolicySpec::full()
{
    return {};
}

PolicySpec
PolicySpec::flexgen()
{
    PolicySpec s;
    s.kind = PolicyKind::FlexGen;
    return s;
}

PolicySpec
PolicySpec::infinigen(float ratio)
{
    PolicySpec s;
    s.kind = PolicyKind::InfiniGen;
    s.ratio = ratio;
    return s;
}

PolicySpec
PolicySpec::infinigenP(float ratio)
{
    PolicySpec s;
    s.kind = PolicyKind::InfiniGenP;
    s.ratio = ratio;
    return s;
}

PolicySpec
PolicySpec::rekv(float ratio)
{
    PolicySpec s;
    s.kind = PolicyKind::ReKV;
    s.ratio = ratio;
    return s;
}

PolicySpec
PolicySpec::resv(const ResvConfig &config)
{
    PolicySpec s;
    s.kind = PolicyKind::ReSV;
    s.resvCfg = config;
    return s;
}

PolicySpec
PolicySpec::withMemoryTracking(const TierConfig &tier_config) const
{
    PolicySpec s = *this;
    s.trackMemory = true;
    s.tiers = tier_config;
    return s;
}

namespace
{

InfiniGenConfig
infinigenConfig(const PolicySpec &spec, bool prefill)
{
    InfiniGenConfig c;
    c.ratio = spec.ratio;
    c.projDim = spec.projDim;
    c.prefill = prefill;
    c.seed = spec.seed;
    return c;
}

} // namespace

PolicyFactory::PolicyFactory()
    : makers(allPolicyKinds().size())
{
    registerMaker(PolicyKind::Full,
                  [](const ModelConfig &, const PolicySpec &) {
                      return std::make_unique<FullAttentionPolicy>();
                  });
    registerMaker(PolicyKind::FlexGen,
                  [](const ModelConfig &, const PolicySpec &) {
                      return std::make_unique<FlexGenPolicy>();
                  });
    registerMaker(PolicyKind::InfiniGen,
                  [](const ModelConfig &m, const PolicySpec &spec) {
                      return std::make_unique<InfiniGenPolicy>(
                          m, infinigenConfig(spec, false));
                  });
    registerMaker(PolicyKind::InfiniGenP,
                  [](const ModelConfig &m, const PolicySpec &spec) {
                      return std::make_unique<InfiniGenPolicy>(
                          m, infinigenConfig(spec, true));
                  });
    registerMaker(PolicyKind::ReKV,
                  [](const ModelConfig &m, const PolicySpec &spec) {
                      ReKVConfig c;
                      c.ratio = spec.ratio;
                      return std::make_unique<ReKVPolicy>(m, c);
                  });
    registerMaker(PolicyKind::ReSV,
                  [](const ModelConfig &m, const PolicySpec &spec) {
                      return std::make_unique<ResvPolicy>(m,
                                                          spec.resvCfg);
                  });
}

PolicyFactory &
PolicyFactory::global()
{
    static PolicyFactory factory;
    return factory;
}

void
PolicyFactory::registerMaker(PolicyKind kind, Maker maker)
{
    const auto idx = static_cast<size_t>(kind);
    VREX_ASSERT(idx < makers.size(), "bad PolicyKind");
    makers[idx] = std::move(maker);
}

PolicyInstance
PolicyFactory::make(const ModelConfig &model,
                    const PolicySpec &spec) const
{
    const auto idx = static_cast<size_t>(spec.kind);
    VREX_ASSERT(idx < makers.size() && makers[idx],
                "no maker registered for policy kind");

    PolicyInstance inst;
    inst.kindValue = spec.kind;
    inst.base = makers[idx](model, spec);
    inst.resvView = dynamic_cast<ResvPolicy *>(inst.base.get());
    if (spec.trackMemory) {
        inst.tracker = std::make_unique<MemoryTrackingPolicy>(
            inst.base.get(), model, spec.tiers);
        if (inst.resvView)
            inst.tracker->setClusterSource(inst.resvView);
    }
    return inst;
}

PolicyInstance
makePolicy(const ModelConfig &model, const PolicySpec &spec)
{
    return PolicyFactory::global().make(model, spec);
}

} // namespace vrex::serve
