/**
 * @file
 * Parameterized property tests of the timing/energy simulator: the
 * monotonicities and invariants every configuration must satisfy,
 * swept across methods, platforms, cache lengths and batch sizes.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "sim/dram_model.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/pcie_model.hh"
#include "sim/ssd_model.hh"
#include "sim/system_model.hh"

using namespace vrex;

namespace
{

MethodModel
methodByName(const std::string &name)
{
    if (name == "flexgen")
        return MethodModel::flexgen();
    if (name == "infinigen")
        return MethodModel::infinigen();
    if (name == "infinigenp")
        return MethodModel::infinigenP();
    if (name == "rekv")
        return MethodModel::rekv();
    if (name == "resv")
        return MethodModel::resvFull();
    if (name == "resv-kvpu")
        return MethodModel::resvKvpu();
    if (name == "resv-sw")
        return MethodModel::resvSoftware();
    return MethodModel::flexgen();
}

AcceleratorConfig
hwFor(const MethodModel &m)
{
    return m.dreOffloadPred ? AcceleratorConfig::vrex8()
                            : AcceleratorConfig::agxOrin();
}

} // namespace

class MethodSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MethodSweep, LatencyMonotoneInCache)
{
    MethodModel m = methodByName(GetParam());
    double prev = 0.0;
    for (uint32_t cache : {1000u, 5000u, 10000u, 20000u, 40000u,
                           80000u}) {
        RunConfig rc;
        rc.hw = hwFor(m);
        rc.method = m;
        rc.cacheTokens = cache;
        double t = SystemModel(rc).framePhase().totalMs;
        EXPECT_GE(t, prev * 0.999) << "cache " << cache;
        prev = t;
    }
}

TEST_P(MethodSweep, LatencyMonotoneInBatch)
{
    MethodModel m = methodByName(GetParam());
    double prev = 0.0;
    for (uint32_t batch : {1u, 2u, 4u, 8u}) {
        RunConfig rc;
        rc.hw = hwFor(m);
        rc.method = m;
        rc.cacheTokens = 20000;
        rc.batch = batch;
        double t = SystemModel(rc).framePhase().totalMs;
        EXPECT_GE(t, prev * 0.999) << "batch " << batch;
        prev = t;
    }
}

TEST_P(MethodSweep, EnergyComponentsNonNegative)
{
    MethodModel m = methodByName(GetParam());
    RunConfig rc;
    rc.hw = hwFor(m);
    rc.method = m;
    rc.cacheTokens = 20000;
    for (PhaseResult r : {SystemModel(rc).framePhase(),
                          SystemModel(rc).decodePhase()}) {
        EXPECT_GE(r.energy.computeJ, 0.0);
        EXPECT_GE(r.energy.dramJ, 0.0);
        EXPECT_GE(r.energy.pcieJ, 0.0);
        EXPECT_GE(r.energy.idleJ, 0.0);
        EXPECT_GT(r.totalMs, 0.0);
        EXPECT_GT(r.nominalFlops, 0.0);
        EXPECT_LE(r.actualFlops, r.nominalFlops * 1.001);
    }
}

TEST_P(MethodSweep, WallClockCoversComponents)
{
    MethodModel m = methodByName(GetParam());
    RunConfig rc;
    rc.hw = hwFor(m);
    rc.method = m;
    rc.cacheTokens = 40000;
    PhaseResult r = SystemModel(rc).framePhase();
    // Overlap can hide fetch/DRE under compute, but the wall clock
    // is never shorter than the largest single component.
    double biggest = std::max(
        {r.visionMs + r.denseMs + r.attentionMs + r.predictionMs,
         r.fetchMs, r.dreMs});
    EXPECT_GE(r.totalMs, biggest * 0.999);
}

TEST_P(MethodSweep, SessionConsistentWithPhases)
{
    MethodModel m = methodByName(GetParam());
    RunConfig rc;
    rc.hw = hwFor(m);
    rc.method = m;
    rc.cacheTokens = 5000;
    SessionResult s = SystemModel(rc).session(3, 10, 5);
    EXPECT_GT(s.prefillMs, 0.0);
    EXPECT_GT(s.generationMs, 0.0);
    EXPECT_GT(s.visionMs, 0.0);
    // Session is at least 3 frame phases long.
    double one_frame = SystemModel(rc).framePhase().totalMs;
    EXPECT_GE(s.totalMs(), 3.0 * one_frame * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values("flexgen", "infinigen",
                                           "infinigenp", "rekv",
                                           "resv", "resv-kvpu",
                                           "resv-sw"));

class PcieSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PcieSweep, EfficiencyMonotoneInTxSize)
{
    PcieModel pcie(GetParam(), 1.5);
    double prev = 0.0;
    for (double tx : {256.0, 1024.0, 4096.0, 65536.0, 1048576.0}) {
        double eff = pcie.efficiency(tx);
        EXPECT_GT(eff, prev);
        EXPECT_LE(eff, 1.0);
        prev = eff;
    }
}

TEST_P(PcieSweep, TimeAdditiveInBytes)
{
    PcieModel pcie(GetParam(), 1.5);
    double t1 = pcie.transferSeconds(1e6, 10);
    double t2 = pcie.transferSeconds(2e6, 20);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LinkSpeeds, PcieSweep,
                         ::testing::Values(4.0, 16.0, 32.0));

class DramSweep : public ::testing::TestWithParam<int>
{
  public:
    DramConfig
    config() const
    {
        switch (GetParam()) {
          case 0: return DramConfig::lpddr5();
          case 1: return DramConfig::hbm2e();
          default: return DramConfig::ddr4();
        }
    }
};

TEST_P(DramSweep, EfficiencyMonotoneInChunkSize)
{
    DramModel dram(config());
    double prev = 0.0;
    for (double chunk : {64.0, 512.0, 4096.0, 65536.0, 1e6}) {
        double eff = dram.efficiency(chunk);
        EXPECT_GE(eff, prev);
        EXPECT_LE(eff, 1.0);
        prev = eff;
    }
}

TEST_P(DramSweep, StreamTimeNeverBeatsPeak)
{
    DramModel dram(config());
    double bytes = 1e9;
    double ideal = bytes / (config().peakGBs * 1e9);
    EXPECT_GE(dram.streamSeconds(bytes, 4096), ideal);
}

INSTANTIATE_TEST_SUITE_P(Configs, DramSweep,
                         ::testing::Values(0, 1, 2));

TEST(SsdProperties, MonotoneInBytesAndRequests)
{
    SsdModel ssd(SsdConfig::bg6());
    EXPECT_GT(ssd.readSeconds(2e8, 100), ssd.readSeconds(1e8, 100));
    EXPECT_GE(ssd.readSeconds(1e8, 1e5), ssd.readSeconds(1e8, 100));
}

TEST(OomProperties, MonotoneInCacheAndBatch)
{
    // Once a resident-KV config OOMs, all larger configs OOM too.
    MethodModel m = MethodModel::gpuNoOffload();
    bool seen_oom = false;
    for (uint32_t cache = 1000; cache <= 64000; cache *= 2) {
        RunConfig rc;
        rc.hw = AcceleratorConfig::agxOrin();
        rc.method = m;
        rc.cacheTokens = cache;
        rc.batch = 16;
        bool oom = SystemModel(rc).wouldOom();
        EXPECT_TRUE(!seen_oom || oom) << "cache " << cache;
        seen_oom = oom;
    }
    EXPECT_TRUE(seen_oom);
}

TEST(OomProperties, QuantizationExtendsCapacity)
{
    for (uint32_t cache = 1000; cache <= 256000; cache *= 2) {
        RunConfig gpu, oaken;
        gpu.hw = oaken.hw = AcceleratorConfig::agxOrin();
        gpu.method = MethodModel::gpuNoOffload();
        oaken.method = MethodModel::oaken();
        gpu.cacheTokens = oaken.cacheTokens = cache;
        gpu.batch = oaken.batch = 16;
        // Oaken never OOMs earlier than the fp16-resident GPU.
        if (SystemModel(oaken).wouldOom()) {
            EXPECT_TRUE(SystemModel(gpu).wouldOom());
        }
    }
}

TEST(TimingOrdering, VRexNeverSlowerThanItsAblations)
{
    for (uint32_t cache : {5000u, 20000u, 40000u, 80000u}) {
        RunConfig all, kvpu;
        all.hw = kvpu.hw = AcceleratorConfig::vrex8();
        all.method = MethodModel::resvFull();
        kvpu.method = MethodModel::resvKvpu();
        all.cacheTokens = kvpu.cacheTokens = cache;
        EXPECT_LE(SystemModel(all).framePhase().totalMs,
                  SystemModel(kvpu).framePhase().totalMs * 1.001)
            << "cache " << cache;
    }
}

TEST(TimingOrdering, SelectionBeatsFullFetchAtScale)
{
    for (uint32_t cache : {20000u, 40000u, 80000u}) {
        RunConfig flex, rekv;
        flex.hw = rekv.hw = AcceleratorConfig::agxOrin();
        flex.method = MethodModel::flexgen();
        rekv.method = MethodModel::rekv();
        flex.cacheTokens = rekv.cacheTokens = cache;
        EXPECT_LT(SystemModel(rekv).framePhase().totalMs,
                  SystemModel(flex).framePhase().totalMs)
            << "cache " << cache;
    }
}
