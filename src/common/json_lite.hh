/**
 * @file
 * Minimal JSON reader for the bench reporting subsystem.
 *
 * Parses the subset of JSON the Reporter emits (objects, arrays,
 * strings with \-escapes, finite numbers, booleans, null) into an
 * ordered DOM. This is a reader for machine-generated files
 * (`BENCH_*.json`, `bench/baseline.json`), not a general-purpose JSON
 * library: inputs must be UTF-8 and non-finite numbers are rejected at
 * parse time (the writers emit `null` instead).
 */

#ifndef VREX_COMMON_JSON_LITE_HH
#define VREX_COMMON_JSON_LITE_HH

#include <string>
#include <utility>
#include <vector>

namespace vrex::json
{

/** One JSON value; object members keep their source order. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() : type_(Type::Null) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool boolean() const { return flag_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }
    const std::vector<Value> &array() const { return arr_; }
    const std::vector<std::pair<std::string, Value>> &
    members() const { return obj_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Typed member accessors with defaults (for optional fields). */
    double numberOr(const std::string &key, double fallback) const;
    std::string strOr(const std::string &key,
                      const std::string &fallback) const;

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> members);

  private:
    Type type_;
    bool flag_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/**
 * Parse a complete JSON document. On failure returns Null and, when
 * `err` is non-null, stores a message with the byte offset.
 */
Value parse(const std::string &text, std::string *err = nullptr);

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string quote(const std::string &s);

} // namespace vrex::json

#endif // VREX_COMMON_JSON_LITE_HH
