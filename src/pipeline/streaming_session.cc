#include "pipeline/streaming_session.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vrex
{

StreamingSession::StreamingSession(const ModelConfig &model_config,
                                   SelectionPolicy *policy,
                                   uint64_t seed_value)
    : seed(seed_value), llm(model_config, seed_value)
{
    llm.setPolicy(policy);
}

void
StreamingSession::begin(const std::string &name,
                        const VideoConfig &video, uint64_t script_seed,
                        std::vector<uint32_t> forced_tokens)
{
    llm.resetSession();
    const ModelConfig &cfg = llm.config();
    const uint32_t vision_dim = std::max(32u, cfg.dModel / 4);
    stream = std::make_unique<Stream>(video, vision_dim, cfg.dModel,
                                      seed ^ script_seed, seed, name);

    scriptSeed = script_seed;
    forced = std::move(forced_tokens);
    forcedPos = 0;
    frameId = 0;
    questionNo = 0;

    generatedTokens.clear();
    logitsPerStep.clear();
    ratioSums.clear();
    ratioBlocks = 0;
    framesFed = 0;
    frameSum = textSum = 0.0;
    frameN = textN = 0;
}

void
StreamingSession::accumulate(const BlockStats &stats)
{
    if (stats.pastLen == 0)
        return;
    const double ratio = stats.meanRatio();
    if (stats.stage == TokenStage::VideoFrame) {
        frameSum += ratio;
        ++frameN;
    } else {
        textSum += ratio;
        ++textN;
    }
    // Per-layer / per-head accumulation (all stages).
    if (ratioSums.empty()) {
        ratioSums.assign(stats.selectedPerHead.size(),
                         std::vector<double>(
                             stats.selectedPerHead.empty()
                                 ? 0
                                 : stats.selectedPerHead[0].size(),
                             0.0));
    }
    for (size_t l = 0; l < stats.selectedPerHead.size(); ++l)
        for (size_t h = 0; h < stats.selectedPerHead[l].size(); ++h)
            ratioSums[l][h] +=
                static_cast<double>(stats.selectedPerHead[l][h]) /
                stats.pastLen;
    ++ratioBlocks;
}

void
StreamingSession::feedFrame()
{
    VREX_ASSERT(stream != nullptr, "feedFrame before begin()");
    Matrix latents = stream->gen.nextFrameLatents();
    Matrix embeds =
        stream->projector.project(stream->tower.encode(latents));
    accumulate(llm.prefillFrame(embeds, frameId++));
    ++framesFed;
}

void
StreamingSession::feedQuestion(uint32_t tokens)
{
    VREX_ASSERT(stream != nullptr, "feedQuestion before begin()");
    auto ids = WorkloadGenerator::questionTokens(
        tokens, llm.config().vocabSize,
        seed ^ scriptSeed ^ (0x9e37u + questionNo++));
    accumulate(llm.prefillText(ids));
}

void
StreamingSession::generate(uint32_t tokens)
{
    VREX_ASSERT(stream != nullptr, "generate before begin()");
    for (uint32_t i = 0; i < tokens; ++i) {
        // Argmax of the current state.
        std::vector<float> logits = llm.lastLogits();
        uint32_t best = static_cast<uint32_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        generatedTokens.push_back(best);
        logitsPerStep.push_back(std::move(logits));
        // Advance with the forced token when provided.
        uint32_t next = best;
        if (forcedPos < forced.size())
            next = forced[forcedPos++];
        accumulate(llm.forwardBlock(llm.embedTokens({next}), -1,
                                    TokenStage::GeneratedText));
    }
}

void
StreamingSession::apply(const SessionEvent &event)
{
    switch (event.type) {
      case SessionEvent::Type::Frame:
        feedFrame();
        break;
      case SessionEvent::Type::Question:
        feedQuestion(event.tokens);
        break;
      case SessionEvent::Type::Generate:
        generate(event.tokens);
        break;
    }
}

std::vector<SessionEvent>
StreamingSession::unitEvents(const SessionEvent &event)
{
    if (event.type != SessionEvent::Type::Generate)
        return {event};
    return std::vector<SessionEvent>(
        event.tokens, SessionEvent{SessionEvent::Type::Generate, 1});
}

SessionRunResult
StreamingSession::snapshot() const
{
    SessionRunResult out;
    out.generated = generatedTokens;
    out.stepLogits = logitsPerStep;
    out.frames = framesFed;
    out.frameRatio = frameN ? frameSum / frameN : 1.0;
    out.textRatio = textN ? textSum / textN : 1.0;
    if (ratioBlocks > 0) {
        out.layerHeadRatio = ratioSums;
        for (auto &layer : out.layerHeadRatio)
            for (auto &v : layer)
                v /= ratioBlocks;
    }
    out.totalTokens = llm.cache().tokenCount();
    return out;
}

SessionRunResult
StreamingSession::run(const SessionScript &script)
{
    return run(script, {});
}

SessionRunResult
StreamingSession::run(const SessionScript &script,
                      const std::vector<uint32_t> &forced_tokens)
{
    begin(script.name, script.video, script.seed, forced_tokens);
    for (const auto &event : script.events)
        apply(event);
    return snapshot();
}

} // namespace vrex
