/**
 * @file
 * Unit + property tests for WiCSum thresholding: the reference sorted
 * implementation (Eq. 1-3) and the early-exit bucket variant that
 * mirrors the WTU hardware dataflow (Fig. 11).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/wicsum.hh"

using namespace vrex;

namespace
{

double
weighted(const std::vector<float> &s, const std::vector<uint32_t> &c,
         const std::vector<uint32_t> &idx)
{
    double acc = 0.0;
    for (uint32_t i : idx)
        acc += double(s[i]) * c[i];
    return acc;
}

double
weightedTotal(const std::vector<float> &s,
              const std::vector<uint32_t> &c)
{
    double acc = 0.0;
    for (size_t i = 0; i < s.size(); ++i)
        acc += double(s[i]) * c[i];
    return acc;
}

} // namespace

TEST(WicsumReference, EmptyInput)
{
    auto r = wicsumSelectReference({}, {}, 0.5f);
    EXPECT_TRUE(r.selected.empty());
    EXPECT_EQ(r.scanned, 0u);
}

TEST(WicsumReference, PaperWorkedExample)
{
    // Fig. 9: scores {9,8,2,1,1}, counts {1,3,7,6,6}... the paper's
    // first row: scores sorted desc 9,8,2,1,1 with token counts;
    // threshold 80% of the weighted sum.
    std::vector<float> scores = {1.0f, 9.0f, 8.0f, 2.0f, 1.0f};
    std::vector<uint32_t> counts = {6, 1, 3, 7, 6};
    auto r = wicsumSelectReference(scores, counts, 0.8f);
    // Weighted sum = 6+9+24+14+6 = 59, threshold 47.2.
    // Desc order: 9*1=9, 8*3=24 (33), 2*7=14 (47), 1*6=6 (53>47.2).
    ASSERT_EQ(r.selected.size(), 4u);
    EXPECT_EQ(r.selected[0], 1u);
    EXPECT_EQ(r.selected[1], 2u);
    EXPECT_EQ(r.selected[2], 3u);
}

TEST(WicsumReference, SelectsDescendingByScore)
{
    std::vector<float> scores = {0.1f, 0.9f, 0.5f};
    std::vector<uint32_t> counts = {1, 1, 1};
    auto r = wicsumSelectReference(scores, counts, 0.9f);
    ASSERT_GE(r.selected.size(), 2u);
    EXPECT_EQ(r.selected[0], 1u);
    EXPECT_EQ(r.selected[1], 2u);
}

TEST(WicsumReference, ThresholdZeroSelectsOne)
{
    std::vector<float> scores = {0.2f, 0.8f};
    std::vector<uint32_t> counts = {1, 1};
    auto r = wicsumSelectReference(scores, counts, 0.0f);
    EXPECT_EQ(r.selected.size(), 1u);
    EXPECT_EQ(r.selected[0], 1u);
}

TEST(WicsumReference, ThresholdOneSelectsAll)
{
    std::vector<float> scores = {0.2f, 0.8f, 0.4f};
    std::vector<uint32_t> counts = {2, 1, 3};
    auto r = wicsumSelectReference(scores, counts, 1.0f);
    EXPECT_EQ(r.selected.size(), 3u);
}

TEST(WicsumReference, SelectionMeetsThresholdExactlyOnce)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        uint32_t n = 1 + rng.uniformInt(60);
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (uint32_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.uniform(0.0, 1.0));
            counts[i] = 1 + rng.uniformInt(40);
        }
        float ratio = static_cast<float>(rng.uniform(0.1, 0.95));
        auto r = wicsumSelectReference(scores, counts, ratio);
        double thr = weightedTotal(scores, counts) * ratio;
        // The selected mass crosses the threshold...
        EXPECT_GT(weighted(scores, counts, r.selected), thr);
        // ...and removing the last pick drops below it (minimality).
        auto prefix = r.selected;
        prefix.pop_back();
        EXPECT_LE(weighted(scores, counts, prefix), thr + 1e-9);
    }
}

TEST(WicsumEarlyExit, MatchesThresholdProperty)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        uint32_t n = 1 + rng.uniformInt(80);
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (uint32_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.uniform(0.0, 1.0));
            counts[i] = 1 + rng.uniformInt(40);
        }
        float ratio = static_cast<float>(rng.uniform(0.1, 0.95));
        auto r = wicsumSelectEarlyExit(scores, counts, ratio, 16);
        double thr = weightedTotal(scores, counts) * ratio;
        EXPECT_GT(weighted(scores, counts, r.selected), thr);
        // No duplicates.
        std::set<uint32_t> uniq(r.selected.begin(), r.selected.end());
        EXPECT_EQ(uniq.size(), r.selected.size());
    }
}

TEST(WicsumEarlyExit, BucketResolutionNearReference)
{
    // The early-exit sweep is ordered at bucket granularity, so its
    // selection size is within one bucket's membership of the exact
    // sorted selection.
    Rng rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        uint32_t n = 16 + rng.uniformInt(100);
        std::vector<float> scores(n);
        std::vector<uint32_t> counts(n);
        for (uint32_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.uniform(0.0, 1.0));
            counts[i] = 1 + rng.uniformInt(8);
        }
        auto ref = wicsumSelectReference(scores, counts, 0.5f);
        auto ee = wicsumSelectEarlyExit(scores, counts, 0.5f, 64);
        // With many buckets, selection sizes should be close.
        EXPECT_NEAR(static_cast<double>(ee.selected.size()),
                    static_cast<double>(ref.selected.size()),
                    std::max<double>(4.0, 0.25 * n));
    }
}

TEST(WicsumEarlyExit, SkipsLowBuckets)
{
    // A few large scores + many tiny ones: the sweep must terminate
    // after visiting only the top buckets.
    std::vector<float> scores(100, 0.01f);
    std::vector<uint32_t> counts(100, 1);
    scores[10] = 1.0f;
    scores[20] = 0.95f;
    counts[10] = 60;
    counts[20] = 40;
    auto r = wicsumSelectEarlyExit(scores, counts, 0.5f, 20);
    EXPECT_LE(r.selected.size(), 3u);
    EXPECT_LT(r.bucketsVisited, 20u);
    EXPECT_LT(r.scanned, 100u);
}

TEST(WicsumEarlyExit, DegenerateEqualScores)
{
    std::vector<float> scores(10, 0.5f);
    std::vector<uint32_t> counts(10, 1);
    auto r = wicsumSelectEarlyExit(scores, counts, 0.45f, 8);
    // 0.45 of mass: selecting 5 of 10 crosses (2.5 > 2.25).
    EXPECT_EQ(r.selected.size(), 5u);
}

TEST(WicsumEarlyExit, HigherRatioSelectsMore)
{
    Rng rng(4);
    std::vector<float> scores(64);
    std::vector<uint32_t> counts(64);
    for (uint32_t i = 0; i < 64; ++i) {
        scores[i] = static_cast<float>(rng.uniform(0.0, 1.0));
        counts[i] = 1 + rng.uniformInt(10);
    }
    auto lo = wicsumSelectEarlyExit(scores, counts, 0.2f, 16);
    auto hi = wicsumSelectEarlyExit(scores, counts, 0.8f, 16);
    EXPECT_LE(lo.selected.size(), hi.selected.size());
}

TEST(ExpNormalize, MonotoneAndBounded)
{
    std::vector<float> raw = {-2.0f, 0.0f, 3.0f, 1.0f};
    auto out = expNormalize(raw);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FLOAT_EQ(out[2], 1.0f);  // Max maps to 1.
    EXPECT_LT(out[0], out[1]);
    EXPECT_LT(out[3], out[2]);
    for (float v : out) {
        EXPECT_GT(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(ExpNormalize, Empty)
{
    EXPECT_TRUE(expNormalize({}).empty());
}

/** Parameterized sweep over bucket counts: threshold property holds. */
class WicsumBucketSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(WicsumBucketSweep, ThresholdHoldsForAnyBucketCount)
{
    const uint32_t buckets = GetParam();
    Rng rng(100 + buckets);
    std::vector<float> scores(77);
    std::vector<uint32_t> counts(77);
    for (uint32_t i = 0; i < 77; ++i) {
        scores[i] = static_cast<float>(rng.uniform(0.0, 1.0));
        counts[i] = 1 + rng.uniformInt(20);
    }
    auto r = wicsumSelectEarlyExit(scores, counts, 0.6f, buckets);
    EXPECT_GT(weighted(scores, counts, r.selected),
              weightedTotal(scores, counts) * 0.6);
}

INSTANTIATE_TEST_SUITE_P(Buckets, WicsumBucketSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u,
                                           64u, 128u));
