/**
 * @file
 * Key/value cache for the iterative-prefill streaming workflow.
 *
 * The cache accumulates every K/V entry produced by prefill and
 * generation; retrieval policies decide which subset attention reads.
 * Each token also carries metadata (frame id, stage) that the
 * frame-granular baselines (ReKV) and the workload accounting need.
 */

#ifndef VREX_LLM_KV_CACHE_HH
#define VREX_LLM_KV_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "llm/config.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Which pipeline stage produced a token. */
enum class TokenStage : uint8_t
{
    VideoFrame,
    QuestionText,
    GeneratedText,
};

/** Per-token metadata shared across layers. */
struct TokenMeta
{
    int32_t frameId;    //!< Frame index, or -1 for text tokens.
    TokenStage stage;
    uint32_t position;  //!< Absolute sequence position.
};

/** K and V storage for one layer: rows = tokens, cols = kvDim. */
struct LayerKV
{
    Matrix keys;
    Matrix values;
};

/** The full multi-layer KV cache. */
class KVCache
{
  public:
    explicit KVCache(const ModelConfig &config);

    const ModelConfig &config() const { return cfg; }

    /** Total tokens currently cached (same across layers). */
    uint32_t tokenCount() const
    {
        return static_cast<uint32_t>(meta.size());
    }

    /** Register metadata for @p count tokens about to be appended. */
    void beginTokens(uint32_t count, int32_t frame_id, TokenStage stage);

    /** Append one layer's K/V block (rows must match beginTokens). */
    void appendLayer(uint32_t layer, const Matrix &k, const Matrix &v);

    const LayerKV &layer(uint32_t l) const { return layers[l]; }
    LayerKV &layer(uint32_t l) { return layers[l]; }

    const TokenMeta &tokenMeta(uint32_t t) const { return meta[t]; }
    const std::vector<TokenMeta> &allMeta() const { return meta; }

    /** Number of distinct video frames represented in the cache. */
    uint32_t frameCount() const { return numFrames; }

    /** Token index range [first, last) of a frame, or {0,0}. */
    std::pair<uint32_t, uint32_t> frameTokenRange(int32_t frame_id) const;

    /** Total cache bytes at @p bytesPerElem precision. */
    uint64_t totalBytes(double bytesPerElem = 2.0) const;

    /** Drop all cached state. */
    void clear();

    /**
     * Serialize all layers, token metadata, and append-progress
     * counters. restore() expects this cache to be constructed with
     * an identical ModelConfig geometry (layer count is validated;
     * per-layer shapes come from the blob).
     */
    void serialize(serial::ByteWriter &w) const;
    void restore(serial::ByteReader &r);

  private:
    ModelConfig cfg;
    std::vector<LayerKV> layers;
    std::vector<TokenMeta> meta;
    uint32_t pendingTokens = 0;
    uint32_t numFrames = 0;
};

} // namespace vrex

#endif // VREX_LLM_KV_CACHE_HH
