/**
 * @file
 * Cycle model of the Dynamic KV Cache Retrieval Engine (DRE):
 * the HCU's XOR-accumulator Hamming clustering and the WTU's
 * early-exit bucket-sorted thresholding (paper §V-B, Fig. 10/11).
 */

#ifndef VREX_SIM_DRE_MODEL_HH
#define VREX_SIM_DRE_MODEL_HH

#include <cstdint>

#include "sim/hw_config.hh"

namespace vrex
{

/** DRE time contributions for one decoder layer. */
struct DreTiming
{
    double hcuSeconds = 0.0;
    double wtuSeconds = 0.0;

    double total() const { return hcuSeconds + wtuSeconds; }
};

/** Analytic cycle model of the HCU + WTU across all cores. */
class DreModel
{
  public:
    explicit DreModel(const AcceleratorConfig &hw) : cfg(hw) {}

    /**
     * HCU time to cluster @p new_tokens fresh keys against
     * @p n_clusters existing clusters for every KV head and batch
     * item of one layer. Each comparison XORs @p n_bits signature
     * bits at nHcuW bits per lane-cycle.
     */
    double hcuSeconds(double new_tokens, double n_clusters,
                      uint32_t kv_heads, uint32_t batch,
                      uint32_t n_bits) const;

    /**
     * WTU time for WiCSum thresholding of @p n_clusters scores per
     * KV head and batch item of one layer; the early-exit sweep
     * touches only @p scanned_frac of each row (paper: 16% average).
     */
    double wtuSeconds(double n_clusters, double scanned_frac,
                      uint32_t kv_heads, uint32_t batch) const;

    /** Both units for one layer. */
    DreTiming layerTiming(double new_tokens, double n_clusters,
                          uint32_t kv_heads, uint32_t batch,
                          uint32_t n_bits) const;

  private:
    AcceleratorConfig cfg;
};

} // namespace vrex

#endif // VREX_SIM_DRE_MODEL_HH
