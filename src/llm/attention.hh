/**
 * @file
 * Grouped-query attention over the KV cache, with optional per-head
 * sparse token selection (the "light attention" of ReSV's execution
 * stage).
 */

#ifndef VREX_LLM_ATTENTION_HH
#define VREX_LLM_ATTENTION_HH

#include "llm/config.hh"
#include "llm/kv_cache.hh"
#include "llm/selection.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/**
 * Compute attention output for a block of T query tokens.
 *
 * @param cfg       Model geometry.
 * @param q         Post-RoPE queries, T x (nHeads*headDim).
 * @param kv        One layer's cache; must already contain the block,
 *                  i.e. kv.keys.rows() == past_len + T.
 * @param past_len  Tokens preceding the block.
 * @param sel       Per-KV-head past-token selection; nullptr = full.
 *                  Block tokens are always attended causally.
 * @param out       Result, T x dModel (heads concatenated).
 */
void attentionForward(const ModelConfig &cfg, const Matrix &q,
                      const LayerKV &kv, uint32_t past_len,
                      const LayerSelection *sel, Matrix &out);

} // namespace vrex

#endif // VREX_LLM_ATTENTION_HH
