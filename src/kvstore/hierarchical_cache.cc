#include "kvstore/hierarchical_cache.hh"

#include "common/logging.hh"

namespace vrex
{

HierarchicalKVCache::HierarchicalKVCache(uint64_t bytes_per_token,
                                         const TierConfig &config)
    : bytesPerToken(bytes_per_token), cfg(config)
{
    VREX_ASSERT(bytes_per_token > 0, "token size must be positive");
}

void
HierarchicalKVCache::appendTokens(uint32_t count)
{
    numTokens += count;
    if (cfg.offloadAll) {
        // FlexGen: everything is written straight through.
        xfer.offloadedBytes += uint64_t(count) * bytesPerToken;
        firstResident = numTokens;
        return;
    }
    // The constructor asserts bytesPerToken > 0, so the division is
    // safe. A zero-byte capacity yields a zero-token window: every
    // appended token spills immediately (write-through, same traffic
    // as offloadAll but still honouring the capacity path).
    const uint64_t capacity_tokens =
        cfg.deviceKvCapacityBytes / bytesPerToken;
    if (numTokens - firstResident > capacity_tokens) {
        uint32_t spill = numTokens - firstResident -
            static_cast<uint32_t>(capacity_tokens);
        xfer.offloadedBytes += uint64_t(spill) * bytesPerToken;
        firstResident += spill;
    }
}

uint64_t
HierarchicalKVCache::touch(const std::vector<uint32_t> &tokens,
                           uint64_t bytes_per_token_layer)
{
    uint64_t fetched = 0;
    for (uint32_t t : tokens) {
        VREX_ASSERT(t < numTokens, "touch of unknown token");
        ++xfer.touchedTokens;
        if (t < firstResident) {
            fetched += bytes_per_token_layer;
            ++xfer.fetchedTokens;
        }
    }
    xfer.fetchedBytes += fetched;
    return fetched;
}

Tier
HierarchicalKVCache::residency(uint32_t token) const
{
    VREX_ASSERT(token < numTokens, "residency of unknown token");
    return token >= firstResident ? Tier::Device : cfg.offloadTarget;
}

uint32_t
HierarchicalKVCache::residentTokens() const
{
    return numTokens - firstResident;
}

void
HierarchicalKVCache::clear()
{
    numTokens = 0;
    firstResident = 0;
    xfer = TransferStats{};
}

void
HierarchicalKVCache::serialize(serial::ByteWriter &w) const
{
    w.put<uint64_t>(bytesPerToken);
    w.put<uint32_t>(numTokens);
    w.put<uint32_t>(firstResident);
    w.put<uint64_t>(xfer.offloadedBytes);
    w.put<uint64_t>(xfer.fetchedBytes);
    w.put<uint64_t>(xfer.fetchedTokens);
    w.put<uint64_t>(xfer.touchedTokens);
}

void
HierarchicalKVCache::restore(serial::ByteReader &r)
{
    const uint64_t bpt = r.get<uint64_t>();
    if (bpt != bytesPerToken)
        throw serial::SerialError(
            "HierarchicalKVCache::restore: bytes-per-token mismatch");
    numTokens = r.get<uint32_t>();
    firstResident = r.get<uint32_t>();
    xfer.offloadedBytes = r.get<uint64_t>();
    xfer.fetchedBytes = r.get<uint64_t>();
    xfer.fetchedTokens = r.get<uint64_t>();
    xfer.touchedTokens = r.get<uint64_t>();
}

} // namespace vrex
