#include "sim/hw_config.hh"

namespace vrex
{

AcceleratorConfig
AcceleratorConfig::agxOrin()
{
    AcceleratorConfig c;
    c.name = "AGX Orin";
    c.peakTflops = 54.0;
    c.memBandwidthGBs = 204.8;
    c.memCapacityGB = 32.0;
    c.pcieBandwidthGBs = 4.0;       // PCIe 3.0 x4, M.2 NVMe.
    c.pcieTxOverheadUs = 1.5;       // NVMe-backed transaction cost.
    c.offloadTarget = Tier::Storage;
    c.systemPowerW = 40.0;
    c.computeEff = 0.45;
    c.memEff = 0.55;
    c.predFixedUsPerLayer = 900.0;   // Kernel-launch/sync chains.
    c.predNsPerElement = 55.0;       // Regular top-k kernels.
    c.irregularNsPerElement = 1100.0;  // Clustering/threshold sort.
    c.deviceKvWindowBytes = 1ull << 30;
    c.dramEnergyPerByte = 40e-12;   // LPDDR5.
    c.pciePowerW = 12.0;            // 3 W/lane x4.
    c.computePowerW = 26.0;
    c.idlePowerW = 14.0;
    return c;
}

AcceleratorConfig
AcceleratorConfig::a100()
{
    AcceleratorConfig c;
    c.name = "A100";
    c.peakTflops = 312.0;
    c.memBandwidthGBs = 1935.0;
    c.memCapacityGB = 80.0;
    c.pcieBandwidthGBs = 32.0;      // PCIe 4.0 x16 to host DRAM.
    c.pcieTxOverheadUs = 1.0;
    c.offloadTarget = Tier::CpuMem;
    c.systemPowerW = 300.0;
    c.computeEff = 0.5;
    c.memEff = 0.65;
    c.predFixedUsPerLayer = 450.0;
    c.predNsPerElement = 14.0;
    c.irregularNsPerElement = 280.0;
    c.deviceKvWindowBytes = 8ull << 30;
    c.dramEnergyPerByte = 60e-12;   // HBM2e stack + PHY.
    c.pciePowerW = 48.0;            // 3 W/lane x16.
    c.computePowerW = 200.0;
    c.idlePowerW = 70.0;
    return c;
}

AcceleratorConfig
AcceleratorConfig::vrex8()
{
    AcceleratorConfig c;
    c.name = "V-Rex8";
    c.peakTflops = 53.3;
    c.memBandwidthGBs = 204.8;      // LPDDR5, 256-bit bus.
    c.memCapacityGB = 32.0;
    c.pcieBandwidthGBs = 4.0;       // PCIe 3.0 x4, M.2 NVMe.
    c.pcieTxOverheadUs = 1.5;
    c.offloadTarget = Tier::Storage;
    c.systemPowerW = 35.0;
    c.computeEff = 0.85;            // LPU-style systolic datapath.
    c.memEff = 0.8;
    c.predFixedUsPerLayer = 0.0;    // Prediction runs on the DRE.
    c.predNsPerElement = 0.0;
    c.hasDre = true;
    c.nCores = 8;
    c.clockGhz = 0.8;
    c.deviceKvWindowBytes = 1ull << 30;  // Recent-KV region.
    c.dramEnergyPerByte = 40e-12;
    c.pciePowerW = 12.0;
    c.computePowerW = 8 * 2.61;     // Table III per-core power.
    c.idlePowerW = 4.0;
    return c;
}

AcceleratorConfig
AcceleratorConfig::vrex48()
{
    AcceleratorConfig c = vrex8();
    c.name = "V-Rex48";
    c.peakTflops = 319.5;
    c.memBandwidthGBs = 1935.0;     // HBM2e, 5120-bit bus.
    c.memCapacityGB = 80.0;
    c.pcieBandwidthGBs = 32.0;      // PCIe 4.0 x16 to DDR4 host.
    c.pcieTxOverheadUs = 1.0;
    c.offloadTarget = Tier::CpuMem;
    c.systemPowerW = 203.68;
    c.nCores = 48;
    c.deviceKvWindowBytes = 1ull << 30;
    c.dramEnergyPerByte = 60e-12;
    c.pciePowerW = 48.0;
    c.computePowerW = 48 * 2.61;
    c.idlePowerW = 12.0;
    return c;
}

} // namespace vrex
