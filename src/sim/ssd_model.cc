#include "sim/ssd_model.hh"

#include <algorithm>
#include <cmath>

namespace vrex
{

SsdConfig
SsdConfig::bg6()
{
    return SsdConfig{};
}

double
SsdModel::readSeconds(double bytes, double requests) const
{
    if (bytes <= 0.0)
        return 0.0;
    requests = std::max(requests, 1.0);
    const double pages = std::max(1.0, bytes / cfg.pageBytes);
    // Flash-array time: page reads pipelined across all dies.
    const double array_sec = pages * cfg.pageReadUs * 1e-6 /
        (cfg.channels * cfg.diesPerChannel);
    // Channel transfer time.
    const double xfer_sec = bytes / peakBandwidth();
    // Command handling: 10 us per request, deeply pipelined.
    const double cmd_sec = requests * 10e-6 / cfg.queueDepth;
    return std::max(array_sec, xfer_sec) + cmd_sec;
}

} // namespace vrex
