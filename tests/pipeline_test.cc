/**
 * @file
 * End-to-end pipeline tests: scripted sessions under every policy,
 * the accuracy proxy, and functional-to-timing coupling.
 */

#include <gtest/gtest.h>

#include "core/resv.hh"
#include "pipeline/accuracy_eval.hh"
#include "pipeline/coupling.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"

using namespace vrex;

namespace
{

SessionScript
shortScript(uint64_t seed)
{
    SessionScript s = WorkloadGenerator::coinAverage(seed);
    // Shrink for unit-test speed: 8 frames, 6-token question,
    // 5 generated tokens.
    s.events.clear();
    for (int f = 0; f < 8; ++f)
        s.events.push_back({SessionEvent::Type::Frame, 0});
    s.events.push_back({SessionEvent::Type::Question, 6});
    s.events.push_back({SessionEvent::Type::Generate, 5});
    return s;
}

} // namespace

TEST(StreamingSession, FullAttentionRun)
{
    ModelConfig cfg = ModelConfig::tiny();
    StreamingSession session(cfg, nullptr, 42);
    SessionRunResult r = session.run(shortScript(1));
    EXPECT_EQ(r.frames, 8u);
    EXPECT_EQ(r.generated.size(), 5u);
    EXPECT_DOUBLE_EQ(r.frameRatio, 1.0);
    EXPECT_DOUBLE_EQ(r.textRatio, 1.0);
    // 8 frames x 16 tokens + 6 question + 5 generated.
    EXPECT_EQ(r.totalTokens,
              8 * 16 + 6 + 5u);
}

TEST(StreamingSession, Deterministic)
{
    ModelConfig cfg = ModelConfig::tiny();
    StreamingSession s1(cfg, nullptr, 42), s2(cfg, nullptr, 42);
    auto r1 = s1.run(shortScript(2));
    auto r2 = s2.run(shortScript(2));
    EXPECT_EQ(r1.generated, r2.generated);
}

TEST(StreamingSession, ResvReducesRatio)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    StreamingSession session(cfg, &policy, 42);
    SessionRunResult r = session.run(shortScript(3));
    EXPECT_LT(r.frameRatio, 1.0);
    EXPECT_LT(r.textRatio, 1.0);
    EXPECT_FALSE(r.layerHeadRatio.empty());
    EXPECT_EQ(r.layerHeadRatio.size(), cfg.nLayers);
    EXPECT_EQ(r.layerHeadRatio[0].size(), cfg.nKvHeads);
}

TEST(StreamingSession, TeacherForcingConsumesTokens)
{
    ModelConfig cfg = ModelConfig::tiny();
    StreamingSession session(cfg, nullptr, 42);
    std::vector<uint32_t> forced = {1, 2, 3, 4, 5};
    SessionRunResult r = session.run(shortScript(4), forced);
    EXPECT_EQ(r.generated.size(), 5u);
}

TEST(StreamingSession, UnitEventReplayIsByteIdentical)
{
    // The serve-layer scheduler splits Generate{n} into n unit steps
    // (StreamingSession::unitEvents); applying the units in order
    // must be byte-identical to the scripted run.
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    SessionScript script = shortScript(7);

    ResvPolicy whole_policy(cfg, rc);
    StreamingSession whole(cfg, &whole_policy, 42);
    SessionRunResult r_whole = whole.run(script);

    ResvPolicy unit_policy(cfg, rc);
    StreamingSession unit(cfg, &unit_policy, 42);
    unit.begin(script.name, script.video, script.seed);
    for (const auto &event : script.events)
        for (const auto &u : StreamingSession::unitEvents(event))
            unit.apply(u);
    SessionRunResult r_unit = unit.snapshot();

    EXPECT_EQ(r_whole.generated, r_unit.generated);
    EXPECT_EQ(r_whole.stepLogits, r_unit.stepLogits);
    EXPECT_EQ(r_whole.totalTokens, r_unit.totalTokens);
    EXPECT_DOUBLE_EQ(r_whole.frameRatio, r_unit.frameRatio);
    EXPECT_DOUBLE_EQ(r_whole.textRatio, r_unit.textRatio);
    EXPECT_EQ(r_whole.layerHeadRatio, r_unit.layerHeadRatio);
}

TEST(AccuracyEval, FullAttentionPerfectAgreement)
{
    ModelConfig cfg = ModelConfig::tiny();
    FidelityResult f =
        evaluateFidelity(cfg, shortScript(5), nullptr, 42);
    EXPECT_DOUBLE_EQ(f.tokenAgreement, 1.0);
    EXPECT_EQ(f.steps, 5u);
}

TEST(AccuracyEval, FlexGenPerfectAgreement)
{
    ModelConfig cfg = ModelConfig::tiny();
    FlexGenPolicy policy;
    FidelityResult f =
        evaluateFidelity(cfg, shortScript(6), &policy, 42);
    EXPECT_DOUBLE_EQ(f.tokenAgreement, 1.0);
}

TEST(AccuracyEval, ResvHighFidelityLowRatio)
{
    ModelConfig cfg = ModelConfig::tiny();
    ResvConfig rc;
    ResvPolicy policy(cfg, rc);
    FidelityResult f =
        evaluateFidelity(cfg, shortScript(7), &policy, 42);
    // Argmax agreement is noisy over only 5 steps; the continuous
    // logit-fidelity signal is the stable check.
    EXPECT_GT(f.logitCosine, 0.85);
    EXPECT_GE(f.tokenAgreement, 0.4);
    EXPECT_LT(f.frameRatio, 1.0);
}

TEST(AccuracyEval, ProxyAccuracyMapping)
{
    FidelityResult perfect;
    EXPECT_DOUBLE_EQ(proxyAccuracy(49.0, perfect), 49.0);
    // Monotone in both fidelity components.
    FidelityResult worse_tokens = perfect;
    worse_tokens.tokenAgreement = 0.5;
    FidelityResult worst_tokens = perfect;
    worst_tokens.tokenAgreement = 0.2;
    EXPECT_LT(proxyAccuracy(49.0, worse_tokens), 49.0);
    EXPECT_LT(proxyAccuracy(49.0, worst_tokens),
              proxyAccuracy(49.0, worse_tokens));
    FidelityResult distorted = perfect;
    distorted.logitCosine = 0.9;
    EXPECT_LT(proxyAccuracy(49.0, distorted), 49.0);
    // Small distortion stays in the sub-1% drop regime of Table II.
    FidelityResult slight = perfect;
    slight.logitCosine = 0.99;
    EXPECT_GT(proxyAccuracy(49.0, slight), 48.5);
}

TEST(Coupling, RatiosOverrideMethod)
{
    SessionRunResult measured;
    measured.frameRatio = 0.31;
    measured.textRatio = 0.03;
    MethodModel m = coupleRatios(MethodModel::resvFull(), measured);
    EXPECT_DOUBLE_EQ(m.frameSelRatio, 0.31);
    EXPECT_DOUBLE_EQ(m.genSelRatio, 0.03);
    // InfiniGen does not select at prefill: frame ratio untouched.
    MethodModel ig = coupleRatios(MethodModel::infinigen(), measured);
    EXPECT_DOUBLE_EQ(ig.frameSelRatio, 1.0);
    EXPECT_DOUBLE_EQ(ig.genSelRatio, 0.03);
}

TEST(Coupling, ClusterSizeOverride)
{
    SessionRunResult measured;
    measured.frameRatio = 0.3;
    measured.textRatio = 0.02;
    MethodModel m =
        coupleResv(MethodModel::resvFull(), measured, 12.5);
    EXPECT_DOUBLE_EQ(m.tokensPerCluster, 12.5);
    // Degenerate cluster size ignored.
    MethodModel m2 =
        coupleResv(MethodModel::resvFull(), measured, 0.5);
    EXPECT_DOUBLE_EQ(m2.tokensPerCluster,
                     MethodModel::resvFull().tokensPerCluster);
}

TEST(Pipeline, BaselineComparisonOrdering)
{
    // ReSV should achieve a lower frame-stage ratio than the fixed
    // 50% top-k InfiniGenP while keeping agreement in range.
    ModelConfig cfg = ModelConfig::tiny();
    SessionScript script = shortScript(8);

    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    FidelityResult f_resv = evaluateFidelity(cfg, script, &resv, 42);

    InfiniGenConfig ic;
    ic.ratio = 0.5f;
    ic.prefill = true;
    InfiniGenPolicy infp(cfg, ic);
    FidelityResult f_inf = evaluateFidelity(cfg, script, &infp, 42);

    EXPECT_LT(f_resv.frameRatio, f_inf.frameRatio + 0.15);
    EXPECT_GT(f_resv.tokenAgreement, 0.4);
    EXPECT_GT(f_inf.tokenAgreement, 0.4);
}
