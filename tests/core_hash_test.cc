/**
 * @file
 * Unit + property tests for hash-bit generation (SimHash encoder) and
 * the HC table's incremental Hamming clustering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "common/stats.hh"
#include "tensor/ops.hh"

using namespace vrex;

TEST(HashEncoder, DeterministicAndShaped)
{
    HashEncoder e1(32, 16, 7), e2(32, 16, 7);
    std::vector<float> key(32);
    Rng rng(1);
    rng.fillGaussian(key.data(), key.size(), 1.0f);
    EXPECT_EQ(e1.encode(key.data()), e2.encode(key.data()));
    EXPECT_EQ(e1.encode(key.data()).size(), 16u);
    EXPECT_EQ(e1.bits(), 16u);
    EXPECT_EQ(e1.keyDim(), 32u);
}

TEST(HashEncoder, OppositeVectorsMaxDistance)
{
    HashEncoder enc(16, 32, 7);
    std::vector<float> a(16), b(16);
    Rng rng(2);
    rng.fillGaussian(a.data(), a.size(), 1.0f);
    for (size_t i = 0; i < a.size(); ++i)
        b[i] = -a[i];
    // Antipodal points flip every hyperplane sign.
    EXPECT_EQ(enc.encode(a.data()).hamming(enc.encode(b.data())),
              32u);
}

TEST(HashEncoder, IdenticalVectorsZeroDistance)
{
    HashEncoder enc(16, 32, 7);
    std::vector<float> a(16);
    Rng rng(3);
    rng.fillGaussian(a.data(), a.size(), 1.0f);
    EXPECT_EQ(enc.encode(a.data()).hamming(enc.encode(a.data())), 0u);
}

TEST(HashEncoder, ScaleInvariant)
{
    HashEncoder enc(16, 32, 7);
    std::vector<float> a(16), b(16);
    Rng rng(4);
    rng.fillGaussian(a.data(), a.size(), 1.0f);
    for (size_t i = 0; i < a.size(); ++i)
        b[i] = 3.5f * a[i];
    EXPECT_EQ(enc.encode(a.data()).hamming(enc.encode(b.data())), 0u);
}

TEST(HashEncoder, EncodeRowsMatchesEncode)
{
    HashEncoder enc(8, 16, 7);
    Matrix keys(4, 8);
    Rng rng(5);
    rng.fillGaussian(keys.raw(), keys.size(), 1.0f);
    auto sigs = enc.encodeRows(keys);
    ASSERT_EQ(sigs.size(), 4u);
    for (uint32_t r = 0; r < 4; ++r)
        EXPECT_EQ(sigs[r], enc.encode(keys.row(r)));
}

/**
 * The SimHash property the paper's Fig. 7b measures: Hamming distance
 * correlates strongly (negatively) with cosine similarity. The paper
 * reports |rho| ~ 0.8 on COIN keys with N_hp = 32.
 */
TEST(HashEncoder, HammingTracksCosineSimilarity)
{
    const uint32_t dim = 64, bits = 32;
    HashEncoder enc(dim, bits, 7);
    Rng rng(6);

    std::vector<double> cosines, distances;
    std::vector<float> base(dim);
    rng.fillGaussian(base.data(), dim, 1.0f);
    for (int i = 0; i < 400; ++i) {
        // Mix of near and far vectors.
        std::vector<float> other(dim);
        double alpha = rng.uniform();
        for (uint32_t d = 0; d < dim; ++d) {
            other[d] = static_cast<float>(
                alpha * base[d] +
                (1.0 - alpha) * rng.gaussian());
        }
        cosines.push_back(
            cosineSimilarity(base.data(), other.data(), dim));
        distances.push_back(
            enc.encode(base.data()).hamming(enc.encode(other.data())));
    }
    double rho = pearson(cosines, distances);
    EXPECT_LT(rho, -0.7);  // Strong negative correlation.
}

TEST(HCTable, FirstInsertCreatesCluster)
{
    HCTable tab(4, 8, 2);
    float key[4] = {1, 0, 0, 0};
    BitSig sig(8);
    EXPECT_EQ(tab.insert(0, key, sig), 0u);
    EXPECT_EQ(tab.clusterCount(), 1u);
    EXPECT_EQ(tab.tokenCount(), 1u);
    EXPECT_EQ(tab.clusters()[0].tokenIdx[0], 0u);
}

TEST(HCTable, CloseSignaturesJoin)
{
    HCTable tab(2, 8, 2);
    float key[2] = {1, 1};
    BitSig a(8), b(8);
    b.set(0, true);  // Distance 1 <= threshold 2.
    tab.insert(0, key, a);
    EXPECT_EQ(tab.insert(1, key, b), 0u);
    EXPECT_EQ(tab.clusterCount(), 1u);
    EXPECT_EQ(tab.clusters()[0].tokenCount(), 2u);
}

TEST(HCTable, FarSignaturesSplit)
{
    HCTable tab(2, 8, 2);
    float key[2] = {1, 1};
    BitSig a(8), b(8);
    for (uint32_t i = 0; i < 6; ++i)
        b.set(i, true);  // Distance 6 > threshold 2.
    tab.insert(0, key, a);
    EXPECT_EQ(tab.insert(1, key, b), 1u);
    EXPECT_EQ(tab.clusterCount(), 2u);
}

TEST(HCTable, CentroidIsRunningMean)
{
    HCTable tab(2, 8, 8);  // Generous threshold: all join.
    BitSig sig(8);
    float k1[2] = {1.0f, 0.0f};
    float k2[2] = {3.0f, 2.0f};
    tab.insert(0, k1, sig);
    tab.insert(1, k2, sig);
    EXPECT_NEAR(tab.clusters()[0].centroid[0], 2.0f, 1e-6f);
    EXPECT_NEAR(tab.clusters()[0].centroid[1], 1.0f, 1e-6f);
}

TEST(HCTable, MajoritySignatureUpdates)
{
    HCTable tab(1, 4, 4);
    float key[1] = {0.0f};
    BitSig zero(4), one(4);
    for (uint32_t i = 0; i < 4; ++i)
        one.set(i, true);
    tab.insert(0, key, zero);
    tab.insert(1, key, one);
    tab.insert(2, key, one);
    // Majority of {0000, 1111, 1111} = 1111.
    EXPECT_EQ(tab.clusters()[0].signature, one);
}

TEST(HCTable, TieBreakPrefersLowestCluster)
{
    HCTable tab(1, 8, 4);
    float key[1] = {0.0f};
    BitSig a(8), b(8);
    b.set(0, true);
    b.set(1, true);
    b.set(2, true);
    b.set(3, true);
    b.set(4, true);  // Distance 5 from a: separate cluster.
    tab.insert(0, key, a);
    tab.insert(1, key, b);
    ASSERT_EQ(tab.clusterCount(), 2u);
    // A sig equidistant from both clusters joins the first.
    BitSig mid(8);
    mid.set(0, true);
    mid.set(1, true);
    // d(mid, a) = 2, d(mid, b) = 3 -> joins cluster 0.
    EXPECT_EQ(tab.insert(2, key, mid), 0u);
}

TEST(HCTable, AvgClusterSizeAndMemory)
{
    HCTable tab(4, 8, 8);
    BitSig sig(8);
    float key[4] = {0, 0, 0, 0};
    for (uint32_t t = 0; t < 6; ++t)
        tab.insert(t, key, sig);
    EXPECT_DOUBLE_EQ(tab.avgClusterSize(), 6.0);
    EXPECT_GT(tab.memoryBytes(), 0u);
    EXPECT_GT(tab.hammingComparisons(), 0u);
    tab.clear();
    EXPECT_EQ(tab.clusterCount(), 0u);
    EXPECT_DOUBLE_EQ(tab.avgClusterSize(), 0.0);
}

/** Property: similar synthetic keys cluster far below 1 per token. */
TEST(HCTable, CompressesSimilarStreams)
{
    const uint32_t dim = 32;
    HashEncoder enc(dim, 32, 7);
    HCTable tab(dim, 32, 7);
    Rng rng(9);
    std::vector<float> base(dim);
    rng.fillGaussian(base.data(), dim, 1.0f);
    for (uint32_t t = 0; t < 200; ++t) {
        std::vector<float> key(dim);
        for (uint32_t d = 0; d < dim; ++d)
            key[d] = base[d] +
                static_cast<float>(rng.gaussian(0.0, 0.07));
        tab.insert(t, key.data(), enc.encode(key.data()));
    }
    EXPECT_GT(tab.avgClusterSize(), 4.0);
}

/** Property: unrelated keys mostly stay separate. */
TEST(HCTable, DoesNotMergeRandomStreams)
{
    const uint32_t dim = 32;
    HashEncoder enc(dim, 32, 4);
    HCTable tab(dim, 32, 4);
    Rng rng(10);
    for (uint32_t t = 0; t < 100; ++t) {
        std::vector<float> key(dim);
        rng.fillGaussian(key.data(), dim, 1.0f);
        tab.insert(t, key.data(), enc.encode(key.data()));
    }
    EXPECT_LT(tab.avgClusterSize(), 2.0);
}
