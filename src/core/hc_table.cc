#include "core/hc_table.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "core/kernels.hh"

namespace vrex
{

HCTable::HCTable(uint32_t key_dim, uint32_t n_bits, uint32_t th_hd)
    : keyDim(key_dim), nBits(n_bits), thHd(th_hd)
{
    VREX_ASSERT(key_dim > 0 && n_bits > 0, "bad HC table shape");
}

uint32_t
HCTable::insert(uint32_t token_idx, const float *key, const BitSig &sig)
{
    VREX_ASSERT(sig.size() == nBits, "signature width mismatch");

    // The scan against every cluster signature is the HCU hot loop:
    // widths are checked once above (all rows share nBits), so go
    // straight to the dispatched word-level kernel instead of paying
    // BitSig::hamming's per-call width assert and hook load.
    const auto hammingKernel = kernels::active().hammingWords;
    const uint64_t *sigWords = sig.raw().data();
    const size_t sigNWords = sig.raw().size();
    uint32_t best = std::numeric_limits<uint32_t>::max();
    uint32_t best_dist = thHd + 1;
    for (uint32_t c = 0; c < rows.size(); ++c) {
        uint32_t d = hammingKernel(rows[c].signature.raw().data(),
                                   sigWords, sigNWords);
        ++comparisons;
        if (d < best_dist) {
            best_dist = d;
            best = c;
        }
    }

    if (best == std::numeric_limits<uint32_t>::max()) {
        HashCluster cluster;
        cluster.signature = sig;
        cluster.centroid.assign(key, key + keyDim);
        cluster.tokenIdx.push_back(token_idx);
        cluster.bitOnes.assign(nBits, 0);
        for (uint32_t b = 0; b < nBits; ++b)
            cluster.bitOnes[b] = sig.get(b) ? 1 : 0;
        rows.push_back(std::move(cluster));
        best = static_cast<uint32_t>(rows.size()) - 1;
    } else {
        HashCluster &cluster = rows[best];
        const double n = cluster.tokenCount();
        for (uint32_t d = 0; d < keyDim; ++d) {
            cluster.centroid[d] = static_cast<float>(
                (cluster.centroid[d] * n + key[d]) / (n + 1.0));
        }
        for (uint32_t b = 0; b < nBits; ++b)
            cluster.bitOnes[b] += sig.get(b) ? 1 : 0;
        cluster.tokenIdx.push_back(token_idx);
        refreshSignature(cluster);
    }
    ++numTokens;
    return best;
}

void
HCTable::refreshSignature(HashCluster &cluster)
{
    const uint32_t n = cluster.tokenCount();
    for (uint32_t b = 0; b < nBits; ++b)
        cluster.signature.set(b, 2 * cluster.bitOnes[b] > n);
}

double
HCTable::avgClusterSize() const
{
    if (rows.empty())
        return 0.0;
    return static_cast<double>(numTokens) /
        static_cast<double>(rows.size());
}

uint64_t
HCTable::memoryBytes() const
{
    uint64_t bytes = 0;
    for (const auto &c : rows) {
        bytes += c.centroid.size() * sizeof(float);
        bytes += bitWords(nBits) * sizeof(uint64_t);
        bytes += c.tokenIdx.size() * sizeof(uint32_t);
        bytes += sizeof(uint32_t);  // token count field.
    }
    return bytes;
}

void
HCTable::clear()
{
    rows.clear();
    numTokens = 0;
    comparisons = 0;
}

void
HCTable::serialize(serial::ByteWriter &w) const
{
    w.put<uint32_t>(keyDim);
    w.put<uint32_t>(nBits);
    w.put<uint32_t>(thHd);
    w.put<uint32_t>(numTokens);
    w.put<uint64_t>(comparisons);
    w.put<uint64_t>(rows.size());
    for (const auto &c : rows) {
        w.putVec(c.signature.raw());
        w.putVec(c.centroid);
        w.putVec(c.tokenIdx);
        w.putVec(c.bitOnes);
    }
}

void
HCTable::restore(serial::ByteReader &r)
{
    const uint32_t key_dim = r.get<uint32_t>();
    const uint32_t n_bits = r.get<uint32_t>();
    const uint32_t th_hd = r.get<uint32_t>();
    if (key_dim != keyDim || n_bits != nBits || th_hd != thHd)
        throw serial::SerialError(
            "HCTable::restore: blob geometry mismatch");
    numTokens = r.get<uint32_t>();
    comparisons = r.get<uint64_t>();
    const uint64_t n_rows = r.get<uint64_t>();
    rows.clear();
    for (uint64_t i = 0; i < n_rows; ++i) {
        HashCluster c;
        const std::vector<uint64_t> words = r.getVec<uint64_t>();
        c.signature = BitSig(nBits);
        if (words.size() != c.signature.raw().size())
            throw serial::SerialError(
                "HCTable::restore: signature width mismatch");
        std::copy(words.begin(), words.end(),
                  c.signature.rawMutable());
        c.centroid = r.getVec<float>();
        c.tokenIdx = r.getVec<uint32_t>();
        c.bitOnes = r.getVec<uint32_t>();
        if (c.centroid.size() != keyDim || c.bitOnes.size() != nBits)
            throw serial::SerialError(
                "HCTable::restore: cluster shape mismatch");
        rows.push_back(std::move(c));
    }
}

} // namespace vrex
