/**
 * @file
 * Fig. 17 reproduction: DRAM bandwidth usage of V-Rex48 across two
 * decoder layers of the frame-processing stage — the overlap
 * argument: KV prediction spikes briefly under attention and is
 * fully hidden; KV retrieval trickles at PCIe rate (~1% of DRAM
 * bandwidth) across the whole layer.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"
#include "sim/timeline.hh"

using namespace vrex;

namespace
{

void
run(bench::Reporter &rep)
{
    RunConfig rc;
    rc.hw = AcceleratorConfig::vrex48();
    rc.method = MethodModel::resvFull();
    rc.cacheTokens = 40000;
    rc.batch = 1;
    SystemModel sm(rc);

    rep.beginPanel("timeline",
                   "Fig. 17: memory bandwidth usage of V-Rex48 "
                   "(2 layers, frame stage, 40K cache)");
    auto segs = layerTimeline(sm, 2);
    for (size_t i = 0; i < segs.size(); ++i) {
        const auto &s = segs[i];
        char row[64];
        std::snprintf(row, sizeof(row), "%02zu %s/%s", i,
                      s.track.c_str(), s.label.c_str());
        rep.add(row, "start", s.startUs, "us", 1);
        rep.add(row, "end", s.endUs, "us", 1);
        rep.add(row, "bw", s.bandwidthGBs, "GB/s", 1);
    }

    rep.beginPanel("summary", "Fig. 17: bandwidth summary");
    double peak = timelinePeakBandwidth(segs);
    rep.add("aggregate", "peak_bw", peak, "GB/s", 0);
    rep.add("aggregate", "platform_bw", rc.hw.memBandwidthGBs, "GB/s",
            0);
    rep.add("retrieval", "stream_bw", rc.hw.pcieBandwidthGBs, "GB/s",
            1);
    rep.add("retrieval", "share_of_dram",
            100.0 * rc.hw.pcieBandwidthGBs / rc.hw.memBandwidthGBs,
            "%", 1);
    PhaseResult r = sm.framePhase();
    rep.add("kv_prediction", "dre_time", r.dreMs, "ms", 3);
    rep.add("kv_prediction", "share_of_wall",
            100.0 * r.dreMs / r.totalMs, "%", 2);
    rep.note("retrieval trickles at PCIe rate (paper: ~1% of DRAM "
             "bandwidth); KV prediction is hidden under attention");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig17", argc, argv, run);
}
