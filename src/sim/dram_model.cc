#include "sim/dram_model.hh"

#include <algorithm>

namespace vrex
{

DramConfig
DramConfig::lpddr5()
{
    DramConfig c;
    c.peakGBs = 204.8;
    c.channels = 16;
    c.rowBytes = 2048;
    c.tRpNs = 18.0;
    c.tRcdNs = 18.0;
    c.tCasNs = 18.0;
    return c;
}

DramConfig
DramConfig::hbm2e()
{
    DramConfig c;
    c.peakGBs = 1935.0;
    c.channels = 64;
    c.rowBytes = 1024;
    c.tRpNs = 14.0;
    c.tRcdNs = 14.0;
    c.tCasNs = 14.0;
    return c;
}

DramConfig
DramConfig::ddr4()
{
    DramConfig c;
    c.peakGBs = 25.6;
    c.channels = 2;
    c.rowBytes = 8192;
    c.tRpNs = 14.0;
    c.tRcdNs = 14.0;
    c.tCasNs = 14.0;
    return c;
}

double
DramModel::efficiency(double chunk_bytes) const
{
    chunk_bytes = std::max(chunk_bytes, 64.0);
    // Per chunk: one row miss (tRP + tRCD) then bursts; rows of
    // rowBytes each need re-activation when the chunk spans them.
    const double per_channel_bw = cfg.peakGBs * 1e9 / cfg.channels;
    const double rows_touched =
        std::max(1.0, chunk_bytes / cfg.rowBytes);
    const double activate_ns =
        rows_touched * (cfg.tRpNs + cfg.tRcdNs) + cfg.tCasNs;
    const double burst_ns = chunk_bytes / per_channel_bw * 1e9;
    return burst_ns / (burst_ns + activate_ns);
}

double
DramModel::streamSeconds(double bytes, double chunk_bytes) const
{
    const double eff = efficiency(chunk_bytes);
    return bytes / (cfg.peakGBs * 1e9 * eff);
}

} // namespace vrex
