/**
 * @file
 * Bit-level utilities used by the hash-bit clustering path.
 *
 * Hash signatures are stored as packed 64-bit words; the Hamming
 * distance between two signatures is a XOR + popcount over the words,
 * mirroring the HCU's XOR-accumulator datapath.
 *
 * The word-level Hamming loop is dispatched through
 * `detail::bitsigHammingHook`: it defaults to the portable scalar
 * implementation, and `core/kernels` installs the runtime-selected
 * SIMD variant (AVX2/NEON) when that layer initializes. Every variant
 * is an exact integer kernel, so the dispatched result is always
 * bit-identical to the scalar one (locked by tests/core_kernels_test).
 */

#ifndef VREX_COMMON_BITS_HH
#define VREX_COMMON_BITS_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace vrex
{

namespace detail
{

/** Word-level Hamming kernel signature (n = word count). */
using HammingWordsFn = uint32_t (*)(const uint64_t *a, const uint64_t *b,
                                    size_t n);

/** Portable reference: XOR + std::popcount per word. */
uint32_t hammingWordsScalar(const uint64_t *a, const uint64_t *b, size_t n);

/**
 * Active Hamming kernel. Defaults to hammingWordsScalar; the
 * core/kernels dispatch layer swaps in a SIMD variant at init (or when
 * a test forces an ISA). Relaxed atomics: the pointer is written
 * before worker threads start (static init) or from single-threaded
 * test setup, and every installed kernel computes the same value.
 *
 * Deliberately lock-free (an std::atomic, not a VREX_GUARDED_BY
 * member): the hook sits on the per-token Hamming hot path, and a
 * data race is impossible by construction — loads and stores of the
 * function pointer are individually atomic, and *any* interleaving
 * yields a correct kernel because every installed variant is
 * bit-identical. Clang thread-safety analysis has nothing to check
 * here; atomics are outside its capability model by design.
 */
extern std::atomic<HammingWordsFn> bitsigHammingHook;

} // namespace detail

/**
 * Number of 64-bit words needed to hold @p nbits bits. Computed in
 * 64-bit arithmetic: the naive (nbits + 63) / 64 wraps for
 * nbits > UINT32_MAX - 63 and silently returned 0 words.
 */
inline uint32_t
bitWords(uint32_t nbits)
{
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(nbits) + 63u) / 64u);
}

/** A packed bit signature of fixed width. */
class BitSig
{
  public:
    BitSig() = default;

    explicit BitSig(uint32_t nbits)
        : numBits(nbits), words(bitWords(nbits), 0)
    {
    }

    uint32_t size() const { return numBits; }

    void
    set(uint32_t i, bool value)
    {
        VREX_DEBUG_ASSERT(i < numBits,
                          "BitSig::set(%u) out of range (width %u)",
                          i, numBits);
        uint64_t mask = 1ull << (i & 63u);
        if (value)
            words[i >> 6] |= mask;
        else
            words[i >> 6] &= ~mask;
    }

    bool
    get(uint32_t i) const
    {
        VREX_DEBUG_ASSERT(i < numBits,
                          "BitSig::get(%u) out of range (width %u)",
                          i, numBits);
        return (words[i >> 6] >> (i & 63u)) & 1u;
    }

    const std::vector<uint64_t> &raw() const { return words; }

    /**
     * Mutable word storage for bulk writers (the hash-encode kernels
     * fill whole signatures at once). Contract: bits at positions
     * >= size() in the last word must remain zero — hamming() and
     * operator== rely on zeroed padding.
     */
    uint64_t *rawMutable() { return words.data(); }

    /**
     * Hamming distance to another signature of the same width.
     * Widths must match: comparing mismatched signatures used to read
     * past the shorter word array.
     */
    uint32_t
    hamming(const BitSig &other) const
    {
        VREX_ASSERT(numBits == other.numBits,
                    "BitSig width mismatch: %u vs %u bits",
                    numBits, other.numBits);
        return detail::bitsigHammingHook.load(std::memory_order_relaxed)(
            words.data(), other.words.data(), words.size());
    }

    bool
    operator==(const BitSig &other) const
    {
        return numBits == other.numBits && words == other.words;
    }

  private:
    uint32_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace vrex

#endif // VREX_COMMON_BITS_HH
