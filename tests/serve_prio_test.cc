/**
 * @file
 * Priority-class scheduling suite (ctest label `sched`, run under
 * TSan and ASan in CI). Locks the PR-5 guarantees on top of the
 * PR-4 round-robin contract:
 *
 *  - concurrent == sequential byte-identity under Interactive/Bulk
 *    class mixes with weights, rate limits and deadlines, across
 *    the scheduler shape zoo;
 *  - exact weighted-fairness counts (staged bursts make the
 *    weighted round-robin dispatch order fully deterministic) and
 *    the provable wait bound
 *      maxWaitSlices <= (n_c - 1) + w_other * (floor((n_c-1)/w_c) + 2)
 *    under cross-class flooding;
 *  - deadline-aware slicing: promotion order and counts are exact
 *    at the Scheduler level (recording executor, one worker);
 *  - per-session rate limits: slice counts, rate-limited-slice
 *    counts and executed work items audited against an instrumented
 *    registerMaker policy;
 *  - setClass() mid-stream: results unchanged, per-class accounting
 *    retagged, ready-list moves, error paths;
 *  - per-class latency-percentile observability: sample counts are
 *    logical (== slices) and percentiles are ordered.
 *
 * Shares the deterministic stress harness in testutil.hh with
 * serve_sched_test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/engine.hh"
#include "serve/policy_factory.hh"
#include "serve/scheduler.hh"
#include "serve/stats.hh"
#include "serve/thread_pool.hh"
#include "testutil.hh"
#include "video/workload.hh"

using namespace vrex;
using namespace vrex::serve;
using testutil::CountingPolicy;
using testutil::expectIdenticalRuns;
using testutil::randomVerbScript;
using testutil::sequentialReplay;
using testutil::VerbMix;

namespace
{

/** Unit work items of a script (Generate{n} = n; Frame/Question 1). */
uint64_t
unitItems(const SessionScript &script)
{
    uint64_t items = 0;
    for (const SessionEvent &e : script.events)
        items += e.unitCount();
    return items;
}

std::vector<SessionEvent>
frames(uint32_t n)
{
    return std::vector<SessionEvent>(
        n, SessionEvent{SessionEvent::Type::Frame, 0});
}

} // namespace

// ---------------------------------------------------------------
// Byte-identity under class mixes
// ---------------------------------------------------------------

TEST(PrioStress, ClassMixInterleavingsMatchSequential)
{
    // 6 sessions alternating Interactive (QA-heavy scripts) and Bulk
    // (frame-ingest-heavy scripts, rate-limited), under weighted
    // round-robin {3,1} with deadline promotion armed, fed in
    // seeded-random chunk interleavings across the shape zoo. Every
    // concurrent result must equal its sequential replay, and the
    // logical per-class item totals are exact.
    const ModelConfig model = ModelConfig::tiny();
    const std::vector<PolicySpec> specs = testutil::policySpecZoo();
    const size_t kSessions = 6;
    const VerbMix bulk_mix = VerbMix::bulkIngest();

    for (const auto &[workers, slice] : testutil::schedShapeZoo()) {
        EngineConfig cfg;
        cfg.model = model;
        cfg.workers = workers;
        cfg.sched.sliceEvents = slice;
        cfg.sched.classWeights = {3, 1};
        cfg.sched.deadlineSlices = 3;
        Engine engine(cfg);

        std::vector<SessionScript> scripts;
        std::vector<SessionId> ids;
        uint64_t class_items[kSchedClasses] = {0, 0};
        for (size_t i = 0; i < kSessions; ++i) {
            const bool is_bulk = (i % 2) == 1;
            scripts.push_back(is_bulk
                                  ? randomVerbScript(600 + i, i,
                                                     bulk_mix)
                                  : randomVerbScript(600 + i, i));
            SessionOptions o = SessionOptions::fromScript(scripts[i]);
            o.policy = specs[i % specs.size()];
            o.sessionSeed = 2000 + i;
            o.schedClass = is_bulk ? SchedClass::Bulk
                                   : SchedClass::Interactive;
            if (is_bulk)
                o.maxItemsPerRound = 2;
            class_items[is_bulk ? 1 : 0] += unitItems(scripts[i]);
            ids.push_back(engine.createSession(o));
        }

        // Interleaved feeding: rotate over the sessions, pushing a
        // seeded-random 1..3-event chunk from each script per turn,
        // while earlier chunks are already executing.
        Rng feed(9000 + workers * 31 + slice, "prio-stress-feed");
        std::vector<size_t> cursor(kSessions, 0);
        bool remaining = true;
        while (remaining) {
            remaining = false;
            for (size_t i = 0; i < kSessions; ++i) {
                const auto &events = scripts[i].events;
                if (cursor[i] >= events.size())
                    continue;
                const size_t k = std::min<size_t>(
                    1 + feed.nextU64() % 3,
                    events.size() - cursor[i]);
                engine.enqueue(
                    ids[i],
                    {events.begin() +
                         static_cast<ptrdiff_t>(cursor[i]),
                     events.begin() +
                         static_cast<ptrdiff_t>(cursor[i] + k)});
                cursor[i] += k;
                remaining |= cursor[i] < events.size();
            }
        }

        for (size_t i = 0; i < kSessions; ++i) {
            SessionRunResult concurrent = engine.result(ids[i]);
            QueueStats qs = engine.sessionStats(ids[i]);
            EXPECT_EQ(qs.schedClass, (i % 2) == 1
                                         ? SchedClass::Bulk
                                         : SchedClass::Interactive);
            engine.closeSession(ids[i]);
            expectIdenticalRuns(
                concurrent,
                sequentialReplay(model, scripts[i],
                                 specs[i % specs.size()], 2000 + i));
        }

        Stats st = engine.stats();
        EXPECT_EQ(st.itemsEnqueued, st.itemsExecuted);
        EXPECT_EQ(st.itemsRejected, 0u);
        EXPECT_EQ(st.admitted, kSessions);
        // Sessions never change class here, so the per-class item
        // partition is exact regardless of slicing or timing.
        EXPECT_EQ(st.forClass(SchedClass::Interactive).itemsExecuted,
                  class_items[0]);
        EXPECT_EQ(st.forClass(SchedClass::Bulk).itemsExecuted,
                  class_items[1]);
        EXPECT_EQ(st.forClass(SchedClass::Interactive).slices +
                      st.forClass(SchedClass::Bulk).slices,
                  st.slices);
    }
}

// ---------------------------------------------------------------
// Weighted fairness
// ---------------------------------------------------------------

TEST(PrioFairness, WeightedRoundRobinExactCounts)
{
    // Staged symmetric burst, weights {2,1}, slice 1, one worker:
    // the dispatch trace is I,I,B,I,I,B,... so the Bulk session
    // waits exactly wI = 2 slices between turns and the Interactive
    // session at most 1 (the single Bulk slice between its blocks).
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.sched.sliceEvents = 1;
    cfg.sched.classWeights = {2, 1};
    Engine engine(cfg);

    engine.pause();
    SessionOptions oi;
    oi.name = "wrr-interactive";
    SessionId interactive = engine.createSession(oi);
    engine.feedFrame(interactive, 6);
    SessionOptions ob;
    ob.name = "wrr-bulk";
    ob.schedClass = SchedClass::Bulk;
    SessionId bulk = engine.createSession(ob);
    engine.feedFrame(bulk, 6);
    engine.resume();
    engine.waitAll();

    EXPECT_EQ(engine.sessionStats(interactive).maxWaitSlices, 1u);
    EXPECT_EQ(engine.sessionStats(bulk).maxWaitSlices, 2u);
    EXPECT_EQ(engine.sessionStats(interactive).slices, 6u);
    EXPECT_EQ(engine.sessionStats(bulk).slices, 6u);

    Stats st = engine.stats();
    EXPECT_EQ(st.slices, 12u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).slices, 6u);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).slices, 6u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).itemsExecuted, 6u);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).itemsExecuted, 6u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).deadlinePromotions,
              0u);
    engine.closeSession(interactive);
    engine.closeSession(bulk);
}

TEST(PrioFairness, InteractiveWaitBoundUnderBulkFlood)
{
    // 3 Interactive sessions vs 2 flooding Bulk sessions, weights
    // {3,1}, slice 1, staged. Provable bound for class c:
    //   maxWaitSlices <= (n_c - 1) + w_other*(floor((n_c-1)/w_c) + 2)
    // Interactive: 2 + 1*(0 + 2) = 4. Bulk: 1 + 3*(1 + 2) = 10.
    const uint32_t kInteractive = 3, kBulk = 2;
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 1;
    cfg.sched.classWeights = {3, 1};
    Engine engine(cfg);

    engine.pause();
    std::vector<SessionId> interactive, bulk;
    for (uint32_t i = 0; i < kInteractive; ++i) {
        SessionOptions o;
        o.name = "flood-i-" + std::to_string(i);
        interactive.push_back(engine.createSession(o));
        engine.feedFrame(interactive[i], 4);
    }
    for (uint32_t i = 0; i < kBulk; ++i) {
        SessionOptions o;
        o.name = "flood-b-" + std::to_string(i);
        o.schedClass = SchedClass::Bulk;
        bulk.push_back(engine.createSession(o));
        engine.feedFrame(bulk[i], 12);
    }
    engine.resume();
    engine.waitAll();

    for (SessionId id : interactive)
        EXPECT_LE(engine.sessionStats(id).maxWaitSlices, 4u);
    for (SessionId id : bulk)
        EXPECT_LE(engine.sessionStats(id).maxWaitSlices, 10u);

    Stats st = engine.stats();
    EXPECT_EQ(st.forClass(SchedClass::Interactive).itemsExecuted,
              uint64_t{kInteractive} * 4);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).itemsExecuted,
              uint64_t{kBulk} * 12);
    for (SessionId id : interactive)
        engine.closeSession(id);
    for (SessionId id : bulk)
        engine.closeSession(id);
}

TEST(PrioFairness, LoanSlicesPreserveTurnCreditWorkConservation)
{
    // When every session of the turn-holding class is mid-slice on
    // another worker (busy but not ready), a ready session of the
    // other class dispatches immediately — work conservation — as a
    // *loan* that consumes no credit and leaves the rotation in
    // place. Without loans the turn holder would forfeit its credit
    // every rotation and weights {3,1} would silently degrade
    // toward 1:1. Gated executors make both in-flight picks
    // deterministic so the rotation snapshot is exact.
    std::mutex mu;
    std::condition_variable cv;
    std::set<Scheduler::Key> started;
    bool release = false;

    SchedulerConfig cfg;
    cfg.sliceEvents = 1;
    cfg.classWeights = {3, 1};
    ThreadPool pool(2);
    Scheduler sched(
        pool, cfg,
        [&](Scheduler::Key key, const std::vector<SessionEvent> &) {
            std::unique_lock<std::mutex> lock(mu);
            started.insert(key);
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        });

    const Scheduler::Key I = 1, B = 2;
    ASSERT_TRUE(sched.tryAdmit(I, SchedClass::Interactive));
    ASSERT_TRUE(sched.tryAdmit(B, SchedClass::Bulk));
    sched.pause();
    EXPECT_TRUE(sched.tryEnqueue(I, frames(2)).accepted());
    EXPECT_TRUE(sched.tryEnqueue(B, frames(2)).accepted());
    sched.resume();

    {
        // Both first slices in flight: pick #1 took Interactive on
        // credit (3 -> 2); pick #2 found Interactive busy-but-not-
        // ready and loaned the slice to the ready Bulk session.
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock,
                [&] { return started.count(I) && started.count(B); });
    }
    Stats mid = sched.stats();
    EXPECT_EQ(mid.wrrTurnClass, SchedClass::Interactive);
    EXPECT_EQ(mid.wrrTurnCredit, 2u); // the Bulk loan consumed none
    EXPECT_EQ(mid.forClass(SchedClass::Bulk).slices, 0u);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    sched.waitAll();

    Stats done = sched.stats();
    EXPECT_EQ(done.forClass(SchedClass::Interactive).slices, 2u);
    EXPECT_EQ(done.forClass(SchedClass::Bulk).slices, 2u);
    EXPECT_EQ(done.itemsExecuted, 4u);
}

// ---------------------------------------------------------------
// Deadline-aware slicing
// ---------------------------------------------------------------

namespace
{

/** Scheduler harness with a recording executor: one worker makes
 *  the dispatch sequence fully deterministic under staged bursts. */
class RecordingScheduler
{
  public:
    explicit RecordingScheduler(SchedulerConfig cfg)
        : pool(1),
          sched(pool, cfg,
                [this](Scheduler::Key key,
                       const std::vector<SessionEvent> &batch) {
                    std::lock_guard<std::mutex> lock(mu);
                    for (const SessionEvent &e : batch)
                        order.push_back(
                            {key, e.unitCount()});
                })
    {
    }

    /** (key, units) per executed event, in dispatch order. */
    std::vector<std::pair<Scheduler::Key, uint32_t>>
    dispatched()
    {
        std::lock_guard<std::mutex> lock(mu);
        return order;
    }

    ThreadPool pool;
    Scheduler sched;

  private:
    std::mutex mu;
    std::vector<std::pair<Scheduler::Key, uint32_t>> order;
};

} // namespace

TEST(PrioDeadline, PromotionOrderAndCountsAreExact)
{
    // Session A's items age while it is pinned; C burns the logical
    // clock; B enqueues fresh work and lands ahead of A in the ready
    // list. With deadlineSlices = 2, A's oldest item (age 4 > 2) is
    // promoted past B on every dispatch until A drains — the full
    // dispatch sequence and promotion counts are exact.
    SchedulerConfig cfg;
    cfg.sliceEvents = 1;
    cfg.deadlineSlices = 2;
    RecordingScheduler rs(cfg);
    Scheduler &s = rs.sched;

    const Scheduler::Key A = 1, B = 2, C = 3;
    ASSERT_TRUE(s.tryAdmit(A));
    ASSERT_TRUE(s.tryAdmit(B));
    ASSERT_TRUE(s.tryAdmit(C));
    ASSERT_TRUE(s.pinWhenIdle(A));

    s.pause();
    EXPECT_TRUE(s.tryEnqueue(A, frames(3)).accepted()); // marks 0
    EXPECT_TRUE(s.tryEnqueue(C, frames(4)).accepted()); // marks 0
    s.resume();
    ASSERT_TRUE(s.wait(C)); // clock now at 4 dispatches

    s.pause();
    EXPECT_TRUE(s.tryEnqueue(B, frames(2)).accepted()); // marks 4
    s.unpin(A); // ready list: [B, A], A's front item mark 0
    s.resume();
    s.waitAll();

    // C,C,C,C then A promoted past B three times, then B,B.
    const std::vector<std::pair<Scheduler::Key, uint32_t>> expected =
        {{C, 1}, {C, 1}, {C, 1}, {C, 1},
         {A, 1}, {A, 1}, {A, 1}, {B, 1}, {B, 1}};
    EXPECT_EQ(rs.dispatched(), expected);
    EXPECT_EQ(s.queueStats(A).deadlinePromotions, 3u);
    EXPECT_EQ(s.queueStats(B).deadlinePromotions, 0u);
    EXPECT_EQ(s.queueStats(B).maxWaitSlices, 3u); // behind A's 3
    Stats st = s.stats();
    EXPECT_EQ(st.forClass(SchedClass::Interactive).deadlinePromotions,
              3u);
    EXPECT_EQ(st.itemsExecuted, 9u);
}

TEST(PrioDeadline, DisabledDeadlineKeepsFifoRotation)
{
    // The identical scenario with deadlineSlices = 0 must keep the
    // plain FIFO rotation: B dispatches first, then A and B
    // alternate — and nothing is ever counted as promoted.
    SchedulerConfig cfg;
    cfg.sliceEvents = 1;
    RecordingScheduler rs(cfg);
    Scheduler &s = rs.sched;

    const Scheduler::Key A = 1, B = 2, C = 3;
    ASSERT_TRUE(s.tryAdmit(A));
    ASSERT_TRUE(s.tryAdmit(B));
    ASSERT_TRUE(s.tryAdmit(C));
    ASSERT_TRUE(s.pinWhenIdle(A));

    s.pause();
    EXPECT_TRUE(s.tryEnqueue(A, frames(3)).accepted());
    EXPECT_TRUE(s.tryEnqueue(C, frames(4)).accepted());
    s.resume();
    ASSERT_TRUE(s.wait(C));

    s.pause();
    EXPECT_TRUE(s.tryEnqueue(B, frames(2)).accepted());
    s.unpin(A);
    s.resume();
    s.waitAll();

    const std::vector<std::pair<Scheduler::Key, uint32_t>> expected =
        {{C, 1}, {C, 1}, {C, 1}, {C, 1},
         {B, 1}, {A, 1}, {B, 1}, {A, 1}, {A, 1}};
    EXPECT_EQ(rs.dispatched(), expected);
    EXPECT_EQ(s.queueStats(A).deadlinePromotions, 0u);
    EXPECT_EQ(s.queueStats(B).deadlinePromotions, 0u);
}

// ---------------------------------------------------------------
// Per-session rate limits
// ---------------------------------------------------------------

TEST(PrioRate, RateLimitExactAccountingAgainstInstrumentedPolicy)
{
    // Engine-default rate limit 3 with slice 4: every dispatch turn
    // executes at most 3 unit items, so 14 staged items take exactly
    // ceil(14/3) = 5 slices, 4 of them clamped with work left. The
    // registerMaker'd CountingPolicy audits that the executed model
    // blocks equal the scheduler's item accounting, and the result
    // still matches the sequential replay.
    std::atomic<uint64_t> blocks{0};
    PolicyFactory factory;
    factory.registerMaker(
        PolicyKind::ReKV,
        [&blocks](const ModelConfig &m, const PolicySpec &spec) {
            ReKVConfig c;
            c.ratio = spec.ratio;
            return std::make_unique<CountingPolicy>(
                std::make_unique<ReKVPolicy>(m, c), &blocks);
        });

    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 4;
    cfg.sched.maxItemsPerRound = 3;
    cfg.factory = &factory;
    cfg.policy = PolicySpec::rekv(0.4f);
    Engine engine(cfg);

    SessionId id = engine.createSession();
    EXPECT_EQ(engine.sessionStats(id).rateLimit, 3u);
    engine.pause();
    engine.feedFrame(id, 7);
    engine.ask(id, 2, 6); // 7 + 1 + 6 = 14 unit items
    engine.resume();
    engine.wait(id);

    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.itemsExecuted, 14u);
    EXPECT_EQ(qs.slices, 5u);            // ceil(14/3)
    EXPECT_EQ(qs.rateLimitedSlices, 4u); // depths 14,11,8,5 clamped
    EXPECT_EQ(blocks.load(), 14u);
    Stats st = engine.stats();
    EXPECT_EQ(st.forClass(SchedClass::Interactive).rateLimitedSlices,
              4u);
    EXPECT_EQ(st.itemsExecuted, 14u);

    SessionScript script;
    script.name = "session";
    script.events.assign(7, {SessionEvent::Type::Frame, 0});
    script.events.push_back({SessionEvent::Type::Question, 2});
    script.events.push_back({SessionEvent::Type::Generate, 6});
    expectIdenticalRuns(
        engine.result(id),
        sequentialReplay(cfg.model, script, PolicySpec::rekv(0.4f),
                         42));
    engine.closeSession(id);

    // A per-session override of 0 disables the engine default: the
    // same 14 items now take ceil(14/4) = 4 unclamped slices.
    SessionOptions unlimited;
    unlimited.maxItemsPerRound = 0;
    SessionId free_id = engine.createSession(unlimited);
    EXPECT_EQ(engine.sessionStats(free_id).rateLimit, 0u);
    engine.pause();
    engine.feedFrame(free_id, 7);
    engine.ask(free_id, 2, 6);
    engine.resume();
    engine.wait(free_id);
    EXPECT_EQ(engine.sessionStats(free_id).slices, 4u);
    EXPECT_EQ(engine.sessionStats(free_id).rateLimitedSlices, 0u);
    engine.closeSession(free_id);
}

// ---------------------------------------------------------------
// setClass mid-stream
// ---------------------------------------------------------------

TEST(PrioSetClass, MidStreamSwitchKeepsResultsAndRetags)
{
    // Feed half a session as Interactive, retag to Bulk, feed the
    // rest: the result is byte-identical to the sequential replay of
    // the whole script, and the per-class slice accounting splits
    // exactly at the switch (staged, slice 2).
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 2;
    cfg.sched.classWeights = {2, 1};
    Engine engine(cfg);

    SessionId id = engine.createSession();
    EXPECT_EQ(engine.sessionStats(id).schedClass,
              SchedClass::Interactive);
    engine.pause();
    engine.feedFrame(id, 4); // 4 items -> 2 Interactive slices
    engine.resume();
    engine.wait(id);

    engine.setClass(id, SchedClass::Bulk);
    EXPECT_EQ(engine.sessionStats(id).schedClass, SchedClass::Bulk);
    engine.pause();
    engine.ask(id, 3, 3); // 4 items -> 2 Bulk slices
    engine.resume();
    engine.wait(id);

    Stats st = engine.stats();
    EXPECT_EQ(st.forClass(SchedClass::Interactive).slices, 2u);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).slices, 2u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).itemsExecuted, 4u);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).itemsExecuted, 4u);

    SessionScript script;
    script.name = "session";
    script.events.assign(4, {SessionEvent::Type::Frame, 0});
    script.events.push_back({SessionEvent::Type::Question, 3});
    script.events.push_back({SessionEvent::Type::Generate, 3});
    expectIdenticalRuns(
        engine.result(id),
        sequentialReplay(cfg.model, script, PolicySpec::full(), 42));
    engine.closeSession(id);
}

TEST(PrioSetClass, SwitchWhileQueuedMovesReadyListEntry)
{
    // Retag a session whose work is staged (it sits in the old
    // class's ready list): the entry must move lists, dispatch under
    // the new class, and drain completely.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.sched.sliceEvents = 1;
    cfg.sched.classWeights = {3, 1};
    Engine engine(cfg);

    SessionId id = engine.createSession(); // Interactive
    engine.pause();
    engine.feedFrame(id, 3);
    engine.setClass(id, SchedClass::Bulk); // moves the ready entry
    engine.setClass(id, SchedClass::Bulk); // same-class no-op
    engine.resume();
    engine.wait(id);

    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.schedClass, SchedClass::Bulk);
    EXPECT_EQ(qs.itemsExecuted, 3u);
    Stats st = engine.stats();
    EXPECT_EQ(st.forClass(SchedClass::Bulk).slices, 3u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).slices, 0u);
    engine.closeSession(id);
}

TEST(PrioSetClass, UnknownAndClosedIdsThrow)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    Engine engine(cfg);

    EXPECT_THROW(engine.setClass(999, SchedClass::Bulk),
                 std::out_of_range);
    SessionId id = engine.createSession();
    engine.feedFrame(id, 1);
    engine.closeSession(id);
    EXPECT_THROW(engine.setClass(id, SchedClass::Bulk),
                 std::out_of_range);

    // The engine stays serviceable after the error paths.
    SessionId next = engine.createSession();
    engine.setClass(next, SchedClass::Bulk);
    engine.ask(next, 2, 2);
    EXPECT_EQ(engine.result(next).generated.size(), 2u);
    engine.closeSession(next);
}

// ---------------------------------------------------------------
// Per-class latency observability
// ---------------------------------------------------------------

TEST(PrioStats, PerClassPercentileSampleCountsAreLogical)
{
    // Wall-clock values are never asserted — but the histogram
    // *sample counts* are logical (one per dispatched slice) and the
    // percentile estimates must be ordered and finite.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 2;
    cfg.sched.classWeights = {2, 1};
    Engine engine(cfg);

    engine.pause();
    SessionId inter = engine.createSession();
    engine.feedFrame(inter, 6); // 3 slices
    SessionOptions ob;
    ob.schedClass = SchedClass::Bulk;
    SessionId bulk = engine.createSession(ob);
    engine.feedFrame(bulk, 4); // 2 slices
    engine.resume();
    engine.waitAll();

    Stats st = engine.stats();
    const ClassStats &ci = st.forClass(SchedClass::Interactive);
    const ClassStats &cb = st.forClass(SchedClass::Bulk);
    EXPECT_EQ(ci.slices, 3u);
    EXPECT_EQ(cb.slices, 2u);
    EXPECT_EQ(ci.wait.samples(), ci.slices);
    EXPECT_EQ(ci.service.samples(), ci.slices);
    EXPECT_EQ(cb.wait.samples(), cb.slices);
    EXPECT_EQ(cb.service.samples(), cb.slices);
    EXPECT_LE(ci.wait.p50Ms(), ci.wait.p95Ms());
    EXPECT_LE(ci.wait.p95Ms(), ci.wait.p99Ms());
    EXPECT_LE(ci.service.p50Ms(), ci.service.p99Ms());
    EXPECT_GT(ci.service.p50Ms(), 0.0); // executing took > 1 ns

    // Per-session histograms carry the same logical counts, and a
    // merge across sessions adds them up (snapshot consistency).
    QueueStats qi = engine.sessionStats(inter);
    QueueStats qb = engine.sessionStats(bulk);
    EXPECT_EQ(qi.waitHist.samples(), qi.slices);
    EXPECT_EQ(qb.serviceHist.samples(), qb.slices);
    LatencyHistogram merged = qi.waitHist;
    merged.merge(qb.waitHist);
    EXPECT_EQ(merged.samples(), qi.slices + qb.slices);

    engine.closeSession(inter);
    engine.closeSession(bulk);
}

TEST(PrioStats, DefaultConfigReportsSingleClassUnlimited)
{
    // The PR-4 compatibility contract, observable: defaults keep
    // every session Interactive, no rate limit, no deadline, weights
    // {1,1}, and the Bulk class never dispatches.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.ask(id, 3, 2);
    engine.wait(id);

    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.schedClass, SchedClass::Interactive);
    EXPECT_EQ(qs.rateLimit, 0u);
    EXPECT_EQ(qs.rateLimitedSlices, 0u);
    EXPECT_EQ(qs.deadlinePromotions, 0u);

    Stats st = engine.stats();
    EXPECT_EQ(st.config.classWeights[0], 1u);
    EXPECT_EQ(st.config.classWeights[1], 1u);
    EXPECT_EQ(st.config.maxItemsPerRound, 0u);
    EXPECT_EQ(st.config.deadlineSlices, 0u);
    EXPECT_EQ(st.forClass(SchedClass::Bulk).slices, 0u);
    EXPECT_EQ(st.forClass(SchedClass::Interactive).slices, st.slices);
    engine.closeSession(id);
}

// ---------------------------------------------------------------
// Batched dispatch: marks, rate limits and per-member accounting
// ---------------------------------------------------------------

namespace
{

/** RecordingScheduler with the fused path armed: the batch executor
 *  records one unit per member (in member order) plus the fused-step
 *  composition, so dispatch traces stay exact under coalescing. */
class RecordingBatchScheduler
{
  public:
    RecordingBatchScheduler(SchedulerConfig cfg, BatchConfig batch)
        : pool(1),
          sched(
              pool, cfg,
              [this](Scheduler::Key key,
                     const std::vector<SessionEvent> &batch_events) {
                  std::lock_guard<std::mutex> lock(mu);
                  for (const SessionEvent &e : batch_events)
                      order.push_back({key, e.unitCount()});
              },
              batch,
              [this](const std::vector<Scheduler::Key> &members) {
                  std::lock_guard<std::mutex> lock(mu);
                  fusedSteps.push_back(members);
                  for (Scheduler::Key k : members)
                      order.push_back({k, 1});
              })
    {
    }

    /** (key, units) per executed event/member, in dispatch order. */
    std::vector<std::pair<Scheduler::Key, uint32_t>>
    dispatched()
    {
        std::lock_guard<std::mutex> lock(mu);
        return order;
    }

    /** Member lists of the fused steps, in execution order. */
    std::vector<std::vector<Scheduler::Key>>
    fused()
    {
        std::lock_guard<std::mutex> lock(mu);
        return fusedSteps;
    }

    ThreadPool pool;
    Scheduler sched;

  private:
    std::mutex mu;
    std::vector<std::pair<Scheduler::Key, uint32_t>> order;
    std::vector<std::vector<Scheduler::Key>> fusedSteps;
};

std::vector<SessionEvent>
gen(uint32_t tokens)
{
    return {{SessionEvent::Type::Generate, tokens}};
}

} // namespace

TEST(BatchDispatch, ExactTraceMixedEligibility)
{
    // A and B carry Generate runs; C carries frames (never fuses).
    // One worker, staged burst: the full dispatch order — who fused
    // with whom, which slices ran solo — is exact, and so is every
    // member's one-unit-per-step accounting.
    SchedulerConfig cfg;
    cfg.sliceEvents = 4;
    BatchConfig batch;
    batch.enabled = true;
    RecordingBatchScheduler rs(cfg, batch);
    Scheduler &s = rs.sched;

    const Scheduler::Key A = 1, B = 2, C = 3;
    ASSERT_TRUE(s.tryAdmit(A));
    ASSERT_TRUE(s.tryAdmit(B));
    ASSERT_TRUE(s.tryAdmit(C));

    s.pause();
    EXPECT_TRUE(s.tryEnqueue(A, gen(3)).accepted());
    EXPECT_TRUE(s.tryEnqueue(B, gen(2)).accepted());
    EXPECT_TRUE(s.tryEnqueue(C, frames(2)).accepted());
    s.resume();
    s.waitAll();

    // Step 1 fuses [A,B] (C's front is a Frame — ineligible); C's
    // solo slice takes both frames in one go (slice budget 4); then
    // [A,B] fuse again, B drains, and A's last unit runs solo.
    const std::vector<std::pair<Scheduler::Key, uint32_t>> expected =
        {{A, 1}, {B, 1}, {C, 1}, {C, 1}, {A, 1}, {B, 1}, {A, 1}};
    EXPECT_EQ(rs.dispatched(), expected);
    const std::vector<std::vector<Scheduler::Key>> expected_fused = {
        {A, B}, {A, B}};
    EXPECT_EQ(rs.fused(), expected_fused);

    // Per-member accounting: every fused step cost its members one
    // slice and one unit item each.
    EXPECT_EQ(s.queueStats(A).slices, 3u);
    EXPECT_EQ(s.queueStats(A).itemsExecuted, 3u);
    EXPECT_EQ(s.queueStats(B).slices, 2u);
    EXPECT_EQ(s.queueStats(B).itemsExecuted, 2u);
    EXPECT_EQ(s.queueStats(C).slices, 1u);
    EXPECT_EQ(s.queueStats(C).itemsExecuted, 2u);

    Stats st = s.stats();
    EXPECT_EQ(st.batch.coalescedSteps, 2u);
    EXPECT_EQ(st.batch.coalescedMembers, 4u);
    EXPECT_EQ(st.batch.soloSteps, 1u); // A's last Generate unit.
    EXPECT_EQ(st.itemsExecuted, 7u);
    EXPECT_EQ(st.slices, 6u); // 2 fused x2 members + C + A solo.
}

TEST(BatchDispatch, SplitGenerateKeepsDeadlineMarkNoRateLimitNoise)
{
    // The two bugfix contracts of batched dispatch, observed through
    // exact traces:
    //  - a Generate split by fused one-unit steps keeps its enqueue
    //    mark, so its *remainder* still ages for deadline promotion
    //    (C is promoted twice; the second promotion is only possible
    //    because the first fused step did not refresh C's mark);
    //  - the one-unit clamp of a fused step is not a rate-limit
    //    clamp: every queue here carries rateLimit 1 with depth > 1,
    //    yet rateLimitedSlices stays zero because no solo slice was
    //    ever clamped.
    SchedulerConfig cfg;
    cfg.sliceEvents = 4;
    cfg.deadlineSlices = 2;
    BatchConfig batch;
    batch.enabled = true;
    batch.maxBatch = 2;
    RecordingBatchScheduler rs(cfg, batch);
    Scheduler &s = rs.sched;

    const Scheduler::Key A = 1, B = 2, C = 3;
    ASSERT_TRUE(s.tryAdmit(A, SchedClass::Interactive, 1));
    ASSERT_TRUE(s.tryAdmit(B, SchedClass::Interactive, 1));
    ASSERT_TRUE(s.tryAdmit(C, SchedClass::Interactive, 1));
    ASSERT_TRUE(s.pinWhenIdle(C));

    // Burst 1: C's Generate{2} ages while pinned (marks 0); A and B
    // run 3 two-member fused steps, advancing the clock to 6.
    s.pause();
    EXPECT_TRUE(s.tryEnqueue(C, gen(2)).accepted());
    EXPECT_TRUE(s.tryEnqueue(A, gen(3)).accepted());
    EXPECT_TRUE(s.tryEnqueue(B, gen(3)).accepted());
    s.resume();
    // waitAll() would wait on pinned C (never idle while pinned).
    ASSERT_TRUE(s.wait(A));
    ASSERT_TRUE(s.wait(B));

    // Burst 2: fresh work for A and B (marks 6), C unpinned behind
    // them. C's front item (mark 0, age 6 > 2) is promoted past
    // [A, B] and fuses with A (maxBatch 2). The fused step consumes
    // one of C's two units; the remainder keeps mark 0, so C is
    // promoted AGAIN past B and fuses with it.
    s.pause();
    EXPECT_TRUE(s.tryEnqueue(A, gen(1)).accepted());
    EXPECT_TRUE(s.tryEnqueue(B, gen(1)).accepted());
    s.unpin(C);
    s.resume();
    s.waitAll();

    const std::vector<std::vector<Scheduler::Key>> expected_fused = {
        {A, B}, {A, B}, {A, B}, {C, A}, {C, B}};
    EXPECT_EQ(rs.fused(), expected_fused);
    EXPECT_EQ(s.queueStats(C).deadlinePromotions, 2u);
    EXPECT_EQ(s.queueStats(A).deadlinePromotions, 0u);
    EXPECT_EQ(s.queueStats(B).deadlinePromotions, 0u);

    // rateLimit 1 never fired: the one-unit steps came from fusing.
    EXPECT_EQ(s.queueStats(A).rateLimitedSlices, 0u);
    EXPECT_EQ(s.queueStats(B).rateLimitedSlices, 0u);
    EXPECT_EQ(s.queueStats(C).rateLimitedSlices, 0u);
    Stats st = s.stats();
    EXPECT_EQ(st.forClass(SchedClass::Interactive).rateLimitedSlices,
              0u);
    EXPECT_EQ(st.batch.coalescedSteps, 5u);
    EXPECT_EQ(st.batch.maxBatchObserved, 2u);
    EXPECT_EQ(st.itemsExecuted, 10u);
}

TEST(BatchDispatch, SoloRateLimitAccountingSurvivesArming)
{
    // With the fused path armed but no peers to fuse with, the solo
    // path's rate-limit clamp (and its accounting) is unchanged.
    SchedulerConfig cfg;
    cfg.sliceEvents = 4;
    BatchConfig batch;
    batch.enabled = true;
    RecordingBatchScheduler rs(cfg, batch);
    Scheduler &s = rs.sched;

    const Scheduler::Key D = 9;
    ASSERT_TRUE(s.tryAdmit(D, SchedClass::Interactive, 2));
    s.pause();
    EXPECT_TRUE(s.tryEnqueue(D, gen(4)).accepted());
    s.resume();
    s.waitAll();

    // Slice 1 clamps 4 -> 2 with work left (rate limited); slice 2
    // takes the remaining 2 unclamped.
    EXPECT_EQ(s.queueStats(D).slices, 2u);
    EXPECT_EQ(s.queueStats(D).rateLimitedSlices, 1u);
    EXPECT_EQ(s.queueStats(D).itemsExecuted, 4u);
    Stats st = s.stats();
    EXPECT_EQ(st.batch.coalescedSteps, 0u);
    EXPECT_EQ(st.batch.soloSteps, 4u);
    EXPECT_TRUE(rs.fused().empty());
}
