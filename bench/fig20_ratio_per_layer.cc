/**
 * @file
 * Fig. 20 reproduction: retrieval ratio per transformer layer and
 * per attention head under ReSV vs. the uniform ratio of the fixed
 * top-k baselines (InfiniGenP 50%, ReKV ~58%).
 *
 * Paper anchors: ReSV's per-layer ratios range from ~4.2% on
 * low-need layers to ~44% on critical ones, averaging 3.0x fewer
 * retrieved tokens than ReKV.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "core/resv.hh"
#include "pipeline/streaming_session.hh"
#include "video/workload.hh"

using namespace vrex;

int
main()
{
    ModelConfig cfg = ModelConfig::smallVideo();
    ResvConfig rc;
    ResvPolicy resv(cfg, rc);
    StreamingSession session(cfg, &resv, 42);
    SessionScript script = WorkloadGenerator::coinAverage(11);
    SessionRunResult r = session.run(script);

    const double rekv_ratio = 0.584;       // Table II average.
    const double infinigenp_ratio = 0.508;

    bench::header("Fig. 20: retrieval ratio per layer (ReSV, mean "
                  "over heads)");
    std::printf("%8s %12s %16s %16s\n", "layer", "ReSV %",
                "InfiniGenP %", "ReKV %");
    RunningStat overall;
    double lo = 1.0, hi = 0.0;
    for (size_t l = 0; l < r.layerHeadRatio.size(); ++l) {
        double mean_ratio = mean(std::vector<double>(
            r.layerHeadRatio[l].begin(), r.layerHeadRatio[l].end()));
        overall.add(mean_ratio);
        lo = std::min(lo, mean_ratio);
        hi = std::max(hi, mean_ratio);
        std::printf("%8zu %11.1f%% %15.1f%% %15.1f%%\n", l,
                    100.0 * mean_ratio, 100.0 * infinigenp_ratio,
                    100.0 * rekv_ratio);
    }
    std::printf("\nReSV layer ratios span %.1f%% .. %.1f%% "
                "(paper: 4.2%% .. 44.0%%)\n", 100.0 * lo, 100.0 * hi);
    std::printf("average %.1f%% -> %.1fx fewer tokens than ReKV "
                "(paper: 3.0x)\n", 100.0 * overall.mean(),
                rekv_ratio / overall.mean());

    bench::header("Fig. 20: retrieval ratio per head (layer 3)");
    std::printf("%8s %12s\n", "head", "ReSV %");
    if (r.layerHeadRatio.size() > 3) {
        for (size_t h = 0; h < r.layerHeadRatio[3].size(); ++h)
            std::printf("%8zu %11.1f%%\n", h,
                        100.0 * r.layerHeadRatio[3][h]);
    }
    bench::note("the spread across layers/heads is exactly what "
                "fixed top-k cannot adapt to (paper SIII-C)");
    return 0;
}
