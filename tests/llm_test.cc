/**
 * @file
 * Unit tests for the LLM runtime: config arithmetic, KV cache
 * bookkeeping, attention (full vs. selected), and the iterative
 * prefill / generation workflow.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "llm/attention.hh"
#include "llm/config.hh"
#include "llm/kv_cache.hh"
#include "llm/model.hh"
#include "testutil.hh"

using namespace vrex;

TEST(ModelConfig, Llama3Geometry)
{
    ModelConfig c = ModelConfig::llama3_8b();
    EXPECT_EQ(c.headDim(), 128u);
    EXPECT_EQ(c.groupSize(), 4u);
    // ~8B parameters.
    EXPECT_GT(c.paramCount(), 7'000'000'000ull);
    EXPECT_LT(c.paramCount(), 9'000'000'000ull);
    // GQA KV: 2 * 8 heads * 128 dims * 2 bytes = 4 KiB/token/layer.
    EXPECT_EQ(c.kvBytesPerTokenPerLayer(2.0), 4096u);
    EXPECT_EQ(c.kvBytesPerToken(2.0), 4096u * 32u);
}

TEST(ModelConfig, FlopsScaleLinearly)
{
    ModelConfig c = ModelConfig::tiny();
    EXPECT_DOUBLE_EQ(c.denseFlops(10), 10.0 * c.denseFlops(1));
    EXPECT_DOUBLE_EQ(c.attentionFlops(2, 6),
                     12.0 * c.attentionFlops(1, 1));
}

TEST(KVCache, AppendAndMeta)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    EXPECT_EQ(kv.tokenCount(), 0u);

    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    Matrix k(3, kv_dim), v(3, kv_dim);
    kv.beginTokens(3, 0, TokenStage::VideoFrame);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        kv.appendLayer(l, k, v);

    EXPECT_EQ(kv.tokenCount(), 3u);
    EXPECT_EQ(kv.frameCount(), 1u);
    EXPECT_EQ(kv.tokenMeta(0).frameId, 0);
    EXPECT_EQ(kv.tokenMeta(2).position, 2u);
    EXPECT_EQ(kv.layer(0).keys.rows(), 3u);

    kv.beginTokens(2, -1, TokenStage::QuestionText);
    Matrix k2(2, kv_dim), v2(2, kv_dim);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        kv.appendLayer(l, k2, v2);
    EXPECT_EQ(kv.tokenCount(), 5u);
    EXPECT_EQ(kv.tokenMeta(3).frameId, -1);
    EXPECT_EQ(kv.frameCount(), 1u);
}

TEST(KVCache, FrameTokenRange)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    Matrix blk(4, kv_dim);
    for (int f = 0; f < 3; ++f) {
        kv.beginTokens(4, f, TokenStage::VideoFrame);
        for (uint32_t l = 0; l < cfg.nLayers; ++l)
            kv.appendLayer(l, blk, blk);
    }
    auto [first, last] = kv.frameTokenRange(1);
    EXPECT_EQ(first, 4u);
    EXPECT_EQ(last, 8u);
    auto [f0, l0] = kv.frameTokenRange(99);
    EXPECT_EQ(f0, 0u);
    EXPECT_EQ(l0, 0u);
}

TEST(KVCache, TotalBytesAndClear)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    Matrix blk(5, kv_dim);
    kv.beginTokens(5, 0, TokenStage::VideoFrame);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        kv.appendLayer(l, blk, blk);
    EXPECT_EQ(kv.totalBytes(2.0), 5u * cfg.kvBytesPerToken(2.0));
    kv.clear();
    EXPECT_EQ(kv.tokenCount(), 0u);
    EXPECT_EQ(kv.frameCount(), 0u);
}

using testutil::fillLayer;

TEST(Attention, SelectAllMatchesNullSelection)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(1);
    fillLayer(kv, cfg, 6, rng);

    Matrix q(2, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);

    Matrix out1, out2;
    LayerSelection all = LayerSelection::full(cfg.nKvHeads);
    attentionForward(cfg, q, kv.layer(0), 4, nullptr, out1);
    attentionForward(cfg, q, kv.layer(0), 4, &all, out2);
    for (uint32_t i = 0; i < out1.size(); ++i)
        EXPECT_FLOAT_EQ(out1.raw()[i], out2.raw()[i]);
}

TEST(Attention, ExplicitFullIndicesMatchSelectAll)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(2);
    fillLayer(kv, cfg, 7, rng);

    Matrix q(1, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);

    LayerSelection explicit_sel;
    explicit_sel.kvHeads.resize(cfg.nKvHeads);
    for (auto &h : explicit_sel.kvHeads) {
        h.selectAll = false;
        for (uint32_t i = 0; i < 6; ++i)
            h.indices.push_back(i);
    }
    Matrix out1, out2;
    attentionForward(cfg, q, kv.layer(0), 6, nullptr, out1);
    attentionForward(cfg, q, kv.layer(0), 6, &explicit_sel, out2);
    for (uint32_t i = 0; i < out1.size(); ++i)
        EXPECT_NEAR(out1.raw()[i], out2.raw()[i], 1e-5f);
}

TEST(Attention, EmptySelectionAttendsOnlyBlock)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(3);
    fillLayer(kv, cfg, 5, rng);

    Matrix q(1, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);

    LayerSelection none;
    none.kvHeads.resize(cfg.nKvHeads);
    for (auto &h : none.kvHeads)
        h.selectAll = false;

    Matrix out;
    attentionForward(cfg, q, kv.layer(0), 4, &none, out);
    // The single block token attends only itself: output head h
    // equals V row 4 for that head.
    for (uint32_t h = 0; h < cfg.nHeads; ++h) {
        uint32_t kv_head = h / cfg.groupSize();
        const float *vvec =
            kv.layer(0).values.row(4) + kv_head * cfg.headDim();
        for (uint32_t d = 0; d < cfg.headDim(); ++d)
            EXPECT_NEAR(out.at(0, h * cfg.headDim() + d), vvec[d],
                        1e-5f);
    }
}

TEST(Attention, ZeroLengthQueryBlockYieldsEmptyOutput)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg); // Empty: T == 0 must not read the cache.
    Matrix q(0, cfg.nHeads * cfg.headDim());
    Matrix out(3, 3); // Stale shape, must be replaced.
    attentionForward(cfg, q, kv.layer(0), 0, nullptr, out);
    EXPECT_EQ(out.rows(), 0u);
    EXPECT_EQ(out.cols(), cfg.dModel);
}

TEST(AttentionDeathTest, RejectsCacheMissingTheBlock)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(20);
    fillLayer(kv, cfg, 5, rng);
    Matrix q(1, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);
    Matrix out;
    // The cache holds 5 rows; past_len 5 + block 1 claims 6.
    EXPECT_DEATH(
        attentionForward(cfg, q, kv.layer(0), 5, nullptr, out),
        "block appended to the cache");
    // And past_len 2 + block 1 leaves 2 unexplained trailing rows.
    EXPECT_DEATH(
        attentionForward(cfg, q, kv.layer(0), 2, nullptr, out),
        "block appended to the cache");
}

TEST(AttentionDeathTest, RejectsMalformedSelection)
{
    ModelConfig cfg = ModelConfig::tiny();
    KVCache kv(cfg);
    Rng rng(21);
    fillLayer(kv, cfg, 1, rng);
    Matrix q(1, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);
    Matrix out;

    LayerSelection wrong_heads;
    wrong_heads.kvHeads.resize(cfg.nKvHeads + 1);
    EXPECT_DEATH(
        attentionForward(cfg, q, kv.layer(0), 0, &wrong_heads, out),
        "wrong head count");

    // past_len == 0: only selectAll or an empty index list is legal.
    LayerSelection stale;
    stale.kvHeads.resize(cfg.nKvHeads);
    for (auto &h : stale.kvHeads) {
        h.selectAll = false;
        h.indices = {0};
    }
    EXPECT_DEATH(
        attentionForward(cfg, q, kv.layer(0), 0, &stale, out),
        "beyond the past");
}

TEST(Attention, BatchedStepMatchesSoloBitExact)
{
    ModelConfig cfg = ModelConfig::tiny();
    Rng rng(22);
    // Three sessions with distinct cache depths and selections.
    KVCache kv_a(cfg), kv_b(cfg), kv_c(cfg);
    fillLayer(kv_a, cfg, 6, rng);
    fillLayer(kv_b, cfg, 10, rng);
    fillLayer(kv_c, cfg, 1, rng); // A freshly started session.

    LayerSelection partial;
    partial.kvHeads.resize(cfg.nKvHeads);
    for (auto &h : partial.kvHeads) {
        h.selectAll = false;
        h.indices = {0, 2, 4};
    }
    LayerSelection all = LayerSelection::full(cfg.nKvHeads);

    Matrix q(3, cfg.nHeads * cfg.headDim());
    rng.fillGaussian(q.raw(), q.size(), 1.0f);

    std::vector<AttentionBatchItem> items = {
        {&kv_a.layer(0), 5, nullptr},
        {&kv_b.layer(0), 9, &partial},
        {&kv_c.layer(0), 0, &all},
    };
    Matrix fused;
    attentionForwardBatched(cfg, q, items, fused);
    ASSERT_EQ(fused.rows(), 3u);
    ASSERT_EQ(fused.cols(), cfg.dModel);

    for (uint32_t i = 0; i < 3; ++i) {
        Matrix qi(1, q.cols());
        for (uint32_t c = 0; c < q.cols(); ++c)
            qi.at(0, c) = q.at(i, c);
        Matrix solo;
        attentionForward(cfg, qi, *items[i].kv, items[i].pastLen,
                         items[i].sel, solo);
        for (uint32_t c = 0; c < cfg.dModel; ++c)
            EXPECT_EQ(fused.at(i, c), solo.at(0, c))
                << "session " << i << " col " << c;
    }
}

TEST(LayerSelection, SelectedRatio)
{
    LayerSelection sel;
    sel.kvHeads.resize(2);
    sel.kvHeads[0].selectAll = true;
    sel.kvHeads[1].selectAll = false;
    sel.kvHeads[1].indices = {0, 1};
    EXPECT_DOUBLE_EQ(sel.selectedRatio(4), (1.0 + 0.5) / 2.0);
    EXPECT_DOUBLE_EQ(sel.selectedRatio(0), 1.0);
}

TEST(Model, IterativePrefillGrowsCache)
{
    ModelConfig cfg = ModelConfig::tiny();
    Model model(cfg, 42);
    Rng rng(4);

    Matrix frame(3, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    model.prefillFrame(frame, 0);
    EXPECT_EQ(model.cache().tokenCount(), 3u);
    model.prefillFrame(frame, 1);
    EXPECT_EQ(model.cache().tokenCount(), 6u);
    EXPECT_EQ(model.cache().frameCount(), 2u);

    model.prefillText({1, 2, 3});
    EXPECT_EQ(model.cache().tokenCount(), 9u);

    auto ids = model.generate(4);
    EXPECT_EQ(ids.size(), 4u);
    EXPECT_EQ(model.cache().tokenCount(), 13u);
    for (uint32_t id : ids)
        EXPECT_LT(id, cfg.vocabSize);
}

TEST(Model, DeterministicAcrossInstances)
{
    ModelConfig cfg = ModelConfig::tiny();
    Model m1(cfg, 42), m2(cfg, 42);
    Rng rng(5);
    Matrix frame(2, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    m1.prefillFrame(frame, 0);
    m2.prefillFrame(frame, 0);
    m1.prefillText({7});
    m2.prefillText({7});
    auto a = m1.generate(3);
    auto b = m2.generate(3);
    EXPECT_EQ(a, b);
}

TEST(Model, HistoryRecordsStats)
{
    ModelConfig cfg = ModelConfig::tiny();
    Model model(cfg, 42);
    Rng rng(6);
    Matrix frame(2, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    model.prefillFrame(frame, 0);
    model.prefillFrame(frame, 1);
    ASSERT_EQ(model.history().size(), 2u);
    EXPECT_EQ(model.history()[0].pastLen, 0u);
    EXPECT_EQ(model.history()[1].pastLen, 2u);
    EXPECT_EQ(model.history()[1].layerRatios.size(), cfg.nLayers);
    model.clearHistory();
    EXPECT_TRUE(model.history().empty());
}

TEST(Model, ResetSessionClearsState)
{
    ModelConfig cfg = ModelConfig::tiny();
    Model model(cfg, 42);
    Rng rng(7);
    Matrix frame(2, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    model.prefillFrame(frame, 0);
    model.resetSession();
    EXPECT_EQ(model.cache().tokenCount(), 0u);
    EXPECT_TRUE(model.history().empty());
}

TEST(Model, LogitsMatchVocab)
{
    ModelConfig cfg = ModelConfig::tiny();
    Model model(cfg, 42);
    Rng rng(8);
    Matrix frame(1, cfg.dModel);
    rng.fillGaussian(frame.raw(), frame.size(), 1.0f);
    model.prefillFrame(frame, 0);
    auto logits = model.lastLogits();
    EXPECT_EQ(logits.size(), cfg.vocabSize);
}
