/**
 * @file
 * Synthetic streaming-video latent generator.
 *
 * Substitute for real COIN video frames: each scene has a base latent
 * that drifts slowly frame to frame; scene cuts re-randomize it. Each
 * spatial token has a persistent identity offset within a scene plus
 * small per-frame noise. This reproduces the property ReSV exploits —
 * high spatial-temporal similarity of key tokens across adjacent
 * frames (paper Fig. 7a) — with controllable strength.
 */

#ifndef VREX_VIDEO_FRAME_GENERATOR_HH
#define VREX_VIDEO_FRAME_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serial.hh"
#include "tensor/matrix.hh"

namespace vrex
{

/** Statistical knobs of the synthetic video stream. */
struct VideoConfig
{
    uint32_t tokensPerFrame = 16;
    uint32_t latentDim = 32;
    /** Per-frame scene-latent drift stddev (higher = less similar). */
    double driftRate = 0.08;
    /** Probability a frame starts a new scene. */
    double sceneCutProb = 0.04;
    /** Per-token per-frame iid noise stddev. */
    double tokenNoise = 0.08;
    /** Stddev of persistent per-token identity offsets. */
    double tokenIdentity = 0.6;
};

/** Produces one frame of token latents at a time. */
class FrameGenerator
{
  public:
    FrameGenerator(const VideoConfig &config, uint64_t seed,
                   const std::string &stream_name = "video");

    /** Latents of the next frame: tokensPerFrame x latentDim. */
    Matrix nextFrameLatents();

    uint32_t framesGenerated() const { return frameCount; }
    uint32_t sceneCount() const { return scenes; }

    const VideoConfig &config() const { return cfg; }

    /**
     * Serialize the full stream position (RNG state, current scene
     * latent/offsets, counters). Restoring onto a generator built
     * with the same config + seed resumes the stream bit-exactly.
     */
    void serialize(serial::ByteWriter &w) const;
    void restore(serial::ByteReader &r);

  private:
    void startScene();

    VideoConfig cfg;
    Rng rng;
    std::vector<float> sceneLatent;
    std::vector<std::vector<float>> tokenOffsets;
    uint32_t frameCount = 0;
    uint32_t scenes = 0;
};

} // namespace vrex

#endif // VREX_VIDEO_FRAME_GENERATOR_HH
