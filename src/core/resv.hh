/**
 * @file
 * ReSV: the training-free dynamic KV cache retrieval policy (paper
 * §IV). Combines hash-bit key clustering (HashEncoder + HCTable, one
 * table per layer and KV head) with WiCSum thresholding to pick, per
 * layer and head, the minimal set of past tokens attention must read.
 */

#ifndef VREX_CORE_RESV_HH
#define VREX_CORE_RESV_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "core/wicsum.hh"
#include "llm/selection.hh"

namespace vrex
{

/** Hyper-parameters of ReSV (paper defaults: N_hp=32, Th_hd=7). */
struct ResvConfig
{
    uint32_t nHp = 32;         //!< Hash signature bits.
    uint32_t thHd = 7;         //!< Hamming clustering threshold.
    /** WiCSum mass ratio Th_r-wics. The paper tunes this empirically
     *  per deployment (0.3 on COIN); 0.5 is the calibrated operating
     *  point for this repo's synthetic score distributions, keeping
     *  the accuracy-proxy drop under 1% at the lowest ratios. */
    float thrWics = 0.5f;
    uint32_t nBuckets = 16;    //!< Early-exit sorter buckets.
    bool earlyExit = true;     //!< Use the WTU bucket dataflow.
    bool clustering = true;    //!< false = Fig. 19 "w/o clustering".
    uint64_t seed = 7;         //!< Hyperplane seed.
};

/** Aggregate work counters, split by pipeline stage. */
struct ResvCounters
{
    uint64_t predictionMacs = 0;    //!< Q x Key_cluster^T MACs.
    uint64_t clustersScanned = 0;
    uint64_t clustersSelected = 0;
    uint64_t tokensSelected = 0;
    uint64_t pastTokens = 0;        //!< Sum of past lengths seen.
    uint64_t wicsumScanned = 0;     //!< Elements the sorter touched.
    uint64_t selectCalls = 0;

    double
    selectedRatio() const
    {
        return pastTokens
            ? static_cast<double>(tokensSelected) / pastTokens
            : 1.0;
    }
};

/** The ReSV selection policy. */
class ResvPolicy : public SelectionPolicy
{
  public:
    ResvPolicy(const ModelConfig &model, const ResvConfig &config);

    void onBlockAppended(uint32_t layer, const KVCache &cache,
                         uint32_t block_start, uint32_t block_len,
                         TokenStage stage) override;

    LayerSelection select(uint32_t layer, const Matrix &q,
                          const KVCache &cache, uint32_t past_len,
                          TokenStage stage) override;

    void reset() override;

    const ResvConfig &config() const { return cfg; }

    /** The HC table of (layer, kv_head). */
    const HCTable &table(uint32_t layer, uint32_t kv_head) const;

    /** Work counters for the frame-processing stage. */
    const ResvCounters &frameCounters() const { return frameCtr; }

    /** Work counters for the text-generation stage. */
    const ResvCounters &textCounters() const { return textCtr; }

    /** Total HC-table bytes across layers and heads. */
    uint64_t tableMemoryBytes() const;

    /** Mean tokens per cluster across all tables. */
    double avgClusterSize() const;

    /** Total Hamming comparisons performed (HCU work). */
    uint64_t totalHammingComparisons() const;

    /** HC tables + stage counters (encoder is seed-deterministic). */
    void serializeState(serial::ByteWriter &w) const override;
    void restoreState(serial::ByteReader &r) override;

  private:
    ResvCounters &countersFor(TokenStage stage);

    LayerSelection selectClustered(uint32_t layer, const Matrix &q,
                                   uint32_t past_len,
                                   ResvCounters &ctr);

    LayerSelection selectUnclustered(uint32_t layer, const Matrix &q,
                                     const KVCache &cache,
                                     uint32_t past_len,
                                     ResvCounters &ctr);

    ModelConfig model;
    ResvConfig cfg;
    HashEncoder encoder;
    /** tables[layer * nKvHeads + head]. */
    std::vector<HCTable> tables;
    ResvCounters frameCtr;
    ResvCounters textCtr;
};

} // namespace vrex

#endif // VREX_CORE_RESV_HH
