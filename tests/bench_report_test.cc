/**
 * @file
 * Tests for the bench reporting subsystem: Reporter rendering (human
 * / JSON / CSV), the golden record schema, the shared arg parser, the
 * json_lite reader, and the baseline drift comparison that CI runs
 * against bench/baseline.json.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"
#include "common/bench_compare.hh"
#include "common/bench_report.hh"
#include "common/json_lite.hh"

using namespace vrex;
using namespace vrex::bench;

namespace
{

/** The fig04-shaped reporter used by the golden-output tests. */
Reporter
makeFig04Like()
{
    Reporter rep("fig04");
    rep.beginPanel("a", "Fig. 4a: memory footprint");
    rep.add("1min", "kv_cache", 3.15, "GB", 1);
    rep.add("1min", "total", 18.2, "GB", 1);
    rep.add("10min", "kv_cache", 31.5, "GB", 1);
    rep.add("10min", "total", 46.5, "GB", 1);
    rep.note("exceeds_32gb_edge=1 marks oversize footprints");
    rep.beginPanel("b", "Fig. 4b: latency breakdown");
    rep.add("40K", "prefill", 69.6, "%", 1);
    return rep;
}

/** The table2-shaped reporter: mixed panels, text cell, OOM-less. */
Reporter
makeTable2Like()
{
    Reporter rep("table2");
    rep.beginPanel("accuracy", "Table II: accuracy proxy");
    rep.add("InfiniGen", "Step", 49.0, "", 1);
    rep.add("InfiniGen", "Avg", 61.0, "", 1);
    rep.add("V-Rex's ReSV", "Step", 48.2, "", 1);
    rep.add("V-Rex's ReSV", "Avg", 60.2, "", 1);
    rep.beginPanel("frame_ratio", "Table II: frame ratio");
    rep.add("InfiniGen", "Step", 100.0, "%", 1);
    rep.addText("VideoLLM-Online", "Step", "-");
    return rep;
}

} // namespace

TEST(FormatValue, RoundTripsExactly)
{
    for (double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 2.5e17,
                     248.93754841905061}) {
        std::string s = formatValue(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(formatValue(std::nan("")), "nan");
    EXPECT_EQ(formatValue(std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(formatValue(-std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(KLabel, SubThousandValuesPrintExactly)
{
    // Regression: integer division used to print "0K" for anything
    // below 1000 (cache=0 and the 500-token operating point alike).
    EXPECT_EQ(kLabel(0), "0");
    EXPECT_EQ(kLabel(1), "1");
    EXPECT_EQ(kLabel(500), "500");
    EXPECT_EQ(kLabel(999), "999");
}

TEST(KLabel, ThousandsRoundToNearest)
{
    EXPECT_EQ(kLabel(1000), "1K");
    EXPECT_EQ(kLabel(1499), "1K");
    EXPECT_EQ(kLabel(1500), "2K");
    EXPECT_EQ(kLabel(40000), "40K");
    EXPECT_EQ(kLabel(80000), "80K");
}

TEST(JsonLite, ParsesScalarsAndNesting)
{
    std::string err;
    json::Value v = json::parse(
        R"({"a": 1.5, "b": "x\ny", "c": [1, null, true], "d": {}})",
        &err);
    ASSERT_TRUE(v.isObject()) << err;
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    EXPECT_EQ(v.strOr("b", ""), "x\ny");
    ASSERT_TRUE(v.find("c")->isArray());
    EXPECT_EQ(v.find("c")->array().size(), 3u);
    EXPECT_TRUE(v.find("c")->array()[1].isNull());
    EXPECT_TRUE(v.find("c")->array()[2].boolean());
    EXPECT_TRUE(v.find("d")->isObject());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonLite, ParsesEscapes)
{
    std::string err;
    json::Value v =
        json::parse(R"(["\"\\\t\u0041\u00e9"])", &err);
    ASSERT_TRUE(v.isArray()) << err;
    EXPECT_EQ(v.array()[0].str(), "\"\\\tA\xc3\xa9");
}

TEST(JsonLite, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "[1] x", "\"unterminated", "[1e999]", "{\"a\": nan}"}) {
        std::string err;
        json::Value v = json::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(JsonLite, QuoteEscapesControlCharacters)
{
    EXPECT_EQ(json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(json::quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Reporter, JsonGolden)
{
    Reporter rep("demo");
    rep.beginPanel("p", "Panel");
    rep.add("r1", "m1", 1.5, "ms");
    rep.add("r1", "m2", std::nan(""), "");
    const char *want =
        "{\n"
        "  \"schema\": \"vrex-bench-1\",\n"
        "  \"bench\": \"demo\",\n"
        "  \"metrics\": [\n"
        "    {\"bench\": \"demo\", \"panel\": \"p\", \"row\": \"r1\","
        " \"metric\": \"m1\", \"value\": 1.5, \"unit\": \"ms\"},\n"
        "    {\"bench\": \"demo\", \"panel\": \"p\", \"row\": \"r1\","
        " \"metric\": \"m2\", \"value\": null, \"unit\": \"\"}\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(rep.renderJson(), want);
}

TEST(Reporter, CsvGoldenWithEscaping)
{
    Reporter rep("demo");
    rep.beginPanel("p", "Panel");
    rep.add("row,with,commas", "m\"q", 2.0, "x");
    const char *want =
        "bench,panel,row,metric,value,unit\n"
        "demo,p,\"row,with,commas\",\"m\"\"q\",2,x\n";
    EXPECT_EQ(rep.renderCsv(), want);
}

TEST(Reporter, JsonRoundTripsThroughLoader)
{
    Reporter rep = makeFig04Like();
    LoadedReport loaded;
    std::string err;
    ASSERT_TRUE(loadReport(rep.renderJson(), loaded, err)) << err;
    EXPECT_EQ(loaded.bench, "fig04");
    ASSERT_EQ(loaded.records.size(), rep.metrics().size());
    for (size_t i = 0; i < loaded.records.size(); ++i) {
        const Record &r = loaded.records[i];
        const Metric &m = rep.metrics()[i];
        EXPECT_EQ(r.panel, m.panel);
        EXPECT_EQ(r.row, m.row);
        EXPECT_EQ(r.metric, m.metric);
        EXPECT_EQ(r.unit, m.unit);
        EXPECT_EQ(r.value, m.value);
    }
}

TEST(Reporter, CsvRoundTripMatchesJson)
{
    for (Reporter rep : {makeFig04Like(), makeTable2Like()}) {
        LoadedReport fromJson;
        std::vector<Record> fromCsv;
        std::string err;
        ASSERT_TRUE(loadReport(rep.renderJson(), fromJson, err))
            << err;
        ASSERT_TRUE(loadCsv(rep.renderCsv(), fromCsv, err)) << err;
        EXPECT_TRUE(sameRecords(fromJson, fromCsv, err)) << err;
    }
}

TEST(Reporter, NonFiniteValuesAgreeAcrossJsonAndCsv)
{
    // Regression: JSON collapses non-finite values to null (NaN on
    // read-back) while CSV used to print "inf", so the --verify
    // JSON/CSV cross-check failed on any infinite metric.
    Reporter rep("demo");
    rep.beginPanel("p", "Panel");
    rep.add("r", "pos_inf", std::numeric_limits<double>::infinity());
    rep.add("r", "neg_inf", -std::numeric_limits<double>::infinity());
    rep.add("r", "nan", std::nan(""));
    LoadedReport fromJson;
    std::vector<Record> fromCsv;
    std::string err;
    ASSERT_TRUE(loadReport(rep.renderJson(), fromJson, err)) << err;
    ASSERT_TRUE(loadCsv(rep.renderCsv(), fromCsv, err)) << err;
    EXPECT_TRUE(sameRecords(fromJson, fromCsv, err)) << err;
    EXPECT_TRUE(std::isnan(fromCsv[0].value));
}

TEST(Reporter, HumanTableCarriesEveryMetric)
{
    // Human-table equivalence: each registered metric appears in the
    // rendered table with its row label, column header, and formatted
    // value+unit; notes and titles are preserved.
    for (Reporter rep : {makeFig04Like(), makeTable2Like()}) {
        std::string human = rep.renderHuman();
        for (const Metric &m : rep.metrics()) {
            char cell[48];
            std::snprintf(cell, sizeof(cell), "%.*f", m.prec, m.value);
            EXPECT_NE(human.find(m.row), std::string::npos) << m.row;
            EXPECT_NE(human.find(m.metric), std::string::npos)
                << m.metric;
            EXPECT_NE(human.find(std::string(cell) + m.unit),
                      std::string::npos)
                << cell << m.unit;
        }
    }
}

TEST(Reporter, HumanTableRendersTextCellsAndGaps)
{
    Reporter rep = makeTable2Like();
    std::string human = rep.renderHuman();
    // Text cell from addText().
    EXPECT_NE(human.find("VideoLLM-Online"), std::string::npos);
    // The frame_ratio panel has no "Avg" column, and the accuracy
    // panel's rows do not appear in it: missing cells render as "-".
    EXPECT_NE(human.find("-"), std::string::npos);
    EXPECT_NE(human.find("=== Table II: accuracy proxy ==="),
              std::string::npos);
    EXPECT_NE(human.find("=== Table II: frame ratio ==="),
              std::string::npos);
}

TEST(Reporter, FindLooksUpByIdentity)
{
    Reporter rep = makeFig04Like();
    const Metric *m = rep.find("a", "10min", "kv_cache");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->value, 31.5);
    EXPECT_EQ(rep.find("a", "10min", "nope"), nullptr);
    EXPECT_EQ(rep.find("zzz", "10min", "kv_cache"), nullptr);
}

TEST(ParseArgs, AcceptsAllSharedFlags)
{
    const char *argv[] = {"bench", "--json", "a.json", "--csv",
                          "b.csv", "--quiet"};
    Options opts;
    std::string err;
    ASSERT_TRUE(parseArgs(6, const_cast<char **>(argv), opts, err))
        << err;
    EXPECT_EQ(opts.jsonPath, "a.json");
    EXPECT_EQ(opts.csvPath, "b.csv");
    EXPECT_TRUE(opts.quiet);
    EXPECT_FALSE(opts.help);
}

TEST(ParseArgs, RejectsUnknownAndIncompleteFlags)
{
    {
        const char *argv[] = {"bench", "--frobnicate"};
        Options opts;
        std::string err;
        EXPECT_FALSE(
            parseArgs(2, const_cast<char **>(argv), opts, err));
        EXPECT_NE(err.find("--frobnicate"), std::string::npos);
    }
    {
        const char *argv[] = {"bench", "--json"};
        Options opts;
        std::string err;
        EXPECT_FALSE(
            parseArgs(2, const_cast<char **>(argv), opts, err));
        EXPECT_NE(err.find("--json"), std::string::npos);
    }
}

TEST(LoadReport, RejectsSchemaViolations)
{
    LoadedReport out;
    std::string err;
    // Wrong schema tag.
    EXPECT_FALSE(loadReport(
        R"({"schema": "vrex-bench-0", "bench": "x", "metrics": []})",
        out, err));
    // Record bench mismatching report bench.
    EXPECT_FALSE(loadReport(
        R"({"schema": "vrex-bench-1", "bench": "x", "metrics": [
            {"bench": "y", "panel": "p", "row": "r", "metric": "m",
             "value": 1, "unit": ""}]})",
        out, err));
    EXPECT_NE(err.find("does not match"), std::string::npos);
    // Duplicate identity.
    EXPECT_FALSE(loadReport(
        R"({"schema": "vrex-bench-1", "bench": "x", "metrics": [
            {"bench": "x", "panel": "p", "row": "r", "metric": "m",
             "value": 1, "unit": ""},
            {"bench": "x", "panel": "p", "row": "r", "metric": "m",
             "value": 2, "unit": ""}]})",
        out, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
    // Ill-typed value.
    EXPECT_FALSE(loadReport(
        R"({"schema": "vrex-bench-1", "bench": "x", "metrics": [
            {"bench": "x", "panel": "p", "row": "r", "metric": "m",
             "value": "1", "unit": ""}]})",
        out, err));
}

TEST(LoadReport, NullValueBecomesNan)
{
    LoadedReport out;
    std::string err;
    ASSERT_TRUE(loadReport(
        R"({"schema": "vrex-bench-1", "bench": "x", "metrics": [
            {"bench": "x", "panel": "p", "row": "r", "metric": "m",
             "value": null, "unit": ""}]})",
        out, err)) << err;
    EXPECT_TRUE(std::isnan(out.records[0].value));
}

namespace
{

Baseline
makeBaseline()
{
    Baseline b;
    b.defaultRelTol = 0.05;
    b.defaultAbsTol = 1e-6;
    b.benchRelTol = {{"noisy", 0.25}};
    b.records = {
        {"fig04", "a", "1min", "kv_cache", 3.0, "GB"},
        {"fig04", "a", "1min", "total", 18.0, "GB"},
        {"noisy", "p", "r", "m", 100.0, ""},
        {"other", "p", "r", "m", 1.0, ""},
    };
    return b;
}

LoadedReport
reportWith(const std::string &bench, std::vector<Record> records)
{
    return {bench, std::move(records)};
}

} // namespace

TEST(Baseline, RenderLoadRoundTrip)
{
    Baseline b = makeBaseline();
    Baseline b2;
    std::string err;
    ASSERT_TRUE(loadBaseline(renderBaseline(b), b2, err)) << err;
    EXPECT_DOUBLE_EQ(b2.defaultRelTol, 0.05);
    EXPECT_DOUBLE_EQ(b2.defaultAbsTol, 1e-6);
    EXPECT_DOUBLE_EQ(b2.relTolFor("noisy"), 0.25);
    EXPECT_DOUBLE_EQ(b2.relTolFor("fig04"), 0.05);
    ASSERT_EQ(b2.records.size(), b.records.size());
    EXPECT_EQ(b2.records[0].key(), b.records[0].key());
}

TEST(Drift, PassesWithinTolerance)
{
    Baseline b = makeBaseline();
    // 3.0 -> 3.1 is within 5%; noisy 100 -> 120 within its 25% band.
    auto drift = compareToBaseline(
        b, {reportWith("fig04",
                       {{"fig04", "a", "1min", "kv_cache", 3.1, "GB"},
                        {"fig04", "a", "1min", "total", 18.0, "GB"}}),
            reportWith("noisy", {{"noisy", "p", "r", "m", 120.0,
                                  ""}})});
    EXPECT_TRUE(drift.ok());
    EXPECT_EQ(drift.compared, 3u);  // "other" was not part of the run.
    EXPECT_EQ(drift.newMetrics, 0u);
}

TEST(Drift, FailsOutsideTolerance)
{
    Baseline b = makeBaseline();
    auto drift = compareToBaseline(
        b, {reportWith("fig04",
                       {{"fig04", "a", "1min", "kv_cache", 3.2, "GB"},
                        {"fig04", "a", "1min", "total", 18.0,
                         "GB"}})});
    ASSERT_EQ(drift.issues.size(), 1u);
    EXPECT_EQ(drift.issues[0].kind,
              DriftIssue::Kind::OutOfTolerance);
    EXPECT_NE(drift.issues[0].describe().find("kv_cache"),
              std::string::npos);
}

TEST(Drift, FlagsMissingMetricAndUnitMismatch)
{
    Baseline b = makeBaseline();
    auto drift = compareToBaseline(
        b, {reportWith("fig04",
                       {{"fig04", "a", "1min", "kv_cache", 3.0,
                         "GiB"}})});
    ASSERT_EQ(drift.issues.size(), 2u);
    EXPECT_EQ(drift.issues[0].kind, DriftIssue::Kind::UnitMismatch);
    EXPECT_EQ(drift.issues[1].kind, DriftIssue::Kind::MissingMetric);
}

TEST(Drift, CountsNewMetricsAndUnknownBenches)
{
    Baseline b = makeBaseline();
    auto drift = compareToBaseline(
        b, {reportWith("fig04",
                       {{"fig04", "a", "1min", "kv_cache", 3.0, "GB"},
                        {"fig04", "a", "1min", "total", 18.0, "GB"},
                        {"fig04", "a", "1min", "brand_new", 7.0,
                         ""}}),
            reportWith("unseen", {{"unseen", "p", "r", "m", 1.0,
                                   ""}})});
    EXPECT_TRUE(drift.ok());  // New metrics warn, never fail.
    EXPECT_EQ(drift.newMetrics, 2u);
    ASSERT_EQ(drift.benchesWithoutBaseline.size(), 1u);
    EXPECT_EQ(drift.benchesWithoutBaseline[0], "unseen");
}

TEST(Drift, NonFiniteOnBothSidesPasses)
{
    Baseline b;
    double nan = std::numeric_limits<double>::quiet_NaN();
    b.records = {{"x", "p", "r", "m", nan, ""}};
    auto drift = compareToBaseline(
        b, {reportWith("x", {{"x", "p", "r", "m", nan, ""}})});
    EXPECT_TRUE(drift.ok());
    auto drift2 = compareToBaseline(
        b, {reportWith("x", {{"x", "p", "r", "m", 1.0, ""}})});
    EXPECT_FALSE(drift2.ok());
}

TEST(Baseline, GateFieldRoundTrips)
{
    Baseline b;
    b.records = {
        {"mc", "p", "r", "band", 1.0, "x", Gate::Band},
        {"mc", "p", "r", "floor", 2.0, "x", Gate::Floor},
        {"mc", "p", "r", "ceil", 3.0, "x", Gate::Ceiling},
        {"mc", "p", "r", "info", 4.0, "ns", Gate::Info},
    };
    const std::string doc = renderBaseline(b);
    // Band is the default and stays implicit in the document.
    EXPECT_EQ(doc.find("\"gate\": \"band\""), std::string::npos);
    EXPECT_NE(doc.find("\"gate\": \"floor\""), std::string::npos);
    EXPECT_NE(doc.find("\"gate\": \"ceiling\""), std::string::npos);
    EXPECT_NE(doc.find("\"gate\": \"info\""), std::string::npos);

    Baseline b2;
    std::string err;
    ASSERT_TRUE(loadBaseline(doc, b2, err)) << err;
    ASSERT_EQ(b2.records.size(), 4u);
    EXPECT_EQ(b2.records[0].gate, Gate::Band);
    EXPECT_EQ(b2.records[1].gate, Gate::Floor);
    EXPECT_EQ(b2.records[2].gate, Gate::Ceiling);
    EXPECT_EQ(b2.records[3].gate, Gate::Info);
}

TEST(Baseline, RejectsUnknownGate)
{
    Baseline out;
    std::string err;
    EXPECT_FALSE(loadBaseline(
        R"({"schema": "vrex-bench-baseline-1", "default_rel_tol": 0.05,
            "default_abs_tol": 1e-6, "bench_rel_tol": {}, "metrics": [
            {"bench": "b", "panel": "p", "row": "r", "metric": "m",
             "value": 1.0, "unit": "", "gate": "vibes"}]})",
        out, err));
    EXPECT_NE(err.find("gate"), std::string::npos) << err;
}

TEST(Drift, FloorGateOnlyFailsBelow)
{
    Baseline b;
    b.defaultRelTol = 0.25;  // Floor 2.0 -> effective bound 1.5.
    b.records = {{"mc", "p", "r", "speedup", 2.0, "x", Gate::Floor}};
    auto above = compareToBaseline(
        b, {reportWith("mc", {{"mc", "p", "r", "speedup", 50.0,
                               "x"}})});
    EXPECT_TRUE(above.ok()) << "a floor has no upper bound";
    auto grazing = compareToBaseline(
        b,
        {reportWith("mc", {{"mc", "p", "r", "speedup", 1.6, "x"}})});
    EXPECT_TRUE(grazing.ok());
    auto below = compareToBaseline(
        b,
        {reportWith("mc", {{"mc", "p", "r", "speedup", 1.4, "x"}})});
    ASSERT_EQ(below.issues.size(), 1u);
    EXPECT_EQ(below.issues[0].kind,
              DriftIssue::Kind::OutOfTolerance);
    EXPECT_NE(below.issues[0].describe().find("below floor"),
              std::string::npos);
}

TEST(Drift, CeilingGateOnlyFailsAbove)
{
    Baseline b;
    b.defaultRelTol = 0.25;
    b.records = {{"mc", "p", "r", "lat", 2.0, "ms", Gate::Ceiling}};
    auto below = compareToBaseline(
        b, {reportWith("mc", {{"mc", "p", "r", "lat", 0.1, "ms"}})});
    EXPECT_TRUE(below.ok()) << "a ceiling has no lower bound";
    auto above = compareToBaseline(
        b, {reportWith("mc", {{"mc", "p", "r", "lat", 2.6, "ms"}})});
    ASSERT_EQ(above.issues.size(), 1u);
    EXPECT_NE(above.issues[0].describe().find("above ceiling"),
              std::string::npos);
}

TEST(Drift, InfoGateChecksPresenceAndUnitOnly)
{
    Baseline b;
    b.records = {{"mc", "p", "r", "ns", 100.0, "ns", Gate::Info}};
    auto wild = compareToBaseline(
        b, {reportWith("mc", {{"mc", "p", "r", "ns", 1e9, "ns"}})});
    EXPECT_TRUE(wild.ok()) << "info values are never compared";
    EXPECT_EQ(wild.compared, 1u);
    auto wrongUnit = compareToBaseline(
        b, {reportWith("mc", {{"mc", "p", "r", "ns", 100.0, "ms"}})});
    ASSERT_EQ(wrongUnit.issues.size(), 1u);
    EXPECT_EQ(wrongUnit.issues[0].kind,
              DriftIssue::Kind::UnitMismatch);
    auto missing = compareToBaseline(b, {reportWith("mc", {})});
    ASSERT_EQ(missing.issues.size(), 1u);
    EXPECT_EQ(missing.issues[0].kind,
              DriftIssue::Kind::MissingMetric);
}

TEST(LoadCsv, RejectsMalformedDocuments)
{
    std::vector<Record> out;
    std::string err;
    EXPECT_FALSE(loadCsv("", out, err));
    EXPECT_FALSE(loadCsv("wrong,header\n", out, err));
    EXPECT_FALSE(loadCsv(
        "bench,panel,row,metric,value,unit\nb,p,r,m,notanumber,u\n",
        out, err));
    EXPECT_FALSE(loadCsv(
        "bench,panel,row,metric,value,unit\nb,p,r,m,1\n", out, err));
    ASSERT_TRUE(loadCsv(
        "bench,panel,row,metric,value,unit\r\nb,p,r,m,1.5,u\r\n", out,
        err)) << err;
    EXPECT_EQ(out[0].value, 1.5);
}
