#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace vrex
{

namespace
{
inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

uint64_t
hashName(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

Rng::Rng(uint64_t seed, const std::string &name)
    : Rng(seed ^ hashName(name))
{
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    VREX_ASSERT(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare = mag * std::sin(2.0 * M_PI * u2);
    hasSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

void
Rng::fillGaussian(float *data, size_t n, float stddev)
{
    for (size_t i = 0; i < n; ++i)
        data[i] = static_cast<float>(gaussian() * stddev);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<uint32_t>
Rng::permutation(uint32_t n)
{
    std::vector<uint32_t> perm(n);
    for (uint32_t i = 0; i < n; ++i)
        perm[i] = i;
    for (uint32_t i = n; i > 1; --i) {
        uint32_t j = static_cast<uint32_t>(uniformInt(i));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

RngState
Rng::state() const
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s[i];
    st.spare = spare;
    st.hasSpare = hasSpare;
    return st;
}

void
Rng::setState(const RngState &st)
{
    for (int i = 0; i < 4; ++i)
        s[i] = st.s[i];
    spare = st.spare;
    hasSpare = st.hasSpare;
}

} // namespace vrex
