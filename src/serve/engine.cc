#include "serve/engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/wallclock.hh"

namespace vrex::serve
{

SessionOptions
SessionOptions::fromScript(const SessionScript &script)
{
    SessionOptions o;
    o.name = script.name;
    o.video = script.video;
    o.scriptSeed = script.seed;
    return o;
}

Engine::Engine(EngineConfig config)
    : cfg(std::move(config)),
      pool(resolveWorkerCount(cfg.workers)),
      sched(pool, cfg.sched,
            [this](Scheduler::Key key,
                   const std::vector<SessionEvent> &batch) {
                runItems(key, batch);
            },
            cfg.batching,
            [this](const std::vector<Scheduler::Key> &keys) {
                runBatch(keys);
            }),
      coldStore(cfg.kvBudget.store
                    ? cfg.kvBudget.store
                    : std::make_shared<MemoryColdStore>()),
      budget(cfg.kvBudget)
{
}

Engine::~Engine()
{
    // A paused scheduler would deadlock waitAll(); always release.
    sched.resume();
    sched.waitAll();
    // Members destroy in reverse declaration order: the session map
    // dies first, then the scheduler, then the pool. That is safe
    // because waitAll() guarantees every dispatched slice finished
    // and no slice job is queued, so no worker still references a
    // session (or the scheduler) when they go away.
}

Engine::Session *
Engine::sessionFor(SessionId id)
{
    LockGuard lock(smu);
    auto it = sessions.find(id);
    VREX_ASSERT(it != sessions.end(),
                "scheduler dispatched an unknown session");
    return it->second.get();
}

void
Engine::runItems(SessionId id, const std::vector<SessionEvent> &batch)
{
    // Exclusive access: the scheduler never dispatches one session
    // on two workers, and close/pin wait for idleness.
    Session *s = sessionFor(id);
    if (s->hibernated)
        wakeSession(id, *s);
    StreamingSession *exec = s->exec.get();
    for (const SessionEvent &event : batch)
        exec->apply(event);
    if (budget.enabled()) {
        budget.onExecuted(
            id, exec->kvBytes(budget.config().bytesPerElem));
        enforceBudget(id);
    }
}

void
Engine::runBatch(const std::vector<SessionId> &ids)
{
    // Exclusive access to every member: the scheduler marked each
    // one running before handing us the fused step.
    std::vector<StreamingSession *> execs;
    execs.reserve(ids.size());
    for (SessionId id : ids) {
        Session *s = sessionFor(id);
        if (s->hibernated)
            wakeSession(id, *s);
        execs.push_back(s->exec.get());
    }
    StreamingSession::generateStepBatched(execs);
    if (budget.enabled()) {
        for (size_t i = 0; i < ids.size(); ++i)
            budget.onExecuted(
                ids[i],
                execs[i]->kvBytes(budget.config().bytesPerElem));
        // One sweep covers the whole fused step; members are all
        // running, so tryPinIdle skips them as victims anyway.
        enforceBudget(ids[0]);
    }
}

Admission
Engine::tryCreateSession(const SessionOptions &options)
{
    SessionId id;
    {
        LockGuard lock(smu);
        id = nextId++;
    }
    const uint32_t rate = options.maxItemsPerRound
                              ? *options.maxItemsPerRound
                              : cfg.sched.maxItemsPerRound;
    if (!sched.tryAdmit(id, options.schedClass, rate)) {
        Admission a;
        a.status = Admission::Status::RejectedSessionLimit;
        return a;
    }

    // Build the (expensive) per-session state only once admitted.
    // Release the reserved slot if construction throws (e.g. a
    // custom policy maker), or the cap would leak capacity.
    try {
        auto s = std::make_unique<Session>();
        s->options = options;
        const PolicySpec &spec =
            options.policy ? *options.policy : cfg.policy;
        const uint64_t seed = options.sessionSeed ? *options.sessionSeed
                                                  : cfg.sessionSeed;
        const PolicyFactory &factory =
            cfg.factory ? *cfg.factory : PolicyFactory::global();
        s->policy = factory.make(cfg.model, spec);
        s->exec = std::make_unique<StreamingSession>(
            cfg.model, s->policy.active(), seed);
        s->exec->begin(options.name, options.video,
                       options.scriptSeed, options.forcedTokens);

        LockGuard lock(smu);
        sessions.emplace(id, std::move(s));
    } catch (...) {
        sched.remove(id);
        throw;
    }
    if (budget.enabled())
        budget.onAdmit(id, options.schedClass);
    Admission a;
    a.id = id;
    return a;
}

SessionId
Engine::createSession(const SessionOptions &options)
{
    Admission a = tryCreateSession(options);
    if (!a.admitted())
        throw AdmissionError(
            "vrex::serve::Engine: session rejected, " +
            std::to_string(cfg.sched.maxLiveSessions) +
            " sessions already live");
    return a.id;
}

SessionId
Engine::submit(const SessionScript &script)
{
    return submit(script, SessionOptions{});
}

SessionId
Engine::submit(const SessionScript &script, SessionOptions options)
{
    // The script is the source of truth for stream identity (these
    // three fields feed the per-session RNG streams); only the
    // policy/seed/forcing overrides of @p options are honoured.
    options.name = script.name;
    options.video = script.video;
    options.scriptSeed = script.seed;
    SessionId id = createSession(options);
    try {
        enqueue(id, script.events);
    } catch (...) {
        // E.g. the script overflows a bounded queue: the caller
        // never learns the id, so close it or the session (and its
        // admission slot) would leak.
        closeSession(id);
        throw;
    }
    return id;
}

EnqueueResult
Engine::tryEnqueue(SessionId id,
                   const std::vector<SessionEvent> &events)
{
    return sched.tryEnqueue(id, events);
}

EnqueueResult
Engine::tryFeedFrame(SessionId id, uint32_t frames)
{
    return tryEnqueue(
        id, std::vector<SessionEvent>(
                frames, SessionEvent{SessionEvent::Type::Frame, 0}));
}

EnqueueResult
Engine::tryAsk(SessionId id, uint32_t question_tokens,
               uint32_t answer_tokens)
{
    return tryEnqueue(
        id, {{SessionEvent::Type::Question, question_tokens},
             {SessionEvent::Type::Generate, answer_tokens}});
}

void
Engine::enqueue(SessionId id, const std::vector<SessionEvent> &events)
{
    EnqueueResult r = tryEnqueue(id, events);
    if (!r.accepted())
        throw QueueFullError(
            "vrex::serve::Engine: session " + std::to_string(id) +
            " queue full (" + std::to_string(r.depth) + "/" +
            std::to_string(cfg.sched.maxQueuedPerSession) +
            " items queued, " + std::to_string(r.items) +
            " requested); use the try* verbs for backpressure");
}

void
Engine::feedFrame(SessionId id, uint32_t frames)
{
    enqueue(id, std::vector<SessionEvent>(
                    frames, SessionEvent{SessionEvent::Type::Frame, 0}));
}

void
Engine::ask(SessionId id, uint32_t question_tokens,
            uint32_t answer_tokens)
{
    enqueue(id, {{SessionEvent::Type::Question, question_tokens},
                 {SessionEvent::Type::Generate, answer_tokens}});
}

void
Engine::wait(SessionId id)
{
    if (!sched.wait(id))
        throw std::out_of_range(
            "vrex::serve::Engine: unknown or closed session id " +
            std::to_string(id));
}

void
Engine::waitAll()
{
    sched.waitAll();
}

Engine::Session &
Engine::pinnedSession(SessionId id)
{
    LockGuard lock(smu);
    auto it = sessions.find(id);
    VREX_ASSERT(it != sessions.end(), "pinned session not in map");
    return *it->second;
}

namespace
{

/** Releases a Scheduler pin on scope exit, so a throwing accessor
 *  body cannot leave the session pinned (= deadlocked) forever. */
class PinGuard
{
  public:
    PinGuard(Scheduler &scheduler, Scheduler::Key key)
        : sched(scheduler), pinned(key)
    {
    }
    ~PinGuard() { sched.unpin(pinned); }
    PinGuard(const PinGuard &) = delete;
    PinGuard &operator=(const PinGuard &) = delete;

  private:
    Scheduler &sched;
    Scheduler::Key pinned;
};

} // namespace

void
Engine::pinOrThrow(SessionId id)
{
    if (!sched.pinWhenIdle(id))
        throw std::out_of_range(
            "vrex::serve::Engine: unknown or closed session id " +
            std::to_string(id));
}

void
Engine::wakeSession(SessionId id, Session &s)
{
    const auto t0 = WallClock::now();
    std::vector<uint8_t> blob = coldStore->get(id);
    // Rebuild exactly what tryCreateSession built — weights, policy
    // and RNG streams are deterministic from (config, seed), so only
    // the blob's state overlay distinguishes this from a fresh
    // session. restore() validates the identity and is bit-exact.
    const SessionOptions &options = s.options;
    const PolicySpec &spec =
        options.policy ? *options.policy : cfg.policy;
    const uint64_t seed =
        options.sessionSeed ? *options.sessionSeed : cfg.sessionSeed;
    const PolicyFactory &factory =
        cfg.factory ? *cfg.factory : PolicyFactory::global();
    s.policy = factory.make(cfg.model, spec);
    s.exec = std::make_unique<StreamingSession>(
        cfg.model, s.policy.active(), seed);
    s.exec->restore(blob);
    s.hibernated = false;
    coldStore->erase(id);
    budget.markWoken(id,
                     s.exec->kvBytes(budget.config().bytesPerElem),
                     blob.size(), elapsedNs(t0));
}

void
Engine::hibernateSession(SessionId id, Session &s)
{
    const auto t0 = WallClock::now();
    std::vector<uint8_t> blob = s.exec->serialize();
    coldStore->put(id, blob);
    s.exec.reset();
    s.policy = PolicyInstance{};
    s.hibernated = true;
    budget.markHibernated(id, blob.size(), elapsedNs(t0));
}

void
Engine::enforceBudget(SessionId self)
{
    while (budget.overBudget()) {
        bool progressed = false;
        for (SessionId victim : budget.victims(self)) {
            if (!budget.overBudget())
                return;
            // Non-blocking: a busy victim is skipped, not awaited —
            // the dispatch path must never stall behind a peer.
            if (!sched.tryPinIdle(victim))
                continue;
            PinGuard pin(sched, victim);
            // The pin blocks closeSession's sched.remove() until we
            // unpin, so the session is still in the map.
            Session &s = pinnedSession(victim);
            if (s.hibernated)
                continue;
            hibernateSession(victim, s);
            progressed = true;
        }
        // Every remaining candidate is busy (or gone): give up this
        // sweep; the next slice's enforcement tries again.
        if (!progressed)
            return;
    }
}

SessionRunResult
Engine::result(SessionId id)
{
    // Pin when drained: the dispatcher skips the session while the
    // potentially large snapshot copies outside any lock, so peers
    // keep scheduling. Events enqueued meanwhile run after unpin.
    pinOrThrow(id);
    PinGuard pin(sched, id);
    Session &s = pinnedSession(id);
    if (s.hibernated)
        wakeSession(id, s);
    return s.exec->snapshot();
}

void
Engine::closeSession(SessionId id)
{
    if (!sched.remove(id))
        throw std::out_of_range(
            "vrex::serve::Engine: unknown or closed session id " +
            std::to_string(id));
    {
        LockGuard lock(smu);
        sessions.erase(id);
    }
    // A hibernated session closes without waking: just drop the blob.
    budget.onClose(id);
    coldStore->erase(id);
}

size_t
Engine::openSessions() const
{
    LockGuard lock(smu);
    return sessions.size();
}

void
Engine::setClass(SessionId id, SchedClass cls)
{
    if (!sched.setClass(id, cls))
        throw std::out_of_range(
            "vrex::serve::Engine: unknown or closed session id " +
            std::to_string(id));
    budget.setClass(id, cls);
}

void
Engine::pause()
{
    sched.pause();
}

void
Engine::resume()
{
    sched.resume();
}

Stats
Engine::stats() const
{
    Stats s = sched.stats();
    s.kv = budget.snapshot(*coldStore);
    return s;
}

QueueStats
Engine::sessionStats(SessionId id) const
{
    return sched.queueStats(id);
}

const Model &
Engine::model(SessionId id)
{
    pinOrThrow(id);
    PinGuard pin(sched, id);
    Session &s = pinnedSession(id);
    if (s.hibernated)
        wakeSession(id, s);
    return s.exec->model();
}

const PolicyInstance &
Engine::policy(SessionId id)
{
    pinOrThrow(id);
    PinGuard pin(sched, id);
    Session &s = pinnedSession(id);
    if (s.hibernated)
        wakeSession(id, s);
    return s.policy;
}

const MemoryReplayStats *
Engine::memoryStats(SessionId id)
{
    pinOrThrow(id);
    PinGuard pin(sched, id);
    Session &s = pinnedSession(id);
    if (s.hibernated)
        wakeSession(id, s);
    return s.policy.memory() ? &s.policy.memory()->stats() : nullptr;
}

FidelityResult
Engine::evaluateFidelity(const SessionScript &script,
                         const PolicySpec &spec)
{
    return evaluateFidelityBatch({{script, spec}})[0];
}

std::vector<FidelityResult>
Engine::evaluateFidelityBatch(const std::vector<FidelityJob> &jobs)
{
    // Close every session this batch still owns if anything throws
    // mid-flight (e.g. AdmissionError when the batch outgrows
    // maxLiveSessions): the ids are local, so a leaked session could
    // never be closed by the caller.
    std::vector<SessionId> live;
    live.reserve(jobs.size());
    auto submitTracked = [this, &live](const SessionScript &script,
                                       SessionOptions o) {
        SessionId id = submit(script, std::move(o));
        live.push_back(id);
        return id;
    };
    auto closeTracked = [this, &live](SessionId id) {
        closeSession(id);
        live.erase(std::find(live.begin(), live.end(), id));
    };

    try {
        // Phase 1: full-attention reference runs, all concurrent.
        std::vector<SessionId> refs;
        refs.reserve(jobs.size());
        for (const FidelityJob &job : jobs) {
            SessionOptions o; // Stream identity: from the script.
            o.policy = PolicySpec::full();
            refs.push_back(submitTracked(job.script, o));
        }
        std::vector<SessionRunResult> ref_runs;
        ref_runs.reserve(jobs.size());
        for (SessionId id : refs) {
            ref_runs.push_back(result(id));
            closeTracked(id);
        }

        // Phase 2: teacher-forced policy runs, all concurrent.
        std::vector<SessionId> tests;
        tests.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            SessionOptions o;
            o.policy = jobs[i].policy;
            o.forcedTokens = ref_runs[i].generated;
            tests.push_back(submitTracked(jobs[i].script, o));
        }
        std::vector<FidelityResult> out;
        out.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            SessionRunResult test = result(tests[i]);
            closeTracked(tests[i]);
            out.push_back(compareRuns(ref_runs[i], test));
        }
        return out;
    } catch (...) {
        for (SessionId id : live) {
            try {
                closeSession(id);
            } catch (...) {
                // Best-effort cleanup; the original error wins.
            }
        }
        throw;
    }
}

} // namespace vrex::serve
