#include "core/hash_encoder.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/kernels.hh"
#include "tensor/ops.hh"

namespace vrex
{

namespace
{

/** nbits rounded up to a whole number of encode blocks. */
uint32_t
encodeStride(uint32_t nbits)
{
    const uint32_t block = kernels::kEncodeBlock;
    return (nbits + block - 1) / block * block;
}

} // namespace

HashEncoder::HashEncoder(uint32_t key_dim, uint32_t n_bits,
                         uint64_t seed)
    : dim(key_dim), nBits(n_bits), planes(n_bits, key_dim),
      planesT(key_dim, encodeStride(n_bits))
{
    VREX_ASSERT(key_dim > 0 && n_bits > 0, "bad hash encoder shape");
    Rng rng(seed, "hash-hyperplanes");
    rng.fillGaussian(planes.raw(), planes.size(), 1.0f);
    // Bit-major transpose for the SIMD encode kernels; the padding
    // columns stay zero (their lanes are discarded by the bit mask).
    for (uint32_t b = 0; b < nBits; ++b)
        for (uint32_t j = 0; j < dim; ++j)
            planesT.at(j, b) = planes.at(b, j);
}

kernels::HashPlanes
HashEncoder::planesView() const
{
    return {planes.raw(), planesT.raw(), dim, nBits, planesT.cols()};
}

BitSig
HashEncoder::encode(const float *key) const
{
    BitSig sig(nBits);
    kernels::active().hashEncode(planesView(), key, sig.rawMutable());
    return sig;
}

std::vector<BitSig>
HashEncoder::encodeRows(const Matrix &keys) const
{
    VREX_ASSERT(keys.cols() == dim, "key width mismatch");
    const kernels::HashPlanes view = planesView();
    const auto encodeKernel = kernels::active().hashEncode;
    std::vector<BitSig> sigs;
    sigs.reserve(keys.rows());
    for (uint32_t r = 0; r < keys.rows(); ++r) {
        BitSig sig(nBits);
        encodeKernel(view, keys.row(r), sig.rawMutable());
        sigs.push_back(std::move(sig));
    }
    return sigs;
}

} // namespace vrex
