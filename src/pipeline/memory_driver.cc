#include "pipeline/memory_driver.hh"

#include <algorithm>

namespace vrex
{

double
MemoryReplayStats::tokensPerRunTimeOrder() const
{
    return runsTimeOrder
        ? static_cast<double>(selectedTokens) / runsTimeOrder
        : 0.0;
}

double
MemoryReplayStats::tokensPerRunClustered() const
{
    return runsClustered
        ? static_cast<double>(selectedTokens) / runsClustered
        : 0.0;
}

MemoryTrackingPolicy::MemoryTrackingPolicy(SelectionPolicy *inner_policy,
                                           const ModelConfig &model_cfg,
                                           const TierConfig &tiers)
    : inner(inner_policy), model(model_cfg),
      tiersState(model_cfg.kvBytesPerToken(2.0), tiers)
{
    VREX_ASSERT(inner != nullptr, "tracking needs an inner policy");
}

void
MemoryTrackingPolicy::onBlockAppended(uint32_t layer,
                                      const KVCache &cache,
                                      uint32_t block_start,
                                      uint32_t block_len,
                                      TokenStage stage)
{
    if (layer == 0) {
        tiersState.appendTokens(block_len);
        replay.offloadedBytes = tiersState.stats().offloadedBytes;
    }
    inner->onBlockAppended(layer, cache, block_start, block_len,
                           stage);
}

LayerSelection
MemoryTrackingPolicy::select(uint32_t layer, const Matrix &q,
                             const KVCache &cache, uint32_t past_len,
                             TokenStage stage)
{
    LayerSelection sel =
        inner->select(layer, q, cache, past_len, stage);
    if (past_len == 0)
        return sel;

    // KV fetches are head-granular: each KV head's region is mapped
    // (and, with the KVMU, cluster-reordered) independently.
    const uint64_t head_granule =
        model.kvBytesPerTokenPerLayer(2.0) /
        std::max(1u, model.nKvHeads);
    bool touched = false;
    for (uint32_t head = 0; head < sel.kvHeads.size(); ++head) {
        const HeadSelection &h = sel.kvHeads[head];
        std::vector<uint32_t> fetched;
        if (h.selectAll) {
            fetched.resize(past_len);
            for (uint32_t t = 0; t < past_len; ++t)
                fetched[t] = t;
        } else {
            fetched = h.indices;  // Already sorted ascending.
        }
        if (fetched.empty())
            continue;
        touched = true;

        replay.fetchedBytes +=
            tiersState.touch(fetched, head_granule);
        replay.selectedTokens += fetched.size();
        replay.runsTimeOrder += ClusterLayout::runsTimeOrder(fetched);

        ClusterLayout layout;
        if (resvSource) {
            const HCTable &tab = resvSource->table(layer, head);
            std::vector<std::vector<uint32_t>> members;
            members.reserve(tab.clusterCount());
            for (const auto &c : tab.clusters())
                members.push_back(c.tokenIdx);
            layout.rebuild(members, cache.tokenCount());
        }
        replay.runsClustered += layout.runsForSelection(fetched);
    }
    replay.fetchEvents += touched;
    return sel;
}

void
MemoryTrackingPolicy::reset()
{
    inner->reset();
    tiersState.clear();
    replay = MemoryReplayStats{};
}

void
MemoryTrackingPolicy::serializeState(serial::ByteWriter &w) const
{
    tiersState.serialize(w);
    w.put<uint64_t>(replay.fetchedBytes);
    w.put<uint64_t>(replay.offloadedBytes);
    w.put<uint64_t>(replay.fetchEvents);
    w.put<uint64_t>(replay.runsTimeOrder);
    w.put<uint64_t>(replay.runsClustered);
    w.put<uint64_t>(replay.selectedTokens);
    inner->serializeState(w);
}

void
MemoryTrackingPolicy::restoreState(serial::ByteReader &r)
{
    tiersState.restore(r);
    replay.fetchedBytes = r.get<uint64_t>();
    replay.offloadedBytes = r.get<uint64_t>();
    replay.fetchEvents = r.get<uint64_t>();
    replay.runsTimeOrder = r.get<uint64_t>();
    replay.runsClustered = r.get<uint64_t>();
    replay.selectedTokens = r.get<uint64_t>();
    inner->restoreState(r);
}

} // namespace vrex
