#include "llm/attention.hh"

#include <cmath>
#include <vector>

#include "tensor/ops.hh"

namespace vrex
{

double
LayerSelection::selectedRatio(uint32_t past_len) const
{
    if (past_len == 0 || kvHeads.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &h : kvHeads)
        sum += static_cast<double>(h.selectedCount(past_len)) / past_len;
    return sum / static_cast<double>(kvHeads.size());
}

namespace
{

/** Shared per-(head, token) scratch for the attention kernels. */
struct AttendScratch
{
    std::vector<float> scores;
    std::vector<uint32_t> attended;
};

/** Check the degenerate-input contract of one (kv, past, sel, T)
 *  tuple (see attentionForward() docs). O(nKvHeads). */
void
checkAttentionInputs(const ModelConfig &cfg, const LayerKV &kv,
                     uint32_t past_len, const LayerSelection *sel,
                     uint32_t block_len)
{
    VREX_ASSERT(kv.keys.rows() == past_len + block_len,
                "attention expects the block appended to the cache");
    VREX_ASSERT(kv.values.rows() == kv.keys.rows(),
                "attention cache keys/values row mismatch");
    VREX_ASSERT(sel == nullptr ||
                sel->kvHeads.size() == cfg.nKvHeads,
                "selection has wrong head count");
    if (sel != nullptr) {
        for (const HeadSelection &h : sel->kvHeads)
            // Indices are ascending, so the back is the max: every
            // explicit selection must point below past_len (which
            // at past_len == 0 means it must be empty).
            VREX_ASSERT(h.selectAll || h.indices.empty() ||
                            h.indices.back() < past_len,
                        "selection index beyond the past");
    }
}

/**
 * Attend one query token of one head: @p qv against the selected
 * past tokens plus the causal block prefix ending at block offset
 * @p t. Both the block path and the batched path funnel through
 * here, which is what makes them bit-identical per session.
 */
void
attendToken(const float *qv, const LayerKV &kv, uint32_t kv_off,
            uint32_t head_dim, uint32_t past_len, uint32_t t,
            const HeadSelection *hsel, float *ov, AttendScratch &s)
{
    // Tokens this query may attend: selected past tokens plus
    // the causal prefix of the current block.
    s.attended.clear();
    if (!hsel || hsel->selectAll) {
        for (uint32_t i = 0; i < past_len; ++i)
            s.attended.push_back(i);
    } else {
        s.attended.assign(hsel->indices.begin(),
                          hsel->indices.end());
    }
    for (uint32_t i = 0; i <= t; ++i)
        s.attended.push_back(past_len + i);

    s.scores.resize(s.attended.size());
    const float scale = 1.0f / std::sqrt((float)head_dim);
    for (size_t i = 0; i < s.attended.size(); ++i) {
        const float *kvec = kv.keys.row(s.attended[i]) + kv_off;
        s.scores[i] = dot(qv, kvec, head_dim) * scale;
    }
    softmax(s.scores.data(),
            static_cast<uint32_t>(s.scores.size()));

    for (size_t i = 0; i < s.attended.size(); ++i) {
        const float p = s.scores[i];
        if (p == 0.0f)
            continue;
        const float *vvec = kv.values.row(s.attended[i]) + kv_off;
        for (uint32_t d = 0; d < head_dim; ++d)
            ov[d] += p * vvec[d];
    }
}

} // namespace

void
attentionForward(const ModelConfig &cfg, const Matrix &q,
                 const LayerKV &kv, uint32_t past_len,
                 const LayerSelection *sel, Matrix &out)
{
    const uint32_t head_dim = cfg.headDim();
    const uint32_t n_heads = cfg.nHeads;
    const uint32_t group = cfg.groupSize();
    const uint32_t block_len = q.rows();
    if (block_len == 0) {
        // Explicit empty-block contract: nothing to attend, nothing
        // read from the cache or the selection.
        out = Matrix(0, cfg.dModel);
        return;
    }
    checkAttentionInputs(cfg, kv, past_len, sel, block_len);

    out = Matrix(block_len, cfg.dModel);
    AttendScratch scratch;

    for (uint32_t h = 0; h < n_heads; ++h) {
        const uint32_t kv_head = h / group;
        const uint32_t q_off = h * head_dim;
        const uint32_t kv_off = kv_head * head_dim;
        const HeadSelection *hsel =
            sel ? &sel->kvHeads[kv_head] : nullptr;

        for (uint32_t t = 0; t < block_len; ++t)
            attendToken(q.row(t) + q_off, kv, kv_off, head_dim,
                        past_len, t, hsel, out.row(t) + q_off,
                        scratch);
    }
}

void
attentionForwardBatched(const ModelConfig &cfg, const Matrix &q,
                        const std::vector<AttentionBatchItem> &items,
                        Matrix &out)
{
    const uint32_t head_dim = cfg.headDim();
    const uint32_t n_heads = cfg.nHeads;
    const uint32_t group = cfg.groupSize();
    const uint32_t n = static_cast<uint32_t>(items.size());
    VREX_ASSERT(q.rows() == n, "batched attention row/item mismatch");
    for (const AttentionBatchItem &item : items) {
        VREX_ASSERT(item.kv != nullptr, "batched attention null cache");
        checkAttentionInputs(cfg, *item.kv, item.pastLen, item.sel, 1);
    }

    out = Matrix(n, cfg.dModel);
    AttendScratch scratch;

    // Head outer / session inner: the same attendToken() calls a
    // per-session attentionForward() would make (T == 1 so the head
    // and token loops commute), just reordered across sessions.
    for (uint32_t h = 0; h < n_heads; ++h) {
        const uint32_t kv_head = h / group;
        const uint32_t q_off = h * head_dim;
        const uint32_t kv_off = kv_head * head_dim;

        for (uint32_t i = 0; i < n; ++i) {
            const AttentionBatchItem &item = items[i];
            const HeadSelection *hsel =
                item.sel ? &item.sel->kvHeads[kv_head] : nullptr;
            attendToken(q.row(i) + q_off, *item.kv, kv_off, head_dim,
                        item.pastLen, 0, hsel, out.row(i) + q_off,
                        scratch);
        }
    }
}

} // namespace vrex
