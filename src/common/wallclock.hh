/**
 * @file
 * The one sanctioned wall-clock source in src/.
 *
 * Everything a session computes must be a pure function of (config,
 * seed, event order) — that is the concurrent == sequential
 * byte-identity contract — so reading a clock anywhere near result
 * data is banned (`tools/vrex_lint`, rule `nondet-clock`). The only
 * legitimate consumers of wall time are the *observability* paths:
 * wait/service latency histograms, hibernate/wake timings. Those
 * paths funnel through this alias, which carries the single lint
 * suppression; any other clock use in src/ fails `ctest -L lint`.
 */

#ifndef VREX_COMMON_WALLCLOCK_HH
#define VREX_COMMON_WALLCLOCK_HH

#include <chrono>
#include <cstdint>

namespace vrex
{

/** Monotonic wall clock for latency stats only — never for results.
 *  The readings feed Histogram/LatencyHistogram sample *values*;
 *  sample counts and every figure metric stay deterministic. */
// vrex-lint: allow(nondet-clock) -- observability-only: latency
// histogram sample values, never result data (see file comment).
using WallClock = std::chrono::steady_clock;

/** Nanoseconds elapsed since @p since (stats plumbing helper). */
inline uint64_t
elapsedNs(WallClock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            WallClock::now() - since)
            .count());
}

} // namespace vrex

#endif // VREX_COMMON_WALLCLOCK_HH
