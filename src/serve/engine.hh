/**
 * @file
 * vrex::serve::Engine — the session-oriented serving facade.
 *
 * An Engine owns a pool of worker threads and any number of
 * independent streaming-QA sessions. Each session bundles its own
 * Model, an *owned* retrieval policy built from a declarative
 * PolicySpec, and its own RNG streams, so sessions share no mutable
 * state: an N-way concurrent run is byte-identical to N sequential
 * StreamingSession runs (locked by tests/serve_test.cc and
 * tests/serve_sched_test.cc).
 *
 * Lifecycle:
 *
 *     Engine engine({.model = ModelConfig::tiny(),
 *                    .policy = PolicySpec::resv()});
 *     SessionId id = engine.createSession(opts);
 *     engine.feedFrame(id, 12);       // async: queued per session
 *     engine.ask(id, 10, 12);         // question + answer round
 *     SessionRunResult r = engine.result(id);  // drains, snapshots
 *     engine.closeSession(id);
 *
 * Scheduling (PR 4): verbs enqueue work measured in *unit work
 * items* (a Generate{n} weighs n single-token steps, split lazily at
 * slice boundaries; see SessionEvent::unitCount and
 * StreamingSession::unitEvents) into a per-session queue managed by
 * the Scheduler. A fair
 * round-robin dispatcher time-slices the queues onto the pool —
 * `EngineConfig::sched.sliceEvents` items per turn — so one chatty
 * session cannot starve the rest, and one session's frame ingest
 * interleaves with another's generation steps at item granularity.
 * Admission control (`sched.maxLiveSessions`) and bounded queues
 * (`sched.maxQueuedPerSession`) turn overload into explicit
 * backpressure results (tryCreateSession / tryFeedFrame / tryAsk /
 * tryEnqueue) or typed exceptions (AdmissionError / QueueFullError
 * from the classic verbs) instead of silent blocking. Scheduler
 * observability is exported via stats() / sessionStats().
 *
 * Priority classes (PR 5): each session carries a SchedClass
 * (`SessionOptions::schedClass`, default Interactive; mutable via
 * setClass()) and the dispatcher serves the per-class ready lists
 * weighted round-robin (`sched.classWeights`), optionally clamped by
 * per-session rate limits (`sched.maxItemsPerRound` /
 * `SessionOptions::maxItemsPerRound`) and deadline-aware slicing
 * (`sched.deadlineSlices` promotes a session whose oldest queued
 * item aged past the deadline to the front of its class). Defaults
 * (one class in use, weights {1,1}, no limits) are byte-identical to
 * the PR-4 round-robin. stats() additionally reports per-class
 * p50/p95/p99 wait and service latency histograms.
 *
 * A session's items still execute in order on one worker at a time
 * (actor style), so per-session determinism is independent of the
 * slice size, worker count, and cross-session interleaving.
 * result()/model()/policy() block until the session is drained.
 *
 * Session hibernation (PR 7): when `EngineConfig::kvBudget.budgetBytes`
 * is non-zero, the engine tracks every session's KV working set and,
 * whenever the resident total overflows the budget, hibernates idle
 * sessions — serializing their full state (StreamingSession::
 * serialize) into a ColdStore and releasing model, policy and KV
 * cache. Victims are picked least-recently-executed first, Bulk class
 * before Interactive; busy sessions are skipped, never waited for.
 * The next verb (or drained accessor) wakes the session
 * transparently: the blob is fetched, the model/policy rebuilt from
 * config + seed, and state restored bit-exactly, so a hibernated
 * session's results are byte-identical to an uninterrupted run
 * (locked by tests/hibernate_test.cc). With the default budget of 0
 * nothing changes: no accounting, no hibernation, the pre-PR-7
 * engine. Stats::kv reports resident/cold bytes, transition counts
 * and hibernate/wake latency percentiles.
 */

#ifndef VREX_SERVE_ENGINE_HH
#define VREX_SERVE_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "kvstore/cold_store.hh"
#include "pipeline/accuracy_eval.hh"
#include "pipeline/streaming_session.hh"
#include "serve/kv_budget.hh"
#include "serve/policy_factory.hh"
#include "serve/scheduler.hh"
#include "serve/stats.hh"
#include "serve/thread_pool.hh"
#include "video/workload.hh"

namespace vrex::serve
{

/** Opaque handle of one open session. 0 is never a valid id. */
using SessionId = uint64_t;

/** createSession() at the live-session cap. */
class AdmissionError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A queueing verb overflowed a bounded per-session queue. */
class QueueFullError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Outcome of tryCreateSession(). */
struct Admission
{
    enum class Status : uint8_t
    {
        Admitted,
        RejectedSessionLimit,
    };

    /** Valid only when admitted (0 otherwise). */
    SessionId id = 0;
    Status status = Status::Admitted;

    bool admitted() const { return status == Status::Admitted; }
    explicit operator bool() const { return admitted(); }
};

/** Engine-wide configuration: geometry, default policy, pool size. */
struct EngineConfig
{
    /** Backbone geometry shared by all sessions. */
    ModelConfig model = ModelConfig::tiny();
    /** Default retrieval policy of new sessions. */
    PolicySpec policy;
    /** Worker threads; 0 picks from hardware concurrency. */
    uint32_t workers = 0;
    /** Default per-session master seed (weights + streams). */
    uint64_t sessionSeed = 42;
    /** Admission + dispatch knobs (defaults: unlimited sessions,
     *  unbounded queues, 4-item round-robin slices). */
    SchedulerConfig sched;
    /** Policy registry override; PolicyFactory::global() when null.
     *  Must outlive the engine. */
    const PolicyFactory *factory = nullptr;
    /** KV working-set budget + hibernation knobs. Default (budget 0)
     *  disables hibernation entirely. */
    KvBudgetConfig kvBudget;
    /** Cross-session batched generation (PR 10): when enabled, a
     *  dispatch round whose next item is a single-token Generate step
     *  coalesces with other sessions' ready Generate steps into one
     *  fused forward pass (StreamingSession::generateStepBatched) —
     *  every session shares one weight stream per fused step. All
     *  sessions share the engine's ModelConfig, so geometry always
     *  matches; sessions with equal master seeds additionally share
     *  weight *values* and run under grouped matmuls. Per-session
     *  results are byte-identical to solo execution whether or not
     *  steps coalesce; with the default (disabled) the dispatch path
     *  is byte-identical to the pre-batching engine. Stats::batch
     *  reports fused-step counters. */
    BatchConfig batching;
};

/** Per-session creation parameters. */
struct SessionOptions
{
    std::string name = "session";
    VideoConfig video;
    /** Per-stream seed (mixed into video + question randomness),
     *  mirroring SessionScript::seed. */
    uint64_t scriptSeed = 0;
    /** Master seed override; engine default when unset. */
    std::optional<uint64_t> sessionSeed;
    /** Policy override; engine default when unset. */
    std::optional<PolicySpec> policy;
    /** Teacher forcing: generation consumes these token ids. */
    std::vector<uint32_t> forcedTokens;
    /** Scheduling class the session dispatches under (weighted
     *  round-robin across classes; see SchedulerConfig). Mutable
     *  mid-stream via Engine::setClass. */
    SchedClass schedClass = SchedClass::Interactive;
    /** Per-session rate limit override (max unit items per dispatch
     *  slice); engine default `sched.maxItemsPerRound` when unset,
     *  0 = no cap. */
    std::optional<uint32_t> maxItemsPerRound;

    /** Options matching a scripted session's stream parameters. */
    static SessionOptions fromScript(const SessionScript &script);
};

/** One fidelity evaluation: a script run under a policy spec. */
struct FidelityJob
{
    SessionScript script;
    PolicySpec policy;
};

class Engine
{
  public:
    explicit Engine(EngineConfig config);

    /** Drains every open session, then stops the pool. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineConfig &config() const { return cfg; }
    uint32_t workerCount() const { return pool.workerCount(); }

    // ---- session lifecycle -------------------------------------

    /**
     * Open a session; its model/policy are built on admission.
     * @throws AdmissionError at the live-session cap.
     */
    SessionId createSession(const SessionOptions &options = {});

    /** createSession() that reports rejection as a result instead
     *  of throwing. The model is not built on rejection. */
    Admission tryCreateSession(const SessionOptions &options = {});

    /** createSession(fromScript(script)) + enqueue all its events. */
    SessionId submit(const SessionScript &script);

    /**
     * submit() with policy/sessionSeed/forcedTokens overrides. The
     * script remains the source of truth for stream identity:
     * options.name/video/scriptSeed are taken from it.
     */
    SessionId submit(const SessionScript &script,
                     SessionOptions options);

    /** Stream @p frames video frames into the session (async).
     *  @throws QueueFullError when a bounded queue overflows. */
    void feedFrame(SessionId id, uint32_t frames = 1);

    /** One QA round: @p question_tokens prefilled, then
     *  @p answer_tokens generated (async; the answer is enqueued as
     *  answer_tokens unit steps).
     *  @throws QueueFullError when a bounded queue overflows. */
    void ask(SessionId id, uint32_t question_tokens,
             uint32_t answer_tokens);

    /** Enqueue scripted events (async, expanded to unit items).
     *  @throws QueueFullError when a bounded queue overflows. */
    void enqueue(SessionId id, const std::vector<SessionEvent> &events);

    // Backpressure-reporting twins of the verbs above. All-or-
    // nothing: on RejectedQueueFull nothing was enqueued. Unknown /
    // closed ids still throw std::out_of_range — that is a usage
    // error, not backpressure.

    EnqueueResult tryFeedFrame(SessionId id, uint32_t frames = 1);
    EnqueueResult tryAsk(SessionId id, uint32_t question_tokens,
                         uint32_t answer_tokens);
    EnqueueResult tryEnqueue(SessionId id,
                             const std::vector<SessionEvent> &events);

    /** Block until the session's queue is drained. */
    void wait(SessionId id);

    /** Block until every open session is drained. */
    void waitAll();

    /** Drain the session and aggregate its results so far. The
     *  session stays open and can keep receiving events. */
    SessionRunResult result(SessionId id);

    /** Drain and destroy the session (model, policy, cache). */
    void closeSession(SessionId id);

    size_t openSessions() const;

    // ---- scheduling control / observability --------------------

    /** Move the session to scheduling class @p cls mid-stream (it
     *  re-queues at the back of the new class's ready list; queued
     *  work and results are unaffected — only dispatch order and
     *  subsequent per-class accounting change).
     *  @throws std::out_of_range on an unknown or closed id. */
    void setClass(SessionId id, SchedClass cls);

    /** Stop dispatching new work (in-flight slices finish; verbs
     *  still enqueue). Useful to stage a deterministic burst.
     *  Caution: the draining verbs (result/wait/model/policy/
     *  memoryStats/closeSession/waitAll) block until the queue
     *  empties, which cannot happen while paused — call resume()
     *  first (or from another thread). */
    void pause();

    /** Undo pause() and dispatch everything that became ready. */
    void resume();

    /** Engine-wide scheduler snapshot: admissions, rejections,
     *  queue depths, wait/service times. */
    Stats stats() const;

    /** One open session's queue counters. */
    QueueStats sessionStats(SessionId id) const;

    // ---- drained-session accessors -----------------------------
    // Each drains the session first. The returned reference/pointer
    // stays valid until further events are fed or the session closes.

    /** The session's model (KV cache inspection etc.). */
    const Model &model(SessionId id);

    /** The session's owned policy stack. */
    const PolicyInstance &policy(SessionId id);

    /** Replay stats when the spec enabled memory tracking. */
    const MemoryReplayStats *memoryStats(SessionId id);

    // ---- fidelity evaluation -----------------------------------

    /**
     * Accuracy-proxy evaluation of @p spec on @p script against the
     * full-attention reference (pipeline/accuracy_eval semantics,
     * executed through engine sessions).
     */
    FidelityResult evaluateFidelity(const SessionScript &script,
                                    const PolicySpec &spec);

    /**
     * Evaluate many (script, policy) pairs, running the reference
     * pass and the teacher-forced pass of all jobs concurrently on
     * the pool. Results are returned in job order and are identical
     * to calling evaluateFidelity() sequentially. Opens jobs.size()
     * sessions at once: needs headroom under maxLiveSessions.
     */
    std::vector<FidelityResult>
    evaluateFidelityBatch(const std::vector<FidelityJob> &jobs);

  private:
    struct Session
    {
        SessionOptions options;
        PolicyInstance policy;
        std::unique_ptr<StreamingSession> exec;
        /** True while the session state lives in the cold store
         *  (exec and policy are released). Only touched with
         *  exclusive access to the session (running or pinned). */
        bool hibernated = false;
    };

    /** Executes one dispatch slice (Scheduler callback). */
    void runItems(SessionId id,
                  const std::vector<SessionEvent> &batch);
    /** Executes one fused generation step for every listed session
     *  (Scheduler batch callback; each member advances one token). */
    void runBatch(const std::vector<SessionId> &ids);
    Session *sessionFor(SessionId id);
    Session &pinnedSession(SessionId id);
    /** pinWhenIdle or std::out_of_range for unknown/closed ids. */
    void pinOrThrow(SessionId id);

    // Hibernation transitions. Callers hold exclusive access to the
    // session (it is running on this worker, or pinned by us).
    /** Rebuild model/policy from config + seed and restore the cold
     *  blob bit-exactly; erases the blob on success. */
    void wakeSession(SessionId id, Session &s);
    /** Serialize into the cold store, release exec + policy. */
    void hibernateSession(SessionId id, Session &s);
    /** Hibernate idle victims (skipping @p self and busy sessions)
     *  until the resident set fits the budget or no candidate can be
     *  pinned. */
    void enforceBudget(SessionId self);

    EngineConfig cfg;
    ThreadPool pool;
    Scheduler sched;
    /** Cold store for hibernated blobs (config's, or an owned
     *  MemoryColdStore). */
    std::shared_ptr<ColdStore> coldStore;
    KvBudget budget;

    mutable Mutex smu; //!< Guards `sessions` and `nextId` only.
    std::map<SessionId, std::unique_ptr<Session>> sessions
        VREX_GUARDED_BY(smu);
    SessionId nextId VREX_GUARDED_BY(smu) = 1;
};

} // namespace vrex::serve

#endif // VREX_SERVE_ENGINE_HH
