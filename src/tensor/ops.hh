/**
 * @file
 * Dense math kernels for the functional transformer runtime: matmul,
 * softmax, RMSNorm, SiLU, rotary position embedding, similarity and
 * top-k helpers.
 */

#ifndef VREX_TENSOR_OPS_HH
#define VREX_TENSOR_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace vrex
{

/** out = a (m×k) * b (k×n). Shapes are checked. */
void matmul(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a (m×k) * b^T (n×k). */
void matmulTransposed(const Matrix &a, const Matrix &bT, Matrix &out);

/** Row-wise in-place softmax. */
void softmaxRows(Matrix &m);

/** Numerically stable softmax of one row buffer. */
void softmax(float *row, uint32_t n);

/** RMSNorm of @p x (length n) with learned gain @p weight, in place. */
void rmsNorm(float *x, const float *weight, uint32_t n, float eps = 1e-5f);

/** SiLU activation in place. */
void silu(float *x, uint32_t n);

/** Elementwise product: x *= y. */
void hadamard(float *x, const float *y, uint32_t n);

/** x += y. */
void addInPlace(float *x, const float *y, uint32_t n);

/**
 * Apply rotary position embedding to one head vector of even length
 * @p dim at sequence position @p pos (llama convention, theta=10000).
 */
void applyRope(float *head, uint32_t dim, uint32_t pos,
               float thetaBase = 10000.0f);

/** Invert applyRope (rotate by the negative angle). */
void applyRopeInverse(float *head, uint32_t dim, uint32_t pos,
                      float thetaBase = 10000.0f);

/** Dot product of two float vectors. */
float dot(const float *a, const float *b, uint32_t n);

/** L2 norm. */
float norm2(const float *a, uint32_t n);

/** Cosine similarity (0 if either vector is zero). */
float cosineSimilarity(const float *a, const float *b, uint32_t n);

/**
 * Indices of the @p k largest values in @p scores, in descending score
 * order. k is clamped to scores.size().
 */
std::vector<uint32_t> topkIndices(const std::vector<float> &scores,
                                  uint32_t k);

} // namespace vrex

#endif // VREX_TENSOR_OPS_HH
