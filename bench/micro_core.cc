/**
 * @file
 * google-benchmark micro-benchmarks of the DRE kernels: hash-bit
 * encoding, packed Hamming distance vs. float cosine similarity,
 * HC-table insertion, and WiCSum (reference sort vs. early-exit
 * bucket sweep) — the software-side counterparts of the HCU and WTU.
 *
 * Unlike the figure/table harnesses this binary does not use
 * vrex::bench::Reporter: Google Benchmark already provides machine
 * output (`--benchmark_format=json --benchmark_out=PATH`). Its
 * numbers are wall-clock timings of the host machine, so they are
 * deliberately excluded from the bench/baseline.json drift gate.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hh"
#include "core/hash_encoder.hh"
#include "core/hc_table.hh"
#include "core/wicsum.hh"
#include "tensor/ops.hh"

using namespace vrex;

namespace
{

std::vector<float>
randomKeys(uint32_t n, uint32_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> keys(size_t(n) * dim);
    rng.fillGaussian(keys.data(), keys.size(), 1.0f);
    return keys;
}

} // namespace

static void
BM_HashEncode(benchmark::State &state)
{
    const uint32_t dim = 128;
    HashEncoder enc(dim, 32, 7);
    auto keys = randomKeys(256, dim, 1);
    uint32_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            enc.encode(keys.data() + (i++ % 256) * dim));
    }
}
BENCHMARK(BM_HashEncode);

static void
BM_HammingDistance(benchmark::State &state)
{
    HashEncoder enc(128, 32, 7);
    auto keys = randomKeys(2, 128, 2);
    BitSig a = enc.encode(keys.data());
    BitSig b = enc.encode(keys.data() + 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.hamming(b));
}
BENCHMARK(BM_HammingDistance);

static void
BM_CosineSimilarityFullPrecision(benchmark::State &state)
{
    // The expensive operation hash bits replace.
    auto keys = randomKeys(2, 128, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cosineSimilarity(keys.data(), keys.data() + 128, 128));
}
BENCHMARK(BM_CosineSimilarityFullPrecision);

static void
BM_HcTableInsert(benchmark::State &state)
{
    const uint32_t dim = 128;
    const uint32_t n = static_cast<uint32_t>(state.range(0));
    HashEncoder enc(dim, 32, 7);
    auto keys = randomKeys(n, dim, 4);
    std::vector<BitSig> sigs;
    for (uint32_t t = 0; t < n; ++t)
        sigs.push_back(enc.encode(keys.data() + size_t(t) * dim));
    for (auto _ : state) {
        HCTable tab(dim, 32, 7);
        for (uint32_t t = 0; t < n; ++t)
            tab.insert(t, keys.data() + size_t(t) * dim, sigs[t]);
        benchmark::DoNotOptimize(tab.clusterCount());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HcTableInsert)->Arg(64)->Arg(256)->Arg(1024);

static void
BM_WicsumReference(benchmark::State &state)
{
    const uint32_t n = static_cast<uint32_t>(state.range(0));
    Rng rng(5);
    std::vector<float> scores(n);
    std::vector<uint32_t> counts(n);
    for (uint32_t i = 0; i < n; ++i) {
        scores[i] = static_cast<float>(rng.uniform());
        counts[i] = 1 + static_cast<uint32_t>(rng.uniformInt(32));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            wicsumSelectReference(scores, counts, 0.3f));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WicsumReference)->Arg(256)->Arg(1024)->Arg(4096);

static void
BM_WicsumEarlyExit(benchmark::State &state)
{
    const uint32_t n = static_cast<uint32_t>(state.range(0));
    Rng rng(5);
    std::vector<float> scores(n);
    std::vector<uint32_t> counts(n);
    for (uint32_t i = 0; i < n; ++i) {
        scores[i] = static_cast<float>(rng.uniform());
        counts[i] = 1 + static_cast<uint32_t>(rng.uniformInt(32));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            wicsumSelectEarlyExit(scores, counts, 0.3f, 16));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WicsumEarlyExit)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
