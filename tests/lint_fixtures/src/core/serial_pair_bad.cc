// Fixture: serial-pairing must flag a restore() whose reads do not
// mirror the writes — here serialize emits two uint32 fields and a
// vector, restore consumes one uint32 and no vector.
#include "common/serial.hh"

struct Skewed
{
    unsigned a = 0, b = 0;
    std::vector<float> v;

    void
    serialize(vrex::serial::ByteWriter &w) const
    {
        w.put<uint32_t>(a);
        w.put<uint32_t>(b);
        w.putVec(v);
    }

    void
    restore(vrex::serial::ByteReader &r)
    {
        a = r.get<uint32_t>();
    }
};
