/**
 * @file
 * Fig. 19 reproduction: the ReSV algorithm ablation — baseline
 * (VideoLLM-Online, no retrieval), ReSV without clustering (WiCSum
 * light attention over raw tokens), and full ReSV with hash-bit
 * clustering. Reports the functional accuracy proxy and the frame
 * latency speedup at 40K from the timing model, plus the N_hp /
 * Th_hd operating-point sweep that motivates the paper's defaults.
 *
 * Paper anchors: w/o clustering 1.6x (-0.3% accuracy); full ReSV
 * 9.4x (-0.8% accuracy).
 */

#include <string>

#include "bench_util.hh"
#include "common/bench_report.hh"
#include "pipeline/coupling.hh"
#include "serve/engine.hh"
#include "sim/hw_config.hh"
#include "sim/method_model.hh"
#include "sim/system_model.hh"
#include "video/workload.hh"

using namespace vrex;

namespace
{

double
frameLatencyMs(const AcceleratorConfig &hw, const MethodModel &m)
{
    RunConfig rc;
    rc.hw = hw;
    rc.method = m;
    rc.cacheTokens = 40000;
    return SystemModel(rc).framePhase().totalMs;
}

void
run(bench::Reporter &rep)
{
    const ModelConfig cfg = ModelConfig::tiny();
    const double vanilla_acc = 49.5;  // COIN average, Fig. 19.
    SessionScript script = WorkloadGenerator::coinAverage(5);

    serve::EngineConfig engine_cfg;
    engine_cfg.model = cfg;
    engine_cfg.sessionSeed = 42;
    serve::Engine engine(engine_cfg);

    // Functional accuracy of the two ReSV variants (one concurrent
    // engine batch).
    ResvConfig without_clustering;
    without_clustering.clustering = false;
    const std::vector<FidelityResult> ablation =
        engine.evaluateFidelityBatch(
            {{script, serve::PolicySpec::resv(without_clustering)},
             {script, serve::PolicySpec::resv()}});
    const FidelityResult &f_noclust = ablation[0];
    const FidelityResult &f_full = ablation[1];

    // Timing at 40K: baseline = full fetch on AGX; w/o clustering =
    // token-granular prediction; full = V-Rex8 with DRE + KVMU.
    double base_ms =
        frameLatencyMs(AcceleratorConfig::agxOrin(),
                       MethodModel::flexgen());
    MethodModel m_noclust = MethodModel::resvSoftware();
    m_noclust.granularity = PredGranularity::Token;
    m_noclust.frameSelRatio = f_noclust.frameRatio;
    double noclust_ms =
        frameLatencyMs(AcceleratorConfig::agxOrin(), m_noclust);
    MethodModel m_full = coupleResv(MethodModel::resvFull(),
                                    SessionRunResult{}, 0.0);
    m_full.frameSelRatio = f_full.frameRatio;
    double full_ms =
        frameLatencyMs(AcceleratorConfig::vrex8(), m_full);

    rep.beginPanel("ablation",
                   "Fig. 19: ReSV ablation (accuracy proxy + 40K "
                   "frame latency)");
    rep.add("VideoLLM-Online", "speedup", 1.0, "x", 1);
    rep.add("VideoLLM-Online", "accuracy", vanilla_acc, "%", 1);
    rep.addText("VideoLLM-Online", "frame_ratio", "-");
    rep.add("ReSV w/o clustering", "speedup", base_ms / noclust_ms,
            "x", 1);
    rep.add("ReSV w/o clustering", "accuracy",
            proxyAccuracy(vanilla_acc, f_noclust), "%", 1);
    rep.add("ReSV w/o clustering", "frame_ratio",
            100.0 * f_noclust.frameRatio, "%", 1);
    rep.add("ReSV (full)", "speedup", base_ms / full_ms, "x", 1);
    rep.add("ReSV (full)", "accuracy",
            proxyAccuracy(vanilla_acc, f_full), "%", 1);
    rep.add("ReSV (full)", "frame_ratio", 100.0 * f_full.frameRatio,
            "%", 1);
    rep.note("paper: 1.6x / -0.3% without clustering, 9.4x / "
             "-0.8% with clustering");

    // Operating-point sweep: N_hp and Th_hd trade correlation
    // quality against cluster compression. Needs the HC-table state
    // after each run, so it drives sessions explicitly: one shared
    // full-attention reference, then nine concurrent teacher-forced
    // sessions whose ReSV policies stay inspectable until close.
    rep.beginPanel("sweep",
                   "ReSV operating-point sweep (extension ablation)");
    serve::SessionId ref_id = engine.submit(script);
    const SessionRunResult ref = engine.result(ref_id);
    engine.closeSession(ref_id);

    struct SweepPoint
    {
        serve::SessionId id;
        std::string row;
    };
    std::vector<SweepPoint> sweep;
    for (uint32_t n_hp : {16u, 32u, 64u}) {
        for (uint32_t th_hd : {3u, 7u, 12u}) {
            ResvConfig c;
            c.nHp = n_hp;
            c.thHd = th_hd;
            serve::SessionOptions o;
            o.policy = serve::PolicySpec::resv(c);
            o.forcedTokens = ref.generated;
            sweep.push_back({engine.submit(script, o),
                             "nhp=" + std::to_string(n_hp) +
                                 ",thd=" + std::to_string(th_hd)});
        }
    }
    for (const SweepPoint &point : sweep) {
        FidelityResult f =
            compareRuns(ref, engine.result(point.id));
        double tok_per_cluster =
            engine.policy(point.id).resv()->avgClusterSize();
        engine.closeSession(point.id);
        rep.add(point.row, "agreement", 100.0 * f.tokenAgreement, "%",
                1);
        rep.add(point.row, "frame_ratio", 100.0 * f.frameRatio, "%",
                1);
        rep.add(point.row, "tok_per_cluster", tok_per_cluster, "", 1);
    }
    rep.note("the paper's N_hp=32, Th_hd=7 sits at the knee: "
             "strong compression with high agreement");
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runBench("fig19", argc, argv, run);
}
