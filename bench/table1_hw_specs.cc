/**
 * @file
 * Table I reproduction: hardware specifications of the compared
 * platforms, as configured in the simulator.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/hw_config.hh"

using namespace vrex;

namespace
{

void
row(const AcceleratorConfig &hw)
{
    std::printf("%-10s %10.1f %12.1f %10.0f %12.1f %10.1f %7u\n",
                hw.name.c_str(), hw.peakTflops, hw.memBandwidthGBs,
                hw.memCapacityGB, hw.pcieBandwidthGBs,
                hw.systemPowerW, hw.nCores);
}

} // namespace

int
main()
{
    bench::header("Table I: Hardware Specifications of GPUs and V-Rex");
    std::printf("%-10s %10s %12s %10s %12s %10s %7s\n", "Platform",
                "TFLOPS", "MemBW GB/s", "Mem GB", "PCIe GB/s",
                "Power W", "Cores");
    row(AcceleratorConfig::agxOrin());
    row(AcceleratorConfig::a100());
    row(AcceleratorConfig::vrex8());
    row(AcceleratorConfig::vrex48());
    bench::note("paper: AGX 54/204.8/32/4/40; A100 312/1935/80/32/300; "
                "V-Rex8 53.3/204.8/-/4/35; V-Rex48 319.5/1935/-/32/203.68");
    return 0;
}
