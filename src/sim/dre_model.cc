#include "sim/dre_model.hh"

#include <algorithm>
#include <cmath>

namespace vrex
{

double
DreModel::hcuSeconds(double new_tokens, double n_clusters,
                     uint32_t kv_heads, uint32_t batch,
                     uint32_t n_bits) const
{
    if (!cfg.hasDre || new_tokens <= 0.0)
        return 0.0;
    const double comparisons =
        new_tokens * std::max(1.0, n_clusters) * kv_heads * batch;
    const double cycles_per_cmp = std::ceil(
        static_cast<double>(n_bits) / (cfg.dre.nHcuW * 8.0));
    const double lanes =
        static_cast<double>(cfg.dre.nHcuH) * std::max(1u, cfg.nCores);
    const double cycles = comparisons * cycles_per_cmp / lanes;
    return cycles / (cfg.clockGhz * 1e9);
}

double
DreModel::wtuSeconds(double n_clusters, double scanned_frac,
                     uint32_t kv_heads, uint32_t batch) const
{
    if (!cfg.hasDre || n_clusters <= 0.0)
        return 0.0;
    // Preprocess touches every element once (weighted sum, min/max);
    // the token-selection sweep touches scanned_frac of the row.
    const double elements =
        n_clusters * (1.0 + scanned_frac) * kv_heads * batch;
    const double lanes = static_cast<double>(cfg.dre.nWtuH) *
        cfg.dre.nWtuW * std::max(1u, cfg.nCores);
    const double cycles = elements / lanes + 20.0 /* bucket setup */;
    return cycles / (cfg.clockGhz * 1e9);
}

DreTiming
DreModel::layerTiming(double new_tokens, double n_clusters,
                      uint32_t kv_heads, uint32_t batch,
                      uint32_t n_bits) const
{
    DreTiming t;
    t.hcuSeconds =
        hcuSeconds(new_tokens, n_clusters, kv_heads, batch, n_bits);
    t.wtuSeconds = wtuSeconds(n_clusters, 0.16, kv_heads, batch);
    return t;
}

} // namespace vrex
