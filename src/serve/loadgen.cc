#include "serve/loadgen.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace vrex::serve
{

namespace
{

/** rank = ceil(q*n) percentile of a sorted sample (us). */
uint64_t
percentileUs(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

} // namespace

uint32_t
LoadReport::offered() const
{
    uint32_t n = 0;
    for (const auto &c : classes)
        n += c.offered;
    return n;
}

uint32_t
LoadReport::admitted() const
{
    uint32_t n = 0;
    for (const auto &c : classes)
        n += c.admitted;
    return n;
}

uint32_t
LoadReport::rejectedSessions() const
{
    uint32_t n = 0;
    for (const auto &c : classes)
        n += c.rejectedSessions;
    return n;
}

uint32_t
LoadReport::sloMet() const
{
    uint32_t n = 0;
    for (const auto &c : classes)
        n += c.sloMet;
    return n;
}

uint64_t
LoadReport::itemsEnqueued() const
{
    uint64_t n = 0;
    for (const auto &c : classes)
        n += c.itemsEnqueued;
    return n;
}

uint64_t
LoadReport::itemsRejected() const
{
    uint64_t n = 0;
    for (const auto &c : classes)
        n += c.itemsRejected;
    return n;
}

double
LoadReport::rejectionRate() const
{
    const uint32_t off = offered();
    return off == 0
               ? 0.0
               : static_cast<double>(rejectedSessions()) / off;
}

double
LoadReport::goodputPerSec() const
{
    return endUs == 0
               ? 0.0
               : static_cast<double>(sloMet()) /
                     (static_cast<double>(endUs) / 1e6);
}

double
LoadReport::itemThroughputPerSec() const
{
    return endUs == 0
               ? 0.0
               : static_cast<double>(itemsEnqueued()) /
                     (static_cast<double>(endUs) / 1e6);
}

LoadGen::LoadGen(LoadGenConfig config) : cfg(std::move(config))
{
    VREX_ASSERT(cfg.virtualServers > 0,
                "LoadGen needs at least one virtual server");
    VREX_ASSERT(cfg.virtualUsPerItem > 0,
                "LoadGen needs a positive virtual service time");
}

LoadReport
LoadGen::run(const TrafficTrace &trace)
{
    EngineConfig ecfg;
    ecfg.model = cfg.model;
    ecfg.policy = cfg.policy;
    ecfg.workers = cfg.workers;
    ecfg.sessionSeed = cfg.sessionSeed;
    ecfg.sched = cfg.sched;
    Engine engine(ecfg);

    LoadReport rep;
    rep.trace = trace.spec.name;
    rep.horizonUs = trace.horizonUs();

    // Virtual FCFS service model: admitted sessions occupy the
    // earliest-free of `virtualServers` servers for
    // items * virtualUsPerItem virtual us.
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        serverFreeUs;
    for (uint32_t s = 0; s < cfg.virtualServers; ++s)
        serverFreeUs.push(0);

    struct LiveSession
    {
        uint64_t completionUs;
        SessionId id;
        bool operator>(const LiveSession &o) const
        {
            // Tie-break on id: retirement order is deterministic.
            return completionUs != o.completionUs
                       ? completionUs > o.completionUs
                       : id > o.id;
        }
    };
    std::priority_queue<LiveSession, std::vector<LiveSession>,
                        std::greater<>>
        live;

    std::array<std::vector<uint64_t>, kSchedClasses> flows;
    uint64_t lastCompletionUs = 0;

    for (const TraceArrival &arrival : trace.arrivals) {
        LoadClassReport &cls =
            rep.classes[static_cast<size_t>(arrival.cls)];
        const uint32_t items = arrival.unitItems();
        ++cls.offered;
        cls.itemsOffered += items;

        // Retire every session whose virtual completion has passed —
        // the only thing that frees admission slots. closeSession
        // drains the session's real work first, so the engine's
        // logical counters are settled for it.
        while (!live.empty() &&
               live.top().completionUs <= arrival.atUs) {
            engine.closeSession(live.top().id);
            live.pop();
        }

        // Open loop: offer the arrival, count the verdict, move on.
        SessionOptions options =
            SessionOptions::fromScript(arrival.script);
        options.schedClass = schedClassFor(arrival.cls);
        const Admission adm = engine.tryCreateSession(options);
        if (!adm.admitted()) {
            ++cls.rejectedSessions;
            cls.itemsRejected += items;
            continue;
        }
        ++cls.admitted;

        // Feed the script through the backpressure verbs in
        // verb-sized chunks (frame runs, QA rounds): each chunk is
        // all-or-nothing, rejected chunks are lost, not retried.
        uint64_t enq = 0, rej = 0;
        const auto &events = arrival.script.events;
        for (size_t i = 0; i < events.size();) {
            EnqueueResult r;
            if (events[i].type == SessionEvent::Type::Frame) {
                uint32_t n = 0;
                while (i + n < events.size() &&
                       events[i + n].type ==
                           SessionEvent::Type::Frame)
                    ++n;
                r = engine.tryFeedFrame(adm.id, n);
                i += n;
            } else if (events[i].type ==
                           SessionEvent::Type::Question &&
                       i + 1 < events.size() &&
                       events[i + 1].type ==
                           SessionEvent::Type::Generate) {
                r = engine.tryAsk(adm.id, events[i].tokens,
                                  events[i + 1].tokens);
                i += 2;
            } else {
                r = engine.tryEnqueue(adm.id, {events[i]});
                i += 1;
            }
            (r.accepted() ? enq : rej) += r.items;
        }
        cls.itemsEnqueued += enq;
        cls.itemsRejected += rej;

        // Virtual service: FCFS over the enqueued items.
        const uint64_t start =
            std::max(arrival.atUs, serverFreeUs.top());
        serverFreeUs.pop();
        const uint64_t completion =
            start + enq * cfg.virtualUsPerItem;
        serverFreeUs.push(completion);
        live.push({completion, adm.id});
        lastCompletionUs = std::max(lastCompletionUs, completion);

        const uint64_t flow = completion - arrival.atUs;
        flows[static_cast<size_t>(arrival.cls)].push_back(flow);
        if (rej == 0 &&
            flow <= cfg.sloUs[static_cast<size_t>(arrival.cls)])
            ++cls.sloMet;
    }

    // Drain the tail in virtual retirement order.
    while (!live.empty()) {
        engine.closeSession(live.top().id);
        live.pop();
    }

    rep.endUs = std::max(rep.horizonUs, lastCompletionUs);
    for (uint32_t c = 0; c < kSchedClasses; ++c) {
        auto &fl = flows[c];
        std::sort(fl.begin(), fl.end());
        LoadClassReport &cls = rep.classes[c];
        cls.flowP50Us = percentileUs(fl, 0.50);
        cls.flowP95Us = percentileUs(fl, 0.95);
        cls.flowP99Us = percentileUs(fl, 0.99);
        cls.flowMaxUs = fl.empty() ? 0 : fl.back();
    }
    rep.engine = engine.stats();
    return rep;
}

} // namespace vrex::serve
