#include "tensor/matrix.hh"

// Matrix is header-only today; this translation unit anchors the
// library target and keeps room for out-of-line growth.
