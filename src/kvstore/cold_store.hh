/**
 * @file
 * Cold storage for hibernated session blobs.
 *
 * When the serve-layer KV budget evicts an idle session, the session
 * serializes itself (pipeline/streaming_session) and the blob moves
 * to a ColdStore — the session's KV leaves the hot tier entirely, not
 * just the device window that HierarchicalKVCache models. The store
 * reuses the Tier/TransferStats vocabulary so sim/{pcie,ssd}_model
 * can price hibernate/wake traffic the same way they price KV
 * offload/fetch traffic.
 *
 * Implementations must be safe for concurrent use from multiple
 * engine workers.
 */

#ifndef VREX_KVSTORE_COLD_STORE_HH
#define VREX_KVSTORE_COLD_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "kvstore/hierarchical_cache.hh"

namespace vrex
{

/** Key-value store of hibernated session blobs. */
class ColdStore
{
  public:
    virtual ~ColdStore() = default;

    /** Store @p blob under @p key, replacing any previous blob. */
    virtual void put(uint64_t key,
                     const std::vector<uint8_t> &blob) = 0;

    /** Fetch the blob stored under @p key.
     *  @throws std::out_of_range when the key is absent. */
    virtual std::vector<uint8_t> get(uint64_t key) const = 0;

    virtual bool contains(uint64_t key) const = 0;

    /** Drop the blob under @p key (no-op when absent). */
    virtual void erase(uint64_t key) = 0;

    /** Total bytes currently stored. */
    virtual uint64_t totalBytes() const = 0;

    /** Number of blobs currently stored. */
    virtual uint64_t count() const = 0;

    /** Which memory tier this store represents (pricing). */
    virtual Tier tier() const = 0;

    /**
     * Cumulative traffic: offloadedBytes = bytes written by put(),
     * fetchedBytes = bytes read by get(); the token counters carry
     * blob counts (a hibernated session is one opaque unit, not a
     * token stream).
     */
    virtual TransferStats stats() const = 0;
};

/** Cold store in host DRAM (Tier::CpuMem). */
class MemoryColdStore : public ColdStore
{
  public:
    void put(uint64_t key, const std::vector<uint8_t> &blob) override;
    std::vector<uint8_t> get(uint64_t key) const override;
    bool contains(uint64_t key) const override;
    void erase(uint64_t key) override;
    uint64_t totalBytes() const override;
    uint64_t count() const override;
    Tier tier() const override { return Tier::CpuMem; }
    TransferStats stats() const override;

  private:
    mutable Mutex mu;
    std::map<uint64_t, std::vector<uint8_t>> blobs VREX_GUARDED_BY(mu);
    mutable TransferStats xfer VREX_GUARDED_BY(mu);
};

/**
 * Cold store on the filesystem (Tier::Storage): one file per blob
 * under a directory, named <prefix><key>.blob. The directory is
 * created on first put(). Files surviving a crash are picked up
 * again — contains()/get() consult the filesystem, not memory.
 */
class FileColdStore : public ColdStore
{
  public:
    explicit FileColdStore(std::string directory,
                           std::string file_prefix = "session-");

    void put(uint64_t key, const std::vector<uint8_t> &blob) override;
    std::vector<uint8_t> get(uint64_t key) const override;
    bool contains(uint64_t key) const override;
    void erase(uint64_t key) override;
    uint64_t totalBytes() const override;
    uint64_t count() const override;
    Tier tier() const override { return Tier::Storage; }
    TransferStats stats() const override;

    const std::string &directory() const { return dir; }

  private:
    std::string pathFor(uint64_t key) const;

    std::string dir;    //!< Immutable after construction.
    std::string prefix; //!< Immutable after construction.
    /** Also serializes the filesystem accesses themselves: the
     *  write-then-rename in put() must not interleave with a
     *  concurrent get()/erase() of the same key. */
    mutable Mutex mu;
    mutable TransferStats xfer VREX_GUARDED_BY(mu);
};

} // namespace vrex

#endif // VREX_KVSTORE_COLD_STORE_HH
