/**
 * @file
 * Deterministic scheduler stress harness for the serve layer.
 *
 * Locks down the PR-4 scheduler guarantees:
 *  - N sessions under seeded-random verb interleavings produce
 *    results byte-identical to sequential StreamingSession replays,
 *    for every (worker count, slice size) combination;
 *  - round-robin fairness: a session waits at most live-1 other
 *    slices between becoming ready and being dispatched;
 *  - admission control (live-session cap) and bounded per-session
 *    queues reject with explicit backpressure results, and the
 *    rejections are exactly countable via serve::Stats;
 *  - Engine error/edge paths: ask before any frame, result on a
 *    rejected admission, double close, verbs after close;
 *  - PolicyFactory::registerMaker with a custom instrumented policy
 *    kind, used to count scheduled unit work items.
 *
 * The seeded-random verb-script generator, the sequential ground
 * truth, and the instrumented CountingPolicy live in testutil.hh so
 * serve_prio_test (priority classes) shares the same deterministic
 * stress harness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "pipeline/streaming_session.hh"
#include "retrieval/policies.hh"
#include "serve/engine.hh"
#include "serve/policy_factory.hh"
#include "serve/scheduler.hh"
#include "serve/stats.hh"
#include "testutil.hh"
#include "video/workload.hh"

using namespace vrex;
using namespace vrex::serve;
using testutil::CountingPolicy;
using testutil::expectIdenticalRuns;
using testutil::sequentialReplay;

namespace
{

/** The shared generator under this suite's historical name. */
SessionScript
randomScript(uint64_t seed, size_t index)
{
    return testutil::randomVerbScript(seed, index);
}

std::vector<PolicySpec>
specZoo()
{
    return testutil::policySpecZoo();
}

} // namespace

// ---------------------------------------------------------------
// Unit work items
// ---------------------------------------------------------------

TEST(SchedUnits, GenerateExpandsToSingleSteps)
{
    auto frame = StreamingSession::unitEvents(
        {SessionEvent::Type::Frame, 0});
    ASSERT_EQ(frame.size(), 1u);
    EXPECT_EQ(frame[0].type, SessionEvent::Type::Frame);

    auto question = StreamingSession::unitEvents(
        {SessionEvent::Type::Question, 7});
    ASSERT_EQ(question.size(), 1u);
    EXPECT_EQ(question[0].tokens, 7u);

    auto gen = StreamingSession::unitEvents(
        {SessionEvent::Type::Generate, 5});
    ASSERT_EQ(gen.size(), 5u);
    for (const SessionEvent &e : gen) {
        EXPECT_EQ(e.type, SessionEvent::Type::Generate);
        EXPECT_EQ(e.tokens, 1u);
    }

    EXPECT_TRUE(StreamingSession::unitEvents(
                    {SessionEvent::Type::Generate, 0})
                    .empty());
}

TEST(SchedUnits, UnitReplayIsByteIdenticalToScriptedRun)
{
    ModelConfig model = ModelConfig::tiny();
    SessionScript script = randomScript(901, 0);

    SessionRunResult whole =
        sequentialReplay(model, script, PolicySpec::resv(), 42);

    PolicyInstance inst = makePolicy(model, PolicySpec::resv());
    StreamingSession unit(model, inst.active(), 42);
    unit.begin(script.name, script.video, script.seed);
    for (const SessionEvent &event : script.events)
        for (const SessionEvent &u : StreamingSession::unitEvents(event))
            unit.apply(u);
    expectIdenticalRuns(whole, unit.snapshot());
}

// ---------------------------------------------------------------
// Stress: seeded-random interleavings, concurrent == sequential
// ---------------------------------------------------------------

TEST(SchedStress, SeededRandomInterleavingsMatchSequential)
{
    // 5 sessions with per-session random scripts and mixed policies,
    // fed in seeded-random chunk interleavings, across three
    // scheduler shapes (including slice 0 = no time-slicing). Every
    // concurrent result must equal its sequential replay.
    const ModelConfig model = ModelConfig::tiny();
    const std::vector<PolicySpec> specs = specZoo();
    const size_t kSessions = 5;

    for (const auto &[workers, slice] : testutil::schedShapeZoo()) {
        EngineConfig cfg;
        cfg.model = model;
        cfg.workers = workers;
        cfg.sched.sliceEvents = slice;
        Engine engine(cfg);

        std::vector<SessionScript> scripts;
        std::vector<SessionId> ids;
        for (size_t i = 0; i < kSessions; ++i) {
            scripts.push_back(randomScript(700 + i, i));
            SessionOptions o = SessionOptions::fromScript(scripts[i]);
            o.policy = specs[i % specs.size()];
            o.sessionSeed = 1000 + i;
            ids.push_back(engine.createSession(o));
        }

        // Interleaved feeding: rotate over the sessions, pushing a
        // seeded-random 1..3-event chunk from each script per turn,
        // while earlier chunks are already executing.
        Rng feed(7000 + workers * 31 + slice, "sched-stress-feed");
        std::vector<size_t> cursor(kSessions, 0);
        bool remaining = true;
        while (remaining) {
            remaining = false;
            for (size_t i = 0; i < kSessions; ++i) {
                const auto &events = scripts[i].events;
                if (cursor[i] >= events.size())
                    continue;
                const size_t k = std::min<size_t>(
                    1 + feed.nextU64() % 3,
                    events.size() - cursor[i]);
                engine.enqueue(
                    ids[i],
                    {events.begin() +
                         static_cast<ptrdiff_t>(cursor[i]),
                     events.begin() +
                         static_cast<ptrdiff_t>(cursor[i] + k)});
                cursor[i] += k;
                remaining |= cursor[i] < events.size();
            }
        }

        for (size_t i = 0; i < kSessions; ++i) {
            SessionRunResult concurrent = engine.result(ids[i]);
            engine.closeSession(ids[i]);
            expectIdenticalRuns(
                concurrent,
                sequentialReplay(model, scripts[i],
                                 specs[i % specs.size()], 1000 + i));
        }

        Stats st = engine.stats();
        EXPECT_EQ(st.itemsEnqueued, st.itemsExecuted);
        EXPECT_EQ(st.itemsRejected, 0u);
        EXPECT_EQ(st.rejectedAdmissions, 0u);
        EXPECT_EQ(st.admitted, kSessions);
        EXPECT_EQ(st.liveSessions, 0u);
        EXPECT_EQ(st.maxLiveObserved, kSessions);
        if (slice != 0) {
            EXPECT_LE(st.maxWaitSlices, kSessions - 1);
        }
    }
}

// ---------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------

TEST(SchedFairness, RoundRobinWaitBoundIsExactlyLiveMinusOne)
{
    // Stage a saturated symmetric burst: 4 sessions x 6 frames,
    // slice 1, released at once. FIFO rotation guarantees a session
    // waits at most live-1 = 3 other slices — and the initial burst
    // makes the bound tight, independent of worker count or timing.
    const uint32_t kSessions = 4, kFrames = 6;
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 1;
    Engine engine(cfg);

    engine.pause();
    std::vector<SessionId> ids;
    for (uint32_t i = 0; i < kSessions; ++i) {
        SessionOptions o;
        o.name = "fair-" + std::to_string(i);
        ids.push_back(engine.createSession(o));
        engine.feedFrame(ids[i], kFrames);
    }
    engine.resume();
    engine.waitAll();

    for (SessionId id : ids) {
        QueueStats qs = engine.sessionStats(id);
        EXPECT_EQ(qs.itemsEnqueued, kFrames);
        EXPECT_EQ(qs.itemsExecuted, kFrames);
        EXPECT_EQ(qs.slices, kFrames); // slice 1 => one item each
        EXPECT_EQ(qs.depth, 0u);
        EXPECT_EQ(qs.maxDepth, kFrames);
        EXPECT_LE(qs.maxWaitSlices, kSessions - 1);
    }
    Stats st = engine.stats();
    EXPECT_EQ(st.maxWaitSlices, kSessions - 1);
    EXPECT_EQ(st.slices, uint64_t{kSessions} * kFrames);
    EXPECT_EQ(st.maxQueueDepth, kFrames);
    for (SessionId id : ids)
        engine.closeSession(id);
}

TEST(SchedFairness, ChattySessionCannotStarvePeers)
{
    // One session floods 32 items; two light peers enqueue behind
    // it. Round-robin still bounds every wait by live-1 = 2 — the
    // chatty session only advances one slice per rotation.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1; // one worker: worst case for starvation
    cfg.sched.sliceEvents = 2;
    Engine engine(cfg);

    engine.pause();
    SessionId chatty = engine.createSession();
    SessionId peer_a = engine.createSession();
    SessionId peer_b = engine.createSession();
    engine.feedFrame(chatty, 32);
    engine.feedFrame(peer_a, 3);
    engine.ask(peer_b, 4, 3);
    engine.resume();
    engine.waitAll();

    EXPECT_LE(engine.sessionStats(peer_a).maxWaitSlices, 2u);
    EXPECT_LE(engine.sessionStats(peer_b).maxWaitSlices, 2u);
    EXPECT_LE(engine.sessionStats(chatty).maxWaitSlices, 2u);
    EXPECT_EQ(engine.sessionStats(chatty).slices, 16u); // 32 / 2
    EXPECT_EQ(engine.stats().maxWaitSlices, 2u);
    EXPECT_EQ(engine.result(peer_b).generated.size(), 3u);
    for (SessionId id : {chatty, peer_a, peer_b})
        engine.closeSession(id);
}

// ---------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------

TEST(SchedAdmission, LiveSessionCapRejectsAndReadmits)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.maxLiveSessions = 2;
    Engine engine(cfg);

    SessionId a = engine.createSession();
    SessionId b = engine.createSession();
    EXPECT_EQ(engine.openSessions(), 2u);

    Admission rejected = engine.tryCreateSession();
    EXPECT_FALSE(rejected.admitted());
    EXPECT_FALSE(static_cast<bool>(rejected));
    EXPECT_EQ(rejected.status, Admission::Status::RejectedSessionLimit);
    EXPECT_EQ(rejected.id, 0u);
    EXPECT_THROW(engine.createSession(), AdmissionError);

    Stats st = engine.stats();
    EXPECT_EQ(st.admitted, 2u);
    EXPECT_EQ(st.rejectedAdmissions, 2u);
    EXPECT_EQ(st.liveSessions, 2u);
    EXPECT_EQ(st.maxLiveObserved, 2u);
    EXPECT_EQ(st.config.maxLiveSessions, 2u);

    // Re-admission after a close, and the readmitted session still
    // computes the right answer.
    engine.feedFrame(a, 2);
    engine.closeSession(a);
    Admission readmitted = engine.tryCreateSession();
    ASSERT_TRUE(readmitted.admitted());
    EXPECT_NE(readmitted.id, 0u);
    engine.feedFrame(readmitted.id, 3);
    engine.ask(readmitted.id, 4, 2);
    SessionRunResult r = engine.result(readmitted.id);
    EXPECT_EQ(r.frames, 3u);
    EXPECT_EQ(r.generated.size(), 2u);
    EXPECT_EQ(engine.stats().admitted, 3u);
    engine.closeSession(b);
    engine.closeSession(readmitted.id);
}

TEST(SchedAdmission, ThrowingPolicyMakerReleasesSlot)
{
    // A maker that throws during session construction must release
    // the reserved admission slot, or the cap leaks capacity.
    PolicyFactory factory;
    factory.registerMaker(
        PolicyKind::ReKV,
        [](const ModelConfig &,
           const PolicySpec &) -> std::unique_ptr<SelectionPolicy> {
            throw std::runtime_error("maker boom");
        });

    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.sched.maxLiveSessions = 1;
    cfg.factory = &factory;
    Engine engine(cfg);

    SessionOptions bad;
    bad.policy = PolicySpec::rekv(0.5f);
    for (int attempt = 0; attempt < 3; ++attempt)
        EXPECT_THROW(engine.createSession(bad), std::runtime_error);
    EXPECT_EQ(engine.openSessions(), 0u);

    // The failed constructions released their slots: a session with
    // a working policy still fits under maxLiveSessions = 1.
    SessionId ok = engine.createSession();
    engine.ask(ok, 2, 2);
    EXPECT_EQ(engine.result(ok).generated.size(), 2u);
    EXPECT_EQ(engine.stats().liveSessions, 1u);
    engine.closeSession(ok);
}

// ---------------------------------------------------------------
// Bounded queues / backpressure
// ---------------------------------------------------------------

TEST(SchedBackpressure, HugeGenerateIsWeighedNotMaterialized)
{
    // Generate{n} is weighed as n units against the bound but stored
    // as one compressed event: a pathological n is rejected without
    // any expansion-sized allocation, and an in-bound one is split
    // lazily at slice boundaries.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.maxQueuedPerSession = 8;
    cfg.sched.sliceEvents = 4;
    Engine engine(cfg);
    SessionId id = engine.createSession();

    EnqueueResult r = engine.tryEnqueue(
        id, {{SessionEvent::Type::Generate, 1000000000u}});
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.items, 1000000000u);
    EXPECT_EQ(r.depth, 0u);

    // Question{2} + Generate{7} = 8 units: exactly at the bound,
    // dispatched as ceil(8/4) = 2 slices.
    EXPECT_TRUE(engine.tryEnqueue(
                        id, {{SessionEvent::Type::Question, 2},
                             {SessionEvent::Type::Generate, 7}})
                    .accepted());
    engine.wait(id);
    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.itemsExecuted, 8u);
    EXPECT_EQ(qs.slices, 2u);
    EXPECT_EQ(engine.result(id).generated.size(), 7u);
    engine.closeSession(id);
}

TEST(SchedBackpressure, OverflowingSubmitDoesNotLeakSession)
{
    // submit() opens a session before enqueueing the script; when
    // the script overflows a bounded queue, the session must be
    // closed again — the caller never got the id, so a survivor
    // would hold its admission slot forever.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.sched.maxLiveSessions = 1;
    cfg.sched.maxQueuedPerSession = 4;
    Engine engine(cfg);

    SessionScript big = WorkloadGenerator::coinAverage(90);
    for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_THROW(engine.submit(big), QueueFullError);
        EXPECT_EQ(engine.openSessions(), 0u);
    }

    // The admission slot is free: a small script still fits.
    SessionScript small = big;
    small.events = {{SessionEvent::Type::Question, 2},
                    {SessionEvent::Type::Generate, 2}};
    SessionId id = engine.submit(small);
    EXPECT_EQ(engine.result(id).generated.size(), 2u);
    engine.closeSession(id);
}

TEST(SchedBackpressure, BoundedQueueRejectsDeterministically)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.maxQueuedPerSession = 5;
    cfg.sched.sliceEvents = 2;
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.pause(); // Freeze dispatch: queue depths are exact.

    EnqueueResult r = engine.tryFeedFrame(id, 3);
    EXPECT_TRUE(r.accepted());
    EXPECT_EQ(r.items, 3u);
    EXPECT_EQ(r.depth, 3u);

    r = engine.tryFeedFrame(id, 3); // 3 + 3 > 5
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.status, EnqueueResult::Status::RejectedQueueFull);
    EXPECT_EQ(r.depth, 3u); // all-or-nothing: nothing was queued

    r = engine.tryAsk(id, 2, 4); // units: 1 question + 4 steps = 5
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.items, 5u);

    r = engine.tryFeedFrame(id, 2); // exactly to the cap
    EXPECT_TRUE(r.accepted());
    EXPECT_EQ(r.depth, 5u);

    EXPECT_THROW(engine.feedFrame(id), QueueFullError);
    EXPECT_THROW(engine.ask(id, 1, 1), QueueFullError);

    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.itemsEnqueued, 5u);
    EXPECT_EQ(qs.itemsRejected, 3u + 5u + 1u + 2u);
    EXPECT_EQ(qs.depth, 5u);
    EXPECT_EQ(qs.maxDepth, 5u);

    engine.resume();
    engine.wait(id);
    EXPECT_EQ(engine.sessionStats(id).depth, 0u);

    // Drained: the previously rejected QA round now fits, and the
    // whole session equals its sequential replay.
    EXPECT_TRUE(engine.tryAsk(id, 2, 4).accepted());
    SessionRunResult concurrent = engine.result(id);
    EXPECT_EQ(concurrent.frames, 5u);
    ASSERT_EQ(concurrent.generated.size(), 4u);

    SessionScript script;
    script.name = "session";
    script.events.assign(5, {SessionEvent::Type::Frame, 0});
    script.events.push_back({SessionEvent::Type::Question, 2});
    script.events.push_back({SessionEvent::Type::Generate, 4});
    expectIdenticalRuns(
        concurrent, sequentialReplay(cfg.model, script,
                                     PolicySpec::full(), 42));
    engine.closeSession(id);
}

// ---------------------------------------------------------------
// Engine error / edge paths
// ---------------------------------------------------------------

TEST(SchedEdge, AskBeforeAnyFeedFrameMatchesSequential)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.policy = PolicySpec::resv();
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.ask(id, 5, 4); // No frame was ever fed.
    SessionRunResult r = engine.result(id);
    engine.closeSession(id);
    EXPECT_EQ(r.frames, 0u);
    ASSERT_EQ(r.generated.size(), 4u);

    SessionScript script;
    script.name = "session";
    script.events = {{SessionEvent::Type::Question, 5},
                     {SessionEvent::Type::Generate, 4}};
    expectIdenticalRuns(
        r, sequentialReplay(cfg.model, script, PolicySpec::resv(), 42));
}

TEST(SchedEdge, ResultOnRejectedAdmissionThrows)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    cfg.sched.maxLiveSessions = 1;
    Engine engine(cfg);

    SessionId live = engine.createSession();
    Admission rejected = engine.tryCreateSession();
    ASSERT_FALSE(rejected.admitted());
    EXPECT_THROW(engine.result(rejected.id), std::out_of_range);
    EXPECT_THROW(engine.wait(rejected.id), std::out_of_range);
    EXPECT_THROW(engine.sessionStats(rejected.id), std::out_of_range);
    engine.closeSession(live);
}

TEST(SchedEdge, DoubleCloseAndVerbsAfterClose)
{
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 1;
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.feedFrame(id, 2);
    engine.closeSession(id);

    EXPECT_THROW(engine.closeSession(id), std::out_of_range);
    EXPECT_THROW(engine.feedFrame(id), std::out_of_range);
    EXPECT_THROW(engine.tryFeedFrame(id), std::out_of_range);
    // Zero-unit batches still validate the id.
    EXPECT_THROW(engine.feedFrame(id, 0), std::out_of_range);
    EXPECT_THROW(engine.tryEnqueue(id, {}), std::out_of_range);
    EXPECT_THROW(engine.tryAsk(id, 1, 1), std::out_of_range);
    EXPECT_THROW(engine.wait(id), std::out_of_range);
    EXPECT_THROW(engine.result(id), std::out_of_range);
    EXPECT_THROW(engine.sessionStats(id), std::out_of_range);

    // The engine stays serviceable after the error paths.
    SessionId next = engine.createSession();
    engine.ask(next, 3, 2);
    EXPECT_EQ(engine.result(next).generated.size(), 2u);
    engine.closeSession(next);
}

// ---------------------------------------------------------------
// Custom policy kinds (PolicyFactory::registerMaker)
// ---------------------------------------------------------------

TEST(SchedPolicy, RegisteredCustomKindCountsScheduledWorkItems)
{
    // Override the ReKV kind with an instrumented decorator in a
    // *local* registry (the global factory stays untouched), inject
    // it via EngineConfig::factory, and verify that the number of
    // executed model blocks equals the scheduler's unit-work-item
    // count — and that instrumentation does not perturb results.
    std::atomic<uint64_t> blocks{0};
    PolicyFactory factory;
    factory.registerMaker(
        PolicyKind::ReKV,
        [&blocks](const ModelConfig &m, const PolicySpec &spec) {
            ReKVConfig c;
            c.ratio = spec.ratio;
            return std::make_unique<CountingPolicy>(
                std::make_unique<ReKVPolicy>(m, c), &blocks);
        });

    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 3;
    cfg.sched.sliceEvents = 2;
    cfg.factory = &factory;
    cfg.policy = PolicySpec::rekv(0.4f);
    Engine engine(cfg);

    uint64_t expected_items = 0;
    std::vector<SessionScript> scripts;
    std::vector<SessionId> ids;
    for (size_t i = 0; i < 3; ++i) {
        scripts.push_back(randomScript(820 + i, i));
        for (const SessionEvent &e : scripts[i].events)
            expected_items +=
                e.type == SessionEvent::Type::Generate ? e.tokens : 1;
        ids.push_back(engine.submit(scripts[i]));
    }
    engine.waitAll();

    EXPECT_EQ(blocks.load(), expected_items);
    EXPECT_EQ(engine.stats().itemsExecuted, expected_items);

    // The decorator forwards verbatim: results match the sequential
    // replay under the *plain* global-factory ReKV policy.
    for (size_t i = 0; i < ids.size(); ++i) {
        SessionRunResult concurrent = engine.result(ids[i]);
        engine.closeSession(ids[i]);
        expectIdenticalRuns(
            concurrent, sequentialReplay(cfg.model, scripts[i],
                                         PolicySpec::rekv(0.4f), 42));
    }
    EXPECT_EQ(blocks.load(), expected_items); // result() runs nothing
}

// ---------------------------------------------------------------
// Stats accounting / ingest-generation overlap granularity
// ---------------------------------------------------------------

TEST(SchedStats, SlicedGenerationAndExactAccounting)
{
    // One staged session: 7 frames + Question{6} + Generate{9} =
    // 17 unit items. With slice 4 the scheduler must run exactly
    // ceil(17/4) = 5 slices — proof that generation is dispatched as
    // single-token steps (the overlap grain), not one opaque event.
    EngineConfig cfg;
    cfg.model = ModelConfig::tiny();
    cfg.workers = 2;
    cfg.sched.sliceEvents = 4;
    Engine engine(cfg);

    SessionId id = engine.createSession();
    engine.pause();
    engine.feedFrame(id, 7);
    engine.ask(id, 6, 9);
    QueueStats staged = engine.sessionStats(id);
    EXPECT_EQ(staged.depth, 17u);
    EXPECT_EQ(staged.maxDepth, 17u);
    EXPECT_EQ(staged.itemsEnqueued, 17u);
    engine.resume();
    engine.wait(id);

    QueueStats qs = engine.sessionStats(id);
    EXPECT_EQ(qs.itemsExecuted, 17u);
    EXPECT_EQ(qs.slices, 5u);
    EXPECT_EQ(qs.depth, 0u);
    EXPECT_EQ(qs.maxWaitSlices, 0u); // nothing else ever queued

    Stats st = engine.stats();
    EXPECT_EQ(st.itemsEnqueued, 17u);
    EXPECT_EQ(st.itemsExecuted, 17u);
    EXPECT_EQ(st.slices, 5u);
    EXPECT_EQ(st.maxQueueDepth, 17u);
    EXPECT_EQ(st.config.sliceEvents, 4u);
    EXPECT_GE(st.meanServiceMs(), 0.0);
    EXPECT_GE(st.meanWaitMs(), 0.0);

    SessionRunResult r = engine.result(id);
    EXPECT_EQ(r.frames, 7u);
    EXPECT_EQ(r.generated.size(), 9u);
    engine.closeSession(id);
}
