/**
 * @file
 * Vision tower + MLP projector substitute.
 *
 * Stands in for SigLIP-ViT-L-384: maps frame token latents to vision
 * features (VisionTower) and adapts them to the LLM embedding space
 * (MlpProjector), matching the three-module architecture of Fig. 3.
 * The compute/memory cost of the real ViT is charged analytically by
 * the timing model (sim/compute_model); here only the functional data
 * path matters.
 */

#ifndef VREX_VIDEO_VISION_TOWER_HH
#define VREX_VIDEO_VISION_TOWER_HH

#include <cstdint>

#include "tensor/matrix.hh"

namespace vrex
{

/** Two-layer GELU MLP from latent space to vision-feature space. */
class VisionTower
{
  public:
    VisionTower(uint32_t latent_dim, uint32_t vision_dim, uint64_t seed);

    /** Encode frame latents (T x latentDim) -> T x visionDim. */
    Matrix encode(const Matrix &latents) const;

    uint32_t visionDim() const { return outDim; }

  private:
    uint32_t outDim;
    Matrix w1, w2;  // [out x in] layout.
};

/** Linear projector from vision features to the LLM embedding space. */
class MlpProjector
{
  public:
    MlpProjector(uint32_t vision_dim, uint32_t d_model, uint64_t seed);

    /** Project features (T x visionDim) -> T x dModel. */
    Matrix project(const Matrix &features) const;

  private:
    Matrix w;  // [dModel x visionDim].
};

} // namespace vrex

#endif // VREX_VIDEO_VISION_TOWER_HH
