/**
 * @file
 * Shared test utilities: seeded RNG fixtures, float/BF16 tolerance
 * comparators, and the synthetic video-frame / KV generators that
 * several suites previously copy-pasted.
 */

#ifndef VREX_TESTS_TESTUTIL_HH
#define VREX_TESTS_TESTUTIL_HH

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bf16.hh"
#include "common/rng.hh"
#include "llm/kv_cache.hh"
#include "llm/model.hh"
#include "tensor/matrix.hh"

namespace vrex::testutil
{

/**
 * Fixture with a deterministic per-test RNG. The stream is named
 * after the test so adding a test never perturbs its neighbours.
 */
class SeededRngTest : public ::testing::Test
{
  protected:
    SeededRngTest()
        : rng(0x5eedull,
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name())
    {
    }

    Rng rng;
};

/** Relative tolerance matching BF16's 8-bit mantissa (2^-8). */
inline constexpr float kBf16RelTol = 1.0f / 256.0f;

/** |a - b| <= tol * max(1, |a|, |b|): absolute near zero, relative
 * away from it. */
inline ::testing::AssertionResult
nearRel(float a, float b, float tol)
{
    const float scale =
        std::max(1.0f, std::max(std::fabs(a), std::fabs(b)));
    if (std::fabs(a - b) <= tol * scale)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << a << " vs " << b << " differ by " << std::fabs(a - b)
        << " (tol " << tol * scale << ")";
}

/** Comparator for values that passed through BF16 rounding. */
inline ::testing::AssertionResult
bf16Near(float a, float b)
{
    return nearRel(a, b, kBf16RelTol);
}

/** Elementwise comparison of two same-shaped matrices. */
inline ::testing::AssertionResult
matricesNear(const Matrix &a, const Matrix &b, float tol)
{
    if (!a.sameShape(b))
        return ::testing::AssertionFailure() << "shape mismatch";
    for (uint32_t i = 0; i < a.size(); ++i) {
        auto r = nearRel(a.raw()[i], b.raw()[i], tol);
        if (!r)
            return r << " at flat index " << i;
    }
    return ::testing::AssertionSuccess();
}

/** A gaussian random (rows x cols) matrix. */
inline Matrix
randomMatrix(Rng &rng, uint32_t rows, uint32_t cols,
             float stddev = 1.0f)
{
    Matrix m(rows, cols);
    rng.fillGaussian(m.raw(), m.size(), stddev);
    return m;
}

/**
 * Prefill @p frames iid-random synthetic frames through the model
 * (no temporal correlation — each token is fresh gaussian noise).
 */
inline void
streamRandomFrames(Model &model, uint32_t frames,
                   uint32_t tokens_per_frame, uint64_t seed)
{
    Rng rng(seed);
    const uint32_t d = model.config().dModel;
    for (uint32_t f = 0; f < frames; ++f) {
        Matrix frame = randomMatrix(rng, tokens_per_frame, d);
        model.prefillFrame(frame, static_cast<int32_t>(f));
    }
}

/**
 * Prefill @p frames temporally-correlated synthetic frames: tokens
 * cluster around a shared base latent that drifts slowly between
 * frames, mimicking real video redundancy (high inter-frame
 * similarity, gradual scene drift).
 */
inline void
streamCorrelatedFrames(Model &model, uint32_t frames,
                       uint32_t tokens_per_frame, uint64_t seed,
                       double token_noise = 0.15,
                       double drift = 0.05)
{
    Rng rng(seed);
    const uint32_t d = model.config().dModel;
    std::vector<float> base(d);
    rng.fillGaussian(base.data(), d, 1.0f);
    for (uint32_t f = 0; f < frames; ++f) {
        Matrix frame(tokens_per_frame, d);
        for (uint32_t t = 0; t < tokens_per_frame; ++t)
            for (uint32_t i = 0; i < d; ++i)
                frame.at(t, i) = base[i] +
                    static_cast<float>(rng.gaussian(0.0, token_noise));
        model.prefillFrame(frame, static_cast<int32_t>(f));
        // Slow drift between frames.
        for (auto &v : base)
            v += static_cast<float>(rng.gaussian(0.0, drift));
    }
}

/** Append one block of @p tokens random K/V to every layer. */
inline void
fillLayer(KVCache &kv, const ModelConfig &cfg, uint32_t tokens,
          Rng &rng, int32_t frame_id = 0,
          TokenStage stage = TokenStage::VideoFrame)
{
    const uint32_t kv_dim = cfg.nKvHeads * cfg.headDim();
    Matrix k = randomMatrix(rng, tokens, kv_dim);
    Matrix v = randomMatrix(rng, tokens, kv_dim);
    kv.beginTokens(tokens, frame_id, stage);
    for (uint32_t l = 0; l < cfg.nLayers; ++l)
        kv.appendLayer(l, k, v);
}

} // namespace vrex::testutil

#endif // VREX_TESTS_TESTUTIL_HH
